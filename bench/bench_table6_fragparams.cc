// Reproduces paper Table 6: fragmentation parameters of experiment 3
// (number of fragments and bitmap fragment size for F_MonthGroup,
// F_MonthClass, F_MonthCode).

#include <cmath>
#include <cstdio>

#include "common/table_printer.h"
#include "cost/io_cost_model.h"
#include "fragment/fragmentation.h"
#include "schema/apb1.h"

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::IoCostParams params;

  struct Row {
    const char* name;
    mdw::Depth product_depth;
  };
  const Row rows[] = {{"F_MonthGroup", 3},
                      {"F_MonthClass", 4},
                      {"F_MonthCode", 5}};

  std::printf("Table 6: fragmentation parameters for experiment 3\n\n");
  mdw::TablePrinter table({"fragmentation", "number of fragments",
                           "bitmap fragment size [pages]",
                           "effective prefetch granule"});
  for (const auto& row : rows) {
    const mdw::Fragmentation f(
        &schema, {{mdw::kApb1Time, 2}, {mdw::kApb1Product, row.product_depth}});
    const double pages = f.BitmapFragmentPages();
    const double granule = std::min(
        static_cast<double>(params.bitmap_prefetch_pages),
        std::max(1.0, std::ceil(pages)));
    table.AddRow({row.name, mdw::TablePrinter::Int(f.FragmentCount()),
                  mdw::TablePrinter::Num(pages, 2),
                  mdw::TablePrinter::Num(granule, 0)});
  }
  table.Print(stdout);
  std::printf(
      "\nPaper values: 11,520 / 23,040 / 345,600 fragments with bitmap\n"
      "fragment sizes 4.9 (5) / 2.5 (3) / 0.16 (1) pages.\n");
  return 0;
}
