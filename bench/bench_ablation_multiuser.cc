// Ablation A4 (paper Sec. 7 future work): multi-user mode. Concurrent
// query streams share the nodes and disks; throughput rises with
// concurrency while per-query response times degrade gracefully.

#include <cstdio>

#include "common/table_printer.h"
#include "schema/apb1.h"
#include "workload/workload_driver.h"

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation frag(&schema,
                                {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});

  std::printf(
      "Ablation A4: multi-user mode — 16 x 1GROUP1STORE queries, varying\n"
      "the number of concurrent streams (d=100, p=20, t=4)\n\n");
  mdw::TablePrinter table({"streams", "avg response [s]", "makespan [s]",
                           "throughput [q/s]", "avg disk util"});
  for (const int streams : {1, 2, 4, 8, 16}) {
    mdw::SimConfig config;
    config.num_disks = 100;
    config.num_nodes = 20;
    config.tasks_per_node = 4;
    mdw::WorkloadDriver driver(&schema, &frag, config);
    const auto result = driver.RunMix(
        {{mdw::QueryType::k1Group1Store, 16}}, streams);
    table.AddRow({std::to_string(streams),
                  mdw::TablePrinter::Num(result.avg_response_ms / 1000, 2),
                  mdw::TablePrinter::Num(result.makespan_ms / 1000, 2),
                  mdw::TablePrinter::Num(result.ThroughputPerSecond(), 2),
                  mdw::TablePrinter::Num(result.avg_disk_utilization, 2)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected: the makespan shrinks and throughput rises with more\n"
      "streams until the disks saturate; single-query response times\n"
      "increase moderately due to sharing — the Shared Disk architecture\n"
      "balances the load without data repartitioning.\n");
  return 0;
}
