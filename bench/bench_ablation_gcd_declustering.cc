// Ablation A1 (paper Sec. 4.6): gcd clustering of round-robin allocation.
// For disk counts around 100, how many distinct disks serve the stride-480
// fragment set of a 1CODE query, and what does that do to simulated
// response times? Also evaluates the gap scheme as a fix.

#include <cstdio>

#include "alloc/declustering_analysis.h"
#include "common/math_util.h"
#include "common/table_printer.h"
#include "schema/apb1.h"
#include "sim/simulator.h"

namespace {

double Simulate(const mdw::StarSchema& schema, const mdw::Fragmentation& f,
                int disks, int gap) {
  mdw::SimConfig config;
  config.num_disks = disks;
  config.num_nodes = 20;
  config.tasks_per_node = 2;
  config.round_gap = gap;
  mdw::Simulator sim(&schema, &f, config);
  return sim.RunSingleUser({mdw::apb1_queries::OneCode(35)}).avg_response_ms;
}

}  // namespace

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation frag(&schema,
                                {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});
  const mdw::QueryPlanner planner(&schema, &frag);
  const auto plan = planner.Plan(mdw::apb1_queries::OneCode(35));

  std::printf(
      "Ablation A1: gcd clustering for 1CODE (24 fragments, stride 480)\n"
      "under F_MonthGroup, plain round robin vs gap scheme\n\n");
  mdw::TablePrinter table({"d", "prime?", "disks used (plain)",
                           "disks used (gap=1)", "response plain [s]",
                           "response gap [s]"});
  for (const int d : {96, 97, 98, 99, 100, 101, 102}) {
    mdw::AllocationConfig plain_cfg;
    plain_cfg.num_disks = d;
    const mdw::DiskAllocation plain(&frag, plain_cfg, 12);
    mdw::AllocationConfig gap_cfg = plain_cfg;
    gap_cfg.round_gap = 1;
    const mdw::DiskAllocation gapped(&frag, gap_cfg, 12);
    const auto r_plain = mdw::AnalyzeDeclustering(plan, plain);
    const auto r_gap = mdw::AnalyzeDeclustering(plan, gapped);
    table.AddRow({std::to_string(d), mdw::IsPrime(d) ? "yes" : "no",
                  std::to_string(r_plain.disks_used),
                  std::to_string(r_gap.disks_used),
                  mdw::TablePrinter::Num(Simulate(schema, frag, d, 0) / 1000,
                                         2),
                  mdw::TablePrinter::Num(Simulate(schema, frag, d, 1) / 1000,
                                         2)});
  }
  table.Print(stdout);
  std::printf(
      "\nPaper example: d=100 clusters the 24 fragments on 5 disks\n"
      "(gcd(480,100)=20), losing a factor 4.8 of I/O parallelism; prime\n"
      "disk counts or a gap scheme restore full spread.\n");
  return 0;
}
