// Ablation A7: Shared Disk vs Shared Nothing under data skew.
// The paper (Sec. 1/2) argues Shared Disk suits warehouses because any
// node can process any subquery, giving dynamic load balancing; Shared
// Nothing pins subqueries to the node owning the fragment's disk. With
// uniform data both keep all resources busy; with skewed per-fragment hit
// counts, Shared Nothing cannot shed load from hot nodes.

#include <cstdio>

#include "common/table_printer.h"
#include "schema/apb1.h"
#include "workload/workload_driver.h"

namespace {

mdw::SimResult Run(const mdw::StarSchema& schema,
                   const mdw::Fragmentation& frag,
                   mdw::Architecture architecture, double skew,
                   mdw::QueryType type) {
  mdw::SimConfig config;
  config.architecture = architecture;
  if (architecture == mdw::Architecture::kSharedNothing) {
    config.bitmap_placement = mdw::BitmapPlacement::kSameNode;
  }
  config.num_disks = 100;
  config.num_nodes = 20;
  config.tasks_per_node = 5;
  config.fragment_skew_theta = skew;
  mdw::WorkloadDriver driver(&schema, &frag, config);
  return driver.RunSingleUser(type, 1);
}

}  // namespace

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation frag(&schema,
                                {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});

  std::printf(
      "Ablation A7: Shared Disk vs Shared Nothing (d=100, p=20, t=5)\n\n");
  mdw::TablePrinter table({"query", "skew theta", "Shared Disk [s]",
                           "Shared Nothing [s]", "SN/SD"});
  struct Case {
    mdw::QueryType type;
    double skew;
  };
  const Case cases[] = {
      {mdw::QueryType::k1Month, 0.0},  {mdw::QueryType::k1Month, 0.5},
      {mdw::QueryType::k1Month, 0.9},  {mdw::QueryType::k1Group1Store, 0.0},
      {mdw::QueryType::k1Group1Store, 0.9},
      {mdw::QueryType::k1Store, 0.0},
  };
  for (const auto& c : cases) {
    const auto sd = Run(schema, frag, mdw::Architecture::kSharedDisk,
                        c.skew, c.type);
    const auto sn = Run(schema, frag, mdw::Architecture::kSharedNothing,
                        c.skew, c.type);
    table.AddRow({ToString(c.type), mdw::TablePrinter::Num(c.skew, 1),
                  mdw::TablePrinter::Num(sd.avg_response_ms / 1000, 2),
                  mdw::TablePrinter::Num(sn.avg_response_ms / 1000, 2),
                  mdw::TablePrinter::Num(
                      sn.avg_response_ms / sd.avg_response_ms, 2)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected: near parity under uniform load; Shared Nothing falls\n"
      "behind as skew pins the hot fragments' work to single nodes while\n"
      "Shared Disk redistributes it (paper Sec. 1: 'high potential for\n"
      "parallel query processing and dynamic load balancing').\n");
  return 0;
}
