// Reproduces paper Table 2: number of fragmentation options under
// minimum-bitmap-fragment-size constraints, by dimensionality.

#include <cstdio>

#include "common/table_printer.h"
#include "fragment/enumeration.h"
#include "schema/apb1.h"

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const auto options = mdw::EnumerateFragmentations(schema);

  std::printf("Table 2: fragmentation options under size constraints\n");
  std::printf("(%zu total options enumerated; paper: 167)\n\n",
              options.size());

  mdw::TablePrinter table({"#fragmentation dimensions", "any", ">=1 page",
                           ">=4 pages", ">=8 pages"});
  int col_totals[4] = {0, 0, 0, 0};
  for (int dims = 1; dims <= 4; ++dims) {
    const int any = mdw::CountOptions(options, dims, 0);
    const int one = mdw::CountOptions(options, dims, 1.0);
    const int four = mdw::CountOptions(options, dims, 4.0);
    const int eight = mdw::CountOptions(options, dims, 8.0);
    col_totals[0] += any;
    col_totals[1] += one;
    col_totals[2] += four;
    col_totals[3] += eight;
    table.AddRow({std::to_string(dims), std::to_string(any),
                  std::to_string(one), std::to_string(four),
                  std::to_string(eight)});
  }
  table.AddRow({"total", std::to_string(col_totals[0]),
                std::to_string(col_totals[1]), std::to_string(col_totals[2]),
                std::to_string(col_totals[3])});
  table.Print(stdout);

  std::printf(
      "\nPaper values: any 12/47/72/36 (167); >=1: 12/37/22/1 (72);\n"
      ">=4: 12/31/13/- (56); >=8: 11/27/9/- (47). Boundary cells differ\n"
      "slightly because the paper's Table 2 rounding is not consistent\n"
      "with its Table 3 page math (see EXPERIMENTS.md).\n");
  return 0;
}
