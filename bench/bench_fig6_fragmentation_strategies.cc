// Reproduces paper Figure 6: response times of 1CODE1QUARTER and 1STORE
// for the fragmentations F_MonthGroup, F_MonthClass, F_MonthCode (d = 100,
// p = 20), varying the total degree of parallelism (global number of
// concurrent subqueries).

#include <cstdio>
#include <string>

#include "common/table_printer.h"
#include "schema/apb1.h"
#include "workload/workload_driver.h"

namespace {

struct Frag {
  const char* name;
  mdw::Depth product_depth;
};

double Run(const mdw::StarSchema& schema, const mdw::Fragmentation& frag,
           mdw::QueryType type, int dop) {
  mdw::SimConfig config;
  config.num_disks = 100;
  config.num_nodes = 20;
  config.tasks_per_node = std::max(1, (dop + 19) / 20);
  config.global_task_cap = dop;
  mdw::WorkloadDriver driver(&schema, &frag, config);
  return driver.RunSingleUser(type, 1).avg_response_ms;
}

}  // namespace

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const Frag frags[] = {{"group", 3}, {"class", 4}, {"code", 5}};

  std::printf("Figure 6 (left): 1CODE1QUARTER response times [s]\n\n");
  {
    mdw::TablePrinter table({"degree of parallelism", "product group frag",
                             "product class frag", "product code frag"});
    for (const int dop : {1, 2, 3, 4, 5}) {
      std::vector<std::string> row = {std::to_string(dop)};
      for (const auto& fr : frags) {
        const mdw::Fragmentation f(
            &schema, {{mdw::kApb1Time, 2}, {mdw::kApb1Product,
                                            fr.product_depth}});
        row.push_back(mdw::TablePrinter::Num(
            Run(schema, f, mdw::QueryType::k1Code1Quarter, dop) / 1000, 2));
      }
      table.AddRow(row);
    }
    table.Print(stdout);
  }
  std::printf(
      "\nPaper shape: optimum at 3 subqueries (one per month of the\n"
      "quarter); class fragmentation halves the group response; code\n"
      "fragmentation is best (no bitmaps, only relevant tuples).\n\n");

  std::printf("Figure 6 (right): 1STORE response times [s]\n\n");
  {
    mdw::TablePrinter table({"degree of parallelism", "product group frag",
                             "product class frag", "product code frag"});
    for (const int dop : {20, 60, 100, 160}) {
      std::vector<std::string> row = {std::to_string(dop)};
      for (const auto& fr : frags) {
        const mdw::Fragmentation f(
            &schema, {{mdw::kApb1Time, 2}, {mdw::kApb1Product,
                                            fr.product_depth}});
        row.push_back(mdw::TablePrinter::Num(
            Run(schema, f, mdw::QueryType::k1Store, dop) / 1000, 1));
      }
      table.AddRow(row);
    }
    table.Print(stdout);
  }
  std::printf(
      "\nPaper shape: the inverse ordering — the fine-grained code\n"
      "fragmentation is by far the worst (bitmap fragments of 1/6 page\n"
      "force >4 million bitmap I/Os); it must be excluded via the\n"
      "fragmentation thresholds of Sec. 4.4.\n");
  return 0;
}
