// Reproduces paper Figure 3: response times and speed-up of the
// disk-bound 1STORE query under F_MonthGroup for d = 20/60/100 disks and
// p = d/20 .. d/2 processors, with t = d/p subqueries per node so the
// total concurrency matches the disk count.

#include <cstdio>
#include <vector>

#include "common/table_printer.h"
#include "schema/apb1.h"
#include "workload/workload_driver.h"

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation frag(&schema,
                                {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});

  const int disks[] = {20, 60, 100};
  const double ratios[] = {1.0 / 20, 1.0 / 10, 1.0 / 5, 1.0 / 4, 1.0 / 2};
  const char* ratio_names[] = {"p=d/20", "p=d/10", "p=d/5", "p=d/4",
                               "p=d/2"};

  std::printf("Figure 3: 1STORE response time and speed-up (t = d/p)\n\n");
  mdw::TablePrinter table({"series", "d", "p", "t", "response [s]",
                           "speedup vs d=20", "avg disk util"});

  for (std::size_t r = 0; r < std::size(ratios); ++r) {
    double base_response = 0;
    for (const int d : disks) {
      const int p = std::max(1, static_cast<int>(d * ratios[r]));
      mdw::SimConfig config;
      config.num_disks = d;
      config.num_nodes = p;
      config.tasks_per_node = std::max(1, d / p);
      mdw::WorkloadDriver driver(&schema, &frag, config);
      const auto result = driver.RunSingleUser(mdw::QueryType::k1Store, 1);
      if (d == disks[0]) base_response = result.avg_response_ms;
      table.AddRow({ratio_names[r], std::to_string(d), std::to_string(p),
                    std::to_string(config.tasks_per_node),
                    mdw::TablePrinter::Num(result.avg_response_ms / 1000, 1),
                    mdw::TablePrinter::Num(
                        base_response / result.avg_response_ms, 2),
                    mdw::TablePrinter::Num(result.avg_disk_utilization, 2)});
    }
  }
  table.Print(stdout);
  std::printf(
      "\nPaper shape: response times depend solely on d (curves for all\n"
      "p-ratios coincide); speed-up over d is linear to slightly\n"
      "superlinear (reduced seek distances with less data per disk).\n");
  return 0;
}
