// Reproduces paper Figure 4: response times and speed-up of the CPU-bound
// 1MONTH query under F_MonthGroup with t = 4, for the hardware grid of
// Table 5, plus the t = 5 discretisation fix at d = 100, p = 50.

#include <cstdio>

#include "common/table_printer.h"
#include "schema/apb1.h"
#include "workload/workload_driver.h"

namespace {

double Run(const mdw::StarSchema& schema, const mdw::Fragmentation& frag,
           int d, int p, int t) {
  mdw::SimConfig config;
  config.num_disks = d;
  config.num_nodes = p;
  config.tasks_per_node = t;
  mdw::WorkloadDriver driver(&schema, &frag, config);
  return driver.RunSingleUser(mdw::QueryType::k1Month, 1).avg_response_ms;
}

}  // namespace

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation frag(&schema,
                                {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});

  // Table 5 processor counts per disk count.
  const int disks[] = {20, 60, 100};
  const int procs[3][5] = {
      {1, 2, 4, 5, 10}, {3, 6, 12, 15, 30}, {5, 10, 20, 25, 50}};

  std::printf("Figure 4: 1MONTH response time and speed-up (t = 4)\n\n");
  mdw::TablePrinter table(
      {"d", "p", "t", "response [s]", "speedup (vs 1 proc)"});

  for (int di = 0; di < 3; ++di) {
    double per_proc_baseline = 0;  // response * p of the smallest p
    for (int pi = 0; pi < 5; ++pi) {
      const int d = disks[di];
      const int p = procs[di][pi];
      const double response = Run(schema, frag, d, p, 4);
      if (pi == 0) per_proc_baseline = response * p;
      table.AddRow({std::to_string(d), std::to_string(p), "4",
                    mdw::TablePrinter::Num(response / 1000, 1),
                    mdw::TablePrinter::Num(per_proc_baseline / response,
                                           1)});
    }
  }

  // The paper's discretisation fix: at d=100, p=50, t=4 produces batches
  // of 200+200+80; t=5 produces 250+230 and restores linear speed-up.
  const double t4 = Run(schema, frag, 100, 50, 4);
  const double t5 = Run(schema, frag, 100, 50, 5);
  table.AddRow({"100", "50", "5",
                mdw::TablePrinter::Num(t5 / 1000, 1),
                mdw::TablePrinter::Num(t4 / t5, 2)});
  table.Print(stdout);

  std::printf(
      "\nPaper shape: response depends on p, not d; linear speed-up in p.\n"
      "At d=100, p=50 the t=4 batching (200/200/80 of 480 fragments) is\n"
      "inefficient; t=5 (250/230) improves it (last row shows t4/t5 > 1).\n");
  return 0;
}
