// Reproduces paper Table 3: analytical I/O characteristics of the 1STORE
// query under the optimal fragmentation F_opt = {customer::store} and the
// unsupported fragmentation F_nosupp = {time::month, product::group}.

#include <cstdio>

#include "cost/cost_report.h"
#include "fragment/query_planner.h"
#include "schema/apb1.h"

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation fopt(&schema, {{mdw::kApb1Customer, 1}});
  const mdw::Fragmentation fnosupp(
      &schema, {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});
  const mdw::IoCostModel model(&schema);

  const auto query = mdw::apb1_queries::OneStore(7);
  const auto est_opt =
      model.Estimate(mdw::QueryPlanner(&schema, &fopt).Plan(query));
  const auto est_nosupp =
      model.Estimate(mdw::QueryPlanner(&schema, &fnosupp).Plan(query));

  std::printf("Table 3: I/O characteristics for query 1STORE\n\n");
  auto table = mdw::MakeCostComparisonTable(
      "1STORE", {{"F_opt " + fopt.Label(), est_opt},
                 {"F_nosupp " + fnosupp.Label(), est_nosupp}});
  table.Print(stdout);

  std::printf(
      "\nPaper values: F_opt 1 fragment, 795 fact I/Os, no bitmap I/O,\n"
      "25 MB total; F_nosupp 11,520 fragments, 5,189,760 fact pages,\n"
      "691,200 bitmap pages, 31,075 MB. Our model reproduces the fragment\n"
      "counts, the 795 fact I/Os, the 691,200 bitmap pages and the\n"
      "~3-orders-of-magnitude gap exactly; the paper's F_nosupp fact-page\n"
      "figure is not derivable from its own page parameters (see\n"
      "EXPERIMENTS.md).\n");

  std::printf("\nImprovement factor (total I/O): %.0fx\n",
              est_nosupp.total_io_mib / est_opt.total_io_mib);
  return 0;
}
