// Ablation A8: storage footprint of the physical design. The paper
// stresses that each bitmap occupies 223 MB (Sec. 4.4) and that MDHF
// eliminates whole bitmaps (Sec. 4.2); this bench quantifies the
// elimination savings per fragmentation and the (non-)effect of WAH
// compression on the paper's index configuration.

#include <cstdio>

#include "common/table_printer.h"
#include "common/units.h"
#include "cost/storage_model.h"
#include "schema/apb1.h"

namespace {

std::string Gib(std::int64_t bytes) {
  return mdw::TablePrinter::Num(
      static_cast<double>(bytes) / static_cast<double>(mdw::kGiB), 2);
}

}  // namespace

int main() {
  const auto schema = mdw::MakeApb1Schema();

  std::printf("Ablation A8: storage under different fragmentations\n");
  std::printf("(fact table: %s GiB at 20 B/tuple)\n\n",
              Gib(schema.FactCount() * 20).c_str());

  struct Case {
    const char* name;
    std::vector<mdw::FragAttr> attrs;
  };
  const Case cases[] = {
      {"unfragmented", {}},
      {"F_Month", {{mdw::kApb1Time, 2}}},
      {"F_MonthGroup", {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}}},
      {"F_MonthCode", {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 5}}},
      {"F_all_coarsest",
       {{mdw::kApb1Time, 0},
        {mdw::kApb1Product, 0},
        {mdw::kApb1Customer, 0},
        {mdw::kApb1Channel, 0}}},
  };

  mdw::TablePrinter table({"fragmentation", "bitmaps", "bitmap raw [GiB]",
                           "bitmap WAH [GiB]", "total raw [GiB]"});
  for (const auto& c : cases) {
    const mdw::Fragmentation f(&schema, c.attrs);
    const auto breakdown = mdw::EstimateStorage(f);
    table.AddRow({c.name, std::to_string(breakdown.bitmap_count),
                  Gib(breakdown.bitmap_raw_bytes),
                  Gib(breakdown.bitmap_compressed_bytes),
                  Gib(breakdown.TotalRaw())});
  }
  table.Print(stdout);

  std::printf(
      "\nObservations: F_MonthGroup eliminates 44 of 76 bitmaps (~58%% of\n"
      "the index storage); WAH compression barely helps the paper's index\n"
      "configuration because encoded slices are ~50%% dense and the simple\n"
      "indices cover only low-cardinality dimensions — the reason the\n"
      "paper picks encoded indices for PRODUCT and CUSTOMER in the first\n"
      "place.\n");
  return 0;
}
