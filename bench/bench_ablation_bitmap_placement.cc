// Ablation A2: staggered vs same-disk bitmap fragment placement
// (paper Sec. 4.6 / 6.2). Staggering enables parallel bitmap I/O within a
// subquery; co-location serialises it on the fact fragment's disk.

#include <cstdio>

#include "common/table_printer.h"
#include "schema/apb1.h"
#include "workload/workload_driver.h"

namespace {

double Run(const mdw::StarSchema& schema, const mdw::Fragmentation& frag,
           mdw::QueryType type, mdw::BitmapPlacement placement,
           bool parallel_io, int t) {
  mdw::SimConfig config;
  config.num_disks = 100;
  config.num_nodes = 20;
  config.tasks_per_node = t;
  config.bitmap_placement = placement;
  config.parallel_bitmap_io = parallel_io;
  mdw::WorkloadDriver driver(&schema, &frag, config);
  return driver.RunSingleUser(type, 1).avg_response_ms;
}

}  // namespace

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation frag(&schema,
                                {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});

  std::printf(
      "Ablation A2: bitmap fragment placement x I/O mode (d=100, p=20)\n\n");
  mdw::TablePrinter table({"query", "t", "staggered+parallel [s]",
                           "staggered+serial [s]", "same-disk [s]"});
  struct Case {
    mdw::QueryType type;
    const char* name;
    int t;
  };
  for (const auto& c :
       {Case{mdw::QueryType::k1Group1Store, "1GROUP1STORE", 1},
        Case{mdw::QueryType::k1Group1Store, "1GROUP1STORE", 2},
        Case{mdw::QueryType::k1Store, "1STORE", 5}}) {
    const double stag_par = Run(schema, frag, c.type,
                                mdw::BitmapPlacement::kStaggered, true, c.t);
    const double stag_ser = Run(schema, frag, c.type,
                                mdw::BitmapPlacement::kStaggered, false, c.t);
    const double same = Run(schema, frag, c.type,
                            mdw::BitmapPlacement::kSameDisk, false, c.t);
    table.AddRow({c.name, std::to_string(c.t),
                  mdw::TablePrinter::Num(stag_par / 1000, 2),
                  mdw::TablePrinter::Num(stag_ser / 1000, 2),
                  mdw::TablePrinter::Num(same / 1000, 2)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected: staggered placement with parallel I/O is fastest; the\n"
      "gain is largest when few subqueries compete for the disks.\n");
  return 0;
}
