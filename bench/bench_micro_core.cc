// Micro-benchmarks (google-benchmark) for the core data structures:
// bitvector Boolean ops, encoded-index selections, fragment mapping,
// query planning and the plan-first/plan-cache façade paths.

#include <benchmark/benchmark.h>
#include <stdlib.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "bitmap/compressed_bitvector.h"
#include "bitmap/encoded_bitmap_index.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/mini_warehouse.h"
#include "core/warehouse.h"
#include "fragment/plan_cache.h"
#include "fragment/query_planner.h"
#include "index/btree.h"
#include "sched/query_scheduler.h"
#include "schema/apb1.h"
#include "schema/star_schema.h"
#include "workload/arrival_generator.h"
#include "workload/query_parser.h"

namespace {

void BM_BitVectorAnd(benchmark::State& state) {
  const auto bits = static_cast<std::int64_t>(state.range(0));
  mdw::BitVector a(bits), b(bits);
  mdw::Rng rng(1);
  for (std::int64_t i = 0; i < bits; i += 64) a.Set(i);
  for (std::int64_t i = 0; i < bits; i += 128) b.Set(i);
  for (auto _ : state) {
    mdw::BitVector c = a;
    c &= b;
    benchmark::DoNotOptimize(c.Count());
  }
  state.SetBytesProcessed(state.iterations() * bits / 8);
}
BENCHMARK(BM_BitVectorAnd)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BitVectorPopcount(benchmark::State& state) {
  const auto bits = static_cast<std::int64_t>(state.range(0));
  mdw::BitVector a(bits);
  for (std::int64_t i = 0; i < bits; i += 3) a.Set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Count());
  }
  state.SetBytesProcessed(state.iterations() * bits / 8);
}
BENCHMARK(BM_BitVectorPopcount)->Arg(1 << 16)->Arg(1 << 20);

void BM_EncodedIndexSelect(benchmark::State& state) {
  const mdw::Hierarchy product({{"division", 8},
                                {"line", 24},
                                {"family", 120},
                                {"group", 480},
                                {"class", 960},
                                {"code", 14'400}});
  mdw::Rng rng(2);
  std::vector<std::int64_t> column;
  for (int i = 0; i < 100'000; ++i) column.push_back(rng.Uniform(0, 14'399));
  const mdw::EncodedBitmapIndex index(product, column);
  const auto depth = static_cast<mdw::Depth>(state.range(0));
  std::int64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Select(depth, v));
    v = (v + 1) % product.Cardinality(depth);
  }
}
BENCHMARK(BM_EncodedIndexSelect)->Arg(0)->Arg(3)->Arg(5);

void BM_FragmentOfRow(benchmark::State& state) {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation frag(
      &schema, {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});
  mdw::Rng rng(3);
  std::vector<std::vector<std::int64_t>> rows;
  for (int i = 0; i < 1'000; ++i) {
    rows.push_back({rng.Uniform(0, 14'399), rng.Uniform(0, 1'439),
                    rng.Uniform(0, 14), rng.Uniform(0, 23)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(frag.FragmentOfRow(rows[i]));
    i = (i + 1) % rows.size();
  }
}
BENCHMARK(BM_FragmentOfRow);

void BM_PlanQuery(benchmark::State& state) {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation frag(
      &schema, {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});
  const mdw::QueryPlanner planner(&schema, &frag);
  const auto query = mdw::apb1_queries::OneCodeOneQuarter(35, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Plan(query));
  }
}
BENCHMARK(BM_PlanQuery);

void BM_CompressedBitmapAnd(benchmark::State& state) {
  const std::int64_t bits = 1 << 20;
  mdw::BitVector a(bits), b(bits);
  for (std::int64_t i = 0; i < bits; i += state.range(0)) a.Set(i);
  for (std::int64_t i = 0; i < bits; i += 2 * state.range(0)) b.Set(i);
  const mdw::CompressedBitVector ca(a), cb(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ca.And(cb));
  }
  state.counters["ratio"] = ca.CompressionRatio();
}
BENCHMARK(BM_CompressedBitmapAnd)->Arg(3)->Arg(64)->Arg(1440);

void BM_WahCompress(benchmark::State& state) {
  const std::int64_t bits = 1 << 20;
  mdw::BitVector a(bits);
  for (std::int64_t i = 0; i < bits; i += state.range(0)) a.Set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdw::CompressedBitVector(a));
  }
  state.SetBytesProcessed(state.iterations() * bits / 8);
}
BENCHMARK(BM_WahCompress)->Arg(3)->Arg(1440);

void BM_BtreeLookup(benchmark::State& state) {
  mdw::BPlusTree tree;
  const std::int64_t n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) tree.Insert(i, i);
  std::int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(key));
    key = (key + 7'919) % n;
  }
}
BENCHMARK(BM_BtreeLookup)->Arg(1'000)->Arg(100'000);

void BM_BtreeRangeScan(benchmark::State& state) {
  mdw::BPlusTree tree;
  for (std::int64_t i = 0; i < 100'000; ++i) tree.Insert(i, i);
  std::int64_t lo = 0;
  for (auto _ : state) {
    std::int64_t sum = 0;
    tree.Scan(lo, lo + 999,
              [&sum](std::int64_t, std::int64_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
    lo = (lo + 1'000) % 99'000;
  }
}
BENCHMARK(BM_BtreeRangeScan);

void BM_ParseStarQuery(benchmark::State& state) {
  const auto schema = mdw::MakeApb1Schema();
  const std::string sql =
      "SELECT SUM(UnitsSold), SUM(DollarSales) FROM sales "
      "WHERE time.month = 3 AND product.group = 41";
  std::string error;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdw::ParseStarQuery(schema, sql, &error));
  }
}
BENCHMARK(BM_ParseStarQuery);

void BM_PlanUnsupportedQuery(benchmark::State& state) {
  // 1STORE's plan includes full slices (24 x 480 values).
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation frag(
      &schema, {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});
  const mdw::QueryPlanner planner(&schema, &frag);
  const auto query = mdw::apb1_queries::OneStore(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Plan(query));
  }
}
BENCHMARK(BM_PlanUnsupportedQuery);

// ---------------------------------------------------------------------------
// Plan-first façade: planning throughput with and without the plan cache,
// and the end-to-end N-derivations-per-batch guarantee.

mdw::Warehouse SimulatedWarehouse(std::size_t plan_cache_capacity) {
  mdw::SimConfig sim;
  sim.num_disks = 20;
  sim.num_nodes = 4;
  return mdw::Warehouse({.schema = mdw::MakeApb1Schema(),
                         .fragmentation = {{mdw::kApb1Time, 2},
                                           {mdw::kApb1Product, 3}},
                         .backend = mdw::BackendKind::kSimulated,
                         .sim = sim,
                         .plan_cache_capacity = plan_cache_capacity});
}

// Uncached façade planning: one full QueryPlanner derivation per call.
void BM_WarehousePlanUncached(benchmark::State& state) {
  const auto wh = SimulatedWarehouse(/*plan_cache_capacity=*/0);
  const auto query = mdw::apb1_queries::OneCodeOneQuarter(35, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wh.PlanShared(query));
  }
}
BENCHMARK(BM_WarehousePlanUncached);

// Repeated workload through the plan cache: every iteration is a hit, so
// the per-call cost drops to a signature + LRU lookup. Compare against
// BM_WarehousePlanUncached for the cache's repeated-workload speedup.
void BM_WarehousePlanCacheHit(benchmark::State& state) {
  const auto wh = SimulatedWarehouse(/*plan_cache_capacity=*/256);
  const auto query = mdw::apb1_queries::OneCodeOneQuarter(35, 2);
  wh.PlanShared(query);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(wh.PlanShared(query));
  }
  state.counters["hit_rate"] = wh.plan_cache_stats().HitRate();
}
BENCHMARK(BM_WarehousePlanCacheHit);

// End-to-end batch planning through Warehouse::ExecuteBatch on the
// materialized backend. The plans_per_query counter proves the plan-first
// pipeline's N (not 2N) derivations per batch of N distinct queries.
void BM_MaterializedBatchPlanFirst(benchmark::State& state) {
  const mdw::Warehouse wh({.schema = mdw::MakeTinyApb1Schema(),
                           .fragmentation = {{mdw::kApb1Time, 2},
                                             {mdw::kApb1Product, 3}},
                           .backend = mdw::BackendKind::kMaterialized,
                           .seed = 42,
                           .plan_cache_capacity = 0});
  std::vector<mdw::StarQuery> queries;
  for (std::int64_t month = 0; month < 12; ++month) {
    queries.push_back(mdw::apb1_queries::OneMonthOneGroup(month, month));
  }
  const auto before = mdw::QueryPlanner::LifetimePlanCount();
  std::uint64_t batches = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wh.ExecuteBatch(queries));
    ++batches;
  }
  state.counters["plans_per_query"] =
      static_cast<double>(mdw::QueryPlanner::LifetimePlanCount() - before) /
      static_cast<double>(batches * queries.size());
}
BENCHMARK(BM_MaterializedBatchPlanFirst);

// ---------------------------------------------------------------------------
// Fragment-clustered storage + partition-parallel execution.

// A mid-size APB-1-shaped schema (~2M fact rows at density 0.25): big
// enough that fragment confinement and parallel scans are measurable,
// small enough to materialise at bench startup.
mdw::StarSchema MakeMediumApb1Schema() {
  mdw::Dimension product("product",
                         mdw::Hierarchy({{"division", 2},
                                         {"line", 8},
                                         {"family", 24},
                                         {"group", 96},
                                         {"class", 480},
                                         {"code", 960}}),
                         mdw::IndexKind::kEncoded);
  mdw::Dimension customer("customer",
                          mdw::Hierarchy({{"retailer", 12}, {"store", 120}}),
                          mdw::IndexKind::kEncoded);
  mdw::Dimension channel("channel", mdw::Hierarchy({{"channel", 3}}),
                         mdw::IndexKind::kSimple);
  mdw::Dimension time("time",
                      mdw::Hierarchy(
                          {{"year", 2}, {"quarter", 8}, {"month", 24}}),
                      mdw::IndexKind::kSimple);
  return mdw::StarSchema("medium_sales",
                         {std::move(product), std::move(customer),
                          std::move(channel), std::move(time)},
                         /*density=*/0.25, mdw::PhysicalParams{});
}

// Shared across the MDHF benchmarks (fragment-clustered under
// {time::month, product::group}; serial backend — BM_MdhfParallelScan
// brings its own pool).
const mdw::Warehouse& MediumWarehouse() {
  static const auto* wh = new mdw::Warehouse(
      {.schema = MakeMediumApb1Schema(),
       .fragmentation = {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}},
       .backend = mdw::BackendKind::kMaterialized,
       .seed = 42,
       .num_workers = 1});
  return *wh;
}

// Fragment confinement: rows_scanned per query tracks the plan's fragment
// set, so wall time drops superlinearly with selectivity (arg 0 = no
// support / all fragments, 1 = 1MONTH / 1 of 24 months, 2 = 1MONTH1GROUP
// / 1 of 2304 fragments).
void BM_MdhfFragmentConfined(benchmark::State& state) {
  const auto& wh = MediumWarehouse();
  const mdw::StarQuery query = [&] {
    switch (state.range(0)) {
      case 0: return mdw::apb1_queries::OneStore(17);
      case 1: return mdw::apb1_queries::OneMonth(3);
      default: return mdw::apb1_queries::OneMonthOneGroup(3, 41);
    }
  }();
  std::int64_t rows_scanned = 0;
  for (auto _ : state) {
    const auto outcome = wh.Execute(query);
    rows_scanned = outcome.rows_scanned;
    benchmark::DoNotOptimize(outcome.aggregate->rows);
  }
  state.SetLabel(query.name());
  state.counters["rows_scanned_per_query"] =
      static_cast<double>(rows_scanned);
  state.counters["rows_total"] =
      static_cast<double>(wh.materialized()->row_count());
}
BENCHMARK(BM_MdhfFragmentConfined)->Arg(0)->Arg(1)->Arg(2);

// Partition parallelism: one heavy query (no fragmentation support, so
// every fragment's row range is processed, with an encoded-index bitmap
// filter) split over a worker pool. rows_scanned is identical at every
// degree; real time should shrink with workers on multi-core hardware.
// Coverage-aware aggregation: a hierarchy-aligned query's fragments are
// fully covered, so the answer comes from the measure prefix sums without
// scanning a row (arg 0; expect rows_scanned == 0 and fragments_summarized
// == fragments_processed). Compare against a residual query whose CODE
// predicate filters inside the fragment (arg 1) and against the same
// aligned query with summaries disabled, i.e. the plain fragment-confined
// scan (arg 2).
void BM_MdhfCoveredAggregate(benchmark::State& state) {
  static const auto* without_summaries = new mdw::Warehouse(
      {.schema = MakeMediumApb1Schema(),
       .fragmentation = {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}},
       .backend = mdw::BackendKind::kMaterialized,
       .seed = 42,
       .num_workers = 1,
       .enable_fragment_summaries = false});
  const bool summaries_off = state.range(0) == 2;
  const auto& wh = summaries_off ? *without_summaries : MediumWarehouse();
  const mdw::MiniWarehouse& mini = *wh.materialized();
  const mdw::StarQuery query =
      state.range(0) == 1 ? mdw::apb1_queries::OneCodeOneMonth(415, 3)
                          : mdw::apb1_queries::OneMonthOneGroup(3, 41);
  // Plan-first, like production batches: the measured loop is the
  // execution path (summary lookup vs range scan), not plan derivation.
  const auto plan = wh.Plan(query);
  mdw::MiniWarehouse::MdhfExecution exec;
  for (auto _ : state) {
    exec = mini.ExecuteWithPlan(query, plan);
    benchmark::DoNotOptimize(exec.result.rows);
  }
  state.SetLabel(std::string(query.name()) +
                 (summaries_off ? "/summaries_off" : ""));
  state.counters["rows_scanned_per_query"] =
      static_cast<double>(exec.rows_scanned);
  state.counters["rows_summarized_per_query"] =
      static_cast<double>(exec.rows_summarized);
  state.counters["fragments_summarized"] =
      static_cast<double>(exec.fragments_summarized);
  state.counters["fragments_processed"] =
      static_cast<double>(exec.fragments_processed);
}
BENCHMARK(BM_MdhfCoveredAggregate)->Arg(0)->Arg(1)->Arg(2);

// Grouped aggregation vs the fragmentation: the same one-quarter
// selection grouped at the time fragmentation level (arg 0: aligned,
// per-group answers straight from the prefix sums), above it (arg 1:
// aligned rollup), below the product fragmentation level (arg 2:
// per-row grouping, summaries bypassed), and aligned with summaries
// disabled (arg 3: the scan floor). rows_scanned_per_query separates
// the covered-group fast path from the scan path.
void BM_GroupByRollup(benchmark::State& state) {
  static const auto* without_summaries = new mdw::Warehouse(
      {.schema = MakeMediumApb1Schema(),
       .fragmentation = {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}},
       .backend = mdw::BackendKind::kMaterialized,
       .seed = 42,
       .num_workers = 1,
       .enable_fragment_summaries = false});
  const bool summaries_off = state.range(0) == 3;
  const auto& wh = summaries_off ? *without_summaries : MediumWarehouse();
  const mdw::GroupBy group_by = [&] {
    switch (state.range(0)) {
      case 1: return mdw::GroupBy{mdw::kApb1Time, 1};     // quarter
      case 2: return mdw::GroupBy{mdw::kApb1Product, 4};  // class
      default: return mdw::GroupBy{mdw::kApb1Time, 2};    // month
    }
  }();
  const auto query = mdw::apb1_queries::OneQuarter(2).WithGroupBy(group_by);
  mdw::QueryOutcome outcome;
  for (auto _ : state) {
    outcome = wh.Execute(query);
    benchmark::DoNotOptimize(outcome.table->rows.size());
  }
  state.SetLabel(std::string("group_d") + std::to_string(group_by.depth) +
                 "_dim" + std::to_string(group_by.dim) +
                 (summaries_off ? "/summaries_off" : ""));
  state.counters["groups"] =
      static_cast<double>(outcome.table->rows.size());
  state.counters["rows_scanned_per_query"] =
      static_cast<double>(outcome.rows_scanned);
  state.counters["rows_summarized_per_query"] =
      static_cast<double>(outcome.rows_summarized);
}
BENCHMARK(BM_GroupByRollup)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Deterministic top-k on top of grouped aggregation: ORDER BY
// SUM(DollarSales) DESC LIMIT k over the 96 product groups (arg = k,
// 0 = full sort). The sort is post-aggregation, so the spread between
// arg values is the partial-sort cost alone.
void BM_TopK(benchmark::State& state) {
  const auto& wh = MediumWarehouse();
  const auto query =
      mdw::StarQuery("ALL", {})
          .WithGroupBy({mdw::kApb1Product, 3})
          .WithOrderBy({/*item=*/1, /*descending=*/true,
                        /*limit=*/state.range(0)});
  mdw::QueryOutcome outcome;
  for (auto _ : state) {
    outcome = wh.Execute(query);
    benchmark::DoNotOptimize(outcome.table->rows.size());
  }
  state.counters["groups"] =
      static_cast<double>(outcome.table->rows.size());
  state.counters["rows_scanned_per_query"] =
      static_cast<double>(outcome.rows_scanned);
  state.counters["rows_summarized_per_query"] =
      static_cast<double>(outcome.rows_summarized);
}
BENCHMARK(BM_TopK)->Arg(0)->Arg(1)->Arg(10);

// A compact APB-1-shaped schema (~170k fact rows at density 0.25), cheap
// enough to materialise once per benchmark instance — the sharded-scan
// benchmark needs a separate store per (shards, round_gap) point.
mdw::StarSchema MakeCompactApb1Schema() {
  mdw::Dimension product("product",
                         mdw::Hierarchy({{"division", 2},
                                         {"line", 6},
                                         {"family", 12},
                                         {"group", 48},
                                         {"class", 240},
                                         {"code", 480}}),
                         mdw::IndexKind::kEncoded);
  mdw::Dimension customer("customer",
                          mdw::Hierarchy({{"retailer", 6}, {"store", 60}}),
                          mdw::IndexKind::kEncoded);
  mdw::Dimension channel("channel", mdw::Hierarchy({{"channel", 2}}),
                         mdw::IndexKind::kSimple);
  mdw::Dimension time("time",
                      mdw::Hierarchy(
                          {{"year", 1}, {"quarter", 4}, {"month", 12}}),
                      mdw::IndexKind::kSimple);
  return mdw::StarSchema("compact_sales",
                         {std::move(product), std::move(customer),
                          std::move(channel), std::move(time)},
                         /*density=*/0.25, mdw::PhysicalParams{});
}

// Sharded scan with affinity scheduling + stealing: the heavy no-support
// query (every fragment processed under a bitmap filter) over a store
// declustered into shards {1, 2, 4, 8} by round robin with round_gap
// {0, 1}, at 4 workers throughout. Emits the skew metric (max/mean shard
// busy-work — deterministic, machine-independent) next to wall time so
// the CI perf gate tracks placement quality as well as speed.
void BM_MdhfShardedScan(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  mdw::AllocationConfig allocation;
  allocation.round_gap = static_cast<int>(state.range(1));
  const mdw::Warehouse wh(
      {.schema = MakeCompactApb1Schema(),
       .fragmentation = {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}},
       .backend = mdw::BackendKind::kMaterialized,
       .seed = 42,
       .num_workers = 4,
       .num_shards = shards,
       .allocation = allocation});
  const auto query = mdw::apb1_queries::OneStore(17);
  wh.Plan(query);  // warm the plan cache; the loop measures execution
  double skew = 0;
  std::int64_t rows_scanned = 0;
  for (auto _ : state) {
    const auto outcome = wh.Execute(query);
    skew = outcome.shard_skew;
    rows_scanned = outcome.rows_scanned;
    benchmark::DoNotOptimize(outcome.aggregate->rows);
  }
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["round_gap"] = static_cast<double>(allocation.round_gap);
  state.counters["skew"] = skew;
  state.counters["rows_scanned_per_query"] =
      static_cast<double>(rows_scanned);
}
BENCHMARK(BM_MdhfShardedScan)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->UseRealTime();

// File-backed execution through the buffer pool: the heavy no-support
// query (every fragment's range scanned under a bitmap filter) against
// page-aligned segment files, with the pool sized at {1/4x, 1x, 4x} the
// two measure columns' page working set (arg 0, percent) and the pool
// either reset before every iteration (arg 1 = 1, cold: every page
// faults from the segment files) or left warm (arg 1 = 0: steady state,
// pins served from cache where the pool is big enough). Execution is
// serial, so pages_read_per_query is deterministic and the CI perf gate
// can track it like rows_scanned. The segment files are written once
// into a temp directory shared (and byte-identically reused) by all six
// arg combinations, and removed at process exit.
void BM_MdhfPagedScan(benchmark::State& state) {
  struct TempStoreDir {
    std::string path;
    TempStoreDir() {
      std::string tmpl = (std::filesystem::temp_directory_path() /
                          "mdw_bench_paged_XXXXXX")
                             .string();
      std::vector<char> buf(tmpl.begin(), tmpl.end());
      buf.push_back('\0');
      path = ::mkdtemp(buf.data());
    }
    ~TempStoreDir() {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  };
  static const TempStoreDir dir;

  const std::int64_t pool_pct = state.range(0);
  const bool cold = state.range(1) != 0;

  // Size the pool relative to the scan working set: the pages of the two
  // measure columns (the only columns a clustered residual scan reads).
  // The logical FactCount is close enough to the sampled row count for a
  // sizing knob.
  const mdw::StarSchema schema = MakeCompactApb1Schema();
  const std::int64_t tuples_per_page = schema.physical().TuplesPerPage();
  const std::int64_t working_set =
      2 * ((schema.FactCount() + tuples_per_page - 1) / tuples_per_page);
  mdw::storage::StoreOptions options;
  options.path = dir.path;
  options.pool_pages = std::max<std::int64_t>(16, working_set * pool_pct / 100);

  const std::vector<mdw::FragAttr> attrs = {{mdw::kApb1Time, 2},
                                            {mdw::kApb1Product, 3}};
  mdw::MiniWarehouse mini(MakeCompactApb1Schema(), 42, attrs,
                          /*enable_summaries=*/true, /*num_shards=*/1, {},
                          options);
  const mdw::Fragmentation frag(&mini.schema(), attrs);
  const mdw::QueryPlanner planner(&mini.schema(), &frag);
  const auto query = mdw::apb1_queries::OneStore(17);
  const auto plan = planner.Plan(query);

  mdw::MiniWarehouse::MdhfExecution exec;
  for (auto _ : state) {
    if (cold) {
      state.PauseTiming();
      mini.mutable_paged_store()->pool().Reset();
      state.ResumeTiming();
    }
    exec = mini.ExecuteWithPlan(query, plan);
    benchmark::DoNotOptimize(exec.result.rows);
  }
  state.SetLabel(std::string(cold ? "cold" : "warm") + "/pool_" +
                 std::to_string(pool_pct) + "pct");
  state.counters["pool_pages"] = static_cast<double>(options.pool_pages);
  state.counters["working_set_pages"] = static_cast<double>(working_set);
  state.counters["pages_read_per_query"] =
      static_cast<double>(exec.pages_read);
  state.counters["buffer_hits_per_query"] =
      static_cast<double>(exec.buffer_hits);
  state.counters["rows_scanned_per_query"] =
      static_cast<double>(exec.rows_scanned);
  // Storage-health baseline: a healthy paged scan never retries a read
  // and never fails a page checksum, so these gate at zero in CI.
  state.counters["io_retries_per_query"] = static_cast<double>(exec.io_retries);
  state.counters["checksum_failures_per_query"] =
      static_cast<double>(exec.checksum_failures);
}
BENCHMARK(BM_MdhfPagedScan)->ArgsProduct({{25, 100, 400}, {1, 0}});

void BM_MdhfParallelScan(benchmark::State& state) {
  const auto& wh = MediumWarehouse();
  const mdw::MiniWarehouse& mini = *wh.materialized();
  const auto query = mdw::apb1_queries::OneStore(17);
  const auto plan = wh.Plan(query);
  const int workers = static_cast<int>(state.range(0));
  const auto pool = workers > 1
                        ? std::make_unique<mdw::ThreadPool>(workers - 1)
                        : nullptr;
  std::int64_t rows_scanned = 0;
  for (auto _ : state) {
    const auto exec = mini.ExecuteWithPlan(query, plan, pool.get());
    rows_scanned = exec.rows_scanned;
    benchmark::DoNotOptimize(exec.result.rows);
  }
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["rows_scanned_per_query"] =
      static_cast<double>(rows_scanned);
}
BENCHMARK(BM_MdhfParallelScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Open-loop multi-user serving through the scheduler front end: a
// Poisson/zipfian arrival trace (overloaded ~5x, so admission control and
// the dispatch policy both bite) served at 4 workers with a bounded
// queue. Args: streams {1, 16, 256} x policy {0 = FCFS, 1 = credit}.
// Wall time covers the virtual-time schedule plus the real replay of the
// served queries; the counters (p99 latency in virtual-time ticks,
// unfairness = 1 - Jain index over per-stream work, rejected count) are
// deterministic, so the CI perf gate tracks scheduling quality next to
// speed. "unfairness" rather than "jain" because the gate fails on
// counter GROWTH: fairness regressions must read as increases.
void BM_MultiUserServe(benchmark::State& state) {
  const int streams = static_cast<int>(state.range(0));
  const auto policy = state.range(1) == 0 ? mdw::SchedPolicy::kFcfs
                                          : mdw::SchedPolicy::kCredit;
  const mdw::Warehouse wh(
      {.schema = MakeCompactApb1Schema(),
       .fragmentation = {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}},
       .backend = mdw::BackendKind::kMaterialized,
       .seed = 42,
       .plan_cache_capacity = 4096,
       .num_workers = 4});

  mdw::ArrivalConfig gen;
  gen.num_streams = streams;
  gen.mean_interarrival_vt = 1000.0;
  gen.stream_skew_theta = 0.5;
  gen.mix = {mdw::QueryType::k1Month1Group, mdw::QueryType::k1Quarter};
  gen.seed = 42;
  const auto arrivals =
      mdw::ArrivalGenerator(&wh.schema(), gen).Generate(512);

  mdw::ServingConfig config;
  config.policy = policy;
  config.num_workers = 4;
  config.queue_capacity = 256;

  wh.Serve(arrivals, config);  // warm the plan cache; the loop measures
  double p99 = 0, unfairness = 0, rejected = 0;
  double deadline_missed = 0, degraded = 0, served = 1;
  for (auto _ : state) {
    const auto batch = wh.Serve(arrivals, config);
    p99 = batch.serving->total.p99_response_vt;
    unfairness = 1.0 - batch.serving->jain_fairness;
    rejected = static_cast<double>(batch.serving->total.rejected);
    deadline_missed = static_cast<double>(batch.serving->total.deadline_missed);
    degraded = static_cast<double>(batch.serving->total.degraded);
    served = std::max(1.0, static_cast<double>(batch.queries.size()));
    benchmark::DoNotOptimize(batch.total_aggregate->rows);
  }
  state.counters["streams"] = static_cast<double>(streams);
  state.counters["p99_response_vt"] = p99;
  state.counters["unfairness"] = unfairness;
  state.counters["rejected"] = rejected;
  // Zero-baseline tripwires: no deadline is configured here, so any
  // nonzero value means the deadline machinery leaked into the default
  // serving path (a correctness regression the perf gate should catch).
  state.counters["deadline_missed_per_query"] = deadline_missed / served;
  state.counters["degraded_per_query"] = degraded / served;
  // Horizon 0 drains the queue, so served = submitted - rejected.
  state.counters["queries_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          (static_cast<double>(arrivals.size()) - rejected),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MultiUserServe)
    ->ArgsProduct({{1, 16, 256}, {0, 1}})
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
