// Reproduces paper Figure 5: response-time effect of parallel bitmap I/O
// for the I/O-bound 1STORE query on the 100-disk / 20-node configuration,
// varying the number of concurrent subqueries per node (t).

#include <cstdio>

#include "common/table_printer.h"
#include "schema/apb1.h"
#include "workload/workload_driver.h"

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation frag(&schema,
                                {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});

  std::printf(
      "Figure 5: 1STORE with parallel vs non-parallel bitmap I/O\n"
      "(d = 100, p = 20; staggered bitmap allocation)\n\n");
  mdw::TablePrinter table({"t", "non-parallel I/O [s]", "parallel I/O [s]",
                           "improvement"});

  for (const int t : {1, 3, 5, 7, 9, 11, 13}) {
    double response[2] = {0, 0};
    for (const bool parallel : {false, true}) {
      mdw::SimConfig config;
      config.num_disks = 100;
      config.num_nodes = 20;
      config.tasks_per_node = t;
      config.parallel_bitmap_io = parallel;
      mdw::WorkloadDriver driver(&schema, &frag, config);
      response[parallel ? 1 : 0] =
          driver.RunSingleUser(mdw::QueryType::k1Store, 1).avg_response_ms;
    }
    table.AddRow({std::to_string(t),
                  mdw::TablePrinter::Num(response[0] / 1000, 1),
                  mdw::TablePrinter::Num(response[1] / 1000, 1),
                  mdw::TablePrinter::Num(
                      100 * (1 - response[1] / response[0]), 1) + " %"});
  }
  table.Print(stdout);

  std::printf(
      "\nPaper shape: response improves linearly up to ~5 subqueries per\n"
      "node (total subqueries = disks), then flattens; parallel bitmap\n"
      "I/O delivers noticeable improvements (paper: up to 13%%), most\n"
      "pronounced at low t, shrinking as disk contention grows.\n");
  return 0;
}
