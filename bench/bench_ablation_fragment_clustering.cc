// Ablation A3 (paper Sec. 6.3 outlook): clustering multiple fragments
// into one subquery. This reduces per-subquery scheduling overhead
// (initiate/terminate CPU, assignment/result messages) for fragmentations
// with very many fragments, at the price of coarser load-balancing units.

#include <cstdio>

#include "common/table_printer.h"
#include "schema/apb1.h"
#include "workload/workload_driver.h"

namespace {

mdw::SimResult Run(const mdw::StarSchema& schema,
                   const mdw::Fragmentation& frag, mdw::QueryType type,
                   int cluster) {
  mdw::SimConfig config;
  config.num_disks = 100;
  config.num_nodes = 20;
  config.tasks_per_node = 5;
  config.fragment_cluster_factor = cluster;
  mdw::WorkloadDriver driver(&schema, &frag, config);
  return driver.RunSingleUser(type, 1);
}

}  // namespace

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation month_code(
      &schema, {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 5}});
  const mdw::Fragmentation month_group(
      &schema, {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});

  std::printf(
      "Ablation A3: fragment clustering (fragments per subquery)\n\n");
  mdw::TablePrinter table({"fragmentation", "query", "cluster",
                           "subqueries", "messages", "response [s]"});
  struct Case {
    const mdw::Fragmentation* frag;
    const char* name;
    mdw::QueryType type;
    int cluster;
  };
  const Case cases[] = {
      {&month_group, "F_MonthGroup", mdw::QueryType::k1Month, 1},
      {&month_group, "F_MonthGroup", mdw::QueryType::k1Month, 4},
      {&month_group, "F_MonthGroup", mdw::QueryType::k1Month, 16},
      {&month_code, "F_MonthCode", mdw::QueryType::k1Store, 1},
      {&month_code, "F_MonthCode", mdw::QueryType::k1Store, 16},
      {&month_code, "F_MonthCode", mdw::QueryType::k1Store, 64},
  };
  for (const auto& c : cases) {
    const auto result = Run(schema, *c.frag, c.type, c.cluster);
    table.AddRow({c.name, ToString(c.type), std::to_string(c.cluster),
                  mdw::TablePrinter::Int(result.subqueries),
                  mdw::TablePrinter::Int(result.messages),
                  mdw::TablePrinter::Num(result.avg_response_ms / 1000, 1)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected: for F_MonthCode's 345,600 fragments, clustering cuts\n"
      "hundreds of thousands of scheduling messages; response times\n"
      "improve until clusters become too coarse to balance load. The\n"
      "paper proposes exactly this to rescue fine fragmentations.\n");
  return 0;
}
