// Ablation A5: sensitivity of the fragmentation threshold n_max and of
// 1STORE's I/O cost to the prefetch granule (paper Sec. 4.4).

#include <cstdio>

#include "common/table_printer.h"
#include "cost/io_cost_model.h"
#include "fragment/query_planner.h"
#include "fragment/thresholds.h"
#include "schema/apb1.h"
#include "sim/simulator.h"

int main() {
  const auto schema = mdw::MakeApb1Schema();

  std::printf("Ablation A5a: n_max = N / (8 * PgSize * PrefetchGran)\n\n");
  {
    mdw::TablePrinter table({"prefetch granule [pages]", "n_max",
                             "min fragment size [MiB]"});
    for (const int granule : {1, 2, 4, 8, 16}) {
      const auto n_max = mdw::MaxFragmentCount(
          schema.FactCount(), schema.physical().page_size_bytes, granule);
      const double mib = static_cast<double>(schema.FactCount()) / n_max *
                         20.0 / (1024 * 1024);
      table.AddRow({std::to_string(granule), mdw::TablePrinter::Int(n_max),
                    mdw::TablePrinter::Num(mib, 2)});
    }
    table.Print(stdout);
    std::printf("\nPaper: PrefetchGran=4, PgSize=4K gives n_max = 14,238\n"
                "and a minimal fragment size of ~2.5 MB.\n\n");
  }

  std::printf(
      "Ablation A5b: analytical 1STORE cost under F_MonthGroup for\n"
      "different bitmap prefetch granules\n\n");
  {
    const mdw::Fragmentation frag(
        &schema, {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});
    const mdw::QueryPlanner planner(&schema, &frag);
    const auto plan = planner.Plan(mdw::apb1_queries::OneStore(7));
    mdw::TablePrinter table({"bitmap granule [pages]", "bitmap I/O ops",
                             "bitmap pages", "total I/O [MiB]"});
    for (const int granule : {1, 2, 5, 8}) {
      mdw::IoCostParams params;
      params.bitmap_prefetch_pages = granule;
      const mdw::IoCostModel model(&schema, params);
      const auto est = model.Estimate(plan);
      table.AddRow({std::to_string(granule),
                    mdw::TablePrinter::Int(est.bitmap_io_ops),
                    mdw::TablePrinter::Int(est.bitmap_pages_read),
                    mdw::TablePrinter::Num(est.total_io_mib, 0)});
    }
    table.Print(stdout);
    std::printf(
        "\nExpected: small granules multiply bitmap I/O operations (each\n"
        "5-page bitmap fragment needs several reads); granules beyond the\n"
        "bitmap fragment size change nothing (the granule adapts down).\n");
  }
  return 0;
}
