// Reproduces paper Table 1: hierarchy representation in encoded bitmap
// join indices for the APB-1 PRODUCT dimension.

#include <cstdio>
#include <string>

#include "common/table_printer.h"
#include "schema/apb1.h"

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const auto& product = schema.dimension(mdw::kApb1Product);
  const auto& h = product.hierarchy();

  std::printf("Table 1: hierarchy representation in encoded bitmap join "
              "indices (PRODUCT)\n\n");

  std::vector<std::string> header = {"level"};
  std::vector<std::string> totals = {"#total elements"};
  std::vector<std::string> within = {"#elements within parent"};
  std::vector<std::string> bits = {"#bits for encoding"};
  int total_bits = 0;
  for (mdw::Depth d = 0; d < h.num_levels(); ++d) {
    header.push_back(h.level(d).name);
    totals.push_back(mdw::TablePrinter::Int(h.Cardinality(d)));
    within.push_back(mdw::TablePrinter::Int(h.Fanout(d - 1)));
    bits.push_back(std::to_string(h.BitsAt(d)));
    total_bits += h.BitsAt(d);
  }
  header.push_back("total");
  totals.push_back(mdw::TablePrinter::Int(h.LeafCardinality()));
  within.push_back("");
  bits.push_back(std::to_string(total_bits));

  mdw::TablePrinter table(header);
  table.AddRow(totals);
  table.AddRow(within);
  table.AddRow(bits);
  table.Print(stdout);

  std::printf(
      "\nEncoded index sizes: PRODUCT %d bitmaps, CUSTOMER %d bitmaps;\n"
      "simple indices: TIME %d bitmaps, CHANNEL %d bitmaps; total %d\n"
      "(paper Sec. 3.2: 15 + 12 + 34 + 15 = 76).\n",
      product.TotalBitmapCount(),
      schema.dimension(mdw::kApb1Customer).TotalBitmapCount(),
      schema.dimension(mdw::kApb1Time).TotalBitmapCount(),
      schema.dimension(mdw::kApb1Channel).TotalBitmapCount(),
      schema.TotalBitmapCount());

  // Demonstrate the prefix property the paper highlights: a GROUP needs
  // only 10 of the 15 bitmaps.
  std::printf("\nPrefix bits per product level: ");
  for (mdw::Depth d = 0; d < h.num_levels(); ++d) {
    std::printf("%s=%d ", h.level(d).name.c_str(), h.PrefixBits(d));
  }
  std::printf("\n");
  return 0;
}
