// The "tool" of paper Sec. 4.7: given a star schema and a weighted query
// mix, enumerate all MDHF fragmentations, prune them by the thresholds
// (minimal bitmap fragment size, fragment-count caps, one fragment per
// disk) and rank the survivors by analytical I/O cost.

#include <cstdio>

#include "core/mdw.h"

int main() {
  const auto schema = mdw::MakeApb1Schema();

  // Guideline 1: the thresholds (paper Sec. 4.4/4.7).
  mdw::AdvisorOptions options;
  options.thresholds.min_bitmap_fragment_pages = 4.0;  // prefetch granule
  options.thresholds.max_fragments = 100'000;          // administration cap
  options.thresholds.max_bitmaps = 76;
  options.thresholds.min_fragments = 100;  // one fragment per disk

  // A mix resembling the paper's experiments: supported and unsupported
  // query types.
  const std::vector<mdw::WeightedQuery> mix = {
      {mdw::apb1_queries::OneMonth(3), 3.0},
      {mdw::apb1_queries::OneMonthOneGroup(3, 41), 3.0},
      {mdw::apb1_queries::OneCodeOneQuarter(35, 2), 2.0},
      {mdw::apb1_queries::OneStore(7), 1.0},
  };

  const mdw::AllocationAdvisor advisor(&schema, options);
  const auto all = advisor.Evaluate(mix);
  int admissible = 0;
  for (const auto& c : all) {
    if (c.violations.empty()) ++admissible;
  }
  std::printf("Evaluated %zu fragmentations; %d admissible under the "
              "thresholds\n\n",
              all.size(), admissible);

  std::printf("Top 10 recommendations (weighted total I/O of the mix):\n");
  mdw::TablePrinter table({"rank", "fragmentation", "fragments",
                           "bitmap-frag pages", "bitmaps", "mix I/O [MiB]"});
  const auto recommended = advisor.Recommend(mix);
  for (std::size_t i = 0; i < recommended.size() && i < 10; ++i) {
    const auto& c = recommended[i];
    table.AddRow({std::to_string(i + 1), c.fragmentation.Label(),
                  mdw::TablePrinter::Int(c.fragments),
                  mdw::TablePrinter::Num(c.bitmap_fragment_pages, 1),
                  std::to_string(c.remaining_bitmaps),
                  mdw::TablePrinter::Num(c.total_io_mib, 0)});
  }
  table.Print(stdout);

  // Show why a tempting fine-grained option was rejected.
  std::printf("\nRejected examples:\n");
  int shown = 0;
  for (const auto& c : all) {
    if (c.violations.empty() || shown >= 3) continue;
    std::printf("  %s: %s\n", c.fragmentation.Label().c_str(),
                c.violations.front().detail.c_str());
    ++shown;
  }

  // Guideline 3 in action: compare the winner with the worst admissible.
  if (!recommended.empty()) {
    const auto& best = recommended.front();
    const auto& worst = recommended.back();
    std::printf("\nBest %s needs %.0f MiB; worst admissible %s needs %.0f "
                "MiB (%.0fx more).\n",
                best.fragmentation.Label().c_str(), best.total_io_mib,
                worst.fragmentation.Label().c_str(), worst.total_io_mib,
                worst.total_io_mib / best.total_io_mib);
  }
  return 0;
}
