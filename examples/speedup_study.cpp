// Speed-up study, real and simulated: the SAME AllocationConfig
// (round-robin declustering, optionally gapped — paper Sec. 4.6) is
// evaluated twice at every parallel degree P:
//
//  - REAL: the materialized engine declusters its fragment-clustered
//    store into P physical shards under the AllocationConfig and
//    executes with P workers (one affinity task per shard, idle workers
//    stealing). Wall time is measured, and the skew counter (max/mean
//    shard busy-work) reports how evenly the allocation spread the rows.
//  - SIMULATED: SIMPAD models a Shared Disk PDBS whose hardware grows
//    with P (the methodology of paper Sec. 6.1 / Figs. 3-4), with the
//    allocation knobs taken from the same config.
//
// Both columns should show near-linear speedup when the allocation
// declusters well; a skew near 1.0 on the real engine is the measured
// counterpart of the simulator's balanced-disk assumption.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/mdw.h"

namespace {

// Heavy no-support scan: the store predicate lies outside the
// fragmentation, so every fragment is processed under a bitmap filter
// and the work spreads over all shards — the disk-bound shape of the
// paper's 1STORE, widened to half the stores so the per-row aggregation
// is substantial enough to measure parallel scaling on.
mdw::StarQuery StudyQuery() {
  std::vector<std::int64_t> stores;
  for (std::int64_t s = 0; s < 30; ++s) stores.push_back(s);
  return mdw::StarQuery("30STORES", {{mdw::kApb1Customer, 1, stores}});
}

// A mid-size APB-1-shaped schema (~690k fact rows at density 0.25): big
// enough that sharded scans dominate scheduling overhead, small enough
// to materialise once per hardware point.
mdw::StarSchema MakeStudySchema() {
  mdw::Dimension product("product",
                         mdw::Hierarchy({{"division", 2},
                                         {"line", 8},
                                         {"family", 24},
                                         {"group", 96},
                                         {"class", 480},
                                         {"code", 960}}),
                         mdw::IndexKind::kEncoded);
  mdw::Dimension customer("customer",
                          mdw::Hierarchy({{"retailer", 6}, {"store", 60}}),
                          mdw::IndexKind::kEncoded);
  mdw::Dimension channel("channel", mdw::Hierarchy({{"channel", 2}}),
                         mdw::IndexKind::kSimple);
  mdw::Dimension time("time",
                      mdw::Hierarchy(
                          {{"year", 2}, {"quarter", 8}, {"month", 24}}),
                      mdw::IndexKind::kSimple);
  return mdw::StarSchema("study_sales",
                         {std::move(product), std::move(customer),
                          std::move(channel), std::move(time)},
                         /*density=*/0.25, mdw::PhysicalParams{});
}

/// Best-of-3 wall milliseconds of `runs` back-to-back executions.
double MeasureMs(const mdw::Warehouse& wh, const mdw::StarQuery& query,
                 int runs) {
  double best = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < runs; ++r) {
      const auto outcome = wh.Execute(query);
      if (outcome.aggregate->rows < 0) std::abort();  // keep it live
    }
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count() /
        runs;
    if (attempt == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  const std::vector<mdw::FragAttr> month_group = {{mdw::kApb1Time, 2},
                                                  {mdw::kApb1Product, 3}};

  // ONE allocation policy for both engines: plain round robin (set
  // round_gap = 1 or cluster_factor > 1 to study the Sec. 4.6 variants
  // on simulator and hardware alike).
  mdw::AllocationConfig allocation;
  allocation.round_gap = 0;
  allocation.cluster_factor = 1;

  const int degrees[] = {1, 2, 4, 8};
  const int kRuns = 12;

  const mdw::StarSchema label_schema = MakeStudySchema();
  std::printf(
      "Speed-up study under %s, allocation: round robin "
      "(gap=%d, cluster=%d)\n"
      "REAL = materialized store, P shards x P workers (%u hardware "
      "threads here); SIM = SIMPAD Shared Disk, hardware scaled by P\n\n",
      mdw::Fragmentation(&label_schema, month_group).Label().c_str(),
      allocation.round_gap, allocation.cluster_factor,
      std::thread::hardware_concurrency());

  mdw::TablePrinter table({"P", "real 30STORES [ms]", "real speedup", "skew",
                           "sim 1STORE [s]", "sim speedup"});

  double base_real = 0, base_sim = 0;
  for (const int p : degrees) {
    // ---- real: sharded materialized execution ----
    const mdw::Warehouse real({.schema = MakeStudySchema(),
                               .fragmentation = month_group,
                               .backend = mdw::BackendKind::kMaterialized,
                               .seed = 42,
                               .num_workers = p,
                               .num_shards = p,
                               .allocation = allocation});
    const auto query = StudyQuery();
    const double real_ms = MeasureMs(real, query, kRuns);
    const double skew = real.Execute(query).shard_skew;

    // ---- simulated: same allocation knobs, hardware scaled by P ----
    mdw::SimConfig sim;
    sim.num_disks = 10 * p;
    sim.num_nodes = 2 * p;
    sim.tasks_per_node = 5;
    sim.round_gap = allocation.round_gap;
    sim.fragment_cluster_factor = allocation.cluster_factor;
    sim.bitmap_placement = allocation.bitmap_placement;
    mdw::WorkloadDriver driver(
        mdw::Warehouse({.schema = mdw::MakeApb1Schema(),
                        .fragmentation = month_group,
                        .sim = sim}));
    const auto sim_result =
        driver.RunSingleUser(mdw::QueryType::k1Store, 3);

    if (p == degrees[0]) {
      base_real = real_ms;
      base_sim = sim_result.avg_response_ms;
    }
    table.AddRow({std::to_string(p), mdw::TablePrinter::Num(real_ms, 2),
                  mdw::TablePrinter::Num(base_real / real_ms, 2),
                  mdw::TablePrinter::Num(skew, 2),
                  mdw::TablePrinter::Num(sim_result.avg_response_ms / 1000, 2),
                  mdw::TablePrinter::Num(base_sim / sim_result.avg_response_ms,
                                         2)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected (given at least P hardware threads): both columns speed\n"
      "up together as P grows — the same round-robin declustering that\n"
      "balances SIMPAD's disks balances the materialized shards (skew\n"
      "stays near 1.0). A poor allocation (try cluster_factor = 64)\n"
      "raises skew and flattens BOTH curves — the bridge between the\n"
      "paper's simulation and real hardware.\n");
  return 0;
}
