// A small speed-up study on the simulated Shared Disk PDBS: how do a
// disk-bound and a CPU-bound star query scale when disks and processors
// grow together? Reproduces the methodology of paper Sec. 6.1 on a
// reduced grid, driving each hardware point through the mdw::Warehouse
// façade.

#include <cstdio>

#include "core/mdw.h"

int main() {
  const std::vector<mdw::FragAttr> month_group = {{mdw::kApb1Time, 2},
                                                  {mdw::kApb1Product, 3}};

  struct Hardware {
    int disks;
    int nodes;
  };
  const Hardware grid[] = {{20, 4}, {40, 8}, {80, 16}};

  const auto schema = mdw::MakeApb1Schema();
  std::printf("Speed-up study under %s (t chosen as d/p)\n\n",
              mdw::Fragmentation(&schema, month_group).Label().c_str());
  mdw::TablePrinter table({"d", "p", "1GROUP1STORE [s]", "speedup",
                           "1MONTH [s]", "speedup"});

  double base_io = 0, base_cpu = 0;
  for (const auto& hw : grid) {
    mdw::SimConfig config;
    config.num_disks = hw.disks;
    config.num_nodes = hw.nodes;
    config.tasks_per_node = hw.disks / hw.nodes;
    mdw::WorkloadDriver driver(mdw::Warehouse({.schema = mdw::MakeApb1Schema(),
                                               .fragmentation = month_group,
                                               .sim = config}));

    // Disk-bound: sparse hits plus bitmap reads on 24 fragments.
    const auto io_bound =
        driver.RunSingleUser(mdw::QueryType::k1Group1Store, 3);
    // CPU-bound: full scan of 480 fragments, no bitmaps.
    const auto cpu_bound = driver.RunSingleUser(mdw::QueryType::k1Month, 3);
    if (hw.disks == grid[0].disks) {
      base_io = io_bound.avg_response_ms;
      base_cpu = cpu_bound.avg_response_ms;
    }
    table.AddRow(
        {std::to_string(hw.disks), std::to_string(hw.nodes),
         mdw::TablePrinter::Num(io_bound.avg_response_ms / 1000, 2),
         mdw::TablePrinter::Num(base_io / io_bound.avg_response_ms, 2),
         mdw::TablePrinter::Num(cpu_bound.avg_response_ms / 1000, 2),
         mdw::TablePrinter::Num(base_cpu / cpu_bound.avg_response_ms, 2)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected: both queries speed up near-linearly as the hardware\n"
      "doubles — the disk-bound one rides the disk count, the CPU-bound\n"
      "one the processor count (paper Figs. 3 and 4).\n");
  return 0;
}
