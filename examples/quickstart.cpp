// Quickstart: build the APB-1 star schema, define an MDHF fragmentation,
// plan a star query, estimate its I/O, and simulate it on a Shared Disk
// parallel database system — the whole pipeline in ~60 lines.

#include <cstdio>

#include "core/mdw.h"

int main() {
  // 1. The APB-1 star schema of the paper: 4 hierarchical dimensions and
  //    a fact table of 1.87 billion rows (never materialised).
  const auto schema = mdw::MakeApb1Schema();
  std::printf("Schema '%s': %lld fact rows, %d bitmaps without "
              "fragmentation\n",
              schema.fact_table_name().c_str(),
              static_cast<long long>(schema.FactCount()),
              schema.TotalBitmapCount());

  // 2. The paper's flagship fragmentation F_MonthGroup: one fragment per
  //    (month, product group) combination.
  const mdw::Fragmentation frag(
      &schema, {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});
  std::printf("Fragmentation %s: %lld fragments, %.1f bitmap-fragment "
              "pages, %d bitmaps remain materialised\n",
              frag.Label().c_str(),
              static_cast<long long>(frag.FragmentCount()),
              frag.BitmapFragmentPages(), mdw::RemainingBitmapCount(frag));

  // 3. Plan a two-dimensional star query: one month, one product group.
  const mdw::QueryPlanner planner(&schema, &frag);
  const auto query = mdw::apb1_queries::OneMonthOneGroup(3, 41);
  const auto plan = planner.Plan(query);
  std::printf("\nQuery %s: class %s / %s, %lld fragment(s), %d bitmap "
              "reads per fragment\n",
              query.name().c_str(), mdw::ToString(plan.query_class()),
              mdw::ToString(plan.io_class()),
              static_cast<long long>(plan.FragmentCount()),
              plan.BitmapsPerFragment());

  // 4. Analytical I/O estimate (the tool of paper Sec. 4.7).
  const mdw::IoCostModel model(&schema);
  const auto est = model.Estimate(plan);
  std::printf("Estimated I/O: %lld fact ops, %lld fact pages, %lld bitmap "
              "pages, %.1f MiB\n",
              static_cast<long long>(est.fact_io_ops),
              static_cast<long long>(est.fact_pages_read),
              static_cast<long long>(est.bitmap_pages_read),
              est.total_io_mib);

  // 5. Simulate the query on 100 disks / 20 nodes (paper Table 4 setup).
  mdw::SimConfig config;
  config.num_disks = 100;
  config.num_nodes = 20;
  config.tasks_per_node = 4;
  mdw::Simulator sim(&schema, &frag, config);
  const auto result = sim.RunSingleUser({query});
  std::printf("\nSimulated on d=%d, p=%d: response time %.2f s "
              "(%lld subqueries, %lld disk I/Os)\n",
              config.num_disks, config.num_nodes,
              result.avg_response_ms / 1000,
              static_cast<long long>(result.subqueries),
              static_cast<long long>(result.disk_ios));

  // Compare against the same query without any fragmentation.
  const mdw::Fragmentation none(&schema, {});
  mdw::Simulator baseline_sim(&schema, &none, config);
  const auto baseline = baseline_sim.RunSingleUser({query});
  std::printf("Same query without fragmentation: %.2f s -> MDHF speedup "
              "%.0fx\n",
              baseline.avg_response_ms / 1000,
              baseline.avg_response_ms / result.avg_response_ms);
  return 0;
}
