// Quickstart: stand up the APB-1 warehouse behind the mdw::Warehouse
// façade, plan a star query, estimate its I/O, and execute it on the
// simulated Shared Disk parallel database system — the whole pipeline
// through one value-semantic entry point.

#include <cstdio>

#include "core/mdw.h"

int main() {
  // 1. One façade over the paper's whole machinery: the APB-1 star schema
  //    (1.87 billion fact rows, never materialised), the flagship
  //    fragmentation F_MonthGroup, and the SIMPAD simulator on 100 disks /
  //    20 nodes (paper Table 4 setup).
  mdw::SimConfig sim;
  sim.num_disks = 100;
  sim.num_nodes = 20;
  sim.tasks_per_node = 4;
  const mdw::Warehouse warehouse(
      {.schema = mdw::MakeApb1Schema(),
       .fragmentation = {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}},
       .backend = mdw::BackendKind::kSimulated,
       .sim = sim});

  const auto& schema = warehouse.schema();
  std::printf("Schema '%s': %lld fact rows, %d bitmaps without "
              "fragmentation\n",
              schema.fact_table_name().c_str(),
              static_cast<long long>(schema.FactCount()),
              schema.TotalBitmapCount());

  const auto& frag = warehouse.fragmentation();
  std::printf("Fragmentation %s: %lld fragments, %.1f bitmap-fragment "
              "pages, %d bitmaps remain materialised\n",
              frag.Label().c_str(),
              static_cast<long long>(frag.FragmentCount()),
              frag.BitmapFragmentPages(), mdw::RemainingBitmapCount(frag));

  // 2. Plan a two-dimensional star query: one month, one product group.
  const auto query = mdw::apb1_queries::OneMonthOneGroup(3, 41);
  const auto plan = warehouse.Plan(query);
  std::printf("\nQuery %s: class %s / %s, %lld fragment(s), %d bitmap "
              "reads per fragment\n",
              query.name().c_str(), mdw::ToString(plan.query_class()),
              mdw::ToString(plan.io_class()),
              static_cast<long long>(plan.FragmentCount()),
              plan.BitmapsPerFragment());

  // 3. Analytical I/O estimate (the tool of paper Sec. 4.7).
  const mdw::IoCostModel model(&schema);
  const auto est = model.Estimate(plan);
  std::printf("Estimated I/O: %lld fact ops, %lld fact pages, %lld bitmap "
              "pages, %.1f MiB\n",
              static_cast<long long>(est.fact_io_ops),
              static_cast<long long>(est.fact_pages_read),
              static_cast<long long>(est.bitmap_pages_read),
              est.total_io_mib);

  // 4. Execute: the façade plans the query and runs it on its backend.
  const auto outcome = warehouse.Execute(query);
  std::printf("\nSimulated on d=%d, p=%d: response time %.2f s "
              "(%lld subqueries, %lld disk I/Os)\n",
              sim.num_disks, sim.num_nodes, outcome.response_ms / 1000,
              static_cast<long long>(outcome.sim->subqueries),
              static_cast<long long>(outcome.sim->disk_ios));

  // 5. Compare against the same query without any fragmentation: same
  //    schema, same hardware, empty fragmentation list.
  const mdw::Warehouse baseline({.schema = mdw::MakeApb1Schema(),
                                 .fragmentation = {},
                                 .backend = mdw::BackendKind::kSimulated,
                                 .sim = sim});
  const auto base = baseline.Execute(query);
  std::printf("Same query without fragmentation: %.2f s -> MDHF speedup "
              "%.0fx\n",
              base.response_ms / 1000, base.response_ms / outcome.response_ms);
  return 0;
}
