// Functional end-to-end demo: materialise a small star warehouse, build
// the bitmap join indices, and execute star queries three ways — full
// scan, bitmap path, and MDHF fragment-confined path — verifying they all
// return identical aggregates while touching very different amounts of
// data.

#include <cstdio>

#include "core/mdw.h"

namespace {

void Show(const mdw::MiniWarehouse& warehouse, const mdw::StarQuery& query,
          const mdw::Fragmentation& frag) {
  const auto full = warehouse.ExecuteFullScan(query);
  const auto bitmap = warehouse.ExecuteWithBitmaps(query);
  const auto mdhf = warehouse.ExecuteWithFragmentation(query, frag);

  std::printf("%-14s rows=%-6lld units=%-8lld  class=%s/%s\n",
              query.name().c_str(), static_cast<long long>(full.rows),
              static_cast<long long>(full.units_sold),
              mdw::ToString(mdhf.query_class),
              mdw::ToString(mdhf.io_class));
  std::printf("  full scan      : %lld rows scanned\n",
              static_cast<long long>(warehouse.row_count()));
  std::printf("  MDHF           : %lld fragments, %lld rows scanned, "
              "%d bitmap reads/fragment\n",
              static_cast<long long>(mdhf.fragments_processed),
              static_cast<long long>(mdhf.rows_scanned), mdhf.bitmaps_read);
  const bool consistent = full == bitmap && full == mdhf.result;
  std::printf("  results agree  : %s\n\n", consistent ? "YES" : "NO !!!");
}

}  // namespace

int main() {
  mdw::MiniWarehouse warehouse(mdw::MakeTinyApb1Schema(), /*seed=*/42);
  std::printf("Mini warehouse: %lld fact rows materialised, %d bitmaps\n\n",
              static_cast<long long>(warehouse.row_count()),
              warehouse.indexes().TotalBitmapCount());

  const mdw::Fragmentation frag(
      &warehouse.schema(), {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});
  std::printf("Fragmentation %s: %lld fragments\n\n", frag.Label().c_str(),
              static_cast<long long>(frag.FragmentCount()));

  // The paper's query spectrum: Q1 (exact match), Q2 (below), Q3 (above),
  // Q4 (mixed) and an unsupported query.
  Show(warehouse, mdw::StarQuery("1MONTH1GROUP", {{mdw::kApb1Time, 2, {3}},
                                                  {mdw::kApb1Product, 3, {7}}}),
       frag);
  Show(warehouse,
       mdw::StarQuery("1CODE1MONTH",
                      {{mdw::kApb1Product, 5, {30}}, {mdw::kApb1Time, 2, {3}}}),
       frag);
  Show(warehouse, mdw::StarQuery("1QUARTER", {{mdw::kApb1Time, 1, {2}}}),
       frag);
  Show(warehouse,
       mdw::StarQuery("1CODE1QUARTER",
                      {{mdw::kApb1Product, 5, {30}}, {mdw::kApb1Time, 1, {2}}}),
       frag);
  Show(warehouse, mdw::StarQuery("1STORE", {{mdw::kApb1Customer, 1, {17}}}),
       frag);
  return 0;
}
