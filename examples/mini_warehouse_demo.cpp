// Functional end-to-end demo: stand up a small star warehouse on the
// materialized backend of the mdw::Warehouse façade and execute star
// queries three ways — the façade's MDHF fragment-confined path plus the
// ground-truth full scan and bitmap paths of the underlying mini
// warehouse — verifying they all return identical aggregates while
// touching very different amounts of data.

#include <cstdio>

#include "core/mdw.h"

namespace {

void Show(const mdw::Warehouse& warehouse, const mdw::StarQuery& query) {
  const auto& mini = *warehouse.materialized();
  const auto full = mini.ExecuteFullScan(query);
  const auto bitmap = mini.ExecuteWithBitmaps(query);
  const auto mdhf = warehouse.Execute(query);

  std::printf("%-14s rows=%-6lld units=%-8lld  class=%s/%s\n",
              query.name().c_str(), static_cast<long long>(full.rows),
              static_cast<long long>(full.units_sold),
              mdw::ToString(mdhf.query_class), mdw::ToString(mdhf.io_class));
  std::printf("  full scan      : %lld rows scanned\n",
              static_cast<long long>(mini.row_count()));
  std::printf("  MDHF           : %lld fragments, %lld rows scanned, "
              "%d bitmap reads/fragment\n",
              static_cast<long long>(mdhf.fragments_processed),
              static_cast<long long>(mdhf.rows_scanned),
              mdhf.bitmaps_per_fragment);
  const bool consistent = full == bitmap && full == *mdhf.aggregate;
  std::printf("  results agree  : %s\n\n", consistent ? "YES" : "NO !!!");
}

}  // namespace

int main() {
  const mdw::Warehouse warehouse(
      {.schema = mdw::MakeTinyApb1Schema(),
       .fragmentation = {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}},
       .backend = mdw::BackendKind::kMaterialized,
       .seed = 42});
  std::printf("Mini warehouse: %lld fact rows materialised, %d bitmaps\n\n",
              static_cast<long long>(warehouse.materialized()->row_count()),
              warehouse.materialized()->indexes().TotalBitmapCount());

  const auto& frag = warehouse.fragmentation();
  std::printf("Fragmentation %s: %lld fragments\n\n", frag.Label().c_str(),
              static_cast<long long>(frag.FragmentCount()));

  // The paper's query spectrum: Q1 (exact match), Q2 (below), Q3 (above),
  // Q4 (mixed) and an unsupported query.
  Show(warehouse,
       mdw::StarQuery("1MONTH1GROUP", {{mdw::kApb1Time, 2, {3}},
                                       {mdw::kApb1Product, 3, {7}}}));
  Show(warehouse,
       mdw::StarQuery("1CODE1MONTH",
                      {{mdw::kApb1Product, 5, {30}}, {mdw::kApb1Time, 2, {3}}}));
  Show(warehouse, mdw::StarQuery("1QUARTER", {{mdw::kApb1Time, 1, {2}}}));
  Show(warehouse,
       mdw::StarQuery("1CODE1QUARTER",
                      {{mdw::kApb1Product, 5, {30}}, {mdw::kApb1Time, 1, {2}}}));
  Show(warehouse, mdw::StarQuery("1STORE", {{mdw::kApb1Customer, 1, {17}}}));
  return 0;
}
