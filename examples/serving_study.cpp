// Multi-user serving study, real and simulated: the same open-loop
// arrival trace (seeded Poisson arrivals, zipfian stream popularity) is
// pushed through both engines at growing stream counts:
//
//  - REAL: the materialized warehouse serves the trace through the
//    virtual-time QueryScheduler front end (Warehouse::Serve) — FCFS and
//    credit/fair-share dispatch over 4 workers behind a bounded admission
//    queue. The latency columns are the scheduler's deterministic
//    virtual-time percentiles; wall milliseconds cover the real replay
//    of the served queries on the thread pool.
//  - SIMPAD: the discrete-event simulator runs the same queries in its
//    multi-user mode (round-robin streams, each sequential), and the
//    per-query attribution (SimResult::response_by_query_ms) yields
//    percentiles in simulated milliseconds.
//
// Virtual-time ticks and simulated milliseconds are different units, so
// both response curves are NORMALIZED to their own single-stream point
// ("x1" columns): comparable shapes mean the cheap virtual-time model
// and the device-level simulation agree on how contention scales.
//
// The fairness column is the Jain index over per-stream completed work
// (1.0 = every active stream got its share); "rej" counts arrivals shed
// by admission control (queue capacity 256).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "core/mdw.h"

namespace {

// The compact APB-1 shape also used by the micro benches (~170k fact
// rows at density 0.25): big enough for contention, small enough to
// materialise and simulate thousands of queries quickly.
mdw::StarSchema MakeCompactApb1Schema() {
  mdw::Dimension product("product",
                         mdw::Hierarchy({{"division", 2},
                                         {"line", 6},
                                         {"family", 12},
                                         {"group", 48},
                                         {"class", 240},
                                         {"code", 480}}),
                         mdw::IndexKind::kEncoded);
  mdw::Dimension customer("customer",
                          mdw::Hierarchy({{"retailer", 6}, {"store", 60}}),
                          mdw::IndexKind::kEncoded);
  mdw::Dimension channel("channel", mdw::Hierarchy({{"channel", 2}}),
                         mdw::IndexKind::kSimple);
  mdw::Dimension time("time",
                      mdw::Hierarchy(
                          {{"year", 1}, {"quarter", 4}, {"month", 12}}),
                      mdw::IndexKind::kSimple);
  return mdw::StarSchema("compact_sales",
                         {std::move(product), std::move(customer),
                          std::move(channel), std::move(time)},
                         /*density=*/0.25, mdw::PhysicalParams{});
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

}  // namespace

int main() {
  const std::vector<mdw::FragAttr> month_group = {{mdw::kApb1Time, 2},
                                                  {mdw::kApb1Product, 3}};
  const mdw::Warehouse real({.schema = MakeCompactApb1Schema(),
                             .fragmentation = month_group,
                             .backend = mdw::BackendKind::kMaterialized,
                             .seed = 42,
                             .plan_cache_capacity = 4096,
                             .num_workers = 4});
  mdw::SimConfig sim_config;
  sim_config.num_disks = 20;
  sim_config.num_nodes = 2;
  sim_config.tasks_per_node = 2;  // 4 simulated processors, like REAL
  const mdw::Warehouse simulated({.schema = MakeCompactApb1Schema(),
                                  .fragmentation = month_group,
                                  .backend = mdw::BackendKind::kSimulated,
                                  .sim = sim_config,
                                  .plan_cache_capacity = 4096});

  // Every stream submits at the same per-stream rate, so the arrival
  // WINDOW stays constant across rows (64 arrivals x 40000 vt mean gap
  // each) while the aggregate load grows linearly with the stream count:
  // 1 stream runs far below the 4-worker capacity, 8 approach it, 64 and
  // 256 overload it and engage admission control.
  const int kArrivalsPerStream = 64;
  const double kPerStreamGapVt = 40000.0;
  const std::vector<int> stream_counts = {1, 8, 64, 256};

  std::printf(
      "Open-loop serving study under %s\n"
      "REAL = Warehouse::Serve, 4 workers, queue capacity 256, "
      "virtual-time latencies; SIM = SIMPAD multi-user, simulated ms.\n"
      "Both p99 curves normalized to their single-stream point (x1).\n\n",
      real.fragmentation().Label().c_str());

  mdw::TablePrinter table({"streams", "policy", "p50 [vt]", "p99 [vt]",
                           "p99 x1", "jain", "rej", "wall [ms]",
                           "sim p99 [ms]", "sim p99 x1"});

  double real_base_p99 = 0, sim_base_p99 = 0;
  for (const int streams : stream_counts) {
    mdw::ArrivalConfig gen;
    gen.num_streams = streams;
    gen.mean_interarrival_vt = kPerStreamGapVt / streams;
    gen.stream_skew_theta = 0.5;
    gen.mix = {mdw::QueryType::k1Month1Group, mdw::QueryType::k1Quarter,
               mdw::QueryType::k1Group1Store};
    gen.seed = 42;
    const auto arrivals = mdw::ArrivalGenerator(&real.schema(), gen)
                              .Generate(kArrivalsPerStream * streams);

    // ---- SIMPAD: same queries, round-robin streams ----
    std::vector<mdw::StarQuery> queries;
    queries.reserve(arrivals.size());
    for (const auto& a : arrivals) queries.push_back(a.query);
    const auto sim_batch = simulated.ExecuteBatch(queries, streams);
    const double sim_p99 = Percentile(sim_batch.sim->response_by_query_ms,
                                      0.99);
    if (streams == 1) sim_base_p99 = sim_p99;

    for (const auto policy :
         {mdw::SchedPolicy::kFcfs, mdw::SchedPolicy::kCredit}) {
      mdw::ServingConfig config;
      config.policy = policy;
      config.num_workers = 4;
      config.queue_capacity = 256;
      // Measure inside the arrival window: under overload every stream
      // is still backlogged at the horizon, so the Jain column shows WHO
      // the served capacity went to rather than a drained steady state.
      config.horizon_vt = arrivals.back().vt + 1;

      const auto start = std::chrono::steady_clock::now();
      const auto batch = real.Serve(arrivals, config);
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      const auto& m = *batch.serving;
      if (streams == 1 && policy == mdw::SchedPolicy::kFcfs) {
        real_base_p99 = m.total.p99_response_vt;
      }
      table.AddRow(
          {std::to_string(streams), mdw::ToString(policy),
           mdw::TablePrinter::Num(m.total.p50_response_vt, 0),
           mdw::TablePrinter::Num(m.total.p99_response_vt, 0),
           mdw::TablePrinter::Num(m.total.p99_response_vt / real_base_p99,
                                  2),
           mdw::TablePrinter::Num(m.jain_fairness, 3),
           std::to_string(m.total.rejected),
           mdw::TablePrinter::Num(wall_ms, 1),
           mdw::TablePrinter::Num(sim_p99, 1),
           mdw::TablePrinter::Num(sim_p99 / sim_base_p99, 2)});
    }
  }
  table.Print(stdout);

  std::printf(
      "\nReading the table: both engines inflate their p99 as streams\n"
      "add load — the scheduler's virtual-time model and the\n"
      "device-level simulation agree on the shape of the contention\n"
      "curve even though their units differ. Under overload, credit\n"
      "dispatch spreads the served capacity evenly over the backlogged\n"
      "streams (higher Jain) where FCFS hands it to whoever arrived\n"
      "first — the zipfian heavy tenants. Open-loop arrivals never\n"
      "back off, so the bounded queue sheds the excess (rej column)\n"
      "instead of letting waiting time grow without bound.\n");

  // ---- Deadline sweep: graceful degradation under growing overload ----
  //
  // Every query now carries a relative virtual-time deadline (4x the
  // light-load mean service demand). Odd streams opt into degradation
  // (covered-only answers from the fragment summaries) while even
  // streams shed, so the same run shows both overload responses. SRPT
  // joins FCFS and credit: under deadline pressure, serving the
  // smallest demand first keeps far more queries inside their budget.
  double mean_service_vt = 100.0;
  {
    mdw::ArrivalConfig gen;
    gen.num_streams = 1;
    gen.mean_interarrival_vt = kPerStreamGapVt;
    gen.mix = {mdw::QueryType::k1Month1Group, mdw::QueryType::k1Quarter,
               mdw::QueryType::k1Group1Store};
    gen.seed = 42;
    const auto probe = mdw::ArrivalGenerator(&real.schema(), gen)
                           .Generate(kArrivalsPerStream);
    mdw::ServingConfig config;
    config.num_workers = 4;
    const auto batch = real.Serve(probe, config);
    mean_service_vt = batch.serving->total.mean_service_vt;
  }
  const auto deadline_vt =
      static_cast<std::int64_t>(4.0 * mean_service_vt);

  std::printf(
      "\nDeadline sweep: relative deadline %lld vt (4x light-load mean\n"
      "service demand), odd streams degrade to covered-only answers,\n"
      "even streams shed. Fractions are per submitted arrival.\n\n",
      static_cast<long long>(deadline_vt));

  mdw::TablePrinter dtable({"streams", "policy", "p99 [vt]", "done",
                            "miss", "degr", "shed", "rej"});
  for (const int streams : {8, 32, 128}) {
    mdw::ArrivalConfig gen;
    gen.num_streams = streams;
    gen.mean_interarrival_vt = kPerStreamGapVt / streams;
    gen.stream_skew_theta = 0.5;
    gen.mix = {mdw::QueryType::k1Month1Group, mdw::QueryType::k1Quarter,
               mdw::QueryType::k1Group1Store};
    gen.seed = 42;
    const auto arrivals = mdw::ArrivalGenerator(&real.schema(), gen)
                              .Generate(kArrivalsPerStream * streams);
    const double n = static_cast<double>(arrivals.size());

    for (const auto policy : {mdw::SchedPolicy::kFcfs,
                              mdw::SchedPolicy::kCredit,
                              mdw::SchedPolicy::kSrpt}) {
      mdw::ServingConfig config;
      config.policy = policy;
      config.num_workers = 4;
      config.queue_capacity = 256;
      config.deadline_vt = deadline_vt;
      config.stream_overload.resize(
          static_cast<std::size_t>(streams));
      for (int s = 0; s < streams; ++s) {
        config.stream_overload[static_cast<std::size_t>(s)] =
            s % 2 == 1 ? mdw::OverloadPolicy::kDegrade
                       : mdw::OverloadPolicy::kShed;
      }

      const auto batch = real.Serve(arrivals, config);
      const auto& t = batch.serving->total;
      dtable.AddRow(
          {std::to_string(streams), mdw::ToString(policy),
           mdw::TablePrinter::Num(t.p99_response_vt, 0),
           mdw::TablePrinter::Num(static_cast<double>(t.completed) / n, 3),
           mdw::TablePrinter::Num(
               static_cast<double>(t.deadline_missed) / n, 3),
           mdw::TablePrinter::Num(static_cast<double>(t.degraded) / n, 3),
           mdw::TablePrinter::Num(
               static_cast<double>(t.shed_expired) / n, 3),
           mdw::TablePrinter::Num(
               static_cast<double>(t.rejected) / n, 3)});
    }
  }
  dtable.Print(stdout);

  std::printf(
      "\nReading the deadline sweep: once the offered load passes the\n"
      "4-worker capacity the backlog alone would push queue waits past\n"
      "any fixed deadline. Admission control rejects what provably\n"
      "cannot finish (rej), the queue-timeout pass sheds what expires\n"
      "while waiting (shed, counted into miss), and streams that opted\n"
      "into degradation trade exactness for latency instead (degr) —\n"
      "answering from the covered fragments' summaries alone, which is\n"
      "why their deadline-miss fraction stays near zero. SRPT keeps the\n"
      "most queries inside their budget by never letting a long scan\n"
      "block a queue of short ones.\n");
  return 0;
}
