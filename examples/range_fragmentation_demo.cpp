// General MDHF with value *ranges* (paper Sec. 4.1) instead of the point
// fragmentation used in the evaluation, plus the analytic response-time
// model: how a DBA tool explores the trade-off between fewer/larger and
// more/smaller fragments in microseconds.

#include <cstdio>

#include "core/mdw.h"

int main() {
  const auto schema = mdw::MakeApb1Schema();

  // Quarter-aligned month ranges vs misaligned 5-month ranges: alignment
  // decides whether queries keep the "no bitmap access" property.
  const mdw::RangeFragmentation quarters(
      &schema,
      {mdw::RangePartition{mdw::kApb1Time, 2, {3, 6, 9, 12, 15, 18, 21, 24}}});
  const mdw::RangeFragmentation fives(
      &schema, {mdw::RangePartition{mdw::kApb1Time, 2, {5, 10, 15, 20, 24}}});

  const mdw::StarQuery quarter_query("1QUARTER", {{mdw::kApb1Time, 1, {2}}});
  for (const auto* frag : {&quarters, &fives}) {
    const auto plan = frag->PlanQuery(quarter_query);
    std::printf("%-22s -> %lld of %lld fragments, bitmaps %s\n",
                frag->Label().c_str(),
                static_cast<long long>(plan.fragment_count),
                static_cast<long long>(frag->FragmentCount()),
                plan.NeedsBitmaps() ? "REQUIRED (ranges cut the quarter)"
                                    : "not needed (aligned ranges)");
  }

  // Point fragmentation as the degenerate range case.
  const auto pointwise =
      mdw::RangeFragmentation::PointwiseOf(&schema, mdw::kApb1Time, 2);
  std::printf("%-22s -> %lld fragments (the paper's point case)\n\n",
              pointwise.Label().c_str(),
              static_cast<long long>(pointwise.FragmentCount()));

  // The analytic response model ranks fragmentation candidates without
  // running the simulator.
  mdw::SimConfig config;
  config.num_disks = 100;
  config.num_nodes = 20;
  const mdw::ResponseModel model(&schema, config);
  const auto query = mdw::apb1_queries::OneStore(7);

  std::printf("Analytic response-time screening for query 1STORE:\n");
  mdw::TablePrinter table({"fragmentation", "est. response [s]",
                           "disk-bound [s]", "cpu-bound [s]"});
  const std::vector<std::vector<mdw::FragAttr>> candidates = {
      {{mdw::kApb1Customer, 1}},
      {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}},
      {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 5}},
  };
  for (const auto& attrs : candidates) {
    const mdw::Fragmentation f(&schema, attrs);
    const mdw::QueryPlanner planner(&schema, &f);
    const auto est = model.Estimate(planner.Plan(query));
    table.AddRow({f.Label(),
                  mdw::TablePrinter::Num(est.response_ms / 1000, 2),
                  mdw::TablePrinter::Num(est.disk_bound_ms / 1000, 2),
                  mdw::TablePrinter::Num(est.cpu_bound_ms / 1000, 2)});
  }
  table.Print(stdout);
  std::printf(
      "\nThe screening reproduces the Table 3 / Fig. 6 ordering: the\n"
      "customer fragmentation answers 1STORE in seconds (one fragment,\n"
      "read sequentially), the month/group one needs ~2 minutes, and the\n"
      "month/code one is ~3x worse again -- without running a single\n"
      "simulation.\n");
  return 0;
}
