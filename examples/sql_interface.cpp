// End-to-end SQL over the Warehouse façade: one ExecuteSql() call parses
// a statement, plans it cache-first against the MDHF fragmentation, and
// executes it on the materialized backend — grouped aggregation, rollup,
// and top-k included. Malformed statements come back as a typed
// kInvalidArgument Status instead of an outcome.

#include <cstdio>
#include <string>
#include <vector>

#include "core/mdw.h"

int main() {
  const mdw::Warehouse wh({.schema = mdw::MakeTinyApb1Schema(),
                           .fragmentation = {{mdw::kApb1Time, 2},
                                             {mdw::kApb1Product, 3}},
                           .backend = mdw::BackendKind::kMaterialized,
                           .num_shards = 4});

  const std::vector<std::string> statements = {
      // The paper's 1MONTH1GROUP (Sec. 3.1): a scalar aggregate.
      "SELECT SUM(UnitsSold), SUM(DollarSales) FROM tiny_sales "
      "WHERE time.month = 3 AND product.group = 7",
      // Grouped: per-month sales of one quarter. The grouping is aligned
      // with the time fragmentation level, so with summaries enabled the
      // whole answer comes from prefix sums (rows_scanned stays 0).
      "SELECT SUM(UnitsSold), SUM(DollarSales) FROM tiny_sales "
      "WHERE time.quarter = 2 GROUP BY time.month",
      // Rollup of the same data one level up the hierarchy.
      "SELECT SUM(UnitsSold), SUM(DollarSales) FROM tiny_sales "
      "GROUP BY time.quarter",
      // Top-k: the 5 best-selling product groups, deterministic ties.
      "SELECT COUNT(*), SUM(DollarSales) FROM tiny_sales "
      "GROUP BY product.group ORDER BY 2 DESC LIMIT 5",
      // A malformed statement, to show the typed diagnostic.
      "SELECT SUM(Cost) FROM tiny_sales WHERE warehouse.region = 1",
  };

  for (const auto& sql : statements) {
    std::printf("SQL> %s\n", sql.c_str());
    const auto outcome = wh.ExecuteSql(sql);
    if (!outcome.ok()) {
      std::printf("  error [%s]: %s\n\n", mdw::ToString(outcome.status().code()),
                  outcome.status().message().c_str());
      continue;
    }
    std::printf("  class %s/%s | %lld scanned, %lld summarized rows\n",
                mdw::ToString(outcome->query_class),
                mdw::ToString(outcome->io_class),
                static_cast<long long>(outcome->rows_scanned),
                static_cast<long long>(outcome->rows_summarized));
    const mdw::ResultTable& table = *outcome->table;
    for (std::size_t i = 0; i < table.rows.size(); ++i) {
      if (table.group_by.has_value()) {
        std::printf("  key %3lld |",
                    static_cast<long long>(table.rows[i].key));
      } else {
        std::printf("  total   |");
      }
      for (int item = 0; item < static_cast<int>(table.spec.items.size());
           ++item) {
        std::printf(" %14.2f", table.Value(static_cast<int>(i), item));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
