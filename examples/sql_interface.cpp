// End-to-end SQL pipeline: parse the paper's star queries from SQL text,
// plan them against an MDHF fragmentation, estimate their I/O, and
// simulate them — the workflow a warehouse administrator would script.

#include <cstdio>
#include <string>
#include <vector>

#include "core/mdw.h"

int main() {
  const auto schema = mdw::MakeApb1Schema();
  const mdw::Fragmentation frag(
      &schema, {{mdw::kApb1Time, 2}, {mdw::kApb1Product, 3}});
  const mdw::QueryPlanner planner(&schema, &frag);
  const mdw::IoCostModel cost(&schema);

  mdw::SimConfig hw;
  hw.num_disks = 100;
  hw.num_nodes = 20;
  hw.tasks_per_node = 5;
  mdw::Simulator sim(&schema, &frag, hw);

  const std::vector<std::string> statements = {
      // The paper's 1MONTH1GROUP (Sec. 3.1), values made explicit.
      "SELECT SUM(UnitsSold), SUM(DollarSales) FROM sales "
      "WHERE time.month = 3 AND product.group = 41",
      // 1CODE1QUARTER of experiment 3.
      "SELECT SUM(UnitsSold) FROM sales "
      "WHERE product.code = 35 AND time.quarter = 2",
      // An IN-list variant.
      "SELECT SUM(Cost) FROM sales WHERE product.group IN (41, 99) "
      "AND time.year = 1",
      // A malformed query, to show diagnostics.
      "SELECT SUM(Cost) FROM sales WHERE warehouse.region = 1",
  };

  for (const auto& sql : statements) {
    std::printf("SQL> %s\n", sql.c_str());
    std::string error;
    const auto query = mdw::ParseStarQuery(schema, sql, &error);
    if (!query.has_value()) {
      std::printf("  parse error: %s\n\n", error.c_str());
      continue;
    }
    const auto plan = planner.Plan(*query);
    const auto io = cost.Estimate(plan);
    const auto result = sim.RunSingleUser({*query});
    std::printf(
        "  class %s/%s | %lld fragment(s), %d bitmap reads/fragment\n"
        "  estimated I/O %.1f MiB | simulated response %.2f s "
        "(%lld disk I/Os)\n\n",
        mdw::ToString(plan.query_class()), mdw::ToString(plan.io_class()),
        static_cast<long long>(plan.FragmentCount()),
        plan.BitmapsPerFragment(), io.total_io_mib,
        result.avg_response_ms / 1000,
        static_cast<long long>(result.disk_ios));
  }
  return 0;
}
