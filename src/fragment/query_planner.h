#ifndef MDW_FRAGMENT_QUERY_PLANNER_H_
#define MDW_FRAGMENT_QUERY_PLANNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fragment/fragmentation.h"
#include "fragment/star_query.h"

namespace mdw {

/// The paper's four basic query types with respect to a fragmentation F
/// (Sec. 4.2), plus the unsupported case.
enum class QueryClass {
  kQ1,          ///< only fragmentation attributes (at their exact level)
  kQ2,          ///< lower-level attributes of fragmentation dimensions
  kQ3,          ///< higher-level attributes of fragmentation dimensions
  kQ4,          ///< mixed: lower *and* higher level on >= 2 frag dimensions
  kUnsupported  ///< no fragmentation dimension referenced at all
};

/// The paper's I/O overhead classes (Sec. 4.5).
enum class IoClass {
  kIoc1Opt,      ///< clustered hits, no bitmap access, single fragment
  kIoc1,         ///< clustered hits, no bitmap access
  kIoc2,         ///< spread hits, bitmap I/O required
  kIoc2NoSupp    ///< all fragments and all referenced bitmaps processed
};

const char* ToString(QueryClass c);
const char* ToString(IoClass c);

/// How one query predicate is evaluated under a fragmentation
/// (Sec. 4.3, step 2).
struct PredicateAccess {
  DimId dim = -1;
  Depth depth = -1;
  /// True iff a bitmap must be read for this predicate: the dimension is
  /// not in F, or it is in F but the predicate is on a *lower* (finer)
  /// level than the fragmentation attribute.
  bool needs_bitmap = false;
  /// Bitmaps read per fragment *per predicate value*: the encoded prefix
  /// (or the suffix below the fragmentation level), or 1 for simple
  /// indices.
  int bitmaps_read = 0;
};

/// The fragments a query must process, represented as one value-slice per
/// fragmentation attribute (the cross product of the slices), plus the
/// access classification. Fragment sets are enumerated lazily because the
/// cross product can be large.
///
/// Coverage classification: a selected fragment is *fully covered* when
/// every row it can contain satisfies all the query's predicates — a fact
/// decidable from the fragmentation attributes and hierarchy ancestors
/// alone, with no data access. Coverage factorises over the slices
/// (`covered(i)[j]` marks the j-th slice value of attribute i), so a
/// fragment is covered iff all its coordinates are and no predicate falls
/// outside the fragmentation dimensions (`coverable()`). Fully-covered
/// fragments can be answered from precomputed measure summaries; the rest
/// are *residual* and need a row scan.
class QueryPlan {
 public:
  /// The plan shares ownership of the fragmentation, so it stays valid
  /// even if the planner (or the façade that produced it) is destroyed.
  /// `covered` carries the per-slice coverage flags (same shape as
  /// `slices`); an empty `covered` marks every fragment residual, the
  /// conservative default for hand-built plans.
  QueryPlan(std::shared_ptr<const Fragmentation> fragmentation,
            std::vector<std::vector<std::int64_t>> slices,
            QueryClass query_class, IoClass io_class,
            std::vector<PredicateAccess> accesses, double selectivity,
            std::vector<std::vector<bool>> covered = {},
            bool coverable = false, std::optional<GroupBy> group_by = {});

  /// Compatibility: borrows a caller-owned fragmentation (no ownership);
  /// the caller must keep it alive for the plan's lifetime.
  QueryPlan(const Fragmentation* fragmentation,
            std::vector<std::vector<std::int64_t>> slices,
            QueryClass query_class, IoClass io_class,
            std::vector<PredicateAccess> accesses, double selectivity,
            std::vector<std::vector<bool>> covered = {},
            bool coverable = false, std::optional<GroupBy> group_by = {});

  const Fragmentation& fragmentation() const { return *fragmentation_; }
  QueryClass query_class() const { return query_class_; }
  IoClass io_class() const { return io_class_; }
  const std::vector<PredicateAccess>& accesses() const { return accesses_; }

  /// Value slice of the i-th fragmentation attribute.
  const std::vector<std::int64_t>& slice(int i) const;

  /// Number of fragments to be processed (product of slice sizes).
  std::int64_t FragmentCount() const;

  /// True iff any predicate needs bitmap access.
  bool NeedsBitmaps() const;
  /// Total bitmaps read per fragment (sum over predicates and values).
  int BitmapsPerFragment() const;

  /// Overall query selectivity on the fact table.
  double selectivity() const { return selectivity_; }
  /// Expected hit rows over the whole query.
  double ExpectedHits() const;
  /// Expected hit rows in one processed fragment.
  double HitsPerFragment() const;
  /// Fraction of a processed fragment's rows that are hits.
  double FragmentSelectivity() const;

  /// ---- Coverage classification ----

  /// False when some predicate lies outside the fragmentation dimensions,
  /// so every selected fragment needs a row scan regardless of its
  /// coordinates.
  bool coverable() const { return coverable_; }
  /// Coverage flags of the i-th slice, parallel to slice(i):
  /// covered(i)[j] iff the predicate on attribute i (if any) is satisfied
  /// by every row whose attribute-i coordinate is slice(i)[j].
  const std::vector<bool>& covered(int i) const;
  /// Number of fully-covered fragments in the selected set (product of
  /// per-attribute covered counts; 0 when !coverable()).
  std::int64_t CoveredFragmentCount() const;

  /// ---- Grouping classification ----

  bool grouped() const { return group_by_.has_value(); }
  const std::optional<GroupBy>& group_by() const { return group_by_; }
  /// Index of the fragmentation attribute the grouping *aligns* with
  /// (same dimension, group depth at or above the fragmentation depth),
  /// or -1. Aligned groups partition the fragment set, so covered
  /// fragments feed their prefix-sum partials straight into their group;
  /// non-aligned groups force the residual scan path with per-row keys.
  int group_attr() const { return group_attr_; }
  bool AlignedGrouping() const { return group_attr_ >= 0; }
  /// Cardinality of the GROUP BY attribute (0 when ungrouped) — the dense
  /// key domain of execution's per-chunk group accumulators.
  std::int64_t group_card() const { return group_card_; }
  /// Leaves per GROUP BY value: a fact row's key is leaf / leaves_per.
  std::int64_t group_leaves_per() const { return group_leaves_per_; }
  /// Group key of a fragment (requires AlignedGrouping()): the ancestor
  /// of its coordinate on the aligned attribute at the GROUP BY depth.
  std::int64_t GroupOfFragment(FragId id) const;

  /// Enumerates the fragment ids to process, in allocation order
  /// (ascending id).
  void ForEachFragment(const std::function<void(FragId)>& fn) const;

  /// Like above, additionally reporting whether each fragment is fully
  /// covered (answerable without touching its rows).
  void ForEachFragment(
      const std::function<void(FragId, bool covered)>& fn) const;

  /// Materialises the fragment ids; aborts if more than `cap` fragments
  /// (guard against accidentally exploding cross products).
  std::vector<FragId> MaterializeFragments(
      std::int64_t cap = 1'000'000) const;

 private:
  std::shared_ptr<const Fragmentation> fragmentation_;
  std::vector<std::vector<std::int64_t>> slices_;
  QueryClass query_class_;
  IoClass io_class_;
  std::vector<PredicateAccess> accesses_;
  double selectivity_;
  /// Parallel to slices_; empty-constructed plans normalise to all-false.
  std::vector<std::vector<bool>> covered_;
  bool coverable_ = false;
  std::optional<GroupBy> group_by_;
  int group_attr_ = -1;
  std::int64_t group_card_ = 0;
  std::int64_t group_leaves_per_ = 1;
  /// Mixed-radix helpers for GroupOfFragment: product of attribute
  /// cardinalities after group_attr_, and descendants per group value at
  /// the fragmentation depth.
  std::int64_t group_suffix_ = 1;
  std::int64_t group_desc_per_ = 1;
};

/// Derives QueryPlans from StarQueries for a fixed fragmentation,
/// implementing Sec. 4.2 (query classes), Sec. 4.3 step 1-2 (fragment set
/// and bitmap requirements) and Sec. 4.5 (I/O classes).
class QueryPlanner {
 public:
  /// The planner shares ownership of schema and fragmentation; plans it
  /// produces keep the fragmentation alive on their own.
  QueryPlanner(std::shared_ptr<const StarSchema> schema,
               std::shared_ptr<const Fragmentation> fragmentation);

  /// Compatibility: borrows caller-owned schema/fragmentation.
  QueryPlanner(const StarSchema* schema, const Fragmentation* fragmentation);

  QueryPlan Plan(const StarQuery& query) const;

  /// Process-wide number of Plan() invocations across all planners. This
  /// is the observability hook behind the plan-first pipeline's guarantee
  /// that a batch of N queries costs exactly N derivations end to end
  /// (see docs/ARCHITECTURE.md); tests assert on deltas of this counter.
  static std::uint64_t LifetimePlanCount();

 private:
  std::shared_ptr<const StarSchema> schema_;
  std::shared_ptr<const Fragmentation> fragmentation_;
};

}  // namespace mdw

#endif  // MDW_FRAGMENT_QUERY_PLANNER_H_
