#ifndef MDW_FRAGMENT_FRAGMENTATION_H_
#define MDW_FRAGMENT_FRAGMENTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/star_schema.h"

namespace mdw {

/// One fragmentation attribute of an MDHF fragmentation: a dimension and a
/// hierarchy level, e.g. time::month (paper Sec. 4.1).
struct FragAttr {
  DimId dim;
  Depth depth;

  friend bool operator==(const FragAttr& a, const FragAttr& b) {
    return a.dim == b.dim && a.depth == b.depth;
  }
};

/// Global fragment identifier in [0, FragmentCount()).
using FragId = std::int64_t;

/// A multi-dimensional hierarchical *point* fragmentation (MDHF) of the
/// fact table: one fragmentation attribute per chosen dimension, each value
/// combination forming one fragment (paper Sec. 4.1). Fragment ids are
/// mixed-radix with the LAST attribute varying fastest, matching the
/// allocation order of Fig. 2 (all groups of month 1, then month 2, ...).
///
/// An empty attribute list is the degenerate "no fragmentation" case with a
/// single fragment (useful as a baseline).
class Fragmentation {
 public:
  Fragmentation(const StarSchema* schema, std::vector<FragAttr> attrs);

  const StarSchema& schema() const { return *schema_; }
  int num_attrs() const { return static_cast<int>(attrs_.size()); }
  const FragAttr& attr(int i) const;
  const std::vector<FragAttr>& attrs() const { return attrs_; }

  /// Cardinality of the i-th fragmentation attribute.
  std::int64_t CardOf(int i) const;

  /// Total number of fact fragments (product of attribute cardinalities).
  std::int64_t FragmentCount() const;

  /// Position of `dim` among the fragmentation attributes, or -1.
  int IndexOfDim(DimId dim) const;
  /// Fragmentation depth for `dim`, or -1 if the dimension is not part of
  /// the fragmentation.
  Depth FragDepthOf(DimId dim) const;

  /// Fragment id of the coordinate vector (one value per attribute, in
  /// attribute order).
  FragId FragmentIdOf(const std::vector<std::int64_t>& coords) const;
  /// Inverse of FragmentIdOf.
  std::vector<std::int64_t> CoordsOf(FragId id) const;

  /// Fragment containing a fact row given its leaf foreign keys
  /// (`leaf_keys[dim]`).
  FragId FragmentOfRow(const std::vector<std::int64_t>& leaf_keys) const;

  /// Average fact tuples per fragment: N / FragmentCount().
  double TuplesPerFragment() const;
  /// Average fact pages per fragment.
  double FactPagesPerFragment() const;
  /// Size of one bitmap fragment in pages (1 bit per tuple of the
  /// fragment); e.g. 4.9 pages for F_MonthGroup at paper scale (Table 6).
  double BitmapFragmentPages() const;

  /// Paper-style label, e.g. "{time::month, product::group}".
  std::string Label() const;

 private:
  const StarSchema* schema_;
  std::vector<FragAttr> attrs_;
  std::vector<std::int64_t> cards_;
};

}  // namespace mdw

#endif  // MDW_FRAGMENT_FRAGMENTATION_H_
