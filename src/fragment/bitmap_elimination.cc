#include "fragment/bitmap_elimination.h"

namespace mdw {

std::vector<DimensionBitmaps> BitmapRequirements(
    const Fragmentation& fragmentation) {
  const StarSchema& schema = fragmentation.schema();
  std::vector<DimensionBitmaps> result;
  for (DimId d = 0; d < schema.num_dimensions(); ++d) {
    const Dimension& dim = schema.dimension(d);
    DimensionBitmaps entry;
    entry.dim = d;
    entry.total = dim.TotalBitmapCount();
    const Depth frag_depth = fragmentation.FragDepthOf(d);
    if (frag_depth < 0) {
      entry.eliminated = 0;
    } else if (dim.index_kind() == IndexKind::kEncoded) {
      entry.eliminated = dim.hierarchy().PrefixBits(frag_depth);
    } else {
      int dropped = 0;
      for (Depth lvl = 0; lvl <= frag_depth; ++lvl) {
        dropped += static_cast<int>(dim.hierarchy().Cardinality(lvl));
      }
      entry.eliminated = dropped;
    }
    entry.remaining = entry.total - entry.eliminated;
    result.push_back(entry);
  }
  return result;
}

int RemainingBitmapCount(const Fragmentation& fragmentation) {
  int total = 0;
  for (const auto& entry : BitmapRequirements(fragmentation)) {
    total += entry.remaining;
  }
  return total;
}

}  // namespace mdw
