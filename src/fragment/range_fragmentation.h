#ifndef MDW_FRAGMENT_RANGE_FRAGMENTATION_H_
#define MDW_FRAGMENT_RANGE_FRAGMENTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fragment/fragmentation.h"
#include "fragment/star_query.h"

namespace mdw {

/// One range-partitioned fragmentation attribute of the *general* MDHF
/// (paper Sec. 4.1): disjoint value ranges covering the attribute's whole
/// domain. `upper_bounds` holds the exclusive upper bound of each range in
/// ascending order; the last bound equals the attribute's cardinality.
/// Range i covers values [upper_bounds[i-1], upper_bounds[i]).
struct RangePartition {
  DimId dim = -1;
  Depth depth = -1;
  std::vector<std::int64_t> upper_bounds;

  std::int64_t num_ranges() const {
    return static_cast<std::int64_t>(upper_bounds.size());
  }
};

/// The general range-based MDHF. The paper's point fragmentations are the
/// special case of one value per range; range fragmentation trades fewer,
/// larger fragments for partially-relevant fragments: a selected fragment
/// only consists entirely of relevant rows when the query's value block
/// covers its whole range, otherwise bitmap filtering is required.
class RangeFragmentation {
 public:
  RangeFragmentation(const StarSchema* schema,
                     std::vector<RangePartition> partitions);

  /// Point fragmentation expressed as ranges of width one.
  static RangeFragmentation PointwiseOf(const StarSchema* schema, DimId dim,
                                        Depth depth);
  /// Equal-width split of an attribute into `parts` ranges.
  static RangePartition EqualSplit(const StarSchema& schema, DimId dim,
                                   Depth depth, int parts);

  const StarSchema& schema() const { return *schema_; }
  int num_attrs() const { return static_cast<int>(partitions_.size()); }
  const RangePartition& partition(int i) const;

  /// Total fragments: product of per-attribute range counts.
  std::int64_t FragmentCount() const;

  /// Index of the range containing `value` of attribute `i`.
  std::int64_t RangeOfValue(int i, std::int64_t value) const;

  /// Fragment id of a fact row given its leaf keys (row-major, last
  /// attribute fastest, matching Fragmentation).
  FragId FragmentOfRow(const std::vector<std::int64_t>& leaf_keys) const;

  /// Average tuples per fragment assumes uniform data; individual
  /// fragments scale with their ranges' widths.
  double AvgTuplesPerFragment() const;
  double BitmapFragmentPages() const;  ///< for the *average* fragment

  /// Plan of a star query against this fragmentation.
  struct Plan {
    /// Per query predicate: does it require bitmap filtering? For
    /// predicates on fragmentation attributes this is true iff some
    /// selected range is only partially covered by the predicate's value
    /// block (never the case for point fragmentations).
    struct Access {
      DimId dim = -1;
      bool needs_bitmap = false;
    };

    /// Selected range indices per attribute (cross product = fragments).
    std::vector<std::vector<std::int64_t>> slices;
    std::int64_t fragment_count = 1;
    std::vector<Access> accesses;

    bool NeedsBitmaps() const {
      for (const auto& a : accesses) {
        if (a.needs_bitmap) return true;
      }
      return false;
    }
  };

  Plan PlanQuery(const StarQuery& query) const;

  std::string Label() const;

 private:
  const StarSchema* schema_;
  std::vector<RangePartition> partitions_;
};

}  // namespace mdw

#endif  // MDW_FRAGMENT_RANGE_FRAGMENTATION_H_
