#ifndef MDW_FRAGMENT_THRESHOLDS_H_
#define MDW_FRAGMENT_THRESHOLDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fragment/fragmentation.h"

namespace mdw {

/// Upper bound on the number of fragments so that a bitmap fragment is at
/// least `prefetch_granule` pages (paper Sec. 4.4):
///   n_max = N / (8 * PgSize * PrefetchGran)
/// For the paper's configuration (N = 1,866,240,000, PgSize = 4K,
/// PrefetchGran = 4) this yields 14,238.
std::int64_t MaxFragmentCount(std::int64_t fact_count,
                              std::int64_t page_size_bytes,
                              std::int64_t prefetch_granule_pages);

/// The administrator-tunable limits of Sec. 4.4/4.7 guideline 1:
/// (i) minimal bitmap fragment size, (ii) maximum number of fragments to
/// administer, (iii) maximum number of bitmaps to materialise, plus the
/// lower bound of at least one fragment per disk.
struct ThresholdPolicy {
  /// (i) bitmap fragments must be at least this many pages (0 disables).
  double min_bitmap_fragment_pages = 4.0;
  /// (ii) fragment-count cap for administration overhead (0 disables).
  std::int64_t max_fragments = 0;
  /// (iii) cap on materialised bitmaps after elimination (0 disables).
  int max_bitmaps = 0;
  /// Lower bound: at least one fragment per fact-table disk (0 disables).
  std::int64_t min_fragments = 0;
};

/// One violated threshold with a human-readable explanation.
struct ThresholdViolation {
  enum class Kind {
    kBitmapFragmentTooSmall,
    kTooManyFragments,
    kTooManyBitmaps,
    kTooFewFragments,
  };
  Kind kind;
  std::string detail;
};

/// Checks `fragmentation` against `policy`; empty result means admissible.
/// `materialized_bitmaps` is the bitmap count after fragmentation-based
/// elimination (see bitmap_elimination.h).
std::vector<ThresholdViolation> CheckThresholds(
    const Fragmentation& fragmentation, const ThresholdPolicy& policy,
    int materialized_bitmaps);

}  // namespace mdw

#endif  // MDW_FRAGMENT_THRESHOLDS_H_
