#include "fragment/thresholds.h"

#include <cstdio>

namespace mdw {

std::int64_t MaxFragmentCount(std::int64_t fact_count,
                              std::int64_t page_size_bytes,
                              std::int64_t prefetch_granule_pages) {
  return fact_count / (8 * page_size_bytes * prefetch_granule_pages);
}

namespace {

std::string Format(const char* fmt, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

}  // namespace

std::vector<ThresholdViolation> CheckThresholds(
    const Fragmentation& fragmentation, const ThresholdPolicy& policy,
    int materialized_bitmaps) {
  std::vector<ThresholdViolation> violations;
  const std::int64_t n_frags = fragmentation.FragmentCount();

  if (policy.min_bitmap_fragment_pages > 0.0) {
    const double pages = fragmentation.BitmapFragmentPages();
    if (pages < policy.min_bitmap_fragment_pages) {
      violations.push_back(
          {ThresholdViolation::Kind::kBitmapFragmentTooSmall,
           Format("bitmap fragment is %.3f pages, below the minimum of %.1f",
                  pages, policy.min_bitmap_fragment_pages)});
    }
  }
  if (policy.max_fragments > 0 && n_frags > policy.max_fragments) {
    violations.push_back(
        {ThresholdViolation::Kind::kTooManyFragments,
         Format("%.0f fragments exceed the administration cap of %.0f",
                static_cast<double>(n_frags),
                static_cast<double>(policy.max_fragments))});
  }
  if (policy.max_bitmaps > 0 && materialized_bitmaps > policy.max_bitmaps) {
    violations.push_back(
        {ThresholdViolation::Kind::kTooManyBitmaps,
         Format("%.0f materialised bitmaps exceed the cap of %.0f",
                static_cast<double>(materialized_bitmaps),
                static_cast<double>(policy.max_bitmaps))});
  }
  if (policy.min_fragments > 0 && n_frags < policy.min_fragments) {
    violations.push_back(
        {ThresholdViolation::Kind::kTooFewFragments,
         Format("%.0f fragments cannot utilise %.0f disks",
                static_cast<double>(n_frags),
                static_cast<double>(policy.min_fragments))});
  }
  return violations;
}

}  // namespace mdw
