#include "fragment/enumeration.h"

namespace mdw {

std::vector<Fragmentation> EnumerateFragmentations(const StarSchema& schema) {
  std::vector<Fragmentation> result;
  const int n = schema.num_dimensions();
  // Mixed-radix counter: digit d in [0, levels(d)]; value 0 = dimension not
  // fragmented, value k = fragmented at depth k-1.
  std::vector<int> digit(static_cast<std::size_t>(n), 0);
  while (true) {
    std::vector<FragAttr> attrs;
    for (DimId d = 0; d < n; ++d) {
      const int v = digit[static_cast<std::size_t>(d)];
      if (v > 0) attrs.push_back({d, v - 1});
    }
    if (!attrs.empty()) {
      result.emplace_back(&schema, std::move(attrs));
    }
    int d = n - 1;
    while (d >= 0) {
      auto& v = digit[static_cast<std::size_t>(d)];
      if (++v <= schema.dimension(d).hierarchy().num_levels()) break;
      v = 0;
      --d;
    }
    if (d < 0) break;
  }
  return result;
}

int CountOptions(const std::vector<Fragmentation>& options, int dims,
                 double min_bitmap_fragment_pages) {
  int count = 0;
  for (const auto& f : options) {
    if (f.num_attrs() != dims) continue;
    if (min_bitmap_fragment_pages > 0.0 &&
        f.BitmapFragmentPages() < min_bitmap_fragment_pages) {
      continue;
    }
    ++count;
  }
  return count;
}

}  // namespace mdw
