#include "fragment/plan_cache.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace mdw {

std::string CanonicalQuerySignature(const StarQuery& query) {
  // Order predicates by dimension and values ascending: predicate order
  // and IN-list order never change the derived plan. StarQuery enforces
  // at most one predicate per dimension, so dim is a unique sort key and
  // the canonical order is deterministic.
  std::vector<const Predicate*> preds;
  preds.reserve(query.predicates().size());
  for (const auto& p : query.predicates()) preds.push_back(&p);
  std::sort(preds.begin(), preds.end(),
            [](const Predicate* a, const Predicate* b) {
              return a->dim < b->dim;
            });

  std::string signature;
  for (const Predicate* p : preds) {
    std::vector<std::int64_t> values = p->values;
    std::sort(values.begin(), values.end());
    signature += 'd';
    signature += std::to_string(p->dim);
    signature += '@';
    signature += std::to_string(p->depth);
    signature += ':';
    for (const auto v : values) {
      signature += std::to_string(v);
      signature += ',';
    }
    signature += ';';
  }
  // Aggregate spec: item order matters (it is the SELECT-list order the
  // result table exposes), so it is canonical as written.
  signature += "|a";
  for (const AggItem& item : query.aggregates().items) {
    signature += std::to_string(static_cast<int>(item.fn));
    signature += '.';
    signature += std::to_string(static_cast<int>(item.measure));
    signature += ',';
  }
  // GROUP BY attribute: grouped plans carry per-group classification, so
  // they must never alias with the ungrouped signature.
  if (query.group_by().has_value()) {
    signature += "|g";
    signature += std::to_string(query.group_by()->dim);
    signature += '@';
    signature += std::to_string(query.group_by()->depth);
  }
  return signature;
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  MDW_CHECK(capacity_ >= 1, "plan cache capacity must be >= 1");
}

std::shared_ptr<const QueryPlan> PlanCache::GetOrPlan(
    const StarQuery& query, const QueryPlanner& planner) {
  const std::string key = CanonicalQuerySignature(query);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    ++misses_;
  }

  // Derive outside the lock: planning is the expensive part, and a plan
  // derived twice under a rare race is correct either way.
  auto plan = std::make_shared<const QueryPlan>(planner.Plan(query));

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    // Lost the race to another thread; keep the resident entry.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(key, std::move(plan));
  by_key_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  return lru_.front().second;
}

std::shared_ptr<const QueryPlan> PlanCache::Lookup(
    const StarQuery& query) const {
  const std::string key = CanonicalQuerySignature(query);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = lru_.size();
  s.capacity = capacity_;
  return s;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  by_key_.clear();
}

}  // namespace mdw
