#include "fragment/shard_routing.h"

#include "common/check.h"

namespace mdw {

std::vector<ShardSelection> RouteSelectionToShards(
    const QueryPlan& plan, int num_shards, bool summaries_enabled,
    const std::function<int(FragId)>& shard_of,
    const std::function<std::pair<std::int64_t, std::int64_t>(FragId)>&
        rows_of) {
  MDW_CHECK(num_shards >= 1, "need at least one shard");
  const bool track_groups = plan.AlignedGrouping();
  std::vector<ShardSelection> shards(static_cast<std::size_t>(num_shards));
  plan.ForEachFragment([&](FragId id, bool covered) {
    const int s = shard_of(id);
    MDW_CHECK(s >= 0 && s < num_shards, "shard out of range");
    ShardSelection& sel = shards[static_cast<std::size_t>(s)];
    const bool summarize = summaries_enabled && covered;
    ++sel.fragments;
    if (summarize) ++sel.fragments_covered;  // empty fragments included
    const auto [begin, end] = rows_of(id);
    if (begin == end) return;
    if (summarize) {
      // A summary run's prefix-sum fold credits a single group, so a run
      // must stay inside one group when the plan groups by a (coarser)
      // fragmentation attribute.
      const std::int64_t group = track_groups ? plan.GroupOfFragment(id) : -1;
      if (!sel.summary.empty() && sel.summary.back().end == begin &&
          sel.summary_group.back() == group) {
        sel.summary.back().end = end;
      } else {
        sel.summary.push_back({begin, end});
        sel.summary_group.push_back(group);
      }
      return;
    }
    std::vector<RowRange>& ranges = sel.scan;
    if (!ranges.empty() && ranges.back().end == begin) {
      ranges.back().end = end;
    } else {
      ranges.push_back({begin, end});
    }
  });
  return shards;
}

}  // namespace mdw
