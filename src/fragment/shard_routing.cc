#include "fragment/shard_routing.h"

#include "common/check.h"

namespace mdw {

std::vector<ShardSelection> RouteSelectionToShards(
    const QueryPlan& plan, int num_shards, bool summaries_enabled,
    const std::function<int(FragId)>& shard_of,
    const std::function<std::pair<std::int64_t, std::int64_t>(FragId)>&
        rows_of) {
  MDW_CHECK(num_shards >= 1, "need at least one shard");
  std::vector<ShardSelection> shards(static_cast<std::size_t>(num_shards));
  plan.ForEachFragment([&](FragId id, bool covered) {
    const int s = shard_of(id);
    MDW_CHECK(s >= 0 && s < num_shards, "shard out of range");
    ShardSelection& sel = shards[static_cast<std::size_t>(s)];
    const bool summarize = summaries_enabled && covered;
    ++sel.fragments;
    if (summarize) ++sel.fragments_covered;  // empty fragments included
    const auto [begin, end] = rows_of(id);
    if (begin == end) return;
    std::vector<RowRange>& ranges = summarize ? sel.summary : sel.scan;
    if (!ranges.empty() && ranges.back().end == begin) {
      ranges.back().end = end;
    } else {
      ranges.push_back({begin, end});
    }
  });
  return shards;
}

}  // namespace mdw
