#include "fragment/range_fragmentation.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace mdw {

RangeFragmentation::RangeFragmentation(
    const StarSchema* schema, std::vector<RangePartition> partitions)
    : schema_(schema), partitions_(std::move(partitions)) {
  MDW_CHECK(schema_ != nullptr, "range fragmentation needs a schema");
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const auto& p = partitions_[i];
    MDW_CHECK(p.dim >= 0 && p.dim < schema_->num_dimensions(),
              "partition references unknown dimension");
    const auto& h = schema_->dimension(p.dim).hierarchy();
    MDW_CHECK(p.depth >= 0 && p.depth < h.num_levels(),
              "partition depth out of range");
    MDW_CHECK(!p.upper_bounds.empty(), "partition needs at least one range");
    std::int64_t previous = 0;
    for (const auto bound : p.upper_bounds) {
      MDW_CHECK(bound > previous, "upper bounds must strictly increase");
      previous = bound;
    }
    MDW_CHECK(previous == h.Cardinality(p.depth),
              "ranges must cover the whole domain (paper Sec. 4.1)");
    for (std::size_t j = 0; j < i; ++j) {
      MDW_CHECK(partitions_[j].dim != p.dim,
                "each partition must use a distinct dimension");
    }
  }
}

RangeFragmentation RangeFragmentation::PointwiseOf(const StarSchema* schema,
                                                   DimId dim, Depth depth) {
  const auto card = schema->dimension(dim).hierarchy().Cardinality(depth);
  RangePartition partition{dim, depth, {}};
  partition.upper_bounds.reserve(static_cast<std::size_t>(card));
  for (std::int64_t v = 1; v <= card; ++v) {
    partition.upper_bounds.push_back(v);
  }
  return RangeFragmentation(schema, {std::move(partition)});
}

RangePartition RangeFragmentation::EqualSplit(const StarSchema& schema,
                                              DimId dim, Depth depth,
                                              int parts) {
  const auto card = schema.dimension(dim).hierarchy().Cardinality(depth);
  MDW_CHECK(parts >= 1 && parts <= card, "invalid number of parts");
  RangePartition partition{dim, depth, {}};
  for (int i = 1; i <= parts; ++i) {
    partition.upper_bounds.push_back(card * i / parts);
  }
  // Remove duplicates caused by integer division on tiny domains.
  partition.upper_bounds.erase(
      std::unique(partition.upper_bounds.begin(),
                  partition.upper_bounds.end()),
      partition.upper_bounds.end());
  return partition;
}

const RangePartition& RangeFragmentation::partition(int i) const {
  MDW_CHECK(i >= 0 && i < num_attrs(), "partition index out of range");
  return partitions_[static_cast<std::size_t>(i)];
}

std::int64_t RangeFragmentation::FragmentCount() const {
  std::int64_t product = 1;
  for (const auto& p : partitions_) product *= p.num_ranges();
  return product;
}

std::int64_t RangeFragmentation::RangeOfValue(int i,
                                              std::int64_t value) const {
  const auto& bounds = partition(i).upper_bounds;
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), value);
  MDW_CHECK(it != bounds.end(), "value beyond the partition's domain");
  return it - bounds.begin();
}

FragId RangeFragmentation::FragmentOfRow(
    const std::vector<std::int64_t>& leaf_keys) const {
  MDW_CHECK(static_cast<int>(leaf_keys.size()) == schema_->num_dimensions(),
            "one leaf key per dimension required");
  FragId id = 0;
  for (int i = 0; i < num_attrs(); ++i) {
    const auto& p = partitions_[static_cast<std::size_t>(i)];
    const auto& h = schema_->dimension(p.dim).hierarchy();
    const std::int64_t value = h.AncestorOfLeaf(
        leaf_keys[static_cast<std::size_t>(p.dim)], p.depth);
    id = id * p.num_ranges() + RangeOfValue(i, value);
  }
  return id;
}

double RangeFragmentation::AvgTuplesPerFragment() const {
  return static_cast<double>(schema_->FactCount()) /
         static_cast<double>(FragmentCount());
}

double RangeFragmentation::BitmapFragmentPages() const {
  return AvgTuplesPerFragment() / 8.0 /
         static_cast<double>(schema_->physical().page_size_bytes);
}

RangeFragmentation::Plan RangeFragmentation::PlanQuery(
    const StarQuery& query) const {
  Plan plan;
  plan.slices.resize(static_cast<std::size_t>(num_attrs()));

  // Whether each fragmentation attribute fully covers its selected ranges
  // (only then can bitmap access for its predicate be skipped).
  std::vector<bool> partially_covered(
      static_cast<std::size_t>(num_attrs()), false);

  for (int i = 0; i < num_attrs(); ++i) {
    const auto& p = partitions_[static_cast<std::size_t>(i)];
    const auto& h = schema_->dimension(p.dim).hierarchy();
    auto& slice = plan.slices[static_cast<std::size_t>(i)];
    const Predicate* pred = query.PredicateOn(p.dim);
    if (pred == nullptr) {
      slice.resize(static_cast<std::size_t>(p.num_ranges()));
      for (std::int64_t r = 0; r < p.num_ranges(); ++r) {
        slice[static_cast<std::size_t>(r)] = r;
      }
      continue;
    }
    // Map each predicate value to its value block at the partition depth:
    // [lo, hi] inclusive.
    for (const auto v : pred->values) {
      std::int64_t lo, hi;
      if (pred->depth <= p.depth) {
        const std::int64_t per = h.DescendantsPer(pred->depth, p.depth);
        lo = v * per;
        hi = lo + per - 1;
      } else {
        lo = hi = h.Ancestor(v, pred->depth, p.depth);
        // A finer predicate never covers whole values at the partition
        // depth, let alone whole ranges.
        partially_covered[static_cast<std::size_t>(i)] = true;
      }
      const std::int64_t first_range = RangeOfValue(i, lo);
      const std::int64_t last_range = RangeOfValue(i, hi);
      for (std::int64_t r = first_range; r <= last_range; ++r) {
        slice.push_back(r);
        // Range r covers [lower, upper); fully covered by [lo, hi]?
        const std::int64_t upper = p.upper_bounds[static_cast<std::size_t>(r)];
        const std::int64_t lower =
            r == 0 ? 0 : p.upper_bounds[static_cast<std::size_t>(r - 1)];
        if (pred->depth <= p.depth && (lower < lo || upper - 1 > hi)) {
          partially_covered[static_cast<std::size_t>(i)] = true;
        }
      }
    }
    std::sort(slice.begin(), slice.end());
    slice.erase(std::unique(slice.begin(), slice.end()), slice.end());
  }

  plan.fragment_count = 1;
  for (const auto& slice : plan.slices) {
    plan.fragment_count *= static_cast<std::int64_t>(slice.size());
  }

  for (const auto& pred : query.predicates()) {
    Plan::Access access;
    access.dim = pred.dim;
    int attr = -1;
    for (int i = 0; i < num_attrs(); ++i) {
      if (partitions_[static_cast<std::size_t>(i)].dim == pred.dim) attr = i;
    }
    if (attr < 0) {
      access.needs_bitmap = true;  // dimension not in the fragmentation
    } else {
      access.needs_bitmap = partially_covered[static_cast<std::size_t>(attr)];
    }
    plan.accesses.push_back(access);
  }
  return plan;
}

std::string RangeFragmentation::Label() const {
  if (partitions_.empty()) return "{unfragmented}";
  std::string label = "{";
  for (int i = 0; i < num_attrs(); ++i) {
    if (i > 0) label += ", ";
    const auto& p = partitions_[static_cast<std::size_t>(i)];
    label += schema_->dimension(p.dim).AttributeLabel(p.depth) + "/" +
             std::to_string(p.num_ranges());
  }
  label += "}";
  return label;
}

}  // namespace mdw
