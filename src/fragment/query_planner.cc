#include "fragment/query_planner.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/borrowed.h"
#include "common/check.h"

namespace mdw {

namespace {
std::atomic<std::uint64_t> g_plan_count{0};
}  // namespace

std::uint64_t QueryPlanner::LifetimePlanCount() {
  return g_plan_count.load(std::memory_order_relaxed);
}

const char* ToString(QueryClass c) {
  switch (c) {
    case QueryClass::kQ1: return "Q1";
    case QueryClass::kQ2: return "Q2";
    case QueryClass::kQ3: return "Q3";
    case QueryClass::kQ4: return "Q4";
    case QueryClass::kUnsupported: return "unsupported";
  }
  return "?";
}

const char* ToString(IoClass c) {
  switch (c) {
    case IoClass::kIoc1Opt: return "IOC1-opt";
    case IoClass::kIoc1: return "IOC1";
    case IoClass::kIoc2: return "IOC2";
    case IoClass::kIoc2NoSupp: return "IOC2-nosupp";
  }
  return "?";
}

QueryPlan::QueryPlan(std::shared_ptr<const Fragmentation> fragmentation,
                     std::vector<std::vector<std::int64_t>> slices,
                     QueryClass query_class, IoClass io_class,
                     std::vector<PredicateAccess> accesses,
                     double selectivity,
                     std::vector<std::vector<bool>> covered, bool coverable,
                     std::optional<GroupBy> group_by)
    : fragmentation_(std::move(fragmentation)),
      slices_(std::move(slices)),
      query_class_(query_class),
      io_class_(io_class),
      accesses_(std::move(accesses)),
      selectivity_(selectivity),
      covered_(std::move(covered)),
      coverable_(coverable),
      group_by_(group_by) {
  MDW_CHECK(fragmentation_ != nullptr, "plan needs a fragmentation");
  MDW_CHECK(static_cast<int>(slices_.size()) == fragmentation_->num_attrs(),
            "one slice per fragmentation attribute");
  if (covered_.size() != slices_.size()) {
    // No coverage info supplied: every fragment is residual. (For a
    // zero-attribute fragmentation the empty vector IS the right shape,
    // so `coverable` passes through and a predicate-free query can still
    // summarize the single fragment.)
    MDW_CHECK(covered_.empty(),
              "coverage flags must parallel the slices or be absent");
    coverable_ = false;
    covered_.resize(slices_.size());
    for (std::size_t i = 0; i < slices_.size(); ++i) {
      covered_[i].assign(slices_[i].size(), false);
    }
  }
  MDW_CHECK(covered_.size() == slices_.size(),
            "one coverage vector per fragmentation attribute");
  for (std::size_t i = 0; i < slices_.size(); ++i) {
    MDW_CHECK(covered_[i].size() == slices_[i].size(),
              "coverage flags must parallel the slice values");
  }
  if (group_by_.has_value()) {
    const StarSchema& schema = fragmentation_->schema();
    MDW_CHECK(group_by_->dim >= 0 && group_by_->dim < schema.num_dimensions(),
              "GROUP BY dimension out of range");
    const auto& h = schema.dimension(group_by_->dim).hierarchy();
    MDW_CHECK(group_by_->depth >= 0 && group_by_->depth < h.num_levels(),
              "GROUP BY level out of range");
    group_card_ = h.Cardinality(group_by_->depth);
    group_leaves_per_ = h.LeavesPer(group_by_->depth);
    // Aligned iff the grouping dimension is a fragmentation attribute and
    // the GROUP BY level is at or above (coarser than) the fragmentation
    // level — then each fragment lies in exactly one group.
    for (int i = 0; i < fragmentation_->num_attrs(); ++i) {
      const FragAttr& attr = fragmentation_->attr(i);
      if (attr.dim == group_by_->dim && group_by_->depth <= attr.depth) {
        group_attr_ = i;
        group_desc_per_ = h.DescendantsPer(group_by_->depth, attr.depth);
        for (int j = i + 1; j < fragmentation_->num_attrs(); ++j) {
          group_suffix_ *= fragmentation_->CardOf(j);
        }
        break;
      }
    }
  }
}

std::int64_t QueryPlan::GroupOfFragment(FragId id) const {
  MDW_CHECK(group_attr_ >= 0, "GroupOfFragment needs aligned grouping");
  const std::int64_t coord =
      (id / group_suffix_) % fragmentation_->CardOf(group_attr_);
  return coord / group_desc_per_;
}

QueryPlan::QueryPlan(const Fragmentation* fragmentation,
                     std::vector<std::vector<std::int64_t>> slices,
                     QueryClass query_class, IoClass io_class,
                     std::vector<PredicateAccess> accesses,
                     double selectivity,
                     std::vector<std::vector<bool>> covered, bool coverable,
                     std::optional<GroupBy> group_by)
    : QueryPlan(Borrowed(fragmentation), std::move(slices), query_class,
                io_class, std::move(accesses), selectivity,
                std::move(covered), coverable, group_by) {}

const std::vector<std::int64_t>& QueryPlan::slice(int i) const {
  MDW_CHECK(i >= 0 && i < static_cast<int>(slices_.size()),
            "slice index out of range");
  return slices_[static_cast<std::size_t>(i)];
}

std::int64_t QueryPlan::FragmentCount() const {
  std::int64_t count = 1;
  for (const auto& s : slices_) {
    count *= static_cast<std::int64_t>(s.size());
  }
  return count;
}

bool QueryPlan::NeedsBitmaps() const {
  return std::any_of(accesses_.begin(), accesses_.end(),
                     [](const PredicateAccess& a) { return a.needs_bitmap; });
}

int QueryPlan::BitmapsPerFragment() const {
  int total = 0;
  for (const auto& a : accesses_) {
    if (a.needs_bitmap) total += a.bitmaps_read;
  }
  return total;
}

double QueryPlan::ExpectedHits() const {
  return selectivity_ *
         static_cast<double>(fragmentation_->schema().FactCount());
}

double QueryPlan::HitsPerFragment() const {
  return ExpectedHits() / static_cast<double>(FragmentCount());
}

double QueryPlan::FragmentSelectivity() const {
  return HitsPerFragment() / fragmentation_->TuplesPerFragment();
}

const std::vector<bool>& QueryPlan::covered(int i) const {
  MDW_CHECK(i >= 0 && i < static_cast<int>(covered_.size()),
            "coverage index out of range");
  return covered_[static_cast<std::size_t>(i)];
}

std::int64_t QueryPlan::CoveredFragmentCount() const {
  if (!coverable_) return 0;
  std::int64_t count = 1;
  for (const auto& flags : covered_) {
    count *= static_cast<std::int64_t>(
        std::count(flags.begin(), flags.end(), true));
  }
  return count;
}

void QueryPlan::ForEachFragment(
    const std::function<void(FragId)>& fn) const {
  ForEachFragment([&fn](FragId id, bool /*covered*/) { fn(id); });
}

void QueryPlan::ForEachFragment(
    const std::function<void(FragId, bool)>& fn) const {
  const int n = fragmentation_->num_attrs();
  if (n == 0) {
    fn(0, coverable_);
    return;
  }
  // Mixed-radix odometer over the slices, producing ascending fragment ids
  // because slices are sorted and later attributes vary fastest.
  std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> coords(static_cast<std::size_t>(n));
  while (true) {
    bool covered = coverable_;
    for (int i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      coords[u] = slices_[u][cursor[u]];
      covered = covered && covered_[u][cursor[u]];
    }
    fn(fragmentation_->FragmentIdOf(coords), covered);
    int i = n - 1;
    while (i >= 0) {
      auto& c = cursor[static_cast<std::size_t>(i)];
      if (++c < slices_[static_cast<std::size_t>(i)].size()) break;
      c = 0;
      --i;
    }
    if (i < 0) break;
  }
}

std::vector<FragId> QueryPlan::MaterializeFragments(std::int64_t cap) const {
  MDW_CHECK(FragmentCount() <= cap,
            "fragment set larger than the materialisation cap");
  std::vector<FragId> ids;
  ids.reserve(static_cast<std::size_t>(FragmentCount()));
  ForEachFragment([&ids](FragId id) { ids.push_back(id); });
  return ids;
}

QueryPlanner::QueryPlanner(std::shared_ptr<const StarSchema> schema,
                           std::shared_ptr<const Fragmentation> fragmentation)
    : schema_(std::move(schema)), fragmentation_(std::move(fragmentation)) {
  MDW_CHECK(schema_ != nullptr && fragmentation_ != nullptr,
            "planner needs schema and fragmentation");
  MDW_CHECK(&fragmentation_->schema() == schema_.get(),
            "fragmentation must belong to the schema");
}

QueryPlanner::QueryPlanner(const StarSchema* schema,
                           const Fragmentation* fragmentation)
    : QueryPlanner(Borrowed(schema), Borrowed(fragmentation)) {}

QueryPlan QueryPlanner::Plan(const StarQuery& query) const {
  g_plan_count.fetch_add(1, std::memory_order_relaxed);
  const Fragmentation& frag = *fragmentation_;

  // Step 1 (Sec. 4.3): the fragment slice per fragmentation attribute,
  // with per-value coverage flags (is every row of the coordinate a hit
  // for this attribute's predicate?).
  std::vector<std::vector<std::int64_t>> slices(
      static_cast<std::size_t>(frag.num_attrs()));
  std::vector<std::vector<bool>> covered(
      static_cast<std::size_t>(frag.num_attrs()));
  bool any_frag_dim_referenced = false;
  bool any_lower = false;    // predicate below the fragmentation level (Q2)
  bool any_higher = false;   // predicate above the fragmentation level (Q3)
  bool any_equal = false;    // predicate exactly on a fragmentation attribute

  for (int i = 0; i < frag.num_attrs(); ++i) {
    const FragAttr& attr = frag.attr(i);
    const auto& h = schema_->dimension(attr.dim).hierarchy();
    auto& slice = slices[static_cast<std::size_t>(i)];
    auto& slice_covered = covered[static_cast<std::size_t>(i)];
    const Predicate* pred = query.PredicateOn(attr.dim);
    if (pred == nullptr) {
      // Unreferenced fragmentation dimension: all its values, trivially
      // covered (no predicate to satisfy).
      slice.resize(static_cast<std::size_t>(frag.CardOf(i)));
      for (std::int64_t v = 0; v < frag.CardOf(i); ++v) {
        slice[static_cast<std::size_t>(v)] = v;
      }
      slice_covered.assign(slice.size(), true);
      continue;
    }
    any_frag_dim_referenced = true;
    if (pred->depth == attr.depth) {
      any_equal = true;
      slice = pred->values;
    } else if (pred->depth < attr.depth) {
      // Coarser predicate (paper: "higher level", Q3): expand each value to
      // its descendants at the fragmentation level.
      any_higher = true;
      for (const auto v : pred->values) {
        const std::int64_t per = h.DescendantsPer(pred->depth, attr.depth);
        for (std::int64_t k = 0; k < per; ++k) {
          slice.push_back(v * per + k);
        }
      }
    } else {
      // Finer predicate (paper: "lower level", Q2): each value maps to its
      // single ancestor fragment slice.
      any_lower = true;
      for (const auto v : pred->values) {
        slice.push_back(h.Ancestor(v, pred->depth, attr.depth));
      }
    }
    // Sorted-unique in every branch: a duplicated IN-list value must not
    // enumerate (and aggregate) its fragment twice.
    std::sort(slice.begin(), slice.end());
    slice.erase(std::unique(slice.begin(), slice.end()), slice.end());
    if (pred->depth <= attr.depth) {
      // At or above the fragmentation level: membership in a selected
      // fragment implies the predicate, so every coordinate is covered.
      slice_covered.assign(slice.size(), true);
    } else {
      // Below the fragmentation level: a coordinate is covered only when
      // the IN-list contains ALL of its depth-pred descendants, i.e. the
      // predicate degenerates to fragment membership there.
      std::vector<std::int64_t> values = pred->values;
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      const std::int64_t per = h.DescendantsPer(attr.depth, pred->depth);
      slice_covered.assign(slice.size(), false);
      std::size_t j = 0;  // lockstep: slice is the sorted unique ancestors
      for (std::size_t k = 0; k < values.size(); ++j) {
        const std::int64_t anc = h.Ancestor(values[k], pred->depth, attr.depth);
        std::int64_t run = 0;
        while (k < values.size() &&
               h.Ancestor(values[k], pred->depth, attr.depth) == anc) {
          ++k;
          ++run;
        }
        MDW_CHECK(slice[j] == anc, "coverage walk out of step with slice");
        slice_covered[j] = (run == per);
      }
    }
  }

  // A predicate outside the fragmentation dimensions filters inside every
  // fragment, so no fragment can be answered from membership alone.
  bool coverable = true;
  for (const auto& pred : query.predicates()) {
    if (frag.FragDepthOf(pred.dim) < 0) {
      coverable = false;
      break;
    }
  }

  // Step 2 (Sec. 4.3): bitmap requirements per predicate.
  std::vector<PredicateAccess> accesses;
  bool all_preds_on_frag_dims = true;
  bool all_preds_at_frag_depth = !query.predicates().empty();
  for (const auto& pred : query.predicates()) {
    PredicateAccess access;
    access.dim = pred.dim;
    access.depth = pred.depth;
    const Depth frag_depth = frag.FragDepthOf(pred.dim);
    const auto& dim = schema_->dimension(pred.dim);
    if (frag_depth < 0) {
      // Dimension not represented in F: full bitmap access.
      all_preds_on_frag_dims = false;
      all_preds_at_frag_depth = false;
      access.needs_bitmap = true;
      access.bitmaps_read =
          dim.BitmapsForSelection(pred.depth) *
          static_cast<int>(pred.values.size());
    } else if (pred.depth > frag_depth) {
      // Finer than the fragmentation level: bitmaps for the suffix bits
      // below the fragmentation level (encoded) or one bitmap (simple).
      all_preds_at_frag_depth = false;
      access.needs_bitmap = true;
      if (dim.index_kind() == IndexKind::kEncoded) {
        access.bitmaps_read = (dim.hierarchy().PrefixBits(pred.depth) -
                               dim.hierarchy().PrefixBits(frag_depth)) *
                              static_cast<int>(pred.values.size());
      } else {
        access.bitmaps_read = static_cast<int>(pred.values.size());
      }
    } else {
      // At or above the fragmentation level: every row of the selected
      // fragments matches; no bitmap needed (Q1/Q3).
      if (pred.depth != frag_depth) all_preds_at_frag_depth = false;
      access.needs_bitmap = false;
      access.bitmaps_read = 0;
    }
    accesses.push_back(access);
  }

  // Query class (Sec. 4.2).
  QueryClass query_class;
  if (!any_frag_dim_referenced) {
    query_class = QueryClass::kUnsupported;
  } else if (any_lower && any_higher) {
    query_class = QueryClass::kQ4;
  } else if (any_lower) {
    query_class = QueryClass::kQ2;
  } else if (any_higher) {
    query_class = QueryClass::kQ3;
  } else {
    query_class = QueryClass::kQ1;
  }
  (void)any_equal;

  // I/O class (Sec. 4.5).
  const bool needs_bitmaps = std::any_of(
      accesses.begin(), accesses.end(),
      [](const PredicateAccess& a) { return a.needs_bitmap; });
  IoClass io_class;
  if (!any_frag_dim_referenced && !query.predicates().empty()) {
    io_class = IoClass::kIoc2NoSupp;
  } else if (!needs_bitmaps && all_preds_on_frag_dims) {
    // IOC1: Dim(Q) subset of Dim(F) and every predicate at or above its
    // fragmentation level. IOC1-opt additionally requires every
    // fragmentation dimension referenced exactly at its level.
    const bool every_frag_dim_referenced = [&] {
      for (int i = 0; i < frag.num_attrs(); ++i) {
        if (query.PredicateOn(frag.attr(i).dim) == nullptr) return false;
      }
      return frag.num_attrs() > 0;
    }();
    io_class = (every_frag_dim_referenced && all_preds_at_frag_depth)
                   ? IoClass::kIoc1Opt
                   : IoClass::kIoc1;
  } else {
    io_class = IoClass::kIoc2;
  }

  return QueryPlan(fragmentation_, std::move(slices), query_class, io_class,
                   std::move(accesses), query.Selectivity(*schema_),
                   std::move(covered), coverable, query.group_by());
}

}  // namespace mdw
