#include "fragment/fragmentation.h"

#include "common/check.h"
#include "common/math_util.h"

namespace mdw {

Fragmentation::Fragmentation(const StarSchema* schema,
                             std::vector<FragAttr> attrs)
    : schema_(schema), attrs_(std::move(attrs)) {
  MDW_CHECK(schema_ != nullptr, "fragmentation needs a schema");
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    const auto& a = attrs_[i];
    MDW_CHECK(a.dim >= 0 && a.dim < schema_->num_dimensions(),
              "fragmentation attribute references unknown dimension");
    const auto& h = schema_->dimension(a.dim).hierarchy();
    MDW_CHECK(a.depth >= 0 && a.depth < h.num_levels(),
              "fragmentation attribute depth out of range");
    for (std::size_t j = 0; j < i; ++j) {
      MDW_CHECK(attrs_[j].dim != a.dim,
                "each fragmentation attribute must use a distinct dimension");
    }
    cards_.push_back(h.Cardinality(a.depth));
  }
}

const FragAttr& Fragmentation::attr(int i) const {
  MDW_CHECK(i >= 0 && i < num_attrs(), "attribute index out of range");
  return attrs_[static_cast<std::size_t>(i)];
}

std::int64_t Fragmentation::CardOf(int i) const {
  MDW_CHECK(i >= 0 && i < num_attrs(), "attribute index out of range");
  return cards_[static_cast<std::size_t>(i)];
}

std::int64_t Fragmentation::FragmentCount() const {
  std::int64_t product = 1;
  for (const auto c : cards_) product *= c;
  return product;
}

int Fragmentation::IndexOfDim(DimId dim) const {
  for (int i = 0; i < num_attrs(); ++i) {
    if (attrs_[static_cast<std::size_t>(i)].dim == dim) return i;
  }
  return -1;
}

Depth Fragmentation::FragDepthOf(DimId dim) const {
  const int i = IndexOfDim(dim);
  return i < 0 ? -1 : attrs_[static_cast<std::size_t>(i)].depth;
}

FragId Fragmentation::FragmentIdOf(
    const std::vector<std::int64_t>& coords) const {
  MDW_CHECK(static_cast<int>(coords.size()) == num_attrs(),
            "coordinate count must match attribute count");
  FragId id = 0;
  for (int i = 0; i < num_attrs(); ++i) {
    const std::int64_t c = coords[static_cast<std::size_t>(i)];
    MDW_CHECK(c >= 0 && c < CardOf(i), "coordinate out of range");
    id = id * CardOf(i) + c;
  }
  return id;
}

std::vector<std::int64_t> Fragmentation::CoordsOf(FragId id) const {
  MDW_CHECK(id >= 0 && id < FragmentCount(), "fragment id out of range");
  std::vector<std::int64_t> coords(static_cast<std::size_t>(num_attrs()));
  for (int i = num_attrs() - 1; i >= 0; --i) {
    coords[static_cast<std::size_t>(i)] = id % CardOf(i);
    id /= CardOf(i);
  }
  return coords;
}

FragId Fragmentation::FragmentOfRow(
    const std::vector<std::int64_t>& leaf_keys) const {
  MDW_CHECK(static_cast<int>(leaf_keys.size()) == schema_->num_dimensions(),
            "one leaf key per dimension required");
  std::vector<std::int64_t> coords;
  coords.reserve(static_cast<std::size_t>(num_attrs()));
  for (const auto& a : attrs_) {
    const auto& h = schema_->dimension(a.dim).hierarchy();
    coords.push_back(
        h.AncestorOfLeaf(leaf_keys[static_cast<std::size_t>(a.dim)], a.depth));
  }
  return FragmentIdOf(coords);
}

double Fragmentation::TuplesPerFragment() const {
  return static_cast<double>(schema_->FactCount()) /
         static_cast<double>(FragmentCount());
}

double Fragmentation::FactPagesPerFragment() const {
  return TuplesPerFragment() /
         static_cast<double>(schema_->physical().TuplesPerPage());
}

double Fragmentation::BitmapFragmentPages() const {
  return TuplesPerFragment() / 8.0 /
         static_cast<double>(schema_->physical().page_size_bytes);
}

std::string Fragmentation::Label() const {
  if (attrs_.empty()) return "{unfragmented}";
  std::string label = "{";
  for (int i = 0; i < num_attrs(); ++i) {
    if (i > 0) label += ", ";
    const auto& a = attrs_[static_cast<std::size_t>(i)];
    label += schema_->dimension(a.dim).AttributeLabel(a.depth);
  }
  label += "}";
  return label;
}

}  // namespace mdw
