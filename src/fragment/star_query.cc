#include "fragment/star_query.h"

#include "common/check.h"
#include "schema/apb1.h"

namespace mdw {

StarQuery::StarQuery(std::string name, std::vector<Predicate> predicates)
    : StarQuery(std::move(name), std::move(predicates),
                AggregateSpec::Default()) {}

StarQuery::StarQuery(std::string name, std::vector<Predicate> predicates,
                     AggregateSpec aggregates, std::optional<GroupBy> group_by,
                     std::optional<OrderBy> order_by)
    : name_(std::move(name)),
      predicates_(std::move(predicates)),
      aggregates_(std::move(aggregates)),
      group_by_(group_by),
      order_by_(order_by) {
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    MDW_CHECK(!predicates_[i].values.empty(),
              "predicate needs at least one value");
    for (std::size_t j = 0; j < i; ++j) {
      MDW_CHECK(predicates_[j].dim != predicates_[i].dim,
                "at most one predicate per dimension");
    }
  }
  MDW_CHECK(!aggregates_.items.empty(), "aggregate spec needs at least one item");
  if (order_by_.has_value()) {
    MDW_CHECK(order_by_->item >= 0 &&
                  order_by_->item < static_cast<int>(aggregates_.items.size()),
              "ORDER BY item out of range of the aggregate spec");
    MDW_CHECK(order_by_->limit >= 0, "LIMIT must be non-negative");
  }
}

StarQuery StarQuery::WithAggregates(AggregateSpec aggregates) const {
  return StarQuery(name_, predicates_, std::move(aggregates), group_by_,
                   order_by_);
}

StarQuery StarQuery::WithGroupBy(GroupBy group_by) const {
  return StarQuery(name_, predicates_, aggregates_, group_by, order_by_);
}

StarQuery StarQuery::WithOrderBy(OrderBy order_by) const {
  return StarQuery(name_, predicates_, aggregates_, group_by_, order_by);
}

const Predicate* StarQuery::PredicateOn(DimId dim) const {
  for (const auto& p : predicates_) {
    if (p.dim == dim) return &p;
  }
  return nullptr;
}

double StarQuery::Selectivity(const StarSchema& schema) const {
  double selectivity = 1.0;
  for (const auto& p : predicates_) {
    const auto& h = schema.dimension(p.dim).hierarchy();
    selectivity *= static_cast<double>(p.values.size()) /
                   static_cast<double>(h.Cardinality(p.depth));
  }
  return selectivity;
}

double StarQuery::ExpectedHits(const StarSchema& schema) const {
  return Selectivity(schema) * static_cast<double>(schema.FactCount());
}

namespace apb1_queries {

// Depth constants of the APB-1 hierarchies (root = 0).
namespace {
constexpr Depth kProductGroup = 3;
constexpr Depth kProductCode = 5;
constexpr Depth kCustomerStore = 1;
constexpr Depth kTimeQuarter = 1;
constexpr Depth kTimeMonth = 2;
}  // namespace

StarQuery OneStore(std::int64_t store) {
  return StarQuery("1STORE", {{kApb1Customer, kCustomerStore, {store}}},
                   AggregateSpec::Default());
}

StarQuery OneMonth(std::int64_t month) {
  return StarQuery("1MONTH", {{kApb1Time, kTimeMonth, {month}}},
                   AggregateSpec::Default());
}

StarQuery OneCode(std::int64_t code) {
  return StarQuery("1CODE", {{kApb1Product, kProductCode, {code}}},
                   AggregateSpec::Default());
}

StarQuery OneMonthOneGroup(std::int64_t month, std::int64_t group) {
  return StarQuery("1MONTH1GROUP",
                   {{kApb1Time, kTimeMonth, {month}},
                    {kApb1Product, kProductGroup, {group}}},
                   AggregateSpec::Default());
}

StarQuery OneCodeOneMonth(std::int64_t code, std::int64_t month) {
  return StarQuery("1CODE1MONTH",
                   {{kApb1Product, kProductCode, {code}},
                    {kApb1Time, kTimeMonth, {month}}},
                   AggregateSpec::Default());
}

StarQuery OneCodeOneQuarter(std::int64_t code, std::int64_t quarter) {
  return StarQuery("1CODE1QUARTER",
                   {{kApb1Product, kProductCode, {code}},
                    {kApb1Time, kTimeQuarter, {quarter}}},
                   AggregateSpec::Default());
}

StarQuery OneQuarter(std::int64_t quarter) {
  return StarQuery("1QUARTER", {{kApb1Time, kTimeQuarter, {quarter}}},
                   AggregateSpec::Default());
}

StarQuery OneGroupOneStore(std::int64_t group, std::int64_t store) {
  return StarQuery("1GROUP1STORE",
                   {{kApb1Product, kProductGroup, {group}},
                    {kApb1Customer, kCustomerStore, {store}}},
                   AggregateSpec::Default());
}

}  // namespace apb1_queries

}  // namespace mdw
