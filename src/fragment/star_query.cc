#include "fragment/star_query.h"

#include "common/check.h"
#include "schema/apb1.h"

namespace mdw {

StarQuery::StarQuery(std::string name, std::vector<Predicate> predicates)
    : name_(std::move(name)), predicates_(std::move(predicates)) {
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    MDW_CHECK(!predicates_[i].values.empty(),
              "predicate needs at least one value");
    for (std::size_t j = 0; j < i; ++j) {
      MDW_CHECK(predicates_[j].dim != predicates_[i].dim,
                "at most one predicate per dimension");
    }
  }
}

const Predicate* StarQuery::PredicateOn(DimId dim) const {
  for (const auto& p : predicates_) {
    if (p.dim == dim) return &p;
  }
  return nullptr;
}

double StarQuery::Selectivity(const StarSchema& schema) const {
  double selectivity = 1.0;
  for (const auto& p : predicates_) {
    const auto& h = schema.dimension(p.dim).hierarchy();
    selectivity *= static_cast<double>(p.values.size()) /
                   static_cast<double>(h.Cardinality(p.depth));
  }
  return selectivity;
}

double StarQuery::ExpectedHits(const StarSchema& schema) const {
  return Selectivity(schema) * static_cast<double>(schema.FactCount());
}

namespace apb1_queries {

// Depth constants of the APB-1 hierarchies (root = 0).
namespace {
constexpr Depth kProductGroup = 3;
constexpr Depth kProductCode = 5;
constexpr Depth kCustomerStore = 1;
constexpr Depth kTimeQuarter = 1;
constexpr Depth kTimeMonth = 2;
}  // namespace

StarQuery OneStore(std::int64_t store) {
  return StarQuery("1STORE", {{kApb1Customer, kCustomerStore, {store}}});
}

StarQuery OneMonth(std::int64_t month) {
  return StarQuery("1MONTH", {{kApb1Time, kTimeMonth, {month}}});
}

StarQuery OneCode(std::int64_t code) {
  return StarQuery("1CODE", {{kApb1Product, kProductCode, {code}}});
}

StarQuery OneMonthOneGroup(std::int64_t month, std::int64_t group) {
  return StarQuery("1MONTH1GROUP", {{kApb1Time, kTimeMonth, {month}},
                                    {kApb1Product, kProductGroup, {group}}});
}

StarQuery OneCodeOneMonth(std::int64_t code, std::int64_t month) {
  return StarQuery("1CODE1MONTH", {{kApb1Product, kProductCode, {code}},
                                   {kApb1Time, kTimeMonth, {month}}});
}

StarQuery OneCodeOneQuarter(std::int64_t code, std::int64_t quarter) {
  return StarQuery("1CODE1QUARTER",
                   {{kApb1Product, kProductCode, {code}},
                    {kApb1Time, kTimeQuarter, {quarter}}});
}

StarQuery OneQuarter(std::int64_t quarter) {
  return StarQuery("1QUARTER", {{kApb1Time, kTimeQuarter, {quarter}}});
}

StarQuery OneGroupOneStore(std::int64_t group, std::int64_t store) {
  return StarQuery("1GROUP1STORE",
                   {{kApb1Product, kProductGroup, {group}},
                    {kApb1Customer, kCustomerStore, {store}}});
}

}  // namespace apb1_queries

}  // namespace mdw
