#ifndef MDW_FRAGMENT_ENUMERATION_H_
#define MDW_FRAGMENT_ENUMERATION_H_

#include <vector>

#include "fragment/fragmentation.h"

namespace mdw {

/// Enumerates every possible MDHF point fragmentation of `schema`: all
/// non-empty subsets of dimensions crossed with all per-dimension level
/// choices. For the APB-1 schema this yields (6+1)(2+1)(1+1)(3+1) - 1 = 167
/// fragmentations — the design space of paper Table 2.
std::vector<Fragmentation> EnumerateFragmentations(const StarSchema& schema);

/// Count of enumerated fragmentations with exactly `dims` dimensions whose
/// bitmap fragments are at least `min_bitmap_fragment_pages` pages (pass 0
/// for the unconstrained count). Reproduces the cells of Table 2.
int CountOptions(const std::vector<Fragmentation>& options, int dims,
                 double min_bitmap_fragment_pages);

}  // namespace mdw

#endif  // MDW_FRAGMENT_ENUMERATION_H_
