#ifndef MDW_FRAGMENT_PLAN_CACHE_H_
#define MDW_FRAGMENT_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "fragment/query_planner.h"
#include "fragment/star_query.h"

namespace mdw {

/// Canonical cache key of a star query: its predicates ordered by
/// dimension with sorted IN-list values, followed by the aggregate spec
/// and the GROUP BY attribute (if any) — so a grouped query and its
/// ungrouped twin never alias to one plan. The query name and ORDER BY /
/// LIMIT are deliberately excluded (they never influence planning: the
/// name is cosmetic, and top-k ordering is applied to the finished group
/// table after execution). Two queries have equal signatures iff the
/// planner derives identical plans for them under any fixed fragmentation
/// AND they aggregate the same items.
std::string CanonicalQuerySignature(const StarQuery& query);

/// A memoizing, LRU-evicting cache of derived QueryPlans, keyed by
/// CanonicalQuerySignature. One cache serves exactly one fragmentation
/// (plans are only valid for the fragmentation they were derived from),
/// which is why mdw::Warehouse owns one per façade and shares it between
/// copies rather than keying entries by fragmentation as well.
///
/// Entries are handed out as shared_ptr<const QueryPlan>, so a cached
/// plan stays valid even after eviction or cache destruction — eviction
/// only drops the cache's own reference. All methods are thread-safe.
class PlanCache {
 public:
  /// Hit/miss observability snapshot (see Warehouse::plan_cache_stats()).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< lookups that found no resident plan
    std::uint64_t evictions = 0;   ///< entries dropped by LRU pressure
    std::size_t size = 0;          ///< entries currently resident
    std::size_t capacity = 0;

    double HitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  /// `capacity` is the maximum number of resident plans; must be >= 1
  /// (callers that want caching off simply don't construct a cache).
  explicit PlanCache(std::size_t capacity);

  /// The cached plan for `query`, or — on a miss — the plan freshly
  /// derived through `planner`, inserted (evicting the least recently
  /// used entry when at capacity) and returned.
  std::shared_ptr<const QueryPlan> GetOrPlan(const StarQuery& query,
                                             const QueryPlanner& planner);

  /// The cached plan for `query`, or nullptr; counts as a hit/miss but
  /// never derives or inserts.
  std::shared_ptr<const QueryPlan> Lookup(const StarQuery& query) const;

  std::size_t capacity() const { return capacity_; }
  Stats stats() const;

  /// Drops all entries (handed-out plans stay valid); keeps counters.
  void Clear();

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const QueryPlan>>>;

  std::size_t capacity_;
  mutable std::mutex mu_;
  mutable LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string, LruList::iterator> by_key_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace mdw

#endif  // MDW_FRAGMENT_PLAN_CACHE_H_
