#ifndef MDW_FRAGMENT_BITMAP_ELIMINATION_H_
#define MDW_FRAGMENT_BITMAP_ELIMINATION_H_

#include <vector>

#include "fragment/fragmentation.h"

namespace mdw {

/// Bitmaps that remain materialised for one dimension under a
/// fragmentation (paper Sec. 4.2, last paragraph): selections on
/// fragmentation attributes and on higher-level attributes of a
/// fragmentation dimension never need bitmaps (every row of a selected
/// fragment matches), so those bitmaps contain only '1' bits within each
/// fragment and can be dropped.
struct DimensionBitmaps {
  DimId dim = -1;
  int total = 0;        ///< bitmaps without fragmentation
  int eliminated = 0;   ///< dropped thanks to the fragmentation
  int remaining = 0;    ///< total - eliminated
};

/// Per-dimension bitmap requirements under `fragmentation`.
/// For an encoded index of a dimension fragmented at depth f, the
/// PrefixBits(f) prefix bitmaps are dropped (10 of PRODUCT's 15 for
/// group-level fragmentation); for a simple index, all bitmaps at depths
/// <= f are dropped (all 34 TIME bitmaps for month-level fragmentation).
std::vector<DimensionBitmaps> BitmapRequirements(
    const Fragmentation& fragmentation);

/// Total bitmaps remaining under `fragmentation` (32 for F_MonthGroup on
/// the paper's APB-1 configuration, down from 76).
int RemainingBitmapCount(const Fragmentation& fragmentation);

}  // namespace mdw

#endif  // MDW_FRAGMENT_BITMAP_ELIMINATION_H_
