#ifndef MDW_FRAGMENT_SHARD_ROUTING_H_
#define MDW_FRAGMENT_SHARD_ROUTING_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "fragment/query_planner.h"

namespace mdw {

/// A contiguous physical row range [begin, end).
struct RowRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  std::int64_t rows() const { return end - begin; }

  friend bool operator==(const RowRange& a, const RowRange& b) = default;
};

/// The work a query plan selects on ONE shard of a sharded,
/// fragment-clustered store: maximal runs of residual fragments to scan,
/// maximal runs of fully-covered fragments answerable from measure
/// summaries, and the fragment counts behind them. Empty fragments
/// contribute to the counts but not to the ranges.
struct ShardSelection {
  std::vector<RowRange> scan;
  std::vector<RowRange> summary;
  /// Group key of each summary run, parallel to `summary`. Populated only
  /// for aligned grouped plans (every fragment of a run shares the key —
  /// runs never coalesce across group boundaries then); -1 otherwise.
  std::vector<std::int64_t> summary_group;
  /// Plan fragments routed to this shard.
  std::int64_t fragments = 0;
  /// Fully-covered ones among them (empty fragments included).
  std::int64_t fragments_covered = 0;

  std::int64_t ScanRows() const {
    std::int64_t rows = 0;
    for (const auto& r : scan) rows += r.rows();
    return rows;
  }
};

/// Routes the plan's fragment set to shards: each selected fragment goes
/// to `shard_of(id)` (in [0, num_shards)), its physical rows come from
/// `rows_of(id)`, and fully-covered fragments split into summary runs
/// when `summaries_enabled` (otherwise every fragment is scanned). Plans
/// enumerate fragments in ascending id order and a shard lays its
/// fragments out ascending too, so per-shard ranges arrive ascending and
/// physically adjacent selected fragments coalesce into maximal runs —
/// the property that keeps scheduling O(selected fragments) and the
/// per-shard merge order fixed.
///
/// For aligned grouped plans (plan.AlignedGrouping()), summary runs are
/// additionally cut at group boundaries and labelled with their group key
/// in `summary_group`, so a prefix-sum fold credits exactly one group.
/// Scan runs stay maximal: the scan kernel reads the group key per row.
std::vector<ShardSelection> RouteSelectionToShards(
    const QueryPlan& plan, int num_shards, bool summaries_enabled,
    const std::function<int(FragId)>& shard_of,
    const std::function<std::pair<std::int64_t, std::int64_t>(FragId)>&
        rows_of);

}  // namespace mdw

#endif  // MDW_FRAGMENT_SHARD_ROUTING_H_
