#ifndef MDW_FRAGMENT_STAR_QUERY_H_
#define MDW_FRAGMENT_STAR_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/star_schema.h"

namespace mdw {

/// An exact-match (or IN-list) predicate on one dimension attribute:
/// "dimension `dim` at hierarchy depth `depth` equals one of `values`".
/// The paper's query types all use a single value; IN-lists generalise the
/// planner without changing its structure.
struct Predicate {
  DimId dim;
  Depth depth;
  std::vector<std::int64_t> values;
};

/// A star (join) query: selections on dimension hierarchy attributes plus
/// an aggregation over the matching fact rows (paper Sec. 3.1). The
/// aggregation measures are irrelevant to allocation decisions; we model
/// SUM over all measure columns.
class StarQuery {
 public:
  StarQuery(std::string name, std::vector<Predicate> predicates);

  const std::string& name() const { return name_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  int num_predicates() const { return static_cast<int>(predicates_.size()); }

  /// The predicate on `dim`, or nullptr.
  const Predicate* PredicateOn(DimId dim) const;

  /// Fraction of the fact table matching all predicates assuming uniform,
  /// independent dimensions (the paper's uniformity assumption):
  /// product of |values| / Cardinality(depth).
  double Selectivity(const StarSchema& schema) const;

  /// Expected number of hit rows: Selectivity * N.
  double ExpectedHits(const StarSchema& schema) const;

 private:
  std::string name_;
  std::vector<Predicate> predicates_;
};

/// Factory helpers for the paper's APB-1 query types (Sec. 3.1/6).
/// Dimension ids follow schema construction order (see schema/apb1.h).
namespace apb1_queries {

/// 1STORE: aggregate one customer store over everything else.
StarQuery OneStore(std::int64_t store);
/// 1MONTH: aggregate one month.
StarQuery OneMonth(std::int64_t month);
/// 1CODE: aggregate one product code.
StarQuery OneCode(std::int64_t code);
/// 1MONTH1GROUP: one month and one product group (two-dimensional join).
StarQuery OneMonthOneGroup(std::int64_t month, std::int64_t group);
/// 1CODE1MONTH: one product code within one month.
StarQuery OneCodeOneMonth(std::int64_t code, std::int64_t month);
/// 1CODE1QUARTER: one product code within one quarter.
StarQuery OneCodeOneQuarter(std::int64_t code, std::int64_t quarter);
/// 1QUARTER: aggregate one quarter.
StarQuery OneQuarter(std::int64_t quarter);
/// 1GROUP1STORE: one product group and one customer store.
StarQuery OneGroupOneStore(std::int64_t group, std::int64_t store);

}  // namespace apb1_queries

}  // namespace mdw

#endif  // MDW_FRAGMENT_STAR_QUERY_H_
