#ifndef MDW_FRAGMENT_STAR_QUERY_H_
#define MDW_FRAGMENT_STAR_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "schema/star_schema.h"

namespace mdw {

/// An exact-match (or IN-list) predicate on one dimension attribute:
/// "dimension `dim` at hierarchy depth `depth` equals one of `values`".
/// The paper's query types all use a single value; IN-lists generalise the
/// planner without changing its structure.
struct Predicate {
  DimId dim;
  Depth depth;
  std::vector<std::int64_t> values;
};

/// Aggregate function of one SELECT-list item. AVG is derived at
/// result-build time from the integer SUM and COUNT partials, so execution
/// accumulates the same bit-identical integers regardless of function.
enum class AggFn { kSum, kCount, kAvg };

/// The fact-table measure an aggregate item reads. COUNT ignores it.
enum class MeasureId { kUnitsSold, kDollarSales };

/// One SELECT-list item: fn(measure), e.g. SUM(DollarSales).
struct AggItem {
  AggFn fn = AggFn::kSum;
  MeasureId measure = MeasureId::kUnitsSold;

  friend bool operator==(const AggItem& a, const AggItem& b) = default;
};

/// The explicit aggregate list of a star query. Replaces the historic
/// implicit "SUM over all measures" shape, which `Default()` reproduces.
struct AggregateSpec {
  std::vector<AggItem> items;

  /// SUM(UnitsSold), SUM(DollarSales) — the pre-AggregateSpec behaviour.
  static AggregateSpec Default() {
    return {{{AggFn::kSum, MeasureId::kUnitsSold},
             {AggFn::kSum, MeasureId::kDollarSales}}};
  }

  friend bool operator==(const AggregateSpec& a,
                         const AggregateSpec& b) = default;
};

/// GROUP BY one dimension hierarchy attribute: one result row per distinct
/// value of `dim` at `depth` (rollup = re-running with a smaller depth).
struct GroupBy {
  DimId dim = 0;
  Depth depth = 0;

  friend bool operator==(const GroupBy& a, const GroupBy& b) = default;
};

/// ORDER BY <select item> [ASC|DESC] [LIMIT k]. `item` indexes the
/// AggregateSpec; `limit` == 0 keeps every group (plain ORDER BY). Ties
/// break on ascending group key so top-k is deterministic.
struct OrderBy {
  int item = 0;
  bool descending = false;
  std::int64_t limit = 0;

  friend bool operator==(const OrderBy& a, const OrderBy& b) = default;
};

/// A star (join) query: selections on dimension hierarchy attributes, an
/// aggregate list over the matching fact rows (paper Sec. 3.1), and
/// optionally a GROUP BY attribute with ORDER BY ... LIMIT on top. The
/// two-argument constructor keeps the historic shape: SUM over all
/// measures, no grouping.
class StarQuery {
 public:
  StarQuery(std::string name, std::vector<Predicate> predicates);
  StarQuery(std::string name, std::vector<Predicate> predicates,
            AggregateSpec aggregates, std::optional<GroupBy> group_by = {},
            std::optional<OrderBy> order_by = {});

  const std::string& name() const { return name_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  int num_predicates() const { return static_cast<int>(predicates_.size()); }

  const AggregateSpec& aggregates() const { return aggregates_; }
  const std::optional<GroupBy>& group_by() const { return group_by_; }
  const std::optional<OrderBy>& order_by() const { return order_by_; }
  bool grouped() const { return group_by_.has_value(); }

  /// Copy-with builders, so the apb1_queries factories compose with
  /// grouping: apb1_queries::OneQuarter(2).WithGroupBy({kApb1Time, 2}).
  StarQuery WithAggregates(AggregateSpec aggregates) const;
  StarQuery WithGroupBy(GroupBy group_by) const;
  StarQuery WithOrderBy(OrderBy order_by) const;

  /// The predicate on `dim`, or nullptr.
  const Predicate* PredicateOn(DimId dim) const;

  /// Fraction of the fact table matching all predicates assuming uniform,
  /// independent dimensions (the paper's uniformity assumption):
  /// product of |values| / Cardinality(depth).
  double Selectivity(const StarSchema& schema) const;

  /// Expected number of hit rows: Selectivity * N.
  double ExpectedHits(const StarSchema& schema) const;

 private:
  std::string name_;
  std::vector<Predicate> predicates_;
  AggregateSpec aggregates_ = AggregateSpec::Default();
  std::optional<GroupBy> group_by_;
  std::optional<OrderBy> order_by_;
};

/// Factory helpers for the paper's APB-1 query types (Sec. 3.1/6).
/// Dimension ids follow schema construction order (see schema/apb1.h).
namespace apb1_queries {

/// 1STORE: aggregate one customer store over everything else.
StarQuery OneStore(std::int64_t store);
/// 1MONTH: aggregate one month.
StarQuery OneMonth(std::int64_t month);
/// 1CODE: aggregate one product code.
StarQuery OneCode(std::int64_t code);
/// 1MONTH1GROUP: one month and one product group (two-dimensional join).
StarQuery OneMonthOneGroup(std::int64_t month, std::int64_t group);
/// 1CODE1MONTH: one product code within one month.
StarQuery OneCodeOneMonth(std::int64_t code, std::int64_t month);
/// 1CODE1QUARTER: one product code within one quarter.
StarQuery OneCodeOneQuarter(std::int64_t code, std::int64_t quarter);
/// 1QUARTER: aggregate one quarter.
StarQuery OneQuarter(std::int64_t quarter);
/// 1GROUP1STORE: one product group and one customer store.
StarQuery OneGroupOneStore(std::int64_t group, std::int64_t store);

}  // namespace apb1_queries

}  // namespace mdw

#endif  // MDW_FRAGMENT_STAR_QUERY_H_
