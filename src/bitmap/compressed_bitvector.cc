#include "bitmap/compressed_bitvector.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"

namespace mdw {

namespace {

constexpr std::uint32_t kFillFlag = 0x8000'0000u;
constexpr std::uint32_t kFillValueBit = 0x4000'0000u;
constexpr std::uint32_t kMaxRun = 0x3FFF'FFFFu;
constexpr std::uint32_t kPayloadMask = 0x7FFF'FFFFu;

bool IsFill(std::uint32_t word) { return (word & kFillFlag) != 0; }
bool FillValue(std::uint32_t word) { return (word & kFillValueBit) != 0; }
std::uint32_t RunLength(std::uint32_t word) { return word & kMaxRun; }

}  // namespace

bool CompressedBitVector::GroupReader::Next(std::uint32_t* group) {
  if (remaining_fill_ > 0) {
    --remaining_fill_;
    *group = fill_group_;
    return true;
  }
  if (index_ == words_.size()) return false;
  const std::uint32_t word = words_[index_++];
  if (IsFill(word)) {
    const std::uint32_t run = RunLength(word);
    MDW_CHECK(run > 0, "corrupt fill word");
    fill_group_ = FillValue(word) ? kPayloadMask : 0;
    remaining_fill_ = run - 1;
    *group = fill_group_;
    return true;
  }
  *group = word & kPayloadMask;
  return true;
}

void CompressedBitVector::AppendGroup(std::uint32_t group) {
  const bool all_zero = group == 0;
  const bool all_one = group == kPayloadMask;
  if (all_zero || all_one) {
    if (!words_.empty() && IsFill(words_.back()) &&
        FillValue(words_.back()) == all_one &&
        RunLength(words_.back()) < kMaxRun) {
      ++words_.back();
      return;
    }
    words_.push_back(kFillFlag | (all_one ? kFillValueBit : 0u) | 1u);
    return;
  }
  words_.push_back(group);
}

CompressedBitVector::CompressedBitVector(const BitVector& bits)
    : size_bits_(bits.size()) {
  const std::int64_t groups = CeilDiv(size_bits_, 31);
  std::int64_t bit = 0;
  for (std::int64_t g = 0; g < groups; ++g) {
    std::uint32_t group = 0;
    const std::int64_t limit = std::min<std::int64_t>(31, size_bits_ - bit);
    for (std::int64_t i = 0; i < limit; ++i, ++bit) {
      if (bits.Get(bit)) group |= 1u << i;
    }
    // The trailing partial group is padded with zeros; size_bits_
    // truncates them again on decompression.
    AppendGroup(group);
  }
}

std::int64_t CompressedBitVector::UncompressedBytes() const {
  return CeilDiv(size_bits_, 32) * 4;
}

double CompressedBitVector::CompressionRatio() const {
  if (SizeBytes() == 0) return 1.0;
  return static_cast<double>(UncompressedBytes()) /
         static_cast<double>(SizeBytes());
}

std::int64_t CompressedBitVector::Count() const {
  GroupReader reader(words_);
  std::int64_t count = 0;
  std::int64_t bits_seen = 0;
  std::uint32_t group;
  while (reader.Next(&group)) {
    // Mask padding bits of the final group.
    const std::int64_t valid = std::min<std::int64_t>(31, size_bits_ - bits_seen);
    if (valid < 31) group &= (1u << valid) - 1;
    count += __builtin_popcount(group);
    bits_seen += 31;
  }
  return count;
}

BitVector CompressedBitVector::Decompress() const {
  BitVector bits(size_bits_);
  GroupReader reader(words_);
  std::int64_t bit = 0;
  std::uint32_t group;
  while (reader.Next(&group)) {
    const std::int64_t limit = std::min<std::int64_t>(31, size_bits_ - bit);
    for (std::int64_t i = 0; i < limit; ++i) {
      if ((group >> i) & 1) bits.Set(bit + i);
    }
    bit += 31;
  }
  return bits;
}

template <typename Op>
CompressedBitVector CompressedBitVector::Combine(
    const CompressedBitVector& other, Op op) const {
  MDW_CHECK(size_bits_ == other.size_bits_,
            "size mismatch in compressed Boolean operation");
  CompressedBitVector result;
  result.size_bits_ = size_bits_;
  GroupReader a(words_), b(other.words_);
  std::uint32_t ga, gb;
  while (a.Next(&ga)) {
    MDW_CHECK(b.Next(&gb), "compressed bitmaps of equal size disagree");
    result.AppendGroup(op(ga, gb) & kPayloadMask);
  }
  return result;
}

CompressedBitVector CompressedBitVector::And(
    const CompressedBitVector& other) const {
  return Combine(other,
                 [](std::uint32_t x, std::uint32_t y) { return x & y; });
}

CompressedBitVector CompressedBitVector::Or(
    const CompressedBitVector& other) const {
  return Combine(other,
                 [](std::uint32_t x, std::uint32_t y) { return x | y; });
}

}  // namespace mdw
