#include "bitmap/index_set.h"

#include "common/check.h"

namespace mdw {

IndexSet::IndexSet(const StarSchema& schema, const FactColumns& facts)
    : schema_(schema) {
  MDW_CHECK(static_cast<int>(facts.columns.size()) == schema.num_dimensions(),
            "one foreign-key column per dimension required");
  simple_.resize(static_cast<std::size_t>(schema.num_dimensions()));
  encoded_.resize(static_cast<std::size_t>(schema.num_dimensions()));
  for (DimId dim = 0; dim < schema.num_dimensions(); ++dim) {
    const auto& d = schema.dimension(dim);
    const auto& column = facts.columns[static_cast<std::size_t>(dim)];
    if (d.index_kind() == IndexKind::kEncoded) {
      encoded_[static_cast<std::size_t>(dim)] =
          std::make_unique<EncodedBitmapIndex>(d.hierarchy(), column);
    } else {
      simple_[static_cast<std::size_t>(dim)] =
          std::make_unique<SimpleBitmapIndex>(d.hierarchy(), column);
    }
  }
}

BitVector IndexSet::Select(DimId dim, Depth depth, std::int64_t value) const {
  const auto& d = schema_.dimension(dim);
  if (d.index_kind() == IndexKind::kEncoded) {
    return encoded_[static_cast<std::size_t>(dim)]->Select(depth, value);
  }
  return simple_[static_cast<std::size_t>(dim)]->Select(depth, value);
}

BitVector IndexSet::SelectWithinFragment(DimId dim, Depth depth,
                                         std::int64_t value,
                                         Depth fragment_depth) const {
  const auto& d = schema_.dimension(dim);
  if (d.index_kind() == IndexKind::kEncoded) {
    const int skip = d.hierarchy().PrefixBits(fragment_depth);
    return encoded_[static_cast<std::size_t>(dim)]->SelectWithinPrefix(
        depth, value, skip);
  }
  return simple_[static_cast<std::size_t>(dim)]->Select(depth, value);
}

BitVector IndexSet::SelectSlice(DimId dim, Depth depth, std::int64_t value,
                                std::int64_t begin, std::int64_t end) const {
  const auto& d = schema_.dimension(dim);
  if (d.index_kind() == IndexKind::kEncoded) {
    return encoded_[static_cast<std::size_t>(dim)]->SelectWithinPrefixSlice(
        depth, value, /*skip_bits=*/0, begin, end);
  }
  return simple_[static_cast<std::size_t>(dim)]->SelectSlice(depth, value,
                                                             begin, end);
}

BitVector IndexSet::SelectWithinFragmentSlice(DimId dim, Depth depth,
                                              std::int64_t value,
                                              Depth fragment_depth,
                                              std::int64_t begin,
                                              std::int64_t end) const {
  const auto& d = schema_.dimension(dim);
  if (d.index_kind() == IndexKind::kEncoded) {
    const int skip = d.hierarchy().PrefixBits(fragment_depth);
    return encoded_[static_cast<std::size_t>(dim)]->SelectWithinPrefixSlice(
        depth, value, skip, begin, end);
  }
  return simple_[static_cast<std::size_t>(dim)]->SelectSlice(depth, value,
                                                             begin, end);
}

int IndexSet::TotalBitmapCount() const {
  int total = 0;
  for (DimId dim = 0; dim < schema_.num_dimensions(); ++dim) {
    if (encoded_[static_cast<std::size_t>(dim)] != nullptr) {
      total += encoded_[static_cast<std::size_t>(dim)]->bitmap_count();
    } else {
      total += simple_[static_cast<std::size_t>(dim)]->bitmap_count();
    }
  }
  return total;
}

const SimpleBitmapIndex* IndexSet::simple_index(DimId dim) const {
  return simple_[static_cast<std::size_t>(dim)].get();
}

const EncodedBitmapIndex* IndexSet::encoded_index(DimId dim) const {
  return encoded_[static_cast<std::size_t>(dim)].get();
}

}  // namespace mdw
