#ifndef MDW_BITMAP_INDEX_SET_H_
#define MDW_BITMAP_INDEX_SET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bitmap/encoded_bitmap_index.h"
#include "bitmap/simple_bitmap_index.h"
#include "schema/star_schema.h"

namespace mdw {

/// The fact table's foreign-key columns: `columns[dim][row]` is the leaf
/// value of dimension `dim` referenced by fact row `row`. This is the
/// materialised representation used by the functional (in-memory) path on
/// scaled-down schemas.
struct FactColumns {
  std::vector<std::vector<std::int64_t>> columns;

  std::int64_t row_count() const {
    return columns.empty() ? 0
                           : static_cast<std::int64_t>(columns[0].size());
  }
};

/// All bitmap join indices of a star schema: one simple or encoded index
/// per dimension, following the dimension's IndexKind. This is the
/// functional counterpart of the index configuration the paper assumes
/// (encoded on PRODUCT/CUSTOMER, simple on TIME/CHANNEL; 76 bitmaps total
/// at APB-1 scale).
class IndexSet {
 public:
  IndexSet(const StarSchema& schema, const FactColumns& facts);

  /// Rows matching value@depth on dimension `dim` (reads the index).
  BitVector Select(DimId dim, Depth depth, std::int64_t value) const;

  /// Rows matching value@depth when processing is already confined to rows
  /// sharing the dimension's prefix down to `fragment_depth` (only
  /// meaningful for encoded indices; for simple indices this is a plain
  /// Select).
  BitVector SelectWithinFragment(DimId dim, Depth depth, std::int64_t value,
                                 Depth fragment_depth) const;

  /// Range-restricted Select: the selection's bits over rows [begin, end)
  /// only, as a vector of size end-begin (bit i = row begin+i). This is
  /// how fragment-confined execution evaluates predicates per fragment
  /// row range instead of over full-width bitmaps.
  BitVector SelectSlice(DimId dim, Depth depth, std::int64_t value,
                        std::int64_t begin, std::int64_t end) const;

  /// Range-restricted SelectWithinFragment (same row-range semantics).
  BitVector SelectWithinFragmentSlice(DimId dim, Depth depth,
                                      std::int64_t value, Depth fragment_depth,
                                      std::int64_t begin,
                                      std::int64_t end) const;

  /// Total bitmaps across all indices (76 for paper APB-1).
  int TotalBitmapCount() const;

  const SimpleBitmapIndex* simple_index(DimId dim) const;
  const EncodedBitmapIndex* encoded_index(DimId dim) const;

 private:
  const StarSchema& schema_;
  std::vector<std::unique_ptr<SimpleBitmapIndex>> simple_;
  std::vector<std::unique_ptr<EncodedBitmapIndex>> encoded_;
};

}  // namespace mdw

#endif  // MDW_BITMAP_INDEX_SET_H_
