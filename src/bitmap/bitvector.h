#ifndef MDW_BITMAP_BITVECTOR_H_
#define MDW_BITMAP_BITVECTOR_H_

#include <cstdint>
#include <vector>

namespace mdw {

/// A packed, fixed-length vector of bits with the Boolean operations the
/// star-query processor needs (AND, OR, NOT, AND-NOT), population count and
/// set-bit iteration. One BitVector is one bitmap (or one bitmap fragment)
/// of a bitmap join index: bit r corresponds to fact row r.
class BitVector {
 public:
  BitVector() = default;
  /// All-zero vector of `size_bits` bits.
  explicit BitVector(std::int64_t size_bits);

  std::int64_t size() const { return size_bits_; }
  /// Storage footprint in bytes (whole words).
  std::int64_t SizeBytes() const {
    return static_cast<std::int64_t>(words_.size()) * 8;
  }

  void Set(std::int64_t bit);
  void Clear(std::int64_t bit);
  bool Get(std::int64_t bit) const;

  /// Sets every bit (used to seed an AND-reduction).
  void SetAll();
  /// Clears every bit.
  void ClearAll();

  /// In-place Boolean operations; operands must have equal size.
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  /// this &= ~other
  BitVector& AndNot(const BitVector& other);
  /// Flips every bit (trailing bits beyond size stay zero).
  void FlipAll();

  /// ---- Range-restricted operations ----
  /// These let fragment-confined execution evaluate bitmap filters over
  /// one fragment's row range only, instead of over full-width vectors
  /// (O(range) rather than O(table)). `offset` addresses bits of `other`:
  /// bit i of *this is combined with bit offset+i of other.

  /// Copy of bits [begin, end) as a new vector of size end-begin.
  BitVector Slice(std::int64_t begin, std::int64_t end) const;
  /// this &= other[offset .. offset+size())
  BitVector& AndSlice(const BitVector& other, std::int64_t offset);
  /// this &= ~other[offset .. offset+size())
  BitVector& AndNotSlice(const BitVector& other, std::int64_t offset);

  /// Number of set bits.
  std::int64_t Count() const;
  /// True iff no bit is set.
  bool None() const;

  /// Index of the first set bit at or after `from`, or -1.
  std::int64_t NextSetBit(std::int64_t from) const;

  /// Invokes `fn(row)` for every set bit in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int tz = __builtin_ctzll(word);
        fn(static_cast<std::int64_t>(w) * 64 + tz);
        word &= word - 1;
      }
    }
  }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.size_bits_ == b.size_bits_ && a.words_ == b.words_;
  }

 private:
  void MaskTail();
  /// 64 bits of `words` starting at bit offset `bit` (reads at most two
  /// adjacent words; bits past `size_bits` read as zero).
  std::uint64_t WordAt(std::int64_t bit) const;

  std::int64_t size_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Binary Boolean helpers (by-value result).
BitVector operator&(BitVector a, const BitVector& b);
BitVector operator|(BitVector a, const BitVector& b);

}  // namespace mdw

#endif  // MDW_BITMAP_BITVECTOR_H_
