#include "bitmap/encoded_bitmap_index.h"

#include "common/check.h"

namespace mdw {

EncodedBitmapIndex::EncodedBitmapIndex(
    const Hierarchy& hierarchy, const std::vector<std::int64_t>& fk_column)
    : hierarchy_(hierarchy),
      row_count_(static_cast<std::int64_t>(fk_column.size())),
      bitmap_count_(hierarchy.TotalBits()) {
  slices_.reserve(static_cast<std::size_t>(bitmap_count_));
  for (int b = 0; b < bitmap_count_; ++b) slices_.emplace_back(row_count_);
  for (std::int64_t row = 0; row < row_count_; ++row) {
    const std::uint64_t pattern =
        hierarchy.EncodeLeaf(fk_column[static_cast<std::size_t>(row)]);
    for (int b = 0; b < bitmap_count_; ++b) {
      // Bit position b counts from the most significant end.
      if ((pattern >> (bitmap_count_ - 1 - b)) & 1) {
        slices_[static_cast<std::size_t>(b)].Set(row);
      }
    }
  }
}

const BitVector& EncodedBitmapIndex::Bitmap(int bit) const {
  MDW_CHECK(bit >= 0 && bit < bitmap_count_, "bit position out of range");
  return slices_[static_cast<std::size_t>(bit)];
}

std::uint64_t EncodedBitmapIndex::PrefixPattern(Depth depth,
                                                std::int64_t value) const {
  MDW_CHECK(value >= 0 && value < hierarchy_.Cardinality(depth),
            "value out of range");
  // The prefix of an element at depth d equals the leaf encoding of any
  // descendant leaf, truncated to PrefixBits(d). Use the first leaf.
  const std::int64_t first_leaf = hierarchy_.LeafRange(value, depth).first;
  const int drop = hierarchy_.TotalBits() - hierarchy_.PrefixBits(depth);
  return hierarchy_.EncodeLeaf(first_leaf) >> drop;
}

BitVector EncodedBitmapIndex::Select(Depth depth, std::int64_t value) const {
  return SelectWithinPrefix(depth, value, /*skip_bits=*/0);
}

BitVector EncodedBitmapIndex::SelectWithinPrefix(Depth depth,
                                                 std::int64_t value,
                                                 int skip_bits) const {
  const int prefix_bits = hierarchy_.PrefixBits(depth);
  MDW_CHECK(skip_bits >= 0 && skip_bits <= prefix_bits,
            "skip_bits must not exceed the selection's prefix");
  const std::uint64_t pattern = PrefixPattern(depth, value);
  BitVector result(row_count_);
  result.SetAll();
  for (int b = skip_bits; b < prefix_bits; ++b) {
    const bool bit_set = (pattern >> (prefix_bits - 1 - b)) & 1;
    if (bit_set) {
      result &= slices_[static_cast<std::size_t>(b)];
    } else {
      result.AndNot(slices_[static_cast<std::size_t>(b)]);
    }
  }
  return result;
}

BitVector EncodedBitmapIndex::SelectWithinPrefixSlice(Depth depth,
                                                      std::int64_t value,
                                                      int skip_bits,
                                                      std::int64_t begin,
                                                      std::int64_t end) const {
  const int prefix_bits = hierarchy_.PrefixBits(depth);
  MDW_CHECK(skip_bits >= 0 && skip_bits <= prefix_bits,
            "skip_bits must not exceed the selection's prefix");
  MDW_CHECK(begin >= 0 && begin <= end && end <= row_count_,
            "row range out of bounds");
  const std::uint64_t pattern = PrefixPattern(depth, value);
  BitVector result(end - begin);
  result.SetAll();
  for (int b = skip_bits; b < prefix_bits; ++b) {
    const bool bit_set = (pattern >> (prefix_bits - 1 - b)) & 1;
    const auto& slice = slices_[static_cast<std::size_t>(b)];
    if (bit_set) {
      result.AndSlice(slice, begin);
    } else {
      result.AndNotSlice(slice, begin);
    }
  }
  return result;
}

int EncodedBitmapIndex::BitmapsRead(Depth depth, int skip_bits) const {
  const int prefix_bits = hierarchy_.PrefixBits(depth);
  MDW_CHECK(skip_bits >= 0 && skip_bits <= prefix_bits,
            "skip_bits must not exceed the selection's prefix");
  return prefix_bits - skip_bits;
}

}  // namespace mdw
