#include "bitmap/simple_bitmap_index.h"

#include "common/check.h"

namespace mdw {

SimpleBitmapIndex::SimpleBitmapIndex(
    const Hierarchy& hierarchy, const std::vector<std::int64_t>& fk_column)
    : hierarchy_(hierarchy),
      row_count_(static_cast<std::int64_t>(fk_column.size())),
      bitmap_count_(0) {
  bitmaps_.resize(static_cast<std::size_t>(hierarchy.num_levels()));
  for (Depth d = 0; d < hierarchy.num_levels(); ++d) {
    auto& level_maps = bitmaps_[static_cast<std::size_t>(d)];
    level_maps.reserve(static_cast<std::size_t>(hierarchy.Cardinality(d)));
    for (std::int64_t v = 0; v < hierarchy.Cardinality(d); ++v) {
      level_maps.emplace_back(row_count_);
    }
    bitmap_count_ += static_cast<int>(hierarchy.Cardinality(d));
  }
  for (std::int64_t row = 0; row < row_count_; ++row) {
    const std::int64_t leaf = fk_column[static_cast<std::size_t>(row)];
    for (Depth d = 0; d < hierarchy.num_levels(); ++d) {
      const std::int64_t value = hierarchy.AncestorOfLeaf(leaf, d);
      bitmaps_[static_cast<std::size_t>(d)][static_cast<std::size_t>(value)]
          .Set(row);
    }
  }
}

const BitVector& SimpleBitmapIndex::Bitmap(Depth depth,
                                           std::int64_t value) const {
  MDW_CHECK(depth >= 0 && depth < hierarchy_.num_levels(),
            "depth out of range");
  MDW_CHECK(value >= 0 && value < hierarchy_.Cardinality(depth),
            "value out of range");
  return bitmaps_[static_cast<std::size_t>(depth)]
                 [static_cast<std::size_t>(value)];
}

BitVector SimpleBitmapIndex::Select(Depth depth, std::int64_t value) const {
  return Bitmap(depth, value);
}

BitVector SimpleBitmapIndex::SelectSlice(Depth depth, std::int64_t value,
                                         std::int64_t begin,
                                         std::int64_t end) const {
  return Bitmap(depth, value).Slice(begin, end);
}

}  // namespace mdw
