#ifndef MDW_BITMAP_ENCODED_BITMAP_INDEX_H_
#define MDW_BITMAP_ENCODED_BITMAP_INDEX_H_

#include <cstdint>
#include <vector>

#include "bitmap/bitvector.h"
#include "schema/hierarchy.h"

namespace mdw {

/// An encoded bitmap join index with *hierarchical* encoding (paper
/// Sec. 3.2 and Table 1, after Wu/Buchmann): each fact row's foreign key is
/// encoded into Hierarchy::TotalBits() bits, one bit-slice bitmap per bit
/// position. The encoding concatenates per-level child indices root-first,
/// so all rows below one element at depth d share the same PrefixBits(d)
/// prefix. Selecting an element at depth d therefore evaluates only the
/// prefix bitmaps (10 of 15 for a PRODUCT GROUP); selecting a leaf within a
/// known depth-f fragment evaluates only the suffix bits below f.
///
/// Bit position 0 is the most significant bit of the pattern (the first
/// "d" of "dddllfffggcoooo" in Table 1).
class EncodedBitmapIndex {
 public:
  EncodedBitmapIndex(const Hierarchy& hierarchy,
                     const std::vector<std::int64_t>& fk_column);

  /// Number of bit-slice bitmaps (15 for APB-1 PRODUCT, 12 for CUSTOMER).
  int bitmap_count() const { return bitmap_count_; }
  std::int64_t row_count() const { return row_count_; }

  /// The bit-slice bitmap for bit position `bit` (0 = most significant).
  const BitVector& Bitmap(int bit) const;

  /// The hierarchical bit pattern of `value` at depth `depth`, left-aligned
  /// to PrefixBits(depth) bits.
  std::uint64_t PrefixPattern(Depth depth, std::int64_t value) const;

  /// Rows whose key lies below `value` at depth `depth`: evaluates the
  /// PrefixBits(depth) prefix bitmaps, AND-ing each bitmap or its
  /// complement according to the pattern.
  BitVector Select(Depth depth, std::int64_t value) const;

  /// Like Select, but skips the first `skip_bits` bit positions. Used when
  /// a fragmentation already confines processing to rows that share the
  /// prefix (the fragmentation attribute's pattern): only the bits between
  /// the fragmentation level and the query level must be evaluated.
  /// Bits [skip_bits, PrefixBits(depth)) are read.
  BitVector SelectWithinPrefix(Depth depth, std::int64_t value,
                               int skip_bits) const;

  /// Number of bitmaps SelectWithinPrefix touches.
  int BitmapsRead(Depth depth, int skip_bits) const;

  /// Range-restricted SelectWithinPrefix: evaluates the same bit-slice
  /// bitmaps but only over rows [begin, end), returning a vector of size
  /// end-begin whose bit i corresponds to row begin+i. Fragment-confined
  /// execution uses this to pay O(fragment) instead of O(table) per
  /// predicate.
  BitVector SelectWithinPrefixSlice(Depth depth, std::int64_t value,
                                    int skip_bits, std::int64_t begin,
                                    std::int64_t end) const;

 private:
  const Hierarchy& hierarchy_;
  std::int64_t row_count_;
  int bitmap_count_;
  std::vector<BitVector> slices_;  ///< slices_[bit], bit 0 = MSB
};

}  // namespace mdw

#endif  // MDW_BITMAP_ENCODED_BITMAP_INDEX_H_
