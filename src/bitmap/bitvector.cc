#include "bitmap/bitvector.h"

#include "common/check.h"
#include "common/math_util.h"

namespace mdw {

BitVector::BitVector(std::int64_t size_bits)
    : size_bits_(size_bits),
      words_(static_cast<std::size_t>(CeilDiv(size_bits, 64)), 0) {
  MDW_CHECK(size_bits >= 0, "bit vector size must be non-negative");
}

void BitVector::Set(std::int64_t bit) {
  MDW_CHECK(bit >= 0 && bit < size_bits_, "bit index out of range");
  words_[static_cast<std::size_t>(bit / 64)] |= 1ULL << (bit % 64);
}

void BitVector::Clear(std::int64_t bit) {
  MDW_CHECK(bit >= 0 && bit < size_bits_, "bit index out of range");
  words_[static_cast<std::size_t>(bit / 64)] &= ~(1ULL << (bit % 64));
}

bool BitVector::Get(std::int64_t bit) const {
  MDW_CHECK(bit >= 0 && bit < size_bits_, "bit index out of range");
  return (words_[static_cast<std::size_t>(bit / 64)] >> (bit % 64)) & 1;
}

void BitVector::SetAll() {
  for (auto& w : words_) w = ~0ULL;
  MaskTail();
}

void BitVector::ClearAll() {
  for (auto& w : words_) w = 0;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  MDW_CHECK(size_bits_ == other.size_bits_, "size mismatch in AND");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  MDW_CHECK(size_bits_ == other.size_bits_, "size mismatch in OR");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVector& BitVector::AndNot(const BitVector& other) {
  MDW_CHECK(size_bits_ == other.size_bits_, "size mismatch in AND-NOT");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
  return *this;
}

void BitVector::FlipAll() {
  for (auto& w : words_) w = ~w;
  MaskTail();
}

std::int64_t BitVector::Count() const {
  std::int64_t count = 0;
  for (const auto w : words_) count += __builtin_popcountll(w);
  return count;
}

bool BitVector::None() const {
  for (const auto w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::int64_t BitVector::NextSetBit(std::int64_t from) const {
  if (from >= size_bits_) return -1;
  if (from < 0) from = 0;
  auto w = static_cast<std::size_t>(from / 64);
  std::uint64_t word = words_[w] & (~0ULL << (from % 64));
  while (true) {
    if (word != 0) {
      return static_cast<std::int64_t>(w) * 64 + __builtin_ctzll(word);
    }
    if (++w == words_.size()) return -1;
    word = words_[w];
  }
}

std::uint64_t BitVector::WordAt(std::int64_t bit) const {
  const auto w = static_cast<std::size_t>(bit / 64);
  const int shift = static_cast<int>(bit % 64);
  if (w >= words_.size()) return 0;
  std::uint64_t word = words_[w] >> shift;
  if (shift != 0 && w + 1 < words_.size()) {
    word |= words_[w + 1] << (64 - shift);
  }
  return word;
}

BitVector BitVector::Slice(std::int64_t begin, std::int64_t end) const {
  MDW_CHECK(begin >= 0 && begin <= end && end <= size_bits_,
            "slice bounds out of range");
  BitVector result(end - begin);
  for (std::size_t i = 0; i < result.words_.size(); ++i) {
    result.words_[i] = WordAt(begin + static_cast<std::int64_t>(i) * 64);
  }
  result.MaskTail();
  return result;
}

BitVector& BitVector::AndSlice(const BitVector& other, std::int64_t offset) {
  MDW_CHECK(offset >= 0 && offset + size_bits_ <= other.size_bits_,
            "slice window out of range");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.WordAt(offset + static_cast<std::int64_t>(i) * 64);
  }
  return *this;
}

BitVector& BitVector::AndNotSlice(const BitVector& other, std::int64_t offset) {
  MDW_CHECK(offset >= 0 && offset + size_bits_ <= other.size_bits_,
            "slice window out of range");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.WordAt(offset + static_cast<std::int64_t>(i) * 64);
  }
  MaskTail();
  return *this;
}

void BitVector::MaskTail() {
  const int tail = static_cast<int>(size_bits_ % 64);
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

BitVector operator&(BitVector a, const BitVector& b) {
  a &= b;
  return a;
}

BitVector operator|(BitVector a, const BitVector& b) {
  a |= b;
  return a;
}

}  // namespace mdw
