#ifndef MDW_BITMAP_COMPRESSED_BITVECTOR_H_
#define MDW_BITMAP_COMPRESSED_BITVECTOR_H_

#include <cstdint>
#include <vector>

#include "bitmap/bitvector.h"

namespace mdw {

/// A Word-Aligned-Hybrid (WAH) compressed bitmap. The paper notes that
/// the substantial storage overhead of bitmap indices "may be reduced by
/// compressing the bitmaps" (Sec. 3.2); WAH is the classic scheme used by
/// warehouse systems for exactly this.
///
/// Encoding (31-bit payload per 32-bit word):
///  - literal word: MSB 0, 31 payload bits verbatim;
///  - fill word: MSB 1, bit 30 = fill value, bits 0..29 = run length in
///    31-bit groups.
///
/// Sparse bitmaps (one bit per attribute value over N rows) compress by
/// orders of magnitude; dense or random bitmaps stay near 32/31 of their
/// raw size. CompressedBitVector is immutable: build it from a plain
/// BitVector, combine with AND/OR directly on the compressed form, and
/// decompress when random access is needed.
class CompressedBitVector {
 public:
  CompressedBitVector() = default;
  /// Compresses `bits`.
  explicit CompressedBitVector(const BitVector& bits);

  std::int64_t size() const { return size_bits_; }
  /// Compressed footprint in bytes.
  std::int64_t SizeBytes() const {
    return static_cast<std::int64_t>(words_.size()) * 4;
  }
  /// Uncompressed footprint of the same bitmap in bytes (32-bit words).
  std::int64_t UncompressedBytes() const;
  /// UncompressedBytes() / SizeBytes().
  double CompressionRatio() const;

  /// Number of set bits (streams over the compressed form).
  std::int64_t Count() const;

  /// Restores the plain bitmap.
  BitVector Decompress() const;

  /// Compressed-form Boolean operations (operands must be equal-sized).
  CompressedBitVector And(const CompressedBitVector& other) const;
  CompressedBitVector Or(const CompressedBitVector& other) const;

  friend bool operator==(const CompressedBitVector& a,
                         const CompressedBitVector& b) {
    return a.size_bits_ == b.size_bits_ && a.words_ == b.words_;
  }

  /// Number of 32-bit code words (fills + literals), for inspection.
  std::int64_t word_count() const {
    return static_cast<std::int64_t>(words_.size());
  }

 private:
  /// Streams the logical sequence of 31-bit groups of a compressed
  /// bitmap without materialising it.
  class GroupReader {
   public:
    explicit GroupReader(const std::vector<std::uint32_t>& words)
        : words_(words) {}
    /// Returns the next 31-bit group (low 31 bits), or false at the end.
    bool Next(std::uint32_t* group);

   private:
    const std::vector<std::uint32_t>& words_;
    std::size_t index_ = 0;
    std::uint32_t remaining_fill_ = 0;
    std::uint32_t fill_group_ = 0;
  };

  /// Appends a 31-bit group, merging fills.
  void AppendGroup(std::uint32_t group);

  template <typename Op>
  CompressedBitVector Combine(const CompressedBitVector& other, Op op) const;

  std::int64_t size_bits_ = 0;
  std::vector<std::uint32_t> words_;
};

}  // namespace mdw

#endif  // MDW_BITMAP_COMPRESSED_BITVECTOR_H_
