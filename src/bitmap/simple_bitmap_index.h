#ifndef MDW_BITMAP_SIMPLE_BITMAP_INDEX_H_
#define MDW_BITMAP_SIMPLE_BITMAP_INDEX_H_

#include <cstdint>
#include <vector>

#include "bitmap/bitvector.h"
#include "schema/hierarchy.h"

namespace mdw {

/// A standard (simple) bitmap join index on one dimension of the fact
/// table: for every hierarchy level and every value of that level, one
/// bitmap marking the matching fact rows (paper Sec. 3.2). Used for the
/// low-cardinality dimensions TIME and CHANNEL (24+8+2 = 34 resp. 15
/// bitmaps in the paper's configuration).
class SimpleBitmapIndex {
 public:
  /// Builds the index from the fact table's foreign-key column for this
  /// dimension; `fk_column[r]` is the *leaf* value row r refers to.
  SimpleBitmapIndex(const Hierarchy& hierarchy,
                    const std::vector<std::int64_t>& fk_column);

  /// The bitmap of value `value` at depth `depth`.
  const BitVector& Bitmap(Depth depth, std::int64_t value) const;

  /// Rows matching an exact-match predicate value@depth. For a simple
  /// index this is just a copy of the stored bitmap (one bitmap read).
  BitVector Select(Depth depth, std::int64_t value) const;

  /// Range-restricted Select: the stored bitmap's bits [begin, end) as a
  /// vector of size end-begin (bit i = row begin+i).
  BitVector SelectSlice(Depth depth, std::int64_t value, std::int64_t begin,
                        std::int64_t end) const;

  /// Total number of bitmaps materialised (sum of level cardinalities).
  int bitmap_count() const { return bitmap_count_; }

  std::int64_t row_count() const { return row_count_; }

 private:
  const Hierarchy& hierarchy_;
  std::int64_t row_count_;
  int bitmap_count_;
  /// bitmaps_[depth][value]
  std::vector<std::vector<BitVector>> bitmaps_;
};

}  // namespace mdw

#endif  // MDW_BITMAP_SIMPLE_BITMAP_INDEX_H_
