#include "index/btree.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace mdw {

BPlusTree::BPlusTree() : root_(std::make_unique<Node>()) {}

const BPlusTree::Node* BPlusTree::FindLeaf(std::int64_t key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    const auto it =
        std::upper_bound(node->keys.begin(), node->keys.end(), key);
    const auto child = static_cast<std::size_t>(it - node->keys.begin());
    node = node->children[child].get();
  }
  return node;
}

const std::int64_t* BPlusTree::Lookup(std::int64_t key) const {
  const Node* leaf = FindLeaf(key);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return nullptr;
  return &leaf->values[static_cast<std::size_t>(it - leaf->keys.begin())];
}

std::unique_ptr<BPlusTree::Node> BPlusTree::InsertInto(
    Node* node, std::int64_t key, std::int64_t value,
    std::int64_t* separator) {
  if (node->leaf) {
    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), key);
    const auto pos = static_cast<std::size_t>(it - node->keys.begin());
    if (it != node->keys.end() && *it == key) {
      node->values[pos] = value;  // upsert
      return nullptr;
    }
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + static_cast<std::ptrdiff_t>(pos),
                        value);
    ++size_;
    if (static_cast<int>(node->keys.size()) <= kMaxKeys) return nullptr;
    // Split the leaf in half; the right half starts at `separator`.
    auto right = std::make_unique<Node>();
    const std::size_t half = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + static_cast<std::ptrdiff_t>(half),
                       node->keys.end());
    right->values.assign(
        node->values.begin() + static_cast<std::ptrdiff_t>(half),
        node->values.end());
    node->keys.resize(half);
    node->values.resize(half);
    right->next_leaf = node->next_leaf;
    node->next_leaf = right.get();
    *separator = right->keys.front();
    return right;
  }

  const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
  const auto child = static_cast<std::size_t>(it - node->keys.begin());
  std::int64_t child_separator = 0;
  auto new_child =
      InsertInto(node->children[child].get(), key, value, &child_separator);
  if (new_child == nullptr) return nullptr;
  node->keys.insert(node->keys.begin() + static_cast<std::ptrdiff_t>(child),
                    child_separator);
  node->children.insert(
      node->children.begin() + static_cast<std::ptrdiff_t>(child) + 1,
      std::move(new_child));
  if (static_cast<int>(node->keys.size()) <= kMaxKeys) return nullptr;
  // Split the inner node; the middle key moves up.
  auto right = std::make_unique<Node>();
  right->leaf = false;
  const std::size_t mid = node->keys.size() / 2;
  *separator = node->keys[mid];
  right->keys.assign(node->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                     node->keys.end());
  for (std::size_t i = mid + 1; i < node->children.size(); ++i) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  return right;
}

void BPlusTree::Insert(std::int64_t key, std::int64_t value) {
  std::int64_t separator = 0;
  auto right = InsertInto(root_.get(), key, value, &separator);
  if (right == nullptr) return;
  auto new_root = std::make_unique<Node>();
  new_root->leaf = false;
  new_root->keys.push_back(separator);
  new_root->children.push_back(std::move(root_));
  new_root->children.push_back(std::move(right));
  root_ = std::move(new_root);
  ++height_;
}

void BPlusTree::Scan(
    std::int64_t lo, std::int64_t hi,
    const std::function<void(std::int64_t, std::int64_t)>& fn) const {
  if (lo > hi) return;
  const Node* leaf = FindLeaf(lo);
  while (leaf != nullptr) {
    for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] < lo) continue;
      if (leaf->keys[i] > hi) return;
      fn(leaf->keys[i], leaf->values[i]);
    }
    leaf = leaf->next_leaf;
  }
}

int BPlusTree::LeafDepth() const {
  int depth = 0;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++depth;
  }
  return depth;
}

void BPlusTree::CheckNode(const Node* node, int depth, std::int64_t lo,
                          std::int64_t hi, int leaf_depth) const {
  MDW_CHECK(std::is_sorted(node->keys.begin(), node->keys.end()),
            "keys must be sorted");
  for (const auto key : node->keys) {
    MDW_CHECK(key >= lo && key <= hi, "key outside its subtree bounds");
  }
  if (node != root_.get()) {
    MDW_CHECK(static_cast<int>(node->keys.size()) >= kMaxKeys / 2 - 1,
              "underfull node");
  }
  MDW_CHECK(static_cast<int>(node->keys.size()) <= kMaxKeys,
            "overfull node");
  if (node->leaf) {
    MDW_CHECK(depth == leaf_depth, "leaves must share one depth");
    MDW_CHECK(node->keys.size() == node->values.size(),
              "leaf key/value mismatch");
    return;
  }
  MDW_CHECK(node->children.size() == node->keys.size() + 1,
            "inner fanout mismatch");
  for (std::size_t i = 0; i < node->children.size(); ++i) {
    const std::int64_t child_lo =
        i == 0 ? lo : node->keys[i - 1];
    const std::int64_t child_hi =
        i == node->keys.size() ? hi : node->keys[i] - 1;
    CheckNode(node->children[i].get(), depth + 1, child_lo, child_hi,
              leaf_depth);
  }
}

void BPlusTree::CheckInvariants() const {
  CheckNode(root_.get(), 0, std::numeric_limits<std::int64_t>::min(),
            std::numeric_limits<std::int64_t>::max(), LeafDepth());
  // The leaf chain must enumerate exactly size() entries in order.
  const Node* leaf = root_.get();
  while (!leaf->leaf) leaf = leaf->children.front().get();
  std::int64_t count = 0;
  std::int64_t previous = std::numeric_limits<std::int64_t>::min();
  while (leaf != nullptr) {
    for (const auto key : leaf->keys) {
      MDW_CHECK(key > previous, "leaf chain out of order");
      previous = key;
      ++count;
    }
    leaf = leaf->next_leaf;
  }
  MDW_CHECK(count == size_, "leaf chain does not match size()");
}

}  // namespace mdw
