#ifndef MDW_INDEX_BTREE_H_
#define MDW_INDEX_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace mdw {

/// An in-memory B+-tree mapping int64 keys to int64 values — the
/// dimension-table index of the paper's setup ("the dimension tables have
/// B*-tree indices", Sec. 5). Dimension tables in a warehouse are
/// load-then-read, so the tree supports upsert, point lookup and ordered
/// range scans; deletion is deliberately out of scope.
///
/// Leaves are chained for efficient scans. All nodes hold at most
/// kMaxKeys keys and (apart from the root) at least kMaxKeys/2.
class BPlusTree {
 public:
  static constexpr int kMaxKeys = 64;

  BPlusTree();
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts or overwrites `key`.
  void Insert(std::int64_t key, std::int64_t value);

  /// Pointer to the value of `key`, or nullptr. Invalidated by Insert.
  const std::int64_t* Lookup(std::int64_t key) const;

  /// Invokes `fn(key, value)` for every entry with lo <= key <= hi, in
  /// ascending key order.
  void Scan(std::int64_t lo, std::int64_t hi,
            const std::function<void(std::int64_t, std::int64_t)>& fn) const;

  std::int64_t size() const { return size_; }
  int height() const { return height_; }

  /// Aborts if any structural invariant is violated (ordering, fanout
  /// bounds, uniform leaf depth, leaf chaining). For tests.
  void CheckInvariants() const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<std::int64_t> keys;
    // Leaf payload.
    std::vector<std::int64_t> values;
    Node* next_leaf = nullptr;
    // Inner node children: children[i] covers keys < keys[i] (and
    // children.back() the rest); children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
  };

  /// Inserts into the subtree under `node`. If the node splits, returns
  /// the new right sibling and sets `*separator` to the smallest key of
  /// the right subtree.
  std::unique_ptr<Node> InsertInto(Node* node, std::int64_t key,
                                   std::int64_t value,
                                   std::int64_t* separator);

  const Node* FindLeaf(std::int64_t key) const;
  void CheckNode(const Node* node, int depth, std::int64_t lo,
                 std::int64_t hi, int leaf_depth) const;
  int LeafDepth() const;

  std::unique_ptr<Node> root_;
  std::int64_t size_ = 0;
  int height_ = 1;
};

}  // namespace mdw

#endif  // MDW_INDEX_BTREE_H_
