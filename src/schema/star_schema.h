#ifndef MDW_SCHEMA_STAR_SCHEMA_H_
#define MDW_SCHEMA_STAR_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/dimension.h"

namespace mdw {

/// Index of a dimension within a StarSchema.
using DimId = int;

/// Physical layout constants of the modelled system (paper Table 4).
struct PhysicalParams {
  std::int64_t page_size_bytes = 4 * 1024;  ///< 4 KB pages
  std::int64_t fact_tuple_bytes = 20;       ///< paper Sec. 4.4: 20 B tuples

  /// Fact tuples that fit one page: floor(4096/20) = 204. This choice
  /// reproduces the paper's "about 200 tuples per page" and its Table 3.
  std::int64_t TuplesPerPage() const {
    return page_size_bytes / fact_tuple_bytes;
  }
};

/// A star schema: one fact table plus hierarchical dimensions. The fact
/// table cardinality follows APB-1: a density factor applied to the product
/// of the dimensions' leaf cardinalities.
class StarSchema {
 public:
  StarSchema(std::string fact_table_name, std::vector<Dimension> dimensions,
             double density, PhysicalParams physical = {});

  const std::string& fact_table_name() const { return fact_table_name_; }
  int num_dimensions() const { return static_cast<int>(dimensions_.size()); }
  const Dimension& dimension(DimId id) const;
  const std::vector<Dimension>& dimensions() const { return dimensions_; }
  double density() const { return density_; }
  const PhysicalParams& physical() const { return physical_; }

  /// DimId of the dimension named `name`, or -1.
  DimId DimensionIdOf(const std::string& name) const;

  /// Product of the leaf cardinalities (maximal number of fact rows).
  std::int64_t MaxFactCount() const;

  /// Actual fact table cardinality N = density * MaxFactCount().
  std::int64_t FactCount() const;

  /// Pages of the fact table: ceil(N / TuplesPerPage()).
  std::int64_t FactPages() const;

  /// Size of one (unfragmented) bitmap in bytes: one bit per fact row.
  std::int64_t BitmapBytes() const;

  /// Total bitmaps over all dimension indices without fragmentation-based
  /// elimination (76 for the APB-1 configuration of the paper).
  int TotalBitmapCount() const;

 private:
  std::string fact_table_name_;
  std::vector<Dimension> dimensions_;
  double density_;
  PhysicalParams physical_;
};

}  // namespace mdw

#endif  // MDW_SCHEMA_STAR_SCHEMA_H_
