#include "schema/hierarchy.h"

#include "common/check.h"
#include "common/math_util.h"

namespace mdw {

Hierarchy::Hierarchy(std::vector<HierarchyLevel> levels)
    : levels_(std::move(levels)) {
  MDW_CHECK(!levels_.empty(), "hierarchy needs at least one level");
  std::int64_t prev = 1;
  for (const auto& lvl : levels_) {
    MDW_CHECK(lvl.cardinality >= 1, "level cardinality must be positive");
    MDW_CHECK(lvl.cardinality % prev == 0,
              "balanced hierarchy requires cardinalities to divide");
    bits_.push_back(BitsFor(lvl.cardinality / prev));
    prev = lvl.cardinality;
  }
}

const HierarchyLevel& Hierarchy::level(Depth d) const {
  MDW_CHECK(d >= 0 && d < num_levels(), "depth out of range");
  return levels_[static_cast<std::size_t>(d)];
}

std::int64_t Hierarchy::Cardinality(Depth d) const {
  return level(d).cardinality;
}

std::int64_t Hierarchy::LeafCardinality() const {
  return levels_.back().cardinality;
}

std::int64_t Hierarchy::Fanout(Depth d) const {
  if (d == -1) return Cardinality(0);
  MDW_CHECK(d < num_levels() - 1, "leaf level has no children");
  return Cardinality(d + 1) / Cardinality(d);
}

std::int64_t Hierarchy::AncestorOfLeaf(std::int64_t leaf, Depth d) const {
  return Ancestor(leaf, leaf_depth(), d);
}

std::int64_t Hierarchy::Ancestor(std::int64_t value, Depth from,
                                 Depth to) const {
  MDW_CHECK(to <= from, "ancestor must be at smaller or equal depth");
  MDW_CHECK(value >= 0 && value < Cardinality(from),
            "value out of range for its level");
  return value / DescendantsPer(to, from);
}

std::pair<std::int64_t, std::int64_t> Hierarchy::LeafRange(std::int64_t value,
                                                           Depth d) const {
  const std::int64_t per = LeavesPer(d);
  return {value * per, value * per + per - 1};
}

std::int64_t Hierarchy::LeavesPer(Depth d) const {
  return DescendantsPer(d, leaf_depth());
}

std::int64_t Hierarchy::DescendantsPer(Depth from, Depth to) const {
  MDW_CHECK(from <= to, "descendants: from must be at most to");
  return Cardinality(to) / Cardinality(from);
}

int Hierarchy::BitsAt(Depth d) const {
  MDW_CHECK(d >= 0 && d < num_levels(), "depth out of range");
  return bits_[static_cast<std::size_t>(d)];
}

int Hierarchy::TotalBits() const { return PrefixBits(leaf_depth()); }

int Hierarchy::PrefixBits(Depth d) const {
  MDW_CHECK(d >= 0 && d < num_levels(), "depth out of range");
  int total = 0;
  for (Depth i = 0; i <= d; ++i) total += bits_[static_cast<std::size_t>(i)];
  return total;
}

std::uint64_t Hierarchy::EncodeLeaf(std::int64_t leaf) const {
  MDW_CHECK(leaf >= 0 && leaf < LeafCardinality(), "leaf out of range");
  std::uint64_t pattern = 0;
  for (Depth d = 0; d < num_levels(); ++d) {
    const std::int64_t ancestor = AncestorOfLeaf(leaf, d);
    const std::int64_t within_parent =
        d == 0 ? ancestor : ancestor % Fanout(d - 1);
    pattern = (pattern << bits_[static_cast<std::size_t>(d)]) |
              static_cast<std::uint64_t>(within_parent);
  }
  return pattern;
}

std::int64_t Hierarchy::DecodeLeaf(std::uint64_t pattern) const {
  std::int64_t value = 0;
  int shift = TotalBits();
  for (Depth d = 0; d < num_levels(); ++d) {
    const int b = bits_[static_cast<std::size_t>(d)];
    shift -= b;
    const auto field =
        static_cast<std::int64_t>((pattern >> shift) & ((1ULL << b) - 1));
    value = value * Fanout(d - 1) + field;
  }
  return value;
}

Depth Hierarchy::DepthOf(const std::string& name) const {
  for (Depth d = 0; d < num_levels(); ++d) {
    if (levels_[static_cast<std::size_t>(d)].name == name) return d;
  }
  return -1;
}

}  // namespace mdw
