#ifndef MDW_SCHEMA_DIMENSION_H_
#define MDW_SCHEMA_DIMENSION_H_

#include <string>
#include <vector>

#include "schema/hierarchy.h"

namespace mdw {

/// Kind of bitmap join index maintained on the fact table for a dimension
/// (paper Sec. 3.2): low-cardinality dimensions (TIME, CHANNEL) use simple
/// bitmap indices (one bitmap per value *per level*), high-cardinality
/// dimensions (PRODUCT, CUSTOMER) use one encoded bitmap index per
/// dimension with hierarchical encoding.
enum class IndexKind {
  kSimple,
  kEncoded,
};

/// A denormalised star-schema dimension: a name, a balanced hierarchy and
/// the bitmap index kind used for its foreign key on the fact table.
class Dimension {
 public:
  Dimension(std::string name, Hierarchy hierarchy, IndexKind index_kind);

  const std::string& name() const { return name_; }
  const Hierarchy& hierarchy() const { return hierarchy_; }
  IndexKind index_kind() const { return index_kind_; }

  /// Number of bitmaps the dimension's index materialises when no
  /// fragmentation-based elimination applies (paper Sec. 3.2):
  ///  - encoded: TotalBits() bitmaps (15 for PRODUCT, 12 for CUSTOMER);
  ///  - simple: sum of level cardinalities (34 for TIME, 15 for CHANNEL).
  int TotalBitmapCount() const;

  /// Bitmaps that must be read to locate all fact rows of one element at
  /// depth `d`:
  ///  - encoded: the PrefixBits(d) prefix bitmaps;
  ///  - simple: exactly 1 (the bitmap of the selected value).
  int BitmapsForSelection(Depth d) const;

  /// "dimension::level" label as the paper writes fragmentation attributes.
  std::string AttributeLabel(Depth d) const;

 private:
  std::string name_;
  Hierarchy hierarchy_;
  IndexKind index_kind_;
};

}  // namespace mdw

#endif  // MDW_SCHEMA_DIMENSION_H_
