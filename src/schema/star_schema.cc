#include "schema/star_schema.h"

#include "common/check.h"
#include "common/math_util.h"

namespace mdw {

StarSchema::StarSchema(std::string fact_table_name,
                       std::vector<Dimension> dimensions, double density,
                       PhysicalParams physical)
    : fact_table_name_(std::move(fact_table_name)),
      dimensions_(std::move(dimensions)),
      density_(density),
      physical_(physical) {
  MDW_CHECK(!dimensions_.empty(), "star schema needs at least one dimension");
  MDW_CHECK(density_ > 0.0 && density_ <= 1.0, "density must be in (0, 1]");
}

const Dimension& StarSchema::dimension(DimId id) const {
  MDW_CHECK(id >= 0 && id < num_dimensions(), "dimension id out of range");
  return dimensions_[static_cast<std::size_t>(id)];
}

DimId StarSchema::DimensionIdOf(const std::string& name) const {
  for (DimId id = 0; id < num_dimensions(); ++id) {
    if (dimensions_[static_cast<std::size_t>(id)].name() == name) return id;
  }
  return -1;
}

std::int64_t StarSchema::MaxFactCount() const {
  std::int64_t product = 1;
  for (const auto& dim : dimensions_) {
    product *= dim.hierarchy().LeafCardinality();
  }
  return product;
}

std::int64_t StarSchema::FactCount() const {
  return static_cast<std::int64_t>(density_ *
                                   static_cast<double>(MaxFactCount()));
}

std::int64_t StarSchema::FactPages() const {
  return CeilDiv(FactCount(), physical_.TuplesPerPage());
}

std::int64_t StarSchema::BitmapBytes() const {
  return CeilDiv(FactCount(), 8);
}

int StarSchema::TotalBitmapCount() const {
  int total = 0;
  for (const auto& dim : dimensions_) total += dim.TotalBitmapCount();
  return total;
}

}  // namespace mdw
