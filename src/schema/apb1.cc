#include "schema/apb1.h"

#include "common/check.h"

namespace mdw {

StarSchema MakeApb1Schema(const Apb1Params& params) {
  MDW_CHECK(params.channels >= 1, "need at least one channel");
  MDW_CHECK(params.months % 12 == 0, "months must cover whole years");

  const std::int64_t channels = params.channels;
  const std::int64_t codes = 960 * channels;
  const std::int64_t stores = 96 * channels;
  MDW_CHECK(stores % 10 == 0, "APB-1 assumes 10 stores per retailer");
  const std::int64_t retailers = stores / 10;
  const std::int64_t months = params.months;

  // Hierarchy ratios per APB-1 (paper Table 1): 8 divisions, 3 lines per
  // division, 5 families per line, 4 groups per family, 2 classes per
  // group, `channels` codes per class.
  Dimension product(
      "product",
      Hierarchy({{"division", 8},
                 {"line", 24},
                 {"family", 120},
                 {"group", 480},
                 {"class", 960},
                 {"code", codes}}),
      IndexKind::kEncoded);

  Dimension customer(
      "customer",
      Hierarchy({{"retailer", retailers}, {"store", stores}}),
      IndexKind::kEncoded);

  Dimension channel("channel", Hierarchy({{"channel", channels}}),
                    IndexKind::kSimple);

  Dimension time(
      "time",
      Hierarchy(
          {{"year", months / 12}, {"quarter", months / 3}, {"month", months}}),
      IndexKind::kSimple);

  return StarSchema("sales",
                    {std::move(product), std::move(customer),
                     std::move(channel), std::move(time)},
                    params.density, params.physical);
}

StarSchema MakeTinyApb1Schema(double density) {
  // Same shape, tiny cardinalities: 1,  product 2/6/12/24/48/120? keep the
  // divide-chain property of the big schema but ~100x smaller leaves.
  Dimension product("product",
                    Hierarchy({{"division", 2},
                               {"line", 6},
                               {"family", 12},
                               {"group", 24},
                               {"class", 48},
                               {"code", 96}}),
                    IndexKind::kEncoded);
  Dimension customer("customer",
                     Hierarchy({{"retailer", 8}, {"store", 40}}),
                     IndexKind::kEncoded);
  Dimension channel("channel", Hierarchy({{"channel", 3}}),
                    IndexKind::kSimple);
  Dimension time("time",
                 Hierarchy({{"year", 1}, {"quarter", 4}, {"month", 12}}),
                 IndexKind::kSimple);
  PhysicalParams physical;
  return StarSchema("tiny_sales",
                    {std::move(product), std::move(customer),
                     std::move(channel), std::move(time)},
                    density, physical);
}

}  // namespace mdw
