#ifndef MDW_SCHEMA_DIMENSION_TABLE_H_
#define MDW_SCHEMA_DIMENSION_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/btree.h"
#include "schema/dimension.h"

namespace mdw {

/// A materialised, denormalised dimension table (paper Fig. 1): one row
/// per leaf element carrying the ancestor value and a generated name for
/// every hierarchy level, indexed by a B+-tree on the primary key (the
/// paper's setup: "the dimension tables have B*-tree indices"). The four
/// APB-1 dimension tables together occupy ~1 MB (Sec. 4) — they are kept
/// fully in memory, exactly as the paper assumes they are cached.
class DimensionTable {
 public:
  explicit DimensionTable(const Dimension& dimension);

  struct Row {
    std::int64_t key = 0;                    ///< leaf value (primary key)
    std::vector<std::int64_t> level_values;  ///< ancestor per depth
    std::vector<std::string> level_names;    ///< e.g. "GROUP_41"
  };

  const Dimension& dimension() const { return *dimension_; }
  std::int64_t row_count() const {
    return static_cast<std::int64_t>(rows_.size());
  }

  /// Row of primary key `key` (B+-tree point lookup).
  const Row& RowForKey(std::int64_t key) const;

  /// Primary keys of all leaves below `value` at `depth` (B+-tree range
  /// scan over the contiguous leaf range of the balanced hierarchy) —
  /// the join the dimension table serves in star query processing.
  std::vector<std::int64_t> KeysBelow(Depth depth, std::int64_t value) const;

  /// Resolves a level name ("GROUP_41") to (depth, value); returns false
  /// if no level name matches.
  bool ResolveName(const std::string& name, Depth* depth,
                   std::int64_t* value) const;

  /// Approximate in-memory footprint (paper: all dimension tables ~1 MB).
  std::int64_t ApproximateBytes() const;

  const BPlusTree& index() const { return index_; }

 private:
  const Dimension* dimension_;
  std::vector<Row> rows_;
  BPlusTree index_;
};

/// Generated name of `value` at `depth` of `dimension` ("GROUP_41").
std::string LevelValueName(const Dimension& dimension, Depth depth,
                           std::int64_t value);

}  // namespace mdw

#endif  // MDW_SCHEMA_DIMENSION_TABLE_H_
