#include "schema/dimension_table.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"

namespace mdw {

std::string LevelValueName(const Dimension& dimension, Depth depth,
                           std::int64_t value) {
  std::string level = dimension.hierarchy().level(depth).name;
  std::transform(level.begin(), level.end(), level.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return level + "_" + std::to_string(value);
}

DimensionTable::DimensionTable(const Dimension& dimension)
    : dimension_(&dimension) {
  const auto& h = dimension.hierarchy();
  rows_.reserve(static_cast<std::size_t>(h.LeafCardinality()));
  for (std::int64_t leaf = 0; leaf < h.LeafCardinality(); ++leaf) {
    Row row;
    row.key = leaf;
    for (Depth d = 0; d < h.num_levels(); ++d) {
      const std::int64_t value = h.AncestorOfLeaf(leaf, d);
      row.level_values.push_back(value);
      row.level_names.push_back(LevelValueName(dimension, d, value));
    }
    rows_.push_back(std::move(row));
    index_.Insert(leaf, static_cast<std::int64_t>(rows_.size()) - 1);
  }
}

const DimensionTable::Row& DimensionTable::RowForKey(std::int64_t key) const {
  const std::int64_t* ordinal = index_.Lookup(key);
  MDW_CHECK(ordinal != nullptr, "unknown dimension key");
  return rows_[static_cast<std::size_t>(*ordinal)];
}

std::vector<std::int64_t> DimensionTable::KeysBelow(
    Depth depth, std::int64_t value) const {
  const auto [first, last] = dimension_->hierarchy().LeafRange(value, depth);
  std::vector<std::int64_t> keys;
  keys.reserve(static_cast<std::size_t>(last - first + 1));
  index_.Scan(first, last, [&keys](std::int64_t key, std::int64_t) {
    keys.push_back(key);
  });
  return keys;
}

bool DimensionTable::ResolveName(const std::string& name, Depth* depth,
                                 std::int64_t* value) const {
  const auto& h = dimension_->hierarchy();
  for (Depth d = 0; d < h.num_levels(); ++d) {
    for (std::int64_t v = 0; v < h.Cardinality(d); ++v) {
      if (LevelValueName(*dimension_, d, v) == name) {
        *depth = d;
        *value = v;
        return true;
      }
    }
  }
  return false;
}

std::int64_t DimensionTable::ApproximateBytes() const {
  std::int64_t bytes = 0;
  for (const auto& row : rows_) {
    bytes += 8 + 8 * static_cast<std::int64_t>(row.level_values.size());
    for (const auto& name : row.level_names) {
      bytes += static_cast<std::int64_t>(name.size());
    }
  }
  return bytes;
}

}  // namespace mdw
