#ifndef MDW_SCHEMA_HIERARCHY_H_
#define MDW_SCHEMA_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mdw {

/// Index of a hierarchy level. Depth 0 is the *root* (coarsest) level, e.g.
/// DIVISION or YEAR; the largest depth is the *leaf* level, e.g. CODE or
/// MONTH. The paper's "higher level" (hier(q) > hier(f)) corresponds to a
/// *smaller* depth here.
using Depth = int;

/// One level of a dimension hierarchy.
struct HierarchyLevel {
  std::string name;           ///< e.g. "group"
  std::int64_t cardinality;   ///< total number of elements at this level
};

/// A balanced, aligned dimension hierarchy as assumed by APB-1 and the
/// paper: every element of level d has the same number of children
/// (cardinality(d+1) / cardinality(d)), and leaf value `v` belongs to
/// ancestor `v / (leaf_card / card(d))` at depth d. The constructor checks
/// the required divisibility.
///
/// The hierarchy also defines the *hierarchical encoding* of the encoded
/// bitmap join index (paper Table 1): each level contributes
/// ceil(log2(fanout)) bits, concatenated root-first, so that all leaves
/// below one element at depth d share the same prefix of
/// `PrefixBits(d)` bits.
class Hierarchy {
 public:
  /// `levels` are given root-first (coarsest level at index 0).
  explicit Hierarchy(std::vector<HierarchyLevel> levels);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  Depth leaf_depth() const { return num_levels() - 1; }
  const HierarchyLevel& level(Depth d) const;

  /// Cardinality of the level at depth `d`.
  std::int64_t Cardinality(Depth d) const;
  /// Cardinality of the leaf level.
  std::int64_t LeafCardinality() const;

  /// Number of children of one depth-`d` element at depth d+1 ... for d==-1
  /// ("virtual root") this is the cardinality of depth 0.
  std::int64_t Fanout(Depth d) const;

  /// Ancestor of leaf value `leaf` at depth `d` (identity for the leaf
  /// depth). Values are dense integers in [0, Cardinality(d)).
  std::int64_t AncestorOfLeaf(std::int64_t leaf, Depth d) const;

  /// Ancestor at depth `to` of value `value` at depth `from` (to <= from).
  std::int64_t Ancestor(std::int64_t value, Depth from, Depth to) const;

  /// Range of leaf values [first, last] covered by `value` at depth `d`.
  std::pair<std::int64_t, std::int64_t> LeafRange(std::int64_t value,
                                                  Depth d) const;

  /// Number of leaf values below one element at depth `d`.
  std::int64_t LeavesPer(Depth d) const;

  /// Number of depth-`to` descendants of one depth-`from` element
  /// (from <= to).
  std::int64_t DescendantsPer(Depth from, Depth to) const;

  /// ---- Hierarchical encoding (paper Table 1) ----

  /// Bits contributed by the level at depth `d`: ceil(log2(Fanout(d-1))).
  int BitsAt(Depth d) const;
  /// Total bits of the full leaf encoding (e.g. 15 for APB-1 PRODUCT).
  int TotalBits() const;
  /// Bits of the prefix identifying an element at depth `d` (e.g. 10 bits
  /// identify a PRODUCT GROUP).
  int PrefixBits(Depth d) const;

  /// Encodes leaf value `leaf` into its hierarchical bit pattern: the
  /// root-level child index in the most significant field, the leaf-level
  /// index within its parent in the least significant field.
  std::uint64_t EncodeLeaf(std::int64_t leaf) const;
  /// Inverse of EncodeLeaf for patterns produced by it.
  std::int64_t DecodeLeaf(std::uint64_t pattern) const;

  /// Depth of the level named `name`, or -1 if absent.
  Depth DepthOf(const std::string& name) const;

 private:
  std::vector<HierarchyLevel> levels_;
  std::vector<int> bits_;  ///< bits per level, root-first
};

}  // namespace mdw

#endif  // MDW_SCHEMA_HIERARCHY_H_
