#ifndef MDW_SCHEMA_APB1_H_
#define MDW_SCHEMA_APB1_H_

#include "schema/star_schema.h"

namespace mdw {

/// Parameters of the APB-1 star schema generator (paper Sec. 3.1).
/// The benchmark scales all dimensions with the number of channels; the
/// paper's configuration is 15 channels, 24 months, density 25%, yielding
/// 1,866,240,000 fact rows.
struct Apb1Params {
  int channels = 15;
  int months = 24;          ///< must be divisible by 12
  double density = 0.25;    ///< fraction of possible value combinations
  PhysicalParams physical = {};
};

/// Builds the APB-1 star schema of the paper:
///   PRODUCT  (encoded index): division 8, line 24, family 120, group 480,
///                             class 960, code 960*channels
///   CUSTOMER (encoded index): retailer stores/10, store 96*channels
///   CHANNEL  (simple index):  channel `channels`
///   TIME     (simple index):  year months/12, quarter months/3, month
/// Aborts if the scaling does not produce a balanced hierarchy (e.g. a
/// store count not divisible by 10).
StarSchema MakeApb1Schema(const Apb1Params& params = {});

/// A scaled-down APB-1-shaped schema whose fact table is small enough to
/// materialise in memory; used by tests, examples, and the functional
/// mini-warehouse. Keeps the same four dimensions and hierarchy shapes but
/// with tiny cardinalities (e.g. 120 product codes, 40 stores).
StarSchema MakeTinyApb1Schema(double density = 0.25);

/// Dimension ids of the APB-1 schema in construction order.
inline constexpr DimId kApb1Product = 0;
inline constexpr DimId kApb1Customer = 1;
inline constexpr DimId kApb1Channel = 2;
inline constexpr DimId kApb1Time = 3;

}  // namespace mdw

#endif  // MDW_SCHEMA_APB1_H_
