#include "schema/dimension.h"

namespace mdw {

Dimension::Dimension(std::string name, Hierarchy hierarchy,
                     IndexKind index_kind)
    : name_(std::move(name)),
      hierarchy_(std::move(hierarchy)),
      index_kind_(index_kind) {}

int Dimension::TotalBitmapCount() const {
  if (index_kind_ == IndexKind::kEncoded) return hierarchy_.TotalBits();
  int total = 0;
  for (Depth d = 0; d < hierarchy_.num_levels(); ++d) {
    total += static_cast<int>(hierarchy_.Cardinality(d));
  }
  return total;
}

int Dimension::BitmapsForSelection(Depth d) const {
  if (index_kind_ == IndexKind::kEncoded) return hierarchy_.PrefixBits(d);
  return 1;
}

std::string Dimension::AttributeLabel(Depth d) const {
  return name_ + "::" + hierarchy_.level(d).name;
}

}  // namespace mdw
