#include "sim/buffer_manager.h"

#include "common/check.h"

namespace mdw {

BufferManager::BufferManager(std::int64_t capacity_pages)
    : core_(capacity_pages) {
  MDW_CHECK(capacity_pages >= 1, "buffer pool needs capacity");
}

bool BufferManager::Lookup(Key key) { return core_.Get(key) != nullptr; }

void BufferManager::Insert(Key key, std::int64_t pages) {
  MDW_CHECK(pages >= 1, "granule must have at least one page");
  if (core_.Peek(key) != nullptr) {
    // Reinserting an existing granule refreshes recency without counting
    // a hit (hits/misses are Lookup's to report).
    core_.Touch(key);
    return;
  }
  // Everything is evictable in the simulator's pool; an oversized granule
  // is admitted alone after the pool empties.
  core_.EvictToFit(
      pages, [](const Unit&) { return true; }, [](Key, const Unit&) {});
  core_.Insert(key, Unit{}, pages);
}

void BufferManager::Reset() { core_.Reset(); }

}  // namespace mdw
