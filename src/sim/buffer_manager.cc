#include "sim/buffer_manager.h"

#include "common/check.h"

namespace mdw {

BufferManager::BufferManager(std::int64_t capacity_pages)
    : capacity_pages_(capacity_pages) {
  MDW_CHECK(capacity_pages >= 1, "buffer pool needs capacity");
}

bool BufferManager::Lookup(Key key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void BufferManager::Insert(Key key, std::int64_t pages) {
  MDW_CHECK(pages >= 1, "granule must have at least one page");
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (used_pages_ + pages > capacity_pages_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_pages_ -= victim.pages;
    map_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, pages});
  map_[key] = lru_.begin();
  used_pages_ += pages;
}

}  // namespace mdw
