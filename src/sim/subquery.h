#ifndef MDW_SIM_SUBQUERY_H_
#define MDW_SIM_SUBQUERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "alloc/disk_allocation.h"
#include "common/rng.h"
#include "cost/io_cost_model.h"
#include "fragment/query_planner.h"
#include "sim/buffer_manager.h"
#include "sim/cpu.h"
#include "sim/disk.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/sim_config.h"

namespace mdw {

/// Shared state of one simulation run, wired up by the Simulator and used
/// by coordinators and subqueries.
struct SimContext {
  EventQueue* queue = nullptr;
  const SimConfig* config = nullptr;
  std::vector<std::unique_ptr<Disk>>* disks = nullptr;
  std::vector<std::unique_ptr<Cpu>>* cpus = nullptr;
  Network* network = nullptr;
  /// Per-node buffer pools (fact table resp. bitmaps).
  std::vector<std::unique_ptr<BufferManager>>* fact_buffers = nullptr;
  std::vector<std::unique_ptr<BufferManager>>* bitmap_buffers = nullptr;
  const DiskAllocation* allocation = nullptr;
  Rng* rng = nullptr;

  /// Concurrent tasks per node (subqueries plus one coordination slot per
  /// active query).
  std::vector<int> node_active;
  /// Concurrent subqueries across all nodes (for SimConfig::global_task_cap).
  int global_active = 0;
  std::int64_t subqueries_started = 0;
  /// Coordinators blocked on a free task slot; notified (via
  /// NotifySlotFreed in coordinator.h) whenever a slot is released, so
  /// concurrent queries cannot starve each other.
  std::vector<class QueryCoordinator*> slot_waiters;

  // ---- on-disk layout (pages, per disk) ----
  std::int64_t frag_extent_pages = 0;    ///< pages per fact fragment extent
  std::int64_t bitmap_extent_pages = 0;  ///< pages per bitmap fragment extent
  std::int64_t fact_region_pages = 0;    ///< start of the bitmap region

  Disk& disk(int i) { return *(*disks)[static_cast<std::size_t>(i)]; }
  Cpu& cpu(int i) { return *(*cpus)[static_cast<std::size_t>(i)]; }
};

/// Per-query physical work description of one subquery (derived once per
/// query from its plan; all subqueries of a query share it). Mirrors the
/// quantities of the analytical cost model at per-fragment granularity.
struct SubqueryWork {
  std::int64_t frag_pages = 0;           ///< fact pages per fragment
  std::int64_t fact_granule = 8;         ///< pages per fact prefetch I/O
  std::int64_t fact_granules_total = 0;  ///< granules per fragment
  /// Expected granules actually read (== total when no bitmaps needed).
  double fact_granules_expected = 0;
  double hits_per_fragment = 0;
  bool needs_bitmaps = false;
  int bitmaps = 0;                        ///< bitmap fragments per fragment
  std::int64_t bitmap_pages = 0;          ///< pages per bitmap fragment
  double bitmap_frag_pages_raw = 0;       ///< unrounded bitmap frag pages
  std::int64_t bitmap_granule = 5;        ///< pages per bitmap prefetch I/O
  std::int64_t bitmap_ops_per_bitmap = 0;
  int configured_bitmap_granule = 5;      ///< SimConfig prefetch setting

  // ---- data skew (SimConfig::fragment_skew_theta) ----
  double skew_theta = 0;        ///< 0 = uniform hits across fragments
  double skew_norm = 1;         ///< normaliser keeping total hits constant
  std::int64_t skew_fragments = 0;  ///< fragment count of the fragmentation

  /// Zipf-like hit weight of a fragment (1.0 under uniformity). Fragment
  /// ids are hashed so hot fragments scatter across disks.
  double SkewWeight(FragId id) const;
};

/// Derives the subquery work template from a plan (same formulas as
/// IoCostModel, at per-fragment granularity).
SubqueryWork MakeSubqueryWork(const QueryPlan& plan, const SimConfig& config);

/// Executes one subquery: processes one or more fact fragments (more than
/// one only with fragment clustering) with their bitmap fragments on a
/// fixed node, following Sec. 4.3 step 4: read + process bitmap fragments
/// (in parallel or serially per SimConfig), then fetch the fact granules
/// containing hits and extract/aggregate rows. Self-deletes after invoking
/// `done` (which runs on the worker node after the terminate-subquery CPU
/// charge).
class SubqueryExec {
 public:
  SubqueryExec(SimContext* ctx, const SubqueryWork* work,
               std::vector<FragId> fragments, int node,
               std::function<void()> done);

  void Start();

 private:
  /// Reads the cluster's bitmap extents (once per subquery: with fragment
  /// clustering the bitmap fragments of all clustered fragments are
  /// stored contiguously and read together, Sec. 6.3).
  void BitmapPhase();
  void SerialBitmapOp(int op_index);
  void FactPhase();
  void FactGranule(std::int64_t i);
  void NextFragmentOrFinish();
  void Finish();

  /// Pages of one merged bitmap extent for this subquery's cluster.
  std::int64_t ClusterBitmapPages() const;
  /// Effective prefetch granule for the merged extent.
  std::int64_t ClusterBitmapGranule() const;
  /// Reads per bitmap for the merged extent.
  std::int64_t ClusterBitmapOps() const;

  /// Reads `pages` at `start_page` of `disk`, checking/updating the node's
  /// buffer pool `pool` (space tag for the cache key), then `done`.
  void BufferedRead(int space, int disk, std::int64_t start_page,
                    std::int64_t pages, BufferManager* pool,
                    std::function<void()> done);

  SimContext* ctx_;
  const SubqueryWork* work_;
  std::vector<FragId> fragments_;
  std::size_t current_ = 0;
  int node_;
  std::function<void()> done_;

  // Per-fragment transient state.
  std::int64_t fact_granules_to_read_ = 0;
  double hits_per_granule_ = 0;
  int bitmap_ops_outstanding_ = 0;
};

}  // namespace mdw

#endif  // MDW_SIM_SUBQUERY_H_
