#include "sim/cpu.h"

#include "common/check.h"

namespace mdw {

Cpu::Cpu(EventQueue* queue, CpuCosts costs, std::string name)
    : costs_(costs), server_(queue, std::move(name)) {
  MDW_CHECK(costs_.mips > 0, "CPU speed must be positive");
}

void Cpu::Execute(double instructions, std::function<void()> done) {
  MDW_CHECK(instructions >= 0, "negative instruction demand");
  const double demand = costs_.MsFor(instructions);
  server_.Request([demand]() { return demand; }, std::move(done));
}

}  // namespace mdw
