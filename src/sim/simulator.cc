#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "common/borrowed.h"
#include "common/check.h"
#include "common/math_util.h"
#include "fragment/bitmap_elimination.h"
#include "fragment/query_planner.h"
#include "sim/coordinator.h"
#include "sim/subquery.h"

namespace mdw {

Simulator::Simulator(std::shared_ptr<const StarSchema> schema,
                     std::shared_ptr<const Fragmentation> fragmentation,
                     SimConfig config)
    : schema_(std::move(schema)),
      fragmentation_(std::move(fragmentation)),
      config_(config) {
  MDW_CHECK(schema_ != nullptr && fragmentation_ != nullptr,
            "simulator needs schema and fragmentation");
  MDW_CHECK(&fragmentation_->schema() == schema_.get(),
            "fragmentation must belong to the schema");
  config_.Validate();
}

Simulator::Simulator(const StarSchema* schema,
                     const Fragmentation* fragmentation, SimConfig config)
    : Simulator(Borrowed(schema), Borrowed(fragmentation),
                std::move(config)) {}

std::vector<QueryPlan> Simulator::PlanAll(
    std::span<const StarQuery> queries) const {
  const QueryPlanner planner(schema_, fragmentation_);
  std::vector<QueryPlan> plans;
  plans.reserve(queries.size());
  for (const auto& q : queries) plans.push_back(planner.Plan(q));
  return plans;
}

SimResult Simulator::RunSingleUser(
    const std::vector<StarQuery>& queries) const {
  return Run(queries, PlanAll(queries), /*streams=*/1);
}

SimResult Simulator::RunSingleUser(std::span<const StarQuery> queries,
                                   std::span<const QueryPlan> plans) const {
  return Run(queries, plans, /*streams=*/1);
}

SimResult Simulator::RunMultiUser(const std::vector<StarQuery>& queries,
                                  int streams) const {
  MDW_CHECK(streams >= 1, "need at least one stream");
  return Run(queries, PlanAll(queries), streams);
}

SimResult Simulator::RunMultiUser(std::span<const StarQuery> queries,
                                  std::span<const QueryPlan> plans,
                                  int streams) const {
  MDW_CHECK(streams >= 1, "need at least one stream");
  return Run(queries, plans, streams);
}

SimResult Simulator::Run(std::span<const StarQuery> queries,
                         std::span<const QueryPlan> plans,
                         int streams) const {
  MDW_CHECK(!queries.empty(), "no queries to run");
  MDW_CHECK(queries.size() == plans.size(), "one plan per query");

  // ---- per-query subquery work from the caller-provided plans ----
  std::vector<SubqueryWork> works;
  works.reserve(queries.size());
  int max_bitmaps_per_fragment = 0;
  for (const auto& plan : plans) {
    MDW_CHECK(&plan.fragmentation().schema() == schema_.get() &&
                  plan.fragmentation().attrs() == fragmentation_->attrs(),
              "plan was derived for a different schema or fragmentation");
    works.push_back(MakeSubqueryWork(plan, config_));
    max_bitmaps_per_fragment =
        std::max(max_bitmaps_per_fragment, works.back().bitmaps);
  }

  // ---- physical allocation ----
  const int materialized_bitmaps =
      std::max(RemainingBitmapCount(*fragmentation_),
               max_bitmaps_per_fragment);
  AllocationConfig alloc_config;
  alloc_config.num_disks = config_.num_disks;
  alloc_config.bitmap_placement = config_.bitmap_placement;
  alloc_config.round_gap = config_.round_gap;
  alloc_config.cluster_factor = config_.fragment_cluster_factor;
  alloc_config.node_count = config_.num_nodes;
  const DiskAllocation allocation(fragmentation_.get(), alloc_config,
                                  materialized_bitmaps);

  // ---- on-disk layout and devices ----
  EventQueue queue;
  SimContext ctx;
  ctx.queue = &queue;
  ctx.config = &config_;
  ctx.allocation = &allocation;

  const std::int64_t cluster = config_.fragment_cluster_factor;
  ctx.frag_extent_pages = static_cast<std::int64_t>(std::ceil(
      fragmentation_->TuplesPerFragment() /
      static_cast<double>(schema_->physical().TuplesPerPage())));
  // Bitmap extents are cluster-sized: the bitmap fragments of clustered
  // fragments are stored (and read) contiguously.
  ctx.bitmap_extent_pages = static_cast<std::int64_t>(std::max(
      1.0, std::ceil(fragmentation_->BitmapFragmentPages() *
                     static_cast<double>(cluster))));
  const std::int64_t clusters =
      CeilDiv(fragmentation_->FragmentCount(), cluster);
  const std::int64_t rounds = CeilDiv(clusters, config_.num_disks);
  ctx.fact_region_pages = rounds * cluster * ctx.frag_extent_pages;
  const std::int64_t total_pages =
      ctx.fact_region_pages +
      rounds * materialized_bitmaps * ctx.bitmap_extent_pages;

  std::vector<std::unique_ptr<Disk>> disks;
  for (int i = 0; i < config_.num_disks; ++i) {
    disks.push_back(std::make_unique<Disk>(&queue, config_.disk, total_pages,
                                           "disk" + std::to_string(i)));
  }
  std::vector<std::unique_ptr<Cpu>> cpus;
  std::vector<std::unique_ptr<BufferManager>> fact_buffers;
  std::vector<std::unique_ptr<BufferManager>> bitmap_buffers;
  for (int i = 0; i < config_.num_nodes; ++i) {
    cpus.push_back(std::make_unique<Cpu>(&queue, config_.cpu,
                                         "cpu" + std::to_string(i)));
    fact_buffers.push_back(
        std::make_unique<BufferManager>(config_.fact_buffer_pages));
    bitmap_buffers.push_back(
        std::make_unique<BufferManager>(config_.bitmap_buffer_pages));
  }
  Network network(&queue, config_.network_mbit_per_s);
  Rng rng(config_.seed);

  ctx.disks = &disks;
  ctx.cpus = &cpus;
  ctx.network = &network;
  ctx.fact_buffers = &fact_buffers;
  ctx.bitmap_buffers = &bitmap_buffers;
  ctx.rng = &rng;
  ctx.node_active.assign(static_cast<std::size_t>(config_.num_nodes), 0);

  // ---- streams: round-robin distribution of the query list ----
  SimResult result;
  result.response_by_query_ms.assign(queries.size(), 0.0);
  result.stream_of_query.assign(queries.size(), 0);
  std::vector<std::vector<std::size_t>> stream_queries(
      static_cast<std::size_t>(streams));
  for (std::size_t i = 0; i < queries.size(); ++i) {
    stream_queries[i % static_cast<std::size_t>(streams)].push_back(i);
    result.stream_of_query[i] = static_cast<int>(
        i % static_cast<std::size_t>(streams));
  }

  // Submits stream `s`'s `pos`-th query; chains the next one on completion.
  // Coordinators stay alive until the run ends (they may still sit on the
  // slot-waiter list after finishing).
  std::vector<std::unique_ptr<QueryCoordinator>> coordinators;
  coordinators.reserve(queries.size());
  std::function<void(std::size_t, std::size_t)> submit =
      [&](std::size_t s, std::size_t pos) {
        if (pos >= stream_queries[s].size()) return;
        const std::size_t qi = stream_queries[s][pos];
        const int coordinator = static_cast<int>(
            rng.Uniform(0, config_.num_nodes - 1));
        coordinators.push_back(std::make_unique<QueryCoordinator>(
            &ctx, &plans[qi], &works[qi], coordinator,
            [&, s, pos, qi](double response_ms) {
              // Completion order for the aggregate statistics, AND
              // attributed to the submitted query id — multi-stream runs
              // stay per-query comparable against real executions.
              result.response_ms.push_back(response_ms);
              result.response_by_query_ms[qi] = response_ms;
              submit(s, pos + 1);
            }));
        coordinators.back()->Submit();
      };
  for (std::size_t s = 0; s < stream_queries.size(); ++s) {
    if (!stream_queries[s].empty()) submit(s, 0);
  }

  queue.RunUntilEmpty();

  // ---- gather metrics ----
  result.makespan_ms = queue.now();
  SummarizeResponses(&result);
  double disk_util_sum = 0;
  for (const auto& d : disks) {
    result.disk_ios += d->io_count();
    result.disk_pages += d->pages_read();
    const double u = d->Utilization(result.makespan_ms);
    disk_util_sum += u;
    result.max_disk_utilization = std::max(result.max_disk_utilization, u);
  }
  result.avg_disk_utilization =
      disk_util_sum / static_cast<double>(config_.num_disks);
  if (result.avg_disk_utilization > 0) {
    result.disk_imbalance =
        result.max_disk_utilization / result.avg_disk_utilization;
  }
  double cpu_util_sum = 0;
  for (const auto& c : cpus) {
    const double u = c->Utilization(result.makespan_ms);
    cpu_util_sum += u;
    result.max_cpu_utilization = std::max(result.max_cpu_utilization, u);
  }
  result.avg_cpu_utilization =
      cpu_util_sum / static_cast<double>(config_.num_nodes);
  if (result.avg_cpu_utilization > 0) {
    result.cpu_imbalance =
        result.max_cpu_utilization / result.avg_cpu_utilization;
  }
  for (const auto& b : fact_buffers) result.buffer_hits += b->hits();
  for (const auto& b : bitmap_buffers) result.buffer_hits += b->hits();
  result.messages = network.messages();
  result.subqueries = ctx.subqueries_started;
  result.events = queue.events_processed();

  MDW_CHECK(result.response_ms.size() == queries.size(),
            "every query must complete");
  MDW_CHECK(ctx.global_active == 0, "task accounting leaked");
  return result;
}

}  // namespace mdw
