#include "sim/disk.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"
#include "common/math_util.h"

namespace mdw {

Disk::Disk(EventQueue* queue, DiskParams params, std::int64_t total_pages,
           std::string name)
    : params_(params),
      total_pages_(std::max<std::int64_t>(total_pages, 1)),
      pages_per_track_(std::max<std::int64_t>(
          CeilDiv(total_pages_, params.tracks), 1)),
      server_(queue, std::move(name)) {
  MDW_CHECK(params_.tracks >= 1, "disk needs at least one track");
}

std::int64_t Disk::TrackOf(std::int64_t page) const {
  return std::min(page / pages_per_track_, params_.tracks - 1);
}

double Disk::ServiceTime(std::int64_t start_page, std::int64_t pages) {
  const std::int64_t target = TrackOf(start_page);
  const std::int64_t distance = std::llabs(target - head_track_);
  double seek = 0;
  if (distance > 0) {
    seek = params_.min_seek_ms +
           (MaxSeekMs() - params_.min_seek_ms) *
               static_cast<double>(distance) /
               static_cast<double>(params_.tracks);
  }
  head_track_ = TrackOf(start_page + pages);
  return seek + params_.settle_ms +
         params_.per_page_ms * static_cast<double>(pages);
}

void Disk::Read(std::int64_t start_page, std::int64_t pages,
                std::function<void()> done) {
  MDW_CHECK(pages >= 1, "read must transfer at least one page");
  pages_read_ += pages;
  server_.Request(
      [this, start_page, pages]() { return ServiceTime(start_page, pages); },
      std::move(done));
}

}  // namespace mdw
