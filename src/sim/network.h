#ifndef MDW_SIM_NETWORK_H_
#define MDW_SIM_NETWORK_H_

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"

namespace mdw {

/// The paper's idealised, contention-free network: transfer delay is
/// proportional to message size at `mbit_per_s` (100 Mbit/s in Table 4);
/// no queueing, no topology. CPU send/receive costs are charged separately
/// on the nodes (CpuCosts::MessageMs).
class Network {
 public:
  Network(EventQueue* queue, double mbit_per_s);

  /// Delivers `done` after the wire delay of a `bytes`-sized message.
  void Transfer(std::int64_t bytes, std::function<void()> done);

  double WireDelayMs(std::int64_t bytes) const;

  std::int64_t messages() const { return messages_; }
  std::int64_t bytes_sent() const { return bytes_sent_; }

 private:
  EventQueue* queue_;
  double mbit_per_s_;
  std::int64_t messages_ = 0;
  std::int64_t bytes_sent_ = 0;
};

}  // namespace mdw

#endif  // MDW_SIM_NETWORK_H_
