#ifndef MDW_SIM_DISK_H_
#define MDW_SIM_DISK_H_

#include <cstdint>
#include <functional>
#include <string>

#include "sim/resource.h"

namespace mdw {

/// Disk timing parameters (paper Table 4): average seek 10 ms, settle +
/// controller delay 3 ms per access plus 1 ms per page transferred.
/// Seek time varies with track distance (the paper stresses that its disk
/// model "calculates varying seek times based on track positions rather
/// than giving constant or stochastically distributed response times");
/// we model seek(dist) = min + (max - min) * dist / max_track with
/// min = 2 ms and max chosen so that a uniformly random seek averages
/// `avg_seek_ms` (E[dist/max_track] = 1/3 for independent uniform track
/// positions): max = min + 3 * (avg - min).
struct DiskParams {
  double avg_seek_ms = 10.0;
  double min_seek_ms = 2.0;
  double settle_ms = 3.0;        ///< settle + controller delay per access
  double per_page_ms = 1.0;      ///< transfer per page
  std::int64_t tracks = 20'000;  ///< tracks per disk surface
};

/// One disk device: an FCFS server whose service time is
/// seek(track distance) + settle + pages * transfer. The head position
/// advances to the end of each read, so consecutive reads of adjacent
/// extents pay (almost) no seek — this produces the paper's superlinear
/// speed-up when the same data is spread over more disks.
class Disk {
 public:
  /// `total_pages` is the disk's occupied capacity, used to map page
  /// offsets to tracks.
  Disk(EventQueue* queue, DiskParams params, std::int64_t total_pages,
       std::string name);

  /// Reads `pages` consecutive pages starting at `start_page`.
  void Read(std::int64_t start_page, std::int64_t pages,
            std::function<void()> done);

  double MaxSeekMs() const {
    return params_.min_seek_ms +
           3.0 * (params_.avg_seek_ms - params_.min_seek_ms);
  }

  std::int64_t TrackOf(std::int64_t page) const;

  double busy_ms() const { return server_.busy_ms(); }
  std::int64_t io_count() const { return server_.completed(); }
  std::int64_t pages_read() const { return pages_read_; }
  double Utilization(SimTime horizon) const {
    return server_.Utilization(horizon);
  }

 private:
  double ServiceTime(std::int64_t start_page, std::int64_t pages);

  DiskParams params_;
  std::int64_t total_pages_;
  std::int64_t pages_per_track_;
  std::int64_t head_track_ = 0;
  std::int64_t pages_read_ = 0;
  FcfsServer server_;
};

}  // namespace mdw

#endif  // MDW_SIM_DISK_H_
