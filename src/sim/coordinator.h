#ifndef MDW_SIM_COORDINATOR_H_
#define MDW_SIM_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/subquery.h"

namespace mdw {

/// Wakes every coordinator waiting for a free task slot (multi-user mode:
/// a slot released by one query may unblock another).
void NotifySlotFreed(SimContext* ctx);

/// Coordinates one star query (paper Sec. 5): plans the query on a
/// coordinator node, builds the task list of subqueries sorted in
/// allocation order (so consecutive subqueries hit different disks),
/// assigns tasks round-robin to nodes with at most `tasks_per_node`
/// concurrent tasks each (the coordination itself occupying one slot on
/// the coordinator node), gathers partial aggregates, and reports the
/// query response time. Message CPU and wire costs are charged per
/// assignment and per result. The caller owns the coordinator and must
/// keep it alive until `done` has run.
class QueryCoordinator {
 public:
  /// `plan` must outlive the query. `done(response_ms)` runs at query
  /// completion.
  QueryCoordinator(SimContext* ctx, const QueryPlan* plan,
                   const SubqueryWork* work, int coordinator_node,
                   std::function<void(double)> done);

  /// Submits the query at the current simulated time. Coordination needs
  /// a task slot of its own; if the coordinator node is saturated (more
  /// concurrent queries than slots — the open multi-user case), the query
  /// waits for a freed slot before it starts, keeping the response clock
  /// honest: queue-for-startup time counts toward the response.
  void Submit();

 private:
  /// Claims the coordination slot and starts the query, or parks on the
  /// slot-waiter list until a slot frees. Startup additionally requires
  /// one slot to REMAIN free somewhere: if coordinators could fill every
  /// slot of every node, no subquery could ever run and the whole
  /// multi-user simulation would deadlock.
  void TryStart();
  /// Waiter dispatch: resume at startup or at task assignment.
  void OnSlotFreed();
  void BuildTasks();
  void TryAssign();
  bool NodeAvailable(int node) const;
  /// Pops the next task assignable to `node` (Shared Disk: the global
  /// list head; Shared Nothing: the node's own queue), or -1.
  std::int64_t NextTaskFor(int node);
  bool HasTaskFor(int node) const;
  void AssignTo(int node, std::size_t task_index);
  void SendResult(int node);
  void OnResultArrived(int node);
  void Finish();

  SimContext* ctx_;
  const QueryPlan* plan_;
  const SubqueryWork* work_;
  int coordinator_node_;
  std::function<void(double)> done_;

  SimTime submit_time_ = 0;
  std::vector<std::vector<FragId>> tasks_;  ///< fragment cluster per task
  std::size_t next_task_ = 0;               ///< Shared Disk cursor
  /// Shared Nothing: per-node task queues (tasks are pinned to the node
  /// owning their fragments' disk); cursor per node.
  std::vector<std::vector<std::size_t>> node_tasks_;
  std::vector<std::size_t> node_cursor_;
  std::size_t remaining_tasks_ = 0;
  int outstanding_ = 0;
  int rr_node_ = 0;
  bool assigning_ = false;
  bool waiting_for_slot_ = false;
  bool started_ = false;
  bool finished_ = false;

  friend void NotifySlotFreed(SimContext* ctx);
};

}  // namespace mdw

#endif  // MDW_SIM_COORDINATOR_H_
