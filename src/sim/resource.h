#ifndef MDW_SIM_RESOURCE_H_
#define MDW_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/event_queue.h"

namespace mdw {

/// A single FCFS server over the event queue: requests queue up and are
/// served one at a time. The service demand is computed when service
/// *begins* (a function), because e.g. a disk's seek time depends on the
/// head position left by the previous request. Models CSIM's facility.
class FcfsServer {
 public:
  FcfsServer(EventQueue* queue, std::string name);

  /// Enqueues a request; `demand_ms` is evaluated at service start and
  /// `done` runs at service completion.
  void Request(std::function<double()> demand_ms, std::function<void()> done);

  const std::string& name() const { return name_; }
  double busy_ms() const { return busy_ms_; }
  std::int64_t completed() const { return completed_; }
  std::int64_t queue_length() const {
    return static_cast<std::int64_t>(pending_.size()) + (busy_? 1 : 0);
  }

  /// Utilisation over [0, horizon].
  double Utilization(SimTime horizon) const {
    return horizon <= 0 ? 0 : busy_ms_ / horizon;
  }

 private:
  struct Pending {
    std::function<double()> demand_ms;
    std::function<void()> done;
  };

  void StartNext();

  EventQueue* queue_;
  std::string name_;
  bool busy_ = false;
  double busy_ms_ = 0;
  std::int64_t completed_ = 0;
  std::deque<Pending> pending_;
};

}  // namespace mdw

#endif  // MDW_SIM_RESOURCE_H_
