#include "sim/coordinator.h"

#include "common/check.h"

namespace mdw {

void NotifySlotFreed(SimContext* ctx) {
  if (ctx->slot_waiters.empty()) return;
  std::vector<QueryCoordinator*> waiters;
  waiters.swap(ctx->slot_waiters);
  for (auto* coordinator : waiters) {
    coordinator->waiting_for_slot_ = false;
    coordinator->OnSlotFreed();
  }
}

QueryCoordinator::QueryCoordinator(SimContext* ctx, const QueryPlan* plan,
                                   const SubqueryWork* work,
                                   int coordinator_node,
                                   std::function<void(double)> done)
    : ctx_(ctx),
      plan_(plan),
      work_(work),
      coordinator_node_(coordinator_node),
      done_(std::move(done)),
      rr_node_(coordinator_node) {
  MDW_CHECK(coordinator_node_ >= 0 &&
                coordinator_node_ < ctx_->config->num_nodes,
            "coordinator node out of range");
}

void QueryCoordinator::Submit() {
  submit_time_ = ctx_->queue->now();
  TryStart();
}

void QueryCoordinator::TryStart() {
  if (started_) return;
  // Coordination occupies one task slot on the coordinator node while the
  // query is active (Sec. 5: the coordinator processes only t-1
  // subqueries) — so startup must find that slot free, AND leave at least
  // one slot open somewhere for subqueries. Without the second condition,
  // enough concurrent streams fill every slot with coordinators and the
  // run deadlocks: no task can start, so no slot is ever released.
  auto& active = ctx_->node_active;
  const int per_node = ctx_->config->tasks_per_node;
  const auto coord = static_cast<std::size_t>(coordinator_node_);
  bool slot_remains = false;
  if (active[coord] < per_node) {
    for (std::size_t n = 0; n < active.size() && !slot_remains; ++n) {
      slot_remains = active[n] + (n == coord ? 1 : 0) < per_node;
    }
  }
  if (!slot_remains) {
    if (!waiting_for_slot_) {
      waiting_for_slot_ = true;
      ctx_->slot_waiters.push_back(this);
    }
    return;
  }
  started_ = true;
  ++active[coord];
  BuildTasks();
  ctx_->cpu(coordinator_node_)
      .Execute(static_cast<double>(ctx_->config->cpu.initiate_query),
               [this]() { TryAssign(); });
}

void QueryCoordinator::OnSlotFreed() {
  if (started_) {
    TryAssign();
  } else {
    TryStart();
  }
}

void QueryCoordinator::BuildTasks() {
  const int cluster = ctx_->config->fragment_cluster_factor;
  std::vector<FragId> current;
  current.reserve(static_cast<std::size_t>(cluster));
  plan_->ForEachFragment([&](FragId id) {
    current.push_back(id);
    if (static_cast<int>(current.size()) == cluster) {
      tasks_.push_back(current);
      current.clear();
    }
  });
  if (!current.empty()) tasks_.push_back(std::move(current));
  remaining_tasks_ = tasks_.size();

  if (ctx_->config->architecture == Architecture::kSharedNothing) {
    // Shared Nothing: a task must run on the node owning its fragment's
    // disk (all fragments of a cluster share that disk).
    node_tasks_.assign(static_cast<std::size_t>(ctx_->config->num_nodes),
                       {});
    node_cursor_.assign(static_cast<std::size_t>(ctx_->config->num_nodes),
                        0);
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      const int disk =
          ctx_->allocation->DiskOfFragment(tasks_[i].front());
      node_tasks_[static_cast<std::size_t>(
                      ctx_->config->OwnerNode(disk))].push_back(i);
    }
  }
}

bool QueryCoordinator::HasTaskFor(int node) const {
  if (ctx_->config->architecture == Architecture::kSharedNothing) {
    const auto n = static_cast<std::size_t>(node);
    return node_cursor_[n] < node_tasks_[n].size();
  }
  return next_task_ < tasks_.size();
}

std::int64_t QueryCoordinator::NextTaskFor(int node) {
  if (!HasTaskFor(node)) return -1;
  if (ctx_->config->architecture == Architecture::kSharedNothing) {
    const auto n = static_cast<std::size_t>(node);
    return static_cast<std::int64_t>(node_tasks_[n][node_cursor_[n]++]);
  }
  return static_cast<std::int64_t>(next_task_++);
}

bool QueryCoordinator::NodeAvailable(int node) const {
  if (ctx_->config->global_task_cap > 0 &&
      ctx_->global_active >= ctx_->config->global_task_cap) {
    return false;
  }
  return ctx_->node_active[static_cast<std::size_t>(node)] <
         ctx_->config->tasks_per_node;
}

void QueryCoordinator::TryAssign() {
  if (assigning_ || finished_) return;
  if (remaining_tasks_ == 0) {
    if (outstanding_ == 0) Finish();
    return;
  }
  const int p = ctx_->config->num_nodes;
  for (int step = 0; step < p; ++step) {
    const int node = (rr_node_ + step) % p;
    if (NodeAvailable(node) && HasTaskFor(node)) {
      rr_node_ = (node + 1) % p;
      const std::int64_t task = NextTaskFor(node);
      AssignTo(node, static_cast<std::size_t>(task));
      return;
    }
  }
  // No assignable (node, task) pair: park until any query releases a slot.
  if (!waiting_for_slot_) {
    waiting_for_slot_ = true;
    ctx_->slot_waiters.push_back(this);
  }
}

void QueryCoordinator::AssignTo(int node, std::size_t task_index) {
  MDW_CHECK(remaining_tasks_ > 0, "no task left to assign");
  assigning_ = true;
  --remaining_tasks_;
  ++ctx_->node_active[static_cast<std::size_t>(node)];
  ++ctx_->global_active;
  ++outstanding_;
  const auto& costs = ctx_->config->cpu;
  const std::int64_t msg_bytes = ctx_->config->small_message_bytes;

  // Coordinator CPU sends the assignment message, the wire carries it,
  // the worker CPU receives it and starts the subquery.
  ctx_->cpu(coordinator_node_)
      .Execute(costs.MessageInstructions(msg_bytes), [this, node,
                                                      task_index]() {
        // The coordinator may dispatch the next task while this message
        // travels.
        assigning_ = false;
        TryAssign();
        ctx_->network->Transfer(
            ctx_->config->small_message_bytes, [this, node, task_index]() {
              const auto& c = ctx_->config->cpu;
              ctx_->cpu(node).Execute(
                  c.MessageInstructions(ctx_->config->small_message_bytes),
                  [this, node, task_index]() {
                    auto* subquery = new SubqueryExec(
                        ctx_, work_, tasks_[task_index], node,
                        [this, node]() { SendResult(node); });
                    subquery->Start();
                  });
            });
      });
}

void QueryCoordinator::SendResult(int node) {
  // Worker sends the partial aggregate back to the coordinator.
  const auto& costs = ctx_->config->cpu;
  const std::int64_t bytes = ctx_->config->small_message_bytes;
  ctx_->cpu(node).Execute(costs.MessageInstructions(bytes),
                          [this, node, bytes]() {
                            ctx_->network->Transfer(bytes, [this, node]() {
                              OnResultArrived(node);
                            });
                          });
}

void QueryCoordinator::OnResultArrived(int node) {
  const auto& costs = ctx_->config->cpu;
  ctx_->cpu(coordinator_node_)
      .Execute(
          costs.MessageInstructions(ctx_->config->small_message_bytes),
          [this, node]() {
            --ctx_->node_active[static_cast<std::size_t>(node)];
            --ctx_->global_active;
            --outstanding_;
            TryAssign();  // also detects completion of the whole query
            NotifySlotFreed(ctx_);
          });
}

void QueryCoordinator::Finish() {
  finished_ = true;
  ctx_->cpu(coordinator_node_)
      .Execute(static_cast<double>(ctx_->config->cpu.terminate_query),
               [this]() {
                 --ctx_->node_active[static_cast<std::size_t>(
                     coordinator_node_)];
                 NotifySlotFreed(ctx_);
                 done_(ctx_->queue->now() - submit_time_);
               });
}

}  // namespace mdw
