#ifndef MDW_SIM_CPU_H_
#define MDW_SIM_CPU_H_

#include <cstdint>
#include <functional>
#include <string>

#include "sim/resource.h"

namespace mdw {

/// CPU cost parameters in instructions (paper Table 4).
struct CpuCosts {
  double mips = 50.0;  ///< node speed: 50 MIPS

  std::int64_t initiate_query = 50'000;
  std::int64_t terminate_query = 10'000;
  std::int64_t initiate_subquery = 10'000;
  std::int64_t terminate_subquery = 10'000;
  std::int64_t read_page = 3'000;
  std::int64_t process_bitmap_page = 1'500;
  std::int64_t extract_row = 100;
  std::int64_t aggregate_row = 100;
  /// send/receive: 1,000 instructions + 1 per message byte
  std::int64_t message_base = 1'000;

  double MsFor(double instructions) const {
    return instructions / (mips * 1'000.0);
  }
  /// Instructions to send or receive a message: 1,000 + one per byte.
  double MessageInstructions(std::int64_t bytes) const {
    return static_cast<double>(message_base + bytes);
  }
  double MessageMs(std::int64_t bytes) const {
    return MsFor(MessageInstructions(bytes));
  }
};

/// One processing node's CPU: an FCFS server executing instruction
/// demands. All query processing steps (Table 4) are charged here.
class Cpu {
 public:
  Cpu(EventQueue* queue, CpuCosts costs, std::string name);

  /// Executes `instructions` and then `done`.
  void Execute(double instructions, std::function<void()> done);

  const CpuCosts& costs() const { return costs_; }
  double busy_ms() const { return server_.busy_ms(); }
  double Utilization(SimTime horizon) const {
    return server_.Utilization(horizon);
  }

 private:
  CpuCosts costs_;
  FcfsServer server_;
};

}  // namespace mdw

#endif  // MDW_SIM_CPU_H_
