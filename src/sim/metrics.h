#ifndef MDW_SIM_METRICS_H_
#define MDW_SIM_METRICS_H_

#include <cstdint>
#include <vector>

namespace mdw {

/// Aggregated outcome of one simulation run.
struct SimResult {
  /// Per-query response times, in COMPLETION order. Only a single-stream
  /// run completes queries in submission order; with concurrent streams
  /// the entries cannot be attributed to individual submitted queries
  /// (see BatchOutcome in core/execution_backend.h).
  std::vector<double> response_ms;

  double avg_response_ms = 0;
  double min_response_ms = 0;
  double max_response_ms = 0;
  double makespan_ms = 0;  ///< completion time of the last query

  double avg_disk_utilization = 0;
  double max_disk_utilization = 0;
  double avg_cpu_utilization = 0;
  double max_cpu_utilization = 0;
  /// Load imbalance: busiest device / average device (1.0 = perfectly
  /// balanced). The paper's Shared Disk argument is precisely that this
  /// stays near 1 even under skew.
  double disk_imbalance = 1.0;
  double cpu_imbalance = 1.0;

  std::int64_t disk_ios = 0;
  std::int64_t disk_pages = 0;
  std::int64_t messages = 0;
  std::int64_t buffer_hits = 0;
  std::int64_t subqueries = 0;
  std::int64_t events = 0;

  /// Queries completed per second of simulated time (multi-user metric).
  double ThroughputPerSecond() const {
    return makespan_ms <= 0
               ? 0
               : static_cast<double>(response_ms.size()) * 1000.0 /
                     makespan_ms;
  }
};

/// Fills the avg/min/max response fields from `response_ms`.
void SummarizeResponses(SimResult* result);

}  // namespace mdw

#endif  // MDW_SIM_METRICS_H_
