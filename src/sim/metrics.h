#ifndef MDW_SIM_METRICS_H_
#define MDW_SIM_METRICS_H_

#include <cstdint>
#include <vector>

namespace mdw {

/// Aggregated outcome of one simulation run.
struct SimResult {
  /// Per-query response times, in COMPLETION order (the historical view;
  /// kept for completion-sequence analyses). For per-query attribution
  /// use `response_by_query_ms`, which is indexed by SUBMISSION position
  /// and therefore valid at any stream count.
  std::vector<double> response_ms;

  /// Response time of the i-th SUBMITTED query (same index as the query
  /// list handed to the simulator), attributed by query id at completion
  /// — so multi-stream runs compare apples-to-apples against real
  /// per-query latencies. Same multiset of values as `response_ms`.
  std::vector<double> response_by_query_ms;
  /// Stream that ran the i-th submitted query (round-robin assignment,
  /// i % streams); single-user runs are all stream 0.
  std::vector<int> stream_of_query;

  double avg_response_ms = 0;
  double min_response_ms = 0;
  double max_response_ms = 0;
  double makespan_ms = 0;  ///< completion time of the last query

  double avg_disk_utilization = 0;
  double max_disk_utilization = 0;
  double avg_cpu_utilization = 0;
  double max_cpu_utilization = 0;
  /// Load imbalance: busiest device / average device (1.0 = perfectly
  /// balanced). The paper's Shared Disk argument is precisely that this
  /// stays near 1 even under skew.
  double disk_imbalance = 1.0;
  double cpu_imbalance = 1.0;

  std::int64_t disk_ios = 0;
  std::int64_t disk_pages = 0;
  std::int64_t messages = 0;
  std::int64_t buffer_hits = 0;
  std::int64_t subqueries = 0;
  std::int64_t events = 0;

  /// Queries completed per second of simulated time (multi-user metric).
  double ThroughputPerSecond() const {
    return makespan_ms <= 0
               ? 0
               : static_cast<double>(response_ms.size()) * 1000.0 /
                     makespan_ms;
  }

  friend bool operator==(const SimResult& a, const SimResult& b) = default;
};

/// Fills the avg/min/max response fields from `response_ms`.
void SummarizeResponses(SimResult* result);

}  // namespace mdw

#endif  // MDW_SIM_METRICS_H_
