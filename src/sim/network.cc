#include "sim/network.h"

#include "common/check.h"

namespace mdw {

Network::Network(EventQueue* queue, double mbit_per_s)
    : queue_(queue), mbit_per_s_(mbit_per_s) {
  MDW_CHECK(queue_ != nullptr, "network needs an event queue");
  MDW_CHECK(mbit_per_s_ > 0, "network speed must be positive");
}

double Network::WireDelayMs(std::int64_t bytes) const {
  // bytes * 8 bits / (mbit/s * 1e6 bit/s) seconds -> ms
  return static_cast<double>(bytes) * 8.0 / (mbit_per_s_ * 1'000.0);
}

void Network::Transfer(std::int64_t bytes, std::function<void()> done) {
  ++messages_;
  bytes_sent_ += bytes;
  queue_->ScheduleAfter(WireDelayMs(bytes), std::move(done));
}

}  // namespace mdw
