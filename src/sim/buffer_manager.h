#ifndef MDW_SIM_BUFFER_MANAGER_H_
#define MDW_SIM_BUFFER_MANAGER_H_

#include <cstdint>

#include "common/lru_cache.h"

namespace mdw {

/// A simple LRU buffer pool, tracked at prefetch-granule granularity: each
/// cached entry is one granule read (a run of consecutive pages) and costs
/// its page count against the pool capacity. The paper maintains separate
/// pools for the fact table (1000 pages) and bitmaps (5000 pages) per
/// node; the Simulator instantiates two pools per node.
///
/// Granule-level (rather than page-level) bookkeeping is an accuracy
/// trade-off: the simulator always reads whole granules, so a granule is
/// the natural caching unit, and it keeps the hot path O(1).
///
/// This is a thin granule-keyed wrapper over the shared mdw::LruCache
/// eviction core (common/lru_cache.h) — the same core that backs the
/// storage layer's page-granular mdw::storage::BufferPool, so both pools
/// share one eviction implementation.
class BufferManager {
 public:
  explicit BufferManager(std::int64_t capacity_pages);

  /// Cache key for a granule: the caller packs (space, disk, start page).
  using Key = std::uint64_t;

  /// True (and LRU-touched) iff the granule is cached.
  bool Lookup(Key key);

  /// Inserts a granule of `pages` pages, evicting LRU entries as needed.
  /// Granules larger than the pool are admitted alone (capacity is then
  /// temporarily exceeded by that single entry, mirroring a scan that
  /// flushes the pool).
  void Insert(Key key, std::int64_t pages);

  /// Drops every cached granule and zeroes the counters, keeping the
  /// capacity — reuse the pool across simulation runs.
  void Reset();

  std::int64_t capacity_pages() const { return core_.capacity(); }
  std::int64_t used_pages() const { return core_.used(); }
  std::int64_t hits() const { return core_.hits(); }
  std::int64_t misses() const { return core_.misses(); }
  std::int64_t evictions() const { return core_.evictions(); }

  /// Packs a cache key from its parts.
  static Key MakeKey(int space, int disk, std::int64_t start_page) {
    return (static_cast<Key>(space) << 60) |
           (static_cast<Key>(static_cast<unsigned>(disk)) << 44) |
           static_cast<Key>(start_page);
  }

 private:
  /// Granule entries carry no payload; the key and weight are the state.
  struct Unit {};

  LruCache<Key, Unit> core_;
};

}  // namespace mdw

#endif  // MDW_SIM_BUFFER_MANAGER_H_
