#include "sim/resource.h"

#include "common/check.h"

namespace mdw {

FcfsServer::FcfsServer(EventQueue* queue, std::string name)
    : queue_(queue), name_(std::move(name)) {
  MDW_CHECK(queue_ != nullptr, "server needs an event queue");
}

void FcfsServer::Request(std::function<double()> demand_ms,
                         std::function<void()> done) {
  pending_.push_back(Pending{std::move(demand_ms), std::move(done)});
  if (!busy_) StartNext();
}

void FcfsServer::StartNext() {
  if (pending_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending job = std::move(pending_.front());
  pending_.pop_front();
  const double demand = job.demand_ms();
  MDW_CHECK(demand >= 0, "negative service demand");
  busy_ms_ += demand;
  queue_->ScheduleAfter(demand, [this, done = std::move(job.done)]() {
    ++completed_;
    done();
    StartNext();
  });
}

}  // namespace mdw
