#ifndef MDW_SIM_SIM_CONFIG_H_
#define MDW_SIM_SIM_CONFIG_H_

#include <cstdint>
#include <string>

#include "alloc/disk_allocation.h"
#include "sim/cpu.h"
#include "sim/disk.h"

namespace mdw {

/// PDBS architecture (paper Sec. 1): Shared Disk is the paper's focus
/// (every node reaches every disk, subqueries go anywhere); Shared
/// Nothing pins each disk to one owner node (disk % p) and subqueries
/// must run on the node owning their fragment's disk — no dynamic load
/// balancing (paper Sec. 2 and footnote 3).
enum class Architecture {
  kSharedDisk,
  kSharedNothing,
};

const char* ToString(Architecture a);

/// Full configuration of a SIMPAD run: hardware sizes, the device and CPU
/// parameters of paper Table 4, buffer/prefetch settings, and the
/// allocation/processing policies evaluated in Sec. 6.
struct SimConfig {
  // ---- architecture ----
  Architecture architecture = Architecture::kSharedDisk;

  // ---- hardware ----
  int num_disks = 100;
  int num_nodes = 20;
  /// Max concurrent tasks per node, t. A query's coordination itself
  /// occupies one task slot on its coordinator node (Sec. 5).
  int tasks_per_node = 4;
  /// Optional global cap on concurrent subqueries across all nodes
  /// (0 = unlimited); the x-axis control of Fig. 6.
  int global_task_cap = 0;

  // ---- devices ----
  DiskParams disk;
  CpuCosts cpu;
  double network_mbit_per_s = 100.0;
  std::int64_t small_message_bytes = 128;

  // ---- buffer manager ----
  std::int64_t fact_buffer_pages = 1'000;
  std::int64_t bitmap_buffer_pages = 5'000;
  int fact_prefetch_pages = 8;
  int bitmap_prefetch_pages = 5;

  // ---- policies ----
  /// Read the bitmap fragments of a subquery concurrently (Sec. 6.2)?
  bool parallel_bitmap_io = true;
  BitmapPlacement bitmap_placement = BitmapPlacement::kStaggered;
  /// Gap scheme of Sec. 4.6 (0 = plain round robin).
  int round_gap = 0;
  /// Fragments processed per subquery (Sec. 6.3 outlook; 1 = paper).
  int fragment_cluster_factor = 1;

  /// Data skew across fragments (Sec. 7 future work): per-fragment hit
  /// counts are scaled by Zipf-like weights with parameter theta in
  /// [0, 1); 0 = uniform (the paper's setting). Total hits are preserved.
  double fragment_skew_theta = 0.0;

  std::uint64_t seed = 42;

  /// Owner node of a disk under Shared Nothing.
  int OwnerNode(int disk) const { return disk % num_nodes; }

  /// Aborts on inconsistent settings.
  void Validate() const;

  /// Short human-readable summary ("d=100 p=20 t=4 ...").
  std::string Label() const;
};

}  // namespace mdw

#endif  // MDW_SIM_SIM_CONFIG_H_
