#ifndef MDW_SIM_SIMULATOR_H_
#define MDW_SIM_SIMULATOR_H_

#include <memory>
#include <span>
#include <vector>

#include "fragment/fragmentation.h"
#include "fragment/query_planner.h"
#include "fragment/star_query.h"
#include "sim/metrics.h"
#include "sim/sim_config.h"

namespace mdw {

/// SIMPAD: the Shared Disk PDBS simulator (paper Sec. 5). Wires up the
/// modelled hardware (disks with track-position seek model, 50-MIPS nodes,
/// contention-free network, per-node LRU buffers), derives the physical
/// data allocation from the fragmentation (round robin fact fragments,
/// staggered bitmap fragments), and executes star queries through
/// coordinator + subquery scheduling.
///
/// The fact data itself is never materialised: per-fragment hit counts and
/// page-access patterns are derived from query selectivities under the
/// paper's uniformity assumption, so simulations at the full APB-1 scale
/// (1.87 G rows) run in seconds. The functional query path is validated
/// separately against materialised data (core/mini_warehouse).
class Simulator {
 public:
  /// The simulator shares ownership of schema and fragmentation, so it
  /// can outlive the code that configured it (e.g. inside mdw::Warehouse).
  Simulator(std::shared_ptr<const StarSchema> schema,
            std::shared_ptr<const Fragmentation> fragmentation,
            SimConfig config);

  /// Compatibility: borrows caller-owned schema/fragmentation.
  Simulator(const StarSchema* schema, const Fragmentation* fragmentation,
            SimConfig config);

  /// Single-user mode (the paper's setting): queries are issued
  /// sequentially, each starting when the previous one terminated.
  /// Compatibility entry point — derives one plan per query internally.
  SimResult RunSingleUser(const std::vector<StarQuery>& queries) const;

  /// Plan-first single-user mode: consumes caller-derived plans (one per
  /// query, same order) instead of re-running the QueryPlanner. Every
  /// plan must stem from a fragmentation structurally equal to this
  /// simulator's over the same schema.
  SimResult RunSingleUser(std::span<const StarQuery> queries,
                          std::span<const QueryPlan> plans) const;

  /// Multi-user extension (paper future work): `streams` concurrent query
  /// streams; the query list is distributed round-robin over the streams,
  /// each stream running its sublist sequentially.
  /// Compatibility entry point — derives one plan per query internally.
  SimResult RunMultiUser(const std::vector<StarQuery>& queries,
                         int streams) const;

  /// Plan-first multi-user mode; see the plan-first RunSingleUser.
  SimResult RunMultiUser(std::span<const StarQuery> queries,
                         std::span<const QueryPlan> plans, int streams) const;

  const SimConfig& config() const { return config_; }
  const Fragmentation& fragmentation() const { return *fragmentation_; }

 private:
  /// Derives one plan per query for the compatibility entry points.
  std::vector<QueryPlan> PlanAll(std::span<const StarQuery> queries) const;

  SimResult Run(std::span<const StarQuery> queries,
                std::span<const QueryPlan> plans, int streams) const;

  std::shared_ptr<const StarSchema> schema_;
  std::shared_ptr<const Fragmentation> fragmentation_;
  SimConfig config_;
};

}  // namespace mdw

#endif  // MDW_SIM_SIMULATOR_H_
