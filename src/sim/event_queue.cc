#include "sim/event_queue.h"

#include "common/check.h"

namespace mdw {

void EventQueue::ScheduleAt(SimTime t, std::function<void()> fn) {
  MDW_CHECK(t >= now_, "cannot schedule events in the past");
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventQueue::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  MDW_CHECK(delay >= 0, "negative delay");
  ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::RunOne() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is safe here
  // because we pop immediately afterwards.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = event.time;
  ++events_processed_;
  event.fn();
  return true;
}

void EventQueue::RunUntilEmpty() {
  while (RunOne()) {
  }
}

}  // namespace mdw
