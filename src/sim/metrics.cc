#include "sim/metrics.h"

#include <algorithm>
#include <numeric>

namespace mdw {

void SummarizeResponses(SimResult* result) {
  const auto& r = result->response_ms;
  if (r.empty()) {
    result->avg_response_ms = 0;
    result->min_response_ms = 0;
    result->max_response_ms = 0;
    return;
  }
  result->avg_response_ms =
      std::accumulate(r.begin(), r.end(), 0.0) / static_cast<double>(r.size());
  result->min_response_ms = *std::min_element(r.begin(), r.end());
  result->max_response_ms = *std::max_element(r.begin(), r.end());
}

}  // namespace mdw
