#include "sim/sim_config.h"

#include <cstdio>

#include "common/check.h"

namespace mdw {

const char* ToString(Architecture a) {
  switch (a) {
    case Architecture::kSharedDisk: return "Shared Disk";
    case Architecture::kSharedNothing: return "Shared Nothing";
  }
  return "?";
}

void SimConfig::Validate() const {
  MDW_CHECK(num_disks >= 1, "need at least one disk");
  MDW_CHECK(num_nodes >= 1, "need at least one node");
  MDW_CHECK(tasks_per_node >= 1, "need at least one task per node");
  MDW_CHECK(global_task_cap >= 0, "global task cap must be non-negative");
  MDW_CHECK(fact_prefetch_pages >= 1 && bitmap_prefetch_pages >= 1,
            "prefetch granules must be positive");
  MDW_CHECK(fact_buffer_pages >= fact_prefetch_pages,
            "fact buffer smaller than one prefetch granule");
  MDW_CHECK(bitmap_buffer_pages >= bitmap_prefetch_pages,
            "bitmap buffer smaller than one prefetch granule");
  MDW_CHECK(fragment_cluster_factor >= 1,
            "cluster factor must be at least 1");
  MDW_CHECK(fragment_skew_theta >= 0.0 && fragment_skew_theta < 1.0,
            "skew theta must be in [0, 1)");
  if (architecture == Architecture::kSharedNothing) {
    MDW_CHECK(num_disks % num_nodes == 0,
              "Shared Nothing assumes disks evenly divided among nodes");
    MDW_CHECK(bitmap_placement != BitmapPlacement::kStaggered,
              "Shared Nothing cannot stagger bitmaps across nodes; use "
              "kSameNode or kSameDisk (paper footnote 3)");
  }
}

std::string SimConfig::Label() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "d=%d p=%d t=%d %s bitmap-io",
                num_disks, num_nodes, tasks_per_node,
                parallel_bitmap_io ? "parallel" : "serial");
  return buf;
}

}  // namespace mdw
