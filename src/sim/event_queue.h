#ifndef MDW_SIM_EVENT_QUEUE_H_
#define MDW_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mdw {

/// Simulated time in milliseconds.
using SimTime = double;

/// The discrete-event engine at the heart of the simulator — our
/// replacement for the commercial CSIM library the paper used. Events are
/// (time, callback) pairs executed in non-decreasing time order; equal
/// times break ties by insertion order so runs are fully deterministic.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now).
  void ScheduleAt(SimTime t, std::function<void()> fn);
  /// Schedules `fn` to run `delay` ms from now.
  void ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Runs the earliest event; returns false if the queue is empty.
  bool RunOne();
  /// Runs events until the queue drains.
  void RunUntilEmpty();

  std::int64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::int64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace mdw

#endif  // MDW_SIM_EVENT_QUEUE_H_
