#include "sim/subquery.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace mdw {

double SubqueryWork::SkewWeight(FragId id) const {
  if (skew_theta <= 0.0 || skew_fragments <= 1) return 1.0;
  const auto rank = static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(id) * 2654435761ULL) %
      static_cast<std::uint64_t>(skew_fragments));
  return skew_norm * std::pow(static_cast<double>(rank + 1), -skew_theta);
}

SubqueryWork MakeSubqueryWork(const QueryPlan& plan,
                              const SimConfig& config) {
  const Fragmentation& frag = plan.fragmentation();
  const StarSchema& schema = frag.schema();
  SubqueryWork work;

  work.fact_granule = config.fact_prefetch_pages;
  work.frag_pages = static_cast<std::int64_t>(
      std::ceil(frag.TuplesPerFragment() /
                static_cast<double>(schema.physical().TuplesPerPage())));
  work.fact_granules_total = CeilDiv(work.frag_pages, work.fact_granule);
  work.hits_per_fragment = plan.HitsPerFragment();
  work.needs_bitmaps = plan.NeedsBitmaps();

  if (work.needs_bitmaps) {
    const double hit_granules = IoCostModel::ExpectedGroupsHit(
        static_cast<double>(work.fact_granules_total),
        work.hits_per_fragment);
    work.fact_granules_expected = hit_granules;
  } else {
    work.fact_granules_expected =
        static_cast<double>(work.fact_granules_total);
  }

  work.bitmaps = plan.BitmapsPerFragment();
  work.bitmap_frag_pages_raw = frag.BitmapFragmentPages();
  work.bitmap_pages = static_cast<std::int64_t>(
      std::max(1.0, std::ceil(work.bitmap_frag_pages_raw)));
  work.configured_bitmap_granule = config.bitmap_prefetch_pages;
  work.bitmap_granule =
      std::min<std::int64_t>(config.bitmap_prefetch_pages, work.bitmap_pages);
  work.bitmap_ops_per_bitmap =
      CeilDiv(work.bitmap_pages, work.bitmap_granule);

  work.skew_theta = config.fragment_skew_theta;
  work.skew_fragments = frag.FragmentCount();
  if (work.skew_theta > 0.0 && work.skew_fragments > 1) {
    // Normalise so the weights average to 1 over all fragments.
    double sum = 0;
    for (std::int64_t r = 0; r < work.skew_fragments; ++r) {
      sum += std::pow(static_cast<double>(r + 1), -work.skew_theta);
    }
    work.skew_norm = static_cast<double>(work.skew_fragments) / sum;
  }
  return work;
}

SubqueryExec::SubqueryExec(SimContext* ctx, const SubqueryWork* work,
                           std::vector<FragId> fragments, int node,
                           std::function<void()> done)
    : ctx_(ctx),
      work_(work),
      fragments_(std::move(fragments)),
      node_(node),
      done_(std::move(done)) {
  MDW_CHECK(!fragments_.empty(), "subquery needs at least one fragment");
}

std::int64_t SubqueryExec::ClusterBitmapPages() const {
  return static_cast<std::int64_t>(
      std::max(1.0, std::ceil(work_->bitmap_frag_pages_raw *
                              static_cast<double>(fragments_.size()))));
}

std::int64_t SubqueryExec::ClusterBitmapGranule() const {
  return std::min<std::int64_t>(work_->configured_bitmap_granule,
                                ClusterBitmapPages());
}

std::int64_t SubqueryExec::ClusterBitmapOps() const {
  return CeilDiv(ClusterBitmapPages(), ClusterBitmapGranule());
}

void SubqueryExec::Start() {
  ++ctx_->subqueries_started;
  ctx_->cpu(node_).Execute(
      static_cast<double>(ctx_->config->cpu.initiate_subquery), [this]() {
        if (work_->bitmaps > 0) {
          BitmapPhase();
        } else {
          FactPhase();
        }
      });
}

void SubqueryExec::BitmapPhase() {
  // All fragments of the subquery share one merged bitmap extent per
  // bitmap (identical to the per-fragment extent when cluster factor 1).
  const FragId frag = fragments_.front();
  const std::int64_t ops_per_bitmap = ClusterBitmapOps();
  const std::int64_t granule = ClusterBitmapGranule();
  const std::int64_t pages_total = ClusterBitmapPages();
  const int total_ops =
      work_->bitmaps * static_cast<int>(ops_per_bitmap);
  bitmap_ops_outstanding_ = total_ops;
  if (ctx_->config->parallel_bitmap_io) {
    // Staggered allocation places the bitmap fragments of one fact
    // fragment on distinct consecutive disks; issue all reads at once.
    for (int b = 0; b < work_->bitmaps; ++b) {
      const int disk = ctx_->allocation->DiskOfBitmapFragment(frag, b);
      const std::int64_t extent_start =
          ctx_->fact_region_pages +
          ctx_->allocation->BitmapExtentOrdinal(frag, b) *
              ctx_->bitmap_extent_pages;
      for (std::int64_t op = 0; op < ops_per_bitmap; ++op) {
        const std::int64_t start = extent_start + op * granule;
        const std::int64_t pages =
            std::min(granule, pages_total - op * granule);
        BufferedRead(
            /*space=*/1, disk, start, pages,
            (*ctx_->bitmap_buffers)[static_cast<std::size_t>(node_)].get(),
            [this, pages]() {
              const auto& costs = ctx_->config->cpu;
              ctx_->cpu(node_).Execute(
                  static_cast<double>(pages) *
                      static_cast<double>(costs.read_page +
                                          costs.process_bitmap_page),
                  [this]() {
                    if (--bitmap_ops_outstanding_ == 0) FactPhase();
                  });
            });
      }
    }
  } else {
    SerialBitmapOp(0);
  }
}

void SubqueryExec::SerialBitmapOp(int op_index) {
  const std::int64_t ops_per_bitmap = ClusterBitmapOps();
  const std::int64_t granule = ClusterBitmapGranule();
  const std::int64_t pages_total = ClusterBitmapPages();
  const int total_ops =
      work_->bitmaps * static_cast<int>(ops_per_bitmap);
  if (op_index == total_ops) {
    FactPhase();
    return;
  }
  const FragId frag = fragments_.front();
  const int b = op_index / static_cast<int>(ops_per_bitmap);
  const std::int64_t op = op_index % ops_per_bitmap;
  const int disk = ctx_->allocation->DiskOfBitmapFragment(frag, b);
  const std::int64_t extent_start =
      ctx_->fact_region_pages +
      ctx_->allocation->BitmapExtentOrdinal(frag, b) *
          ctx_->bitmap_extent_pages;
  const std::int64_t start = extent_start + op * granule;
  const std::int64_t pages = std::min(granule, pages_total - op * granule);
  BufferedRead(
      /*space=*/1, disk, start, pages,
      (*ctx_->bitmap_buffers)[static_cast<std::size_t>(node_)].get(),
      [this, pages, op_index]() {
        const auto& costs = ctx_->config->cpu;
        ctx_->cpu(node_).Execute(
            static_cast<double>(pages) *
                static_cast<double>(costs.read_page +
                                    costs.process_bitmap_page),
            [this, op_index]() { SerialBitmapOp(op_index + 1); });
      });
}

void SubqueryExec::FactPhase() {
  const double weight = work_->SkewWeight(fragments_[current_]);
  const double fragment_hits = work_->hits_per_fragment * weight;
  if (work_->needs_bitmaps) {
    // Sample the number of granules containing hits: expectation with
    // randomised rounding so totals match the analytical model. Under
    // skew the expectation is re-derived per fragment.
    const double expected =
        weight == 1.0
            ? work_->fact_granules_expected
            : IoCostModel::ExpectedGroupsHit(
                  static_cast<double>(work_->fact_granules_total),
                  fragment_hits);
    const auto base = static_cast<std::int64_t>(std::floor(expected));
    const double frac = expected - static_cast<double>(base);
    fact_granules_to_read_ =
        base + (ctx_->rng->UniformReal() < frac ? 1 : 0);
    if (fact_granules_to_read_ > work_->fact_granules_total) {
      fact_granules_to_read_ = work_->fact_granules_total;
    }
  } else {
    fact_granules_to_read_ = work_->fact_granules_total;
  }
  hits_per_granule_ =
      fact_granules_to_read_ == 0
          ? 0
          : fragment_hits / static_cast<double>(fact_granules_to_read_);
  FactGranule(0);
}

void SubqueryExec::FactGranule(std::int64_t i) {
  if (i == fact_granules_to_read_) {
    NextFragmentOrFinish();
    return;
  }
  const FragId frag = fragments_[current_];
  const int disk = ctx_->allocation->DiskOfFragment(frag);
  // The i-th granule read is spread evenly over the fragment's granules
  // (hits are uniform), preserving ascending on-disk order.
  const std::int64_t granule_index =
      (fact_granules_to_read_ == work_->fact_granules_total)
          ? i
          : i * work_->fact_granules_total / fact_granules_to_read_;
  const std::int64_t extent_start =
      ctx_->allocation->FactExtentOrdinal(frag) * ctx_->frag_extent_pages;
  const std::int64_t start =
      extent_start + granule_index * work_->fact_granule;
  const std::int64_t pages =
      std::min(work_->fact_granule,
               work_->frag_pages - granule_index * work_->fact_granule);
  BufferedRead(
      /*space=*/0, disk, start, pages,
      (*ctx_->fact_buffers)[static_cast<std::size_t>(node_)].get(),
      [this, pages, i]() {
        const auto& costs = ctx_->config->cpu;
        const double instructions =
            static_cast<double>(pages) *
                static_cast<double>(costs.read_page) +
            hits_per_granule_ *
                static_cast<double>(costs.extract_row + costs.aggregate_row);
        ctx_->cpu(node_).Execute(instructions,
                                 [this, i]() { FactGranule(i + 1); });
      });
}

void SubqueryExec::NextFragmentOrFinish() {
  if (++current_ < fragments_.size()) {
    // The bitmap extents were already read for the whole cluster; only
    // the next fragment's fact pages remain.
    FactPhase();
    return;
  }
  Finish();
}

void SubqueryExec::Finish() {
  ctx_->cpu(node_).Execute(
      static_cast<double>(ctx_->config->cpu.terminate_subquery),
      [this]() {
        auto done = std::move(done_);
        delete this;
        done();
      });
}

void SubqueryExec::BufferedRead(int space, int disk, std::int64_t start_page,
                                std::int64_t pages, BufferManager* pool,
                                std::function<void()> done) {
  const BufferManager::Key key =
      BufferManager::MakeKey(space, disk, start_page);
  if (pool->Lookup(key)) {
    // Buffer hit: no disk access; deliver asynchronously to keep the
    // control flow uniform.
    ctx_->queue->ScheduleAfter(0, std::move(done));
    return;
  }
  ctx_->disk(disk).Read(
      start_page, pages,
      [pool, key, pages, done = std::move(done)]() {
        pool->Insert(key, pages);
        done();
      });
}

}  // namespace mdw
