#ifndef MDW_COMMON_CHECK_H_
#define MDW_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// MDW_CHECK(cond, msg): invariant check that aborts with a diagnostic.
/// The library is exception-free; programming errors and violated
/// preconditions terminate the process (Google style: crash early).
#define MDW_CHECK(cond, msg)                                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "MDW_CHECK failed at %s:%d: %s\n  %s\n",          \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // MDW_COMMON_CHECK_H_
