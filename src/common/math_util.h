#ifndef MDW_COMMON_MATH_UTIL_H_
#define MDW_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <numeric>

namespace mdw {

/// Integer ceiling division for non-negative operands.
constexpr std::int64_t CeilDiv(std::int64_t numerator,
                               std::int64_t denominator) {
  return (numerator + denominator - 1) / denominator;
}

/// Number of bits needed to distinguish `n` values (ceil(log2(n)); 0 for
/// n <= 1). This is the per-level field width of the encoded bitmap index.
constexpr int BitsFor(std::int64_t n) {
  int bits = 0;
  std::int64_t capacity = 1;
  while (capacity < n) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

/// True iff `n` is prime. Used by the declustering analysis (Sec. 4.6
/// recommends a prime number of disks to avoid gcd clustering).
constexpr bool IsPrime(std::int64_t n) {
  if (n < 2) return false;
  for (std::int64_t f = 2; f * f <= n; ++f) {
    if (n % f == 0) return false;
  }
  return true;
}

/// Smallest prime >= n.
constexpr std::int64_t NextPrime(std::int64_t n) {
  std::int64_t candidate = n < 2 ? 2 : n;
  while (!IsPrime(candidate)) ++candidate;
  return candidate;
}

}  // namespace mdw

#endif  // MDW_COMMON_MATH_UTIL_H_
