#ifndef MDW_COMMON_BORROWED_H_
#define MDW_COMMON_BORROWED_H_

#include <memory>

namespace mdw {

/// Wraps a caller-owned pointer in a non-owning shared_ptr (empty control
/// block, no deleter). Lets APIs that keep their collaborators alive via
/// shared_ptr also accept objects whose lifetime the caller manages, which
/// is how the pre-façade raw-pointer constructors stay source compatible.
template <typename T>
std::shared_ptr<const T> Borrowed(const T* ptr) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>(), ptr);
}

}  // namespace mdw

#endif  // MDW_COMMON_BORROWED_H_
