#ifndef MDW_COMMON_CANCELLATION_H_
#define MDW_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace mdw {

/// Time source for query deadlines. Two modes:
///   - the default *steady* clock: NowMicros() reads the process
///     monotonic clock, so deadlines are wall-time budgets;
///   - a *virtual* clock (DeadlineClock::Virtual()): NowMicros() is a
///     manually advanced counter. The scheduler and the deterministic
///     tests use virtual time so "deadline expired" is a pure function
///     of the event sequence, independent of machine speed.
/// Handles are cheap copies sharing the same underlying counter; a
/// token built from a clock keeps the counter alive.
class DeadlineClock {
 public:
  /// Steady (wall) clock.
  DeadlineClock() = default;

  /// Manually advanced clock starting at 0 microseconds.
  static DeadlineClock Virtual();

  bool is_virtual() const { return vnow_ != nullptr; }

  /// Microseconds on this clock: monotonic process time (steady mode)
  /// or the advanced counter (virtual mode).
  std::int64_t NowMicros() const;

  /// Advances a virtual clock; aborts on a steady clock.
  void AdvanceMicros(std::int64_t delta_us) const;

 private:
  std::shared_ptr<std::atomic<std::int64_t>> vnow_;  // null = steady
};

/// Cooperative cancellation for in-flight queries.
///
/// A token is a cheap copyable handle to shared tripwire state. The
/// default-constructed token is *unarmed*: it holds no state, every
/// ShouldStop() is a single null-pointer check, and RemainingMicros()
/// reports an unbounded budget — so the per-chunk checkpoints threaded
/// through the executor are free unless a caller actually arms a
/// deadline or keeps a handle around to Cancel().
///
/// An armed token trips for one of two reasons, and remembers which:
///   - Cancel(): the caller explicitly abandoned the query
///     (StatusCode::kCancelled), or
///   - an attached deadline expired on its clock
///     (StatusCode::kDeadlineExceeded).
/// Explicit cancellation wins over a concurrently expiring deadline: a
/// token that observed Cancel() stays kCancelled.
///
/// Checking is cooperative: nothing interrupts a running kernel. The
/// executor polls ShouldStop() at chunk boundaries and before expensive
/// waits (retry backoff in the buffer pool), abandons remaining work,
/// and surfaces CancelStatus() as the query's typed status — the
/// aggregate is disengaged exactly like an I/O failure, so a tripped
/// token can never yield a partial sum.
class CancellationToken {
 public:
  /// Unarmed token: never trips, costs one null check per poll.
  CancellationToken() = default;

  /// Armed token with no deadline: trips only via Cancel().
  static CancellationToken Manual();

  /// Armed token that trips once `clock` passes `deadline_us` (checked
  /// lazily at poll time — no timer thread), or once `parent` trips:
  /// linking stacks a per-query budget under an outer cancel scope, and
  /// an unarmed parent (the default) links nothing. Cancel() on the
  /// child never propagates up.
  static CancellationToken WithDeadlineMicros(
      std::int64_t deadline_us, DeadlineClock clock = {},
      const CancellationToken& parent = {});

  /// Armed token that trips `timeout_us` from now on `clock` (or when
  /// `parent` trips).
  static CancellationToken WithTimeoutMicros(
      std::int64_t timeout_us, DeadlineClock clock = {},
      const CancellationToken& parent = {}) {
    return WithDeadlineMicros(clock.NowMicros() + timeout_us, clock, parent);
  }

  bool armed() const { return state_ != nullptr; }

  /// Trips the token with kCancelled. Safe to call from any thread, and
  /// on an unarmed token (no-op).
  void Cancel() const;

  /// True once the token has tripped (explicit cancel or expired
  /// deadline). The hot-path poll: unarmed tokens return false after an
  /// inline null check; armed tokens pay one relaxed atomic load per
  /// link, plus a clock read only while a not-yet-tripped deadline is
  /// attached.
  bool ShouldStop() const {
    return state_ != nullptr && ShouldStopSlow();
  }

  /// The typed status to surface for a tripped token: kCancelled or
  /// kDeadlineExceeded. Ok when the token has not (yet) tripped.
  Status CancelStatus() const;

  /// Remaining deadline budget in microseconds: INT64_MAX when no
  /// deadline is attached (incl. unarmed), 0 when tripped or expired.
  /// Retry/backoff loops cap their sleeps by this so a deadlined query
  /// can never sleep past its own budget.
  std::int64_t RemainingMicros() const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<bool> deadline_hit{false};
    bool has_deadline = false;
    std::int64_t deadline_us = 0;
    DeadlineClock clock;
    std::shared_ptr<State> parent;  ///< linked outer scope (may be null)
  };
  explicit CancellationToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  /// Armed-token half of ShouldStop(): walks the link chain.
  bool ShouldStopSlow() const;

  std::shared_ptr<State> state_;
};

}  // namespace mdw

#endif  // MDW_COMMON_CANCELLATION_H_
