#ifndef MDW_COMMON_RNG_H_
#define MDW_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>

namespace mdw {

/// Deterministic pseudo-random source used across the simulator and the
/// workload generator. A thin wrapper over std::mt19937_64 so that all
/// randomness in the repository flows through one seeded interface and
/// experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t Uniform(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Zipf-distributed value in [0, n) with skew parameter `theta` in [0, 1).
  /// theta == 0 degenerates to uniform. Used by the data-skew extension
  /// (the paper lists skew effects as future work).
  std::int64_t Zipf(std::int64_t n, double theta) {
    if (theta <= 0.0) return Uniform(0, n - 1);
    // Inverse-CDF on the continuous approximation of the Zipf distribution.
    const double u = UniformReal();
    const double exponent = 1.0 - theta;
    const double value = static_cast<double>(n) *
                         std::pow(u, 1.0 / exponent) /
                         std::pow(1.0, 1.0 / exponent);
    auto result = static_cast<std::int64_t>(value);
    if (result >= n) result = n - 1;
    if (result < 0) result = 0;
    return result;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mdw

#endif  // MDW_COMMON_RNG_H_
