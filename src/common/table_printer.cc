#include "common/table_printer.h"

#include <cstdio>

#include "common/check.h"

namespace mdw {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  MDW_CHECK(cells.size() == header_.size(),
            "row must have as many cells as the header");
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  for (std::size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Int(std::int64_t value) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%lld",
                static_cast<long long>(value < 0 ? -value : value));
  std::string raw = digits;
  std::string grouped;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) grouped.push_back(',');
    grouped.push_back(*it);
    ++count;
  }
  if (value < 0) grouped.push_back('-');
  return {grouped.rbegin(), grouped.rend()};
}

}  // namespace mdw
