#include "common/crc32c.h"

#include <array>
#include <cstring>

namespace mdw {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

// Slicing-by-8 tables: table[0] is the classic byte table, table[k]
// advances a byte's contribution k more bytes through the register, so
// eight independent lookups retire eight message bytes per step instead
// of chaining eight dependent single-byte updates — the chained form
// costs ~4 cycles/byte of pure latency, far too slow for a 4 KiB page
// per buffer-pool fault.
constexpr std::array<std::array<std::uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      tables[k][i] =
          tables[0][tables[k - 1][i] & 0xFFu] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables = MakeTables();

std::uint32_t Crc32cSoftware(const unsigned char* p, std::size_t len,
                             std::uint32_t crc) {
  while (len >= 8) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    v ^= crc;
    crc = kTables[7][v & 0xFFu] ^ kTables[6][(v >> 8) & 0xFFu] ^
          kTables[5][(v >> 16) & 0xFFu] ^ kTables[4][(v >> 24) & 0xFFu] ^
          kTables[3][(v >> 32) & 0xFFu] ^ kTables[2][(v >> 40) & 0xFFu] ^
          kTables[1][(v >> 48) & 0xFFu] ^ kTables[0][(v >> 56) & 0xFFu];
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = kTables[0][(crc ^ *p) & 0xFFu] ^ (crc >> 8);
    ++p;
    --len;
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MDW_CRC32C_HW 1

// SSE4.2 CRC32 instruction path, dispatched at runtime so the binary
// still runs on CPUs without it. The target attribute scopes the ISA
// extension to this one function — no global -msse4.2 needed.
__attribute__((target("sse4.2"))) std::uint32_t Crc32cHardware(
    const unsigned char* p, std::size_t len, std::uint32_t crc) {
  std::uint64_t c = crc;
  while (len >= 8) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    c = __builtin_ia32_crc32di(c, v);
    p += 8;
    len -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(c);
  while (len > 0) {
    c32 = __builtin_ia32_crc32qi(c32, *p);
    ++p;
    --len;
  }
  return c32;
}

// Even the hardware instruction is latency-bound when chained: crc32q
// retires one per cycle but takes ~3 cycles, so a single serial chain
// over a 4 KiB page costs ~1.5k cycles. Splitting the page into three
// independent lanes runs three chains in parallel and recombines them
// with the linear "append N zero bytes" operator (the zlib
// crc32_combine construction): if crcA is the register after lane A,
// appending lane B of length L gives M_L·crcA ^ crcB, where M_L is a
// 32x32 GF(2) matrix that depends only on L.
std::uint32_t Gf2MatTimes(const std::uint32_t* mat, std::uint32_t vec) {
  std::uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1u) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void Gf2MatSquare(std::uint32_t* square, const std::uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = Gf2MatTimes(mat, mat[n]);
}

// CRC register after appending `len` zero bytes to a register holding
// `crc`, by repeated squaring of the one-zero-bit operator.
std::uint32_t ShiftZeros(std::uint32_t crc, std::size_t len) {
  std::uint32_t even[32];
  std::uint32_t odd[32];
  odd[0] = kPoly;
  std::uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  Gf2MatSquare(even, odd);  // two zero bits
  Gf2MatSquare(odd, even);  // four zero bits
  do {
    Gf2MatSquare(even, odd);  // first pass: one zero byte
    if (len & 1u) crc = Gf2MatTimes(even, crc);
    len >>= 1;
    if (len == 0) break;
    Gf2MatSquare(odd, even);
    if (len & 1u) crc = Gf2MatTimes(odd, crc);
    len >>= 1;
  } while (len != 0);
  return crc;
}

// 4096 = 1368 + 1368 + 1360; the combine matrices are fixed by those
// lane lengths, built once.
struct LaneCombine {
  std::uint32_t append_1368[32];
  std::uint32_t append_1360[32];
};

LaneCombine MakeLaneCombine() {
  LaneCombine lc;
  for (int i = 0; i < 32; ++i) {
    lc.append_1368[i] = ShiftZeros(1u << i, 1368);
    lc.append_1360[i] = ShiftZeros(1u << i, 1360);
  }
  return lc;
}

__attribute__((target("sse4.2"))) std::uint32_t Crc32cHardware4K(
    const unsigned char* p, std::uint32_t crc) {
  static const LaneCombine kLanes = MakeLaneCombine();
  const unsigned char* a = p;         // 1368 bytes, seeded with crc
  const unsigned char* b = p + 1368;  // 1368 bytes, seeded with 0
  const unsigned char* c = p + 2736;  // 1360 bytes, seeded with 0
  std::uint64_t ca = crc;
  std::uint64_t cb = 0;
  std::uint64_t cc = 0;
  for (int i = 0; i < 170; ++i) {
    std::uint64_t va;
    std::uint64_t vb;
    std::uint64_t vc;
    std::memcpy(&va, a, 8);
    std::memcpy(&vb, b, 8);
    std::memcpy(&vc, c, 8);
    ca = __builtin_ia32_crc32di(ca, va);
    cb = __builtin_ia32_crc32di(cb, vb);
    cc = __builtin_ia32_crc32di(cc, vc);
    a += 8;
    b += 8;
    c += 8;
  }
  std::uint64_t va;
  std::uint64_t vb;
  std::memcpy(&va, a, 8);
  std::memcpy(&vb, b, 8);
  ca = __builtin_ia32_crc32di(ca, va);
  cb = __builtin_ia32_crc32di(cb, vb);
  std::uint32_t out =
      Gf2MatTimes(kLanes.append_1368, static_cast<std::uint32_t>(ca)) ^
      static_cast<std::uint32_t>(cb);
  return Gf2MatTimes(kLanes.append_1360, out) ^ static_cast<std::uint32_t>(cc);
}
#endif

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t len, std::uint32_t crc) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
#ifdef MDW_CRC32C_HW
  static const bool kHasSse42 = __builtin_cpu_supports("sse4.2") != 0;
  if (kHasSse42) {
    // Page-sized inputs (the dominant case: every fault-in verification
    // and every write-side page checksum) take the three-lane path.
    while (len >= 4096) {
      crc = Crc32cHardware4K(p, crc);
      p += 4096;
      len -= 4096;
    }
    return ~Crc32cHardware(p, len, crc);
  }
#endif
  return ~Crc32cSoftware(p, len, crc);
}

}  // namespace mdw
