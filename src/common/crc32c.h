#ifndef MDW_COMMON_CRC32C_H_
#define MDW_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace mdw {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected form 0x82F63B78)
/// over `len` bytes starting at `data`, seeded by `crc` (pass 0 for a
/// fresh checksum, or a previous return value to continue one). Pages
/// are checksummed on every buffer-pool fault-in, so this is fast: the
/// SSE4.2 crc32 instruction where the CPU has it (runtime dispatch),
/// slicing-by-8 tables otherwise — never the latency-bound byte-at-a-
/// time chain.
std::uint32_t Crc32c(const void* data, std::size_t len,
                     std::uint32_t crc = 0);

}  // namespace mdw

#endif  // MDW_COMMON_CRC32C_H_
