#ifndef MDW_COMMON_THREAD_POOL_H_
#define MDW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"

namespace mdw {

/// A small fixed-size worker pool for partition-parallel execution (the
/// paper's processing model: one warehouse query fans out into independent
/// fragment subqueries processed concurrently by the PEs). The pool is the
/// process-side analogue: `ParallelFor` distributes independent task
/// indices dynamically over the workers and the calling thread.
///
/// Determinism contract: ParallelFor guarantees every index in [0, n) is
/// executed exactly once; callers that accumulate into per-index slots and
/// merge in index order get results independent of the worker count and of
/// scheduling.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (must be >= 1). Note that ParallelFor
  /// also runs tasks on the calling thread, so a pool of size 1 already
  /// gives two lanes of execution.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Maps a WarehouseConfig-style degree to an actual worker count:
  /// 0 means "use the hardware" (std::thread::hardware_concurrency,
  /// at least 1); any positive value is taken as-is.
  static int ResolveWorkers(int num_workers);

  /// Runs fn(i) for every i in [0, n) exactly once, distributing indices
  /// dynamically over the pool's workers plus the calling thread, and
  /// returns when all n invocations have finished. fn must be safe to
  /// invoke concurrently for distinct indices. Reentrant calls from inside
  /// a pool task degrade to a serial loop on the calling thread, so nested
  /// use cannot deadlock the pool.
  void ParallelFor(std::int64_t n,
                   const std::function<void(std::int64_t)>& fn) const;

  /// Cancellable ParallelFor: polls `cancel` before every index claim.
  /// Once the token trips, no further fn invocations start (in-flight
  /// ones run to completion — cancellation is cooperative). Returns true
  /// iff every index in [0, n) actually ran; false means at least one
  /// index was abandoned, so per-index partials are incomplete and the
  /// caller must discard them (the determinism contract covers only
  /// complete runs). An unarmed token never trips: behaviour and cost
  /// match the plain overload up to one null check per index.
  bool ParallelFor(std::int64_t n,
                   const std::function<void(std::int64_t)>& fn,
                   const CancellationToken& cancel) const;

  /// Affinity scheduling with idle-worker stealing: `queue_sizes[q]` items
  /// sit in queue q; fn(q, i) is invoked exactly once for every queue q and
  /// item i in [0, queue_sizes[q]). Each parallel lane first claims an
  /// unowned queue (round-robin over lanes, so with as many lanes as
  /// queues every queue gets a dedicated lane) and drains it to
  /// completion — the affinity phase — then steals items from the
  /// remaining queues in cyclic order until nothing is left. Used by the
  /// sharded executor: one queue per shard keeps a worker on one shard's
  /// rows while it lasts, stealing only when its shard runs dry, so skewed
  /// shards never idle the rest of the pool. Same exactly-once and
  /// reentrancy guarantees as ParallelFor; determinism is the caller's
  /// merge discipline (per-item slots, fixed merge order).
  void ParallelForQueues(
      const std::vector<std::int64_t>& queue_sizes,
      const std::function<void(int, std::int64_t)>& fn) const;

  /// Cancellable ParallelForQueues; same tripped-token semantics and
  /// all-items-ran return value as the cancellable ParallelFor.
  bool ParallelForQueues(
      const std::vector<std::int64_t>& queue_sizes,
      const std::function<void(int, std::int64_t)>& fn,
      const CancellationToken& cancel) const;

 private:
  void WorkerLoop();
  /// Shared scaffolding of the ParallelFor variants: enqueues up to
  /// `total - 1` helper tasks running `drain` (which must keep claiming
  /// items until none are left), wakes workers, and runs `drain` on the
  /// calling thread too. Completion is the caller's to await — drain
  /// closures own the shared state, so stragglers outlive the call
  /// safely.
  void RunDrain(std::int64_t total,
                const std::function<void()>& drain) const;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mdw

#endif  // MDW_COMMON_THREAD_POOL_H_
