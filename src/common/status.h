#ifndef MDW_COMMON_STATUS_H_
#define MDW_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace mdw {

/// Outcome class of a fallible storage/execution operation. The library
/// stays exception-free: recoverable failures travel as Status values,
/// while construction-time invariant violations keep aborting through
/// MDW_CHECK (a store that cannot even be opened has no caller able to
/// degrade gracefully).
enum class StatusCode {
  kOk = 0,
  /// The underlying read failed (EIO, unexpected EOF, short file). A
  /// retry may succeed — transient by assumption.
  kIoError = 1,
  /// The bytes arrived but fail their page checksum — the data cannot be
  /// trusted. A retry may still succeed when the corruption happened in
  /// flight rather than at rest.
  kCorruption = 2,
  /// The query's deadline expired before the work finished. The partial
  /// work is abandoned — like kIoError/kCorruption, the aggregate is
  /// disengaged so a late query can never surface a truncated sum.
  kDeadlineExceeded = 3,
  /// The caller cancelled the query explicitly (not via a deadline).
  /// Same abandonment semantics as kDeadlineExceeded.
  kCancelled = 4,
  /// The request itself is malformed (unparsable SQL, unknown dimension
  /// or level, out-of-range literal). Retrying the identical request can
  /// never succeed; the message carries the parser/planner diagnostic.
  kInvalidArgument = 5,
};

inline const char* ToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kCorruption: return "corruption";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kInvalidArgument: return "invalid-argument";
  }
  return "?";
}

/// A cheap value-type error: code + human-readable message. Default
/// constructed = ok. Participates in defaulted operator== of the records
/// that embed it (two ok statuses always compare equal — the message is
/// empty).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    return ok() ? "ok" : std::string(mdw::ToString(code_)) + ": " + message_;
  }

  /// Keeps `*this` when already failed, else adopts `other` — the fixed
  /// first-error-wins merge used when partials combine in deterministic
  /// order.
  void Update(const Status& other) {
    if (ok() && !other.ok()) *this = other;
  }

  friend bool operator==(const Status& a, const Status& b) = default;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or a non-ok Status. Minimal by design (no exceptions,
/// supports move-only payloads like BufferPool::PageRef); value access on
/// a failed StatusOr aborts via MDW_CHECK.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    MDW_CHECK(!status_.ok(), "StatusOr constructed from an ok Status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    MDW_CHECK(ok(), "value() on a failed StatusOr");
    return *value_;
  }
  const T& value() const& {
    MDW_CHECK(ok(), "value() on a failed StatusOr");
    return *value_;
  }
  T&& value() && {
    MDW_CHECK(ok(), "value() on a failed StatusOr");
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mdw

#endif  // MDW_COMMON_STATUS_H_
