#ifndef MDW_COMMON_LRU_CACHE_H_
#define MDW_COMMON_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace mdw {

/// The weighted LRU eviction core shared by the simulator's
/// granule-level BufferManager and the storage layer's page-granular
/// BufferPool: a recency list over {key -> value} entries, each costing
/// `weight` units against `capacity`, with hit/miss/eviction counters.
///
/// The cache never evicts on its own — callers run EvictToFit() before
/// Insert() so *they* decide victim eligibility (the BufferPool must
/// skip pinned frames; the simulator evicts anything). Entries live in
/// std::list nodes, so Value pointers returned by Get/Peek/Insert stay
/// valid until the entry is erased or the cache is reset.
///
/// Not thread-safe; callers layer their own locking (the BufferPool) or
/// run single-threaded (the simulator's event loop).
template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(std::int64_t capacity) : capacity_(capacity) {}

  std::int64_t capacity() const { return capacity_; }
  std::int64_t used() const { return used_; }
  std::int64_t size() const { return static_cast<std::int64_t>(map_.size()); }
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  std::int64_t evictions() const { return evictions_; }

  /// Value of `key`, LRU-touched and counted as a hit (miss when
  /// absent); nullptr on miss.
  Value* Get(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->value;
  }

  /// Value of `key` without touching recency or counters; nullptr when
  /// absent.
  Value* Peek(const Key& key) {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second->value;
  }

  /// Moves `key` to the most-recently-used position without counting a
  /// hit (insert-path refreshes); no-op when absent.
  void Touch(const Key& key) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      entries_.splice(entries_.begin(), entries_, it->second);
    }
  }

  /// Inserts an absent key at the most-recently-used position, charging
  /// `weight`. Does NOT evict — run EvictToFit(weight, ...) first; an
  /// insert that still exceeds capacity is admitted anyway (the
  /// oversized-granule semantics of the simulator's pool). Returns the
  /// stored value; the key must not already be present.
  Value* Insert(const Key& key, Value value, std::int64_t weight) {
    entries_.push_front(Entry{key, std::move(value), weight});
    map_.emplace(key, entries_.begin());
    used_ += weight;
    return &entries_.front().value;
  }

  /// Evicts least-recently-used entries for which `evictable(value)`
  /// holds until `used() + incoming <= capacity()` or no evictable entry
  /// remains; `on_evict(key, value)` runs for each victim before it is
  /// destroyed. Returns true iff the incoming weight fits afterwards.
  template <typename Evictable, typename OnEvict>
  bool EvictToFit(std::int64_t incoming, const Evictable& evictable,
                  const OnEvict& on_evict) {
    auto it = entries_.end();
    while (used_ + incoming > capacity_ && it != entries_.begin()) {
      auto victim = std::prev(it);
      if (evictable(victim->value)) {
        on_evict(victim->key, victim->value);
        used_ -= victim->weight;
        map_.erase(victim->key);
        entries_.erase(victim);  // `it` stays valid: list iterators are stable
        ++evictions_;
      } else {
        it = victim;  // pinned/ineligible: skip toward the MRU end
      }
    }
    return used_ + incoming <= capacity_;
  }

  /// Removes `key` if present (no eviction counted).
  void Erase(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return;
    used_ -= it->second->weight;
    entries_.erase(it->second);
    map_.erase(it);
  }

  /// Drops every entry and zeroes the counters, keeping the capacity —
  /// reuse across runs without reconstructing.
  void Reset() {
    entries_.clear();
    map_.clear();
    used_ = 0;
    hits_ = misses_ = evictions_ = 0;
  }

 private:
  struct Entry {
    Key key;
    Value value;
    std::int64_t weight;
  };

  std::int64_t capacity_;
  std::int64_t used_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
  std::list<Entry> entries_;  ///< front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator> map_;
};

}  // namespace mdw

#endif  // MDW_COMMON_LRU_CACHE_H_
