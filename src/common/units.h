#ifndef MDW_COMMON_UNITS_H_
#define MDW_COMMON_UNITS_H_

#include <cstdint>

namespace mdw {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

/// Simulated time is kept in milliseconds (double); helpers below convert.
inline constexpr double kMsPerSecond = 1000.0;

inline constexpr double SecondsToMs(double s) { return s * kMsPerSecond; }
inline constexpr double MsToSeconds(double ms) { return ms / kMsPerSecond; }

inline constexpr double BytesToMiB(std::int64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

}  // namespace mdw

#endif  // MDW_COMMON_UNITS_H_
