#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/check.h"

namespace mdw {

namespace {

// Set for the lifetime of every pool worker thread: a ParallelFor issued
// from inside a task must not block on the (possibly busy) queue, so it
// runs inline instead.
thread_local bool tls_pool_worker = false;

/// Completion protocol shared by the ParallelFor variants: every executed
/// item calls Mark() exactly once; the caller blocks in AwaitAll() until
/// all `total` items are done (stragglers may still be inside their drain
/// loop at that point — they only touch this state, which the helper
/// closures keep alive).
struct Completion {
  std::atomic<std::int64_t> done{0};
  std::int64_t total = 0;
  std::mutex mu;
  std::condition_variable all_done;

  void Mark() {
    if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
      std::lock_guard<std::mutex> lock(mu);
      all_done.notify_all();
    }
  }

  void AwaitAll() {
    std::unique_lock<std::mutex> lock(mu);
    all_done.wait(lock, [&] {
      return done.load(std::memory_order_acquire) == total;
    });
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  MDW_CHECK(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::ResolveWorkers(int num_workers) {
  MDW_CHECK(num_workers >= 0,
            "num_workers must be 0 (hardware) or a positive degree");
  if (num_workers > 0) return num_workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  tls_pool_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunDrain(std::int64_t total,
                          const std::function<void()>& drain) const {
  const std::int64_t helpers = std::min<std::int64_t>(
      static_cast<std::int64_t>(workers_.size()), total - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::int64_t h = 0; h < helpers; ++h) {
      tasks_.emplace_back(drain);
    }
  }
  if (helpers == 1) {
    cv_.notify_one();
  } else if (helpers > 1) {
    cv_.notify_all();
  }
  // The caller claims work too, then (in AwaitAll) waits for stragglers
  // to finish the items they already claimed.
  drain();
}

void ThreadPool::ParallelFor(
    std::int64_t n, const std::function<void(std::int64_t)>& fn) const {
  ParallelFor(n, fn, CancellationToken());
}

bool ThreadPool::ParallelFor(std::int64_t n,
                             const std::function<void(std::int64_t)>& fn,
                             const CancellationToken& cancel) const {
  if (n <= 0) return true;
  if (n == 1 || tls_pool_worker) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (cancel.ShouldStop()) return false;
      fn(i);
    }
    return true;
  }

  // Shared claim/completion state; kept alive by the helper closures in
  // case stragglers dequeue after the caller has already returned.
  struct ForState {
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> skipped{0};
    const std::function<void(std::int64_t)>* fn;
    CancellationToken cancel;
    Completion completion;
  };
  auto state = std::make_shared<ForState>();
  state->completion.total = n;
  state->fn = &fn;
  state->cancel = cancel;

  RunDrain(n, [state] {
    ForState& s = *state;
    while (true) {
      const std::int64_t i = s.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s.completion.total) break;
      // A tripped token abandons the index, but the claim still counts
      // toward completion so the caller's AwaitAll terminates promptly:
      // every lane races through the remaining claims without running fn.
      if (s.cancel.ShouldStop()) {
        s.skipped.fetch_add(1, std::memory_order_relaxed);
      } else {
        (*s.fn)(i);
      }
      s.completion.Mark();
    }
  });
  state->completion.AwaitAll();
  return state->skipped.load(std::memory_order_acquire) == 0;
}

void ThreadPool::ParallelForQueues(
    const std::vector<std::int64_t>& queue_sizes,
    const std::function<void(int, std::int64_t)>& fn) const {
  ParallelForQueues(queue_sizes, fn, CancellationToken());
}

bool ThreadPool::ParallelForQueues(
    const std::vector<std::int64_t>& queue_sizes,
    const std::function<void(int, std::int64_t)>& fn,
    const CancellationToken& cancel) const {
  const int num_queues = static_cast<int>(queue_sizes.size());
  std::int64_t total = 0;
  for (const std::int64_t size : queue_sizes) {
    MDW_CHECK(size >= 0, "queue sizes must be non-negative");
    total += size;
  }
  if (total <= 0) return true;
  if (total == 1 || tls_pool_worker) {
    for (int q = 0; q < num_queues; ++q) {
      for (std::int64_t i = 0; i < queue_sizes[static_cast<std::size_t>(q)];
           ++i) {
        if (cancel.ShouldStop()) return false;
        fn(q, i);
      }
    }
    return true;
  }

  // Shared claim/completion state; kept alive by the helper closures in
  // case stragglers dequeue after the caller has already returned.
  struct QueuesState {
    std::unique_ptr<std::atomic<std::int64_t>[]> next;
    std::atomic<int> owner{0};
    std::atomic<std::int64_t> skipped{0};
    std::vector<std::int64_t> sizes;
    const std::function<void(int, std::int64_t)>* fn;
    CancellationToken cancel;
    Completion completion;
  };
  auto state = std::make_shared<QueuesState>();
  state->next =
      std::make_unique<std::atomic<std::int64_t>[]>(
          static_cast<std::size_t>(num_queues));
  for (int q = 0; q < num_queues; ++q) state->next[q].store(0);
  state->sizes = queue_sizes;
  state->completion.total = total;
  state->fn = &fn;
  state->cancel = cancel;

  RunDrain(total, [state, num_queues] {
    // Affinity phase: claim the next unowned queue and drain it; once it
    // is empty, steal from the other queues in cyclic order. A cursor past
    // a queue's size just means the queue is drained.
    QueuesState& s = *state;
    const int q0 = s.owner.fetch_add(1, std::memory_order_relaxed) %
                   num_queues;
    for (int off = 0; off < num_queues; ++off) {
      const int q = (q0 + off) % num_queues;
      while (true) {
        const std::int64_t i =
            s.next[q].fetch_add(1, std::memory_order_relaxed);
        if (i >= s.sizes[static_cast<std::size_t>(q)]) break;
        // Same abandon-but-count protocol as the cancellable
        // ParallelFor: claims keep draining so AwaitAll terminates.
        if (s.cancel.ShouldStop()) {
          s.skipped.fetch_add(1, std::memory_order_relaxed);
        } else {
          (*s.fn)(q, i);
        }
        s.completion.Mark();
      }
    }
  });
  state->completion.AwaitAll();
  return state->skipped.load(std::memory_order_acquire) == 0;
}

}  // namespace mdw
