#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/check.h"

namespace mdw {

namespace {

// Set for the lifetime of every pool worker thread: a ParallelFor issued
// from inside a task must not block on the (possibly busy) queue, so it
// runs inline instead.
thread_local bool tls_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  MDW_CHECK(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::ResolveWorkers(int num_workers) {
  MDW_CHECK(num_workers >= 0,
            "num_workers must be 0 (hardware) or a positive degree");
  if (num_workers > 0) return num_workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  tls_pool_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    std::int64_t n, const std::function<void(std::int64_t)>& fn) const {
  if (n <= 0) return;
  if (n == 1 || tls_pool_worker) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared claim/completion state; kept alive by the helper closures in
  // case stragglers dequeue after the caller has already returned.
  struct ForState {
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> done{0};
    std::int64_t n;
    const std::function<void(std::int64_t)>* fn;
    std::mutex mu;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;

  const auto drain = [](ForState& s) {
    while (true) {
      const std::int64_t i = s.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s.n) break;
      (*s.fn)(i);
      if (s.done.fetch_add(1, std::memory_order_acq_rel) + 1 == s.n) {
        std::lock_guard<std::mutex> lock(s.mu);
        s.all_done.notify_all();
      }
    }
  };

  const std::int64_t helpers =
      std::min<std::int64_t>(static_cast<std::int64_t>(workers_.size()), n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::int64_t h = 0; h < helpers; ++h) {
      tasks_.emplace_back([state, drain] { drain(*state); });
    }
  }
  if (helpers == 1) {
    cv_.notify_one();
  } else if (helpers > 1) {
    cv_.notify_all();
  }

  // The caller claims indices too, then waits for stragglers to finish the
  // indices they already claimed.
  drain(*state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == n;
  });
}

}  // namespace mdw
