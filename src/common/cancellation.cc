#include "common/cancellation.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace mdw {

DeadlineClock DeadlineClock::Virtual() {
  DeadlineClock clock;
  clock.vnow_ = std::make_shared<std::atomic<std::int64_t>>(0);
  return clock;
}

std::int64_t DeadlineClock::NowMicros() const {
  if (vnow_ != nullptr) return vnow_->load(std::memory_order_acquire);
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void DeadlineClock::AdvanceMicros(std::int64_t delta_us) const {
  MDW_CHECK(vnow_ != nullptr, "AdvanceMicros on a steady (non-virtual) clock");
  MDW_CHECK(delta_us >= 0, "time cannot run backwards");
  vnow_->fetch_add(delta_us, std::memory_order_acq_rel);
}

CancellationToken CancellationToken::Manual() {
  return CancellationToken(std::make_shared<State>());
}

CancellationToken CancellationToken::WithDeadlineMicros(
    std::int64_t deadline_us, DeadlineClock clock,
    const CancellationToken& parent) {
  auto state = std::make_shared<State>();
  state->has_deadline = true;
  state->deadline_us = deadline_us;
  state->clock = std::move(clock);
  state->parent = parent.state_;
  return CancellationToken(std::move(state));
}

void CancellationToken::Cancel() const {
  if (state_ == nullptr) return;
  state_->cancelled.store(true, std::memory_order_release);
}

bool CancellationToken::ShouldStopSlow() const {
  for (State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_relaxed)) return true;
    if (!s->has_deadline) continue;
    if (s->deadline_hit.load(std::memory_order_relaxed)) return true;
    if (s->clock.NowMicros() >= s->deadline_us) {
      // Latch so later polls skip the clock read and CancelStatus() is
      // stable even if the (virtual) clock were ever rewound.
      s->deadline_hit.store(true, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

Status CancellationToken::CancelStatus() const {
  // Explicit cancellation anywhere in the link chain wins over a
  // concurrently expiring deadline.
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_acquire)) {
      return Status::Cancelled("query cancelled");
    }
  }
  if (ShouldStop()) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::Ok();
}

std::int64_t CancellationToken::RemainingMicros() const {
  auto left = std::numeric_limits<std::int64_t>::max();
  for (State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    // An explicit Cancel() zeroes the budget even without a deadline so
    // backoff loops stop sleeping.
    if (s->cancelled.load(std::memory_order_relaxed)) return 0;
    if (!s->has_deadline) continue;
    if (s->deadline_hit.load(std::memory_order_relaxed)) return 0;
    const std::int64_t mine = s->deadline_us - s->clock.NowMicros();
    left = std::min(left, mine > 0 ? mine : 0);
  }
  return left;
}

}  // namespace mdw
