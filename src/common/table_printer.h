#ifndef MDW_COMMON_TABLE_PRINTER_H_
#define MDW_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mdw {

/// Console table formatter used by the benchmark harnesses to print the
/// rows/series of the paper's tables and figures in aligned columns.
///
/// Usage:
///   TablePrinter t({"d", "p", "response [s]", "speedup"});
///   t.AddRow({"20", "1", "593.1", "1.00"});
///   t.Print(stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table to `out` with a separator line under the header.
  void Print(std::FILE* out) const;

  /// Formats a double with `precision` digits after the decimal point.
  static std::string Num(double value, int precision = 2);
  /// Formats an integer with thousands separators ("5,189,760").
  static std::string Int(std::int64_t value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mdw

#endif  // MDW_COMMON_TABLE_PRINTER_H_
