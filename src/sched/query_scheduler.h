#ifndef MDW_SCHED_QUERY_SCHEDULER_H_
#define MDW_SCHED_QUERY_SCHEDULER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/cancellation.h"
#include "fragment/query_planner.h"
#include "fragment/star_query.h"

namespace mdw {

/// Dispatch policy of the open-loop serving front end.
enum class SchedPolicy {
  /// Global first-come-first-served: queries dispatch in admission order
  /// regardless of which stream submitted them. Simple and latency-fair
  /// per query, but a stream may grab an arbitrary share of the service
  /// capacity by submitting more (or heavier) queries.
  kFcfs,
  /// Credit/fair-share: every backlogged stream accrues credits in
  /// proportion to its weight (idle streams accrue nothing, so there is
  /// no hoarding), and the backlogged stream with the highest credit
  /// balance is served next, its balance charged by the dispatched
  /// query's demand. Work-conserving: a server never idles while any
  /// stream has a waiting query, even when every balance is negative.
  /// Under saturation per-stream completed work converges to the
  /// configured weight ratios.
  kCredit,
  /// Shortest-remaining-processing-time (here: shortest demand first,
  /// since virtual service is non-preemptive): the waiting query with
  /// the globally smallest demand dispatches next, ties to the older
  /// admission. Minimizes mean response time under skewed demands at
  /// the cost of starving heavy queries while light ones keep arriving
  /// — pair with deadlines/shedding to bound that starvation.
  kSrpt,
};

const char* ToString(SchedPolicy policy);

/// What to do with a query that can no longer meet its deadline while
/// still waiting (see ServingConfig::overload).
enum class OverloadPolicy {
  /// Drop it: the query is removed from the queue, never executed, and
  /// counted as shed_expired (its outcome carries kDeadlineExceeded).
  kShed,
  /// Downgrade it to covered-only degraded execution: its demand is
  /// replaced by the (much smaller) covered demand — the fully-covered
  /// fragments answered from prefix-sum summaries, residual scans
  /// skipped — and the outcome is flagged `degraded`. Falls back to
  /// shedding when even the degraded demand cannot meet the deadline
  /// (or when no covered demand was provided).
  kDegrade,
};

const char* ToString(OverloadPolicy policy);

/// One open-loop client request: stream `stream` submits `query` at
/// virtual time `vt`. Traces are sorted by vt (ties keep trace order).
struct Arrival {
  std::int64_t vt = 0;
  int stream = 0;
  StarQuery query;
};

/// Settings of one serving run.
struct ServingConfig {
  SchedPolicy policy = SchedPolicy::kFcfs;

  /// Virtual service lanes. The virtual-time model dispatches at most
  /// this many queries concurrently — matching the real concurrency the
  /// executing pool offers. 0 = take the warehouse backend's resolved
  /// num_workers (Warehouse::Serve fills it in).
  int num_workers = 0;

  /// Admission bound: the maximum number of queries WAITING for a server
  /// (in-service queries excluded) across all streams. An arrival that
  /// finds the queue full is rejected (shed) and never executed.
  /// 0 = unbounded.
  std::int64_t queue_capacity = 0;

  /// Per-stream weights for SchedPolicy::kCredit, indexed by stream id;
  /// streams beyond the vector (or with a non-positive entry) weigh 1.0.
  /// Ignored by kFcfs.
  std::vector<double> weights;

  /// Measurement horizon: no query is dispatched at or after this
  /// virtual time, so under overload per-stream completed work measures
  /// the policy's share while every stream is still backlogged (admitted
  /// queries left waiting are reported as unserved). 0 = serve to drain.
  std::int64_t horizon_vt = 0;

  /// Failure requeue budget (materialized serving only): a served query
  /// whose execution surfaces a storage error is re-executed in place up
  /// to this many extra times before the error sticks in its outcome.
  /// The virtual-time schedule is untouched — requeues re-run inside the
  /// query's dispatch slot, so latency metrics stay deterministic.
  /// 0 = fail on the first error.
  int max_requeues = 0;

  /// Per-query completion deadline in virtual time: an admitted query
  /// must complete by arrival_vt + deadline_vt. Deadline-aware admission
  /// rejects an arrival on the spot when it provably cannot meet its
  /// deadline (its own demand doesn't fit; under kFcfs additionally when
  /// the committed backlog — which nothing can overtake — pushes its
  /// start too late). Queries that become infeasible while WAITING are
  /// shed (or degraded, see `overload`) at the next event boundary, so a
  /// dispatched query always meets its deadline in virtual time.
  /// 0 = no deadline.
  std::int64_t deadline_vt = 0;
  /// Per-stream deadline override, indexed by stream id; streams beyond
  /// the vector (or with a non-positive entry) use `deadline_vt`.
  std::vector<std::int64_t> stream_deadline_vt;

  /// What happens to a waiting query that can no longer meet its
  /// deadline; `stream_overload` overrides per stream (streams beyond
  /// the vector use `overload`). kDegrade needs covered demands passed
  /// to Run() and falls back to shedding when even the covered demand
  /// misses the deadline.
  OverloadPolicy overload = OverloadPolicy::kShed;
  std::vector<OverloadPolicy> stream_overload;

  /// Wall-clock execution budget per dispatched query in microseconds
  /// (materialized serving only): each execution runs under a
  /// steady-clock CancellationToken with this timeout, so a query stuck
  /// on slow/faulty storage returns a typed kDeadlineExceeded outcome
  /// instead of holding its worker. 0 = no wall-clock budget.
  std::int64_t exec_deadline_us = 0;

  /// Serve-wide cancellation (materialized serving only): tripping this
  /// token cancels the queries still executing — each returns a typed
  /// kCancelled outcome — while already-completed outcomes are kept.
  /// Default-constructed = unarmed (never trips, costs one null check).
  CancellationToken cancel;

  /// Weight of stream `s` under this config (>= the 1.0 default).
  double WeightOf(int s) const {
    const auto u = static_cast<std::size_t>(s);
    return u < weights.size() && weights[u] > 0 ? weights[u] : 1.0;
  }

  /// Relative deadline of stream `s` (0 = none).
  std::int64_t DeadlineOf(int s) const {
    const auto u = static_cast<std::size_t>(s);
    if (u < stream_deadline_vt.size() && stream_deadline_vt[u] > 0) {
      return stream_deadline_vt[u];
    }
    return deadline_vt;
  }

  /// Overload policy of stream `s`.
  OverloadPolicy OverloadOf(int s) const {
    const auto u = static_cast<std::size_t>(s);
    return u < stream_overload.size() ? stream_overload[u] : overload;
  }
};

/// The deterministic virtual-time record of one admitted query.
struct ScheduledQuery {
  std::int64_t arrival_index = 0;  ///< index into the arrival trace
  int stream = 0;
  std::int64_t enqueue_seq = 0;  ///< admission order (dense, 0-based)
  std::int64_t arrival_vt = 0;
  std::int64_t demand = 0;  ///< virtual service demand (work units)
  /// Set iff the query was dispatched before the horizon.
  bool served = false;
  std::int64_t dispatch_seq = -1;  ///< dispatch order (dense, 0-based)
  std::int64_t dispatch_vt = 0;
  std::int64_t completion_vt = 0;
  /// Absolute completion deadline (arrival_vt + the stream's relative
  /// deadline); 0 = none.
  std::int64_t deadline_vt = 0;
  /// Set iff the query expired while waiting and was dropped without
  /// dispatching (it still appears in `admitted`, with served == false).
  bool shed_expired = false;
  /// Set iff the query was downgraded to covered-only execution to meet
  /// its deadline; `demand` then holds the covered demand it ran with.
  bool degraded = false;

  std::int64_t QueueWait() const { return dispatch_vt - arrival_vt; }
  std::int64_t Response() const { return completion_vt - arrival_vt; }
};

/// Full schedule of one serving run, derived single-threadedly in virtual
/// time — identical for a given (arrivals, demands, config) regardless of
/// how many real threads later execute it.
struct ServeSchedule {
  /// Admitted queries in admission (enqueue_seq) order; a subsequence of
  /// the arrival trace. Unserved entries (admitted but still waiting at
  /// the horizon) have served == false.
  std::vector<ScheduledQuery> admitted;
  /// Arrival indices rejected by admission control, ascending.
  std::vector<std::int64_t> rejected;
  /// Completion time of the last served query (0 if nothing ran).
  std::int64_t makespan_vt = 0;
  /// Virtual time during which a server idled although a query waited,
  /// before the horizon. 0 by construction — the dispatch loop is
  /// work-conserving; exposed so tests can assert the invariant.
  std::int64_t idle_while_backlogged_vt = 0;
  /// Time-weighted mean depth of the waiting queue over the makespan,
  /// and the deepest it ever got.
  double mean_queue_depth = 0;
  std::int64_t queue_high_water = 0;
  /// Backpressure signal: fraction of the makespan the waiting queue sat
  /// at capacity, i.e. every arrival in that window was shed. Always 0
  /// with queue_capacity == 0.
  double backpressure_fraction = 0;

  std::int64_t ServedCount() const {
    std::int64_t n = 0;
    for (const auto& q : admitted) n += q.served ? 1 : 0;
    return n;
  }

  std::int64_t ShedExpiredCount() const {
    std::int64_t n = 0;
    for (const auto& q : admitted) n += q.shed_expired ? 1 : 0;
    return n;
  }

  std::int64_t DegradedCount() const {
    std::int64_t n = 0;
    for (const auto& q : admitted) n += q.degraded && q.served ? 1 : 0;
    return n;
  }
};

/// Per-stream serving statistics; virtual-time units throughout, so every
/// field is deterministic for a given trace and config.
struct StreamServeStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;  ///< dispatched before the horizon
  /// Sum of the completed queries' virtual demands — the stream's share
  /// of the service capacity (what the credit weights meter).
  std::int64_t work = 0;
  double p50_response_vt = 0;
  double p95_response_vt = 0;
  double p99_response_vt = 0;
  double mean_queue_wait_vt = 0;
  double mean_service_vt = 0;
  /// Completed queries per 1000 virtual-time units.
  double throughput_per_kvt = 0;
  /// Served queries of this stream whose execution still surfaced a
  /// storage error after the requeue budget (their outcomes carry the
  /// typed status; no aggregate). Only materialized serving fills these.
  std::int64_t failed = 0;
  /// Re-executions the requeue policy issued for this stream's queries
  /// (successful or not).
  std::int64_t requeued = 0;
  /// Admitted queries of this stream dropped from the queue because
  /// their deadline expired before dispatch (never executed).
  std::int64_t shed_expired = 0;
  /// Served queries of this stream that ran in degraded covered-only
  /// mode to meet their deadline.
  std::int64_t degraded = 0;
  /// Queries whose final outcome missed its deadline: shed while
  /// waiting, skipped by the requeue policy because the deadline had
  /// already passed, or tripped by the wall-clock execution budget.
  std::int64_t deadline_missed = 0;
  /// Executions the serve-wide cancellation token aborted (materialized
  /// serving only; outcomes carry kCancelled).
  std::int64_t cancelled = 0;
};

/// Run-level serving metrics: per-stream stats, their aggregate, and the
/// fairness/queue signals of the schedule.
struct ServeMetrics {
  std::vector<StreamServeStats> streams;  ///< index = stream id
  StreamServeStats total;
  /// Jain fairness index over the streams' weight-normalized completed
  /// work x_s = work_s / weight_s: (sum x)^2 / (n * sum x^2). 1.0 =
  /// every stream got exactly its weighted share, 1/n = one stream took
  /// everything. Streams that submitted nothing are excluded.
  double jain_fairness = 1.0;
  std::int64_t makespan_vt = 0;
  double mean_queue_depth = 0;
  std::int64_t queue_high_water = 0;
  double backpressure_fraction = 0;
  std::int64_t idle_while_backlogged_vt = 0;
};

/// Deterministic virtual service demand of a planned query: the expected
/// hit rows under the uniformity assumption plus one unit per processed
/// fragment (covered fragments still cost their O(1) summary lookup).
/// Derived from the plan alone, so the scheduler's timeline never depends
/// on execution timing.
std::int64_t VirtualDemand(const QueryPlan& plan);

/// Virtual service demand of the same plan executed in degraded
/// covered-only mode: one summary-lookup unit per fully-covered
/// fragment, residual scans skipped entirely. Always <= VirtualDemand
/// and >= 1, so degradation strictly shrinks a query's footprint.
std::int64_t CoveredDemand(const QueryPlan& plan);

/// The open-loop multi-user scheduler: admits an arrival trace into
/// bounded per-stream queues and dispatches onto `num_workers` virtual
/// servers under the configured policy. Run() is single-threaded and
/// purely virtual-time — the returned schedule fixes admission, dispatch
/// order and all latency metrics deterministically; real execution (see
/// MaterializedBackend::Serve) only replays the dispatch order onto the
/// thread pool.
class QueryScheduler {
 public:
  /// `config.num_workers` must be resolved (>= 1) by the caller.
  explicit QueryScheduler(ServingConfig config);

  const ServingConfig& config() const { return config_; }

  /// Schedules `arrivals` (sorted by vt) with `demands[i]` work units for
  /// arrival i. `covered_demands` (empty, or one entry per arrival) gives
  /// each query's degraded covered-only demand — required for
  /// OverloadPolicy::kDegrade to rescue an expiring query; without it
  /// every expiry sheds. Deterministic: same inputs, same schedule.
  ServeSchedule Run(std::span<const Arrival> arrivals,
                    std::span<const std::int64_t> demands,
                    std::span<const std::int64_t> covered_demands = {}) const;

 private:
  ServingConfig config_;
};

/// Derives the run metrics from a schedule; `arrivals` must be the trace
/// the schedule was computed from (rejected/unserved attribution needs
/// the stream of every arrival).
ServeMetrics ComputeServeMetrics(const ServeSchedule& schedule,
                                 std::span<const Arrival> arrivals,
                                 const ServingConfig& config);

}  // namespace mdw

#endif  // MDW_SCHED_QUERY_SCHEDULER_H_
