#include "sched/query_scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <tuple>
#include <utility>

#include "common/check.h"

namespace mdw {

const char* ToString(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFcfs: return "fcfs";
    case SchedPolicy::kCredit: return "credit";
  }
  return "?";
}

std::int64_t VirtualDemand(const QueryPlan& plan) {
  const double fact_rows =
      static_cast<double>(plan.fragmentation().schema().FactCount());
  const auto expected_hits =
      static_cast<std::int64_t>(std::llround(plan.selectivity() * fact_rows));
  return std::max<std::int64_t>(1, plan.FragmentCount() + expected_hits);
}

QueryScheduler::QueryScheduler(ServingConfig config)
    : config_(std::move(config)) {
  MDW_CHECK(config_.num_workers >= 1,
            "QueryScheduler needs a resolved num_workers (>= 1)");
  MDW_CHECK(config_.queue_capacity >= 0, "queue_capacity must be >= 0");
  MDW_CHECK(config_.horizon_vt >= 0, "horizon_vt must be >= 0");
}

namespace {

/// Mutable per-stream scheduling state. `queue` holds indices into
/// ServeSchedule::admitted, FIFO within the stream.
struct StreamState {
  std::deque<std::size_t> queue;
  double credit = 0;
};

}  // namespace

ServeSchedule QueryScheduler::Run(
    std::span<const Arrival> arrivals,
    std::span<const std::int64_t> demands) const {
  MDW_CHECK(arrivals.size() == demands.size(), "one demand per arrival");
  int num_streams = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    MDW_CHECK(arrivals[i].stream >= 0, "stream ids must be non-negative");
    MDW_CHECK(demands[i] > 0, "demands must be positive");
    MDW_CHECK(i == 0 || arrivals[i].vt >= arrivals[i - 1].vt,
              "arrivals must be sorted by virtual time");
    num_streams = std::max(num_streams, arrivals[i].stream + 1);
  }

  ServeSchedule out;
  std::vector<StreamState> streams(static_cast<std::size_t>(num_streams));
  std::vector<double> weight(static_cast<std::size_t>(num_streams), 1.0);
  for (int s = 0; s < num_streams; ++s) {
    weight[static_cast<std::size_t>(s)] = config_.WeightOf(s);
  }

  // In-service queries as a min-heap of (completion_vt, dispatch_seq);
  // the dispatch_seq tie-break keeps equal-time completions in a fixed
  // order, so the whole event sequence is deterministic.
  using Completion = std::pair<std::int64_t, std::int64_t>;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      running;

  const int workers = config_.num_workers;
  const std::int64_t capacity = config_.queue_capacity;
  const std::int64_t horizon = config_.horizon_vt;
  int free_servers = workers;
  std::int64_t waiting = 0;
  std::int64_t now = 0;
  std::int64_t enqueue_seq = 0;
  std::int64_t dispatch_seq = 0;
  std::int64_t last_accrual_vt = 0;
  double depth_integral = 0;
  std::int64_t full_vt = 0;

  // Credit accrual: the service capacity freed since the last accrual
  // (elapsed vt x workers) is split over the BACKLOGGED streams in
  // weight proportion. Idle streams accrue nothing — fairness meters
  // demand that exists, it does not bank credit for later bursts.
  const auto accrue = [&](std::int64_t to_vt) {
    const std::int64_t dt = to_vt - last_accrual_vt;
    last_accrual_vt = to_vt;
    if (config_.policy != SchedPolicy::kCredit || dt <= 0) return;
    double backlogged_weight = 0;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (!streams[s].queue.empty()) backlogged_weight += weight[s];
    }
    if (backlogged_weight <= 0) return;
    const double capacity_units = static_cast<double>(dt * workers);
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (!streams[s].queue.empty()) {
        streams[s].credit += weight[s] / backlogged_weight * capacity_units;
      }
    }
  };

  // Picks the stream to serve next, or -1: FCFS takes the globally
  // oldest admitted query; credit takes the highest balance. Ties break
  // to the lower stream id (strict comparisons over ascending ids).
  const auto pick_stream = [&]() -> int {
    int best = -1;
    for (int s = 0; s < num_streams; ++s) {
      const auto u = static_cast<std::size_t>(s);
      if (streams[u].queue.empty()) continue;
      if (best < 0) {
        best = s;
        continue;
      }
      const auto b = static_cast<std::size_t>(best);
      if (config_.policy == SchedPolicy::kFcfs) {
        if (out.admitted[streams[u].queue.front()].enqueue_seq <
            out.admitted[streams[b].queue.front()].enqueue_seq) {
          best = s;
        }
      } else if (streams[u].credit > streams[b].credit) {
        best = s;
      }
    }
    return best;
  };

  const auto try_dispatch = [&]() {
    accrue(now);
    while (free_servers > 0 && waiting > 0 &&
           (horizon == 0 || now < horizon)) {
      const int s = pick_stream();
      auto& stream = streams[static_cast<std::size_t>(s)];
      const std::size_t slot = stream.queue.front();
      stream.queue.pop_front();
      ScheduledQuery& q = out.admitted[slot];
      q.served = true;
      q.dispatch_seq = dispatch_seq++;
      q.dispatch_vt = now;
      q.completion_vt = now + q.demand;
      if (config_.policy == SchedPolicy::kCredit) {
        stream.credit -= static_cast<double>(q.demand);
      }
      running.emplace(q.completion_vt, q.dispatch_seq);
      out.makespan_vt = std::max(out.makespan_vt, q.completion_vt);
      --waiting;
      --free_servers;
    }
  };

  // Advances virtual time to `to`, integrating the queue-depth signals
  // and the (always-zero) idle-while-backlogged invariant counter over
  // the elapsed interval.
  const auto advance = [&](std::int64_t to) {
    const std::int64_t dt = to - now;
    if (dt > 0) {
      depth_integral +=
          static_cast<double>(waiting) * static_cast<double>(dt);
      if (capacity > 0 && waiting >= capacity) full_vt += dt;
      if (waiting > 0 && free_servers > 0 && (horizon == 0 || now < horizon)) {
        out.idle_while_backlogged_vt += dt;
      }
    }
    now = to;
  };

  std::size_t next_arrival = 0;
  while (next_arrival < arrivals.size() || !running.empty()) {
    // Next event time; completions at a tie are processed before
    // arrivals so a freed server is visible to same-instant admissions.
    std::int64_t t;
    if (running.empty()) {
      t = arrivals[next_arrival].vt;
    } else if (next_arrival >= arrivals.size()) {
      t = running.top().first;
    } else {
      t = std::min(arrivals[next_arrival].vt, running.top().first);
    }
    advance(t);

    while (!running.empty() && running.top().first == now) {
      running.pop();
      ++free_servers;
    }
    try_dispatch();

    // Admissions one at a time, each followed by a dispatch attempt, so
    // an arrival that finds a free server starts immediately and never
    // occupies (or overflows) the waiting queue.
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].vt == now) {
      const auto ai = next_arrival++;
      if (capacity > 0 && waiting >= capacity) {
        out.rejected.push_back(static_cast<std::int64_t>(ai));
        continue;
      }
      ScheduledQuery q;
      q.arrival_index = static_cast<std::int64_t>(ai);
      q.stream = arrivals[ai].stream;
      q.enqueue_seq = enqueue_seq++;
      q.arrival_vt = now;
      q.demand = demands[ai];
      out.admitted.push_back(q);
      streams[static_cast<std::size_t>(q.stream)].queue.push_back(
          out.admitted.size() - 1);
      ++waiting;
      out.queue_high_water = std::max(out.queue_high_water, waiting);
      try_dispatch();
    }
  }

  // Integrate over the full event horizon (the last arrival may trail
  // the last completion when the horizon cut dispatching short).
  const std::int64_t span = std::max(out.makespan_vt, now);
  if (span > 0) {
    out.mean_queue_depth = depth_integral / static_cast<double>(span);
    out.backpressure_fraction =
        static_cast<double>(full_vt) / static_cast<double>(span);
  }
  return out;
}

namespace {

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

}  // namespace

ServeMetrics ComputeServeMetrics(const ServeSchedule& schedule,
                                 std::span<const Arrival> arrivals,
                                 const ServingConfig& config) {
  int num_streams = 0;
  for (const auto& a : arrivals) {
    num_streams = std::max(num_streams, a.stream + 1);
  }

  ServeMetrics metrics;
  metrics.streams.assign(static_cast<std::size_t>(num_streams), {});
  metrics.makespan_vt = schedule.makespan_vt;
  metrics.mean_queue_depth = schedule.mean_queue_depth;
  metrics.queue_high_water = schedule.queue_high_water;
  metrics.backpressure_fraction = schedule.backpressure_fraction;
  metrics.idle_while_backlogged_vt = schedule.idle_while_backlogged_vt;

  for (const auto& a : arrivals) {
    ++metrics.streams[static_cast<std::size_t>(a.stream)].submitted;
  }
  for (const std::int64_t ai : schedule.rejected) {
    const int s = arrivals[static_cast<std::size_t>(ai)].stream;
    ++metrics.streams[static_cast<std::size_t>(s)].rejected;
  }

  std::vector<std::vector<double>> responses(
      static_cast<std::size_t>(num_streams));
  std::vector<double> all_responses;
  std::vector<double> wait_sum(static_cast<std::size_t>(num_streams), 0);
  std::vector<double> service_sum(static_cast<std::size_t>(num_streams), 0);
  for (const auto& q : schedule.admitted) {
    auto& stream = metrics.streams[static_cast<std::size_t>(q.stream)];
    ++stream.admitted;
    if (!q.served) continue;
    ++stream.completed;
    stream.work += q.demand;
    const auto response = static_cast<double>(q.Response());
    responses[static_cast<std::size_t>(q.stream)].push_back(response);
    all_responses.push_back(response);
    wait_sum[static_cast<std::size_t>(q.stream)] +=
        static_cast<double>(q.QueueWait());
    service_sum[static_cast<std::size_t>(q.stream)] +=
        static_cast<double>(q.demand);
  }

  const auto finish = [&](StreamServeStats* stats,
                          std::vector<double>* sample, double waits,
                          double services) {
    std::sort(sample->begin(), sample->end());
    stats->p50_response_vt = Percentile(*sample, 0.50);
    stats->p95_response_vt = Percentile(*sample, 0.95);
    stats->p99_response_vt = Percentile(*sample, 0.99);
    if (stats->completed > 0) {
      stats->mean_queue_wait_vt =
          waits / static_cast<double>(stats->completed);
      stats->mean_service_vt =
          services / static_cast<double>(stats->completed);
    }
    if (metrics.makespan_vt > 0) {
      stats->throughput_per_kvt = static_cast<double>(stats->completed) *
                                  1000.0 /
                                  static_cast<double>(metrics.makespan_vt);
    }
  };

  double total_waits = 0;
  double total_services = 0;
  for (std::size_t s = 0; s < metrics.streams.size(); ++s) {
    auto& stream = metrics.streams[s];
    finish(&stream, &responses[s], wait_sum[s], service_sum[s]);
    metrics.total.submitted += stream.submitted;
    metrics.total.admitted += stream.admitted;
    metrics.total.rejected += stream.rejected;
    metrics.total.completed += stream.completed;
    metrics.total.work += stream.work;
    total_waits += wait_sum[s];
    total_services += service_sum[s];
  }
  finish(&metrics.total, &all_responses, total_waits, total_services);

  // Jain over the weight-normalized completed work of the streams that
  // submitted anything: (sum x)^2 / (n * sum x^2).
  double sum = 0;
  double sum_sq = 0;
  std::int64_t active = 0;
  for (std::size_t s = 0; s < metrics.streams.size(); ++s) {
    if (metrics.streams[s].submitted == 0) continue;
    ++active;
    const double x = static_cast<double>(metrics.streams[s].work) /
                     config.WeightOf(static_cast<int>(s));
    sum += x;
    sum_sq += x * x;
  }
  if (active > 0 && sum_sq > 0) {
    metrics.jain_fairness =
        sum * sum / (static_cast<double>(active) * sum_sq);
  }
  return metrics;
}

}  // namespace mdw
