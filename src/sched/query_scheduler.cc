#include "sched/query_scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <tuple>
#include <utility>

#include "common/check.h"

namespace mdw {

const char* ToString(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFcfs: return "fcfs";
    case SchedPolicy::kCredit: return "credit";
    case SchedPolicy::kSrpt: return "srpt";
  }
  return "?";
}

const char* ToString(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kShed: return "shed";
    case OverloadPolicy::kDegrade: return "degrade";
  }
  return "?";
}

std::int64_t VirtualDemand(const QueryPlan& plan) {
  const double fact_rows =
      static_cast<double>(plan.fragmentation().schema().FactCount());
  const auto expected_hits =
      static_cast<std::int64_t>(std::llround(plan.selectivity() * fact_rows));
  return std::max<std::int64_t>(1, plan.FragmentCount() + expected_hits);
}

std::int64_t CoveredDemand(const QueryPlan& plan) {
  return std::max<std::int64_t>(1, plan.CoveredFragmentCount());
}

QueryScheduler::QueryScheduler(ServingConfig config)
    : config_(std::move(config)) {
  MDW_CHECK(config_.num_workers >= 1,
            "QueryScheduler needs a resolved num_workers (>= 1)");
  MDW_CHECK(config_.queue_capacity >= 0, "queue_capacity must be >= 0");
  MDW_CHECK(config_.horizon_vt >= 0, "horizon_vt must be >= 0");
  MDW_CHECK(config_.deadline_vt >= 0, "deadline_vt must be >= 0");
  MDW_CHECK(config_.exec_deadline_us >= 0, "exec_deadline_us must be >= 0");
}

namespace {

/// Mutable per-stream scheduling state. `queue` holds indices into
/// ServeSchedule::admitted, FIFO within the stream.
struct StreamState {
  std::deque<std::size_t> queue;
  double credit = 0;
};

}  // namespace

ServeSchedule QueryScheduler::Run(
    std::span<const Arrival> arrivals,
    std::span<const std::int64_t> demands,
    std::span<const std::int64_t> covered_demands) const {
  MDW_CHECK(arrivals.size() == demands.size(), "one demand per arrival");
  MDW_CHECK(
      covered_demands.empty() || covered_demands.size() == arrivals.size(),
      "covered demands: none, or one per arrival");
  int num_streams = 0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    MDW_CHECK(arrivals[i].stream >= 0, "stream ids must be non-negative");
    MDW_CHECK(demands[i] > 0, "demands must be positive");
    MDW_CHECK(covered_demands.empty() ||
                  (covered_demands[i] > 0 && covered_demands[i] <= demands[i]),
              "covered demands must be in [1, demand]");
    MDW_CHECK(i == 0 || arrivals[i].vt >= arrivals[i - 1].vt,
              "arrivals must be sorted by virtual time");
    num_streams = std::max(num_streams, arrivals[i].stream + 1);
  }

  ServeSchedule out;
  std::vector<StreamState> streams(static_cast<std::size_t>(num_streams));
  std::vector<double> weight(static_cast<std::size_t>(num_streams), 1.0);
  for (int s = 0; s < num_streams; ++s) {
    weight[static_cast<std::size_t>(s)] = config_.WeightOf(s);
  }
  const bool deadlines_armed =
      config_.deadline_vt > 0 || !config_.stream_deadline_vt.empty();
  // Covered (degraded-mode) demand of each admitted entry, parallel to
  // out.admitted; 0 = unknown, degradation unavailable.
  std::vector<std::int64_t> covered_of;

  // In-service queries as a min-heap of (completion_vt, dispatch_seq);
  // the dispatch_seq tie-break keeps equal-time completions in a fixed
  // order, so the whole event sequence is deterministic. Kept as a raw
  // vector heap so the FCFS admission bound can read the completion
  // times without draining it.
  using Completion = std::pair<std::int64_t, std::int64_t>;
  std::vector<Completion> running;
  const auto completion_greater = std::greater<Completion>();

  // SRPT pick structure: min-heap of (demand, enqueue_seq, slot) over
  // the waiting entries, with lazy deletion — dispatched/shed slots and
  // entries whose demand was rewritten by degradation are dropped when
  // popped (the degrade pass pushes a fresh entry with the new demand).
  using SrptEntry = std::tuple<std::int64_t, std::int64_t, std::size_t>;
  std::priority_queue<SrptEntry, std::vector<SrptEntry>,
                      std::greater<SrptEntry>>
      srpt_heap;

  const int workers = config_.num_workers;
  const std::int64_t capacity = config_.queue_capacity;
  const std::int64_t horizon = config_.horizon_vt;
  int free_servers = workers;
  std::int64_t waiting = 0;
  std::int64_t now = 0;
  std::int64_t enqueue_seq = 0;
  std::int64_t dispatch_seq = 0;
  std::int64_t last_accrual_vt = 0;
  double depth_integral = 0;
  std::int64_t full_vt = 0;

  // Credit accrual: the service capacity freed since the last accrual
  // (elapsed vt x workers) is split over the BACKLOGGED streams in
  // weight proportion. Idle streams accrue nothing — fairness meters
  // demand that exists, it does not bank credit for later bursts.
  const auto accrue = [&](std::int64_t to_vt) {
    const std::int64_t dt = to_vt - last_accrual_vt;
    last_accrual_vt = to_vt;
    if (config_.policy != SchedPolicy::kCredit || dt <= 0) return;
    double backlogged_weight = 0;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (!streams[s].queue.empty()) backlogged_weight += weight[s];
    }
    if (backlogged_weight <= 0) return;
    const double capacity_units = static_cast<double>(dt * workers);
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (!streams[s].queue.empty()) {
        streams[s].credit += weight[s] / backlogged_weight * capacity_units;
      }
    }
  };

  // Picks the stream to serve next, or -1: FCFS takes the globally
  // oldest admitted query; credit takes the highest balance. Ties break
  // to the lower stream id (strict comparisons over ascending ids).
  const auto pick_stream = [&]() -> int {
    int best = -1;
    for (int s = 0; s < num_streams; ++s) {
      const auto u = static_cast<std::size_t>(s);
      if (streams[u].queue.empty()) continue;
      if (best < 0) {
        best = s;
        continue;
      }
      const auto b = static_cast<std::size_t>(best);
      if (config_.policy == SchedPolicy::kFcfs) {
        if (out.admitted[streams[u].queue.front()].enqueue_seq <
            out.admitted[streams[b].queue.front()].enqueue_seq) {
          best = s;
        }
      } else if (streams[u].credit > streams[b].credit) {
        best = s;
      }
    }
    return best;
  };

  // SRPT pick: the live heap minimum. While `waiting > 0` a valid entry
  // always exists (every waiting slot keeps one heap entry whose demand
  // matches its current demand).
  const auto pick_srpt = [&]() -> std::size_t {
    for (;;) {
      const auto [d, seq, slot] = srpt_heap.top();
      const ScheduledQuery& q = out.admitted[slot];
      if (q.served || q.shed_expired || q.demand != d) {
        srpt_heap.pop();  // stale: dispatched, shed, or degraded
        continue;
      }
      return slot;
    }
  };

  // Queue-timeout pass, run at every event boundary: a WAITING entry
  // whose deadline can no longer be met even if dispatched right now is
  // shed — or, when its stream opts into degradation and the covered
  // demand still fits, downgraded in place to covered-only execution.
  // Dispatches only ever see entries that meet their deadline, so in
  // virtual time a dispatched query never misses.
  const auto shed_or_degrade = [&]() {
    if (!deadlines_armed) return;
    for (auto& stream : streams) {
      if (stream.queue.empty()) continue;
      std::deque<std::size_t> keep;
      for (const std::size_t slot : stream.queue) {
        ScheduledQuery& q = out.admitted[slot];
        if (q.deadline_vt == 0 || now + q.demand <= q.deadline_vt) {
          keep.push_back(slot);
          continue;
        }
        const std::int64_t covered = covered_of[slot];
        if (config_.OverloadOf(q.stream) == OverloadPolicy::kDegrade &&
            !q.degraded && covered > 0 && covered < q.demand &&
            now + covered <= q.deadline_vt) {
          q.demand = covered;
          q.degraded = true;
          if (config_.policy == SchedPolicy::kSrpt) {
            srpt_heap.emplace(q.demand, q.enqueue_seq, slot);
          }
          keep.push_back(slot);
          continue;
        }
        q.shed_expired = true;
        --waiting;
      }
      stream.queue.swap(keep);
    }
  };

  const auto try_dispatch = [&]() {
    accrue(now);
    shed_or_degrade();
    while (free_servers > 0 && waiting > 0 &&
           (horizon == 0 || now < horizon)) {
      std::size_t slot;
      if (config_.policy == SchedPolicy::kSrpt) {
        slot = pick_srpt();
        srpt_heap.pop();
        auto& dq = streams[static_cast<std::size_t>(
                               out.admitted[slot].stream)]
                       .queue;
        dq.erase(std::find(dq.begin(), dq.end(), slot));
      } else {
        const int s = pick_stream();
        auto& dq = streams[static_cast<std::size_t>(s)].queue;
        slot = dq.front();
        dq.pop_front();
      }
      ScheduledQuery& q = out.admitted[slot];
      q.served = true;
      q.dispatch_seq = dispatch_seq++;
      q.dispatch_vt = now;
      q.completion_vt = now + q.demand;
      if (config_.policy == SchedPolicy::kCredit) {
        streams[static_cast<std::size_t>(q.stream)].credit -=
            static_cast<double>(q.demand);
      }
      running.emplace_back(q.completion_vt, q.dispatch_seq);
      std::push_heap(running.begin(), running.end(), completion_greater);
      out.makespan_vt = std::max(out.makespan_vt, q.completion_vt);
      --waiting;
      --free_servers;
    }
  };

  // Exact FCFS start-time bound of a would-be arrival: under FCFS
  // nothing admitted later can overtake the committed backlog, so
  // forward-simulating the in-service completions plus the waiting
  // queue (mirroring the shed/degrade rule at each dispatch instant)
  // yields the precise virtual time the next admission would start.
  // This is what makes deadline rejection at admission *provable*
  // rather than heuristic; for kCredit/kSrpt later arrivals can
  // overtake, so only the backlog-free bound (`now`) is safe.
  const auto fcfs_start_bound = [&]() -> std::int64_t {
    std::vector<std::int64_t> busy;
    busy.reserve(running.size() + 1);
    for (const auto& c : running) busy.push_back(c.first);
    std::make_heap(busy.begin(), busy.end(), std::greater<>());
    const auto take_server = [&](std::int64_t t) {
      std::pop_heap(busy.begin(), busy.end(), std::greater<>());
      const std::int64_t freed = busy.back();
      busy.pop_back();
      return std::max(t, freed);
    };
    int free = free_servers;
    std::int64_t t = now;
    // Waiting slots in admission order (slot index == admission order).
    std::vector<std::size_t> fifo;
    for (const auto& stream : streams) {
      fifo.insert(fifo.end(), stream.queue.begin(), stream.queue.end());
    }
    std::sort(fifo.begin(), fifo.end());
    for (const std::size_t slot : fifo) {
      if (free == 0) {
        t = take_server(t);
        ++free;
      }
      const ScheduledQuery& q = out.admitted[slot];
      std::int64_t d = q.demand;
      if (q.deadline_vt > 0 && t + d > q.deadline_vt) {
        const std::int64_t covered = covered_of[slot];
        const bool degrades =
            config_.OverloadOf(q.stream) == OverloadPolicy::kDegrade &&
            !q.degraded && covered > 0 && covered < d &&
            t + covered <= q.deadline_vt;
        if (!degrades) continue;  // shed before its dispatch
        d = covered;
      }
      busy.push_back(t + d);
      std::push_heap(busy.begin(), busy.end(), std::greater<>());
      --free;
    }
    if (free == 0) t = take_server(t);
    return t;
  };

  // Advances virtual time to `to`, integrating the queue-depth signals
  // and the (always-zero) idle-while-backlogged invariant counter over
  // the elapsed interval.
  const auto advance = [&](std::int64_t to) {
    const std::int64_t dt = to - now;
    if (dt > 0) {
      depth_integral +=
          static_cast<double>(waiting) * static_cast<double>(dt);
      if (capacity > 0 && waiting >= capacity) full_vt += dt;
      if (waiting > 0 && free_servers > 0 && (horizon == 0 || now < horizon)) {
        out.idle_while_backlogged_vt += dt;
      }
    }
    now = to;
  };

  std::size_t next_arrival = 0;
  while (next_arrival < arrivals.size() || !running.empty()) {
    // Next event time; completions at a tie are processed before
    // arrivals so a freed server is visible to same-instant admissions.
    std::int64_t t;
    if (running.empty()) {
      t = arrivals[next_arrival].vt;
    } else if (next_arrival >= arrivals.size()) {
      t = running.front().first;
    } else {
      t = std::min(arrivals[next_arrival].vt, running.front().first);
    }
    advance(t);

    while (!running.empty() && running.front().first == now) {
      std::pop_heap(running.begin(), running.end(), completion_greater);
      running.pop_back();
      ++free_servers;
    }
    try_dispatch();

    // Admissions one at a time, each followed by a dispatch attempt, so
    // an arrival that finds a free server starts immediately and never
    // occupies (or overflows) the waiting queue.
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].vt == now) {
      const auto ai = next_arrival++;
      if (capacity > 0 && waiting >= capacity) {
        out.rejected.push_back(static_cast<std::int64_t>(ai));
        continue;
      }
      const int astream = arrivals[ai].stream;
      const std::int64_t rel_deadline = config_.DeadlineOf(astream);
      const std::int64_t deadline = rel_deadline > 0 ? now + rel_deadline : 0;
      std::int64_t demand = demands[ai];
      const std::int64_t covered =
          covered_demands.empty() ? 0 : covered_demands[ai];
      bool degraded = false;
      if (deadline > 0) {
        // Deadline-aware admission: reject an arrival that provably
        // cannot complete in time. For every policy its own demand must
        // fit from `now`; under FCFS the committed backlog additionally
        // fixes the exact start time (nothing overtakes), so rejection
        // extends to backlog-induced misses. Degrading streams fall
        // back to the covered demand before giving up.
        const std::int64_t start = config_.policy == SchedPolicy::kFcfs
                                       ? fcfs_start_bound()
                                       : now;
        if (start + demand > deadline) {
          if (config_.OverloadOf(astream) == OverloadPolicy::kDegrade &&
              covered > 0 && covered < demand &&
              start + covered <= deadline) {
            demand = covered;
            degraded = true;
          } else {
            out.rejected.push_back(static_cast<std::int64_t>(ai));
            continue;
          }
        }
      }
      ScheduledQuery q;
      q.arrival_index = static_cast<std::int64_t>(ai);
      q.stream = astream;
      q.enqueue_seq = enqueue_seq++;
      q.arrival_vt = now;
      q.demand = demand;
      q.deadline_vt = deadline;
      q.degraded = degraded;
      out.admitted.push_back(q);
      covered_of.push_back(covered);
      const std::size_t slot = out.admitted.size() - 1;
      streams[static_cast<std::size_t>(q.stream)].queue.push_back(slot);
      if (config_.policy == SchedPolicy::kSrpt) {
        srpt_heap.emplace(q.demand, q.enqueue_seq, slot);
      }
      ++waiting;
      out.queue_high_water = std::max(out.queue_high_water, waiting);
      try_dispatch();
    }
  }

  // Integrate over the full event horizon (the last arrival may trail
  // the last completion when the horizon cut dispatching short).
  const std::int64_t span = std::max(out.makespan_vt, now);
  if (span > 0) {
    out.mean_queue_depth = depth_integral / static_cast<double>(span);
    out.backpressure_fraction =
        static_cast<double>(full_vt) / static_cast<double>(span);
  }
  return out;
}

namespace {

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

}  // namespace

ServeMetrics ComputeServeMetrics(const ServeSchedule& schedule,
                                 std::span<const Arrival> arrivals,
                                 const ServingConfig& config) {
  int num_streams = 0;
  for (const auto& a : arrivals) {
    num_streams = std::max(num_streams, a.stream + 1);
  }

  ServeMetrics metrics;
  metrics.streams.assign(static_cast<std::size_t>(num_streams), {});
  metrics.makespan_vt = schedule.makespan_vt;
  metrics.mean_queue_depth = schedule.mean_queue_depth;
  metrics.queue_high_water = schedule.queue_high_water;
  metrics.backpressure_fraction = schedule.backpressure_fraction;
  metrics.idle_while_backlogged_vt = schedule.idle_while_backlogged_vt;

  for (const auto& a : arrivals) {
    ++metrics.streams[static_cast<std::size_t>(a.stream)].submitted;
  }
  for (const std::int64_t ai : schedule.rejected) {
    const int s = arrivals[static_cast<std::size_t>(ai)].stream;
    ++metrics.streams[static_cast<std::size_t>(s)].rejected;
  }

  std::vector<std::vector<double>> responses(
      static_cast<std::size_t>(num_streams));
  std::vector<double> all_responses;
  std::vector<double> wait_sum(static_cast<std::size_t>(num_streams), 0);
  std::vector<double> service_sum(static_cast<std::size_t>(num_streams), 0);
  for (const auto& q : schedule.admitted) {
    auto& stream = metrics.streams[static_cast<std::size_t>(q.stream)];
    ++stream.admitted;
    if (q.shed_expired) {
      // Expired in the queue: dropped without execution, and by
      // definition its deadline was missed.
      ++stream.shed_expired;
      ++stream.deadline_missed;
    }
    if (!q.served) continue;
    if (q.degraded) ++stream.degraded;
    ++stream.completed;
    stream.work += q.demand;
    const auto response = static_cast<double>(q.Response());
    responses[static_cast<std::size_t>(q.stream)].push_back(response);
    all_responses.push_back(response);
    wait_sum[static_cast<std::size_t>(q.stream)] +=
        static_cast<double>(q.QueueWait());
    service_sum[static_cast<std::size_t>(q.stream)] +=
        static_cast<double>(q.demand);
  }

  const auto finish = [&](StreamServeStats* stats,
                          std::vector<double>* sample, double waits,
                          double services) {
    std::sort(sample->begin(), sample->end());
    stats->p50_response_vt = Percentile(*sample, 0.50);
    stats->p95_response_vt = Percentile(*sample, 0.95);
    stats->p99_response_vt = Percentile(*sample, 0.99);
    if (stats->completed > 0) {
      stats->mean_queue_wait_vt =
          waits / static_cast<double>(stats->completed);
      stats->mean_service_vt =
          services / static_cast<double>(stats->completed);
    }
    if (metrics.makespan_vt > 0) {
      stats->throughput_per_kvt = static_cast<double>(stats->completed) *
                                  1000.0 /
                                  static_cast<double>(metrics.makespan_vt);
    }
  };

  double total_waits = 0;
  double total_services = 0;
  for (std::size_t s = 0; s < metrics.streams.size(); ++s) {
    auto& stream = metrics.streams[s];
    finish(&stream, &responses[s], wait_sum[s], service_sum[s]);
    metrics.total.submitted += stream.submitted;
    metrics.total.admitted += stream.admitted;
    metrics.total.rejected += stream.rejected;
    metrics.total.completed += stream.completed;
    metrics.total.work += stream.work;
    metrics.total.shed_expired += stream.shed_expired;
    metrics.total.degraded += stream.degraded;
    metrics.total.deadline_missed += stream.deadline_missed;
    metrics.total.cancelled += stream.cancelled;
    total_waits += wait_sum[s];
    total_services += service_sum[s];
  }
  finish(&metrics.total, &all_responses, total_waits, total_services);

  // Jain over the weight-normalized completed work of the streams that
  // submitted anything: (sum x)^2 / (n * sum x^2).
  double sum = 0;
  double sum_sq = 0;
  std::int64_t active = 0;
  for (std::size_t s = 0; s < metrics.streams.size(); ++s) {
    if (metrics.streams[s].submitted == 0) continue;
    ++active;
    const double x = static_cast<double>(metrics.streams[s].work) /
                     config.WeightOf(static_cast<int>(s));
    sum += x;
    sum_sq += x * x;
  }
  if (active > 0 && sum_sq > 0) {
    metrics.jain_fairness =
        sum * sum / (static_cast<double>(active) * sum_sq);
  }
  return metrics;
}

}  // namespace mdw
