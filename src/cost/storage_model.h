#ifndef MDW_COST_STORAGE_MODEL_H_
#define MDW_COST_STORAGE_MODEL_H_

#include <cstdint>
#include <vector>

#include "fragment/fragmentation.h"

namespace mdw {

/// Storage footprint of one dimension's bitmap index under a
/// fragmentation (after elimination), raw and WAH-compressed.
struct DimensionStorage {
  DimId dim = -1;
  int bitmaps = 0;                        ///< remaining after elimination
  std::int64_t raw_bytes = 0;             ///< bitmaps * N/8
  std::int64_t compressed_bytes = 0;      ///< WAH estimate
};

/// Storage breakdown of the whole physical design (paper Sec. 4.4: each
/// bitmap occupies 223 MB at APB-1 scale, so the bitmap choice dominates
/// everything but the fact table itself).
struct StorageBreakdown {
  std::int64_t fact_bytes = 0;
  int bitmap_count = 0;
  std::int64_t bitmap_raw_bytes = 0;
  std::int64_t bitmap_compressed_bytes = 0;
  std::vector<DimensionStorage> per_dimension;

  std::int64_t TotalRaw() const { return fact_bytes + bitmap_raw_bytes; }
  std::int64_t TotalCompressed() const {
    return fact_bytes + bitmap_compressed_bytes;
  }
};

/// Expected WAH-compressed size of one bitmap with `set_bits` uniformly
/// distributed over `total_bits` rows. Sparse bitmaps cost ~8 bytes per
/// isolated set bit (literal + fill pair); dense bitmaps converge to the
/// raw size times 32/31.
std::int64_t EstimateWahBytes(std::int64_t total_bits, double set_bits);

/// Storage of the fact table plus all *remaining* bitmaps (elimination
/// per Sec. 4.2 applied) under `fragmentation`. Encoded bit slices have
/// ~50 % density and are treated as incompressible; simple per-value
/// bitmaps have density 1/cardinality and compress dramatically.
StorageBreakdown EstimateStorage(const Fragmentation& fragmentation);

}  // namespace mdw

#endif  // MDW_COST_STORAGE_MODEL_H_
