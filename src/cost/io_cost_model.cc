#include "cost/io_cost_model.h"

#include <cmath>

#include "common/check.h"
#include "common/units.h"

namespace mdw {

IoCostModel::IoCostModel(const StarSchema* schema, IoCostParams params)
    : schema_(schema), params_(params) {
  MDW_CHECK(schema_ != nullptr, "cost model needs a schema");
  MDW_CHECK(params_.fact_prefetch_pages >= 1 &&
                params_.bitmap_prefetch_pages >= 1,
            "prefetch granules must be positive");
}

double IoCostModel::ExpectedGroupsHit(double groups, double hits) {
  if (groups <= 0) return 0;
  if (hits <= 0) return 0;
  return groups * (1.0 - std::pow(1.0 - 1.0 / groups, hits));
}

IoCostEstimate IoCostModel::Estimate(const QueryPlan& plan) const {
  const Fragmentation& frag = plan.fragmentation();
  IoCostEstimate est;
  est.fragments = plan.FragmentCount();

  const double tuples_per_frag = frag.TuplesPerFragment();
  const double tuples_per_page =
      static_cast<double>(schema_->physical().TuplesPerPage());
  const double frag_pages = std::ceil(tuples_per_frag / tuples_per_page);
  est.fact_pages_per_fragment = frag_pages;
  est.hits_total = plan.ExpectedHits();
  est.hits_per_fragment = plan.HitsPerFragment();

  // ---- Fact table I/O ----
  const double fact_granule =
      static_cast<double>(params_.fact_prefetch_pages);
  const double granules_per_frag = std::ceil(frag_pages / fact_granule);
  double fact_ops_per_frag;
  double fact_pages_per_frag_read;
  if (!plan.NeedsBitmaps()) {
    // IOC1: every row of the fragment is relevant; the whole fragment is
    // scanned with full prefetch efficiency.
    fact_ops_per_frag = granules_per_frag;
    fact_pages_per_frag_read = frag_pages;
  } else {
    // IOC2: only hit pages are fetched; a granule is read iff it contains
    // at least one hit (hits uniform over the fragment's pages).
    const double hit_granules =
        ExpectedGroupsHit(granules_per_frag, plan.HitsPerFragment());
    fact_ops_per_frag = std::ceil(hit_granules);
    fact_pages_per_frag_read = fact_ops_per_frag * fact_granule;
    if (fact_pages_per_frag_read > frag_pages) {
      fact_pages_per_frag_read = frag_pages;
    }
  }
  est.fact_io_ops = static_cast<std::int64_t>(
      fact_ops_per_frag * static_cast<double>(est.fragments));
  est.fact_pages_read = static_cast<std::int64_t>(
      fact_pages_per_frag_read * static_cast<double>(est.fragments));

  // ---- Bitmap I/O ----
  const double bitmap_frag_pages = frag.BitmapFragmentPages();
  const double bitmap_granule =
      std::min(static_cast<double>(params_.bitmap_prefetch_pages),
               std::max(1.0, std::ceil(bitmap_frag_pages)));
  est.effective_bitmap_granule = bitmap_granule;
  const int bitmaps = plan.BitmapsPerFragment();
  if (bitmaps > 0) {
    const double ops_per_bitmap =
        std::max(1.0, std::ceil(bitmap_frag_pages / bitmap_granule));
    const double pages_per_bitmap = ops_per_bitmap * bitmap_granule;
    est.bitmap_io_ops = static_cast<std::int64_t>(
        ops_per_bitmap * bitmaps * static_cast<double>(est.fragments));
    est.bitmap_pages_read = static_cast<std::int64_t>(
        pages_per_bitmap * bitmaps * static_cast<double>(est.fragments));
  }

  est.total_io_mib =
      static_cast<double>((est.fact_pages_read + est.bitmap_pages_read) *
                          schema_->physical().page_size_bytes) /
      static_cast<double>(kMiB);
  return est;
}

}  // namespace mdw
