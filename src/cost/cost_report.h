#ifndef MDW_COST_COST_REPORT_H_
#define MDW_COST_COST_REPORT_H_

#include <string>
#include <vector>

#include "common/table_printer.h"
#include "cost/io_cost_model.h"

namespace mdw {

/// One column of a Table-3-style comparison: a fragmentation label and the
/// estimate of the same query under it.
struct CostColumn {
  std::string label;
  IoCostEstimate estimate;
};

/// Builds the paper's Table 3 layout (metric rows, one column per
/// fragmentation) for a single query type.
TablePrinter MakeCostComparisonTable(const std::string& query_name,
                                     const std::vector<CostColumn>& columns);

/// Total I/O (MiB) of a weighted query mix under one fragmentation; the
/// ranking criterion of guideline 3 in Sec. 4.7.
struct WeightedQuery {
  StarQuery query;
  double weight = 1.0;
};

double TotalMixIoMib(const StarSchema& schema,
                     const Fragmentation& fragmentation,
                     const std::vector<WeightedQuery>& mix,
                     const IoCostParams& params = {});

}  // namespace mdw

#endif  // MDW_COST_COST_REPORT_H_
