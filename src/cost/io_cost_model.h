#ifndef MDW_COST_IO_COST_MODEL_H_
#define MDW_COST_IO_COST_MODEL_H_

#include <cstdint>

#include "fragment/query_planner.h"

namespace mdw {

/// Prefetch configuration (paper Table 4): reads happen in granules of
/// consecutive pages; the bitmap granule adapts downwards to the bitmap
/// fragment size (Table 4 marks it "var.", and Table 6 reports effective
/// granules 5/3/1 for bitmap fragments of 4.9/2.5/0.16 pages).
struct IoCostParams {
  int fact_prefetch_pages = 8;
  int bitmap_prefetch_pages = 5;
};

/// Analytical I/O estimate for one query under one fragmentation. This
/// reconstructs the formulas of the paper's companion report [33] from the
/// paper's own definitions; see EXPERIMENTS.md for the calibration points
/// it reproduces exactly (795 fact I/Os and 25 MB for 1STORE under F_opt,
/// 691,200 bitmap pages under F_nosupp, n_max, Table 6 sizes).
struct IoCostEstimate {
  std::int64_t fragments = 0;           ///< fragments to be processed
  double fact_pages_per_fragment = 0;   ///< ceil(frag tuples / tuples-per-page)
  double hits_total = 0;                ///< expected hit rows
  double hits_per_fragment = 0;

  std::int64_t fact_io_ops = 0;      ///< granule-sized fact read operations
  std::int64_t fact_pages_read = 0;  ///< pages transferred for the fact table
  std::int64_t bitmap_io_ops = 0;    ///< granule-sized bitmap reads
  std::int64_t bitmap_pages_read = 0;
  double effective_bitmap_granule = 0;  ///< pages per bitmap read

  double total_io_mib = 0;  ///< (fact + bitmap pages) * page size, in MiB

  std::int64_t TotalPagesRead() const {
    return fact_pages_read + bitmap_pages_read;
  }
};

/// Estimates the I/O work of query plans (paper Sec. 4.5). Assumes the
/// paper's uniformity model: hits uniformly distributed over the pages of
/// each processed fragment, fragments stored contiguously on disk.
class IoCostModel {
 public:
  explicit IoCostModel(const StarSchema* schema, IoCostParams params = {});

  IoCostEstimate Estimate(const QueryPlan& plan) const;

  /// Expected number of distinct groups hit when `hits` rows fall uniformly
  /// at random into `groups` equal groups: groups * (1 - (1 - 1/groups)^hits).
  /// Exposed for tests.
  static double ExpectedGroupsHit(double groups, double hits);

  const IoCostParams& params() const { return params_; }

 private:
  const StarSchema* schema_;
  IoCostParams params_;
};

}  // namespace mdw

#endif  // MDW_COST_IO_COST_MODEL_H_
