#include "cost/response_model.h"

#include <algorithm>

#include "alloc/declustering_analysis.h"
#include "common/check.h"

namespace mdw {

ResponseModel::ResponseModel(const StarSchema* schema, SimConfig config)
    : schema_(schema),
      config_(config),
      io_model_(schema, IoCostParams{config.fact_prefetch_pages,
                                     config.bitmap_prefetch_pages}) {
  MDW_CHECK(schema_ != nullptr, "response model needs a schema");
  // Validate the parts this model uses (SimConfig::Validate lives in the
  // sim library, which links against this one).
  MDW_CHECK(config_.num_disks >= 1 && config_.num_nodes >= 1,
            "need at least one disk and one node");
}

ResponseEstimate ResponseModel::Estimate(
    const QueryPlan& plan, const DiskAllocation* allocation) const {
  const IoCostEstimate io = io_model_.Estimate(plan);
  const auto& disk = config_.disk;
  const auto& cpu = config_.cpu;

  ResponseEstimate est;

  // ---- disk demand ----
  // IOC1 scans are sequential within a fragment (no seek between
  // consecutive granules); IOC2 reads skip granules and pay a short seek
  // per operation. Bitmap reads land on other disks (staggered) and pay a
  // short seek too.
  const bool sequential = !plan.NeedsBitmaps();
  const double fact_seek = sequential ? 0.0 : disk.min_seek_ms;
  const double fact_pages_per_op =
      io.fact_io_ops == 0 ? 0
                          : static_cast<double>(io.fact_pages_read) /
                                static_cast<double>(io.fact_io_ops);
  const double fact_ms =
      static_cast<double>(io.fact_io_ops) *
      (fact_seek + disk.settle_ms + disk.per_page_ms * fact_pages_per_op);
  const double bitmap_pages_per_op =
      io.bitmap_io_ops == 0 ? 0
                            : static_cast<double>(io.bitmap_pages_read) /
                                  static_cast<double>(io.bitmap_io_ops);
  const double bitmap_ms =
      static_cast<double>(io.bitmap_io_ops) *
      (disk.min_seek_ms + disk.settle_ms +
       disk.per_page_ms * bitmap_pages_per_op);
  est.disk_ms_total = fact_ms + bitmap_ms;

  // ---- CPU demand ----
  const double per_subquery_overhead =
      static_cast<double>(cpu.initiate_subquery + cpu.terminate_subquery) +
      2 * cpu.MessageInstructions(config_.small_message_bytes);
  const double instructions =
      static_cast<double>(io.fact_pages_read) *
          static_cast<double>(cpu.read_page) +
      static_cast<double>(io.bitmap_pages_read) *
          static_cast<double>(cpu.read_page + cpu.process_bitmap_page) +
      io.hits_total *
          static_cast<double>(cpu.extract_row + cpu.aggregate_row) +
      static_cast<double>(io.fragments) * per_subquery_overhead +
      static_cast<double>(cpu.initiate_query + cpu.terminate_query);
  est.cpu_ms_total = cpu.MsFor(instructions);

  // ---- bounds and pipeline ----
  // Fact reads are confined to the disks actually holding the plan's
  // fragments (possibly few, by the gcd clustering of Sec. 4.6); the
  // staggered bitmap fragments fan out from those disks.
  int fact_disks = static_cast<int>(std::min<std::int64_t>(
      config_.num_disks, std::max<std::int64_t>(1, io.fragments)));
  if (allocation != nullptr &&
      io.fragments <= 1'000'000) {  // enumeration guard
    fact_disks = AnalyzeDeclustering(plan, *allocation).disks_used;
  }
  est.effective_disks = fact_disks;
  const std::int64_t bitmap_disks = std::min<std::int64_t>(
      config_.num_disks,
      static_cast<std::int64_t>(fact_disks) *
          std::max(1, plan.BitmapsPerFragment()));
  // Bitmap and fact phases are sequential within a subquery and hit
  // (largely) disjoint disk sets: add their per-set bounds.
  est.disk_bound_ms =
      fact_ms / static_cast<double>(fact_disks) +
      bitmap_ms / static_cast<double>(bitmap_disks);
  est.cpu_bound_ms =
      est.cpu_ms_total / static_cast<double>(config_.num_nodes);
  const double frags = std::max<double>(1, static_cast<double>(io.fragments));
  est.pipeline_ms = (est.disk_ms_total + est.cpu_ms_total) / frags;
  est.response_ms =
      std::max(est.disk_bound_ms, est.cpu_bound_ms) + est.pipeline_ms;
  return est;
}

}  // namespace mdw
