#include "cost/cost_report.h"

namespace mdw {

TablePrinter MakeCostComparisonTable(const std::string& query_name,
                                     const std::vector<CostColumn>& columns) {
  std::vector<std::string> header = {"query " + query_name};
  for (const auto& c : columns) header.push_back(c.label);

  TablePrinter table(header);
  auto row = [&](const std::string& name, auto getter, bool integral) {
    std::vector<std::string> cells = {name};
    for (const auto& c : columns) {
      const double v = getter(c.estimate);
      cells.push_back(integral
                          ? TablePrinter::Int(static_cast<std::int64_t>(v))
                          : TablePrinter::Num(v, 1));
    }
    table.AddRow(cells);
  };

  row("#fragments to be processed",
      [](const IoCostEstimate& e) { return static_cast<double>(e.fragments); },
      true);
  row("#fact table I/O [ops]",
      [](const IoCostEstimate& e) {
        return static_cast<double>(e.fact_io_ops);
      },
      true);
  row("#fact table I/O [pages]",
      [](const IoCostEstimate& e) {
        return static_cast<double>(e.fact_pages_read);
      },
      true);
  row("#bitmap I/O [pages]",
      [](const IoCostEstimate& e) {
        return static_cast<double>(e.bitmap_pages_read);
      },
      true);
  row("total I/O size [MiB]",
      [](const IoCostEstimate& e) { return e.total_io_mib; }, false);
  return table;
}

double TotalMixIoMib(const StarSchema& schema,
                     const Fragmentation& fragmentation,
                     const std::vector<WeightedQuery>& mix,
                     const IoCostParams& params) {
  const QueryPlanner planner(&schema, &fragmentation);
  const IoCostModel model(&schema, params);
  double total = 0;
  for (const auto& wq : mix) {
    total += wq.weight * model.Estimate(planner.Plan(wq.query)).total_io_mib;
  }
  return total;
}

}  // namespace mdw
