#ifndef MDW_COST_RESPONSE_MODEL_H_
#define MDW_COST_RESPONSE_MODEL_H_

#include "alloc/disk_allocation.h"
#include "cost/io_cost_model.h"
#include "sim/sim_config.h"

namespace mdw {

/// First-order analytic response-time estimate for a query plan on a
/// given hardware configuration. This complements the simulator: the
/// bound-based estimate is what a DBA tool (paper Sec. 4.7) can evaluate
/// for hundreds of fragmentation candidates in microseconds, while the
/// simulator refines the interesting ones with queueing, seek and
/// scheduling effects.
struct ResponseEstimate {
  double disk_ms_total = 0;   ///< summed disk service demand
  double cpu_ms_total = 0;    ///< summed CPU demand
  double disk_bound_ms = 0;   ///< disk_ms_total / num_disks
  double cpu_bound_ms = 0;    ///< cpu_ms_total / num_nodes
  double pipeline_ms = 0;     ///< latency of one average subquery
  double response_ms = 0;     ///< max(bounds) + pipeline latency
  int effective_disks = 0;    ///< disks actually reachable by the plan
};

/// Derives ResponseEstimates from I/O estimates using the device
/// parameters of SimConfig (Table 4).
class ResponseModel {
 public:
  ResponseModel(const StarSchema* schema, SimConfig config);

  /// Without an allocation, the plan is assumed to reach
  /// min(num_disks, fragments) disks. Passing the actual `allocation`
  /// accounts for the gcd clustering of Sec. 4.6 (e.g. 1CODE's 24
  /// fragments landing on only 5 of 100 disks).
  ResponseEstimate Estimate(const QueryPlan& plan,
                            const DiskAllocation* allocation = nullptr) const;

  const SimConfig& config() const { return config_; }

 private:
  const StarSchema* schema_;
  SimConfig config_;
  IoCostModel io_model_;
};

}  // namespace mdw

#endif  // MDW_COST_RESPONSE_MODEL_H_
