#include "cost/storage_model.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "fragment/bitmap_elimination.h"

namespace mdw {

std::int64_t EstimateWahBytes(std::int64_t total_bits, double set_bits) {
  // Raw WAH upper bound: one 32-bit word per 31-bit group.
  const std::int64_t groups = CeilDiv(total_bits, 31);
  const std::int64_t raw_cap = groups * 4;
  if (set_bits <= 0) return 8;  // a single fill word (+ slack)
  // Uniform sparse model: each set bit lands in its own group with
  // probability ~exp(-31*k/n); an isolated bit costs a literal plus the
  // following fill word. Approximate the word count as
  // 2 * (groups that contain a set bit) + 1.
  const double p_group_hit =
      1.0 - std::pow(1.0 - 31.0 / static_cast<double>(total_bits),
                     set_bits);
  const double hit_groups = static_cast<double>(groups) * p_group_hit;
  const auto estimate = static_cast<std::int64_t>(8.0 * hit_groups + 8.0);
  return std::min(estimate, raw_cap);
}

StorageBreakdown EstimateStorage(const Fragmentation& fragmentation) {
  const StarSchema& schema = fragmentation.schema();
  const std::int64_t n = schema.FactCount();

  StorageBreakdown breakdown;
  breakdown.fact_bytes = n * schema.physical().fact_tuple_bytes;

  for (const auto& requirement : BitmapRequirements(fragmentation)) {
    const Dimension& dim = schema.dimension(requirement.dim);
    DimensionStorage storage;
    storage.dim = requirement.dim;
    storage.bitmaps = requirement.remaining;
    storage.raw_bytes = static_cast<std::int64_t>(requirement.remaining) *
                        CeilDiv(n, 8);
    if (dim.index_kind() == IndexKind::kEncoded) {
      // Bit slices are ~half ones: effectively incompressible.
      storage.compressed_bytes = storage.raw_bytes;
    } else {
      // Simple index: the remaining levels are the ones *below* the
      // fragmentation depth (or all levels when the dimension is not
      // fragmented). A level of cardinality c holds c bitmaps of density
      // 1/c each.
      const Depth frag_depth = fragmentation.FragDepthOf(requirement.dim);
      const auto& h = dim.hierarchy();
      std::int64_t compressed = 0;
      for (Depth level = 0; level < h.num_levels(); ++level) {
        if (level <= frag_depth) continue;  // eliminated
        const std::int64_t c = h.Cardinality(level);
        compressed += c * EstimateWahBytes(
                              n, static_cast<double>(n) /
                                     static_cast<double>(c));
      }
      storage.compressed_bytes = compressed;
    }
    breakdown.bitmap_count += storage.bitmaps;
    breakdown.bitmap_raw_bytes += storage.raw_bytes;
    breakdown.bitmap_compressed_bytes += storage.compressed_bytes;
    breakdown.per_dimension.push_back(storage);
  }
  return breakdown;
}

}  // namespace mdw
