#ifndef MDW_WORKLOAD_QUERY_PARSER_H_
#define MDW_WORKLOAD_QUERY_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "fragment/star_query.h"

namespace mdw {

/// Parses the warehouse's SQL-like star-query dialect into a StarQuery,
/// the textual form of the paper's Sec. 3.1 example plus grouped
/// aggregation and top-k:
///
///   SELECT SUM(UnitsSold), COUNT(*), AVG(DollarSales)
///   FROM sales
///   WHERE time.month IN (3, 4) AND product.group = 41
///   GROUP BY product.family
///   ORDER BY SUM(UnitsSold) DESC LIMIT 5
///
/// Grammar (keywords case-insensitive, clauses in this order):
///   SELECT <item> (, <item>)* | SELECT *
///   FROM <fact table>
///   [WHERE <dim>.<level> = <int> | <dim>.<level> IN (<int>, ...)
///     (AND ...)*]                       -- at most one predicate per dim
///   [GROUP BY <dim>.<level>]
///   [ORDER BY <item ref> [ASC|DESC] [LIMIT <k>]]
///
/// SELECT items are SUM(<measure>), COUNT(*), or AVG(<measure>) with
/// measures UnitsSold and DollarSales; COUNT ignores its argument, any
/// other measure name reads UnitsSold (the dialect's historical aliases),
/// and `*` stands for the default list SUM(UnitsSold), SUM(DollarSales).
/// MIN/MAX are rejected. An ORDER BY item ref is either a 1-based SELECT
/// position or the aggregate expression itself (matched against the
/// SELECT list); the default direction is ASC, and ties always break on
/// ascending group key. LIMIT requires ORDER BY.
///
/// Errors return kInvalidArgument carrying a human-readable diagnostic
/// (unknown dimension/level, out-of-range literal, malformed syntax, ...)
/// — the typed status Warehouse::ExecuteSql surfaces unchanged.
StatusOr<StarQuery> ParseSql(const StarSchema& schema, std::string_view sql);

/// Legacy wrapper over ParseSql: returns std::nullopt on error and fills
/// `*error` with the status message. Prefer ParseSql in new code.
std::optional<StarQuery> ParseStarQuery(const StarSchema& schema,
                                        const std::string& sql,
                                        std::string* error);

}  // namespace mdw

#endif  // MDW_WORKLOAD_QUERY_PARSER_H_
