#ifndef MDW_WORKLOAD_QUERY_PARSER_H_
#define MDW_WORKLOAD_QUERY_PARSER_H_

#include <optional>
#include <string>

#include "fragment/star_query.h"

namespace mdw {

/// Parses a minimal SQL-like star-query dialect into a StarQuery, the
/// textual form of the paper's Sec. 3.1 example:
///
///   SELECT SUM(UnitsSold), SUM(DollarSales)
///   FROM sales
///   WHERE time.month = 3 AND product.group = 41
///
/// Supported predicate forms (per dimension at most one predicate):
///   <dimension>.<level> = <integer>
///   <dimension>.<level> IN (<integer>, <integer>, ...)
///
/// The SELECT list and FROM clause are validated but only the WHERE
/// clause affects the resulting StarQuery (allocation decisions do not
/// depend on the selected measures). Keywords are case-insensitive;
/// dimension and level names follow the schema. On error, returns
/// std::nullopt and fills `*error` with a human-readable message.
std::optional<StarQuery> ParseStarQuery(const StarSchema& schema,
                                        const std::string& sql,
                                        std::string* error);

}  // namespace mdw

#endif  // MDW_WORKLOAD_QUERY_PARSER_H_
