#ifndef MDW_WORKLOAD_ARRIVAL_GENERATOR_H_
#define MDW_WORKLOAD_ARRIVAL_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sched/query_scheduler.h"
#include "workload/query_generator.h"

namespace mdw {

/// Settings of the open-loop arrival process.
struct ArrivalConfig {
  /// Concurrent client streams; every arrival is tagged with a stream id
  /// in [0, num_streams).
  int num_streams = 1;
  /// Mean gap between consecutive arrivals of the GLOBAL Poisson process
  /// (exponential interarrivals), in virtual-time ticks. Open loop: the
  /// process never waits for completions.
  double mean_interarrival_vt = 1000.0;
  /// Zipf skew of stream popularity: 0 = arrivals spread uniformly over
  /// the streams, larger values make low-numbered streams hotter (stream
  /// 0 hottest) — the "few heavy tenants" shape of real serving traffic.
  double stream_skew_theta = 0.0;
  /// Query mix, drawn uniformly per arrival (parameters randomized by
  /// QueryGenerator). Must be non-empty.
  std::vector<QueryType> mix = {QueryType::k1Month1Group};
  /// Zipf skew of the query parameter values (QueryGenerator's knob).
  double query_skew_theta = 0.0;
  std::uint64_t seed = 42;
};

/// Seeded open-loop arrival source: produces a deterministic trace of
/// (virtual time, stream, query) suitable for QueryScheduler::Run — the
/// same (schema, config) always replays the exact same trace, so serving
/// experiments are reproducible end to end.
class ArrivalGenerator {
 public:
  ArrivalGenerator(const StarSchema* schema, ArrivalConfig config);

  /// The next arrival; virtual times are non-decreasing across calls.
  Arrival Next();

  /// The next `count` arrivals as a ready-to-schedule trace.
  std::vector<Arrival> Generate(int count);

  const ArrivalConfig& config() const { return config_; }

 private:
  ArrivalConfig config_;
  Rng rng_;
  QueryGenerator generator_;
  double clock_vt_ = 0;
};

}  // namespace mdw

#endif  // MDW_WORKLOAD_ARRIVAL_GENERATOR_H_
