#ifndef MDW_WORKLOAD_QUERY_GENERATOR_H_
#define MDW_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fragment/star_query.h"

namespace mdw {

/// The paper's APB-1 query types (Sec. 3.1 and Sec. 6).
enum class QueryType {
  k1Store,         ///< 1STORE: one customer store
  k1Month,         ///< 1MONTH: one month
  k1Code,          ///< 1CODE: one product code
  k1Quarter,       ///< 1QUARTER: one quarter
  k1Month1Group,   ///< 1MONTH1GROUP
  k1Code1Month,    ///< 1CODE1MONTH
  k1Code1Quarter,  ///< 1CODE1QUARTER
  k1Group1Store,   ///< 1GROUP1STORE
};

const char* ToString(QueryType type);

/// Generates random instances of the paper's query types: the query
/// structure is fixed, the selected value(s) are chosen uniformly at
/// random (paper Sec. 5: "specific parameters are chosen at random"). An
/// optional Zipf skew theta (> 0) makes some values hotter — the data-skew
/// extension the paper lists as future work.
class QueryGenerator {
 public:
  QueryGenerator(const StarSchema* schema, std::uint64_t seed,
                 double skew_theta = 0.0);

  StarQuery Generate(QueryType type);
  std::vector<StarQuery> GenerateMany(QueryType type, int count);

 private:
  std::int64_t Pick(DimId dim, Depth depth);

  const StarSchema* schema_;
  Rng rng_;
  double skew_theta_;
};

}  // namespace mdw

#endif  // MDW_WORKLOAD_QUERY_GENERATOR_H_
