#include "workload/query_generator.h"

#include "common/check.h"
#include "schema/apb1.h"

namespace mdw {

const char* ToString(QueryType type) {
  switch (type) {
    case QueryType::k1Store: return "1STORE";
    case QueryType::k1Month: return "1MONTH";
    case QueryType::k1Code: return "1CODE";
    case QueryType::k1Quarter: return "1QUARTER";
    case QueryType::k1Month1Group: return "1MONTH1GROUP";
    case QueryType::k1Code1Month: return "1CODE1MONTH";
    case QueryType::k1Code1Quarter: return "1CODE1QUARTER";
    case QueryType::k1Group1Store: return "1GROUP1STORE";
  }
  return "?";
}

QueryGenerator::QueryGenerator(const StarSchema* schema, std::uint64_t seed,
                               double skew_theta)
    : schema_(schema), rng_(seed), skew_theta_(skew_theta) {
  MDW_CHECK(schema_ != nullptr, "generator needs a schema");
  MDW_CHECK(schema_->num_dimensions() == 4,
            "query generator expects the APB-1 dimension layout");
}

std::int64_t QueryGenerator::Pick(DimId dim, Depth depth) {
  const std::int64_t card =
      schema_->dimension(dim).hierarchy().Cardinality(depth);
  if (skew_theta_ > 0.0) return rng_.Zipf(card, skew_theta_);
  return rng_.Uniform(0, card - 1);
}

StarQuery QueryGenerator::Generate(QueryType type) {
  using apb1_queries::OneCode;
  using apb1_queries::OneCodeOneMonth;
  using apb1_queries::OneCodeOneQuarter;
  using apb1_queries::OneGroupOneStore;
  using apb1_queries::OneMonth;
  using apb1_queries::OneMonthOneGroup;
  using apb1_queries::OneQuarter;
  using apb1_queries::OneStore;
  // Depths per the APB-1 hierarchy layout (see schema/apb1.cc).
  const Depth group = 3, code = 5, store = 1, quarter = 1, month = 2;
  switch (type) {
    case QueryType::k1Store:
      return OneStore(Pick(kApb1Customer, store));
    case QueryType::k1Month:
      return OneMonth(Pick(kApb1Time, month));
    case QueryType::k1Code:
      return OneCode(Pick(kApb1Product, code));
    case QueryType::k1Quarter:
      return OneQuarter(Pick(kApb1Time, quarter));
    case QueryType::k1Month1Group:
      return OneMonthOneGroup(Pick(kApb1Time, month),
                              Pick(kApb1Product, group));
    case QueryType::k1Code1Month:
      return OneCodeOneMonth(Pick(kApb1Product, code),
                             Pick(kApb1Time, month));
    case QueryType::k1Code1Quarter:
      return OneCodeOneQuarter(Pick(kApb1Product, code),
                               Pick(kApb1Time, quarter));
    case QueryType::k1Group1Store:
      return OneGroupOneStore(Pick(kApb1Product, group),
                              Pick(kApb1Customer, store));
  }
  MDW_CHECK(false, "unknown query type");
  return OneMonth(0);
}

std::vector<StarQuery> QueryGenerator::GenerateMany(QueryType type,
                                                    int count) {
  MDW_CHECK(count >= 1, "need at least one query");
  std::vector<StarQuery> queries;
  queries.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) queries.push_back(Generate(type));
  return queries;
}

}  // namespace mdw
