#ifndef MDW_WORKLOAD_WORKLOAD_DRIVER_H_
#define MDW_WORKLOAD_WORKLOAD_DRIVER_H_

#include <vector>

#include "sim/simulator.h"
#include "workload/query_generator.h"

namespace mdw {

/// One component of a query mix.
struct WorkloadSpec {
  QueryType type;
  int count = 1;
};

/// Convenience driver matching the paper's experimental procedure: for a
/// single simulation all queries are of the same type with randomly chosen
/// parameters, issued in single-user mode (Sec. 5). Multi-user mixes are
/// the extension of Sec. 7's future-work list.
class WorkloadDriver {
 public:
  WorkloadDriver(const StarSchema* schema, const Fragmentation* fragmentation,
                 SimConfig config, double skew_theta = 0.0);

  /// `repetitions` random instances of `type`, run back-to-back; returns
  /// averaged statistics (the paper's "average response time").
  SimResult RunSingleUser(QueryType type, int repetitions);

  /// Runs a mix with `streams` concurrent query streams.
  SimResult RunMix(const std::vector<WorkloadSpec>& mix, int streams);

  const SimConfig& config() const { return simulator_.config(); }

 private:
  const StarSchema* schema_;
  Simulator simulator_;
  QueryGenerator generator_;
};

}  // namespace mdw

#endif  // MDW_WORKLOAD_WORKLOAD_DRIVER_H_
