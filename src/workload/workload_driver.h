#ifndef MDW_WORKLOAD_WORKLOAD_DRIVER_H_
#define MDW_WORKLOAD_WORKLOAD_DRIVER_H_

#include <vector>

#include "core/warehouse.h"
#include "sim/metrics.h"
#include "workload/query_generator.h"

namespace mdw {

/// One component of a query mix.
struct WorkloadSpec {
  QueryType type;
  int count = 1;
};

/// Convenience driver matching the paper's experimental procedure: for a
/// single simulation all queries are of the same type with randomly chosen
/// parameters, issued in single-user mode (Sec. 5). Multi-user mixes are
/// the extension of Sec. 7's future-work list. The driver targets the
/// mdw::Warehouse façade, so the same workload can run against any
/// execution backend.
///
/// All batch paths are plan-first: Warehouse::ExecuteBatch derives (or
/// cache-hits) exactly one QueryPlan per generated query and the backends
/// never re-plan, so a driver run of N queries costs N plan derivations at
/// most — fewer when the generator repeats parameters and the warehouse's
/// plan cache is enabled (see Warehouse::plan_cache_stats()).
class WorkloadDriver {
 public:
  /// Drives workloads against `warehouse`; the query generator is seeded
  /// from the warehouse seed.
  explicit WorkloadDriver(Warehouse warehouse, double skew_theta = 0.0);

  /// Compatibility: stands up a kSimulated Warehouse over copies of the
  /// given schema/fragmentation.
  WorkloadDriver(const StarSchema* schema, const Fragmentation* fragmentation,
                 SimConfig config, double skew_theta = 0.0);

  /// `repetitions` random instances of `type`, run back-to-back; returns
  /// averaged statistics (the paper's "average response time"). Requires a
  /// simulated backend.
  SimResult RunSingleUser(QueryType type, int repetitions);

  /// Runs a mix with `streams` concurrent query streams. Requires a
  /// simulated backend.
  SimResult RunMix(const std::vector<WorkloadSpec>& mix, int streams);

  /// Façade-native variants returning the unified BatchOutcome; these work
  /// on every backend (the materialized one ignores `streams`).
  BatchOutcome RunBatch(QueryType type, int repetitions, int streams = 1);
  BatchOutcome RunMixBatch(const std::vector<WorkloadSpec>& mix, int streams);

  const Warehouse& warehouse() const { return warehouse_; }

  /// Simulator settings of the underlying warehouse; like
  /// Warehouse::sim_config(), aborts on a materialized backend.
  const SimConfig& config() const { return warehouse_.sim_config(); }

 private:
  Warehouse warehouse_;
  QueryGenerator generator_;
};

}  // namespace mdw

#endif  // MDW_WORKLOAD_WORKLOAD_DRIVER_H_
