#include "workload/workload_driver.h"

#include "common/check.h"

namespace mdw {

WorkloadDriver::WorkloadDriver(const StarSchema* schema,
                               const Fragmentation* fragmentation,
                               SimConfig config, double skew_theta)
    : schema_(schema),
      simulator_(schema, fragmentation, config),
      generator_(schema, config.seed, skew_theta) {}

SimResult WorkloadDriver::RunSingleUser(QueryType type, int repetitions) {
  return simulator_.RunSingleUser(generator_.GenerateMany(type, repetitions));
}

SimResult WorkloadDriver::RunMix(const std::vector<WorkloadSpec>& mix,
                                 int streams) {
  MDW_CHECK(!mix.empty(), "empty workload mix");
  std::vector<StarQuery> queries;
  for (const auto& spec : mix) {
    for (int i = 0; i < spec.count; ++i) {
      queries.push_back(generator_.Generate(spec.type));
    }
  }
  return simulator_.RunMultiUser(queries, streams);
}

}  // namespace mdw
