#include "workload/workload_driver.h"

#include <utility>

#include "common/check.h"

namespace mdw {

namespace {

WarehouseConfig SimulatedConfigOf(const StarSchema* schema,
                                  const Fragmentation* fragmentation,
                                  SimConfig config) {
  MDW_CHECK(schema != nullptr && fragmentation != nullptr,
            "driver needs schema and fragmentation");
  MDW_CHECK(&fragmentation->schema() == schema,
            "fragmentation must belong to the schema");
  return WarehouseConfig{.schema = *schema,
                         .fragmentation = fragmentation->attrs(),
                         .backend = BackendKind::kSimulated,
                         .sim = config,
                         .seed = config.seed};
}

}  // namespace

WorkloadDriver::WorkloadDriver(Warehouse warehouse, double skew_theta)
    : warehouse_(std::move(warehouse)),
      generator_(&warehouse_.schema(), warehouse_.seed(), skew_theta) {}

WorkloadDriver::WorkloadDriver(const StarSchema* schema,
                               const Fragmentation* fragmentation,
                               SimConfig config, double skew_theta)
    : WorkloadDriver(
          Warehouse(SimulatedConfigOf(schema, fragmentation, config)),
          skew_theta) {}

SimResult WorkloadDriver::RunSingleUser(QueryType type, int repetitions) {
  const auto batch = RunBatch(type, repetitions, /*streams=*/1);
  MDW_CHECK(batch.sim.has_value(), "RunSingleUser needs a simulated backend");
  return *batch.sim;
}

SimResult WorkloadDriver::RunMix(const std::vector<WorkloadSpec>& mix,
                                 int streams) {
  const auto batch = RunMixBatch(mix, streams);
  MDW_CHECK(batch.sim.has_value(), "RunMix needs a simulated backend");
  return *batch.sim;
}

BatchOutcome WorkloadDriver::RunBatch(QueryType type, int repetitions,
                                      int streams) {
  return warehouse_.ExecuteBatch(generator_.GenerateMany(type, repetitions),
                                 streams);
}

BatchOutcome WorkloadDriver::RunMixBatch(const std::vector<WorkloadSpec>& mix,
                                         int streams) {
  MDW_CHECK(!mix.empty(), "empty workload mix");
  std::vector<StarQuery> queries;
  for (const auto& spec : mix) {
    for (int i = 0; i < spec.count; ++i) {
      queries.push_back(generator_.Generate(spec.type));
    }
  }
  return warehouse_.ExecuteBatch(queries, streams);
}

}  // namespace mdw
