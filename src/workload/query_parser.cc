#include "workload/query_parser.h"

#include <cctype>
#include <cstdio>
#include <vector>

namespace mdw {

namespace {

/// Token stream over the SQL text: identifiers/keywords, integers, and
/// single-character punctuation ( ) , . = *.
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const std::string& token() const { return token_; }
  bool at_end() const { return token_.empty(); }

  /// Case-insensitive keyword/identifier comparison.
  bool Is(const std::string& expected) const {
    if (token_.size() != expected.size()) return false;
    for (std::size_t i = 0; i < token_.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(token_[i])) !=
          std::tolower(static_cast<unsigned char>(expected[i]))) {
        return false;
      }
    }
    return true;
  }

  /// Consumes the current token if it matches.
  bool Accept(const std::string& expected) {
    if (!Is(expected)) return false;
    Advance();
    return true;
  }

  void Advance() {
    token_.clear();
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == text_.size()) return;
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        token_.push_back(text_[pos_++]);
      }
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        token_.push_back(text_[pos_++]);
      }
      return;
    }
    token_.push_back(text_[pos_++]);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::string token_;
};

bool IsInteger(const std::string& token) {
  if (token.empty()) return false;
  for (const char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::optional<StarQuery> Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return std::nullopt;
}

}  // namespace

std::optional<StarQuery> ParseStarQuery(const StarSchema& schema,
                                        const std::string& sql,
                                        std::string* error) {
  Lexer lex(sql);

  // ---- SELECT list ----
  if (!lex.Accept("SELECT")) return Fail(error, "expected SELECT");
  bool any_item = false;
  while (!lex.at_end() && !lex.Is("FROM")) {
    if (lex.Accept("SUM") || lex.Accept("COUNT") || lex.Accept("AVG") ||
        lex.Accept("MIN") || lex.Accept("MAX")) {
      if (!lex.Accept("(")) return Fail(error, "expected ( after aggregate");
      if (lex.Is(")")) return Fail(error, "empty aggregate argument");
      lex.Advance();  // measure name or *
      if (!lex.Accept(")")) {
        return Fail(error, "expected ) closing the aggregate");
      }
    } else if (lex.Accept("*")) {
      // allow SELECT *
    } else {
      return Fail(error, "expected aggregate or * in the SELECT list, got '" +
                             lex.token() + "'");
    }
    any_item = true;
    if (!lex.Accept(",")) break;
  }
  if (!any_item) return Fail(error, "empty SELECT list");

  // ---- FROM ----
  if (!lex.Accept("FROM")) return Fail(error, "expected FROM");
  if (!lex.Is(schema.fact_table_name())) {
    return Fail(error, "unknown fact table '" + lex.token() + "' (expected '" +
                           schema.fact_table_name() + "')");
  }
  lex.Advance();

  // ---- WHERE ----
  std::vector<Predicate> predicates;
  if (lex.Accept("WHERE")) {
    do {
      // <dimension> . <level>
      const std::string dim_name = lex.token();
      const DimId dim = schema.DimensionIdOf(dim_name);
      if (dim < 0) {
        return Fail(error, "unknown dimension '" + dim_name + "'");
      }
      lex.Advance();
      if (!lex.Accept(".")) {
        return Fail(error, "expected . after dimension name");
      }
      const std::string level_name = lex.token();
      const Depth depth =
          schema.dimension(dim).hierarchy().DepthOf(level_name);
      if (depth < 0) {
        return Fail(error, "unknown level '" + level_name +
                               "' of dimension '" + dim_name + "'");
      }
      lex.Advance();

      // = value | IN (v, v, ...)
      Predicate predicate{dim, depth, {}};
      const std::int64_t card =
          schema.dimension(dim).hierarchy().Cardinality(depth);
      auto read_value = [&]() -> bool {
        if (!IsInteger(lex.token())) return false;
        const std::int64_t value = std::stoll(lex.token());
        if (value < 0 || value >= card) return false;
        predicate.values.push_back(value);
        lex.Advance();
        return true;
      };
      if (lex.Accept("=")) {
        if (!read_value()) {
          return Fail(error, "expected a value in [0, " +
                                 std::to_string(card) + ") after =, got '" +
                                 lex.token() + "'");
        }
      } else if (lex.Accept("IN")) {
        if (!lex.Accept("(")) return Fail(error, "expected ( after IN");
        do {
          if (!read_value()) {
            return Fail(error, "expected a value in [0, " +
                                   std::to_string(card) + ") in the IN "
                                   "list, got '" + lex.token() + "'");
          }
        } while (lex.Accept(","));
        if (!lex.Accept(")")) {
          return Fail(error, "expected ) closing the IN list");
        }
      } else {
        return Fail(error, "expected = or IN after the attribute");
      }
      for (const auto& existing : predicates) {
        if (existing.dim == dim) {
          return Fail(error,
                      "duplicate predicate on dimension '" + dim_name + "'");
        }
      }
      predicates.push_back(std::move(predicate));
    } while (lex.Accept("AND"));
  }

  if (!lex.at_end()) {
    return Fail(error, "unexpected trailing input at '" + lex.token() + "'");
  }
  return StarQuery("parsed", std::move(predicates));
}

}  // namespace mdw
