#include "workload/query_parser.h"

#include <cctype>
#include <cstdio>
#include <utility>
#include <vector>

namespace mdw {

namespace {

/// Token stream over the SQL text: identifiers/keywords, integers, and
/// single-character punctuation ( ) , . = *.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { Advance(); }

  const std::string& token() const { return token_; }
  bool at_end() const { return token_.empty(); }

  /// Case-insensitive keyword/identifier comparison.
  bool Is(const std::string& expected) const {
    if (token_.size() != expected.size()) return false;
    for (std::size_t i = 0; i < token_.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(token_[i])) !=
          std::tolower(static_cast<unsigned char>(expected[i]))) {
        return false;
      }
    }
    return true;
  }

  /// Consumes the current token if it matches.
  bool Accept(const std::string& expected) {
    if (!Is(expected)) return false;
    Advance();
    return true;
  }

  void Advance() {
    token_.clear();
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == text_.size()) return;
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        token_.push_back(text_[pos_++]);
      }
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        token_.push_back(text_[pos_++]);
      }
      return;
    }
    token_.push_back(text_[pos_++]);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::string token_;
};

bool IsInteger(const std::string& token) {
  if (token.empty()) return false;
  for (const char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

Status Err(std::string message) {
  return Status::InvalidArgument(std::move(message));
}

/// Parses one aggregate expression SUM(m) | COUNT(*) | AVG(m) into `out`.
/// Returns false with `*error` set when the tokens are not one.
bool ParseAggExpr(Lexer& lex, AggItem* out, std::string* error) {
  AggFn fn;
  if (lex.Is("SUM")) {
    fn = AggFn::kSum;
  } else if (lex.Is("COUNT")) {
    fn = AggFn::kCount;
  } else if (lex.Is("AVG")) {
    fn = AggFn::kAvg;
  } else if (lex.Is("MIN") || lex.Is("MAX")) {
    *error = "MIN/MAX aggregates are not supported (use SUM, COUNT, AVG)";
    return false;
  } else {
    *error =
        "expected aggregate or * in the SELECT list, got '" + lex.token() +
        "'";
    return false;
  }
  lex.Advance();
  if (!lex.Accept("(")) {
    *error = "expected ( after aggregate";
    return false;
  }
  if (lex.Is(")")) {
    *error = "empty aggregate argument";
    return false;
  }
  // DollarSales selects the dollar measure; every other argument reads
  // UnitsSold (COUNT ignores it entirely). Normalising COUNT's measure
  // keeps COUNT(*) == COUNT(UnitsSold) in the plan-cache signature.
  const MeasureId measure = fn != AggFn::kCount && lex.Is("DollarSales")
                                ? MeasureId::kDollarSales
                                : MeasureId::kUnitsSold;
  lex.Advance();  // measure name or *
  if (!lex.Accept(")")) {
    *error = "expected ) closing the aggregate";
    return false;
  }
  out->fn = fn;
  out->measure = measure;
  return true;
}

/// Parses <dimension> . <level> against the schema into (dim, depth).
Status ParseAttribute(const StarSchema& schema, Lexer& lex, DimId* dim,
                      Depth* depth) {
  const std::string dim_name = lex.token();
  *dim = schema.DimensionIdOf(dim_name);
  if (*dim < 0) return Err("unknown dimension '" + dim_name + "'");
  lex.Advance();
  if (!lex.Accept(".")) return Err("expected . after dimension name");
  const std::string level_name = lex.token();
  *depth = schema.dimension(*dim).hierarchy().DepthOf(level_name);
  if (*depth < 0) {
    return Err("unknown level '" + level_name + "' of dimension '" +
               dim_name + "'");
  }
  lex.Advance();
  return Status::Ok();
}

}  // namespace

StatusOr<StarQuery> ParseSql(const StarSchema& schema, std::string_view sql) {
  Lexer lex(sql);

  // ---- SELECT list ----
  if (!lex.Accept("SELECT")) return Err("expected SELECT");
  std::vector<AggItem> items;
  bool any_item = false;
  while (!lex.at_end() && !lex.Is("FROM")) {
    if (lex.Accept("*")) {
      // SELECT * = the default measure list.
      for (const AggItem& item : AggregateSpec::Default().items) {
        items.push_back(item);
      }
    } else {
      AggItem item;
      std::string error;
      if (!ParseAggExpr(lex, &item, &error)) return Err(std::move(error));
      items.push_back(item);
    }
    any_item = true;
    if (!lex.Accept(",")) break;
  }
  if (!any_item) return Err("empty SELECT list");

  // ---- FROM ----
  if (!lex.Accept("FROM")) return Err("expected FROM");
  if (!lex.Is(schema.fact_table_name())) {
    return Err("unknown fact table '" + lex.token() + "' (expected '" +
               schema.fact_table_name() + "')");
  }
  lex.Advance();

  // ---- WHERE ----
  std::vector<Predicate> predicates;
  if (lex.Accept("WHERE")) {
    do {
      DimId dim;
      Depth depth;
      if (Status s = ParseAttribute(schema, lex, &dim, &depth); !s.ok()) {
        return s;
      }

      // = value | IN (v, v, ...)
      Predicate predicate{dim, depth, {}};
      const std::int64_t card =
          schema.dimension(dim).hierarchy().Cardinality(depth);
      auto read_value = [&]() -> bool {
        if (!IsInteger(lex.token())) return false;
        const std::int64_t value = std::stoll(lex.token());
        if (value < 0 || value >= card) return false;
        predicate.values.push_back(value);
        lex.Advance();
        return true;
      };
      if (lex.Accept("=")) {
        if (!read_value()) {
          return Err("expected a value in [0, " + std::to_string(card) +
                     ") after =, got '" + lex.token() + "'");
        }
      } else if (lex.Accept("IN")) {
        if (!lex.Accept("(")) return Err("expected ( after IN");
        do {
          if (!read_value()) {
            return Err("expected a value in [0, " + std::to_string(card) +
                       ") in the IN list, got '" + lex.token() + "'");
          }
        } while (lex.Accept(","));
        if (!lex.Accept(")")) return Err("expected ) closing the IN list");
      } else {
        return Err("expected = or IN after the attribute");
      }
      for (const auto& existing : predicates) {
        if (existing.dim == dim) {
          return Err("duplicate predicate on dimension '" +
                     schema.dimension(dim).name() + "'");
        }
      }
      predicates.push_back(std::move(predicate));
    } while (lex.Accept("AND"));
  }

  // ---- GROUP BY ----
  std::optional<GroupBy> group_by;
  if (lex.Accept("GROUP")) {
    if (!lex.Accept("BY")) return Err("expected BY after GROUP");
    DimId dim;
    Depth depth;
    if (Status s = ParseAttribute(schema, lex, &dim, &depth); !s.ok()) {
      return s;
    }
    group_by = GroupBy{dim, depth};
  }

  // ---- ORDER BY ... [LIMIT k] ----
  std::optional<OrderBy> order_by;
  if (lex.Accept("ORDER")) {
    if (!lex.Accept("BY")) return Err("expected BY after ORDER");
    OrderBy ob;
    if (IsInteger(lex.token())) {
      const std::int64_t position = std::stoll(lex.token());
      if (position < 1 || position > static_cast<std::int64_t>(items.size())) {
        return Err("ORDER BY position " + lex.token() +
                   " is outside the SELECT list (1.." +
                   std::to_string(items.size()) + ")");
      }
      ob.item = static_cast<int>(position - 1);
      lex.Advance();
    } else {
      AggItem ref;
      std::string error;
      if (!ParseAggExpr(lex, &ref, &error)) return Err(std::move(error));
      int found = -1;
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i] == ref) {
          found = static_cast<int>(i);
          break;
        }
      }
      if (found < 0) {
        return Err("ORDER BY aggregate is not in the SELECT list");
      }
      ob.item = found;
    }
    if (lex.Accept("DESC")) {
      ob.descending = true;
    } else {
      lex.Accept("ASC");  // the default
    }
    if (lex.Accept("LIMIT")) {
      if (!IsInteger(lex.token())) {
        return Err("expected a row count after LIMIT, got '" + lex.token() +
                   "'");
      }
      ob.limit = std::stoll(lex.token());
      lex.Advance();
      if (ob.limit < 1) return Err("LIMIT must be at least 1");
    }
    order_by = ob;
  }

  if (!lex.at_end()) {
    return Err("unexpected trailing input at '" + lex.token() + "'");
  }
  return StarQuery("parsed", std::move(predicates), AggregateSpec{items},
                   group_by, order_by);
}

std::optional<StarQuery> ParseStarQuery(const StarSchema& schema,
                                        const std::string& sql,
                                        std::string* error) {
  StatusOr<StarQuery> parsed = ParseSql(schema, sql);
  if (!parsed.ok()) {
    if (error != nullptr) *error = parsed.status().message();
    return std::nullopt;
  }
  return std::move(parsed).value();
}

}  // namespace mdw
