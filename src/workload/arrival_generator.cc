#include "workload/arrival_generator.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace mdw {

ArrivalGenerator::ArrivalGenerator(const StarSchema* schema,
                                   ArrivalConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      generator_(schema, config_.seed + 1, config_.query_skew_theta) {
  MDW_CHECK(schema != nullptr, "arrival generator needs a schema");
  MDW_CHECK(config_.num_streams >= 1, "need at least one stream");
  MDW_CHECK(config_.mean_interarrival_vt > 0,
            "mean interarrival must be positive");
  MDW_CHECK(!config_.mix.empty(), "query mix must be non-empty");
}

Arrival ArrivalGenerator::Next() {
  // Exponential interarrival via inverse CDF; 1 - u avoids log(0). The
  // virtual clock stays a real and is rounded per arrival, so long
  // traces accumulate no drift.
  const double gap =
      -config_.mean_interarrival_vt * std::log(1.0 - rng_.UniformReal());
  clock_vt_ += gap;

  // Draw order is part of the determinism contract: time gap, stream,
  // mix entry, then the query's own parameters (QueryGenerator has its
  // own engine, so the mix choice never perturbs parameter replay).
  const auto vt = static_cast<std::int64_t>(std::llround(clock_vt_));
  const int stream = static_cast<int>(
      rng_.Zipf(config_.num_streams, config_.stream_skew_theta));
  const auto pick = static_cast<std::size_t>(
      rng_.Uniform(0, static_cast<std::int64_t>(config_.mix.size()) - 1));
  return Arrival{vt, stream, generator_.Generate(config_.mix[pick])};
}

std::vector<Arrival> ArrivalGenerator::Generate(int count) {
  MDW_CHECK(count >= 0, "count must be non-negative");
  std::vector<Arrival> arrivals;
  arrivals.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) arrivals.push_back(Next());
  return arrivals;
}

}  // namespace mdw
