#include "alloc/declustering_analysis.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"

namespace mdw {

DeclusteringReport AnalyzeDeclustering(const QueryPlan& plan,
                                       const DiskAllocation& allocation) {
  DeclusteringReport report;
  std::vector<bool> used(static_cast<std::size_t>(allocation.num_disks()),
                         false);
  plan.ForEachFragment([&](FragId id) {
    ++report.fragments_accessed;
    used[static_cast<std::size_t>(allocation.DiskOfFragment(id))] = true;
  });
  report.disks_used =
      static_cast<int>(std::count(used.begin(), used.end(), true));
  report.ideal_disks = static_cast<int>(
      std::min<std::int64_t>(report.fragments_accessed,
                             allocation.num_disks()));
  report.parallelism_loss =
      report.disks_used == 0
          ? 1.0
          : static_cast<double>(report.ideal_disks) /
                static_cast<double>(report.disks_used);
  return report;
}

int DisksForStride(std::int64_t stride, std::int64_t count, int num_disks) {
  MDW_CHECK(num_disks >= 1, "need at least one disk");
  if (count <= 0) return 0;
  const std::int64_t g = std::gcd(stride % num_disks,
                                  static_cast<std::int64_t>(num_disks));
  const std::int64_t cycle = num_disks / (g == 0 ? num_disks : g);
  return static_cast<int>(std::min<std::int64_t>(count, cycle));
}

std::vector<DiskCountChoice> RankDiskCounts(
    const StarSchema& schema, const Fragmentation& fragmentation,
    const std::vector<StarQuery>& queries, int lo, int hi) {
  MDW_CHECK(lo >= 1 && hi >= lo, "invalid disk-count range");
  std::vector<DiskCountChoice> choices;
  const QueryPlanner planner(&schema, &fragmentation);
  std::vector<QueryPlan> plans;
  plans.reserve(queries.size());
  for (const auto& q : queries) plans.push_back(planner.Plan(q));

  for (int d = lo; d <= hi; ++d) {
    DiskCountChoice choice;
    choice.num_disks = d;
    choice.is_prime = IsPrime(d);
    AllocationConfig config;
    config.num_disks = d;
    const DiskAllocation allocation(&fragmentation, config,
                                    /*bitmap_count=*/0);
    for (const auto& plan : plans) {
      const auto report = AnalyzeDeclustering(plan, allocation);
      choice.worst_parallelism_loss =
          std::max(choice.worst_parallelism_loss, report.parallelism_loss);
    }
    choices.push_back(choice);
  }
  return choices;
}

}  // namespace mdw
