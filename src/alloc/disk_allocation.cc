#include "alloc/disk_allocation.h"

#include "common/check.h"

namespace mdw {

DiskAllocation::DiskAllocation(const Fragmentation* fragmentation,
                               AllocationConfig config, int bitmap_count)
    : fragmentation_(fragmentation),
      config_(config),
      bitmap_count_(bitmap_count) {
  MDW_CHECK(fragmentation_ != nullptr, "allocation needs a fragmentation");
  MDW_CHECK(config_.num_disks >= 1, "need at least one disk");
  MDW_CHECK(bitmap_count_ >= 0, "bitmap count must be non-negative");
  MDW_CHECK(config_.round_gap >= 0, "round gap must be non-negative");
  MDW_CHECK(config_.cluster_factor >= 1, "cluster factor must be positive");
}

std::int64_t DiskAllocation::ClusterOf(FragId id) const {
  return id / config_.cluster_factor;
}

int DiskAllocation::DiskOfFragment(FragId id) const {
  MDW_CHECK(id >= 0 && id < fragmentation_->FragmentCount(),
            "fragment id out of range");
  const auto d = static_cast<std::int64_t>(config_.num_disks);
  const std::int64_t cluster = ClusterOf(id);
  const std::int64_t round = cluster / d;
  return static_cast<int>((cluster + round * config_.round_gap) % d);
}

int DiskAllocation::DiskOfBitmapFragment(FragId id, int bitmap_index) const {
  MDW_CHECK(bitmap_index >= 0 && bitmap_index < bitmap_count_,
            "bitmap index out of range");
  const int fact_disk = DiskOfFragment(id);
  switch (config_.bitmap_placement) {
    case BitmapPlacement::kSameDisk:
      return fact_disk;
    case BitmapPlacement::kSameNode: {
      MDW_CHECK(config_.node_count >= 1,
                "same-node placement needs the node count");
      // Stagger across the owner node's disks only (stride = node count).
      const std::int64_t stride = config_.node_count;
      return static_cast<int>(
          (static_cast<std::int64_t>(fact_disk) +
           (1 + bitmap_index) * stride) %
          config_.num_disks);
    }
    case BitmapPlacement::kStaggered:
      break;
  }
  return static_cast<int>(
      (static_cast<std::int64_t>(fact_disk) + 1 + bitmap_index) %
      config_.num_disks);
}

std::int64_t DiskAllocation::FactExtentOrdinal(FragId id) const {
  MDW_CHECK(id >= 0 && id < fragmentation_->FragmentCount(),
            "fragment id out of range");
  // One cluster lands on each disk per round-robin round; within the
  // cluster's extent, fragments are stored consecutively.
  const std::int64_t c = config_.cluster_factor;
  const std::int64_t round = ClusterOf(id) / config_.num_disks;
  return round * c + id % c;
}

std::int64_t DiskAllocation::BitmapExtentOrdinal(FragId id,
                                                 int bitmap_index) const {
  // Cluster-level ordinal: each round contributes k cluster-sized bitmap
  // extents per disk. All fragments of one cluster share the extent.
  const std::int64_t round = ClusterOf(id) / config_.num_disks;
  return round * bitmap_count_ + bitmap_index;
}

std::int64_t DiskAllocation::FragmentsOnDisk(int disk) const {
  MDW_CHECK(disk >= 0 && disk < config_.num_disks, "disk out of range");
  std::int64_t count = 0;
  for (FragId id = 0; id < fragmentation_->FragmentCount(); ++id) {
    if (DiskOfFragment(id) == disk) ++count;
  }
  return count;
}

}  // namespace mdw
