#ifndef MDW_ALLOC_DECLUSTERING_ANALYSIS_H_
#define MDW_ALLOC_DECLUSTERING_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "alloc/disk_allocation.h"
#include "fragment/query_planner.h"

namespace mdw {

/// Result of analysing how well a query's fragment set spreads over the
/// disks of an allocation (paper Sec. 4.6: the gcd clustering problem).
struct DeclusteringReport {
  std::int64_t fragments_accessed = 0;
  int disks_used = 0;
  /// Achievable I/O parallelism: min(fragments, num_disks).
  int ideal_disks = 0;
  /// ideal_disks / disks_used; 1.0 = optimal, 4.8 for the paper's
  /// 1CODE example with d = 100 and F_MonthGroup.
  double parallelism_loss = 1.0;
};

/// Computes the set of distinct disks the plan's fact fragments occupy.
DeclusteringReport AnalyzeDeclustering(const QueryPlan& plan,
                                       const DiskAllocation& allocation);

/// Number of distinct disks hit by an arithmetic fragment-id progression
/// start, start+stride, ... (count terms) under plain round robin over
/// `num_disks` disks: num_disks / gcd(stride, num_disks), capped by count.
/// The closed form behind the paper's d=100 example.
int DisksForStride(std::int64_t stride, std::int64_t count, int num_disks);

/// For each candidate disk count in [lo, hi], the worst-case parallelism
/// loss over a set of query plans; used to recommend (prime) disk counts.
struct DiskCountChoice {
  int num_disks = 0;
  double worst_parallelism_loss = 1.0;
  bool is_prime = false;
};
std::vector<DiskCountChoice> RankDiskCounts(
    const StarSchema& schema, const Fragmentation& fragmentation,
    const std::vector<StarQuery>& queries, int lo, int hi);

}  // namespace mdw

#endif  // MDW_ALLOC_DECLUSTERING_ANALYSIS_H_
