#ifndef MDW_ALLOC_DISK_ALLOCATION_H_
#define MDW_ALLOC_DISK_ALLOCATION_H_

#include <cstdint>

#include "fragment/fragmentation.h"

namespace mdw {

/// Placement of bitmap fragments relative to their fact fragment
/// (paper Sec. 4 / Fig. 2 and Sec. 6.2).
enum class BitmapPlacement {
  /// "Staggered round robin": bitmap fragment b of fact fragment on disk j
  /// goes to disk (j + 1 + b) mod d, enabling parallel bitmap I/O within a
  /// subquery.
  kStaggered,
  /// All bitmap fragments co-located with their fact fragment (serialises
  /// bitmap I/O on one disk; the comparison baseline).
  kSameDisk,
  /// Shared Nothing variant (paper footnote 3): bitmap fragments must stay
  /// on disks of the fact fragment's owner node; they are staggered with a
  /// stride of `node_count` so disk (j + (1+b)*node_count) mod d keeps the
  /// same owner when node_count divides num_disks.
  kSameNode,
};

/// Configuration of the physical allocation step.
struct AllocationConfig {
  int num_disks = 100;
  BitmapPlacement bitmap_placement = BitmapPlacement::kStaggered;
  /// Optional gap scheme (Sec. 4.6): after every full round-robin round the
  /// starting disk is shifted by `round_gap` to break gcd clustering
  /// between the fragment stride of a query and the disk count.
  /// 0 = plain round robin (the paper's default).
  int round_gap = 0;
  /// Fragment clustering (Sec. 6.3 outlook): groups of `cluster_factor`
  /// consecutive fragments are placed as one allocation unit — their fact
  /// extents contiguous on one disk, their bitmap fragments merged into
  /// one contiguous extent per bitmap. 1 = paper default (no clustering).
  int cluster_factor = 1;
  /// Node count used by BitmapPlacement::kSameNode (disk ownership is
  /// disk % node_count). Ignored by the other placements.
  int node_count = 0;
};

/// Maps fact fragments and bitmap fragments to disks: full declustering
/// with (optionally gapped) round robin for fact fragments and staggered
/// placement for bitmap fragments (paper Sec. 4.6). Also provides extent
/// ordinals used by the simulator to derive on-disk positions (fragments
/// allocated to a disk are stored consecutively, fact extents before
/// bitmap extents).
class DiskAllocation {
 public:
  /// `bitmap_count` is k, the number of materialised bitmaps after
  /// elimination (each is partitioned into one fragment per fact fragment).
  DiskAllocation(const Fragmentation* fragmentation, AllocationConfig config,
                 int bitmap_count);

  const Fragmentation& fragmentation() const { return *fragmentation_; }
  int num_disks() const { return config_.num_disks; }
  int bitmap_count() const { return bitmap_count_; }
  const AllocationConfig& config() const { return config_; }

  /// Disk holding fact fragment `id`.
  int DiskOfFragment(FragId id) const;

  /// Disk holding bitmap fragment `bitmap_index` (0..k-1) of fragment `id`.
  int DiskOfBitmapFragment(FragId id, int bitmap_index) const;

  /// Ordinal of fragment `id` among the fact fragments of its disk, in
  /// fragment units (clustered fragments occupy consecutive slots).
  std::int64_t FactExtentOrdinal(FragId id) const;

  /// Ordinal used to position the bitmap extent of fragment `id` (or of
  /// its whole cluster when cluster_factor > 1) for bitmap `bitmap_index`
  /// within its disk's bitmap region, in units of cluster-sized bitmap
  /// extents.
  std::int64_t BitmapExtentOrdinal(FragId id, int bitmap_index) const;

  /// The cluster a fragment belongs to (== id when cluster_factor == 1).
  std::int64_t ClusterOf(FragId id) const;

  /// Number of fact fragments allocated to `disk`.
  std::int64_t FragmentsOnDisk(int disk) const;

 private:
  const Fragmentation* fragmentation_;
  AllocationConfig config_;
  int bitmap_count_;
};

}  // namespace mdw

#endif  // MDW_ALLOC_DISK_ALLOCATION_H_
