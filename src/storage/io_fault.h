#ifndef MDW_STORAGE_IO_FAULT_H_
#define MDW_STORAGE_IO_FAULT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/page_file.h"

namespace mdw::storage {

/// What a FaultInjector can do to one page read.
enum class FaultKind {
  kEio,        ///< the read fails with a typed I/O error
  kShortRead,  ///< the read ends early (truncated-file shape of kEio)
  kCorruption, ///< the read succeeds but one byte of the page is flipped
  kLatency,    ///< the read succeeds after a delay (no error)
};

const char* ToString(FaultKind kind);

/// A seeded, fully deterministic description of which reads fail and
/// how. Probabilistic faults are decided by hashing (seed, file, page,
/// per-page attempt number, kind) — no global RNG state — so a given
/// plan produces exactly the same fault sequence for a given sequence
/// of reads, and a retried page sees an independent (but reproducible)
/// decision per attempt: transient faults really are transient.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Per-page-read probabilities in [0, 1], evaluated independently.
  double eio_rate = 0;
  double short_read_rate = 0;
  double corrupt_rate = 0;
  double latency_rate = 0;
  /// Sleep injected per kLatency hit, microseconds.
  int latency_us = 50;

  /// A scripted fault: fires on reads matching (file_id, page), `count`
  /// times (-1 = every matching read — a sticky fault, e.g. at-rest
  /// corruption). -1 wildcards file_id/page. Scripted faults take
  /// precedence over the probabilistic rates.
  struct Scripted {
    std::int32_t file_id = -1;
    std::int64_t page = -1;
    FaultKind kind = FaultKind::kEio;
    int count = 1;
  };
  std::vector<Scripted> scripted;

  bool enabled() const {
    return eio_rate > 0 || short_read_rate > 0 || corrupt_rate > 0 ||
           latency_rate > 0 || !scripted.empty();
  }
};

/// Totals of what an injector actually did (not what the pool observed —
/// a corrupted page surfaces as a pool checksum_failure, an injected EIO
/// as an io_error).
struct FaultStats {
  std::int64_t page_reads = 0;  ///< page-read decisions evaluated
  std::int64_t injected_eio = 0;
  std::int64_t injected_short_reads = 0;
  std::int64_t injected_corruptions = 0;
  std::int64_t injected_latency = 0;
};

/// The shared decision engine behind every FaultInjectingPageFile of one
/// store: owns the plan, the per-(file, page) attempt counters that make
/// retries see fresh decisions, and the injection totals. Thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  FaultStats stats() const;

  /// Wraps `inner` so every page read consults this injector first.
  /// Geometry and file_id pass through unchanged.
  std::unique_ptr<PageFile> Wrap(std::unique_ptr<PageFile> inner);

 private:
  friend class FaultInjectingPageFile;

  /// Decides the fault (if any) for the next read of `page` in file
  /// `file_id`, bumping that page's attempt counter. kLatency reports
  /// through the return value too but never fails the read.
  /// Returns true and fills `kind` when a fault fires.
  bool Decide(std::uint32_t file_id, std::int64_t page, FaultKind* kind);

  FaultPlan plan_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::uint32_t> attempts_;
  std::unordered_map<std::size_t, int> scripted_fired_;
  FaultStats stats_;
};

/// A PageFile decorator that injects the plan's faults into ReadPages:
/// kEio/kShortRead turn into kIoError statuses, kCorruption flips one
/// deterministic byte of the page image after the real read (the page
/// checksum catches it downstream), kLatency sleeps. Reads the inner
/// file exactly once per call either way.
class FaultInjectingPageFile final : public PageFile {
 public:
  FaultInjectingPageFile(std::unique_ptr<PageFile> inner,
                         FaultInjector* injector)
      : PageFile(inner->path(), inner->page_size(), inner->page_count(),
                 inner->file_id()),
        inner_(std::move(inner)),
        injector_(injector) {}

  Status ReadPages(std::int64_t first, std::int64_t count,
                   std::byte* dst) const override;

 private:
  std::unique_ptr<PageFile> inner_;
  FaultInjector* injector_;
};

}  // namespace mdw::storage

#endif  // MDW_STORAGE_IO_FAULT_H_
