#ifndef MDW_STORAGE_PAGE_FILE_H_
#define MDW_STORAGE_PAGE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace mdw::storage {

/// How a PageFile reads pages off the filesystem.
enum class IoBackend {
  kPread,  ///< positional read() per request; the kernel page cache applies
  kMmap,   ///< the whole file mapped read-only; reads are memcpy
};

const char* ToString(IoBackend backend);

/// Read-only page-granular access to one segment file. The file length
/// must be a whole number of pages (enforced at Open). Implementations
/// are safe for concurrent ReadPages calls — positional reads share no
/// cursor — so the BufferPool can fault pages from several threads at
/// once.
class PageFile {
 public:
  virtual ~PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens `path` with the chosen backend; aborts when the file cannot
  /// be opened or its size is not a multiple of `page_size`. `file_id`
  /// is the caller-assigned identity used in buffer-pool cache keys and
  /// must be unique among the files served by one pool.
  static std::unique_ptr<PageFile> Open(IoBackend backend,
                                        const std::string& path,
                                        std::int64_t page_size,
                                        std::uint32_t file_id);

  const std::string& path() const { return path_; }
  std::int64_t page_size() const { return page_size_; }
  std::int64_t page_count() const { return page_count_; }
  std::uint32_t file_id() const { return file_id_; }

  /// Copies pages [first, first + count) into `dst` (count * page_size
  /// bytes). Aborts on short reads or out-of-range pages.
  virtual void ReadPages(std::int64_t first, std::int64_t count,
                         std::byte* dst) const = 0;

 protected:
  PageFile(std::string path, std::int64_t page_size, std::int64_t page_count,
           std::uint32_t file_id)
      : path_(std::move(path)),
        page_size_(page_size),
        page_count_(page_count),
        file_id_(file_id) {}

 private:
  std::string path_;
  std::int64_t page_size_;
  std::int64_t page_count_;
  std::uint32_t file_id_;
};

}  // namespace mdw::storage

#endif  // MDW_STORAGE_PAGE_FILE_H_
