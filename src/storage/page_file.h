#ifndef MDW_STORAGE_PAGE_FILE_H_
#define MDW_STORAGE_PAGE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace mdw::storage {

/// How a PageFile reads pages off the filesystem.
enum class IoBackend {
  kPread,  ///< positional read() per request; the kernel page cache applies
  kMmap,   ///< the whole file mapped read-only; reads are memcpy
};

const char* ToString(IoBackend backend);

/// Read-only page-granular access to one segment file. The file length
/// must be a whole number of pages (enforced at Open). Implementations
/// are safe for concurrent ReadPages calls — positional reads share no
/// cursor — so the BufferPool can fault pages from several threads at
/// once.
///
/// Failure semantics: Open aborts (a store that cannot open its own
/// files has no graceful degradation), but ReadPages returns a Status —
/// read failures after construction are survivable and flow up through
/// the buffer pool as typed errors. Out-of-range reads stay fatal: they
/// are caller bugs, not device faults.
class PageFile {
 public:
  virtual ~PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens `path` with the chosen backend; aborts when the file cannot
  /// be opened or its size is not a multiple of `page_size`. `file_id`
  /// is the caller-assigned identity used in buffer-pool cache keys and
  /// must be unique among the files served by one pool.
  static std::unique_ptr<PageFile> Open(IoBackend backend,
                                        const std::string& path,
                                        std::int64_t page_size,
                                        std::uint32_t file_id);

  const std::string& path() const { return path_; }
  std::int64_t page_size() const { return page_size_; }
  std::int64_t page_count() const { return page_count_; }
  std::uint32_t file_id() const { return file_id_; }

  /// Copies pages [first, first + count) into `dst` (count * page_size
  /// bytes). Returns kIoError when the device read fails or the file
  /// ends early; aborts on out-of-range pages (caller bug).
  virtual Status ReadPages(std::int64_t first, std::int64_t count,
                           std::byte* dst) const = 0;

  /// Registers the expected CRC-32C of pages [first_page, first_page +
  /// checksums.size()): the buffer pool verifies these at fault-in time
  /// through VerifyPage. Pages outside the range (the header and the
  /// checksum block itself) have no checksum and always verify ok.
  void AttachChecksums(std::int64_t first_page,
                       std::vector<std::uint32_t> checksums) {
    checksum_first_page_ = first_page;
    checksums_ = std::move(checksums);
  }
  bool has_checksums() const { return !checksums_.empty(); }

  /// Checks `data` (one page_size-byte page image) against the attached
  /// checksum of `page`; kCorruption on mismatch, ok when it matches or
  /// no checksum covers the page.
  Status VerifyPage(std::int64_t page, const std::byte* data) const;

 protected:
  PageFile(std::string path, std::int64_t page_size, std::int64_t page_count,
           std::uint32_t file_id)
      : path_(std::move(path)),
        page_size_(page_size),
        page_count_(page_count),
        file_id_(file_id) {}

 private:
  std::string path_;
  std::int64_t page_size_;
  std::int64_t page_count_;
  std::uint32_t file_id_;
  std::int64_t checksum_first_page_ = 0;
  std::vector<std::uint32_t> checksums_;
};

}  // namespace mdw::storage

#endif  // MDW_STORAGE_PAGE_FILE_H_
