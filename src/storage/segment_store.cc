#include "storage/segment_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/check.h"
#include "common/crc32c.h"

namespace mdw::storage {

// Raw int64 values are written in native byte order and the header
// declares little-endian; refuse to build elsewhere rather than byte-swap.
static_assert(std::endian::native == std::endian::little,
              "segment files assume a little-endian host");

namespace {

constexpr char kMagic[8] = {'M', 'D', 'W', 'S', 'E', 'G', '1', '\0'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint32_t kFlagHasSummaries = 1u << 0;

/// Fixed-size prefix of the header, before the column and fragment
/// directories. v2 extends the v1 prefix (96 bytes) with the checksum
/// block and data page counts.
constexpr std::int64_t kFixedHeaderBytes = 112;

/// Offsets inside the fixed prefix used by version detection.
constexpr std::int64_t kVersionOffset = 8;   ///< after the magic
constexpr std::int64_t kPrefixProbeBytes = 16;  ///< magic + version + endian

std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

void Append(std::vector<std::byte>* out, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::byte*>(data);
  out->insert(out->end(), p, p + len);
}
void AppendU32(std::vector<std::byte>* out, std::uint32_t v) {
  Append(out, &v, sizeof v);
}
void AppendI32(std::vector<std::byte>* out, std::int32_t v) {
  Append(out, &v, sizeof v);
}
void AppendI64(std::vector<std::byte>* out, std::int64_t v) {
  Append(out, &v, sizeof v);
}
void AppendU64(std::vector<std::byte>* out, std::uint64_t v) {
  Append(out, &v, sizeof v);
}

void WriteAll(int fd, const std::byte* data, std::int64_t len,
              const char* what) {
  const char* p = reinterpret_cast<const char*>(data);
  while (len > 0) {
    const ssize_t got = ::write(fd, p, static_cast<std::size_t>(len));
    if (got < 0 && errno == EINTR) continue;
    MDW_CHECK(got > 0, what);
    p += got;
    len -= got;
  }
}

/// pread the exact byte range [off, off + len) of `fd`, retrying EINTR
/// and partial reads. Returns false (with `why`) on error or early EOF.
bool PreadExact(int fd, std::byte* dst, std::int64_t len, std::int64_t off,
                const std::string& path, std::string* why) {
  char* out = reinterpret_cast<char*>(dst);
  while (len > 0) {
    const ssize_t n = ::pread(fd, out, static_cast<std::size_t>(len),
                              static_cast<off_t>(off));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      *why = "cannot read existing segment " + path + ": " +
             std::strerror(errno);
      return false;
    }
    if (n == 0) {
      *why = "existing segment " + path + " is truncated";
      return false;
    }
    len -= n;
    off += n;
    out += n;
  }
  return true;
}

/// Local value count of column `c` in shard `s` (prefix columns carry
/// one extra boundary value).
std::int64_t ValueCount(const SegmentStore::BuildInput& input, int s, int c) {
  const std::int64_t rows = input.shard_row_begin[static_cast<std::size_t>(s) + 1] -
                            input.shard_row_begin[static_cast<std::size_t>(s)];
  const bool is_prefix = input.has_summaries && c >= input.num_dims + 2;
  return is_prefix ? rows + 1 : rows;
}

int ColumnCount(const SegmentStore::BuildInput& input) {
  return input.num_dims + 2 + (input.has_summaries ? 2 : 0);
}

/// Page geometry of shard `s`'s segment: [header | checksums | data].
struct ShardGeometry {
  std::int64_t header_pages;
  std::int64_t checksum_pages;
  std::int64_t data_pages;
};

ShardGeometry GeometryOf(const SegmentStore::BuildInput& input, int s) {
  const int cols = ColumnCount(input);
  const auto& frags = input.shard_fragments[static_cast<std::size_t>(s)];
  const std::int64_t raw_bytes =
      kFixedHeaderBytes + 16 * cols +
      24 * static_cast<std::int64_t>(frags.size());
  ShardGeometry g;
  g.header_pages = CeilDiv(raw_bytes, input.page_size);
  g.data_pages = 0;
  for (int c = 0; c < cols; ++c) {
    g.data_pages += CeilDiv(ValueCount(input, s, c), input.tuples_per_page);
  }
  g.checksum_pages = CeilDiv(
      g.data_pages * static_cast<std::int64_t>(sizeof(std::uint32_t)),
      input.page_size);
  return g;
}

}  // namespace

std::vector<std::byte> SegmentStore::BuildHeader(const BuildInput& input,
                                                 int s) {
  const int cols = ColumnCount(input);
  const auto& frags = input.shard_fragments[static_cast<std::size_t>(s)];
  const ShardGeometry g = GeometryOf(input, s);

  std::vector<std::byte> h;
  h.reserve(static_cast<std::size_t>(g.header_pages * input.page_size));
  Append(&h, kMagic, sizeof kMagic);
  AppendU32(&h, kVersion);
  AppendU32(&h, kEndianTag);
  AppendU64(&h, input.schema_hash);
  AppendI64(&h, input.page_size);
  AppendI64(&h, input.tuples_per_page);
  AppendI32(&h, s);
  AppendI32(&h, static_cast<std::int32_t>(input.shard_row_begin.size()) - 1);
  AppendI64(&h, input.shard_row_begin[static_cast<std::size_t>(s)]);
  AppendI64(&h, input.shard_row_begin[static_cast<std::size_t>(s) + 1] -
                    input.shard_row_begin[static_cast<std::size_t>(s)]);
  AppendI32(&h, input.num_dims);
  AppendU32(&h, input.has_summaries ? kFlagHasSummaries : 0u);
  AppendI64(&h, static_cast<std::int64_t>(frags.size()));
  AppendI64(&h, static_cast<std::int64_t>(cols));
  AppendI64(&h, g.header_pages);
  AppendI64(&h, g.checksum_pages);
  AppendI64(&h, g.data_pages);
  MDW_CHECK(static_cast<std::int64_t>(h.size()) == kFixedHeaderBytes,
            "segment header layout drifted from kFixedHeaderBytes");

  std::int64_t next_page = g.header_pages + g.checksum_pages;
  for (int c = 0; c < cols; ++c) {
    const std::int64_t values = ValueCount(input, s, c);
    AppendI64(&h, next_page);
    AppendI64(&h, values);
    next_page += CeilDiv(values, input.tuples_per_page);
  }
  for (const FragEntry& f : frags) {
    AppendI64(&h, f.frag_id);
    AppendI64(&h, f.begin);
    AppendI64(&h, f.end);
  }
  h.resize(static_cast<std::size_t>(g.header_pages * input.page_size));
  return h;
}

bool SegmentStore::ValidateExisting(const std::string& path,
                                    const std::vector<std::byte>& header,
                                    std::int64_t expected_bytes,
                                    std::string* why) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    why->clear();  // no prior file: not an error, just nothing to reuse
    return false;
  }
  // Probe magic + version before anything size-shaped: a v1 segment is
  // smaller than its v2 rewrite, and "stale format version" is the
  // actionable message, not "unexpected size".
  std::byte prefix[kPrefixProbeBytes];
  if (!PreadExact(fd, prefix, kPrefixProbeBytes, 0, path, why)) {
    ::close(fd);
    return false;
  }
  if (std::memcmp(prefix, kMagic, sizeof kMagic) != 0) {
    ::close(fd);
    *why = "existing file " + path + " is not a segment (bad magic)";
    return false;
  }
  std::uint32_t version = 0;
  std::memcpy(&version, prefix + kVersionOffset, sizeof version);
  if (version != kVersion) {
    ::close(fd);
    *why = "existing segment " + path + " format version " +
           std::to_string(version) + " is stale (current is " +
           std::to_string(kVersion) + "); rewriting";
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    *why = "cannot stat existing segment " + path;
    return false;
  }
  if (static_cast<std::int64_t>(st.st_size) != expected_bytes) {
    ::close(fd);
    *why = "existing segment " + path + " has unexpected size";
    return false;
  }
  std::vector<std::byte> got(header.size());
  if (!PreadExact(fd, got.data(), static_cast<std::int64_t>(got.size()), 0,
                  path, why)) {
    ::close(fd);
    return false;
  }
  ::close(fd);
  if (std::memcmp(got.data(), header.data(), header.size()) != 0) {
    *why = "existing segment " + path +
           " header does not match this dataset (corrupt or stale)";
    return false;
  }
  return true;
}

void SegmentStore::WriteSegment(const BuildInput& input, int s,
                                const std::vector<std::byte>& header,
                                const std::string& path) {
  const ShardGeometry g = GeometryOf(input, s);
  const std::int64_t begin =
      input.shard_row_begin[static_cast<std::size_t>(s)];
  const int cols = ColumnCount(input);
  std::vector<std::byte> page(static_cast<std::size_t>(page_size_));

  // Pass 1: materialise each data page image (values + zero padding) to
  // compute its CRC-32C; the checksum block precedes the data on disk,
  // so knowing every CRC up front keeps the write purely sequential.
  std::vector<std::uint32_t> crcs;
  crcs.reserve(static_cast<std::size_t>(g.data_pages));
  for (int c = 0; c < cols; ++c) {
    // Prefix columns index the same global positions as row columns, so
    // every column of this shard starts at global offset `begin`.
    const std::int64_t* src =
        input.columns[static_cast<std::size_t>(c)]->data() + begin;
    std::int64_t remaining = ValueCount(input, s, c);
    while (remaining > 0) {
      const std::int64_t n = std::min(remaining, tuples_per_page_);
      std::memset(page.data(), 0, page.size());
      std::memcpy(page.data(), src, static_cast<std::size_t>(n) * 8);
      crcs.push_back(Crc32c(page.data(), page.size()));
      src += n;
      remaining -= n;
    }
  }
  MDW_CHECK(static_cast<std::int64_t>(crcs.size()) == g.data_pages,
            "checksum count drifted from the data page count");

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  MDW_CHECK(fd >= 0, "cannot create segment file");
  WriteAll(fd, header.data(), static_cast<std::int64_t>(header.size()),
           "cannot write segment header");

  std::vector<std::byte> checksum_block(
      static_cast<std::size_t>(g.checksum_pages * page_size_));
  std::memcpy(checksum_block.data(), crcs.data(),
              crcs.size() * sizeof(std::uint32_t));
  WriteAll(fd, checksum_block.data(),
           static_cast<std::int64_t>(checksum_block.size()),
           "cannot write segment checksum block");

  // Pass 2: the data pages themselves, same image construction.
  for (int c = 0; c < cols; ++c) {
    const std::int64_t* src =
        input.columns[static_cast<std::size_t>(c)]->data() + begin;
    std::int64_t remaining = ValueCount(input, s, c);
    while (remaining > 0) {
      const std::int64_t n = std::min(remaining, tuples_per_page_);
      std::memset(page.data(), 0, page.size());
      std::memcpy(page.data(), src, static_cast<std::size_t>(n) * 8);
      WriteAll(fd, page.data(), page_size_, "cannot write segment page");
      src += n;
      remaining -= n;
    }
  }

  // Crash durability: the bytes reach stable storage before the rename
  // publishes them, and the rename itself reaches the directory before
  // the constructor returns. A crash anywhere leaves either the old
  // segment or the new one — never a half-written file under the real
  // name.
  MDW_CHECK(::fsync(fd) == 0, "cannot fsync segment file");
  MDW_CHECK(::close(fd) == 0, "cannot close segment file");
  MDW_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
            "cannot move segment file into place");
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  const int dfd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  MDW_CHECK(dfd >= 0, "cannot open segment directory for fsync");
  MDW_CHECK(::fsync(dfd) == 0, "cannot fsync segment directory");
  MDW_CHECK(::close(dfd) == 0, "cannot close segment directory");
}

void SegmentStore::LoadChecksums(int s, const std::string& path,
                                 PageFile* file) const {
  const ShardDir& dir = dirs_[static_cast<std::size_t>(s)];
  std::vector<std::uint32_t> checksums(
      static_cast<std::size_t>(dir.data_pages));
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  MDW_CHECK(fd >= 0, "cannot open segment file for its checksum block");
  std::string why;
  const bool ok = PreadExact(
      fd, reinterpret_cast<std::byte*>(checksums.data()),
      dir.data_pages * static_cast<std::int64_t>(sizeof(std::uint32_t)),
      dir.header_pages * page_size_, path, &why);
  ::close(fd);
  MDW_CHECK(ok, "cannot read segment checksum block");
  file->AttachChecksums(dir.header_pages + dir.checksum_pages,
                        std::move(checksums));
}

SegmentStore::SegmentStore(const StoreOptions& options,
                           const BuildInput& input)
    : page_size_(input.page_size),
      tuples_per_page_(input.tuples_per_page),
      num_dims_(input.num_dims),
      num_columns_(ColumnCount(input)),
      has_summaries_(input.has_summaries),
      prefetch_(options.prefetch),
      root_(options.path),
      shard_row_begin_(input.shard_row_begin) {
  MDW_CHECK(!root_.empty(), "segment store needs a path");
  MDW_CHECK(page_size_ >= 8 && tuples_per_page_ >= 1 &&
                tuples_per_page_ * 8 <= page_size_,
            "page geometry cannot hold its tuples");
  MDW_CHECK(shard_row_begin_.size() >= 2, "store needs at least one shard");
  const int num_shards = static_cast<int>(shard_row_begin_.size()) - 1;
  MDW_CHECK(static_cast<int>(input.shard_fragments.size()) == num_shards,
            "fragment directory does not cover every shard");
  MDW_CHECK(static_cast<int>(input.columns.size()) == num_columns_,
            "column list does not match the declared layout");

  if (options.fault_plan.enabled()) {
    injector_ = std::make_unique<FaultInjector>(options.fault_plan);
  }

  dirs_.resize(static_cast<std::size_t>(num_shards));
  files_.resize(static_cast<std::size_t>(num_shards));
  bool all_reused = true;
  for (int s = 0; s < num_shards; ++s) {
    // Read-side directory (independent of whether the file is rewritten).
    ShardDir& dir = dirs_[static_cast<std::size_t>(s)];
    const ShardGeometry g = GeometryOf(input, s);
    dir.header_pages = g.header_pages;
    dir.checksum_pages = g.checksum_pages;
    dir.data_pages = g.data_pages;
    std::int64_t next_page = g.header_pages + g.checksum_pages;
    for (int c = 0; c < num_columns_; ++c) {
      const std::int64_t values = ValueCount(input, s, c);
      dir.col_first_page.push_back(next_page);
      dir.col_value_count.push_back(values);
      next_page += CeilDiv(values, tuples_per_page_);
    }
    dir.total_pages = next_page;
    MDW_CHECK(dir.total_pages ==
                  g.header_pages + g.checksum_pages + g.data_pages,
              "segment directory drifted from its geometry");

    const std::vector<std::byte> header = BuildHeader(input, s);
    char shard_dir[32];
    std::snprintf(shard_dir, sizeof shard_dir, "shard-%04d", s);
    const std::filesystem::path dir_path =
        std::filesystem::path(root_) / shard_dir;
    std::error_code ec;
    std::filesystem::create_directories(dir_path, ec);
    MDW_CHECK(!ec, "cannot create segment store directory");
    const std::string path = (dir_path / "segment.mdwseg").string();

    std::string why;
    const bool reuse =
        options.reuse_existing &&
        ValidateExisting(path, header, dir.total_pages * page_size_, &why);
    if (!reuse) {
      all_reused = false;
      if (!why.empty() && validation_error_.empty()) validation_error_ = why;
      WriteSegment(input, s, header, path);
    }
    std::unique_ptr<PageFile> file = PageFile::Open(
        options.backend, path, page_size_, static_cast<std::uint32_t>(s));
    MDW_CHECK(file->page_count() == dir.total_pages,
              "segment file page count does not match its directory");
    if (injector_ != nullptr) file = injector_->Wrap(std::move(file));
    // Checksums attach to the OUTERMOST file — the one the pool pins —
    // so injected corruption lands before verification and is caught.
    LoadChecksums(s, path, file.get());
    files_[static_cast<std::size_t>(s)] = std::move(file);
  }
  reused_ = all_reused;
  pool_ = std::make_unique<BufferPool>(options.pool_pages, page_size_,
                                       options.retry);
}

std::string SegmentStore::SegmentPath(int s) const {
  MDW_CHECK(s >= 0 && s < num_shards(), "shard out of range");
  return files_[static_cast<std::size_t>(s)]->path();
}

std::int64_t SegmentStore::SegmentPages(int s) const {
  MDW_CHECK(s >= 0 && s < num_shards(), "shard out of range");
  return dirs_[static_cast<std::size_t>(s)].total_pages;
}

std::int64_t SegmentStore::ChecksumPages(int s) const {
  MDW_CHECK(s >= 0 && s < num_shards(), "shard out of range");
  return dirs_[static_cast<std::size_t>(s)].checksum_pages;
}

std::int64_t SegmentStore::FirstDataPage(int s) const {
  MDW_CHECK(s >= 0 && s < num_shards(), "shard out of range");
  const ShardDir& dir = dirs_[static_cast<std::size_t>(s)];
  return dir.header_pages + dir.checksum_pages;
}

int SegmentStore::ShardOf(std::int64_t i) const {
  MDW_CHECK(i >= 0 && i <= shard_row_begin_.back(),
            "global row index out of range");
  const auto it = std::upper_bound(shard_row_begin_.begin(),
                                   shard_row_begin_.end(), i);
  const auto idx =
      static_cast<int>(it - shard_row_begin_.begin()) - 1;
  return std::min(idx, num_shards() - 1);
}

std::int64_t SegmentStore::Cursor::Fault(std::int64_t i) {
  if (!status_.ok()) return 0;
  const SegmentStore& st = *store_;
  const int s = st.ShardOf(i);
  const ShardDir& dir = st.dirs_[static_cast<std::size_t>(s)];
  const std::int64_t begin =
      st.shard_row_begin_[static_cast<std::size_t>(s)];
  const std::int64_t local = i - begin;
  const std::int64_t values =
      dir.col_value_count[static_cast<std::size_t>(column_)];
  MDW_CHECK(local >= 0 && local < values, "column index out of range");
  const std::int64_t page_in_col = local / st.tuples_per_page_;
  const std::int64_t file_page =
      dir.col_first_page[static_cast<std::size_t>(column_)] + page_in_col;

  BufferPool::PinIo pin_io;
  StatusOr<BufferPool::PageRef> ref =
      st.pool_->Pin(*st.files_[static_cast<std::size_t>(s)], file_page,
                    &pin_io, cancel_);
  if (io_ != nullptr) {
    io_->io_errors += pin_io.io_errors;
    io_->io_retries += pin_io.io_retries;
    io_->checksum_failures += pin_io.checksum_failures;
  }
  if (!ref.ok()) {
    // Latch the error; from here every At() answers 0 without touching
    // the pool, and the caller discards the aggregate via status().
    status_ = ref.status();
    span_ = nullptr;
    span_begin_ = span_end_ = 0;
    page_.reset();
    return 0;
  }
  if (io_ != nullptr) {
    if (ref->hit()) {
      ++io_->buffer_hits;
    } else {
      ++io_->pages_read;
      io_->bytes_read += st.page_size_;
    }
  }
  span_ = reinterpret_cast<const std::int64_t*>(ref->data());
  span_begin_ = begin + page_in_col * st.tuples_per_page_;
  span_end_ =
      begin + std::min(page_in_col * st.tuples_per_page_ + st.tuples_per_page_,
                       values);
  shard_ = s;
  page_ = std::make_unique<BufferPool::PageRef>(std::move(ref).value());
  return span_[static_cast<std::size_t>(i - span_begin_)];
}

void SegmentStore::Cursor::PrefetchRun(std::int64_t begin, std::int64_t end) {
  const SegmentStore& st = *store_;
  if (!st.prefetch_ || begin >= end || !status_.ok()) return;
  std::int64_t i = begin;
  while (i < end) {
    const int s = st.ShardOf(i);
    const ShardDir& dir = st.dirs_[static_cast<std::size_t>(s)];
    const std::int64_t base =
        st.shard_row_begin_[static_cast<std::size_t>(s)];
    const std::int64_t values =
        dir.col_value_count[static_cast<std::size_t>(column_)];
    const std::int64_t run_end = std::min(end, base + values);
    if (run_end > i) {
      const std::int64_t first_page = (i - base) / st.tuples_per_page_;
      const std::int64_t last_page = (run_end - 1 - base) / st.tuples_per_page_;
      BufferPool::PinIo pin_io;
      const std::int64_t fetched = st.pool_->Prefetch(
          *st.files_[static_cast<std::size_t>(s)],
          dir.col_first_page[static_cast<std::size_t>(column_)] + first_page,
          last_page - first_page + 1, &pin_io);
      if (io_ != nullptr) {
        io_->pages_read += fetched;
        io_->bytes_read += fetched * st.page_size_;
        io_->io_errors += pin_io.io_errors;
        io_->io_retries += pin_io.io_retries;
        io_->checksum_failures += pin_io.checksum_failures;
      }
    }
    // Advance past this shard's slice of the run (guaranteed progress
    // even over empty shards).
    i = std::max(base + values, i + 1);
  }
}

}  // namespace mdw::storage
