#include "storage/segment_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/check.h"

namespace mdw::storage {

// Raw int64 values are written in native byte order and the header
// declares little-endian; refuse to build elsewhere rather than byte-swap.
static_assert(std::endian::native == std::endian::little,
              "segment files assume a little-endian host");

namespace {

constexpr char kMagic[8] = {'M', 'D', 'W', 'S', 'E', 'G', '1', '\0'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint32_t kFlagHasSummaries = 1u << 0;

/// Fixed-size prefix of the header, before the column and fragment
/// directories.
constexpr std::int64_t kFixedHeaderBytes = 96;

std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

void Append(std::vector<std::byte>* out, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::byte*>(data);
  out->insert(out->end(), p, p + len);
}
void AppendU32(std::vector<std::byte>* out, std::uint32_t v) {
  Append(out, &v, sizeof v);
}
void AppendI32(std::vector<std::byte>* out, std::int32_t v) {
  Append(out, &v, sizeof v);
}
void AppendI64(std::vector<std::byte>* out, std::int64_t v) {
  Append(out, &v, sizeof v);
}
void AppendU64(std::vector<std::byte>* out, std::uint64_t v) {
  Append(out, &v, sizeof v);
}

void WriteAll(int fd, const std::byte* data, std::int64_t len,
              const char* what) {
  const char* p = reinterpret_cast<const char*>(data);
  while (len > 0) {
    const ssize_t got = ::write(fd, p, static_cast<std::size_t>(len));
    if (got < 0 && errno == EINTR) continue;
    MDW_CHECK(got > 0, what);
    p += got;
    len -= got;
  }
}

/// Local value count of column `c` in shard `s` (prefix columns carry
/// one extra boundary value).
std::int64_t ValueCount(const SegmentStore::BuildInput& input, int s, int c) {
  const std::int64_t rows = input.shard_row_begin[static_cast<std::size_t>(s) + 1] -
                            input.shard_row_begin[static_cast<std::size_t>(s)];
  const bool is_prefix = input.has_summaries && c >= input.num_dims + 2;
  return is_prefix ? rows + 1 : rows;
}

int ColumnCount(const SegmentStore::BuildInput& input) {
  return input.num_dims + 2 + (input.has_summaries ? 2 : 0);
}

}  // namespace

std::vector<std::byte> SegmentStore::BuildHeader(const BuildInput& input,
                                                 int s) {
  const int cols = ColumnCount(input);
  const auto& frags = input.shard_fragments[static_cast<std::size_t>(s)];
  const std::int64_t raw_bytes =
      kFixedHeaderBytes + 16 * cols +
      24 * static_cast<std::int64_t>(frags.size());
  const std::int64_t header_pages = CeilDiv(raw_bytes, input.page_size);

  std::vector<std::byte> h;
  h.reserve(static_cast<std::size_t>(header_pages * input.page_size));
  Append(&h, kMagic, sizeof kMagic);
  AppendU32(&h, kVersion);
  AppendU32(&h, kEndianTag);
  AppendU64(&h, input.schema_hash);
  AppendI64(&h, input.page_size);
  AppendI64(&h, input.tuples_per_page);
  AppendI32(&h, s);
  AppendI32(&h, static_cast<std::int32_t>(input.shard_row_begin.size()) - 1);
  AppendI64(&h, input.shard_row_begin[static_cast<std::size_t>(s)]);
  AppendI64(&h, input.shard_row_begin[static_cast<std::size_t>(s) + 1] -
                    input.shard_row_begin[static_cast<std::size_t>(s)]);
  AppendI32(&h, input.num_dims);
  AppendU32(&h, input.has_summaries ? kFlagHasSummaries : 0u);
  AppendI64(&h, static_cast<std::int64_t>(frags.size()));
  AppendI64(&h, static_cast<std::int64_t>(cols));
  AppendI64(&h, header_pages);
  MDW_CHECK(static_cast<std::int64_t>(h.size()) == kFixedHeaderBytes,
            "segment header layout drifted from kFixedHeaderBytes");

  std::int64_t next_page = header_pages;
  for (int c = 0; c < cols; ++c) {
    const std::int64_t values = ValueCount(input, s, c);
    AppendI64(&h, next_page);
    AppendI64(&h, values);
    next_page += CeilDiv(values, input.tuples_per_page);
  }
  for (const FragEntry& f : frags) {
    AppendI64(&h, f.frag_id);
    AppendI64(&h, f.begin);
    AppendI64(&h, f.end);
  }
  h.resize(static_cast<std::size_t>(header_pages * input.page_size));
  return h;
}

bool SegmentStore::ValidateExisting(const std::string& path,
                                    const std::vector<std::byte>& header,
                                    std::int64_t expected_bytes,
                                    std::string* why) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    why->clear();  // no prior file: not an error, just nothing to reuse
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    *why = "cannot stat existing segment " + path;
    return false;
  }
  if (static_cast<std::int64_t>(st.st_size) != expected_bytes) {
    ::close(fd);
    *why = "existing segment " + path + " has unexpected size";
    return false;
  }
  std::vector<std::byte> got(header.size());
  std::int64_t want = static_cast<std::int64_t>(got.size());
  char* out = reinterpret_cast<char*>(got.data());
  std::int64_t off = 0;
  while (want > 0) {
    const ssize_t n = ::pread(fd, out, static_cast<std::size_t>(want),
                              static_cast<off_t>(off));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      *why = "cannot read header of existing segment " + path;
      return false;
    }
    want -= n;
    off += n;
    out += n;
  }
  ::close(fd);
  if (std::memcmp(got.data(), header.data(), header.size()) != 0) {
    *why = "existing segment " + path +
           " header does not match this dataset (corrupt or stale)";
    return false;
  }
  return true;
}

void SegmentStore::WriteSegment(const BuildInput& input, int s,
                                const std::vector<std::byte>& header,
                                const std::string& path) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  MDW_CHECK(fd >= 0, "cannot create segment file");
  WriteAll(fd, header.data(), static_cast<std::int64_t>(header.size()),
           "cannot write segment header");

  const std::int64_t begin =
      input.shard_row_begin[static_cast<std::size_t>(s)];
  std::vector<std::byte> page(static_cast<std::size_t>(page_size_));
  const int cols = ColumnCount(input);
  for (int c = 0; c < cols; ++c) {
    // Prefix columns index the same global positions as row columns, so
    // every column of this shard starts at global offset `begin`.
    const std::int64_t* src =
        input.columns[static_cast<std::size_t>(c)]->data() + begin;
    std::int64_t remaining = ValueCount(input, s, c);
    while (remaining > 0) {
      const std::int64_t n = std::min(remaining, tuples_per_page_);
      std::memset(page.data(), 0, page.size());
      std::memcpy(page.data(), src, static_cast<std::size_t>(n) * 8);
      WriteAll(fd, page.data(), page_size_, "cannot write segment page");
      src += n;
      remaining -= n;
    }
  }
  MDW_CHECK(::close(fd) == 0, "cannot close segment file");
  MDW_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
            "cannot move segment file into place");
}

SegmentStore::SegmentStore(const StoreOptions& options,
                           const BuildInput& input)
    : page_size_(input.page_size),
      tuples_per_page_(input.tuples_per_page),
      num_dims_(input.num_dims),
      num_columns_(ColumnCount(input)),
      has_summaries_(input.has_summaries),
      prefetch_(options.prefetch),
      root_(options.path),
      shard_row_begin_(input.shard_row_begin) {
  MDW_CHECK(!root_.empty(), "segment store needs a path");
  MDW_CHECK(page_size_ >= 8 && tuples_per_page_ >= 1 &&
                tuples_per_page_ * 8 <= page_size_,
            "page geometry cannot hold its tuples");
  MDW_CHECK(shard_row_begin_.size() >= 2, "store needs at least one shard");
  const int num_shards = static_cast<int>(shard_row_begin_.size()) - 1;
  MDW_CHECK(static_cast<int>(input.shard_fragments.size()) == num_shards,
            "fragment directory does not cover every shard");
  MDW_CHECK(static_cast<int>(input.columns.size()) == num_columns_,
            "column list does not match the declared layout");

  dirs_.resize(static_cast<std::size_t>(num_shards));
  files_.resize(static_cast<std::size_t>(num_shards));
  bool all_reused = true;
  for (int s = 0; s < num_shards; ++s) {
    // Read-side directory (independent of whether the file is rewritten).
    ShardDir& dir = dirs_[static_cast<std::size_t>(s)];
    const std::vector<std::byte> header = BuildHeader(input, s);
    std::int64_t next_page =
        static_cast<std::int64_t>(header.size()) / page_size_;
    for (int c = 0; c < num_columns_; ++c) {
      const std::int64_t values = ValueCount(input, s, c);
      dir.col_first_page.push_back(next_page);
      dir.col_value_count.push_back(values);
      next_page += CeilDiv(values, tuples_per_page_);
    }
    dir.total_pages = next_page;

    char shard_dir[32];
    std::snprintf(shard_dir, sizeof shard_dir, "shard-%04d", s);
    const std::filesystem::path dir_path =
        std::filesystem::path(root_) / shard_dir;
    std::error_code ec;
    std::filesystem::create_directories(dir_path, ec);
    MDW_CHECK(!ec, "cannot create segment store directory");
    const std::string path = (dir_path / "segment.mdwseg").string();

    std::string why;
    const bool reuse =
        options.reuse_existing &&
        ValidateExisting(path, header, dir.total_pages * page_size_, &why);
    if (!reuse) {
      all_reused = false;
      if (!why.empty() && validation_error_.empty()) validation_error_ = why;
      WriteSegment(input, s, header, path);
    }
    files_[static_cast<std::size_t>(s)] = PageFile::Open(
        options.backend, path, page_size_, static_cast<std::uint32_t>(s));
    MDW_CHECK(files_[static_cast<std::size_t>(s)]->page_count() ==
                  dir.total_pages,
              "segment file page count does not match its directory");
  }
  reused_ = all_reused;
  pool_ = std::make_unique<BufferPool>(options.pool_pages, page_size_);
}

std::string SegmentStore::SegmentPath(int s) const {
  MDW_CHECK(s >= 0 && s < num_shards(), "shard out of range");
  return files_[static_cast<std::size_t>(s)]->path();
}

std::int64_t SegmentStore::SegmentPages(int s) const {
  MDW_CHECK(s >= 0 && s < num_shards(), "shard out of range");
  return dirs_[static_cast<std::size_t>(s)].total_pages;
}

int SegmentStore::ShardOf(std::int64_t i) const {
  MDW_CHECK(i >= 0 && i <= shard_row_begin_.back(),
            "global row index out of range");
  const auto it = std::upper_bound(shard_row_begin_.begin(),
                                   shard_row_begin_.end(), i);
  const auto idx =
      static_cast<int>(it - shard_row_begin_.begin()) - 1;
  return std::min(idx, num_shards() - 1);
}

std::int64_t SegmentStore::Cursor::Fault(std::int64_t i) {
  const SegmentStore& st = *store_;
  const int s = st.ShardOf(i);
  const ShardDir& dir = st.dirs_[static_cast<std::size_t>(s)];
  const std::int64_t begin =
      st.shard_row_begin_[static_cast<std::size_t>(s)];
  const std::int64_t local = i - begin;
  const std::int64_t values =
      dir.col_value_count[static_cast<std::size_t>(column_)];
  MDW_CHECK(local >= 0 && local < values, "column index out of range");
  const std::int64_t page_in_col = local / st.tuples_per_page_;
  const std::int64_t file_page =
      dir.col_first_page[static_cast<std::size_t>(column_)] + page_in_col;

  BufferPool::PageRef ref =
      st.pool_->Pin(*st.files_[static_cast<std::size_t>(s)], file_page);
  if (io_ != nullptr) {
    if (ref.hit()) {
      ++io_->buffer_hits;
    } else {
      ++io_->pages_read;
      io_->bytes_read += st.page_size_;
    }
  }
  span_ = reinterpret_cast<const std::int64_t*>(ref.data());
  span_begin_ = begin + page_in_col * st.tuples_per_page_;
  span_end_ =
      begin + std::min(page_in_col * st.tuples_per_page_ + st.tuples_per_page_,
                       values);
  shard_ = s;
  page_ = std::make_unique<BufferPool::PageRef>(std::move(ref));
  return span_[static_cast<std::size_t>(i - span_begin_)];
}

void SegmentStore::Cursor::PrefetchRun(std::int64_t begin, std::int64_t end) {
  const SegmentStore& st = *store_;
  if (!st.prefetch_ || begin >= end) return;
  std::int64_t i = begin;
  while (i < end) {
    const int s = st.ShardOf(i);
    const ShardDir& dir = st.dirs_[static_cast<std::size_t>(s)];
    const std::int64_t base =
        st.shard_row_begin_[static_cast<std::size_t>(s)];
    const std::int64_t values =
        dir.col_value_count[static_cast<std::size_t>(column_)];
    const std::int64_t run_end = std::min(end, base + values);
    if (run_end > i) {
      const std::int64_t first_page = (i - base) / st.tuples_per_page_;
      const std::int64_t last_page = (run_end - 1 - base) / st.tuples_per_page_;
      const std::int64_t fetched = st.pool_->Prefetch(
          *st.files_[static_cast<std::size_t>(s)],
          dir.col_first_page[static_cast<std::size_t>(column_)] + first_page,
          last_page - first_page + 1);
      if (io_ != nullptr) {
        io_->pages_read += fetched;
        io_->bytes_read += fetched * st.page_size_;
      }
    }
    // Advance past this shard's slice of the run (guaranteed progress
    // even over empty shards).
    i = std::max(base + values, i + 1);
  }
}

}  // namespace mdw::storage
