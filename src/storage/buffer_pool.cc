#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace mdw::storage {

BufferPool::BufferPool(std::int64_t capacity_pages, std::int64_t page_size)
    : capacity_pages_(capacity_pages),
      page_size_(page_size),
      cache_(capacity_pages) {
  MDW_CHECK(capacity_pages >= 1, "buffer pool needs at least one frame");
  MDW_CHECK(page_size >= 1, "buffer pool page size must be positive");
  arena_.resize(static_cast<std::size_t>(capacity_pages * page_size));
  free_slots_.reserve(static_cast<std::size_t>(capacity_pages));
  for (std::int64_t s = capacity_pages - 1; s >= 0; --s) {
    free_slots_.push_back(static_cast<std::int32_t>(s));
  }
}

BufferPool::~BufferPool() = default;

std::int32_t BufferPool::AcquireSlot() {
  if (free_slots_.empty()) {
    // Pool full: evict one unpinned, fully-loaded page to recycle its slot.
    cache_.EvictToFit(
        1, [](const Frame& fr) { return fr.pins == 0 && !fr.loading; },
        [this](std::uint64_t, const Frame& fr) {
          free_slots_.push_back(fr.slot);
        });
  }
  if (free_slots_.empty()) return -1;
  const std::int32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

BufferPool::PageRef BufferPool::Pin(const PageFile& file, std::int64_t page) {
  MDW_CHECK(page_size_ == file.page_size(), "page size mismatch with pool");
  const std::uint64_t key = MakeKey(file.file_id(), page);
  std::unique_lock<std::mutex> lk(mu_);
  if (Frame* f = cache_.Get(key); f != nullptr) {
    // Resident or being loaded by another thread: either way the caller
    // avoids a demand fault, so it counts as a hit. Pin first so the
    // frame cannot be evicted while we wait for the in-flight load.
    ++f->pins;
    ++pinned_;
    if (f->loading) {
      cv_.wait(lk, [&] { return !f->loading; });
    }
    return PageRef(this, key, SlotData(f->slot), /*hit=*/true);
  }
  const std::int32_t slot = AcquireSlot();
  MDW_CHECK(slot >= 0,
            "buffer pool exhausted: every frame is pinned; "
            "increase pool capacity");
  Frame* f = cache_.Insert(key, Frame{slot, /*pins=*/1, /*loading=*/true},
                           /*weight=*/1);
  ++pinned_;
  lk.unlock();
  file.ReadPages(page, 1, SlotData(slot));
  lk.lock();
  f->loading = false;
  cv_.notify_all();
  return PageRef(this, key, SlotData(slot), /*hit=*/false);
}

void BufferPool::Unpin(std::uint64_t key) {
  std::lock_guard<std::mutex> lk(mu_);
  Frame* f = cache_.Peek(key);
  MDW_CHECK(f != nullptr && f->pins > 0, "unpin of a page that is not pinned");
  --f->pins;
  --pinned_;
}

std::int64_t BufferPool::Prefetch(const PageFile& file, std::int64_t first,
                                  std::int64_t count) {
  MDW_CHECK(page_size_ == file.page_size(), "page size mismatch with pool");
  first = std::max<std::int64_t>(first, 0);
  count = std::min(count, file.page_count() - first);
  // Cap the run so one prefetch can never flush a small pool.
  count = std::min(count, std::min<std::int64_t>(64, capacity_pages_ / 4));
  if (count <= 0) return 0;

  // Claim frames for the uncached pages, grouped into runs of
  // consecutive pages so each run is one coalesced read.
  std::vector<std::int64_t> pages;
  std::vector<std::int32_t> slots;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::int64_t p = first; p < first + count; ++p) {
      const std::uint64_t key = MakeKey(file.file_id(), p);
      if (cache_.Peek(key) != nullptr) continue;  // already resident
      const std::int32_t slot = AcquireSlot();
      if (slot < 0) break;  // best-effort: stop when frames run out
      cache_.Insert(key, Frame{slot, /*pins=*/1, /*loading=*/true},
                    /*weight=*/1);
      ++pinned_;
      pages.push_back(p);
      slots.push_back(slot);
    }
    prefetched_ += static_cast<std::int64_t>(pages.size());
  }
  if (pages.empty()) return 0;

  // Read each run of consecutive claimed pages in one call, landing in a
  // scratch buffer (arena slots are scattered), then scatter to slots.
  std::vector<std::byte> scratch;
  std::size_t i = 0;
  while (i < pages.size()) {
    std::size_t j = i + 1;
    while (j < pages.size() && pages[j] == pages[j - 1] + 1) ++j;
    const std::int64_t run_len = static_cast<std::int64_t>(j - i);
    scratch.resize(static_cast<std::size_t>(run_len * page_size_));
    file.ReadPages(pages[i], run_len, scratch.data());
    for (std::size_t k = i; k < j; ++k) {
      std::memcpy(SlotData(slots[k]),
                  scratch.data() + (k - i) * static_cast<std::size_t>(page_size_),
                  static_cast<std::size_t>(page_size_));
    }
    i = j;
  }

  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t k = 0; k < pages.size(); ++k) {
    Frame* f = cache_.Peek(MakeKey(file.file_id(), pages[k]));
    MDW_CHECK(f != nullptr, "prefetched frame vanished while pinned");
    f->loading = false;
    --f->pins;
    --pinned_;
  }
  cv_.notify_all();
  return static_cast<std::int64_t>(pages.size());
}

void BufferPool::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  MDW_CHECK(pinned_ == 0, "cannot reset a buffer pool with pinned pages");
  cache_.Reset();
  free_slots_.clear();
  for (std::int64_t s = capacity_pages_ - 1; s >= 0; --s) {
    free_slots_.push_back(static_cast<std::int32_t>(s));
  }
  prefetched_ = 0;
}

PoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  PoolStats s;
  s.hits = cache_.hits();
  s.misses = cache_.misses();
  s.evictions = cache_.evictions();
  s.prefetched = prefetched_;
  s.pages_read = s.misses + s.prefetched;
  s.bytes_read = s.pages_read * page_size_;
  return s;
}

}  // namespace mdw::storage
