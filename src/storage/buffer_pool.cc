#include "storage/buffer_pool.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/check.h"

namespace mdw::storage {

BufferPool::BufferPool(std::int64_t capacity_pages, std::int64_t page_size,
                       StorageRetryPolicy retry)
    : capacity_pages_(capacity_pages),
      page_size_(page_size),
      retry_(retry),
      cache_(capacity_pages) {
  MDW_CHECK(capacity_pages >= 1, "buffer pool needs at least one frame");
  MDW_CHECK(page_size >= 1, "buffer pool page size must be positive");
  MDW_CHECK(retry_.max_attempts >= 1,
            "retry policy needs at least one attempt");
  arena_.resize(static_cast<std::size_t>(capacity_pages * page_size));
  free_slots_.reserve(static_cast<std::size_t>(capacity_pages));
  for (std::int64_t s = capacity_pages - 1; s >= 0; --s) {
    free_slots_.push_back(static_cast<std::int32_t>(s));
  }
}

BufferPool::~BufferPool() = default;

std::int32_t BufferPool::AcquireSlot() {
  if (free_slots_.empty()) {
    // Pool full: evict one unpinned, fully-loaded page to recycle its slot.
    // Failed frames are never victims — they always hold at least one pin
    // until the failure protocol erases them.
    cache_.EvictToFit(
        1, [](const Frame& fr) { return fr.pins == 0 && !fr.loading; },
        [this](std::uint64_t, const Frame& fr) {
          free_slots_.push_back(fr.slot);
        });
  }
  if (free_slots_.empty()) return -1;
  const std::int32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

Status BufferPool::LoadWithRetry(const PageFile& file, std::int64_t page,
                                 std::int32_t slot, PinIo* io,
                                 const CancellationToken& cancel) {
  Status st;
  std::int64_t backoff = retry_.backoff_us;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      // A tripped token abandons the remaining retry budget: the
      // query's typed status replaces the (transient) I/O error it
      // would otherwise keep retrying.
      if (cancel.ShouldStop()) return cancel.CancelStatus();
      ++io->io_retries;
      if (backoff > 0) {
        // Never sleep past the query's own deadline.
        const std::int64_t sleep_us =
            std::min(backoff, cancel.RemainingMicros());
        if (sleep_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
        }
        backoff = std::min<std::int64_t>(
            static_cast<std::int64_t>(static_cast<double>(backoff) *
                                      retry_.backoff_multiplier),
            retry_.max_backoff_us);
      }
    }
    st = file.ReadPages(page, 1, SlotData(slot));
    if (st.ok()) {
      st = file.VerifyPage(page, SlotData(slot));
      if (!st.ok()) ++io->checksum_failures;
    } else {
      ++io->io_errors;
    }
    if (st.ok() || attempt + 1 >= retry_.max_attempts) return st;
  }
}

void BufferPool::ReleaseFailedLocked(std::uint64_t key, Frame* f) {
  --f->pins;
  --pinned_;
  if (f->pins == 0) {
    free_slots_.push_back(f->slot);
    cache_.Erase(key);
  }
}

void BufferPool::MergeIoLocked(const PinIo& io, PinIo* out) {
  io_errors_ += io.io_errors;
  io_retries_ += io.io_retries;
  checksum_failures_ += io.checksum_failures;
  if (out != nullptr) {
    out->io_errors += io.io_errors;
    out->io_retries += io.io_retries;
    out->checksum_failures += io.checksum_failures;
  }
}

StatusOr<BufferPool::PageRef> BufferPool::Pin(const PageFile& file,
                                              std::int64_t page, PinIo* io,
                                              const CancellationToken& cancel) {
  MDW_CHECK(page_size_ == file.page_size(), "page size mismatch with pool");
  const std::uint64_t key = MakeKey(file.file_id(), page);
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (Frame* f = cache_.Get(key); f != nullptr) {
      if (f->failed) {
        // Another pinner's load failed and its waiters are draining; a
        // failed frame is never served. Wait until the failure protocol
        // erases it, then retry the pin with a fresh load (and a fresh
        // retry budget — transient faults clear, sticky ones fail again).
        cv_.wait(lk, [&] {
          const Frame* cur = cache_.Peek(key);
          return cur == nullptr || !cur->failed;
        });
        continue;
      }
      // Resident or being loaded by another thread: either way the caller
      // avoids a demand fault, so it counts as a hit. Pin first so the
      // frame cannot be evicted while we wait for the in-flight load.
      ++f->pins;
      ++pinned_;
      if (f->loading) {
        cv_.wait(lk, [&] { return !f->loading; });
        if (f->failed) {
          const Status st = f->error;
          ReleaseFailedLocked(key, f);
          cv_.notify_all();
          if (st.code() == StatusCode::kCancelled ||
              st.code() == StatusCode::kDeadlineExceeded) {
            // The loader gave up because ITS query was cancelled or
            // deadlined — that says nothing about this pin's query.
            // Retry the load under this caller's own token and a fresh
            // retry budget instead of inheriting a neighbour's fate.
            continue;
          }
          // An I/O or corruption error is this pin's error too; the
          // last pin out erased the frame so nothing poisoned stays
          // cached.
          return st;
        }
      }
      return PageRef(this, key, SlotData(f->slot), /*hit=*/true);
    }
    const std::int32_t slot = AcquireSlot();
    MDW_CHECK(slot >= 0,
              "buffer pool exhausted: every frame is pinned; "
              "increase pool capacity");
    Frame* f = cache_.Insert(
        key, Frame{slot, /*pins=*/1, /*loading=*/true, /*failed=*/false, {}},
        /*weight=*/1);
    ++pinned_;
    lk.unlock();
    PinIo local;
    const Status st = LoadWithRetry(file, page, slot, &local, cancel);
    lk.lock();
    MergeIoLocked(local, io);
    f->loading = false;
    if (!st.ok()) {
      f->failed = true;
      f->error = st;
      ReleaseFailedLocked(key, f);
      cv_.notify_all();
      return st;
    }
    cv_.notify_all();
    return PageRef(this, key, SlotData(slot), /*hit=*/false);
  }
}

void BufferPool::Unpin(std::uint64_t key) {
  std::lock_guard<std::mutex> lk(mu_);
  Frame* f = cache_.Peek(key);
  MDW_CHECK(f != nullptr && f->pins > 0, "unpin of a page that is not pinned");
  --f->pins;
  --pinned_;
}

std::int64_t BufferPool::Prefetch(const PageFile& file, std::int64_t first,
                                  std::int64_t count, PinIo* io) {
  MDW_CHECK(page_size_ == file.page_size(), "page size mismatch with pool");
  first = std::max<std::int64_t>(first, 0);
  count = std::min(count, file.page_count() - first);
  // Cap the run so one prefetch can never flush a small pool.
  count = std::min(count, std::min<std::int64_t>(64, capacity_pages_ / 4));
  if (count <= 0) return 0;

  // Claim frames for the uncached pages, grouped into runs of
  // consecutive pages so each run is one coalesced read.
  std::vector<std::int64_t> pages;
  std::vector<std::int32_t> slots;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::int64_t p = first; p < first + count; ++p) {
      const std::uint64_t key = MakeKey(file.file_id(), p);
      if (cache_.Peek(key) != nullptr) continue;  // already resident
      const std::int32_t slot = AcquireSlot();
      if (slot < 0) break;  // best-effort: stop when frames run out
      cache_.Insert(
          key, Frame{slot, /*pins=*/1, /*loading=*/true, /*failed=*/false, {}},
          /*weight=*/1);
      ++pinned_;
      pages.push_back(p);
      slots.push_back(slot);
    }
  }
  if (pages.empty()) return 0;

  // Read each run of consecutive claimed pages in one call, landing in a
  // scratch buffer (arena slots are scattered), then verify and scatter
  // to slots. Prefetch never retries: a page whose run failed or whose
  // checksum mismatches is simply dropped — the demand fault that later
  // needs it retries under the pool's policy.
  std::vector<std::byte> scratch;
  std::vector<Status> page_status(pages.size());
  PinIo local;
  std::size_t i = 0;
  while (i < pages.size()) {
    std::size_t j = i + 1;
    while (j < pages.size() && pages[j] == pages[j - 1] + 1) ++j;
    const std::int64_t run_len = static_cast<std::int64_t>(j - i);
    scratch.resize(static_cast<std::size_t>(run_len * page_size_));
    const Status run_st = file.ReadPages(pages[i], run_len, scratch.data());
    if (!run_st.ok()) {
      ++local.io_errors;
      for (std::size_t k = i; k < j; ++k) page_status[k] = run_st;
      i = j;
      continue;
    }
    for (std::size_t k = i; k < j; ++k) {
      const std::byte* img =
          scratch.data() + (k - i) * static_cast<std::size_t>(page_size_);
      page_status[k] = file.VerifyPage(pages[k], img);
      if (!page_status[k].ok()) {
        ++local.checksum_failures;
        continue;
      }
      std::memcpy(SlotData(slots[k]), img,
                  static_cast<std::size_t>(page_size_));
    }
    i = j;
  }

  std::int64_t kept = 0;
  std::lock_guard<std::mutex> lk(mu_);
  MergeIoLocked(local, io);
  for (std::size_t k = 0; k < pages.size(); ++k) {
    const std::uint64_t key = MakeKey(file.file_id(), pages[k]);
    Frame* f = cache_.Peek(key);
    MDW_CHECK(f != nullptr, "prefetched frame vanished while pinned");
    f->loading = false;
    if (page_status[k].ok()) {
      ++kept;
      --f->pins;
      --pinned_;
    } else {
      // Same failure protocol as Pin: waiters (if any pinned while the
      // load was in flight) observe the error and drain the frame.
      f->failed = true;
      f->error = page_status[k];
      ReleaseFailedLocked(key, f);
    }
  }
  prefetched_ += kept;
  cv_.notify_all();
  return kept;
}

void BufferPool::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  MDW_CHECK(pinned_ == 0, "cannot reset a buffer pool with pinned pages");
  cache_.Reset();
  free_slots_.clear();
  for (std::int64_t s = capacity_pages_ - 1; s >= 0; --s) {
    free_slots_.push_back(static_cast<std::int32_t>(s));
  }
  prefetched_ = 0;
  io_errors_ = 0;
  io_retries_ = 0;
  checksum_failures_ = 0;
}

PoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  PoolStats s;
  s.hits = cache_.hits();
  s.misses = cache_.misses();
  s.evictions = cache_.evictions();
  s.prefetched = prefetched_;
  s.pages_read = s.misses + s.prefetched;
  s.bytes_read = s.pages_read * page_size_;
  s.io_errors = io_errors_;
  s.io_retries = io_retries_;
  s.checksum_failures = checksum_failures_;
  return s;
}

}  // namespace mdw::storage
