#ifndef MDW_STORAGE_BUFFER_POOL_H_
#define MDW_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/cancellation.h"
#include "common/lru_cache.h"
#include "common/status.h"
#include "storage/page_file.h"

namespace mdw::storage {

/// How the buffer pool retries a failed page load before giving up and
/// surfacing the error. Retries cover both read failures (kIoError) and
/// checksum mismatches (kCorruption) — a bit flipped in flight re-reads
/// clean; one flipped at rest keeps failing and the error propagates.
struct StorageRetryPolicy {
  /// Total read attempts per page load (1 = fail on the first error).
  int max_attempts = 1;
  /// Sleep before the first retry, microseconds; each further retry
  /// multiplies by `backoff_multiplier`, capped at `max_backoff_us`.
  /// 0 = retry immediately.
  std::int64_t backoff_us = 0;
  double backoff_multiplier = 2.0;
  std::int64_t max_backoff_us = 10'000;
};

/// Counters a BufferPool accumulates over its lifetime (until Reset).
/// `pages_read` counts pages actually faulted from the backing files —
/// demand misses plus prefetched pages; `bytes_read` is the same in
/// bytes. The failure counters: `io_errors` = read attempts that failed,
/// `checksum_failures` = page images that failed CRC verification,
/// `io_retries` = extra read attempts the retry policy issued (counted
/// whether or not they succeeded).
struct PoolStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t prefetched = 0;
  std::int64_t pages_read = 0;
  std::int64_t bytes_read = 0;
  std::int64_t io_errors = 0;
  std::int64_t io_retries = 0;
  std::int64_t checksum_failures = 0;
};

/// A page-granular buffer pool over one or more PageFiles: a fixed arena
/// of `capacity_pages` frames managed by the shared mdw::LruCache
/// eviction core (pinned or in-flight frames are never victims). Thread
/// safe; page I/O happens outside the pool lock, with concurrent misses
/// on the same page coalesced (the waiters count hits).
///
/// Failure path: a load that still fails after the retry policy leaves
/// NOTHING cached — the frame is marked failed, every waiter observes
/// the error, and the last pin out erases the frame and recycles its
/// slot — so a poisoned page can never be served from cache and a retry
/// of the same page starts from a clean slate.
class BufferPool {
 public:
  /// All registered files must share this page size.
  BufferPool(std::int64_t capacity_pages, std::int64_t page_size,
             StorageRetryPolicy retry = {});
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  class PageRef;

  /// Per-call failure attribution of one Pin/Prefetch (added into the
  /// pool's lifetime counters as well).
  struct PinIo {
    std::int64_t io_errors = 0;
    std::int64_t io_retries = 0;
    std::int64_t checksum_failures = 0;
  };

  /// Returns a pinned reference to `page` of `file`, faulting it in on a
  /// miss (verified against the file's attached checksums, retried under
  /// the pool's StorageRetryPolicy). On failure returns the last error —
  /// kIoError or kCorruption — and the frame is gone from the pool.
  /// Aborts when every frame is pinned (the pool is sized too small for
  /// the concurrent pin load).
  ///
  /// `cancel` bounds the retry budget: backoff sleeps are capped by the
  /// token's RemainingMicros() and a tripped token abandons the
  /// remaining attempts, returning the token's typed status
  /// (kDeadlineExceeded/kCancelled) instead of sleeping past the
  /// query's own deadline. One query's cancellation never leaks into a
  /// coalesced neighbour: a waiter that finds the frame failed with a
  /// cancellation-typed error retries the load itself, under its own
  /// token and a fresh retry budget.
  StatusOr<PageRef> Pin(const PageFile& file, std::int64_t page,
                        PinIo* io = nullptr,
                        const CancellationToken& cancel = {});

  /// Best-effort read-ahead of pages [first, first + count): faults the
  /// uncached ones in one coalesced read per gap, without pinning them
  /// beyond the load. Skips silently when free frames are scarce. The
  /// run is capped at min(64, capacity/4) pages so a prefetch can never
  /// flush a small pool. Pages whose read fails or whose checksum does
  /// not verify are dropped (not cached, no retry — the demand fault
  /// will retry under the policy); failures land in `io`. Returns the
  /// number of pages actually faulted AND kept.
  std::int64_t Prefetch(const PageFile& file, std::int64_t first,
                        std::int64_t count, PinIo* io = nullptr);

  /// Drops every cached page and zeroes the counters; aborts if any page
  /// is still pinned. For cold-cache benchmarks and tests.
  void Reset();

  std::int64_t capacity_pages() const { return capacity_pages_; }
  std::int64_t page_size() const { return page_size_; }
  const StorageRetryPolicy& retry_policy() const { return retry_; }

  /// Snapshot of the counters (consistent across fields).
  PoolStats stats() const;

 private:
  struct Frame {
    std::int32_t slot = -1;    ///< index into the arena
    std::int32_t pins = 0;     ///< outstanding PageRefs
    bool loading = false;      ///< I/O in flight; wait on cv_
    bool failed = false;       ///< load failed; error below, never served
    Status error;              ///< set iff failed
  };

  static std::uint64_t MakeKey(std::uint32_t file_id, std::int64_t page) {
    return (static_cast<std::uint64_t>(file_id) << 40) |
           static_cast<std::uint64_t>(page);
  }

  std::byte* SlotData(std::int32_t slot) {
    return arena_.data() + static_cast<std::size_t>(slot) * page_size_;
  }

  /// Pops a free arena slot, evicting an unpinned page if none is free.
  /// Returns -1 when every frame is pinned or loading. Caller holds mu_.
  std::int32_t AcquireSlot();

  /// Reads `page` into `slot` and CRC-verifies it, retrying under the
  /// policy with bounded backoff — sleeps capped by `cancel`'s remaining
  /// deadline, a tripped token returning its typed status. Called
  /// UNLOCKED; counts into `io`.
  Status LoadWithRetry(const PageFile& file, std::int64_t page,
                       std::int32_t slot, PinIo* io,
                       const CancellationToken& cancel);

  /// Drops one pin of a failed frame; the last pin out erases the frame
  /// and recycles its slot. Caller holds mu_ and must notify cv_.
  void ReleaseFailedLocked(std::uint64_t key, Frame* f);

  void MergeIoLocked(const PinIo& io, PinIo* out);

  void Unpin(std::uint64_t key);

  const std::int64_t capacity_pages_;
  const std::int64_t page_size_;
  const StorageRetryPolicy retry_;
  std::vector<std::byte> arena_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< signalled when a load completes
  LruCache<std::uint64_t, Frame> cache_;
  std::vector<std::int32_t> free_slots_;
  std::int64_t prefetched_ = 0;
  std::int64_t pinned_ = 0;  ///< total outstanding pins across all frames
  std::int64_t io_errors_ = 0;
  std::int64_t io_retries_ = 0;
  std::int64_t checksum_failures_ = 0;

  friend class PageRef;
};

/// RAII pin on one resident page: `data()` stays valid and the frame
/// unevictable for the ref's lifetime. Move-only.
class BufferPool::PageRef {
 public:
  PageRef(PageRef&& other) noexcept
      : pool_(other.pool_), key_(other.key_), data_(other.data_),
        hit_(other.hit_) {
    other.pool_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      key_ = other.key_;
      data_ = other.data_;
      hit_ = other.hit_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  const std::byte* data() const { return data_; }
  /// True when the pin was served from cache (no demand fault).
  bool hit() const { return hit_; }

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, std::uint64_t key, const std::byte* data, bool hit)
      : pool_(pool), key_(key), data_(data), hit_(hit) {}

  void Release() {
    if (pool_ != nullptr) {
      pool_->Unpin(key_);
      pool_ = nullptr;
    }
  }

  BufferPool* pool_;
  std::uint64_t key_;
  const std::byte* data_;
  bool hit_;
};

}  // namespace mdw::storage

#endif  // MDW_STORAGE_BUFFER_POOL_H_
