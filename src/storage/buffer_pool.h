#ifndef MDW_STORAGE_BUFFER_POOL_H_
#define MDW_STORAGE_BUFFER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/lru_cache.h"
#include "storage/page_file.h"

namespace mdw::storage {

/// Counters a BufferPool accumulates over its lifetime (until Reset).
/// `pages_read` counts pages actually faulted from the backing files —
/// demand misses plus prefetched pages; `bytes_read` is the same in
/// bytes.
struct PoolStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t prefetched = 0;
  std::int64_t pages_read = 0;
  std::int64_t bytes_read = 0;
};

/// A page-granular buffer pool over one or more PageFiles: a fixed arena
/// of `capacity_pages` frames managed by the shared mdw::LruCache
/// eviction core (pinned or in-flight frames are never victims). Thread
/// safe; page I/O happens outside the pool lock, with concurrent misses
/// on the same page coalesced (the waiters count hits).
class BufferPool {
 public:
  /// All registered files must share this page size.
  BufferPool(std::int64_t capacity_pages, std::int64_t page_size);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  class PageRef;

  /// Returns a pinned reference to `page` of `file`, faulting it in on a
  /// miss. Aborts when every frame is pinned (the pool is sized too
  /// small for the concurrent pin load).
  PageRef Pin(const PageFile& file, std::int64_t page);

  /// Best-effort read-ahead of pages [first, first + count): faults the
  /// uncached ones in one coalesced read per gap, without pinning them
  /// beyond the load. Skips silently when free frames are scarce. The
  /// run is capped at min(64, capacity/4) pages so a prefetch can never
  /// flush a small pool. Returns the number of pages actually faulted,
  /// so callers can attribute the I/O.
  std::int64_t Prefetch(const PageFile& file, std::int64_t first,
                        std::int64_t count);

  /// Drops every cached page and zeroes the counters; aborts if any page
  /// is still pinned. For cold-cache benchmarks and tests.
  void Reset();

  std::int64_t capacity_pages() const { return capacity_pages_; }
  std::int64_t page_size() const { return page_size_; }

  /// Snapshot of the counters (consistent across fields).
  PoolStats stats() const;

 private:
  struct Frame {
    std::int32_t slot = -1;    ///< index into the arena
    std::int32_t pins = 0;     ///< outstanding PageRefs
    bool loading = false;      ///< I/O in flight; wait on cv_
  };

  static std::uint64_t MakeKey(std::uint32_t file_id, std::int64_t page) {
    return (static_cast<std::uint64_t>(file_id) << 40) |
           static_cast<std::uint64_t>(page);
  }

  std::byte* SlotData(std::int32_t slot) {
    return arena_.data() + static_cast<std::size_t>(slot) * page_size_;
  }

  /// Pops a free arena slot, evicting an unpinned page if none is free.
  /// Returns -1 when every frame is pinned or loading. Caller holds mu_.
  std::int32_t AcquireSlot();

  void Unpin(std::uint64_t key);

  const std::int64_t capacity_pages_;
  const std::int64_t page_size_;
  std::vector<std::byte> arena_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< signalled when a load completes
  LruCache<std::uint64_t, Frame> cache_;
  std::vector<std::int32_t> free_slots_;
  std::int64_t prefetched_ = 0;
  std::int64_t pinned_ = 0;  ///< total outstanding pins across all frames

  friend class PageRef;
};

/// RAII pin on one resident page: `data()` stays valid and the frame
/// unevictable for the ref's lifetime. Move-only.
class BufferPool::PageRef {
 public:
  PageRef(PageRef&& other) noexcept
      : pool_(other.pool_), key_(other.key_), data_(other.data_),
        hit_(other.hit_) {
    other.pool_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      key_ = other.key_;
      data_ = other.data_;
      hit_ = other.hit_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  const std::byte* data() const { return data_; }
  /// True when the pin was served from cache (no demand fault).
  bool hit() const { return hit_; }

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, std::uint64_t key, const std::byte* data, bool hit)
      : pool_(pool), key_(key), data_(data), hit_(hit) {}

  void Release() {
    if (pool_ != nullptr) {
      pool_->Unpin(key_);
      pool_ = nullptr;
    }
  }

  BufferPool* pool_;
  std::uint64_t key_;
  const std::byte* data_;
  bool hit_;
};

}  // namespace mdw::storage

#endif  // MDW_STORAGE_BUFFER_POOL_H_
