#include "storage/page_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace mdw::storage {

const char* ToString(IoBackend backend) {
  switch (backend) {
    case IoBackend::kPread: return "pread";
    case IoBackend::kMmap: return "mmap";
  }
  return "?";
}

namespace {

/// Opens `path` read-only and returns {fd, size}; aborts on failure.
std::pair<int, std::int64_t> OpenAndSize(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  MDW_CHECK(fd >= 0, "cannot open segment file for reading");
  struct stat st;
  MDW_CHECK(::fstat(fd, &st) == 0, "cannot stat segment file");
  return {fd, static_cast<std::int64_t>(st.st_size)};
}

class PreadPageFile final : public PageFile {
 public:
  PreadPageFile(std::string path, std::int64_t page_size,
                std::int64_t page_count, std::uint32_t file_id, int fd)
      : PageFile(std::move(path), page_size, page_count, file_id), fd_(fd) {}

  ~PreadPageFile() override { ::close(fd_); }

  void ReadPages(std::int64_t first, std::int64_t count,
                 std::byte* dst) const override {
    MDW_CHECK(first >= 0 && count >= 0 && first + count <= page_count(),
              "page read out of range");
    std::int64_t want = count * page_size();
    std::int64_t off = first * page_size();
    char* out = reinterpret_cast<char*>(dst);
    while (want > 0) {
      const ssize_t got = ::pread(fd_, out, static_cast<std::size_t>(want),
                                  static_cast<off_t>(off));
      if (got < 0 && errno == EINTR) continue;
      MDW_CHECK(got > 0, "short read from segment file");
      want -= got;
      off += got;
      out += got;
    }
  }

 private:
  int fd_;
};

class MmapPageFile final : public PageFile {
 public:
  MmapPageFile(std::string path, std::int64_t page_size,
               std::int64_t page_count, std::uint32_t file_id,
               const std::byte* map, std::size_t map_len)
      : PageFile(std::move(path), page_size, page_count, file_id),
        map_(map),
        map_len_(map_len) {}

  ~MmapPageFile() override {
    if (map_ != nullptr) {
      ::munmap(const_cast<std::byte*>(map_), map_len_);
    }
  }

  void ReadPages(std::int64_t first, std::int64_t count,
                 std::byte* dst) const override {
    MDW_CHECK(first >= 0 && count >= 0 && first + count <= page_count(),
              "page read out of range");
    std::memcpy(dst, map_ + first * page_size(),
                static_cast<std::size_t>(count * page_size()));
  }

 private:
  const std::byte* map_;
  std::size_t map_len_;
};

}  // namespace

std::unique_ptr<PageFile> PageFile::Open(IoBackend backend,
                                         const std::string& path,
                                         std::int64_t page_size,
                                         std::uint32_t file_id) {
  MDW_CHECK(page_size >= 1, "page size must be positive");
  auto [fd, size] = OpenAndSize(path);
  MDW_CHECK(size % page_size == 0,
            "segment file length is not a whole number of pages");
  const std::int64_t page_count = size / page_size;
  if (backend == IoBackend::kPread) {
    return std::make_unique<PreadPageFile>(path, page_size, page_count,
                                           file_id, fd);
  }
  // Zero-length files cannot be mapped; serve them with a null mapping
  // (any read is out of range and aborts above anyway).
  const std::byte* map = nullptr;
  if (size > 0) {
    void* m = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
    MDW_CHECK(m != MAP_FAILED, "cannot mmap segment file");
    map = static_cast<const std::byte*>(m);
  }
  ::close(fd);  // the mapping survives the descriptor
  return std::make_unique<MmapPageFile>(path, page_size, page_count, file_id,
                                        map, static_cast<std::size_t>(size));
}

}  // namespace mdw::storage
