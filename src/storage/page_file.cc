#include "storage/page_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"
#include "common/crc32c.h"

namespace mdw::storage {

const char* ToString(IoBackend backend) {
  switch (backend) {
    case IoBackend::kPread: return "pread";
    case IoBackend::kMmap: return "mmap";
  }
  return "?";
}

Status PageFile::VerifyPage(std::int64_t page, const std::byte* data) const {
  const std::int64_t idx = page - checksum_first_page_;
  if (idx < 0 || idx >= static_cast<std::int64_t>(checksums_.size())) {
    return Status::Ok();
  }
  const std::uint32_t got =
      Crc32c(data, static_cast<std::size_t>(page_size_));
  if (got != checksums_[static_cast<std::size_t>(idx)]) {
    return Status::Corruption("page " + std::to_string(page) + " of " +
                              path_ + " fails its CRC-32C");
  }
  return Status::Ok();
}

namespace {

/// Opens `path` read-only and returns {fd, size}; aborts on failure.
std::pair<int, std::int64_t> OpenAndSize(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  MDW_CHECK(fd >= 0, "cannot open segment file for reading");
  struct stat st;
  MDW_CHECK(::fstat(fd, &st) == 0, "cannot stat segment file");
  return {fd, static_cast<std::int64_t>(st.st_size)};
}

class PreadPageFile final : public PageFile {
 public:
  PreadPageFile(std::string path, std::int64_t page_size,
                std::int64_t page_count, std::uint32_t file_id, int fd)
      : PageFile(std::move(path), page_size, page_count, file_id), fd_(fd) {}

  ~PreadPageFile() override { ::close(fd_); }

  Status ReadPages(std::int64_t first, std::int64_t count,
                   std::byte* dst) const override {
    MDW_CHECK(first >= 0 && count >= 0 && first + count <= page_count(),
              "page read out of range");
    std::int64_t want = count * page_size();
    std::int64_t off = first * page_size();
    char* out = reinterpret_cast<char*>(dst);
    // Loop over partial reads: pread may legally return fewer bytes than
    // requested (and -1/EINTR on a signal) without anything being wrong.
    // Only a hard error or an early EOF is a failure — and a typed one,
    // so a transient EIO degrades the query instead of the process.
    while (want > 0) {
      const ssize_t got = ::pread(fd_, out, static_cast<std::size_t>(want),
                                  static_cast<off_t>(off));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("pread of " + path() + " failed: " +
                               std::strerror(errno));
      }
      if (got == 0) {
        return Status::IoError("unexpected EOF in " + path() +
                               " (file truncated under the reader?)");
      }
      want -= got;
      off += got;
      out += got;
    }
    return Status::Ok();
  }

 private:
  int fd_;
};

class MmapPageFile final : public PageFile {
 public:
  MmapPageFile(std::string path, std::int64_t page_size,
               std::int64_t page_count, std::uint32_t file_id,
               const std::byte* map, std::size_t map_len)
      : PageFile(std::move(path), page_size, page_count, file_id),
        map_(map),
        map_len_(map_len) {}

  ~MmapPageFile() override {
    if (map_ != nullptr) {
      ::munmap(const_cast<std::byte*>(map_), map_len_);
    }
  }

  Status ReadPages(std::int64_t first, std::int64_t count,
                   std::byte* dst) const override {
    MDW_CHECK(first >= 0 && count >= 0 && first + count <= page_count(),
              "page read out of range");
    std::memcpy(dst, map_ + first * page_size(),
                static_cast<std::size_t>(count * page_size()));
    return Status::Ok();
  }

 private:
  const std::byte* map_;
  std::size_t map_len_;
};

}  // namespace

std::unique_ptr<PageFile> PageFile::Open(IoBackend backend,
                                         const std::string& path,
                                         std::int64_t page_size,
                                         std::uint32_t file_id) {
  MDW_CHECK(page_size >= 1, "page size must be positive");
  auto [fd, size] = OpenAndSize(path);
  MDW_CHECK(size % page_size == 0,
            "segment file length is not a whole number of pages");
  const std::int64_t page_count = size / page_size;
  if (backend == IoBackend::kPread) {
    return std::make_unique<PreadPageFile>(path, page_size, page_count,
                                           file_id, fd);
  }
  // Zero-length files cannot be mapped; serve them with a null mapping
  // (any read is out of range and aborts above anyway).
  const std::byte* map = nullptr;
  if (size > 0) {
    void* m = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
    MDW_CHECK(m != MAP_FAILED, "cannot mmap segment file");
    map = static_cast<const std::byte*>(m);
  }
  ::close(fd);  // the mapping survives the descriptor
  return std::make_unique<MmapPageFile>(path, page_size, page_count, file_id,
                                        map, static_cast<std::size_t>(size));
}

}  // namespace mdw::storage
