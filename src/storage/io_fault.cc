#include "storage/io_fault.h"

#include <chrono>
#include <string>
#include <thread>

namespace mdw::storage {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEio: return "eio";
    case FaultKind::kShortRead: return "short-read";
    case FaultKind::kCorruption: return "corruption";
    case FaultKind::kLatency: return "latency";
  }
  return "?";
}

namespace {

/// SplitMix64: a full-period mixer, so every (seed, page, attempt, kind)
/// tuple gets an independent uniform draw without shared RNG state.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the tuple's hash.
double Draw(std::uint64_t seed, std::uint64_t key, std::uint32_t attempt,
            std::uint32_t salt) {
  std::uint64_t h = Mix(seed ^ Mix(key ^ (static_cast<std::uint64_t>(attempt)
                                          << 32 | salt)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultInjector::Decide(std::uint32_t file_id, std::int64_t page,
                           FaultKind* kind) {
  const std::uint64_t key = (static_cast<std::uint64_t>(file_id) << 40) |
                            static_cast<std::uint64_t>(page);
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint32_t attempt = attempts_[key]++;
  ++stats_.page_reads;

  // Scripted faults first: deterministic by construction.
  for (std::size_t i = 0; i < plan_.scripted.size(); ++i) {
    const FaultPlan::Scripted& s = plan_.scripted[i];
    if (s.file_id >= 0 && static_cast<std::uint32_t>(s.file_id) != file_id) {
      continue;
    }
    if (s.page >= 0 && s.page != page) continue;
    if (s.count >= 0 && scripted_fired_[i] >= s.count) continue;
    ++scripted_fired_[i];
    *kind = s.kind;
    switch (s.kind) {
      case FaultKind::kEio: ++stats_.injected_eio; break;
      case FaultKind::kShortRead: ++stats_.injected_short_reads; break;
      case FaultKind::kCorruption: ++stats_.injected_corruptions; break;
      case FaultKind::kLatency: ++stats_.injected_latency; break;
    }
    return true;
  }

  // Probabilistic faults: one independent draw per kind per attempt, so
  // a retry of the same page re-rolls — transient faults clear.
  if (plan_.eio_rate > 0 &&
      Draw(plan_.seed, key, attempt, 0xE10) < plan_.eio_rate) {
    ++stats_.injected_eio;
    *kind = FaultKind::kEio;
    return true;
  }
  if (plan_.short_read_rate > 0 &&
      Draw(plan_.seed, key, attempt, 0x5047) < plan_.short_read_rate) {
    ++stats_.injected_short_reads;
    *kind = FaultKind::kShortRead;
    return true;
  }
  if (plan_.corrupt_rate > 0 &&
      Draw(plan_.seed, key, attempt, 0xC042) < plan_.corrupt_rate) {
    ++stats_.injected_corruptions;
    *kind = FaultKind::kCorruption;
    return true;
  }
  if (plan_.latency_rate > 0 &&
      Draw(plan_.seed, key, attempt, 0x1A7E) < plan_.latency_rate) {
    ++stats_.injected_latency;
    *kind = FaultKind::kLatency;
    return true;
  }
  return false;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::unique_ptr<PageFile> FaultInjector::Wrap(
    std::unique_ptr<PageFile> inner) {
  return std::make_unique<FaultInjectingPageFile>(std::move(inner), this);
}

Status FaultInjectingPageFile::ReadPages(std::int64_t first,
                                         std::int64_t count,
                                         std::byte* dst) const {
  // Real read first; an injected fault must never mask a genuine one.
  Status real = inner_->ReadPages(first, count, dst);
  if (!real.ok()) return real;

  for (std::int64_t p = first; p < first + count; ++p) {
    FaultKind kind;
    if (!injector_->Decide(file_id(), p, &kind)) continue;
    switch (kind) {
      case FaultKind::kEio:
        return Status::IoError("injected EIO on page " + std::to_string(p) +
                               " of " + path());
      case FaultKind::kShortRead:
        return Status::IoError("injected short read at page " +
                               std::to_string(p) + " of " + path());
      case FaultKind::kCorruption: {
        // Flip one deterministic bit of the page image: which one falls
        // out of the same hash family as the fault decision itself.
        std::byte* page_data = dst + (p - first) * page_size();
        const std::uint64_t h =
            Mix(injector_->plan().seed ^
                Mix((static_cast<std::uint64_t>(file_id()) << 40) |
                    static_cast<std::uint64_t>(p)));
        const auto byte_idx = static_cast<std::size_t>(
            h % static_cast<std::uint64_t>(page_size()));
        page_data[byte_idx] ^= std::byte{static_cast<unsigned char>(
            1u << ((h >> 32) % 8))};
        break;
      }
      case FaultKind::kLatency:
        std::this_thread::sleep_for(
            std::chrono::microseconds(injector_->plan().latency_us));
        break;
    }
  }
  return Status::Ok();
}

}  // namespace mdw::storage
