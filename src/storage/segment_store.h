#ifndef MDW_STORAGE_SEGMENT_STORE_H_
#define MDW_STORAGE_SEGMENT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/io_fault.h"
#include "storage/page_file.h"

namespace mdw::storage {

/// How a file-backed warehouse finds and sizes its persistent store.
struct StoreOptions {
  /// Root directory of the store; one subdirectory per shard ("disk").
  std::string path;
  /// Buffer-pool capacity in pages, shared by all shard segments.
  std::int64_t pool_pages = 4096;
  IoBackend backend = IoBackend::kPread;
  /// Read ahead over coalesced scan runs (best-effort).
  bool prefetch = true;
  /// Reuse an existing segment whose header matches exactly; any
  /// mismatch (corruption, truncation, stale format version, different
  /// dataset) rewrites it.
  bool reuse_existing = true;
  /// How the buffer pool retries failed page loads before surfacing a
  /// typed error to the query.
  StorageRetryPolicy retry;
  /// Deterministic fault injection over every post-construction page
  /// read (the chaos-test substrate); disabled by default. Segment
  /// writes, header validation, and the checksum-block load are never
  /// injected — construction-time invariants stay fatal.
  FaultPlan fault_plan;
};

/// FNV-1a accumulator for the schema hash stamped into segment headers:
/// the warehouse folds in everything that determines the bytes of the
/// clustered store (schema parameters, seed, clustering attributes,
/// shard count, allocation, row count), so a stale segment from any
/// other configuration fails validation and is rewritten.
struct Fnv1a {
  std::uint64_t hash = 1469598103934665603ull;

  void Bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      hash ^= p[i];
      hash *= 1099511628211ull;
    }
  }
  void I64(std::int64_t v) { Bytes(&v, sizeof v); }
  void U64(std::uint64_t v) { Bytes(&v, sizeof v); }
};

/// The page-aligned on-disk form of one clustered, sharded warehouse:
/// per shard a directory `shard-NNNN/` holding `segment.mdwseg` — a
/// little-endian header (magic, version, schema hash, geometry, column
/// and fragment directories), a checksum block (one CRC-32C per data
/// page, page-padded), then the shard's columns, each column stored
/// page-aligned with `tuples_per_page` values per page (the same page
/// geometry PagedLayout and the paper's I/O-class math count, so page
/// boundaries line up with the logical page model).
///
/// Format v2 (current): pages are [header | checksums | data]. Every
/// data page's CRC-32C (computed over the full page image, zero padding
/// included) is stored in the checksum block and verified by the buffer
/// pool each time the page is faulted in, so at-rest or in-flight
/// corruption surfaces as a typed kCorruption error instead of silently
/// wrong aggregates. v1 files (no checksum block) fail validation with
/// a "stale format version" message and are transparently rewritten.
///
/// Column order: the `num_dims` dimension leaf columns, units_sold,
/// dollar_sales_cents, then — when summaries are enabled — the two
/// measure prefix-sum columns. A prefix column of a shard with R rows
/// holds R + 1 values: the global inclusive prefix P[B..E] sliced at
/// the shard's row region [B, E), so a covered run [b, e) inside the
/// shard folds as P[e] - P[b] from at most two pages.
///
/// Construction writes each shard's segment crash-durably (write to
/// temp, fsync the temp file, rename into place, fsync the parent
/// directory), or reuses a byte-identical existing one (see
/// StoreOptions), then opens every segment behind one shared
/// BufferPool. All row addressing on the read side is in *global*
/// clustered row indices; the store maps them to (shard, local page,
/// offset) internally.
class SegmentStore {
 public:
  /// One fragment's local row range inside its shard's segment.
  struct FragEntry {
    std::int64_t frag_id;
    std::int64_t begin;  ///< shard-local row index
    std::int64_t end;
  };

  /// Everything the writer needs from the clustered warehouse. Column
  /// pointers address the *global* clustered vectors; the store slices
  /// each shard's region itself.
  struct BuildInput {
    std::int64_t page_size;
    std::int64_t tuples_per_page;
    std::uint64_t schema_hash;
    int num_dims;
    bool has_summaries;
    /// Global row region of each shard; size num_shards + 1.
    std::vector<std::int64_t> shard_row_begin;
    /// Per shard, its fragments' local row ranges, ascending.
    std::vector<std::vector<FragEntry>> shard_fragments;
    /// Global columns in on-disk order: dims..., units, dollars, then
    /// (iff has_summaries) units_prefix, dollars_prefix. The prefix
    /// vectors hold total_rows + 1 values.
    std::vector<const std::vector<std::int64_t>*> columns;
  };

  SegmentStore(const StoreOptions& options, const BuildInput& input);

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// True iff every shard's existing segment file validated and was
  /// reused as-is (no shard was written).
  bool reused() const { return reused_; }
  /// Why the first non-reusable existing segment was rejected (header
  /// mismatch, truncation, short file, stale format version, ...);
  /// empty when reused() or when no prior file existed.
  const std::string& validation_error() const { return validation_error_; }

  BufferPool& pool() { return *pool_; }
  const BufferPool& pool() const { return *pool_; }

  /// The fault injector driving this store's FaultPlan, or nullptr when
  /// injection is disabled. Exposes injection totals for tests.
  const FaultInjector* fault_injector() const { return injector_.get(); }

  std::int64_t page_size() const { return page_size_; }
  std::int64_t tuples_per_page() const { return tuples_per_page_; }
  int num_shards() const { return static_cast<int>(files_.size()); }
  std::int64_t row_count() const { return shard_row_begin_.back(); }
  int num_columns() const { return num_columns_; }
  bool has_summaries() const { return has_summaries_; }

  /// Column indices in on-disk order.
  int ColDim(int d) const { return d; }
  int ColUnits() const { return num_dims_; }
  int ColDollars() const { return num_dims_ + 1; }
  int ColUnitsPrefix() const { return num_dims_ + 2; }
  int ColDollarsPrefix() const { return num_dims_ + 3; }

  /// Path of shard `s`'s segment file (for tests and tooling).
  std::string SegmentPath(int s) const;
  /// Pages in shard `s`'s segment file, header and checksum block
  /// included.
  std::int64_t SegmentPages(int s) const;
  /// Pages of shard `s`'s checksum block (between header and data).
  std::int64_t ChecksumPages(int s) const;
  /// First data page of shard `s` (== header pages + checksum pages).
  std::int64_t FirstDataPage(int s) const;

  /// I/O a reader attributed to one execution slice. `pages_read`
  /// counts pages faulted from disk (demand misses plus pages this
  /// reader prefetched); `buffer_hits` counts pins served from cache
  /// (prefetched pages pin as hits). Summed over a query's cursors,
  /// these match the pool's own counter deltas. The failure counters
  /// mirror BufferPool::PinIo: failed read attempts, retry attempts
  /// issued, and checksum verification failures this slice observed.
  struct IoCounters {
    std::int64_t pages_read = 0;
    std::int64_t buffer_hits = 0;
    std::int64_t bytes_read = 0;
    std::int64_t io_errors = 0;
    std::int64_t io_retries = 0;
    std::int64_t checksum_failures = 0;
  };

  /// A read cursor over one column, addressed by global clustered row
  /// index; caches the current pinned page so sequential access costs
  /// one pool pin per page. Cheap to construct (per scan chunk); NOT
  /// thread-safe — use one cursor per thread, and a non-null `io` must
  /// not be shared across concurrently-used cursors.
  ///
  /// Failure semantics: when a pin fails (after the pool's retries) the
  /// cursor latches the error in status() and every subsequent At()
  /// returns 0 without touching the pool again — the caller's kernel
  /// runs to completion on zeros, and the execution layer discards the
  /// poisoned aggregate because status() is not ok. This keeps the hot
  /// path branch-free on the happy path (one status check per page
  /// fault, none per row).
  class Cursor {
   public:
    Cursor(const SegmentStore* store, int column, IoCounters* io,
           CancellationToken cancel = {})
        : store_(store), column_(column), io_(io),
          cancel_(std::move(cancel)) {}

    /// Value at global index `i`. For prefix columns `i` ranges over
    /// [0, row_count()]; for all others [0, row_count()).
    std::int64_t At(std::int64_t i) {
      if (i >= span_begin_ && i < span_end_) {
        return span_
            [static_cast<std::size_t>(i - span_begin_)];
      }
      return Fault(i);
    }

    /// Best-effort read-ahead of the pages backing global rows
    /// [begin, end) of this column; no-op when the store disables
    /// prefetch. Faulted pages count into `io` as pages_read.
    void PrefetchRun(std::int64_t begin, std::int64_t end);

    /// First error any page fault of this cursor hit; ok while every
    /// read succeeded. Once failed, At() returns 0 for every index.
    const Status& status() const { return status_; }

   private:
    std::int64_t Fault(std::int64_t i);

    const SegmentStore* store_;
    int column_;
    IoCounters* io_;
    CancellationToken cancel_;  ///< caps pin retry budgets; unarmed = free
    Status status_;
    /// Global index span of the currently-pinned page ([begin, end)),
    /// empty initially.
    std::int64_t span_begin_ = 0;
    std::int64_t span_end_ = 0;
    const std::int64_t* span_ = nullptr;
    std::int64_t shard_ = 0;  ///< shard of the current span (hint)
    std::unique_ptr<BufferPool::PageRef> page_;
  };

  Cursor MakeCursor(int column, IoCounters* io,
                    CancellationToken cancel = {}) const {
    return Cursor(this, column, io, std::move(cancel));
  }

 private:
  /// Per-shard read-side directory derived from the build input.
  struct ShardDir {
    std::vector<std::int64_t> col_first_page;  ///< per column
    std::vector<std::int64_t> col_value_count;
    std::int64_t header_pages = 0;
    std::int64_t checksum_pages = 0;
    std::int64_t data_pages = 0;
    std::int64_t total_pages = 0;  ///< header + checksums + data
  };

  /// Serialises the exact header bytes (padded to whole pages) for
  /// shard `s` under `input`.
  static std::vector<std::byte> BuildHeader(const BuildInput& input, int s);
  /// True iff the file at `path` exists and is byte-identical to
  /// `header` over the header region with the expected total size;
  /// fills `why` otherwise (empty when the file simply doesn't exist).
  /// A wrong magic or a non-current format version is reported
  /// explicitly (that is how v1 segments are detected as stale).
  static bool ValidateExisting(const std::string& path,
                               const std::vector<std::byte>& header,
                               std::int64_t expected_bytes, std::string* why);
  void WriteSegment(const BuildInput& input, int s,
                    const std::vector<std::byte>& header,
                    const std::string& path);
  /// Reads shard `s`'s checksum block (construction-time, raw pread —
  /// fatal on failure) and attaches it to `file` for pin-time
  /// verification.
  void LoadChecksums(int s, const std::string& path, PageFile* file) const;

  /// Shard whose region covers global index `i` (prefix-column
  /// addressing included: i == row_count() maps to the last shard).
  int ShardOf(std::int64_t i) const;

  std::int64_t page_size_;
  std::int64_t tuples_per_page_;
  int num_dims_;
  int num_columns_;
  bool has_summaries_;
  bool prefetch_;
  std::string root_;
  std::vector<std::int64_t> shard_row_begin_;
  std::vector<ShardDir> dirs_;
  std::vector<std::unique_ptr<PageFile>> files_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<BufferPool> pool_;
  bool reused_ = false;
  std::string validation_error_;
};

}  // namespace mdw::storage

#endif  // MDW_STORAGE_SEGMENT_STORE_H_
