#include "core/paged_layout.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/check.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace mdw {

PagedLayout::PagedLayout(const MiniWarehouse* warehouse, LayoutOrder kind,
                         const Fragmentation* fragmentation)
    : warehouse_(warehouse),
      tuples_per_page_(warehouse->schema().physical().TuplesPerPage()),
      page_count_(CeilDiv(warehouse->row_count(), tuples_per_page_)) {
  MDW_CHECK(warehouse_ != nullptr, "layout needs a warehouse");
  const std::int64_t rows = warehouse_->row_count();
  std::vector<std::int64_t> order(static_cast<std::size_t>(rows));
  std::iota(order.begin(), order.end(), 0);

  if (kind == LayoutOrder::kArrival) {
    Rng rng(987);
    std::shuffle(order.begin(), order.end(), rng.engine());
  } else if (kind == LayoutOrder::kFragmentClustered) {
    MDW_CHECK(fragmentation != nullptr,
              "fragment-clustered layout needs a fragmentation");
    MDW_CHECK(&fragmentation->schema() == &warehouse_->schema(),
              "fragmentation must belong to the warehouse's schema");
    // Cluster rows by fragment id (stable: insertion order within a
    // fragment), the physical order MDHF prescribes.
    const auto& facts = warehouse_->facts();
    const int dims = warehouse_->schema().num_dimensions();
    std::vector<FragId> fragment_of_row(static_cast<std::size_t>(rows));
    std::vector<std::int64_t> keys(static_cast<std::size_t>(dims));
    for (std::int64_t row = 0; row < rows; ++row) {
      for (DimId d = 0; d < dims; ++d) {
        keys[static_cast<std::size_t>(d)] =
            facts.columns[static_cast<std::size_t>(d)]
                         [static_cast<std::size_t>(row)];
      }
      fragment_of_row[static_cast<std::size_t>(row)] =
          fragmentation->FragmentOfRow(keys);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int64_t a, std::int64_t b) {
                       return fragment_of_row[static_cast<std::size_t>(a)] <
                              fragment_of_row[static_cast<std::size_t>(b)];
                     });
  }

  position_of_row_.resize(static_cast<std::size_t>(rows));
  for (std::int64_t position = 0; position < rows; ++position) {
    position_of_row_[static_cast<std::size_t>(
        order[static_cast<std::size_t>(position)])] = position;
  }
}

std::int64_t PagedLayout::PositionOfRow(std::int64_t row) const {
  MDW_CHECK(row >= 0 && row < warehouse_->row_count(), "row out of range");
  return position_of_row_[static_cast<std::size_t>(row)];
}

PagedLayout::ScanStats PagedLayout::Analyze(const StarQuery& query) const {
  ScanStats stats;
  stats.pages_total = page_count_;
  std::unordered_set<std::int64_t> hit_pages;
  const auto& schema = warehouse_->schema();
  const auto& facts = warehouse_->facts();
  for (std::int64_t row = 0; row < warehouse_->row_count(); ++row) {
    bool hit = true;
    for (const auto& pred : query.predicates()) {
      const auto& h = schema.dimension(pred.dim).hierarchy();
      const std::int64_t value = h.AncestorOfLeaf(
          facts.columns[static_cast<std::size_t>(pred.dim)]
                       [static_cast<std::size_t>(row)],
          pred.depth);
      if (std::find(pred.values.begin(), pred.values.end(), value) ==
          pred.values.end()) {
        hit = false;
        break;
      }
    }
    if (!hit) continue;
    ++stats.hit_rows;
    hit_pages.insert(PageOfPosition(PositionOfRow(row)));
  }
  stats.pages_with_hits = static_cast<std::int64_t>(hit_pages.size());
  stats.hits_per_hit_page =
      stats.pages_with_hits == 0
          ? 0
          : static_cast<double>(stats.hit_rows) /
                static_cast<double>(stats.pages_with_hits);
  return stats;
}

}  // namespace mdw
