#ifndef MDW_CORE_WAREHOUSE_H_
#define MDW_CORE_WAREHOUSE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "alloc/disk_allocation.h"
#include "common/status.h"
#include "core/execution_backend.h"
#include "fragment/fragmentation.h"
#include "fragment/plan_cache.h"
#include "fragment/query_planner.h"
#include "fragment/star_query.h"
#include "schema/star_schema.h"
#include "sim/sim_config.h"

namespace mdw {

/// Everything needed to stand up a warehouse: the star schema, the MDHF
/// fragmentation attributes, and which execution backend answers queries.
struct WarehouseConfig {
  StarSchema schema;

  /// MDHF fragmentation attributes (empty = the unfragmented baseline).
  std::vector<FragAttr> fragmentation;

  BackendKind backend = BackendKind::kSimulated;

  /// Hardware and policy settings; used by BackendKind::kSimulated.
  SimConfig sim = {};

  /// Fact-population seed (BackendKind::kMaterialized) and the default
  /// seed for workload drivers running against this warehouse. Defaults
  /// to sim.seed so one seed controls the whole setup.
  std::optional<std::uint64_t> seed;

  /// Capacity (entries) of the shared plan cache memoizing Plan() results
  /// by canonical query signature; 0 disables caching and every
  /// Plan/Execute derives afresh. Copies of a Warehouse share one cache,
  /// so repeated workloads hit across copies.
  std::size_t plan_cache_capacity = 256;

  /// Parallel degree of the materialized backend (the paper's partition
  /// parallelism): fragment row ranges of one query — and the queries of a
  /// batch — are processed as concurrent tasks. 0 = use the hardware
  /// (std::thread::hardware_concurrency), 1 = serial fallback, n = n
  /// workers. Results are bit-identical for any value. Ignored by the
  /// simulated backend (it models its own parallelism via SimConfig).
  int num_workers = 0;

  /// Coverage-aware aggregation on the materialized backend: build measure
  /// prefix sums over the fragment-clustered layout so fully-covered
  /// fragments (every row a hit, decided by the planner from the hierarchy
  /// alone) are answered in O(1) per run instead of scanned. Aggregates
  /// are bit-identical either way; `false` restores the scan-everything
  /// behaviour for A/B benchmarking. Ignored by the simulated backend.
  bool enable_fragment_summaries = true;

  /// Physical shards of the materialized store (the paper's disks made
  /// real): fragments are declustered over `num_shards` contiguous store
  /// regions by `allocation`, and execution schedules one affinity task
  /// per shard — idle workers steal residual scan chunks — recording
  /// per-shard work and a skew metric in QueryOutcome. Results are
  /// bit-identical at any shard count. 1 = unsharded (default). Ignored
  /// by the simulated backend (its disks come from SimConfig).
  int num_shards = 1;

  /// Fragment -> shard mapping policy (round robin with optional
  /// round_gap / cluster_factor, Sec. 4.6). `num_disks` is overridden by
  /// `num_shards`; bitmap placement is irrelevant to the in-memory store.
  /// The same AllocationConfig drives the simulator's DiskAllocation, so
  /// one allocation policy can be evaluated in simulation and on real
  /// hardware side by side (see examples/speedup_study).
  AllocationConfig allocation = {};

  /// Non-empty: file-backed materialized store. At construction each
  /// shard's fact columns, measures, and prefix-sum summaries are
  /// written (or reused byte-identically) as page-aligned segment files
  /// under this directory — one subdirectory per shard — and the in-RAM
  /// copies are dropped; queries then read through a page-granular
  /// buffer pool and QueryOutcome reports pages_read / buffer_hits /
  /// bytes_read. Aggregates and logical counters stay bit-identical to
  /// the in-RAM store. Ignored by the simulated backend.
  std::string storage_path = {};
  /// Buffer-pool capacity in pages shared by all shard segments
  /// (file-backed mode only).
  std::int64_t storage_pool_pages = 4096;
  /// How segment pages are read off the filesystem.
  storage::IoBackend storage_backend = storage::IoBackend::kPread;
  /// Read ahead over coalesced unfiltered scan runs (best-effort).
  bool storage_prefetch = true;
  /// How many times the buffer pool retries a failed page load (read
  /// error or checksum mismatch) before the query surfaces a typed error
  /// in QueryOutcome::status. Default: fail on the first error.
  storage::StorageRetryPolicy storage_retry = {};
  /// Deterministic fault injection over the store's page reads — the
  /// chaos-testing hook (see docs/ARCHITECTURE.md, "Failure model").
  /// Disabled by default; file-backed mode only.
  storage::FaultPlan storage_fault = {};
};

/// The single entry point over the paper's machinery: owns the schema,
/// fragmentation, indexes/materialised facts (or the simulator), and the
/// query planner, and executes star queries through a uniform surface.
///
///   mdw::Warehouse wh({.schema = mdw::MakeApb1Schema(),
///                      .fragmentation = {{mdw::kApb1Time, 2},
///                                        {mdw::kApb1Product, 3}}});
///   auto outcome = wh.Execute(mdw::apb1_queries::OneMonthOneGroup(3, 41));
///
/// Value semantics: a Warehouse is copyable and movable; copies share the
/// immutable schema/fragmentation/backend state, so handing a Warehouse
/// around (or destroying the original) never dangles — the hazard of
/// wiring StarSchema* / Fragmentation* into planners and simulators by
/// hand. Plans returned by Plan() likewise keep the fragmentation (and
/// transitively the schema) alive on their own.
class Warehouse {
 public:
  explicit Warehouse(WarehouseConfig config);

  BackendKind backend() const { return backend_->kind(); }
  const StarSchema& schema() const { return *schema_; }
  const Fragmentation& fragmentation() const { return *fragmentation_; }
  std::uint64_t seed() const { return seed_; }

  /// Classifies the query against the fragmentation (Sec. 4.2/4.5) and
  /// derives its fragment set; valid independently of the backend.
  /// Served from the plan cache when enabled (returns a copy of the
  /// cached plan; use PlanShared() to share the cached object itself).
  QueryPlan Plan(const StarQuery& query) const;

  /// Like Plan(), but returns the cache-resident plan without copying
  /// (or a freshly derived one when the cache is disabled). This is the
  /// plan Execute()/ExecuteBatch() run on.
  std::shared_ptr<const QueryPlan> PlanShared(const StarQuery& query) const;

  /// Plans (cache-first) and executes one query on the configured
  /// backend; the backend never re-plans.
  QueryOutcome Execute(const StarQuery& query) const;

  /// One-call SQL front end: parses `sql` (the dialect of
  /// workload/query_parser.h — SELECT aggregates, WHERE, GROUP BY,
  /// ORDER BY ... LIMIT), plans it cache-first, and executes on the
  /// configured backend. A malformed statement returns kInvalidArgument
  /// carrying the parser's diagnostic; a well-formed statement returns
  /// the QueryOutcome exactly as Execute() would (execution-side
  /// failures stay typed inside QueryOutcome::status).
  StatusOr<QueryOutcome> ExecuteSql(std::string_view sql) const;

  /// Executes a batch as one run. On the simulated backend `streams` > 1
  /// runs the batch in concurrent query streams (multi-user mode); the
  /// materialized backend ignores it.
  BatchOutcome ExecuteBatch(std::span<const StarQuery> queries,
                            int streams = 1) const;

  /// Open-loop multi-user serving (materialized backend only): plans
  /// every arrival (cache-first), admits the trace through a
  /// deterministic virtual-time QueryScheduler under `config` (FCFS or
  /// credit/fair-share, bounded-queue admission control), executes the
  /// served queries on the backend's pool in dispatch order, and returns
  /// their outcomes (admission order) with BatchOutcome::serving engaged
  /// — per-stream p50/p95/p99 latency, queue wait vs service time,
  /// rejected counts and the Jain fairness index, all in virtual time so
  /// they reproduce bit-for-bit regardless of thread timing. Every
  /// served query's QueryOutcome is bit-identical to Execute() of the
  /// same query. `schedule_out` (optional) receives the full schedule.
  BatchOutcome Serve(std::span<const Arrival> arrivals,
                     const ServingConfig& config,
                     ServeSchedule* schedule_out = nullptr) const;

  /// The materialised mini-warehouse backing kMaterialized, or nullptr —
  /// ground-truth checks (full scans, bitmap paths) go through this.
  const MiniWarehouse* materialized() const;

  /// The simulator settings backing kSimulated; aborts on kMaterialized.
  const SimConfig& sim_config() const;

  /// Hit/miss/eviction counters of the shared plan cache; all-zero (with
  /// capacity 0) when caching is disabled. Copies of this Warehouse
  /// report the same counters — they share the cache.
  PlanCache::Stats plan_cache_stats() const;

 private:
  std::shared_ptr<const StarSchema> schema_;
  std::shared_ptr<const Fragmentation> fragmentation_;
  std::shared_ptr<const MiniWarehouse> mini_;  ///< kMaterialized only
  std::shared_ptr<const ExecutionBackend> backend_;
  std::shared_ptr<const QueryPlanner> planner_;
  std::shared_ptr<PlanCache> plan_cache_;  ///< nullptr when disabled
  std::uint64_t seed_ = 42;
};

}  // namespace mdw

#endif  // MDW_CORE_WAREHOUSE_H_
