#ifndef MDW_CORE_MINI_WAREHOUSE_H_
#define MDW_CORE_MINI_WAREHOUSE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bitmap/index_set.h"
#include "fragment/query_planner.h"

namespace mdw {

/// A fully materialised, in-memory star warehouse at a scale small enough
/// to hold every fact row. It executes star queries three ways — full
/// scan, bitmap-index path, and MDHF fragment-confined path — and is the
/// functional ground truth validating that the fragmentation/planner/index
/// machinery computes exactly the rows a full scan computes. (The
/// full-scale APB-1 configuration is only ever *simulated*; see
/// sim/simulator.h.)
class MiniWarehouse {
 public:
  /// Populates the fact table by sampling each possible dimension-value
  /// combination independently with probability schema.density() (the
  /// APB-1 density semantics), and builds all bitmap join indices.
  MiniWarehouse(StarSchema schema, std::uint64_t seed);

  const StarSchema& schema() const { return schema_; }
  const FactColumns& facts() const { return facts_; }
  const IndexSet& indexes() const { return *indexes_; }
  std::int64_t row_count() const { return facts_.row_count(); }

  /// SUM aggregate over the matching rows.
  struct AggregateResult {
    std::int64_t rows = 0;
    std::int64_t units_sold = 0;
    std::int64_t dollar_sales_cents = 0;

    friend bool operator==(const AggregateResult& a,
                           const AggregateResult& b) = default;
  };

  /// Reference execution: scans every fact row and applies the predicates
  /// directly against the dimension hierarchies.
  AggregateResult ExecuteFullScan(const StarQuery& query) const;

  /// Bitmap-index execution without fragmentation: intersects the index
  /// selections of all predicates, then aggregates the marked rows.
  AggregateResult ExecuteWithBitmaps(const StarQuery& query) const;

  /// MDHF execution under `fragmentation`: confines processing to the
  /// plan's fragments, uses bitmaps only for the predicates the plan says
  /// need them, and reports the work actually touched.
  struct MdhfExecution {
    AggregateResult result;
    std::int64_t fragments_processed = 0;
    std::int64_t rows_scanned = 0;  ///< rows in the processed fragments
    int bitmaps_read = 0;           ///< per fragment, from the plan
    QueryClass query_class = QueryClass::kUnsupported;
    IoClass io_class = IoClass::kIoc2NoSupp;
  };
  /// Compatibility entry point: derives the plan internally, then
  /// delegates to the plan-accepting overload below (one extra
  /// QueryPlanner::Plan call per query — the plan-first pipeline through
  /// mdw::Warehouse avoids it).
  MdhfExecution ExecuteWithFragmentation(
      const StarQuery& query, const Fragmentation& fragmentation) const;

  /// Plan-first entry point: executes `query` under `plan` (derived by the
  /// caller, typically once per batch through Warehouse's plan cache)
  /// without re-planning. The plan's fragmentation must belong to this
  /// warehouse's schema.
  MdhfExecution ExecuteWithPlan(const StarQuery& query,
                                const QueryPlan& plan) const;

 private:
  bool RowMatches(std::int64_t row, const StarQuery& query) const;

  StarSchema schema_;
  FactColumns facts_;
  std::vector<std::int64_t> units_sold_;
  std::vector<std::int64_t> dollar_sales_cents_;
  std::unique_ptr<IndexSet> indexes_;
};

}  // namespace mdw

#endif  // MDW_CORE_MINI_WAREHOUSE_H_
