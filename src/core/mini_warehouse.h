#ifndef MDW_CORE_MINI_WAREHOUSE_H_
#define MDW_CORE_MINI_WAREHOUSE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "bitmap/index_set.h"
#include "fragment/query_planner.h"

namespace mdw {

class ThreadPool;

/// A fully materialised, in-memory star warehouse at a scale small enough
/// to hold every fact row. It executes star queries three ways — full
/// scan, bitmap-index path, and MDHF fragment-confined path — and is the
/// functional ground truth validating that the fragmentation/planner/index
/// machinery computes exactly the rows a full scan computes. (The
/// full-scale APB-1 configuration is only ever *simulated*; see
/// sim/simulator.h.)
///
/// Physical layout: the clustered constructor permutes the fact columns
/// (and measure vectors) into *fragment-major* order of an MDHF
/// fragmentation — the paper's clustering property (Sec. 4.5) made
/// physical — and keeps a FragId -> [row_begin, row_end) directory, so
/// fragment-confined execution touches only the plan's row ranges
/// (O(selected rows)) and can process ranges as parallel partitions.
/// It additionally builds inclusive prefix sums over the measure columns
/// in that physical order, so a run of *fully-covered* fragments [b, e)
/// (every row a hit, per the plan's coverage classification) is answered
/// as P[e] - P[b] without touching the fact columns at all — O(residual
/// rows) instead of O(selected rows).
class MiniWarehouse {
 private:
  /// One resolved bitmap-needing predicate of a plan.
  struct BitmapAccess {
    const Predicate* pred;
    Depth frag_depth;    ///< fragmentation depth of the dim, or -1
    bool same_ancestor;  ///< suffix-only (within-fragment) eval is sound
  };

 public:
  /// Reusable per-batch execution buffers (opaque): pass the same scratch
  /// to consecutive ExecuteWithPlan calls to avoid a heap allocation per
  /// query. Not thread-safe; use one scratch per executing thread.
  class ExecScratch {
   public:
    ExecScratch() = default;

   private:
    friend class MiniWarehouse;
    std::vector<BitmapAccess> accesses_;
  };

  /// Populates the fact table by sampling each possible dimension-value
  /// combination independently with probability schema.density() (the
  /// APB-1 density semantics), and builds all bitmap join indices. Rows
  /// stay in generation (odometer) order; MDHF execution falls back to a
  /// per-row fragment-membership scan.
  MiniWarehouse(StarSchema schema, std::uint64_t seed);

  /// Same population, then clusters the physical layout fragment-major
  /// under the MDHF fragmentation given by `cluster_attrs` (empty attrs =
  /// the degenerate single-fragment clustering). Plans derived from a
  /// fragmentation with the same attributes execute fragment-confined via
  /// the row-range directory. `enable_summaries` additionally builds the
  /// measure prefix sums so fully-covered fragments are answered without
  /// scanning rows (false = PR 3 behaviour, for A/B comparisons).
  MiniWarehouse(StarSchema schema, std::uint64_t seed,
                std::vector<FragAttr> cluster_attrs,
                bool enable_summaries = true);

  const StarSchema& schema() const { return schema_; }
  const FactColumns& facts() const { return facts_; }
  const IndexSet& indexes() const { return *indexes_; }
  std::int64_t row_count() const { return facts_.row_count(); }

  /// ---- Clustered-layout introspection ----

  bool clustered() const { return cluster_frag_ != nullptr; }
  /// True iff the measure prefix sums exist, i.e. fully-covered fragments
  /// are answered from summaries instead of row scans.
  bool summaries_enabled() const { return summaries_enabled_; }
  /// The clustering fragmentation, or nullptr for generation order.
  const Fragmentation* cluster_fragmentation() const {
    return cluster_frag_.get();
  }
  /// True iff `fragmentation` matches the clustered layout (same schema
  /// object, same attribute list), i.e. plans derived from it can use the
  /// fragment directory.
  bool ClusteredFor(const Fragmentation& fragmentation) const;
  /// Physical row range [begin, end) of fragment `id` in the clustered
  /// layout; aborts when not clustered.
  std::pair<std::int64_t, std::int64_t> FragmentRows(FragId id) const;

  /// SUM aggregate over the matching rows.
  struct AggregateResult {
    std::int64_t rows = 0;
    std::int64_t units_sold = 0;
    std::int64_t dollar_sales_cents = 0;

    friend bool operator==(const AggregateResult& a,
                           const AggregateResult& b) = default;
  };

  /// Reference execution: scans every fact row and applies the predicates
  /// directly against the dimension hierarchies.
  AggregateResult ExecuteFullScan(const StarQuery& query) const;

  /// Bitmap-index execution without fragmentation: intersects the index
  /// selections of all predicates, then aggregates the marked rows.
  AggregateResult ExecuteWithBitmaps(const StarQuery& query) const;

  /// MDHF execution under `fragmentation`: confines processing to the
  /// plan's fragments, uses bitmaps only for the predicates the plan says
  /// need them, and reports the work actually touched.
  struct MdhfExecution {
    AggregateResult result;
    std::int64_t fragments_processed = 0;
    /// Rows actually scanned, i.e. rows of the *residual* fragments (with
    /// summaries disabled every processed fragment is residual, so this
    /// reverts to "rows in the processed fragments").
    std::int64_t rows_scanned = 0;
    /// Fully-covered fragments answered from the measure prefix sums
    /// (empty ones included), and the rows they contributed without being
    /// scanned. Zero when summaries are disabled or the layout fell back
    /// to the membership scan.
    std::int64_t fragments_summarized = 0;
    std::int64_t rows_summarized = 0;
    int bitmaps_read = 0;           ///< per fragment, from the plan
    QueryClass query_class = QueryClass::kUnsupported;
    IoClass io_class = IoClass::kIoc2NoSupp;

    friend bool operator==(const MdhfExecution& a,
                           const MdhfExecution& b) = default;
  };
  /// Compatibility entry point: derives the plan internally, then
  /// delegates to the plan-accepting overload below (one extra
  /// QueryPlanner::Plan call per query — the plan-first pipeline through
  /// mdw::Warehouse avoids it).
  MdhfExecution ExecuteWithFragmentation(
      const StarQuery& query, const Fragmentation& fragmentation) const;

  /// Plan-first entry point: executes `query` under `plan` (derived by the
  /// caller, typically once per batch through Warehouse's plan cache)
  /// without re-planning. The plan's fragmentation must belong to this
  /// warehouse's schema. When the plan's fragmentation matches the
  /// clustered layout, execution walks the fragment directory and touches
  /// only the plan's row ranges; otherwise it falls back to a full scan
  /// with per-row fragment membership tests.
  MdhfExecution ExecuteWithPlan(const StarQuery& query,
                                const QueryPlan& plan) const;

  /// Partition-parallel overload: splits the plan's row ranges (or, on the
  /// fallback path, the whole table) into tasks executed on `pool`, each
  /// accumulating a private partial aggregate; partials are merged at the
  /// end, so the result — counters included — is identical for any worker
  /// count (and to the serial overload). `pool == nullptr` runs serially.
  MdhfExecution ExecuteWithPlan(const StarQuery& query, const QueryPlan& plan,
                                const ThreadPool* pool) const;

  /// Like above, reusing `scratch`'s buffers instead of allocating per
  /// query (nullptr = allocate locally). Batch drivers pass one scratch
  /// across their whole loop.
  MdhfExecution ExecuteWithPlan(const StarQuery& query, const QueryPlan& plan,
                                const ThreadPool* pool,
                                ExecScratch* scratch) const;

 private:
  void Populate(std::uint64_t seed);
  void ClusterByFragment(std::vector<FragAttr> cluster_attrs);
  bool RowMatches(std::int64_t row, const StarQuery& query) const;
  void ResolveBitmapAccesses(const StarQuery& query, const QueryPlan& plan,
                             std::vector<BitmapAccess>* out) const;
  /// Aggregates rows [begin, end) of the clustered layout under the
  /// accesses' bitmap filters (evaluated over the range only).
  void ProcessRowRange(std::int64_t begin, std::int64_t end,
                       const std::vector<BitmapAccess>& accesses,
                       MdhfExecution* partial) const;
  MdhfExecution ExecuteClustered(const QueryPlan& plan,
                                 const std::vector<BitmapAccess>& accesses,
                                 const ThreadPool* pool) const;
  MdhfExecution ExecuteUnclustered(const QueryPlan& plan,
                                   const std::vector<BitmapAccess>& accesses,
                                   const ThreadPool* pool) const;

  StarSchema schema_;
  FactColumns facts_;
  std::vector<std::int64_t> units_sold_;
  std::vector<std::int64_t> dollar_sales_cents_;
  std::unique_ptr<IndexSet> indexes_;

  /// Clustered layout (nullptr/empty when rows are in generation order):
  /// rows of fragment f occupy [frag_offsets_[f], frag_offsets_[f+1]).
  std::unique_ptr<Fragmentation> cluster_frag_;
  std::vector<std::int64_t> frag_offsets_;

  /// Measure prefix sums in clustered row order (size row_count() + 1,
  /// P[0] = 0): sum over physical rows [b, e) is P[e] - P[b]. Built only
  /// by the clustered constructor with summaries enabled.
  bool summaries_enabled_ = false;
  std::vector<std::int64_t> units_prefix_;
  std::vector<std::int64_t> dollars_prefix_;
};

}  // namespace mdw

#endif  // MDW_CORE_MINI_WAREHOUSE_H_
