#ifndef MDW_CORE_MINI_WAREHOUSE_H_
#define MDW_CORE_MINI_WAREHOUSE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "alloc/disk_allocation.h"
#include "bitmap/index_set.h"
#include "common/cancellation.h"
#include "common/status.h"
#include "core/result_table.h"
#include "fragment/query_planner.h"
#include "fragment/shard_routing.h"
#include "storage/segment_store.h"

namespace mdw {

class ThreadPool;

/// A fully materialised, in-memory star warehouse at a scale small enough
/// to hold every fact row. It executes star queries three ways — full
/// scan, bitmap-index path, and MDHF fragment-confined path — and is the
/// functional ground truth validating that the fragmentation/planner/index
/// machinery computes exactly the rows a full scan computes. (The
/// full-scale APB-1 configuration is only ever *simulated*; see
/// sim/simulator.h.)
///
/// Physical layout: the clustered constructor permutes the fact columns
/// (and measure vectors) into *fragment-major* order of an MDHF
/// fragmentation — the paper's clustering property (Sec. 4.5) made
/// physical — and keeps a FragId -> [row_begin, row_end) directory, so
/// fragment-confined execution touches only the plan's row ranges
/// (O(selected rows)) and can process ranges as parallel partitions.
/// It additionally builds inclusive prefix sums over the measure columns
/// in that physical order, so a run of *fully-covered* fragments [b, e)
/// (every row a hit, per the plan's coverage classification) is answered
/// as P[e] - P[b] without touching the fact columns at all — O(residual
/// rows) instead of O(selected rows).
///
/// Sharding (the paper's disk allocation made physical): with
/// `num_shards` > 1 the clustered constructor consults a DiskAllocation
/// (round robin with optional round_gap/cluster_factor, one "disk" per
/// shard) and lays the store out *shard-major*: each shard owns a
/// contiguous region of the permuted columns/measures/prefix sums holding
/// exactly its allocated fragments in ascending id order, with a
/// shard-local FragId -> row-range directory. Execution routes the plan's
/// fragments to their shards and schedules one affinity task per shard
/// (idle workers steal residual scan chunks from busy shards), merging
/// shard partials in fixed shard order so the whole MdhfExecution record
/// stays bit-identical at any worker count and shard count.
class MiniWarehouse {
 private:
  /// One resolved bitmap-needing predicate of a plan.
  struct BitmapAccess {
    const Predicate* pred;
    Depth frag_depth;    ///< fragmentation depth of the dim, or -1
    bool same_ancestor;  ///< suffix-only (within-fragment) eval is sound
  };

 public:
  /// Reusable per-batch execution buffers (opaque): pass the same scratch
  /// to consecutive ExecuteWithPlan calls to avoid a heap allocation per
  /// query. Not thread-safe; use one scratch per executing thread.
  class ExecScratch {
   public:
    ExecScratch() = default;

   private:
    friend class MiniWarehouse;
    std::vector<BitmapAccess> accesses_;
  };

  /// Resolved grouping of one execution (derived from the plan):
  /// a fact row's group key is its group-dimension leaf / leaves_per.
  /// Execution-internal, public only so the kernel helpers can name it.
  struct GroupContext {
    bool grouped = false;
    DimId dim = -1;
    std::int64_t leaves_per = 1;
    std::int64_t card = 0;  ///< dense key domain [0, card)
  };

  /// Dense per-chunk group accumulator over the full key domain. Chunk
  /// counts are bounded (a few per lane), so dense beats hashing; the
  /// integer element-wise merge is order-independent, keeping grouped
  /// results bit-identical at any worker x shard count.
  /// Execution-internal, public only so the kernel helpers can name it.
  struct GroupAccum {
    std::vector<std::int64_t> rows;
    std::vector<std::int64_t> units;
    std::vector<std::int64_t> dollars;
    std::vector<std::int64_t> summarized;

    void Reset(std::int64_t card);
    void Tally(std::int64_t key, std::int64_t u, std::int64_t d) {
      const auto k = static_cast<std::size_t>(key);
      ++rows[k];
      units[k] += u;
      dollars[k] += d;
    }
    void TallySummary(std::int64_t key, std::int64_t n, std::int64_t u,
                      std::int64_t d) {
      const auto k = static_cast<std::size_t>(key);
      rows[k] += n;
      summarized[k] += n;
      units[k] += u;
      dollars[k] += d;
    }
    void Merge(const GroupAccum& other);
    /// Sparse key-ascending rows; groups with no matching fact rows are
    /// dropped (SQL GROUP BY emits no row for an empty group).
    std::vector<GroupRow> Compact() const;
  };

  /// Per-execution controls threaded through the MDHF paths.
  struct ExecOptions {
    /// Cooperative cancellation: polled at chunk boundaries (a tripped
    /// token abandons the remaining chunks and the execution surfaces
    /// the token's typed status) and passed to the buffer pool so retry
    /// backoff never sleeps past the query's deadline. The
    /// default-constructed (unarmed) token never trips and costs one
    /// null check per chunk — results stay bit-identical to the
    /// option-less overloads.
    CancellationToken cancel;
    /// Degraded covered-only execution: answer ONLY the fully-covered
    /// fragments from the measure prefix sums and skip every residual
    /// scan. The result is flagged `degraded` — a correct aggregate of
    /// a *subset* of the query's fragments, never a partial scan of a
    /// fragment. Requires summaries over a matching clustered layout.
    bool covered_only = false;
  };

  /// Populates the fact table by sampling each possible dimension-value
  /// combination independently with probability schema.density() (the
  /// APB-1 density semantics), and builds all bitmap join indices. Rows
  /// stay in generation (odometer) order; MDHF execution falls back to a
  /// per-row fragment-membership scan.
  MiniWarehouse(StarSchema schema, std::uint64_t seed);

  /// Same population, then clusters the physical layout fragment-major
  /// under the MDHF fragmentation given by `cluster_attrs` (empty attrs =
  /// the degenerate single-fragment clustering). Plans derived from a
  /// fragmentation with the same attributes execute fragment-confined via
  /// the row-range directory. `enable_summaries` additionally builds the
  /// measure prefix sums so fully-covered fragments are answered without
  /// scanning rows (false = PR 3 behaviour, for A/B comparisons).
  /// `num_shards` > 1 splits the store into that many physical shards
  /// under `allocation` (num_disks is overridden by num_shards; bitmap
  /// placement is irrelevant to the in-memory store) — see the class
  /// comment for the layout and scheduling consequences.
  ///
  /// `storage` with a non-empty path switches the store to file-backed
  /// mode: each shard's columns, measures, and prefix-sum summaries are
  /// written (or reused) as a page-aligned segment file under
  /// storage.path, the in-RAM copies are dropped, and execution resolves
  /// rows through a buffer pool of storage.pool_pages pages — results
  /// stay bit-identical to the in-RAM store; MdhfExecution additionally
  /// reports pages_read / buffer_hits / bytes_read.
  MiniWarehouse(StarSchema schema, std::uint64_t seed,
                std::vector<FragAttr> cluster_attrs,
                bool enable_summaries = true, int num_shards = 1,
                AllocationConfig allocation = {},
                storage::StoreOptions storage = {});

  const StarSchema& schema() const { return schema_; }
  /// The in-RAM fact columns; aborts in file-backed mode (the columns
  /// were dropped after the segments were written — go through the
  /// execution paths, which read via the buffer pool).
  const FactColumns& facts() const;
  const IndexSet& indexes() const { return *indexes_; }
  std::int64_t row_count() const { return row_count_; }

  /// True iff the fact/measure columns live in segment files behind the
  /// buffer pool instead of RAM.
  bool file_backed() const { return store_ != nullptr; }
  /// The segment store backing file-backed mode, or nullptr.
  const storage::SegmentStore* paged_store() const { return store_.get(); }
  /// Mutable segment store, for tools/benchmarks that reset the buffer
  /// pool between runs (cold-cache measurements); nullptr in RAM mode.
  storage::SegmentStore* mutable_paged_store() { return store_.get(); }

  /// ---- Clustered-layout introspection ----

  bool clustered() const { return cluster_frag_ != nullptr; }
  /// True iff the measure prefix sums exist, i.e. fully-covered fragments
  /// are answered from summaries instead of row scans.
  bool summaries_enabled() const { return summaries_enabled_; }
  /// The clustering fragmentation, or nullptr for generation order.
  const Fragmentation* cluster_fragmentation() const {
    return cluster_frag_.get();
  }
  /// True iff `fragmentation` matches the clustered layout (same schema
  /// object, same attribute list), i.e. plans derived from it can use the
  /// fragment directory.
  bool ClusteredFor(const Fragmentation& fragmentation) const;
  /// Physical row range [begin, end) of fragment `id` in the clustered
  /// layout; aborts when not clustered.
  std::pair<std::int64_t, std::int64_t> FragmentRows(FragId id) const;

  /// ---- Sharded-layout introspection ----

  /// Number of physical shards (1 = unsharded, also for the
  /// generation-order constructor).
  int num_shards() const { return num_shards_; }
  /// The allocation mapping fragments to shards, or nullptr when
  /// num_shards() == 1.
  const DiskAllocation* shard_allocation() const {
    return shard_alloc_.get();
  }
  /// Shard owning fragment `id` (always 0 when unsharded); aborts when
  /// not clustered.
  int ShardOfFragment(FragId id) const;
  /// Contiguous physical row region [begin, end) of shard `s`.
  std::pair<std::int64_t, std::int64_t> ShardRows(int s) const;
  /// Fragments allocated to shard `s`, ascending — their row ranges tile
  /// the shard's region in this order.
  const std::vector<FragId>& ShardFragments(int s) const;

  /// SUM aggregate over the matching rows.
  struct AggregateResult {
    std::int64_t rows = 0;
    std::int64_t units_sold = 0;
    std::int64_t dollar_sales_cents = 0;

    friend bool operator==(const AggregateResult& a,
                           const AggregateResult& b) = default;
  };

  /// Reference execution: scans every fact row and applies the predicates
  /// directly against the dimension hierarchies.
  AggregateResult ExecuteFullScan(const StarQuery& query) const;

  /// Grouped reference execution: the brute-force GROUP BY — one pass over
  /// every fact row, keying each match by its group-dimension ancestor at
  /// the query's GROUP BY depth. Key-ascending, empty groups absent; the
  /// ground truth groupby_test checks the MDHF paths against. Requires
  /// query.grouped(). rows_summarized is 0 in every row (nothing is
  /// answered from summaries here).
  std::vector<GroupRow> ExecuteFullScanGrouped(const StarQuery& query) const;

  /// Bitmap-index execution without fragmentation: intersects the index
  /// selections of all predicates, then aggregates the marked rows.
  AggregateResult ExecuteWithBitmaps(const StarQuery& query) const;

  /// Work one shard contributed to a sharded execution. Deterministic:
  /// which fragments (hence rows) belong to a shard is fixed by the
  /// allocation at construction, independent of scheduling.
  struct ShardWork {
    std::int64_t rows_scanned = 0;
    std::int64_t rows_summarized = 0;
    /// Plan fragments routed to this shard, and the fully-covered ones
    /// among them (empty fragments included).
    std::int64_t fragments = 0;
    std::int64_t fragments_summarized = 0;
    /// I/O this shard's ranges cost in file-backed mode (all-zero in
    /// RAM): pages faulted from its segment, pins served from the pool,
    /// bytes faulted. Deterministic in serial execution; under parallel
    /// execution the hit/fault split depends on scheduling (see
    /// MdhfExecution).
    std::int64_t pages_read = 0;
    std::int64_t buffer_hits = 0;
    std::int64_t bytes_read = 0;

    /// Busy-work proxy behind the skew metric: one unit per residual row
    /// scanned plus one per fragment answered from summaries (a summary
    /// run costs O(1) per fragment, not per row).
    std::int64_t BusyWork() const { return rows_scanned + fragments_summarized; }

    friend bool operator==(const ShardWork& a, const ShardWork& b) = default;
  };

  /// MDHF execution under `fragmentation`: confines processing to the
  /// plan's fragments, uses bitmaps only for the predicates the plan says
  /// need them, and reports the work actually touched.
  struct MdhfExecution {
    AggregateResult result;
    /// Per-group partials of a grouped execution (plan.grouped()), sparse
    /// and key-ascending; empty for ungrouped plans. `result` stays the
    /// grand total over all groups, so ungrouped consumers keep working
    /// unchanged. Like `result`, only trustworthy when `status` is ok.
    /// Sum of rows / rows_summarized over the groups equals the record's
    /// result.rows / rows_summarized (counter partition).
    std::vector<GroupRow> groups;
    std::int64_t fragments_processed = 0;
    /// Rows actually scanned, i.e. rows of the *residual* fragments (with
    /// summaries disabled every processed fragment is residual, so this
    /// reverts to "rows in the processed fragments").
    std::int64_t rows_scanned = 0;
    /// Fully-covered fragments answered from the measure prefix sums
    /// (empty ones included), and the rows they contributed without being
    /// scanned. Zero when summaries are disabled or the layout fell back
    /// to the membership scan.
    std::int64_t fragments_summarized = 0;
    std::int64_t rows_summarized = 0;
    /// File-backed I/O of this execution (all-zero for an in-RAM store,
    /// so records of RAM warehouses keep comparing equal as before):
    /// pages faulted from the segment files (demand misses plus pages
    /// prefetched for this query), pool pins served from cache, and
    /// bytes faulted. Sums over `shards` equal the totals. Unlike the
    /// aggregate and the logical counters these are NOT part of the
    /// bit-identical guarantee across worker counts: with more than one
    /// worker, which chunk faults a shared boundary page first depends
    /// on scheduling (serial execution is deterministic).
    std::int64_t pages_read = 0;
    std::int64_t buffer_hits = 0;
    std::int64_t bytes_read = 0;
    /// First storage error this execution hit (ok for an in-RAM store and
    /// for every fault-free file-backed run). When not ok, `result` is
    /// NOT trustworthy — the failed cursor answered zeros so the kernels
    /// could run to completion — and the caller must discard it (the
    /// Warehouse layer nulls the aggregate). Partials merge in fixed
    /// chunk order, so WHICH error surfaces is deterministic at any
    /// worker count (first-error-wins over the merge sequence).
    Status status;
    /// Failure/retry accounting from the buffer pool, summed over this
    /// execution's cursors: failed read attempts, extra attempts the
    /// retry policy issued, and CRC verification failures. All zero on
    /// a healthy store; like the I/O counters above they are exempt
    /// from the bit-identical guarantee under parallel execution.
    std::int64_t io_errors = 0;
    std::int64_t io_retries = 0;
    std::int64_t checksum_failures = 0;
    /// True iff this execution ran covered-only degraded mode
    /// (ExecOptions::covered_only): the aggregate covers exactly the
    /// plan's fully-covered fragments and the residual fragments were
    /// never touched. A degraded result is correct for that subset —
    /// callers must treat it as an under-approximation, not the full
    /// answer.
    bool degraded = false;
    int bitmaps_read = 0;           ///< per fragment, from the plan
    QueryClass query_class = QueryClass::kUnsupported;
    IoClass io_class = IoClass::kIoc2NoSupp;
    /// Per-shard work split, index = shard id. Populated only by sharded
    /// clustered execution (num_shards > 1 and the plan matched the
    /// layout); empty otherwise, so unsharded records are unchanged.
    std::vector<ShardWork> shards;

    /// Skew of the shard work split: max/mean BusyWork over the shards
    /// (1.0 = perfectly balanced, num_shards = all work on one shard).
    /// 0 when unsharded or when the query did no work at all.
    double ShardSkew() const;

    friend bool operator==(const MdhfExecution& a,
                           const MdhfExecution& b) = default;
  };
  /// Compatibility entry point: derives the plan internally, then
  /// delegates to the plan-accepting overload below (one extra
  /// QueryPlanner::Plan call per query — the plan-first pipeline through
  /// mdw::Warehouse avoids it).
  MdhfExecution ExecuteWithFragmentation(
      const StarQuery& query, const Fragmentation& fragmentation) const;

  /// Plan-first entry point: executes `query` under `plan` (derived by the
  /// caller, typically once per batch through Warehouse's plan cache)
  /// without re-planning. The plan's fragmentation must belong to this
  /// warehouse's schema. When the plan's fragmentation matches the
  /// clustered layout, execution walks the fragment directory and touches
  /// only the plan's row ranges; otherwise it falls back to a full scan
  /// with per-row fragment membership tests.
  MdhfExecution ExecuteWithPlan(const StarQuery& query,
                                const QueryPlan& plan) const;

  /// Partition-parallel overload: splits the plan's row ranges (or, on the
  /// fallback path, the whole table) into tasks executed on `pool`, each
  /// accumulating a private partial aggregate; partials are merged at the
  /// end, so the result — counters included — is identical for any worker
  /// count (and to the serial overload). `pool == nullptr` runs serially.
  MdhfExecution ExecuteWithPlan(const StarQuery& query, const QueryPlan& plan,
                                const ThreadPool* pool) const;

  /// Like above, reusing `scratch`'s buffers instead of allocating per
  /// query (nullptr = allocate locally). Batch drivers pass one scratch
  /// across their whole loop.
  MdhfExecution ExecuteWithPlan(const StarQuery& query, const QueryPlan& plan,
                                const ThreadPool* pool,
                                ExecScratch* scratch) const;

  /// Full-control overload: additionally threads `options` (cooperative
  /// cancellation, covered-only degradation) through the execution. With
  /// default options this is exactly the overload above. When
  /// options.cancel trips mid-execution the remaining chunks are
  /// abandoned and the record's status carries the token's typed error
  /// (kDeadlineExceeded/kCancelled) — the result must be discarded, as
  /// for a storage error; a token that trips only after the last chunk
  /// finished leaves the (complete, correct) record untouched.
  MdhfExecution ExecuteWithPlan(const StarQuery& query, const QueryPlan& plan,
                                const ThreadPool* pool, ExecScratch* scratch,
                                const ExecOptions& options) const;

 private:
  void Populate(std::uint64_t seed);
  void ClusterByFragment(std::vector<FragAttr> cluster_attrs, int num_shards,
                         AllocationConfig allocation);
  /// Writes (or reuses) the per-shard segment files under `options`,
  /// opens them behind the buffer pool, and drops the in-RAM columns.
  void BuildPagedStore(std::uint64_t seed,
                       const storage::StoreOptions& options);
  void ResolveBitmapAccesses(const StarQuery& query, const QueryPlan& plan,
                             std::vector<BitmapAccess>* out) const;
  /// Aggregates rows [begin, end) of the clustered layout under the
  /// accesses' bitmap filters (evaluated over the range only), reading
  /// measures from RAM or through per-chunk buffer-pool cursors
  /// (file-backed mode, which also attributes the chunk's I/O into
  /// `partial`). One call per scan chunk; safe to run concurrently.
  /// With `groups` non-null every hit is additionally tallied into its
  /// per-row group key (group.dim leaf / group.leaves_per).
  void ScanChunk(std::int64_t begin, std::int64_t end,
                 const std::vector<BitmapAccess>& accesses,
                 const GroupContext& group, const CancellationToken& cancel,
                 MdhfExecution* partial, GroupAccum* groups) const;
  MdhfExecution ExecuteClustered(const QueryPlan& plan,
                                 const std::vector<BitmapAccess>& accesses,
                                 const GroupContext& group,
                                 const ThreadPool* pool,
                                 const ExecOptions& options,
                                 GroupAccum* groups) const;
  /// Executes routed per-shard selections: affinity tasks + stealing on
  /// `pool` (serial in shard order without one), fixed-order merge.
  MdhfExecution ExecuteSharded(const std::vector<ShardSelection>& shards,
                               const std::vector<BitmapAccess>& accesses,
                               const GroupContext& group,
                               const ThreadPool* pool,
                               const ExecOptions& options,
                               GroupAccum* groups) const;
  MdhfExecution ExecuteUnclustered(const QueryPlan& plan,
                                   const std::vector<BitmapAccess>& accesses,
                                   const GroupContext& group,
                                   const ThreadPool* pool,
                                   const ExecOptions& options,
                                   GroupAccum* groups) const;
  /// Folds a summary run [begin, end) into exec from the prefix sums.
  /// With `groups` non-null the run is additionally credited to
  /// `group_key` (aligned grouped plans: the whole run lies in one group).
  void FoldSummaryRun(const RowRange& run, const CancellationToken& cancel,
                      MdhfExecution* exec, std::int64_t group_key = -1,
                      GroupAccum* groups = nullptr) const;
  /// Fills exec->shards by attributing the record's entire work to the
  /// shard owning fragment `id` — the single-fragment counterpart of
  /// ExecuteSharded's per-shard merge. No-op when unsharded.
  void AttributeWorkToFragmentShard(FragId id, MdhfExecution* exec) const;

  StarSchema schema_;
  std::int64_t row_count_ = 0;
  /// In-RAM columns; emptied (but the store stays authoritative through
  /// store_) in file-backed mode.
  FactColumns facts_;
  std::vector<std::int64_t> units_sold_;
  std::vector<std::int64_t> dollar_sales_cents_;
  std::unique_ptr<IndexSet> indexes_;
  /// File-backed mode: the page-aligned segment files and their buffer
  /// pool; nullptr for the in-RAM store.
  std::unique_ptr<storage::SegmentStore> store_;

  /// Clustered layout (nullptr/empty when rows are in generation order):
  /// rows of fragment f occupy [frag_offsets_[r], frag_offsets_[r+1])
  /// where r = frag_rank_[f], the fragment's position in shard-major
  /// order (identity when unsharded, so ranks == ids).
  std::unique_ptr<Fragmentation> cluster_frag_;
  std::vector<std::int64_t> frag_rank_;
  std::vector<std::int64_t> frag_offsets_;

  /// Shard split of the clustered layout. Unsharded stores keep
  /// num_shards_ == 1 with the whole table as shard 0 and no allocation.
  int num_shards_ = 1;
  std::unique_ptr<DiskAllocation> shard_alloc_;
  std::vector<int> shard_of_frag_;                ///< FragId -> shard
  std::vector<std::int64_t> shard_row_begin_;     ///< size num_shards_+1
  std::vector<std::vector<FragId>> shard_fragments_;

  /// Measure prefix sums in clustered row order (size row_count() + 1,
  /// P[0] = 0): sum over physical rows [b, e) is P[e] - P[b]. Built only
  /// by the clustered constructor with summaries enabled.
  bool summaries_enabled_ = false;
  std::vector<std::int64_t> units_prefix_;
  std::vector<std::int64_t> dollars_prefix_;
};

}  // namespace mdw

#endif  // MDW_CORE_MINI_WAREHOUSE_H_
