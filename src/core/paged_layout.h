#ifndef MDW_CORE_PAGED_LAYOUT_H_
#define MDW_CORE_PAGED_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "core/mini_warehouse.h"

namespace mdw {

/// A physical page layout of a materialised warehouse: rows are stored in
/// a chosen order, `TuplesPerPage()` rows per page. This makes the
/// paper's central clustering claim *measurable on real data*: under an
/// MDHF layout (rows ordered by fragment) the hit rows of a supported
/// query are co-located in few pages, while an insertion-order layout
/// spreads them across nearly all pages (paper Sec. 4.5: "all relevant
/// hit rows are co-located within a smaller subset of all pages,
/// increasing the number of hits per page and improving prefetch
/// efficiency").
/// Physical row order of a PagedLayout.
enum class LayoutOrder {
  /// Rows as generated (the mini-warehouse enumerates dimension
  /// combinations, so this is already product-major clustered).
  kGeneration,
  /// A seeded random permutation, modelling heap/arrival order — the
  /// paper's unclustered baseline.
  kArrival,
  /// Rows clustered by ascending MDHF fragment id (requires a
  /// fragmentation).
  kFragmentClustered,
};

class PagedLayout {
 public:
  /// `fragmentation` is required for (and only used by)
  /// LayoutOrder::kFragmentClustered.
  PagedLayout(const MiniWarehouse* warehouse, LayoutOrder order,
              const Fragmentation* fragmentation = nullptr);

  std::int64_t page_count() const { return page_count_; }
  std::int64_t tuples_per_page() const { return tuples_per_page_; }

  /// Page of the row at physical position `position`.
  std::int64_t PageOfPosition(std::int64_t position) const {
    return position / tuples_per_page_;
  }

  /// Physical position of logical row `row`.
  std::int64_t PositionOfRow(std::int64_t row) const;

  /// Statistics of executing `query` against this layout.
  struct ScanStats {
    std::int64_t hit_rows = 0;
    std::int64_t pages_with_hits = 0;  ///< distinct pages containing hits
    std::int64_t pages_total = 0;
    double hits_per_hit_page = 0;      ///< clustering quality
  };
  ScanStats Analyze(const StarQuery& query) const;

 private:
  const MiniWarehouse* warehouse_;
  std::int64_t tuples_per_page_;
  std::int64_t page_count_;
  /// position_of_row_[row] = physical position.
  std::vector<std::int64_t> position_of_row_;
};

}  // namespace mdw

#endif  // MDW_CORE_PAGED_LAYOUT_H_
