#include "core/advisor.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "fragment/bitmap_elimination.h"
#include "fragment/query_planner.h"

namespace mdw {

AllocationAdvisor::AllocationAdvisor(const StarSchema* schema,
                                     AdvisorOptions options)
    : schema_(schema), options_(options) {
  MDW_CHECK(schema_ != nullptr, "advisor needs a schema");
}

std::vector<FragmentationCandidate> AllocationAdvisor::Evaluate(
    const std::vector<WeightedQuery>& mix) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<FragmentationCandidate> candidates;
  for (auto& fragmentation : EnumerateFragmentations(*schema_)) {
    FragmentationCandidate candidate{std::move(fragmentation), 0, 0.0, 0,
                                     {}, 0.0, 0.0, 0};
    candidate.fragments = candidate.fragmentation.FragmentCount();
    candidate.bitmap_fragment_pages =
        candidate.fragmentation.BitmapFragmentPages();
    candidate.remaining_bitmaps =
        RemainingBitmapCount(candidate.fragmentation);
    candidate.bitmap_storage_bytes =
        EstimateStorage(candidate.fragmentation).bitmap_raw_bytes;
    candidate.violations =
        CheckThresholds(candidate.fragmentation, options_.thresholds,
                        candidate.remaining_bitmaps);
    if (options_.max_bitmap_storage_bytes > 0 &&
        candidate.bitmap_storage_bytes > options_.max_bitmap_storage_bytes) {
      candidate.violations.push_back(
          {ThresholdViolation::Kind::kTooManyBitmaps,
           "bitmap storage " +
               std::to_string(candidate.bitmap_storage_bytes) +
               " B exceeds the budget of " +
               std::to_string(options_.max_bitmap_storage_bytes) + " B"});
    }
    if (candidate.violations.empty()) {
      candidate.total_io_mib = TotalMixIoMib(
          *schema_, candidate.fragmentation, mix, options_.cost_params);
      if (options_.ranking == AdvisorRanking::kResponseTime) {
        const ResponseModel model(schema_, options_.hardware);
        const QueryPlanner planner(schema_, &candidate.fragmentation);
        double total = 0;
        for (const auto& wq : mix) {
          total +=
              wq.weight * model.Estimate(planner.Plan(wq.query)).response_ms;
        }
        candidate.total_response_ms = total;
      }
    } else {
      candidate.total_io_mib = kInf;
      candidate.total_response_ms = kInf;
    }
    candidates.push_back(std::move(candidate));
  }
  const bool by_response = options_.ranking == AdvisorRanking::kResponseTime;
  std::stable_sort(candidates.begin(), candidates.end(),
                   [by_response](const FragmentationCandidate& a,
                                 const FragmentationCandidate& b) {
                     return by_response
                                ? a.total_response_ms < b.total_response_ms
                                : a.total_io_mib < b.total_io_mib;
                   });
  return candidates;
}

std::vector<FragmentationCandidate> AllocationAdvisor::Recommend(
    const std::vector<WeightedQuery>& mix) const {
  auto all = Evaluate(mix);
  std::vector<FragmentationCandidate> admissible;
  for (auto& c : all) {
    if (c.violations.empty()) admissible.push_back(std::move(c));
  }
  return admissible;
}

}  // namespace mdw
