#include "core/execution_backend.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"

namespace mdw {

namespace {

/// The plan facts shared by every backend's outcome.
QueryOutcome OutcomeFromPlan(BackendKind backend, const QueryPlan& plan) {
  QueryOutcome outcome;
  outcome.backend = backend;
  outcome.query_class = plan.query_class();
  outcome.io_class = plan.io_class();
  outcome.fragments_processed = plan.FragmentCount();
  outcome.bitmaps_per_fragment = plan.BitmapsPerFragment();
  outcome.selectivity = plan.selectivity();
  return outcome;
}

}  // namespace

const char* ToString(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMaterialized: return "materialized";
    case BackendKind::kSimulated: return "simulated";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MaterializedBackend

MaterializedBackend::MaterializedBackend(
    std::shared_ptr<const MiniWarehouse> warehouse,
    std::shared_ptr<const Fragmentation> fragmentation, int num_workers)
    : warehouse_(std::move(warehouse)),
      fragmentation_(std::move(fragmentation)),
      num_workers_(ThreadPool::ResolveWorkers(num_workers)) {
  MDW_CHECK(warehouse_ != nullptr && fragmentation_ != nullptr,
            "materialized backend needs a warehouse and a fragmentation");
  MDW_CHECK(&fragmentation_->schema() == &warehouse_->schema(),
            "fragmentation must belong to the warehouse schema");
}

const ThreadPool* MaterializedBackend::pool() const {
  if (num_workers_ <= 1) return nullptr;
  std::call_once(pool_once_, [this] {
    // ParallelFor also runs on the calling thread, so num_workers lanes
    // need num_workers - 1 pool threads.
    pool_ = std::make_shared<const ThreadPool>(num_workers_ - 1);
  });
  return pool_.get();
}

QueryOutcome MaterializedBackend::ExecuteWith(
    const StarQuery& query, const QueryPlan& plan, const ThreadPool* pool,
    MiniWarehouse::ExecScratch* scratch,
    const MiniWarehouse::ExecOptions& options) const {
  QueryOutcome outcome = OutcomeFromPlan(BackendKind::kMaterialized, plan);
  auto mdhf = warehouse_->ExecuteWithPlan(query, plan, pool, scratch, options);
  // Prefer the execution's own record over the façade's plan where both
  // exist, so reported facts can never drift from what actually ran.
  outcome.query_class = mdhf.query_class;
  outcome.io_class = mdhf.io_class;
  outcome.fragments_processed = mdhf.fragments_processed;
  outcome.bitmaps_per_fragment = mdhf.bitmaps_read;
  outcome.rows_scanned = mdhf.rows_scanned;
  outcome.fragments_summarized = mdhf.fragments_summarized;
  outcome.rows_summarized = mdhf.rows_summarized;
  outcome.pages_read = mdhf.pages_read;
  outcome.buffer_hits = mdhf.buffer_hits;
  outcome.bytes_read = mdhf.bytes_read;
  outcome.status = mdhf.status;
  outcome.io_errors = mdhf.io_errors;
  outcome.io_retries = mdhf.io_retries;
  outcome.checksum_failures = mdhf.checksum_failures;
  outcome.shard_skew = mdhf.ShardSkew();
  outcome.shards = std::move(mdhf.shards);
  outcome.degraded = mdhf.degraded;
  // A failed execution ran its kernels over zero-filled stand-ins, so
  // the sums are meaningless: surface the typed error with NO aggregate
  // (and no table) rather than a plausible-looking wrong answer.
  if (mdhf.status.ok()) {
    outcome.aggregate = mdhf.result;
    std::vector<GroupRow> rows;
    if (query.grouped()) {
      rows = std::move(mdhf.groups);
    } else {
      // Degenerate zero-group case: one row totalling every matching
      // fact row (present even when nothing matched, as SQL does for an
      // ungrouped aggregate).
      rows.push_back({0, mdhf.result.rows, mdhf.result.units_sold,
                      mdhf.result.dollar_sales_cents, mdhf.rows_summarized});
    }
    outcome.table = MakeResultTable(query.aggregates(), query.group_by(),
                                    query.order_by(), std::move(rows));
  }
  return outcome;
}

QueryOutcome MaterializedBackend::Execute(const StarQuery& query,
                                          const QueryPlan& plan) const {
  return ExecuteWith(query, plan, pool(), /*scratch=*/nullptr);
}

BatchOutcome MaterializedBackend::ExecuteBatch(
    std::span<const StarQuery> queries, std::span<const QueryPlan> plans,
    int streams) const {
  MDW_CHECK(queries.size() == plans.size(), "one plan per query");
  (void)streams;  // no timing model to spread streams over
  BatchOutcome batch;
  batch.backend = BackendKind::kMaterialized;
  if (const ThreadPool* batch_pool = pool();
      batch_pool != nullptr && queries.size() > 1) {
    // Inter-query parallelism: one task per query, each executed serially
    // inside its task (the pool is never nested). Outcomes land in input
    // order; the total is summed in input order — deterministic. Each
    // task owns a scratch for the query it claims (scratches are not
    // thread-safe, so the serial per-batch reuse doesn't apply here).
    std::vector<QueryOutcome> outcomes(queries.size());
    batch_pool->ParallelFor(static_cast<std::int64_t>(queries.size()),
                            [&](std::int64_t i) {
                              const auto u = static_cast<std::size_t>(i);
                              MiniWarehouse::ExecScratch scratch;
                              outcomes[u] = ExecuteWith(queries[u], plans[u],
                                                        nullptr, &scratch);
                            });
    batch.queries = std::move(outcomes);
  } else {
    // One scratch for the whole batch: the per-query bitmap-access buffer
    // is resolved in place instead of reallocated every iteration.
    MiniWarehouse::ExecScratch scratch;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      batch.queries.push_back(
          ExecuteWith(queries[i], plans[i], pool(), &scratch));
    }
  }
  MiniWarehouse::AggregateResult total;
  for (const auto& outcome : batch.queries) {
    if (!outcome.aggregate.has_value()) continue;  // failed query: no sum
    const auto& agg = *outcome.aggregate;
    total.rows += agg.rows;
    total.units_sold += agg.units_sold;
    total.dollar_sales_cents += agg.dollar_sales_cents;
  }
  batch.total_aggregate = total;
  return batch;
}

BatchOutcome MaterializedBackend::Serve(std::span<const Arrival> arrivals,
                                        std::span<const QueryPlan> plans,
                                        ServingConfig config,
                                        ServeSchedule* schedule_out) const {
  MDW_CHECK(arrivals.size() == plans.size(), "one plan per arrival");
  if (config.num_workers <= 0) config.num_workers = num_workers_;

  // ---- deterministic virtual-time schedule ----
  std::vector<std::int64_t> demands;
  demands.reserve(plans.size());
  for (const auto& plan : plans) demands.push_back(VirtualDemand(plan));
  // Covered (degraded-mode) demands unlock OverloadPolicy::kDegrade,
  // but only when this warehouse can actually answer covered-only
  // queries (summaries over the matching clustered layout); otherwise
  // expiring queries shed instead of degrading.
  std::vector<std::int64_t> covered_demands;
  if (warehouse_->summaries_enabled() &&
      warehouse_->ClusteredFor(*fragmentation_)) {
    covered_demands.reserve(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      // A plan grouped below the fragmentation level cannot run
      // covered-only (prefix sums can't split a fragment across groups):
      // advertising its full demand as the covered demand makes the
      // scheduler shed it on overload instead of degrading it.
      const bool degradable =
          !plans[i].grouped() || plans[i].AlignedGrouping();
      covered_demands.push_back(degradable ? CoveredDemand(plans[i])
                                           : demands[i]);
    }
  }
  const QueryScheduler scheduler(config);
  ServeSchedule schedule = scheduler.Run(arrivals, demands, covered_demands);

  // ---- real execution, replaying the dispatch order on the pool ----
  // Outcome slot k belongs to the k-th SERVED query in admission order;
  // the pool claims work in dispatch order (ParallelFor hands out
  // ascending indices), so the executor starts queries exactly as the
  // virtual-time policy decided while outcomes land deterministically.
  std::vector<std::pair<std::int64_t, std::size_t>> dispatch_order;
  std::vector<std::size_t> served_slots;
  for (std::size_t slot = 0; slot < schedule.admitted.size(); ++slot) {
    if (!schedule.admitted[slot].served) continue;
    dispatch_order.emplace_back(schedule.admitted[slot].dispatch_seq, slot);
    served_slots.push_back(slot);
  }
  std::sort(dispatch_order.begin(), dispatch_order.end());
  std::vector<std::size_t> outcome_slot_of(schedule.admitted.size(), 0);
  for (std::size_t k = 0; k < served_slots.size(); ++k) {
    outcome_slot_of[served_slots[k]] = k;
  }

  BatchOutcome batch;
  batch.backend = BackendKind::kMaterialized;
  std::vector<QueryOutcome> outcomes(served_slots.size());
  const auto is_cancel_code = [](StatusCode code) {
    return code == StatusCode::kCancelled ||
           code == StatusCode::kDeadlineExceeded;
  };
  const auto run_one = [&](std::size_t slot,
                           MiniWarehouse::ExecScratch* scratch) {
    const ScheduledQuery& sq = schedule.admitted[slot];
    const auto ai = static_cast<std::size_t>(sq.arrival_index);
    // Degraded dispatches replay in covered-only mode; a per-query
    // wall-clock budget (when configured) links under the serve-wide
    // cancel token, so either tripping abandons this query — typed
    // status, no aggregate — without touching its neighbours.
    MiniWarehouse::ExecOptions options;
    options.covered_only = sq.degraded;
    options.cancel =
        config.exec_deadline_us > 0
            ? CancellationToken::WithTimeoutMicros(config.exec_deadline_us,
                                                   {}, config.cancel)
            : config.cancel;
    QueryOutcome out;
    if (options.cancel.ShouldStop()) {
      // Tripped before this query even started: skip execution.
      out = OutcomeFromPlan(BackendKind::kMaterialized, plans[ai]);
      out.status = options.cancel.CancelStatus();
    } else {
      out = ExecuteWith(arrivals[ai].query, plans[ai], nullptr, scratch,
                        options);
    }
    // Requeue-on-error: re-execute in this query's own dispatch slot
    // (the virtual-time schedule never moves) until the error clears or
    // the budget runs out. Cancelled/expired queries are never retried,
    // and a query whose deadline expires between attempts skips its
    // re-execution — its storage error is replaced by the typed
    // deadline status (counted deadline_missed, not failed). Failure
    // counters accumulate across attempts so the outcome accounts for
    // the whole fight, not just the last round.
    while (!out.status.ok() && !is_cancel_code(out.status.code()) &&
           out.requeues < config.max_requeues) {
      if (options.cancel.ShouldStop()) {
        out.status = options.cancel.CancelStatus();
        out.aggregate.reset();
        break;
      }
      QueryOutcome retry = ExecuteWith(arrivals[ai].query, plans[ai], nullptr,
                                       scratch, options);
      retry.io_errors += out.io_errors;
      retry.io_retries += out.io_retries;
      retry.checksum_failures += out.checksum_failures;
      retry.pages_read += out.pages_read;
      retry.buffer_hits += out.buffer_hits;
      retry.bytes_read += out.bytes_read;
      retry.requeues = out.requeues + 1;
      out = std::move(retry);
    }
    outcomes[outcome_slot_of[slot]] = std::move(out);
  };
  if (const ThreadPool* serve_pool = pool();
      serve_pool != nullptr && dispatch_order.size() > 1) {
    serve_pool->ParallelFor(
        static_cast<std::int64_t>(dispatch_order.size()),
        [&](std::int64_t i) {
          MiniWarehouse::ExecScratch scratch;
          run_one(dispatch_order[static_cast<std::size_t>(i)].second,
                  &scratch);
        });
  } else {
    MiniWarehouse::ExecScratch scratch;
    for (const auto& [seq, slot] : dispatch_order) run_one(slot, &scratch);
  }
  batch.queries = std::move(outcomes);

  MiniWarehouse::AggregateResult total;
  for (const auto& outcome : batch.queries) {
    if (!outcome.aggregate.has_value()) continue;  // failed query: no sum
    const auto& agg = *outcome.aggregate;
    total.rows += agg.rows;
    total.units_sold += agg.units_sold;
    total.dollar_sales_cents += agg.dollar_sales_cents;
  }
  batch.total_aggregate = total;
  ServeMetrics metrics = ComputeServeMetrics(schedule, arrivals, config);
  // Failure accounting by stream: outcome slot k is the k-th served query
  // in admission order, so its schedule record (and stream) is
  // served_slots[k].
  for (std::size_t k = 0; k < served_slots.size(); ++k) {
    const ScheduledQuery& sq = schedule.admitted[served_slots[k]];
    const QueryOutcome& out = batch.queries[k];
    auto& stream = metrics.streams[static_cast<std::size_t>(sq.stream)];
    if (!out.status.ok()) {
      // Typed cancellation is not a failure: kCancelled counts as
      // cancelled, kDeadlineExceeded as a deadline miss; only genuine
      // storage errors surviving the requeue budget count as failed.
      switch (out.status.code()) {
        case StatusCode::kCancelled:
          ++stream.cancelled;
          ++metrics.total.cancelled;
          break;
        case StatusCode::kDeadlineExceeded:
          ++stream.deadline_missed;
          ++metrics.total.deadline_missed;
          break;
        default:
          ++stream.failed;
          ++metrics.total.failed;
      }
    }
    stream.requeued += out.requeues;
    metrics.total.requeued += out.requeues;
  }
  batch.serving = std::move(metrics);
  if (schedule_out != nullptr) *schedule_out = std::move(schedule);
  return batch;
}

// ---------------------------------------------------------------------------
// SimulatedBackend

SimulatedBackend::SimulatedBackend(
    std::shared_ptr<const StarSchema> schema,
    std::shared_ptr<const Fragmentation> fragmentation, SimConfig config)
    : simulator_(std::move(schema), std::move(fragmentation),
                 std::move(config)) {}

QueryOutcome SimulatedBackend::Execute(const StarQuery& query,
                                       const QueryPlan& plan) const {
  QueryOutcome outcome = OutcomeFromPlan(BackendKind::kSimulated, plan);
  outcome.sim = simulator_.RunSingleUser(std::span(&query, 1),
                                         std::span(&plan, 1));
  outcome.response_ms = outcome.sim->avg_response_ms;
  return outcome;
}

BatchOutcome SimulatedBackend::ExecuteBatch(std::span<const StarQuery> queries,
                                            std::span<const QueryPlan> plans,
                                            int streams) const {
  MDW_CHECK(queries.size() == plans.size(), "one plan per query");
  BatchOutcome batch;
  batch.backend = BackendKind::kSimulated;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    batch.queries.push_back(OutcomeFromPlan(BackendKind::kSimulated, plans[i]));
  }
  batch.sim = simulator_.RunMultiUser(queries, plans, streams);
  batch.makespan_ms = batch.sim->makespan_ms;
  // The simulator attributes responses by submitted query id, so the
  // per-query times are valid at ANY stream count — multi-stream SIMPAD
  // latencies compare apples-to-apples against real per-query runs.
  for (std::size_t i = 0; i < batch.queries.size(); ++i) {
    batch.queries[i].response_ms = batch.sim->response_by_query_ms[i];
  }
  return batch;
}

}  // namespace mdw
