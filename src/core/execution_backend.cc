#include "core/execution_backend.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"

namespace mdw {

namespace {

/// The plan facts shared by every backend's outcome.
QueryOutcome OutcomeFromPlan(BackendKind backend, const QueryPlan& plan) {
  QueryOutcome outcome;
  outcome.backend = backend;
  outcome.query_class = plan.query_class();
  outcome.io_class = plan.io_class();
  outcome.fragments_processed = plan.FragmentCount();
  outcome.bitmaps_per_fragment = plan.BitmapsPerFragment();
  outcome.selectivity = plan.selectivity();
  return outcome;
}

}  // namespace

const char* ToString(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMaterialized: return "materialized";
    case BackendKind::kSimulated: return "simulated";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// MaterializedBackend

MaterializedBackend::MaterializedBackend(
    std::shared_ptr<const MiniWarehouse> warehouse,
    std::shared_ptr<const Fragmentation> fragmentation, int num_workers)
    : warehouse_(std::move(warehouse)),
      fragmentation_(std::move(fragmentation)),
      num_workers_(ThreadPool::ResolveWorkers(num_workers)) {
  MDW_CHECK(warehouse_ != nullptr && fragmentation_ != nullptr,
            "materialized backend needs a warehouse and a fragmentation");
  MDW_CHECK(&fragmentation_->schema() == &warehouse_->schema(),
            "fragmentation must belong to the warehouse schema");
}

const ThreadPool* MaterializedBackend::pool() const {
  if (num_workers_ <= 1) return nullptr;
  std::call_once(pool_once_, [this] {
    // ParallelFor also runs on the calling thread, so num_workers lanes
    // need num_workers - 1 pool threads.
    pool_ = std::make_shared<const ThreadPool>(num_workers_ - 1);
  });
  return pool_.get();
}

QueryOutcome MaterializedBackend::ExecuteWith(
    const StarQuery& query, const QueryPlan& plan, const ThreadPool* pool,
    MiniWarehouse::ExecScratch* scratch) const {
  QueryOutcome outcome = OutcomeFromPlan(BackendKind::kMaterialized, plan);
  auto mdhf = warehouse_->ExecuteWithPlan(query, plan, pool, scratch);
  // Prefer the execution's own record over the façade's plan where both
  // exist, so reported facts can never drift from what actually ran.
  outcome.query_class = mdhf.query_class;
  outcome.io_class = mdhf.io_class;
  outcome.fragments_processed = mdhf.fragments_processed;
  outcome.bitmaps_per_fragment = mdhf.bitmaps_read;
  outcome.aggregate = mdhf.result;
  outcome.rows_scanned = mdhf.rows_scanned;
  outcome.fragments_summarized = mdhf.fragments_summarized;
  outcome.rows_summarized = mdhf.rows_summarized;
  outcome.pages_read = mdhf.pages_read;
  outcome.buffer_hits = mdhf.buffer_hits;
  outcome.bytes_read = mdhf.bytes_read;
  outcome.shard_skew = mdhf.ShardSkew();
  outcome.shards = std::move(mdhf.shards);
  return outcome;
}

QueryOutcome MaterializedBackend::Execute(const StarQuery& query,
                                          const QueryPlan& plan) const {
  return ExecuteWith(query, plan, pool(), /*scratch=*/nullptr);
}

BatchOutcome MaterializedBackend::ExecuteBatch(
    std::span<const StarQuery> queries, std::span<const QueryPlan> plans,
    int streams) const {
  MDW_CHECK(queries.size() == plans.size(), "one plan per query");
  (void)streams;  // no timing model to spread streams over
  BatchOutcome batch;
  batch.backend = BackendKind::kMaterialized;
  if (const ThreadPool* batch_pool = pool();
      batch_pool != nullptr && queries.size() > 1) {
    // Inter-query parallelism: one task per query, each executed serially
    // inside its task (the pool is never nested). Outcomes land in input
    // order; the total is summed in input order — deterministic. Each
    // task owns a scratch for the query it claims (scratches are not
    // thread-safe, so the serial per-batch reuse doesn't apply here).
    std::vector<QueryOutcome> outcomes(queries.size());
    batch_pool->ParallelFor(static_cast<std::int64_t>(queries.size()),
                            [&](std::int64_t i) {
                              const auto u = static_cast<std::size_t>(i);
                              MiniWarehouse::ExecScratch scratch;
                              outcomes[u] = ExecuteWith(queries[u], plans[u],
                                                        nullptr, &scratch);
                            });
    batch.queries = std::move(outcomes);
  } else {
    // One scratch for the whole batch: the per-query bitmap-access buffer
    // is resolved in place instead of reallocated every iteration.
    MiniWarehouse::ExecScratch scratch;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      batch.queries.push_back(
          ExecuteWith(queries[i], plans[i], pool(), &scratch));
    }
  }
  MiniWarehouse::AggregateResult total;
  for (const auto& outcome : batch.queries) {
    const auto& agg = *outcome.aggregate;
    total.rows += agg.rows;
    total.units_sold += agg.units_sold;
    total.dollar_sales_cents += agg.dollar_sales_cents;
  }
  batch.total_aggregate = total;
  return batch;
}

// ---------------------------------------------------------------------------
// SimulatedBackend

SimulatedBackend::SimulatedBackend(
    std::shared_ptr<const StarSchema> schema,
    std::shared_ptr<const Fragmentation> fragmentation, SimConfig config)
    : simulator_(std::move(schema), std::move(fragmentation),
                 std::move(config)) {}

QueryOutcome SimulatedBackend::Execute(const StarQuery& query,
                                       const QueryPlan& plan) const {
  QueryOutcome outcome = OutcomeFromPlan(BackendKind::kSimulated, plan);
  outcome.sim = simulator_.RunSingleUser(std::span(&query, 1),
                                         std::span(&plan, 1));
  outcome.response_ms = outcome.sim->avg_response_ms;
  return outcome;
}

BatchOutcome SimulatedBackend::ExecuteBatch(std::span<const StarQuery> queries,
                                            std::span<const QueryPlan> plans,
                                            int streams) const {
  MDW_CHECK(queries.size() == plans.size(), "one plan per query");
  BatchOutcome batch;
  batch.backend = BackendKind::kSimulated;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    batch.queries.push_back(OutcomeFromPlan(BackendKind::kSimulated, plans[i]));
  }
  batch.sim = simulator_.RunMultiUser(queries, plans, streams);
  batch.makespan_ms = batch.sim->makespan_ms;
  if (streams == 1) {
    // Single stream: completion order equals submission order, so the
    // per-query response times can be attributed.
    for (std::size_t i = 0; i < batch.queries.size(); ++i) {
      batch.queries[i].response_ms = batch.sim->response_ms[i];
    }
  }
  return batch;
}

}  // namespace mdw
