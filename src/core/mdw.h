#ifndef MDW_CORE_MDW_H_
#define MDW_CORE_MDW_H_

/// Umbrella header for the MDHF library — multi-dimensional hierarchical
/// fragmentation and allocation for parallel data warehouses, after
/// Stöhr/Märtens/Rahm, VLDB 2000.
///
/// Typical usage:
///   #include "core/mdw.h"
///   auto schema = mdw::MakeApb1Schema();
///   mdw::Fragmentation f(&schema, {{mdw::kApb1Time, 2},
///                                  {mdw::kApb1Product, 3}});
///   mdw::QueryPlanner planner(&schema, &f);
///   auto plan = planner.Plan(mdw::apb1_queries::OneMonthOneGroup(3, 41));

#include "alloc/declustering_analysis.h"
#include "alloc/disk_allocation.h"
#include "bitmap/compressed_bitvector.h"
#include "bitmap/index_set.h"
#include "core/advisor.h"
#include "core/mini_warehouse.h"
#include "core/paged_layout.h"
#include "cost/cost_report.h"
#include "cost/io_cost_model.h"
#include "cost/response_model.h"
#include "cost/storage_model.h"
#include "fragment/bitmap_elimination.h"
#include "fragment/enumeration.h"
#include "fragment/fragmentation.h"
#include "fragment/query_planner.h"
#include "fragment/range_fragmentation.h"
#include "fragment/star_query.h"
#include "fragment/thresholds.h"
#include "index/btree.h"
#include "schema/apb1.h"
#include "schema/dimension_table.h"
#include "schema/star_schema.h"
#include "sim/simulator.h"
#include "workload/query_generator.h"
#include "workload/query_parser.h"
#include "workload/workload_driver.h"

#endif  // MDW_CORE_MDW_H_
