#ifndef MDW_CORE_MDW_H_
#define MDW_CORE_MDW_H_

/// Umbrella header for the MDHF library — multi-dimensional hierarchical
/// fragmentation and allocation for parallel data warehouses, after
/// Stöhr/Märtens/Rahm, VLDB 2000.
///
/// Typical usage goes through the mdw::Warehouse façade, which owns the
/// schema, fragmentation, plan cache, and execution backend behind one
/// value-semantic entry point. Execution is plan-first: each query is
/// planned once (or served from the cache) and the backend never
/// re-plans — see docs/ARCHITECTURE.md for the full flow.
///   #include "core/mdw.h"
///   mdw::Warehouse wh({.schema = mdw::MakeApb1Schema(),
///                      .fragmentation = {{mdw::kApb1Time, 2},
///                                        {mdw::kApb1Product, 3}},
///                      .backend = mdw::BackendKind::kSimulated});
///   auto query = mdw::apb1_queries::OneMonthOneGroup(3, 41);
///   auto plan = wh.Plan(query);     // derives + caches the plan
///   auto outcome = wh.Execute(query);  // cache hit: no re-planning
///   // outcome.query_class / .response_ms / .sim->disk_ios ...
///   auto stats = wh.plan_cache_stats();  // hits=1 misses=1
/// Swap `.backend` for BackendKind::kMaterialized (with a small schema,
/// e.g. MakeTinyApb1Schema()) to execute against materialised facts and
/// read functional aggregates from outcome.aggregate. Set
/// WarehouseConfig::plan_cache_capacity = 0 to plan afresh every call.
///
/// The individual layers (Fragmentation, QueryPlanner, Simulator,
/// MiniWarehouse, ...) stay public for fine-grained control and for the
/// paper-reproduction benches.

#include "alloc/declustering_analysis.h"
#include "alloc/disk_allocation.h"
#include "bitmap/compressed_bitvector.h"
#include "bitmap/index_set.h"
#include "core/advisor.h"
#include "core/execution_backend.h"
#include "core/mini_warehouse.h"
#include "core/paged_layout.h"
#include "core/result_table.h"
#include "core/warehouse.h"
#include "cost/cost_report.h"
#include "cost/io_cost_model.h"
#include "cost/response_model.h"
#include "cost/storage_model.h"
#include "fragment/bitmap_elimination.h"
#include "fragment/enumeration.h"
#include "fragment/fragmentation.h"
#include "fragment/plan_cache.h"
#include "fragment/query_planner.h"
#include "fragment/range_fragmentation.h"
#include "fragment/star_query.h"
#include "fragment/thresholds.h"
#include "index/btree.h"
#include "sched/query_scheduler.h"
#include "schema/apb1.h"
#include "schema/dimension_table.h"
#include "schema/star_schema.h"
#include "sim/simulator.h"
#include "workload/arrival_generator.h"
#include "workload/query_generator.h"
#include "workload/query_parser.h"
#include "workload/workload_driver.h"

#endif  // MDW_CORE_MDW_H_
