#ifndef MDW_CORE_ADVISOR_H_
#define MDW_CORE_ADVISOR_H_

#include <vector>

#include "cost/cost_report.h"
#include "cost/response_model.h"
#include "cost/storage_model.h"
#include "fragment/enumeration.h"
#include "fragment/thresholds.h"

namespace mdw {

/// Ranking criterion for admissible fragmentation candidates.
enum class AdvisorRanking {
  /// Weighted total I/O volume of the mix (guideline 3 of Sec. 4.7).
  kIoVolume,
  /// Weighted analytic response time on a given hardware configuration
  /// (extension: accounts for parallelism, not just volume).
  kResponseTime,
};

/// Options of the allocation advisor.
struct AdvisorOptions {
  ThresholdPolicy thresholds;
  IoCostParams cost_params;
  AdvisorRanking ranking = AdvisorRanking::kIoVolume;
  /// Hardware for kResponseTime ranking.
  SimConfig hardware;
  /// Optional cap on *raw* bitmap storage after elimination (0 = off);
  /// the "(iii) ... depend[s] on the ... disk storage space" threshold of
  /// Sec. 4.7 expressed in bytes instead of bitmap count.
  std::int64_t max_bitmap_storage_bytes = 0;
};

/// One evaluated fragmentation candidate.
struct FragmentationCandidate {
  Fragmentation fragmentation;
  std::int64_t fragments = 0;
  double bitmap_fragment_pages = 0;
  int remaining_bitmaps = 0;
  /// Threshold violations; empty = admissible.
  std::vector<ThresholdViolation> violations;
  /// Weighted total I/O of the query mix (only computed for admissible
  /// candidates; infinity otherwise).
  double total_io_mib = 0;
  /// Weighted analytic response time of the mix (only when ranking by
  /// response time; infinity for rejected candidates).
  double total_response_ms = 0;
  /// Raw bitmap storage after elimination.
  std::int64_t bitmap_storage_bytes = 0;
};

/// The "tool" of paper Sec. 4.7: enumerates all MDHF fragmentations of a
/// star schema, prunes them with the thresholds (minimal bitmap fragment
/// size, maximum fragments, maximum bitmaps, at least one fragment per
/// disk), evaluates the analytical I/O cost of a weighted query mix on the
/// survivors, and ranks them by total I/O work.
class AllocationAdvisor {
 public:
  AllocationAdvisor(const StarSchema* schema, AdvisorOptions options);

  /// Evaluates every enumerated fragmentation against `mix`. Candidates
  /// are sorted admissible-first by ascending total I/O.
  std::vector<FragmentationCandidate> Evaluate(
      const std::vector<WeightedQuery>& mix) const;

  /// The admissible candidates only, best first.
  std::vector<FragmentationCandidate> Recommend(
      const std::vector<WeightedQuery>& mix) const;

 private:
  const StarSchema* schema_;
  AdvisorOptions options_;
};

}  // namespace mdw

#endif  // MDW_CORE_ADVISOR_H_
