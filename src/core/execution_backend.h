#ifndef MDW_CORE_EXECUTION_BACKEND_H_
#define MDW_CORE_EXECUTION_BACKEND_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/mini_warehouse.h"
#include "fragment/query_planner.h"
#include "sim/metrics.h"
#include "sim/sim_config.h"
#include "sim/simulator.h"

namespace mdw {

/// How a Warehouse executes queries.
enum class BackendKind {
  /// Fully materialised in-memory facts (core/mini_warehouse): functional
  /// aggregates, exact rows touched; only feasible at small scale.
  kMaterialized,
  /// SIMPAD discrete-event simulation (sim/simulator): timing and device
  /// metrics at arbitrary scale; the fact data is never materialised.
  kSimulated,
};

const char* ToString(BackendKind kind);

/// Unified result of executing one star query through any backend: the
/// plan facts are always present; the functional aggregate is filled by
/// materialised execution, the timing/IO metrics by simulated execution.
struct QueryOutcome {
  BackendKind backend = BackendKind::kSimulated;

  // ---- plan facts (always present) ----
  QueryClass query_class = QueryClass::kUnsupported;
  IoClass io_class = IoClass::kIoc2NoSupp;
  std::int64_t fragments_processed = 0;
  int bitmaps_per_fragment = 0;
  double selectivity = 0;

  // ---- functional result (kMaterialized) ----
  std::optional<MiniWarehouse::AggregateResult> aggregate;
  std::int64_t rows_scanned = 0;  ///< rows in the processed fragments

  // ---- timing and device metrics (kSimulated) ----
  std::optional<SimResult> sim;
  double response_ms = 0;  ///< convenience mirror of sim->avg_response_ms
};

/// Result of executing a batch of queries: per-query outcomes in input
/// order plus run-level statistics. For simulated batches `sim` holds the
/// whole-run metrics (multi-user streams included); per-query response
/// times are only attributed when the batch ran as a single stream
/// (completion order equals submission order there).
struct BatchOutcome {
  BackendKind backend = BackendKind::kSimulated;
  std::vector<QueryOutcome> queries;

  std::optional<MiniWarehouse::AggregateResult> total_aggregate;
  std::optional<SimResult> sim;
  double makespan_ms = 0;

  double ThroughputPerSecond() const {
    return sim.has_value() ? sim->ThroughputPerSecond() : 0;
  }
};

/// Strategy interface mdw::Warehouse executes through; one implementation
/// per BackendKind. Implementations are immutable after construction and
/// safe to share between Warehouse copies.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual BackendKind kind() const = 0;

  /// Executes one query whose plan the façade already derived.
  virtual QueryOutcome Execute(const StarQuery& query,
                               const QueryPlan& plan) const = 0;

  /// Executes `queries` (with matching `plans`) as one run; `streams` is
  /// the number of concurrent query streams where the backend models
  /// concurrency, and ignored otherwise.
  virtual BatchOutcome ExecuteBatch(std::span<const StarQuery> queries,
                                    std::span<const QueryPlan> plans,
                                    int streams) const = 0;
};

/// Functional execution against a materialised MiniWarehouse. Streams are
/// ignored: materialised execution has no timing model, so a batch is just
/// the per-query aggregates plus their sum.
class MaterializedBackend : public ExecutionBackend {
 public:
  MaterializedBackend(std::shared_ptr<const MiniWarehouse> warehouse,
                      std::shared_ptr<const Fragmentation> fragmentation);

  BackendKind kind() const override { return BackendKind::kMaterialized; }
  QueryOutcome Execute(const StarQuery& query,
                       const QueryPlan& plan) const override;
  BatchOutcome ExecuteBatch(std::span<const StarQuery> queries,
                            std::span<const QueryPlan> plans,
                            int streams) const override;

  const MiniWarehouse& warehouse() const { return *warehouse_; }

 private:
  std::shared_ptr<const MiniWarehouse> warehouse_;
  std::shared_ptr<const Fragmentation> fragmentation_;
};

/// Timing/IO execution on the SIMPAD Shared Disk/Shared Nothing simulator.
/// Batches honour `streams` via the simulator's multi-user mode.
class SimulatedBackend : public ExecutionBackend {
 public:
  SimulatedBackend(std::shared_ptr<const StarSchema> schema,
                   std::shared_ptr<const Fragmentation> fragmentation,
                   SimConfig config);

  BackendKind kind() const override { return BackendKind::kSimulated; }
  QueryOutcome Execute(const StarQuery& query,
                       const QueryPlan& plan) const override;
  BatchOutcome ExecuteBatch(std::span<const StarQuery> queries,
                            std::span<const QueryPlan> plans,
                            int streams) const override;

  const SimConfig& config() const { return simulator_.config(); }

 private:
  Simulator simulator_;
};

}  // namespace mdw

#endif  // MDW_CORE_EXECUTION_BACKEND_H_
