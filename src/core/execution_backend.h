#ifndef MDW_CORE_EXECUTION_BACKEND_H_
#define MDW_CORE_EXECUTION_BACKEND_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/mini_warehouse.h"
#include "fragment/query_planner.h"
#include "sched/query_scheduler.h"
#include "sim/metrics.h"
#include "sim/sim_config.h"
#include "sim/simulator.h"

namespace mdw {

/// How a Warehouse executes queries.
enum class BackendKind {
  /// Fully materialised in-memory facts (core/mini_warehouse): functional
  /// aggregates, exact rows touched; only feasible at small scale.
  kMaterialized,
  /// SIMPAD discrete-event simulation (sim/simulator): timing and device
  /// metrics at arbitrary scale; the fact data is never materialised.
  kSimulated,
};

const char* ToString(BackendKind kind);

/// Unified result of executing one star query through any backend.
///
/// Population rules:
/// - The plan facts are ALWAYS present, on every backend — they come
///   from the QueryPlan the façade derived (plan-first pipeline; see
///   docs/ARCHITECTURE.md). On kMaterialized they are overwritten with
///   the execution's own record, so they can never drift from what ran.
/// - `table` is the primary functional result, engaged IFF
///   backend == kMaterialized AND `status` is ok. It carries the
///   query's AggregateSpec/GroupBy/OrderBy and one GroupRow per
///   non-empty group in ORDER BY order (key-ascending without one,
///   truncated to LIMIT). An ungrouped query yields the degenerate
///   zero-group table: exactly one row with key 0 summing every
///   matching fact row — even when no row matched (SQL semantics for an
///   ungrouped aggregate).
/// - `aggregate` and `rows_scanned` are populated IFF
///   backend == kMaterialized (`aggregate` engaged, exact SUMs over the
///   matching rows). `aggregate` survives as the deprecated scalar
///   mirror of the zero-group case: it always holds the grand total
///   over all groups (equal to the ungrouped table's only row); new
///   code should read `table`. On kSimulated both are nullopt — the
///   fact data is never materialised, so there is nothing to sum.
/// - `sim` and `response_ms` are populated IFF backend == kSimulated:
///   `sim` holds the full device/timing metrics of a single-query run
///   and `response_ms` mirrors sim->avg_response_ms. On kMaterialized
///   `sim` is nullopt and `response_ms` stays 0 — materialised
///   execution has no timing model.
struct QueryOutcome {
  BackendKind backend = BackendKind::kSimulated;

  // ---- plan facts (always present) ----
  QueryClass query_class = QueryClass::kUnsupported;
  IoClass io_class = IoClass::kIoc2NoSupp;
  std::int64_t fragments_processed = 0;
  int bitmaps_per_fragment = 0;
  double selectivity = 0;

  // ---- functional result (kMaterialized) ----
  /// The result table (see the population rules above). On a degraded
  /// outcome its rows cover exactly the plan's fully-covered fragments,
  /// like `aggregate`.
  std::optional<ResultTable> table;
  std::optional<MiniWarehouse::AggregateResult> aggregate;
  /// Rows of the *residual* fragments actually scanned; with fragment
  /// summaries disabled (WarehouseConfig::enable_fragment_summaries =
  /// false) every processed fragment is residual, so this is all rows of
  /// the processed fragments.
  std::int64_t rows_scanned = 0;
  /// Fully-covered fragments answered from the measure prefix sums and
  /// the rows they contributed without being scanned (kMaterialized with
  /// summaries enabled; 0 otherwise).
  std::int64_t fragments_summarized = 0;
  std::int64_t rows_summarized = 0;
  /// Per-shard work split of a sharded materialized execution (index =
  /// shard id) and its skew — max/mean shard busy-work, 1.0 = perfectly
  /// balanced. Empty/0 unless kMaterialized with
  /// WarehouseConfig::num_shards > 1 and the plan hit the clustered
  /// layout. Deterministic: the split depends only on the allocation.
  std::vector<MiniWarehouse::ShardWork> shards;
  double shard_skew = 0;
  /// File-backed I/O of a materialized execution (all-zero for an
  /// in-RAM store and on kSimulated): segment pages faulted from disk
  /// (demand misses plus pages prefetched for this query), buffer-pool
  /// pins served from cache, and bytes faulted. Per-shard splits live
  /// in `shards` and sum to these totals. Deterministic when
  /// num_workers == 1; under parallel execution the hit/fault split
  /// depends on scheduling (the simulated backend's I/O counts live in
  /// `sim` instead).
  std::int64_t pages_read = 0;
  std::int64_t buffer_hits = 0;
  std::int64_t bytes_read = 0;
  /// Storage health of a materialized execution. `status` is ok on every
  /// healthy run (RAM or file-backed); when a page read still fails
  /// after the buffer pool's retry policy, `status` carries the typed
  /// error (kIoError / kCorruption), `aggregate` is DISENGAGED (the
  /// partial sums are not trustworthy), and the failure is confined to
  /// this query — other queries of the same batch/serve run are
  /// unaffected, and nothing poisoned stays in the buffer pool. The
  /// counters attribute failed read attempts, retry attempts issued,
  /// and CRC verification failures to this query. Always ok/zero on
  /// kSimulated.
  Status status;
  std::int64_t io_errors = 0;
  std::int64_t io_retries = 0;
  std::int64_t checksum_failures = 0;
  /// Re-executions the serving requeue policy issued for this query
  /// (ServingConfig::max_requeues); 0 outside Warehouse::Serve.
  int requeues = 0;
  /// Deadline/cancellation semantics reuse `status` and `aggregate`: a
  /// query abandoned mid-execution (expired deadline, explicit cancel,
  /// or a serving requeue skipped because the deadline had passed)
  /// carries kDeadlineExceeded/kCancelled in `status` with `aggregate`
  /// DISENGAGED — a tripped query never reports a partial sum. A query
  /// that completed before its token tripped keeps its ok status and
  /// exact aggregate.
  ///
  /// Set iff this query ran in degraded covered-only mode (overload
  /// deadline rescue): `aggregate` is engaged but covers EXACTLY the
  /// plan's fully-covered fragments, answered from the measure prefix
  /// sums — an under-approximation of the full answer, never a partial
  /// scan. rows_scanned is 0 on a degraded outcome.
  bool degraded = false;

  // ---- timing and device metrics (kSimulated) ----
  std::optional<SimResult> sim;
  double response_ms = 0;  ///< convenience mirror of sim->avg_response_ms

  /// Field-wise equality — the serving tests' "bit-identical to a direct
  /// Execute" guarantee is checked through this.
  friend bool operator==(const QueryOutcome& a,
                         const QueryOutcome& b) = default;
};

/// Result of executing a batch of queries: per-query outcomes in input
/// order plus run-level statistics.
///
/// Population rules:
/// - `queries[i]` corresponds to the i-th submitted query. Plan facts
///   are always filled; the per-query optionals follow the QueryOutcome
///   rules for the batch's backend.
/// - kMaterialized: `total_aggregate` is engaged (the sum over all
///   per-query aggregates); `sim` is nullopt and `makespan_ms` is 0.
/// - kSimulated: `sim` is engaged with the WHOLE-RUN metrics — device
///   utilizations, I/O counts and response-time statistics cover the
///   complete (possibly multi-stream) run, not any single query — and
///   `makespan_ms` mirrors sim->makespan_ms.
///
/// Per-query attribution: `queries[i].response_ms` is filled for EVERY
/// stream count — the simulator attributes each response to its
/// submitted query id (SimResult::response_by_query_ms), so multi-stream
/// simulated latencies compare per-query against real executions. (The
/// historical completion-order vector survives as sim->response_ms.)
///
/// Serving runs (Warehouse::Serve): `serving` is engaged with the
/// deterministic virtual-time metrics — per-stream latency percentiles,
/// queue wait vs service time, rejected counts, and the Jain fairness
/// index — and `queries` holds the outcomes of the SERVED queries in
/// admission order (rejected/unserved arrivals execute nothing).
struct BatchOutcome {
  BackendKind backend = BackendKind::kSimulated;
  std::vector<QueryOutcome> queries;

  std::optional<MiniWarehouse::AggregateResult> total_aggregate;
  std::optional<SimResult> sim;
  std::optional<ServeMetrics> serving;
  double makespan_ms = 0;

  double ThroughputPerSecond() const {
    return sim.has_value() ? sim->ThroughputPerSecond() : 0;
  }
};

/// Strategy interface mdw::Warehouse executes through; one implementation
/// per BackendKind. Implementations are immutable after construction and
/// safe to share between Warehouse copies.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual BackendKind kind() const = 0;

  /// Executes one query whose plan the façade already derived.
  virtual QueryOutcome Execute(const StarQuery& query,
                               const QueryPlan& plan) const = 0;

  /// Executes `queries` (with matching `plans`) as one run; `streams` is
  /// the number of concurrent query streams where the backend models
  /// concurrency, and ignored otherwise.
  virtual BatchOutcome ExecuteBatch(std::span<const StarQuery> queries,
                                    std::span<const QueryPlan> plans,
                                    int streams) const = 0;
};

/// Functional execution against a materialised MiniWarehouse. Streams are
/// ignored: materialised execution has no timing model, so a batch is just
/// the per-query aggregates plus their sum.
///
/// Partition parallelism (the paper's processing model): with
/// `num_workers` resolved to more than one, the backend owns a ThreadPool
/// and runs a single Execute as parallel tasks over the plan's fragment
/// row ranges, and ExecuteBatch as parallel tasks over the batch's queries
/// (each query then serial, so the pool is never nested). Results are
/// identical for any worker count.
class MaterializedBackend : public ExecutionBackend {
 public:
  /// `num_workers`: 0 = hardware_concurrency, 1 = serial, n = n workers.
  MaterializedBackend(std::shared_ptr<const MiniWarehouse> warehouse,
                      std::shared_ptr<const Fragmentation> fragmentation,
                      int num_workers = 1);

  BackendKind kind() const override { return BackendKind::kMaterialized; }
  QueryOutcome Execute(const StarQuery& query,
                       const QueryPlan& plan) const override;
  BatchOutcome ExecuteBatch(std::span<const StarQuery> queries,
                            std::span<const QueryPlan> plans,
                            int streams) const override;

  /// Open-loop multi-user serving: schedules the arrival trace (one plan
  /// per arrival) through a deterministic virtual-time QueryScheduler —
  /// admission control, FCFS/credit/SRPT dispatch — then executes the
  /// served queries on the shared pool in dispatch order, each serially
  /// within its task, so every outcome is bit-identical to a direct
  /// Execute of the same query. `config.num_workers == 0` adopts this
  /// backend's resolved degree.
  ///
  /// Deadlines: with `config.deadline_vt` (or per-stream overrides) set,
  /// admission rejects provably-infeasible arrivals, expired waiting
  /// queries are shed (or degraded to covered-only when their stream
  /// opts in) before dispatch, and which queries complete / degrade /
  /// shed is deterministic at any worker or shard count. With
  /// `config.exec_deadline_us` set every execution additionally runs
  /// under a wall-clock token (linked under `config.cancel`); a tripped
  /// execution yields a typed kDeadlineExceeded/kCancelled outcome with
  /// no aggregate, neighbours unaffected. The requeue policy never
  /// re-executes a query whose wall deadline already expired — such
  /// queries count as deadline_missed, not failed.
  ///
  /// Returns the served queries' outcomes in admission order with
  /// `serving` metrics engaged; `schedule_out` (optional) receives the
  /// full virtual-time schedule.
  BatchOutcome Serve(std::span<const Arrival> arrivals,
                     std::span<const QueryPlan> plans, ServingConfig config,
                     ServeSchedule* schedule_out = nullptr) const;

  const MiniWarehouse& warehouse() const { return *warehouse_; }
  /// The resolved parallel degree (>= 1).
  int num_workers() const { return num_workers_; }

 private:
  QueryOutcome ExecuteWith(const StarQuery& query, const QueryPlan& plan,
                           const ThreadPool* pool,
                           MiniWarehouse::ExecScratch* scratch,
                           const MiniWarehouse::ExecOptions& options = {}) const;
  /// The worker pool, spawned lazily on the first execution that can use
  /// it (so plan-only / serial warehouses never pay for threads); nullptr
  /// when num_workers_ == 1.
  const ThreadPool* pool() const;

  std::shared_ptr<const MiniWarehouse> warehouse_;
  std::shared_ptr<const Fragmentation> fragmentation_;
  int num_workers_ = 1;
  mutable std::once_flag pool_once_;
  mutable std::shared_ptr<const ThreadPool> pool_;
};

/// Timing/IO execution on the SIMPAD Shared Disk/Shared Nothing simulator.
/// Batches honour `streams` via the simulator's multi-user mode.
class SimulatedBackend : public ExecutionBackend {
 public:
  SimulatedBackend(std::shared_ptr<const StarSchema> schema,
                   std::shared_ptr<const Fragmentation> fragmentation,
                   SimConfig config);

  BackendKind kind() const override { return BackendKind::kSimulated; }
  QueryOutcome Execute(const StarQuery& query,
                       const QueryPlan& plan) const override;
  BatchOutcome ExecuteBatch(std::span<const StarQuery> queries,
                            std::span<const QueryPlan> plans,
                            int streams) const override;

  const SimConfig& config() const { return simulator_.config(); }

 private:
  Simulator simulator_;
};

}  // namespace mdw

#endif  // MDW_CORE_EXECUTION_BACKEND_H_
