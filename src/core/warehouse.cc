#include "core/warehouse.h"

#include <utility>

#include "common/check.h"

namespace mdw {

Warehouse::Warehouse(WarehouseConfig config)
    : seed_(config.seed.value_or(config.sim.seed)) {
  if (config.backend == BackendKind::kMaterialized) {
    // The mini-warehouse owns its schema copy; alias the façade's schema
    // handle to it so fragmentation and planner see the same object the
    // warehouse validates against.
    mini_ = std::make_shared<const MiniWarehouse>(std::move(config.schema),
                                                  seed_);
    schema_ = std::shared_ptr<const StarSchema>(mini_, &mini_->schema());
  } else {
    schema_ = std::make_shared<const StarSchema>(std::move(config.schema));
  }

  // The fragmentation's deleter captures the schema handle: any QueryPlan
  // or backend holding the fragmentation transitively keeps the schema
  // (and for kMaterialized the fact data) alive.
  auto schema = schema_;
  fragmentation_ = std::shared_ptr<const Fragmentation>(
      new Fragmentation(schema.get(), std::move(config.fragmentation)),
      [schema](const Fragmentation* f) { delete f; });

  if (config.backend == BackendKind::kMaterialized) {
    backend_ = std::make_shared<MaterializedBackend>(mini_, fragmentation_);
  } else {
    backend_ = std::make_shared<SimulatedBackend>(schema_, fragmentation_,
                                                  std::move(config.sim));
  }
}

QueryPlan Warehouse::Plan(const StarQuery& query) const {
  return QueryPlanner(schema_, fragmentation_).Plan(query);
}

QueryOutcome Warehouse::Execute(const StarQuery& query) const {
  return backend_->Execute(query, Plan(query));
}

BatchOutcome Warehouse::ExecuteBatch(std::span<const StarQuery> queries,
                                     int streams) const {
  MDW_CHECK(!queries.empty(), "empty batch");
  std::vector<QueryPlan> plans;
  plans.reserve(queries.size());
  for (const auto& q : queries) plans.push_back(Plan(q));
  return backend_->ExecuteBatch(queries, plans, streams);
}

const MiniWarehouse* Warehouse::materialized() const { return mini_.get(); }

const SimConfig& Warehouse::sim_config() const {
  const auto* sim = dynamic_cast<const SimulatedBackend*>(backend_.get());
  MDW_CHECK(sim != nullptr, "sim_config() needs BackendKind::kSimulated");
  return sim->config();
}

}  // namespace mdw
