#include "core/warehouse.h"

#include <utility>

#include "common/check.h"
#include "workload/query_parser.h"

namespace mdw {

Warehouse::Warehouse(WarehouseConfig config)
    : seed_(config.seed.value_or(config.sim.seed)) {
  if (config.backend == BackendKind::kMaterialized) {
    // The mini-warehouse owns its schema copy; alias the façade's schema
    // handle to it so fragmentation and planner see the same object the
    // warehouse validates against. It is built fragment-clustered under
    // the configured fragmentation attributes, so plans derived by this
    // façade execute fragment-confined through the row-range directory.
    MDW_CHECK(config.num_shards >= 1, "num_shards must be at least 1");
    storage::StoreOptions store_options;
    store_options.path = std::move(config.storage_path);
    store_options.pool_pages = config.storage_pool_pages;
    store_options.backend = config.storage_backend;
    store_options.prefetch = config.storage_prefetch;
    store_options.retry = config.storage_retry;
    store_options.fault_plan = std::move(config.storage_fault);
    mini_ = std::make_shared<const MiniWarehouse>(
        std::move(config.schema), seed_, config.fragmentation,
        config.enable_fragment_summaries, config.num_shards,
        config.allocation, std::move(store_options));
    schema_ = std::shared_ptr<const StarSchema>(mini_, &mini_->schema());
  } else {
    schema_ = std::make_shared<const StarSchema>(std::move(config.schema));
  }

  // The fragmentation's deleter captures the schema handle: any QueryPlan
  // or backend holding the fragmentation transitively keeps the schema
  // (and for kMaterialized the fact data) alive.
  auto schema = schema_;
  fragmentation_ = std::shared_ptr<const Fragmentation>(
      new Fragmentation(schema.get(), std::move(config.fragmentation)),
      [schema](const Fragmentation* f) { delete f; });

  if (config.backend == BackendKind::kMaterialized) {
    backend_ = std::make_shared<MaterializedBackend>(mini_, fragmentation_,
                                                     config.num_workers);
  } else {
    backend_ = std::make_shared<SimulatedBackend>(schema_, fragmentation_,
                                                  std::move(config.sim));
  }

  planner_ = std::make_shared<const QueryPlanner>(schema_, fragmentation_);
  if (config.plan_cache_capacity > 0) {
    plan_cache_ = std::make_shared<PlanCache>(config.plan_cache_capacity);
  }
}

QueryPlan Warehouse::Plan(const StarQuery& query) const {
  return *PlanShared(query);
}

std::shared_ptr<const QueryPlan> Warehouse::PlanShared(
    const StarQuery& query) const {
  if (plan_cache_ == nullptr) {
    return std::make_shared<const QueryPlan>(planner_->Plan(query));
  }
  return plan_cache_->GetOrPlan(query, *planner_);
}

QueryOutcome Warehouse::Execute(const StarQuery& query) const {
  return backend_->Execute(query, *PlanShared(query));
}

StatusOr<QueryOutcome> Warehouse::ExecuteSql(std::string_view sql) const {
  StatusOr<StarQuery> query = ParseSql(*schema_, sql);
  if (!query.ok()) return query.status();
  return Execute(*query);
}

BatchOutcome Warehouse::ExecuteBatch(std::span<const StarQuery> queries,
                                     int streams) const {
  MDW_CHECK(!queries.empty(), "empty batch");
  // The backends consume contiguous plans; cache hits are copied out of
  // the cache (a copy is two vector clones — far cheaper than deriving).
  std::vector<QueryPlan> plans;
  plans.reserve(queries.size());
  for (const auto& q : queries) plans.push_back(*PlanShared(q));
  return backend_->ExecuteBatch(queries, plans, streams);
}

BatchOutcome Warehouse::Serve(std::span<const Arrival> arrivals,
                              const ServingConfig& config,
                              ServeSchedule* schedule_out) const {
  MDW_CHECK(backend_->kind() == BackendKind::kMaterialized,
            "Serve() needs BackendKind::kMaterialized — the simulated "
            "backend models multi-user streams via ExecuteBatch(streams)");
  std::vector<QueryPlan> plans;
  plans.reserve(arrivals.size());
  for (const auto& a : arrivals) plans.push_back(*PlanShared(a.query));
  return static_cast<const MaterializedBackend*>(backend_.get())
      ->Serve(arrivals, plans, config, schedule_out);
}

const MiniWarehouse* Warehouse::materialized() const { return mini_.get(); }

const SimConfig& Warehouse::sim_config() const {
  MDW_CHECK(backend_->kind() == BackendKind::kSimulated,
            "sim_config() needs BackendKind::kSimulated, but this "
            "warehouse runs the materialized backend");
  return static_cast<const SimulatedBackend*>(backend_.get())->config();
}

PlanCache::Stats Warehouse::plan_cache_stats() const {
  return plan_cache_ == nullptr ? PlanCache::Stats{} : plan_cache_->stats();
}

}  // namespace mdw
