#include "core/mini_warehouse.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace mdw {

MiniWarehouse::MiniWarehouse(StarSchema schema, std::uint64_t seed)
    : schema_(std::move(schema)) {
  const std::int64_t max_rows = schema_.MaxFactCount();
  MDW_CHECK(max_rows <= 50'000'000,
            "schema too large to materialise; use the simulator instead");
  const int dims = schema_.num_dimensions();
  facts_.columns.assign(static_cast<std::size_t>(dims), {});

  Rng rng(seed);
  // Enumerate every leaf-value combination (mixed radix over the leaf
  // cardinalities) and admit it with probability density.
  std::vector<std::int64_t> leaf_cards;
  for (DimId d = 0; d < dims; ++d) {
    leaf_cards.push_back(
        schema_.dimension(d).hierarchy().LeafCardinality());
  }
  std::vector<std::int64_t> combo(static_cast<std::size_t>(dims), 0);
  for (std::int64_t i = 0; i < max_rows; ++i) {
    if (rng.UniformReal() < schema_.density()) {
      for (DimId d = 0; d < dims; ++d) {
        facts_.columns[static_cast<std::size_t>(d)].push_back(
            combo[static_cast<std::size_t>(d)]);
      }
      units_sold_.push_back(rng.Uniform(1, 100));
      dollar_sales_cents_.push_back(rng.Uniform(100, 100'000));
    }
    // Advance the odometer.
    for (int d = dims - 1; d >= 0; --d) {
      auto& v = combo[static_cast<std::size_t>(d)];
      if (++v < leaf_cards[static_cast<std::size_t>(d)]) break;
      v = 0;
    }
  }
  indexes_ = std::make_unique<IndexSet>(schema_, facts_);
}

bool MiniWarehouse::RowMatches(std::int64_t row,
                               const StarQuery& query) const {
  for (const auto& pred : query.predicates()) {
    const auto& h = schema_.dimension(pred.dim).hierarchy();
    const std::int64_t leaf =
        facts_.columns[static_cast<std::size_t>(pred.dim)]
                      [static_cast<std::size_t>(row)];
    const std::int64_t value = h.AncestorOfLeaf(leaf, pred.depth);
    if (std::find(pred.values.begin(), pred.values.end(), value) ==
        pred.values.end()) {
      return false;
    }
  }
  return true;
}

MiniWarehouse::AggregateResult MiniWarehouse::ExecuteFullScan(
    const StarQuery& query) const {
  AggregateResult result;
  for (std::int64_t row = 0; row < row_count(); ++row) {
    if (RowMatches(row, query)) {
      ++result.rows;
      result.units_sold += units_sold_[static_cast<std::size_t>(row)];
      result.dollar_sales_cents +=
          dollar_sales_cents_[static_cast<std::size_t>(row)];
    }
  }
  return result;
}

MiniWarehouse::AggregateResult MiniWarehouse::ExecuteWithBitmaps(
    const StarQuery& query) const {
  BitVector hits(row_count());
  hits.SetAll();
  for (const auto& pred : query.predicates()) {
    BitVector pred_rows(row_count());
    for (const auto value : pred.values) {
      pred_rows |= indexes_->Select(pred.dim, pred.depth, value);
    }
    hits &= pred_rows;
  }
  AggregateResult result;
  hits.ForEachSetBit([&](std::int64_t row) {
    ++result.rows;
    result.units_sold += units_sold_[static_cast<std::size_t>(row)];
    result.dollar_sales_cents +=
        dollar_sales_cents_[static_cast<std::size_t>(row)];
  });
  return result;
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteWithFragmentation(
    const StarQuery& query, const Fragmentation& fragmentation) const {
  MDW_CHECK(&fragmentation.schema() == &schema_,
            "fragmentation must belong to this warehouse's schema");
  const QueryPlanner planner(&schema_, &fragmentation);
  return ExecuteWithPlan(query, planner.Plan(query));
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteWithPlan(
    const StarQuery& query, const QueryPlan& plan) const {
  const Fragmentation& fragmentation = plan.fragmentation();
  MDW_CHECK(&fragmentation.schema() == &schema_,
            "plan's fragmentation must belong to this warehouse's schema");

  MdhfExecution exec;
  exec.query_class = plan.query_class();
  exec.io_class = plan.io_class();
  exec.bitmaps_read = plan.BitmapsPerFragment();
  exec.fragments_processed = plan.FragmentCount();

  const std::unordered_set<FragId> fragments = [&] {
    std::unordered_set<FragId> set;
    plan.ForEachFragment([&set](FragId id) { set.insert(id); });
    return set;
  }();

  // Bitmap filter for the predicates the plan marks as needing bitmaps;
  // all-ones when none do (Q1/Q3: fragment membership is the filter).
  BitVector filter(row_count());
  filter.SetAll();
  for (const auto& access : plan.accesses()) {
    if (!access.needs_bitmap) continue;
    const Predicate* pred = query.PredicateOn(access.dim);
    MDW_CHECK(pred != nullptr, "plan access without predicate");
    const Depth frag_depth = fragmentation.FragDepthOf(access.dim);
    // Suffix-only evaluation (skipping the prefix bits shared within a
    // fragment) is sound only if every IN-list value lies below the *same*
    // fragmentation-level ancestor; a foreign suffix pattern would
    // otherwise match unrelated rows inside the other selected fragments.
    const auto& h = schema_.dimension(access.dim).hierarchy();
    bool same_ancestor = frag_depth >= 0;
    if (frag_depth >= 0) {
      const std::int64_t first =
          h.Ancestor(pred->values.front(), pred->depth, frag_depth);
      for (const auto value : pred->values) {
        if (h.Ancestor(value, pred->depth, frag_depth) != first) {
          same_ancestor = false;
          break;
        }
      }
    }
    BitVector pred_rows(row_count());
    for (const auto value : pred->values) {
      if (same_ancestor) {
        pred_rows |= indexes_->SelectWithinFragment(pred->dim, pred->depth,
                                                    value, frag_depth);
      } else {
        pred_rows |= indexes_->Select(pred->dim, pred->depth, value);
      }
    }
    filter &= pred_rows;
  }

  std::vector<std::int64_t> leaf_keys(
      static_cast<std::size_t>(schema_.num_dimensions()));
  for (std::int64_t row = 0; row < row_count(); ++row) {
    for (DimId d = 0; d < schema_.num_dimensions(); ++d) {
      leaf_keys[static_cast<std::size_t>(d)] =
          facts_.columns[static_cast<std::size_t>(d)]
                        [static_cast<std::size_t>(row)];
    }
    if (fragments.find(fragmentation.FragmentOfRow(leaf_keys)) ==
        fragments.end()) {
      continue;
    }
    ++exec.rows_scanned;
    if (!filter.Get(row)) continue;
    ++exec.result.rows;
    exec.result.units_sold += units_sold_[static_cast<std::size_t>(row)];
    exec.result.dollar_sales_cents +=
        dollar_sales_cents_[static_cast<std::size_t>(row)];
  }
  return exec;
}

}  // namespace mdw
