#include "core/mini_warehouse.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace mdw {

namespace {

/// Minimum rows per parallel task: below this, task overhead dominates.
constexpr std::int64_t kMinChunkRows = 4096;

/// Chunk grain for `total` rows over `lanes` parallel lanes: a few chunks
/// per lane for dynamic load balancing (and for cross-shard stealing);
/// never smaller than kMinChunkRows.
std::int64_t ChunkGrain(std::int64_t total, int lanes) {
  const std::int64_t target_chunks = std::max<std::int64_t>(1, lanes) * 4;
  return std::max(kMinChunkRows, (total + target_chunks - 1) / target_chunks);
}

/// Cuts disjoint ascending `ranges` into chunks of roughly `grain` rows,
/// appending to `chunks`.
void CutRanges(const std::vector<RowRange>& ranges, std::int64_t grain,
               std::vector<RowRange>* chunks) {
  for (const auto& r : ranges) {
    for (std::int64_t b = r.begin; b < r.end; b += grain) {
      chunks->push_back({b, std::min(b + grain, r.end)});
    }
  }
}

/// Cuts disjoint ascending `ranges` into chunks sized for `lanes` lanes.
std::vector<RowRange> ChunkRanges(const std::vector<RowRange>& ranges,
                                  int lanes) {
  std::int64_t total = 0;
  for (const auto& r : ranges) total += r.rows();
  std::vector<RowRange> chunks;
  CutRanges(ranges, ChunkGrain(total, lanes), &chunks);
  return chunks;
}

/// Adds p's scan-side partial (scanned rows, I/O, and aggregate) into
/// exec.
void MergeScanPartial(const MiniWarehouse::MdhfExecution& p,
                      MiniWarehouse::MdhfExecution* exec) {
  exec->rows_scanned += p.rows_scanned;
  exec->pages_read += p.pages_read;
  exec->buffer_hits += p.buffer_hits;
  exec->bytes_read += p.bytes_read;
  exec->io_errors += p.io_errors;
  exec->io_retries += p.io_retries;
  exec->checksum_failures += p.checksum_failures;
  // First-error-wins over the fixed merge order, so the surfaced error
  // is deterministic at any worker count.
  exec->status.Update(p.status);
  exec->result.rows += p.result.rows;
  exec->result.units_sold += p.result.units_sold;
  exec->result.dollar_sales_cents += p.result.dollar_sales_cents;
}

/// Adds one cursor set's I/O attribution into a partial execution
/// record (cursor *statuses* are folded separately — they live on the
/// cursors, not the counters).
void FoldIo(const storage::SegmentStore::IoCounters& io,
            MiniWarehouse::MdhfExecution* partial) {
  partial->pages_read += io.pages_read;
  partial->buffer_hits += io.buffer_hits;
  partial->bytes_read += io.bytes_read;
  partial->io_errors += io.io_errors;
  partial->io_retries += io.io_retries;
  partial->checksum_failures += io.checksum_failures;
}

/// Measure readers the scan kernels are templated on — RAM vectors or
/// per-chunk buffer-pool cursors — so the hot loops stay free of
/// per-row virtual dispatch.
struct RamMeasures {
  const std::vector<std::int64_t>* units;
  const std::vector<std::int64_t>* dollars;
  std::int64_t Units(std::int64_t row) {
    return (*units)[static_cast<std::size_t>(row)];
  }
  std::int64_t Dollars(std::int64_t row) {
    return (*dollars)[static_cast<std::size_t>(row)];
  }
};

struct PagedMeasures {
  storage::SegmentStore::Cursor units;
  storage::SegmentStore::Cursor dollars;
  std::int64_t Units(std::int64_t row) { return units.At(row); }
  std::int64_t Dollars(std::int64_t row) { return dollars.At(row); }
};

/// Group sinks the scan kernels are templated on: NoGrouping compiles the
/// per-hit group tally away entirely, so the ungrouped hot loops are
/// byte-for-byte the pre-grouping kernels.
struct NoGrouping {
  void Add(std::int64_t /*row*/, std::int64_t /*units*/,
           std::int64_t /*dollars*/) {}
};

/// Per-row grouping: reads the group dimension's leaf through `leaf` and
/// tallies the hit into its dense group slot. Used for every grouped scan
/// (aligned or not — on an aligned fragment all rows share the key, and
/// the division is cheaper than threading the fragment key through the
/// chunk cutter).
template <typename LeafOf>
struct RowGrouping {
  LeafOf leaf;
  std::int64_t leaves_per;
  MiniWarehouse::GroupAccum* acc;

  void Add(std::int64_t row, std::int64_t units, std::int64_t dollars) {
    const auto k = static_cast<std::size_t>(leaf(row) / leaves_per);
    ++acc->rows[k];
    acc->units[k] += units;
    acc->dollars[k] += dollars;
  }
};

/// The residual-scan kernel: aggregates rows [begin, end) under the
/// accesses' bitmap filters (evaluated over the range only, O(range)).
template <typename Accesses, typename Measures, typename Grouping>
void ProcessRows(const IndexSet& indexes, std::int64_t begin,
                 std::int64_t end, const Accesses& accesses, Measures& m,
                 Grouping& g, MiniWarehouse::MdhfExecution* partial) {
  partial->rows_scanned += end - begin;
  auto& agg = partial->result;
  if (accesses.empty()) {
    // Q1/Q3 clustered hits: fragment membership IS the filter — every row
    // of the range is a hit.
    for (std::int64_t row = begin; row < end; ++row) {
      ++agg.rows;
      const std::int64_t units = m.Units(row);
      const std::int64_t dollars = m.Dollars(row);
      agg.units_sold += units;
      agg.dollar_sales_cents += dollars;
      g.Add(row, units, dollars);
    }
    return;
  }
  // Bitmap filter over this range only: O(range), never O(table).
  BitVector filter(end - begin);
  filter.SetAll();
  for (const auto& a : accesses) {
    BitVector pred_rows(end - begin);
    for (const auto value : a.pred->values) {
      if (a.same_ancestor) {
        pred_rows |= indexes.SelectWithinFragmentSlice(
            a.pred->dim, a.pred->depth, value, a.frag_depth, begin, end);
      } else {
        pred_rows |= indexes.SelectSlice(a.pred->dim, a.pred->depth, value,
                                         begin, end);
      }
    }
    filter &= pred_rows;
  }
  filter.ForEachSetBit([&](std::int64_t i) {
    const std::int64_t row = begin + i;
    ++agg.rows;
    const std::int64_t units = m.Units(row);
    const std::int64_t dollars = m.Dollars(row);
    agg.units_sold += units;
    agg.dollar_sales_cents += dollars;
    g.Add(row, units, dollars);
  });
}

/// Sums the measures of the set rows (the bitmap-index execution tail).
template <typename Measures>
MiniWarehouse::AggregateResult SumSetBits(const BitVector& hits, Measures& m) {
  MiniWarehouse::AggregateResult result;
  hits.ForEachSetBit([&](std::int64_t row) {
    ++result.rows;
    result.units_sold += m.Units(row);
    result.dollar_sales_cents += m.Dollars(row);
  });
  return result;
}

/// The reference full-scan kernel: applies the predicates against the
/// hierarchies row by row, reading dimension leaves through `leaf_of`.
template <typename LeafOf, typename Measures>
MiniWarehouse::AggregateResult FullScanRows(const StarSchema& schema,
                                            const StarQuery& query,
                                            std::int64_t rows,
                                            LeafOf&& leaf_of, Measures& m) {
  MiniWarehouse::AggregateResult result;
  for (std::int64_t row = 0; row < rows; ++row) {
    bool match = true;
    for (const auto& pred : query.predicates()) {
      const auto& h = schema.dimension(pred.dim).hierarchy();
      const std::int64_t value =
          h.AncestorOfLeaf(leaf_of(pred.dim, row), pred.depth);
      if (std::find(pred.values.begin(), pred.values.end(), value) ==
          pred.values.end()) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    ++result.rows;
    result.units_sold += m.Units(row);
    result.dollar_sales_cents += m.Dollars(row);
  }
  return result;
}

/// The unclustered fallback kernel: per-row fragment membership through
/// `probe_leaf` (probe index, row) plus the prebuilt full-width filter.
template <typename Probes, typename ProbeLeaf, typename Measures,
          typename Grouping>
void UnclusteredChunk(const RowRange& chunk, const Probes& probes,
                      ProbeLeaf&& probe_leaf,
                      const std::vector<FragId>& frag_ids, bool all_fragments,
                      const BitVector& filter, Measures& m, Grouping& g,
                      MiniWarehouse::MdhfExecution* partial) {
  auto& agg = partial->result;
  for (std::int64_t row = chunk.begin; row < chunk.end; ++row) {
    if (!all_fragments) {
      FragId fid = 0;
      for (std::size_t p = 0; p < probes.size(); ++p) {
        fid = fid * probes[p].card + probe_leaf(p, row) / probes[p].leaves_per;
      }
      if (!std::binary_search(frag_ids.begin(), frag_ids.end(), fid)) {
        continue;
      }
    }
    ++partial->rows_scanned;
    if (!filter.Get(row)) continue;
    ++agg.rows;
    const std::int64_t units = m.Units(row);
    const std::int64_t dollars = m.Dollars(row);
    agg.units_sold += units;
    agg.dollar_sales_cents += dollars;
    g.Add(row, units, dollars);
  }
}

/// Cuts `ranges` for `pool` and runs `process` once per chunk — serially,
/// or as pool tasks each filling a private partial — then merges the
/// partials in chunk order. The single merge point keeps serial and
/// parallel runs (and both execution paths) bit-identical by
/// construction.
///
/// `cancel` is polled at every chunk boundary: once tripped, the
/// remaining chunks are abandoned and the merged record carries the
/// token's typed status (so the caller discards the incomplete
/// aggregate). A token that never trips — the unarmed default in
/// particular — leaves the record bit-identical to an uncancellable run.
/// When `groups` is non-null, serial chunks tally straight into it while
/// parallel chunks fill private per-chunk accumulators merged after the
/// barrier — element-wise integer addition, so the grouped partials are
/// order-independent and bit-identical either way.
MiniWarehouse::MdhfExecution RunChunks(
    const std::vector<RowRange>& ranges, const ThreadPool* pool,
    const CancellationToken& cancel, std::int64_t group_card,
    MiniWarehouse::GroupAccum* groups,
    const std::function<void(const RowRange&, MiniWarehouse::MdhfExecution*,
                             MiniWarehouse::GroupAccum*)>& process) {
  const int lanes = pool == nullptr ? 1 : pool->size() + 1;
  const std::vector<RowRange> chunks = ChunkRanges(ranges, lanes);
  MiniWarehouse::MdhfExecution exec;
  bool all_ran = true;
  if (pool == nullptr || chunks.size() < 2) {
    for (const auto& c : chunks) {
      if (cancel.ShouldStop()) {
        all_ran = false;
        break;
      }
      process(c, &exec, groups);
    }
  } else {
    std::vector<MiniWarehouse::MdhfExecution> partials(chunks.size());
    std::vector<MiniWarehouse::GroupAccum> gpartials;
    if (groups != nullptr) {
      gpartials.resize(chunks.size());
      for (auto& g : gpartials) g.Reset(group_card);
    }
    all_ran = pool->ParallelFor(
        static_cast<std::int64_t>(chunks.size()),
        [&](std::int64_t i) {
          const auto u = static_cast<std::size_t>(i);
          process(chunks[u], &partials[u],
                  groups == nullptr ? nullptr : &gpartials[u]);
        },
        cancel);
    for (const auto& p : partials) MergeScanPartial(p, &exec);
    for (const auto& g : gpartials) groups->Merge(g);
  }
  // Only an actually-abandoned chunk poisons the record: a token that
  // trips after the last chunk finished changes nothing.
  if (!all_ran) exec.status.Update(cancel.CancelStatus());
  return exec;
}

}  // namespace

void MiniWarehouse::GroupAccum::Reset(std::int64_t card) {
  const auto n = static_cast<std::size_t>(card);
  rows.assign(n, 0);
  units.assign(n, 0);
  dollars.assign(n, 0);
  summarized.assign(n, 0);
}

void MiniWarehouse::GroupAccum::Merge(const GroupAccum& other) {
  MDW_CHECK(other.rows.size() == rows.size(),
            "group accumulators cover different key domains");
  for (std::size_t k = 0; k < rows.size(); ++k) {
    rows[k] += other.rows[k];
    units[k] += other.units[k];
    dollars[k] += other.dollars[k];
    summarized[k] += other.summarized[k];
  }
}

std::vector<GroupRow> MiniWarehouse::GroupAccum::Compact() const {
  std::vector<GroupRow> out;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    if (rows[k] == 0) continue;
    out.push_back({static_cast<std::int64_t>(k), rows[k], units[k], dollars[k],
                   summarized[k]});
  }
  return out;
}

MiniWarehouse::MiniWarehouse(StarSchema schema, std::uint64_t seed)
    : schema_(std::move(schema)) {
  Populate(seed);
  indexes_ = std::make_unique<IndexSet>(schema_, facts_);
}

MiniWarehouse::MiniWarehouse(StarSchema schema, std::uint64_t seed,
                             std::vector<FragAttr> cluster_attrs,
                             bool enable_summaries, int num_shards,
                             AllocationConfig allocation,
                             storage::StoreOptions storage)
    : schema_(std::move(schema)) {
  Populate(seed);
  ClusterByFragment(std::move(cluster_attrs), num_shards, allocation);
  // Indices are built AFTER the permutation: bit r of every bitmap refers
  // to the clustered physical row r, so range-restricted selections line
  // up with the fragment directory.
  indexes_ = std::make_unique<IndexSet>(schema_, facts_);
  if (enable_summaries) {
    // Measure prefix sums in the clustered order, so any coalesced run of
    // fully-covered fragments [b, e) aggregates as P[e] - P[b].
    const auto rows = static_cast<std::size_t>(row_count());
    units_prefix_.assign(rows + 1, 0);
    dollars_prefix_.assign(rows + 1, 0);
    for (std::size_t r = 0; r < rows; ++r) {
      units_prefix_[r + 1] = units_prefix_[r] + units_sold_[r];
      dollars_prefix_[r + 1] = dollars_prefix_[r] + dollar_sales_cents_[r];
    }
    summaries_enabled_ = true;
  }
  if (!storage.path.empty()) BuildPagedStore(seed, storage);
}

const FactColumns& MiniWarehouse::facts() const {
  MDW_CHECK(store_ == nullptr,
            "fact columns are file-backed (dropped from RAM); read them "
            "through the execution paths instead");
  return facts_;
}

void MiniWarehouse::BuildPagedStore(std::uint64_t seed,
                                    const storage::StoreOptions& options) {
  MDW_CHECK(clustered(), "file-backed mode requires the clustered layout");
  storage::SegmentStore::BuildInput in;
  in.page_size = schema_.physical().page_size_bytes;
  in.tuples_per_page = schema_.physical().TuplesPerPage();
  in.num_dims = schema_.num_dimensions();
  in.has_summaries = summaries_enabled_;
  in.shard_row_begin = shard_row_begin_;

  // The schema hash folds in everything that determines the clustered
  // bytes, so a segment from any other dataset, layout, or allocation
  // fails validation and is rewritten.
  storage::Fnv1a h;
  h.U64(seed);
  h.I64(schema_.num_dimensions());
  const double density = schema_.density();
  h.Bytes(&density, sizeof density);
  for (DimId d = 0; d < schema_.num_dimensions(); ++d) {
    const auto& hier = schema_.dimension(d).hierarchy();
    h.I64(hier.num_levels());
    h.I64(hier.LeafCardinality());
  }
  for (const FragAttr& a : cluster_frag_->attrs()) {
    h.I64(a.dim);
    h.I64(a.depth);
  }
  h.I64(num_shards_);
  // The realised fragment -> shard map captures the allocation policy's
  // entire outcome (round robin, round_gap, cluster_factor, ...).
  for (const int s : shard_of_frag_) h.I64(s);
  h.I64(row_count_);
  h.I64(summaries_enabled_ ? 1 : 0);
  in.schema_hash = h.hash;

  in.shard_fragments.resize(static_cast<std::size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    const std::int64_t base = shard_row_begin_[static_cast<std::size_t>(s)];
    for (const FragId f : shard_fragments_[static_cast<std::size_t>(s)]) {
      const auto rank =
          static_cast<std::size_t>(frag_rank_[static_cast<std::size_t>(f)]);
      in.shard_fragments[static_cast<std::size_t>(s)].push_back(
          {f, frag_offsets_[rank] - base, frag_offsets_[rank + 1] - base});
    }
  }
  for (const auto& column : facts_.columns) in.columns.push_back(&column);
  in.columns.push_back(&units_sold_);
  in.columns.push_back(&dollar_sales_cents_);
  if (summaries_enabled_) {
    in.columns.push_back(&units_prefix_);
    in.columns.push_back(&dollars_prefix_);
  }
  store_ = std::make_unique<storage::SegmentStore>(options, in);

  // Drop the in-RAM copies — the segments are the backing truth now. The
  // bitmap indexes (built over the same clustered order) stay resident:
  // only the fact/measure/prefix columns are paged.
  for (auto& column : facts_.columns) {
    column.clear();
    column.shrink_to_fit();
  }
  units_sold_ = {};
  dollar_sales_cents_ = {};
  units_prefix_ = {};
  dollars_prefix_ = {};
}

void MiniWarehouse::Populate(std::uint64_t seed) {
  const std::int64_t max_rows = schema_.MaxFactCount();
  MDW_CHECK(max_rows <= 50'000'000,
            "schema too large to materialise; use the simulator instead");
  const int dims = schema_.num_dimensions();
  facts_.columns.assign(static_cast<std::size_t>(dims), {});

  // Reserve for the expected Binomial(max_rows, density) row count plus
  // four standard deviations (capped at the hard bound max_rows), so
  // population virtually never reallocates.
  const double expected =
      schema_.density() * static_cast<double>(max_rows);
  const double slack =
      4.0 * std::sqrt(expected * std::max(0.0, 1.0 - schema_.density()));
  const auto reserve_rows = static_cast<std::size_t>(std::min<double>(
      static_cast<double>(max_rows), expected + slack + 64.0));
  for (auto& column : facts_.columns) column.reserve(reserve_rows);
  units_sold_.reserve(reserve_rows);
  dollar_sales_cents_.reserve(reserve_rows);

  Rng rng(seed);
  // Enumerate every leaf-value combination (mixed radix over the leaf
  // cardinalities) and admit it with probability density.
  std::vector<std::int64_t> leaf_cards;
  for (DimId d = 0; d < dims; ++d) {
    leaf_cards.push_back(
        schema_.dimension(d).hierarchy().LeafCardinality());
  }
  std::vector<std::int64_t> combo(static_cast<std::size_t>(dims), 0);
  for (std::int64_t i = 0; i < max_rows; ++i) {
    if (rng.UniformReal() < schema_.density()) {
      for (DimId d = 0; d < dims; ++d) {
        facts_.columns[static_cast<std::size_t>(d)].push_back(
            combo[static_cast<std::size_t>(d)]);
      }
      units_sold_.push_back(rng.Uniform(1, 100));
      dollar_sales_cents_.push_back(rng.Uniform(100, 100'000));
    }
    // Advance the odometer.
    for (int d = dims - 1; d >= 0; --d) {
      auto& v = combo[static_cast<std::size_t>(d)];
      if (++v < leaf_cards[static_cast<std::size_t>(d)]) break;
      v = 0;
    }
  }
  // Authoritative from here on: facts_ may be dropped in file-backed
  // mode, but the row count is layout-independent.
  row_count_ = facts_.row_count();
}

void MiniWarehouse::ClusterByFragment(std::vector<FragAttr> cluster_attrs,
                                      int num_shards,
                                      AllocationConfig allocation) {
  MDW_CHECK(num_shards >= 1, "need at least one shard");
  cluster_frag_ =
      std::make_unique<Fragmentation>(&schema_, std::move(cluster_attrs));
  const std::int64_t frag_count = cluster_frag_->FragmentCount();
  const std::int64_t rows = row_count();
  const int dims = schema_.num_dimensions();
  num_shards_ = num_shards;

  // Fragment -> shard through the disk allocation (one "disk" per shard,
  // round robin with the configured round_gap/cluster_factor); the
  // trivial single-shard split skips the allocation machinery entirely.
  shard_of_frag_.assign(static_cast<std::size_t>(frag_count), 0);
  if (num_shards_ > 1) {
    allocation.num_disks = num_shards_;
    shard_alloc_ = std::make_unique<DiskAllocation>(
        cluster_frag_.get(), allocation, /*bitmap_count=*/0);
    for (FragId f = 0; f < frag_count; ++f) {
      shard_of_frag_[static_cast<std::size_t>(f)] =
          shard_alloc_->DiskOfFragment(f);
    }
  }

  // Shard-major fragment order: shard by shard, ascending ids within, so
  // each shard owns one contiguous row region whose fragment ranges are
  // ascending — per-shard directory walks coalesce exactly like the
  // unsharded one did.
  shard_fragments_.assign(static_cast<std::size_t>(num_shards_), {});
  for (FragId f = 0; f < frag_count; ++f) {
    shard_fragments_[static_cast<std::size_t>(
                         shard_of_frag_[static_cast<std::size_t>(f)])]
        .push_back(f);
  }
  frag_rank_.assign(static_cast<std::size_t>(frag_count), 0);
  std::int64_t rank = 0;
  for (const auto& frags : shard_fragments_) {
    for (const FragId f : frags) {
      frag_rank_[static_cast<std::size_t>(f)] = rank++;
    }
  }

  // Each row's fragment is computed exactly once, here; queries never
  // re-derive it.
  std::vector<std::int64_t> row_rank(static_cast<std::size_t>(rows));
  std::vector<std::int64_t> leaf(static_cast<std::size_t>(dims));
  for (std::int64_t row = 0; row < rows; ++row) {
    for (DimId d = 0; d < dims; ++d) {
      leaf[static_cast<std::size_t>(d)] =
          facts_.columns[static_cast<std::size_t>(d)]
                        [static_cast<std::size_t>(row)];
    }
    row_rank[static_cast<std::size_t>(row)] = frag_rank_[
        static_cast<std::size_t>(cluster_frag_->FragmentOfRow(leaf))];
  }

  // Counting sort into shard-major, fragment-major order (stable:
  // generation order is preserved within a fragment). frag_offsets_ is
  // indexed by rank, not id.
  frag_offsets_.assign(static_cast<std::size_t>(frag_count) + 1, 0);
  for (const std::int64_t r : row_rank) {
    ++frag_offsets_[static_cast<std::size_t>(r) + 1];
  }
  for (std::size_t f = 1; f < frag_offsets_.size(); ++f) {
    frag_offsets_[f] += frag_offsets_[f - 1];
  }
  std::vector<std::int64_t> cursor(frag_offsets_.begin(),
                                   frag_offsets_.end() - 1);
  std::vector<std::int64_t> new_pos(static_cast<std::size_t>(rows));
  for (std::int64_t row = 0; row < rows; ++row) {
    new_pos[static_cast<std::size_t>(row)] =
        cursor[static_cast<std::size_t>(
            row_rank[static_cast<std::size_t>(row)])]++;
  }

  // Shard regions: shard s spans the offsets of its rank interval.
  shard_row_begin_.assign(static_cast<std::size_t>(num_shards_) + 1, 0);
  std::int64_t first_rank = 0;
  for (int s = 0; s < num_shards_; ++s) {
    first_rank +=
        static_cast<std::int64_t>(shard_fragments_[
            static_cast<std::size_t>(s)].size());
    shard_row_begin_[static_cast<std::size_t>(s) + 1] =
        frag_offsets_[static_cast<std::size_t>(first_rank)];
  }

  const auto permute = [&](std::vector<std::int64_t>& column) {
    std::vector<std::int64_t> permuted(static_cast<std::size_t>(rows));
    for (std::int64_t row = 0; row < rows; ++row) {
      permuted[static_cast<std::size_t>(
          new_pos[static_cast<std::size_t>(row)])] =
          column[static_cast<std::size_t>(row)];
    }
    column = std::move(permuted);
  };
  for (auto& column : facts_.columns) permute(column);
  permute(units_sold_);
  permute(dollar_sales_cents_);
}

bool MiniWarehouse::ClusteredFor(const Fragmentation& fragmentation) const {
  return cluster_frag_ != nullptr && &fragmentation.schema() == &schema_ &&
         fragmentation.attrs() == cluster_frag_->attrs();
}

std::pair<std::int64_t, std::int64_t> MiniWarehouse::FragmentRows(
    FragId id) const {
  MDW_CHECK(clustered(), "warehouse is not fragment-clustered");
  MDW_CHECK(id >= 0 && id < cluster_frag_->FragmentCount(),
            "fragment id out of range");
  const auto rank =
      static_cast<std::size_t>(frag_rank_[static_cast<std::size_t>(id)]);
  return {frag_offsets_[rank], frag_offsets_[rank + 1]};
}

int MiniWarehouse::ShardOfFragment(FragId id) const {
  MDW_CHECK(clustered(), "warehouse is not fragment-clustered");
  MDW_CHECK(id >= 0 && id < cluster_frag_->FragmentCount(),
            "fragment id out of range");
  return shard_of_frag_[static_cast<std::size_t>(id)];
}

std::pair<std::int64_t, std::int64_t> MiniWarehouse::ShardRows(int s) const {
  MDW_CHECK(clustered(), "warehouse is not fragment-clustered");
  MDW_CHECK(s >= 0 && s < num_shards_, "shard out of range");
  return {shard_row_begin_[static_cast<std::size_t>(s)],
          shard_row_begin_[static_cast<std::size_t>(s) + 1]};
}

const std::vector<FragId>& MiniWarehouse::ShardFragments(int s) const {
  MDW_CHECK(clustered(), "warehouse is not fragment-clustered");
  MDW_CHECK(s >= 0 && s < num_shards_, "shard out of range");
  return shard_fragments_[static_cast<std::size_t>(s)];
}

double MiniWarehouse::MdhfExecution::ShardSkew() const {
  if (shards.empty()) return 0;
  std::int64_t total = 0;
  std::int64_t max = 0;
  for (const auto& w : shards) {
    total += w.BusyWork();
    max = std::max(max, w.BusyWork());
  }
  if (total == 0) return 0;
  // max / mean, with mean = total / num_shards.
  return static_cast<double>(max) * static_cast<double>(shards.size()) /
         static_cast<double>(total);
}

MiniWarehouse::AggregateResult MiniWarehouse::ExecuteFullScan(
    const StarQuery& query) const {
  if (store_ == nullptr) {
    RamMeasures m{&units_sold_, &dollar_sales_cents_};
    const auto leaf_of = [&](DimId d, std::int64_t row) {
      return facts_.columns[static_cast<std::size_t>(d)]
                           [static_cast<std::size_t>(row)];
    };
    return FullScanRows(schema_, query, row_count(), leaf_of, m);
  }
  // File-backed: one pool cursor per predicate dimension + the measures.
  std::vector<std::pair<DimId, storage::SegmentStore::Cursor>> dims;
  for (const auto& pred : query.predicates()) {
    dims.emplace_back(pred.dim,
                      store_->MakeCursor(store_->ColDim(pred.dim), nullptr));
  }
  const auto leaf_of = [&](DimId d, std::int64_t row) {
    for (auto& [dim, cursor] : dims) {
      if (dim == d) return cursor.At(row);
    }
    MDW_CHECK(false, "predicate dimension without a cursor");
    return std::int64_t{0};
  };
  PagedMeasures m{store_->MakeCursor(store_->ColUnits(), nullptr),
                  store_->MakeCursor(store_->ColDollars(), nullptr)};
  const AggregateResult result =
      FullScanRows(schema_, query, row_count(), leaf_of, m);
  // The reference paths are ground truth, not serving paths: a storage
  // error here means the test substrate itself is broken, so fail fast
  // instead of returning a silently-zeroed baseline.
  for (auto& [dim, cursor] : dims) {
    MDW_CHECK(cursor.status().ok(),
              "reference full scan hit a storage error");
  }
  MDW_CHECK(m.units.status().ok() && m.dollars.status().ok(),
            "reference full scan hit a storage error");
  return result;
}

std::vector<GroupRow> MiniWarehouse::ExecuteFullScanGrouped(
    const StarQuery& query) const {
  MDW_CHECK(query.grouped(), "ExecuteFullScanGrouped needs a GROUP BY");
  const GroupBy gb = *query.group_by();
  MDW_CHECK(gb.dim >= 0 && gb.dim < schema_.num_dimensions(),
            "GROUP BY dimension out of range");
  const auto& gh = schema_.dimension(gb.dim).hierarchy();
  MDW_CHECK(gb.depth >= 0 && gb.depth < gh.num_levels(),
            "GROUP BY level out of range");
  GroupAccum acc;
  acc.Reset(gh.Cardinality(gb.depth));
  const std::int64_t leaves_per = gh.LeavesPer(gb.depth);

  const auto scan = [&](auto&& leaf_of, auto& m) {
    for (std::int64_t row = 0; row < row_count(); ++row) {
      bool match = true;
      for (const auto& pred : query.predicates()) {
        const auto& h = schema_.dimension(pred.dim).hierarchy();
        const std::int64_t value =
            h.AncestorOfLeaf(leaf_of(pred.dim, row), pred.depth);
        if (std::find(pred.values.begin(), pred.values.end(), value) ==
            pred.values.end()) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      acc.Tally(leaf_of(gb.dim, row) / leaves_per, m.Units(row),
                m.Dollars(row));
    }
  };

  if (store_ == nullptr) {
    RamMeasures m{&units_sold_, &dollar_sales_cents_};
    const auto leaf_of = [&](DimId d, std::int64_t row) {
      return facts_.columns[static_cast<std::size_t>(d)]
                           [static_cast<std::size_t>(row)];
    };
    scan(leaf_of, m);
    return acc.Compact();
  }
  // File-backed: cursors for the predicate dimensions plus (if distinct)
  // the group dimension.
  std::vector<std::pair<DimId, storage::SegmentStore::Cursor>> dims;
  for (const auto& pred : query.predicates()) {
    dims.emplace_back(pred.dim,
                      store_->MakeCursor(store_->ColDim(pred.dim), nullptr));
  }
  bool have_group_dim = false;
  for (const auto& [dim, cursor] : dims) have_group_dim |= dim == gb.dim;
  if (!have_group_dim) {
    dims.emplace_back(gb.dim,
                      store_->MakeCursor(store_->ColDim(gb.dim), nullptr));
  }
  const auto leaf_of = [&](DimId d, std::int64_t row) {
    for (auto& [dim, cursor] : dims) {
      if (dim == d) return cursor.At(row);
    }
    MDW_CHECK(false, "dimension without a cursor");
    return std::int64_t{0};
  };
  PagedMeasures m{store_->MakeCursor(store_->ColUnits(), nullptr),
                  store_->MakeCursor(store_->ColDollars(), nullptr)};
  scan(leaf_of, m);
  // Ground truth, not a serving path: fail fast on storage errors.
  for (auto& [dim, cursor] : dims) {
    MDW_CHECK(cursor.status().ok(),
              "grouped reference scan hit a storage error");
  }
  MDW_CHECK(m.units.status().ok() && m.dollars.status().ok(),
            "grouped reference scan hit a storage error");
  return acc.Compact();
}

MiniWarehouse::AggregateResult MiniWarehouse::ExecuteWithBitmaps(
    const StarQuery& query) const {
  BitVector hits(row_count());
  hits.SetAll();
  for (const auto& pred : query.predicates()) {
    BitVector pred_rows(row_count());
    for (const auto value : pred.values) {
      pred_rows |= indexes_->Select(pred.dim, pred.depth, value);
    }
    hits &= pred_rows;
  }
  if (store_ == nullptr) {
    RamMeasures m{&units_sold_, &dollar_sales_cents_};
    return SumSetBits(hits, m);
  }
  PagedMeasures m{store_->MakeCursor(store_->ColUnits(), nullptr),
                  store_->MakeCursor(store_->ColDollars(), nullptr)};
  const AggregateResult result = SumSetBits(hits, m);
  MDW_CHECK(m.units.status().ok() && m.dollars.status().ok(),
            "bitmap reference execution hit a storage error");
  return result;
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteWithFragmentation(
    const StarQuery& query, const Fragmentation& fragmentation) const {
  MDW_CHECK(&fragmentation.schema() == &schema_,
            "fragmentation must belong to this warehouse's schema");
  const QueryPlanner planner(&schema_, &fragmentation);
  return ExecuteWithPlan(query, planner.Plan(query));
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteWithPlan(
    const StarQuery& query, const QueryPlan& plan) const {
  return ExecuteWithPlan(query, plan, /*pool=*/nullptr);
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteWithPlan(
    const StarQuery& query, const QueryPlan& plan,
    const ThreadPool* pool) const {
  return ExecuteWithPlan(query, plan, pool, /*scratch=*/nullptr);
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteWithPlan(
    const StarQuery& query, const QueryPlan& plan, const ThreadPool* pool,
    ExecScratch* scratch) const {
  return ExecuteWithPlan(query, plan, pool, scratch, ExecOptions{});
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteWithPlan(
    const StarQuery& query, const QueryPlan& plan, const ThreadPool* pool,
    ExecScratch* scratch, const ExecOptions& options) const {
  const Fragmentation& fragmentation = plan.fragmentation();
  MDW_CHECK(&fragmentation.schema() == &schema_,
            "plan's fragmentation must belong to this warehouse's schema");
  MDW_CHECK(!options.covered_only ||
                (summaries_enabled_ && ClusteredFor(fragmentation) &&
                 (!plan.grouped() || plan.AlignedGrouping())),
            "covered-only degradation requires summaries over a matching "
            "clustered layout (and fragmentation-aligned grouping)");

  // Entry checkpoint: a token tripped before execution starts must yield
  // the typed status even when the query would be answered entirely from
  // summaries (the covered path runs no cancellable scan chunks).
  if (options.cancel.ShouldStop()) {
    MdhfExecution exec;
    exec.status = options.cancel.CancelStatus();
    exec.query_class = plan.query_class();
    exec.io_class = plan.io_class();
    return exec;
  }

  ExecScratch local;
  ExecScratch& s = scratch != nullptr ? *scratch : local;
  ResolveBitmapAccesses(query, plan, &s.accesses_);
  const std::vector<BitmapAccess>& accesses = s.accesses_;
  GroupContext gctx;
  GroupAccum group_accum;
  GroupAccum* groups = nullptr;
  if (plan.grouped()) {
    gctx.grouped = true;
    gctx.dim = plan.group_by()->dim;
    gctx.leaves_per = plan.group_leaves_per();
    gctx.card = plan.group_card();
    group_accum.Reset(gctx.card);
    groups = &group_accum;
  }
  MdhfExecution exec =
      ClusteredFor(fragmentation)
          ? ExecuteClustered(plan, accesses, gctx, pool, options, groups)
          : ExecuteUnclustered(plan, accesses, gctx, pool, options, groups);
  if (groups != nullptr) exec.groups = groups->Compact();
  exec.degraded = options.covered_only;
  exec.query_class = plan.query_class();
  exec.io_class = plan.io_class();
  exec.bitmaps_read = plan.BitmapsPerFragment();
  exec.fragments_processed = plan.FragmentCount();
  return exec;
}

void MiniWarehouse::ResolveBitmapAccesses(
    const StarQuery& query, const QueryPlan& plan,
    std::vector<BitmapAccess>* out) const {
  const Fragmentation& fragmentation = plan.fragmentation();
  std::vector<BitmapAccess>& accesses = *out;
  accesses.clear();
  for (const auto& access : plan.accesses()) {
    if (!access.needs_bitmap) continue;
    const Predicate* pred = query.PredicateOn(access.dim);
    MDW_CHECK(pred != nullptr, "plan access without predicate");
    const Depth frag_depth = fragmentation.FragDepthOf(access.dim);
    // Suffix-only evaluation (skipping the prefix bits shared within a
    // fragment) is sound only if every IN-list value lies below the *same*
    // fragmentation-level ancestor; a foreign suffix pattern would
    // otherwise match unrelated rows inside the other selected fragments.
    const auto& h = schema_.dimension(access.dim).hierarchy();
    bool same_ancestor = frag_depth >= 0;
    if (frag_depth >= 0) {
      const std::int64_t first =
          h.Ancestor(pred->values.front(), pred->depth, frag_depth);
      for (const auto value : pred->values) {
        if (h.Ancestor(value, pred->depth, frag_depth) != first) {
          same_ancestor = false;
          break;
        }
      }
    }
    accesses.push_back({pred, frag_depth, same_ancestor});
  }
}

void MiniWarehouse::ScanChunk(std::int64_t begin, std::int64_t end,
                              const std::vector<BitmapAccess>& accesses,
                              const GroupContext& group,
                              const CancellationToken& cancel,
                              MdhfExecution* partial,
                              GroupAccum* groups) const {
  if (store_ == nullptr) {
    RamMeasures m{&units_sold_, &dollar_sales_cents_};
    if (groups == nullptr) {
      NoGrouping g;
      ProcessRows(*indexes_, begin, end, accesses, m, g, partial);
      return;
    }
    const std::vector<std::int64_t>& keys =
        facts_.columns[static_cast<std::size_t>(group.dim)];
    const auto leaf = [&keys](std::int64_t row) {
      return keys[static_cast<std::size_t>(row)];
    };
    RowGrouping<decltype(leaf)> g{leaf, group.leaves_per, groups};
    ProcessRows(*indexes_, begin, end, accesses, m, g, partial);
    return;
  }
  storage::SegmentStore::IoCounters io;
  PagedMeasures m{store_->MakeCursor(store_->ColUnits(), &io, cancel),
                  store_->MakeCursor(store_->ColDollars(), &io, cancel)};
  if (accesses.empty()) {
    // Unfiltered range: every page will be touched, so read ahead in
    // coalesced runs. Filtered scans skip prefetch — they fault only the
    // pages that actually hold hits.
    m.units.PrefetchRun(begin, end);
    m.dollars.PrefetchRun(begin, end);
  }
  if (groups == nullptr) {
    NoGrouping g;
    ProcessRows(*indexes_, begin, end, accesses, m, g, partial);
  } else {
    // Grouped scans read the group dimension's leaf column through its
    // own cursor (its I/O and status fold into the same partial).
    auto key_cursor =
        store_->MakeCursor(store_->ColDim(group.dim), &io, cancel);
    if (accesses.empty()) key_cursor.PrefetchRun(begin, end);
    const auto leaf = [&key_cursor](std::int64_t row) {
      return key_cursor.At(row);
    };
    RowGrouping<decltype(leaf)> g{leaf, group.leaves_per, groups};
    ProcessRows(*indexes_, begin, end, accesses, m, g, partial);
    partial->status.Update(key_cursor.status());
  }
  FoldIo(io, partial);
  partial->status.Update(m.units.status());
  partial->status.Update(m.dollars.status());
}

void MiniWarehouse::FoldSummaryRun(const RowRange& run,
                                   const CancellationToken& cancel,
                                   MdhfExecution* exec,
                                   std::int64_t group_key,
                                   GroupAccum* groups) const {
  exec->result.rows += run.rows();
  exec->rows_summarized += run.rows();
  if (store_ == nullptr) {
    const auto b = static_cast<std::size_t>(run.begin);
    const auto e = static_cast<std::size_t>(run.end);
    const std::int64_t du = units_prefix_[e] - units_prefix_[b];
    const std::int64_t dd = dollars_prefix_[e] - dollars_prefix_[b];
    exec->result.units_sold += du;
    exec->result.dollar_sales_cents += dd;
    if (groups != nullptr && group_key >= 0) {
      groups->TallySummary(group_key, run.rows(), du, dd);
    }
    return;
  }
  // File-backed: the prefix-sum columns answer the covered run from at
  // most two pages per measure.
  storage::SegmentStore::IoCounters io;
  auto units = store_->MakeCursor(store_->ColUnitsPrefix(), &io, cancel);
  auto dollars = store_->MakeCursor(store_->ColDollarsPrefix(), &io, cancel);
  const std::int64_t du = units.At(run.end) - units.At(run.begin);
  const std::int64_t dd = dollars.At(run.end) - dollars.At(run.begin);
  exec->result.units_sold += du;
  exec->result.dollar_sales_cents += dd;
  if (groups != nullptr && group_key >= 0) {
    groups->TallySummary(group_key, run.rows(), du, dd);
  }
  FoldIo(io, exec);
  exec->status.Update(units.status());
  exec->status.Update(dollars.status());
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteClustered(
    const QueryPlan& plan, const std::vector<BitmapAccess>& accesses,
    const GroupContext& group, const ThreadPool* pool,
    const ExecOptions& options, GroupAccum* groups) const {
  // A summary run's prefix-sum fold cannot split its rows across groups,
  // so grouping below the fragmentation level (or on a non-fragmentation
  // dimension) forces every selected fragment onto the scan path.
  const bool use_summaries =
      summaries_enabled_ && (!group.grouped || plan.AlignedGrouping());

  // Single-fragment fast path (the paper's IOC1-opt shape): the one
  // fragment id falls out of the slices directly, skipping the odometer
  // enumeration and its std::function indirection — for a fully-covered
  // fragment the whole query is then three prefix-sum lookups.
  if (plan.FragmentCount() == 1 && cluster_frag_->num_attrs() > 0) {
    FragId id = 0;
    bool covered = plan.coverable();
    for (int i = 0; i < cluster_frag_->num_attrs(); ++i) {
      const std::int64_t c = plan.slice(i).front();
      MDW_CHECK(c >= 0 && c < cluster_frag_->CardOf(i),
                "coordinate out of range");  // as FragmentIdOf enforces
      id = id * cluster_frag_->CardOf(i) + c;
      covered = covered && plan.covered(i).front();
    }
    const auto rank =
        static_cast<std::size_t>(frag_rank_[static_cast<std::size_t>(id)]);
    const std::int64_t begin = frag_offsets_[rank];
    const std::int64_t end = frag_offsets_[rank + 1];
    MdhfExecution exec;
    if (use_summaries && covered) {
      const std::int64_t gkey =
          plan.AlignedGrouping() ? plan.GroupOfFragment(id) : -1;
      FoldSummaryRun({begin, end}, options.cancel, &exec, gkey, groups);
      exec.fragments_summarized = 1;
    } else if (begin < end && !options.covered_only) {
      exec = RunChunks({{begin, end}}, pool, options.cancel, group.card,
                       groups,
                       [&](const RowRange& c, MdhfExecution* partial,
                           GroupAccum* g) {
                         ScanChunk(c.begin, c.end, accesses, group,
                                   options.cancel, partial, g);
                       });
    }
    AttributeWorkToFragmentShard(id, &exec);
    return exec;
  }

  // Directory walk: the plan's fragments are routed to their shards and
  // map to physical row ranges; within a shard, adjacent selected
  // fragments coalesce into maximal runs (fragment ids arrive in
  // ascending allocation order, and the shard's layout is fragment-major,
  // so per-shard ranges are ascending and disjoint). Fully-covered
  // fragments split off into summary runs answered from the prefix sums;
  // residual fragments keep the range-scan + bitmap path.
  const std::vector<ShardSelection> selections = RouteSelectionToShards(
      plan, num_shards_, use_summaries,
      [&](FragId id) { return shard_of_frag_[static_cast<std::size_t>(id)]; },
      [&](FragId id) {
        const auto rank = static_cast<std::size_t>(
            frag_rank_[static_cast<std::size_t>(id)]);
        return std::pair<std::int64_t, std::int64_t>{frag_offsets_[rank],
                                                     frag_offsets_[rank + 1]};
      });
  return ExecuteSharded(selections, accesses, group, pool, options, groups);
}

void MiniWarehouse::AttributeWorkToFragmentShard(FragId id,
                                                 MdhfExecution* exec) const {
  if (num_shards_ <= 1) return;
  exec->shards.assign(static_cast<std::size_t>(num_shards_), {});
  ShardWork& work = exec->shards[static_cast<std::size_t>(
      shard_of_frag_[static_cast<std::size_t>(id)])];
  work.fragments = 1;
  work.rows_scanned = exec->rows_scanned;
  work.rows_summarized = exec->rows_summarized;
  work.fragments_summarized = exec->fragments_summarized;
  work.pages_read = exec->pages_read;
  work.buffer_hits = exec->buffer_hits;
  work.bytes_read = exec->bytes_read;
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteSharded(
    const std::vector<ShardSelection>& selections,
    const std::vector<BitmapAccess>& accesses, const GroupContext& group,
    const ThreadPool* pool, const ExecOptions& options,
    GroupAccum* groups) const {
  // Cut every shard's scan ranges with ONE global grain (a few chunks per
  // lane across all shards), so stealing has granularity even when one
  // shard holds most of the work. Covered-only degraded execution drops
  // the scan side entirely — residual fragments are skipped, not
  // partially scanned — leaving just the summary folds below.
  const int lanes = pool == nullptr ? 1 : pool->size() + 1;
  std::int64_t total_scan = 0;
  for (const auto& sel : selections) total_scan += sel.ScanRows();
  const std::int64_t grain = ChunkGrain(total_scan, lanes);
  std::vector<std::vector<RowRange>> chunks(selections.size());
  std::vector<std::int64_t> queue_sizes(selections.size(), 0);
  std::vector<std::size_t> slot_base(selections.size(), 0);
  std::size_t total_chunks = 0;
  for (std::size_t s = 0; s < selections.size(); ++s) {
    if (!options.covered_only) {
      CutRanges(selections[s].scan, grain, &chunks[s]);
    }
    queue_sizes[s] = static_cast<std::int64_t>(chunks[s].size());
    slot_base[s] = total_chunks;
    total_chunks += chunks[s].size();
  }

  // One private partial per chunk; affinity tasks (one queue per shard,
  // idle lanes steal) or a serial loop fill them, and the merge below is
  // the only point that reads them — in fixed (shard, chunk) order, so
  // the record is bit-identical at any worker count.
  std::vector<MdhfExecution> partials(total_chunks);
  // Grouped runs mirror the scan partials with per-chunk group
  // accumulators merged below — element-wise integer sums, so the merge
  // order never changes the grouped result.
  std::vector<GroupAccum> gpartials;
  if (groups != nullptr) {
    gpartials.resize(total_chunks);
    for (auto& g : gpartials) g.Reset(group.card);
  }
  bool all_ran = true;
  if (pool != nullptr && total_chunks >= 2) {
    all_ran = pool->ParallelForQueues(
        queue_sizes,
        [&](int s, std::int64_t c) {
          const auto su = static_cast<std::size_t>(s);
          const std::size_t slot =
              slot_base[su] + static_cast<std::size_t>(c);
          const RowRange& r = chunks[su][static_cast<std::size_t>(c)];
          ScanChunk(r.begin, r.end, accesses, group, options.cancel,
                    &partials[slot],
                    groups == nullptr ? nullptr : &gpartials[slot]);
        },
        options.cancel);
  } else {
    for (std::size_t s = 0; s < chunks.size() && all_ran; ++s) {
      for (std::size_t c = 0; c < chunks[s].size(); ++c) {
        if (options.cancel.ShouldStop()) {
          all_ran = false;
          break;
        }
        const std::size_t slot = slot_base[s] + c;
        ScanChunk(chunks[s][c].begin, chunks[s][c].end, accesses, group,
                  options.cancel, &partials[slot],
                  groups == nullptr ? nullptr : &gpartials[slot]);
      }
    }
  }
  for (const auto& g : gpartials) groups->Merge(g);

  // Fixed-order merge: shards ascending; within a shard, scan chunks in
  // range order, then the shard's summary runs — all-integer sums, one
  // merge sequence regardless of scheduling.
  MdhfExecution exec;
  const bool sharded = num_shards_ > 1;
  if (sharded) {
    exec.shards.assign(static_cast<std::size_t>(num_shards_), {});
  }
  for (std::size_t s = 0; s < selections.size(); ++s) {
    const ShardSelection& sel = selections[s];
    ShardWork work;
    work.fragments = sel.fragments;
    work.fragments_summarized = sel.fragments_covered;
    for (std::size_t c = 0; c < chunks[s].size(); ++c) {
      const MdhfExecution& p = partials[slot_base[s] + c];
      MergeScanPartial(p, &exec);
      work.rows_scanned += p.rows_scanned;
      work.pages_read += p.pages_read;
      work.buffer_hits += p.buffer_hits;
      work.bytes_read += p.bytes_read;
    }
    // Summary runs fold io into the totals; attribute the delta to this
    // shard so the per-shard split keeps summing to the totals.
    const std::int64_t pages0 = exec.pages_read;
    const std::int64_t hits0 = exec.buffer_hits;
    const std::int64_t bytes0 = exec.bytes_read;
    for (std::size_t r = 0; r < sel.summary.size(); ++r) {
      // A tripped token abandons the remaining summary folds too — the
      // typed status below tells the caller the record is incomplete.
      if (!all_ran || options.cancel.ShouldStop()) {
        all_ran = false;
        break;
      }
      const RowRange& run = sel.summary[r];
      FoldSummaryRun(run, options.cancel, &exec, sel.summary_group[r],
                     groups);
      work.rows_summarized += run.rows();
    }
    work.pages_read += exec.pages_read - pages0;
    work.buffer_hits += exec.buffer_hits - hits0;
    work.bytes_read += exec.bytes_read - bytes0;
    exec.fragments_summarized += sel.fragments_covered;
    if (sharded) exec.shards[s] = work;
  }
  if (!all_ran) exec.status.Update(options.cancel.CancelStatus());
  return exec;
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteUnclustered(
    const QueryPlan& plan, const std::vector<BitmapAccess>& accesses,
    const GroupContext& group, const ThreadPool* pool,
    const ExecOptions& options, GroupAccum* groups) const {
  const Fragmentation& fragmentation = plan.fragmentation();

  // Sorted fragment membership (ForEachFragment enumerates ascending ids);
  // when the plan covers every fragment the per-row mapping is skipped.
  std::vector<FragId> frag_ids;
  plan.ForEachFragment([&](FragId id) { frag_ids.push_back(id); });
  const bool all_fragments =
      static_cast<std::int64_t>(frag_ids.size()) ==
      fragmentation.FragmentCount();

  // Bitmap filter for the predicates the plan marks as needing bitmaps;
  // all-ones when none do (Q1/Q3: fragment membership is the filter).
  // Built full-width once, shared read-only by all workers.
  BitVector filter(row_count());
  filter.SetAll();
  for (const auto& a : accesses) {
    BitVector pred_rows(row_count());
    for (const auto value : a.pred->values) {
      if (a.same_ancestor) {
        pred_rows |= indexes_->SelectWithinFragment(a.pred->dim, a.pred->depth,
                                                    value, a.frag_depth);
      } else {
        pred_rows |= indexes_->Select(a.pred->dim, a.pred->depth, value);
      }
    }
    filter &= pred_rows;
  }

  // Per-depth ancestor probes, resolved once per query: the fragment id of
  // a row is the mixed-radix combination of leaf / LeavesPer(frag depth)
  // over the fragmentation attributes, read straight from the fact
  // columns (or their segment pages) — no per-row temporaries
  // (FragmentOfRow would build a coordinate vector per row).
  struct FragProbe {
    DimId dim;
    std::int64_t leaves_per;  ///< leaf values per fragmentation-level value
    std::int64_t card;        ///< attribute cardinality (radix)
  };
  std::vector<FragProbe> probes;
  probes.reserve(static_cast<std::size_t>(fragmentation.num_attrs()));
  for (int i = 0; i < fragmentation.num_attrs(); ++i) {
    const FragAttr& a = fragmentation.attr(i);
    const auto& h = schema_.dimension(a.dim).hierarchy();
    probes.push_back({a.dim, h.LeavesPer(a.depth), fragmentation.CardOf(i)});
  }

  return RunChunks({{0, row_count()}}, pool, options.cancel, group.card,
                   groups,
                   [&](const RowRange& chunk, MdhfExecution* partial,
                       GroupAccum* gacc) {
    if (store_ == nullptr) {
      const auto probe_leaf = [&](std::size_t p, std::int64_t row) {
        return facts_.columns[static_cast<std::size_t>(probes[p].dim)]
                             [static_cast<std::size_t>(row)];
      };
      RamMeasures m{&units_sold_, &dollar_sales_cents_};
      if (gacc == nullptr) {
        NoGrouping g;
        UnclusteredChunk(chunk, probes, probe_leaf, frag_ids, all_fragments,
                         filter, m, g, partial);
        return;
      }
      const std::vector<std::int64_t>& keys =
          facts_.columns[static_cast<std::size_t>(group.dim)];
      const auto leaf = [&keys](std::int64_t row) {
        return keys[static_cast<std::size_t>(row)];
      };
      RowGrouping<decltype(leaf)> g{leaf, group.leaves_per, gacc};
      UnclusteredChunk(chunk, probes, probe_leaf, frag_ids, all_fragments,
                       filter, m, g, partial);
      return;
    }
    storage::SegmentStore::IoCounters io;
    std::vector<storage::SegmentStore::Cursor> cursors;
    cursors.reserve(probes.size());
    for (const auto& p : probes) {
      cursors.push_back(
          store_->MakeCursor(store_->ColDim(p.dim), &io, options.cancel));
    }
    const auto probe_leaf = [&](std::size_t p, std::int64_t row) {
      return cursors[p].At(row);
    };
    PagedMeasures m{
        store_->MakeCursor(store_->ColUnits(), &io, options.cancel),
        store_->MakeCursor(store_->ColDollars(), &io, options.cancel)};
    if (gacc == nullptr) {
      NoGrouping g;
      UnclusteredChunk(chunk, probes, probe_leaf, frag_ids, all_fragments,
                       filter, m, g, partial);
    } else {
      auto key_cursor =
          store_->MakeCursor(store_->ColDim(group.dim), &io, options.cancel);
      const auto leaf = [&key_cursor](std::int64_t row) {
        return key_cursor.At(row);
      };
      RowGrouping<decltype(leaf)> g{leaf, group.leaves_per, gacc};
      UnclusteredChunk(chunk, probes, probe_leaf, frag_ids, all_fragments,
                       filter, m, g, partial);
      partial->status.Update(key_cursor.status());
    }
    FoldIo(io, partial);
    for (auto& c : cursors) partial->status.Update(c.status());
    partial->status.Update(m.units.status());
    partial->status.Update(m.dollars.status());
  });
}

}  // namespace mdw
