#include "core/mini_warehouse.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace mdw {

namespace {

/// A contiguous physical row range [begin, end) to be processed as one
/// parallel task.
struct RowChunk {
  std::int64_t begin;
  std::int64_t end;
};

/// Minimum rows per parallel task: below this, task overhead dominates.
constexpr std::int64_t kMinChunkRows = 4096;

/// Cuts disjoint ascending `ranges` into chunks of roughly equal row count
/// sized for `lanes` parallel lanes (a few chunks per lane for dynamic
/// load balancing; never smaller than kMinChunkRows).
std::vector<RowChunk> ChunkRanges(const std::vector<RowChunk>& ranges,
                                  int lanes) {
  std::int64_t total = 0;
  for (const auto& r : ranges) total += r.end - r.begin;
  const std::int64_t target_chunks = std::max<std::int64_t>(1, lanes) * 4;
  const std::int64_t grain =
      std::max(kMinChunkRows, (total + target_chunks - 1) / target_chunks);
  std::vector<RowChunk> chunks;
  for (const auto& r : ranges) {
    for (std::int64_t b = r.begin; b < r.end; b += grain) {
      chunks.push_back({b, std::min(b + grain, r.end)});
    }
  }
  return chunks;
}

/// Cuts `ranges` for `pool` and runs `process` once per chunk — serially,
/// or as pool tasks each filling a private partial — then merges the
/// partials in chunk order. The single merge point keeps serial and
/// parallel runs (and both execution paths) bit-identical by
/// construction.
MiniWarehouse::MdhfExecution RunChunks(
    const std::vector<RowChunk>& ranges, const ThreadPool* pool,
    const std::function<void(const RowChunk&,
                             MiniWarehouse::MdhfExecution*)>& process) {
  const int lanes = pool == nullptr ? 1 : pool->size() + 1;
  const std::vector<RowChunk> chunks = ChunkRanges(ranges, lanes);
  MiniWarehouse::MdhfExecution exec;
  if (pool == nullptr || chunks.size() < 2) {
    for (const auto& c : chunks) process(c, &exec);
    return exec;
  }
  std::vector<MiniWarehouse::MdhfExecution> partials(chunks.size());
  pool->ParallelFor(static_cast<std::int64_t>(chunks.size()),
                    [&](std::int64_t i) {
                      process(chunks[static_cast<std::size_t>(i)],
                              &partials[static_cast<std::size_t>(i)]);
                    });
  for (const auto& p : partials) {
    exec.rows_scanned += p.rows_scanned;
    exec.result.rows += p.result.rows;
    exec.result.units_sold += p.result.units_sold;
    exec.result.dollar_sales_cents += p.result.dollar_sales_cents;
  }
  return exec;
}

}  // namespace

MiniWarehouse::MiniWarehouse(StarSchema schema, std::uint64_t seed)
    : schema_(std::move(schema)) {
  Populate(seed);
  indexes_ = std::make_unique<IndexSet>(schema_, facts_);
}

MiniWarehouse::MiniWarehouse(StarSchema schema, std::uint64_t seed,
                             std::vector<FragAttr> cluster_attrs,
                             bool enable_summaries)
    : schema_(std::move(schema)) {
  Populate(seed);
  ClusterByFragment(std::move(cluster_attrs));
  // Indices are built AFTER the permutation: bit r of every bitmap refers
  // to the clustered physical row r, so range-restricted selections line
  // up with the fragment directory.
  indexes_ = std::make_unique<IndexSet>(schema_, facts_);
  if (enable_summaries) {
    // Measure prefix sums in the clustered order, so any coalesced run of
    // fully-covered fragments [b, e) aggregates as P[e] - P[b].
    const auto rows = static_cast<std::size_t>(row_count());
    units_prefix_.assign(rows + 1, 0);
    dollars_prefix_.assign(rows + 1, 0);
    for (std::size_t r = 0; r < rows; ++r) {
      units_prefix_[r + 1] = units_prefix_[r] + units_sold_[r];
      dollars_prefix_[r + 1] = dollars_prefix_[r] + dollar_sales_cents_[r];
    }
    summaries_enabled_ = true;
  }
}

void MiniWarehouse::Populate(std::uint64_t seed) {
  const std::int64_t max_rows = schema_.MaxFactCount();
  MDW_CHECK(max_rows <= 50'000'000,
            "schema too large to materialise; use the simulator instead");
  const int dims = schema_.num_dimensions();
  facts_.columns.assign(static_cast<std::size_t>(dims), {});

  // Reserve for the expected Binomial(max_rows, density) row count plus
  // four standard deviations (capped at the hard bound max_rows), so
  // population virtually never reallocates.
  const double expected =
      schema_.density() * static_cast<double>(max_rows);
  const double slack =
      4.0 * std::sqrt(expected * std::max(0.0, 1.0 - schema_.density()));
  const auto reserve_rows = static_cast<std::size_t>(std::min<double>(
      static_cast<double>(max_rows), expected + slack + 64.0));
  for (auto& column : facts_.columns) column.reserve(reserve_rows);
  units_sold_.reserve(reserve_rows);
  dollar_sales_cents_.reserve(reserve_rows);

  Rng rng(seed);
  // Enumerate every leaf-value combination (mixed radix over the leaf
  // cardinalities) and admit it with probability density.
  std::vector<std::int64_t> leaf_cards;
  for (DimId d = 0; d < dims; ++d) {
    leaf_cards.push_back(
        schema_.dimension(d).hierarchy().LeafCardinality());
  }
  std::vector<std::int64_t> combo(static_cast<std::size_t>(dims), 0);
  for (std::int64_t i = 0; i < max_rows; ++i) {
    if (rng.UniformReal() < schema_.density()) {
      for (DimId d = 0; d < dims; ++d) {
        facts_.columns[static_cast<std::size_t>(d)].push_back(
            combo[static_cast<std::size_t>(d)]);
      }
      units_sold_.push_back(rng.Uniform(1, 100));
      dollar_sales_cents_.push_back(rng.Uniform(100, 100'000));
    }
    // Advance the odometer.
    for (int d = dims - 1; d >= 0; --d) {
      auto& v = combo[static_cast<std::size_t>(d)];
      if (++v < leaf_cards[static_cast<std::size_t>(d)]) break;
      v = 0;
    }
  }
}

void MiniWarehouse::ClusterByFragment(std::vector<FragAttr> cluster_attrs) {
  cluster_frag_ =
      std::make_unique<Fragmentation>(&schema_, std::move(cluster_attrs));
  const std::int64_t frag_count = cluster_frag_->FragmentCount();
  const std::int64_t rows = row_count();
  const int dims = schema_.num_dimensions();

  // Each row's fragment is computed exactly once, here; queries never
  // re-derive it.
  std::vector<FragId> row_frag(static_cast<std::size_t>(rows));
  std::vector<std::int64_t> leaf(static_cast<std::size_t>(dims));
  for (std::int64_t row = 0; row < rows; ++row) {
    for (DimId d = 0; d < dims; ++d) {
      leaf[static_cast<std::size_t>(d)] =
          facts_.columns[static_cast<std::size_t>(d)]
                        [static_cast<std::size_t>(row)];
    }
    row_frag[static_cast<std::size_t>(row)] =
        cluster_frag_->FragmentOfRow(leaf);
  }

  // Counting sort into fragment-major order (stable: generation order is
  // preserved within a fragment).
  frag_offsets_.assign(static_cast<std::size_t>(frag_count) + 1, 0);
  for (const FragId f : row_frag) {
    ++frag_offsets_[static_cast<std::size_t>(f) + 1];
  }
  for (std::size_t f = 1; f < frag_offsets_.size(); ++f) {
    frag_offsets_[f] += frag_offsets_[f - 1];
  }
  std::vector<std::int64_t> cursor(frag_offsets_.begin(),
                                   frag_offsets_.end() - 1);
  std::vector<std::int64_t> new_pos(static_cast<std::size_t>(rows));
  for (std::int64_t row = 0; row < rows; ++row) {
    new_pos[static_cast<std::size_t>(row)] =
        cursor[static_cast<std::size_t>(
            row_frag[static_cast<std::size_t>(row)])]++;
  }

  const auto permute = [&](std::vector<std::int64_t>& column) {
    std::vector<std::int64_t> permuted(static_cast<std::size_t>(rows));
    for (std::int64_t row = 0; row < rows; ++row) {
      permuted[static_cast<std::size_t>(
          new_pos[static_cast<std::size_t>(row)])] =
          column[static_cast<std::size_t>(row)];
    }
    column = std::move(permuted);
  };
  for (auto& column : facts_.columns) permute(column);
  permute(units_sold_);
  permute(dollar_sales_cents_);
}

bool MiniWarehouse::ClusteredFor(const Fragmentation& fragmentation) const {
  return cluster_frag_ != nullptr && &fragmentation.schema() == &schema_ &&
         fragmentation.attrs() == cluster_frag_->attrs();
}

std::pair<std::int64_t, std::int64_t> MiniWarehouse::FragmentRows(
    FragId id) const {
  MDW_CHECK(clustered(), "warehouse is not fragment-clustered");
  MDW_CHECK(id >= 0 && id < cluster_frag_->FragmentCount(),
            "fragment id out of range");
  return {frag_offsets_[static_cast<std::size_t>(id)],
          frag_offsets_[static_cast<std::size_t>(id) + 1]};
}

bool MiniWarehouse::RowMatches(std::int64_t row,
                               const StarQuery& query) const {
  for (const auto& pred : query.predicates()) {
    const auto& h = schema_.dimension(pred.dim).hierarchy();
    const std::int64_t leaf =
        facts_.columns[static_cast<std::size_t>(pred.dim)]
                      [static_cast<std::size_t>(row)];
    const std::int64_t value = h.AncestorOfLeaf(leaf, pred.depth);
    if (std::find(pred.values.begin(), pred.values.end(), value) ==
        pred.values.end()) {
      return false;
    }
  }
  return true;
}

MiniWarehouse::AggregateResult MiniWarehouse::ExecuteFullScan(
    const StarQuery& query) const {
  AggregateResult result;
  for (std::int64_t row = 0; row < row_count(); ++row) {
    if (RowMatches(row, query)) {
      ++result.rows;
      result.units_sold += units_sold_[static_cast<std::size_t>(row)];
      result.dollar_sales_cents +=
          dollar_sales_cents_[static_cast<std::size_t>(row)];
    }
  }
  return result;
}

MiniWarehouse::AggregateResult MiniWarehouse::ExecuteWithBitmaps(
    const StarQuery& query) const {
  BitVector hits(row_count());
  hits.SetAll();
  for (const auto& pred : query.predicates()) {
    BitVector pred_rows(row_count());
    for (const auto value : pred.values) {
      pred_rows |= indexes_->Select(pred.dim, pred.depth, value);
    }
    hits &= pred_rows;
  }
  AggregateResult result;
  hits.ForEachSetBit([&](std::int64_t row) {
    ++result.rows;
    result.units_sold += units_sold_[static_cast<std::size_t>(row)];
    result.dollar_sales_cents +=
        dollar_sales_cents_[static_cast<std::size_t>(row)];
  });
  return result;
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteWithFragmentation(
    const StarQuery& query, const Fragmentation& fragmentation) const {
  MDW_CHECK(&fragmentation.schema() == &schema_,
            "fragmentation must belong to this warehouse's schema");
  const QueryPlanner planner(&schema_, &fragmentation);
  return ExecuteWithPlan(query, planner.Plan(query));
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteWithPlan(
    const StarQuery& query, const QueryPlan& plan) const {
  return ExecuteWithPlan(query, plan, /*pool=*/nullptr);
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteWithPlan(
    const StarQuery& query, const QueryPlan& plan,
    const ThreadPool* pool) const {
  return ExecuteWithPlan(query, plan, pool, /*scratch=*/nullptr);
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteWithPlan(
    const StarQuery& query, const QueryPlan& plan, const ThreadPool* pool,
    ExecScratch* scratch) const {
  const Fragmentation& fragmentation = plan.fragmentation();
  MDW_CHECK(&fragmentation.schema() == &schema_,
            "plan's fragmentation must belong to this warehouse's schema");

  ExecScratch local;
  ExecScratch& s = scratch != nullptr ? *scratch : local;
  ResolveBitmapAccesses(query, plan, &s.accesses_);
  const std::vector<BitmapAccess>& accesses = s.accesses_;
  MdhfExecution exec = ClusteredFor(fragmentation)
                           ? ExecuteClustered(plan, accesses, pool)
                           : ExecuteUnclustered(plan, accesses, pool);
  exec.query_class = plan.query_class();
  exec.io_class = plan.io_class();
  exec.bitmaps_read = plan.BitmapsPerFragment();
  exec.fragments_processed = plan.FragmentCount();
  return exec;
}

void MiniWarehouse::ResolveBitmapAccesses(
    const StarQuery& query, const QueryPlan& plan,
    std::vector<BitmapAccess>* out) const {
  const Fragmentation& fragmentation = plan.fragmentation();
  std::vector<BitmapAccess>& accesses = *out;
  accesses.clear();
  for (const auto& access : plan.accesses()) {
    if (!access.needs_bitmap) continue;
    const Predicate* pred = query.PredicateOn(access.dim);
    MDW_CHECK(pred != nullptr, "plan access without predicate");
    const Depth frag_depth = fragmentation.FragDepthOf(access.dim);
    // Suffix-only evaluation (skipping the prefix bits shared within a
    // fragment) is sound only if every IN-list value lies below the *same*
    // fragmentation-level ancestor; a foreign suffix pattern would
    // otherwise match unrelated rows inside the other selected fragments.
    const auto& h = schema_.dimension(access.dim).hierarchy();
    bool same_ancestor = frag_depth >= 0;
    if (frag_depth >= 0) {
      const std::int64_t first =
          h.Ancestor(pred->values.front(), pred->depth, frag_depth);
      for (const auto value : pred->values) {
        if (h.Ancestor(value, pred->depth, frag_depth) != first) {
          same_ancestor = false;
          break;
        }
      }
    }
    accesses.push_back({pred, frag_depth, same_ancestor});
  }
}

void MiniWarehouse::ProcessRowRange(std::int64_t begin, std::int64_t end,
                                    const std::vector<BitmapAccess>& accesses,
                                    MdhfExecution* partial) const {
  partial->rows_scanned += end - begin;
  auto& agg = partial->result;
  if (accesses.empty()) {
    // Q1/Q3 clustered hits: fragment membership IS the filter — every row
    // of the range is a hit.
    for (std::int64_t row = begin; row < end; ++row) {
      ++agg.rows;
      agg.units_sold += units_sold_[static_cast<std::size_t>(row)];
      agg.dollar_sales_cents +=
          dollar_sales_cents_[static_cast<std::size_t>(row)];
    }
    return;
  }
  // Bitmap filter over this range only: O(range), never O(table).
  BitVector filter(end - begin);
  filter.SetAll();
  for (const auto& a : accesses) {
    BitVector pred_rows(end - begin);
    for (const auto value : a.pred->values) {
      if (a.same_ancestor) {
        pred_rows |= indexes_->SelectWithinFragmentSlice(
            a.pred->dim, a.pred->depth, value, a.frag_depth, begin, end);
      } else {
        pred_rows |= indexes_->SelectSlice(a.pred->dim, a.pred->depth, value,
                                           begin, end);
      }
    }
    filter &= pred_rows;
  }
  filter.ForEachSetBit([&](std::int64_t i) {
    const std::int64_t row = begin + i;
    ++agg.rows;
    agg.units_sold += units_sold_[static_cast<std::size_t>(row)];
    agg.dollar_sales_cents +=
        dollar_sales_cents_[static_cast<std::size_t>(row)];
  });
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteClustered(
    const QueryPlan& plan, const std::vector<BitmapAccess>& accesses,
    const ThreadPool* pool) const {
  // Single-fragment fast path (the paper's IOC1-opt shape): the one
  // fragment id falls out of the slices directly, skipping the odometer
  // enumeration and its std::function indirection — for a fully-covered
  // fragment the whole query is then three prefix-sum lookups.
  if (plan.FragmentCount() == 1 && cluster_frag_->num_attrs() > 0) {
    FragId id = 0;
    bool covered = plan.coverable();
    for (int i = 0; i < cluster_frag_->num_attrs(); ++i) {
      const std::int64_t c = plan.slice(i).front();
      MDW_CHECK(c >= 0 && c < cluster_frag_->CardOf(i),
                "coordinate out of range");  // as FragmentIdOf enforces
      id = id * cluster_frag_->CardOf(i) + c;
      covered = covered && plan.covered(i).front();
    }
    const std::int64_t begin = frag_offsets_[static_cast<std::size_t>(id)];
    const std::int64_t end = frag_offsets_[static_cast<std::size_t>(id) + 1];
    MdhfExecution exec;
    if (summaries_enabled_ && covered) {
      const auto b = static_cast<std::size_t>(begin);
      const auto e = static_cast<std::size_t>(end);
      exec.result.rows = end - begin;
      exec.result.units_sold = units_prefix_[e] - units_prefix_[b];
      exec.result.dollar_sales_cents = dollars_prefix_[e] - dollars_prefix_[b];
      exec.rows_summarized = end - begin;
      exec.fragments_summarized = 1;
      return exec;
    }
    if (begin == end) return exec;
    return RunChunks({{begin, end}}, pool,
                     [&](const RowChunk& c, MdhfExecution* partial) {
                       ProcessRowRange(c.begin, c.end, accesses, partial);
                     });
  }

  // Directory walk: the plan's fragments map to physical row ranges;
  // adjacent selected fragments coalesce into maximal runs (fragment ids
  // arrive in ascending allocation order, and the layout is fragment-
  // major, so ranges are ascending and disjoint). Fully-covered fragments
  // split off into summary runs answered from the prefix sums; residual
  // fragments keep the range-scan + bitmap path.
  std::vector<RowChunk> scan_ranges;
  std::vector<RowChunk> summary_ranges;
  std::int64_t fragments_summarized = 0;
  plan.ForEachFragment([&](FragId id, bool covered) {
    const bool summarize = summaries_enabled_ && covered;
    if (summarize) ++fragments_summarized;  // empty fragments included
    const std::int64_t begin = frag_offsets_[static_cast<std::size_t>(id)];
    const std::int64_t end = frag_offsets_[static_cast<std::size_t>(id) + 1];
    if (begin == end) return;
    std::vector<RowChunk>& ranges = summarize ? summary_ranges : scan_ranges;
    if (!ranges.empty() && ranges.back().end == begin) {
      ranges.back().end = end;
    } else {
      ranges.push_back({begin, end});
    }
  });

  MdhfExecution exec;
  if (!scan_ranges.empty()) {
    exec = RunChunks(scan_ranges, pool,
                     [&](const RowChunk& c, MdhfExecution* partial) {
                       ProcessRowRange(c.begin, c.end, accesses, partial);
                     });
  }
  // Summary runs merge after the scan partials, in ascending range order:
  // one fixed merge sequence regardless of the worker count, and integer
  // sums besides, so the whole record is bit-identical at any degree.
  for (const auto& r : summary_ranges) {
    const auto b = static_cast<std::size_t>(r.begin);
    const auto e = static_cast<std::size_t>(r.end);
    exec.result.rows += r.end - r.begin;
    exec.result.units_sold += units_prefix_[e] - units_prefix_[b];
    exec.result.dollar_sales_cents += dollars_prefix_[e] - dollars_prefix_[b];
    exec.rows_summarized += r.end - r.begin;
  }
  exec.fragments_summarized = fragments_summarized;
  return exec;
}

MiniWarehouse::MdhfExecution MiniWarehouse::ExecuteUnclustered(
    const QueryPlan& plan, const std::vector<BitmapAccess>& accesses,
    const ThreadPool* pool) const {
  const Fragmentation& fragmentation = plan.fragmentation();

  // Sorted fragment membership (ForEachFragment enumerates ascending ids);
  // when the plan covers every fragment the per-row mapping is skipped.
  std::vector<FragId> frag_ids;
  plan.ForEachFragment([&](FragId id) { frag_ids.push_back(id); });
  const bool all_fragments =
      static_cast<std::int64_t>(frag_ids.size()) ==
      fragmentation.FragmentCount();

  // Bitmap filter for the predicates the plan marks as needing bitmaps;
  // all-ones when none do (Q1/Q3: fragment membership is the filter).
  // Built full-width once, shared read-only by all workers.
  BitVector filter(row_count());
  filter.SetAll();
  for (const auto& a : accesses) {
    BitVector pred_rows(row_count());
    for (const auto value : a.pred->values) {
      if (a.same_ancestor) {
        pred_rows |= indexes_->SelectWithinFragment(a.pred->dim, a.pred->depth,
                                                    value, a.frag_depth);
      } else {
        pred_rows |= indexes_->Select(a.pred->dim, a.pred->depth, value);
      }
    }
    filter &= pred_rows;
  }

  // Per-depth ancestor probes, resolved once per query: the fragment id of
  // a row is the mixed-radix combination of leaf / LeavesPer(frag depth)
  // over the fragmentation attributes, read straight from the fact
  // columns — no per-row temporaries (FragmentOfRow would build a
  // coordinate vector per row).
  struct FragProbe {
    const std::vector<std::int64_t>* leaves;  ///< fact column of the dim
    std::int64_t leaves_per;  ///< leaf values per fragmentation-level value
    std::int64_t card;        ///< attribute cardinality (radix)
  };
  std::vector<FragProbe> probes;
  probes.reserve(static_cast<std::size_t>(fragmentation.num_attrs()));
  for (int i = 0; i < fragmentation.num_attrs(); ++i) {
    const FragAttr& a = fragmentation.attr(i);
    const auto& h = schema_.dimension(a.dim).hierarchy();
    probes.push_back({&facts_.columns[static_cast<std::size_t>(a.dim)],
                      h.LeavesPer(a.depth), fragmentation.CardOf(i)});
  }

  return RunChunks({{0, row_count()}}, pool, [&](const RowChunk& chunk,
                                                 MdhfExecution* partial) {
    auto& agg = partial->result;
    for (std::int64_t row = chunk.begin; row < chunk.end; ++row) {
      if (!all_fragments) {
        FragId fid = 0;
        for (const auto& p : probes) {
          fid = fid * p.card +
                (*p.leaves)[static_cast<std::size_t>(row)] / p.leaves_per;
        }
        if (!std::binary_search(frag_ids.begin(), frag_ids.end(), fid)) {
          continue;
        }
      }
      ++partial->rows_scanned;
      if (!filter.Get(row)) continue;
      ++agg.rows;
      agg.units_sold += units_sold_[static_cast<std::size_t>(row)];
      agg.dollar_sales_cents +=
          dollar_sales_cents_[static_cast<std::size_t>(row)];
    }
  });
}

}  // namespace mdw
