#include "core/result_table.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace mdw {

namespace {

std::int64_t SumOf(const GroupRow& row, const AggItem& item) {
  if (item.fn == AggFn::kCount) return row.rows;
  return item.measure == MeasureId::kUnitsSold ? row.units_sold
                                               : row.dollar_sales_cents;
}

/// Exact three-way comparison of item values in rows `a` and `b`:
/// negative when a < b. SUM/COUNT compare int64 directly; AVG compares
/// the rationals sum_a/rows_a vs sum_b/rows_b by 128-bit cross
/// multiplication (rows > 0 for every emitted group), so ordering never
/// depends on floating-point rounding.
int CompareItem(const GroupRow& a, const GroupRow& b, const AggItem& item) {
  const std::int64_t sa = SumOf(a, item);
  const std::int64_t sb = SumOf(b, item);
  if (item.fn != AggFn::kAvg) {
    return sa < sb ? -1 : (sa > sb ? 1 : 0);
  }
  const __int128 lhs = static_cast<__int128>(sa) * b.rows;
  const __int128 rhs = static_cast<__int128>(sb) * a.rows;
  return lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
}

}  // namespace

double ResultTable::Value(int i, int item) const {
  MDW_CHECK(i >= 0 && i < static_cast<int>(rows.size()),
            "ResultTable row out of range");
  MDW_CHECK(item >= 0 && item < static_cast<int>(spec.items.size()),
            "ResultTable item out of range");
  const GroupRow& row = rows[i];
  const AggItem& it = spec.items[item];
  const double sum = static_cast<double>(SumOf(row, it));
  if (it.fn == AggFn::kAvg) {
    return row.rows == 0 ? 0.0 : sum / static_cast<double>(row.rows);
  }
  return sum;
}

std::int64_t ResultTable::MeasureSum(int i, int item) const {
  MDW_CHECK(i >= 0 && i < static_cast<int>(rows.size()),
            "ResultTable row out of range");
  MDW_CHECK(item >= 0 && item < static_cast<int>(spec.items.size()),
            "ResultTable item out of range");
  return SumOf(rows[i], spec.items[item]);
}

ResultTable MakeResultTable(AggregateSpec spec, std::optional<GroupBy> group_by,
                            std::optional<OrderBy> order_by,
                            std::vector<GroupRow> rows) {
  ResultTable table{std::move(spec), group_by, order_by, std::move(rows)};
  if (!order_by.has_value()) return table;
  MDW_CHECK(order_by->item >= 0 &&
                order_by->item < static_cast<int>(table.spec.items.size()),
            "ORDER BY item out of range of the aggregate spec");
  const AggItem item = table.spec.items[order_by->item];
  const bool desc = order_by->descending;
  const auto less = [item, desc](const GroupRow& a, const GroupRow& b) {
    const int cmp = CompareItem(a, b, item);
    if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
    return a.key < b.key;  // stable, direction-independent tie-break
  };
  const std::int64_t limit = order_by->limit;
  if (limit > 0 && limit < static_cast<std::int64_t>(table.rows.size())) {
    // Deterministic top-k: heap-select the k best, then emit in order.
    std::partial_sort(table.rows.begin(), table.rows.begin() + limit,
                      table.rows.end(), less);
    table.rows.resize(static_cast<std::size_t>(limit));
  } else {
    std::sort(table.rows.begin(), table.rows.end(), less);
  }
  return table;
}

}  // namespace mdw
