#ifndef MDW_CORE_RESULT_TABLE_H_
#define MDW_CORE_RESULT_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "fragment/star_query.h"

namespace mdw {

/// One group's integer partials. Execution always accumulates the same
/// three integers (row count + both measure sums) regardless of the
/// query's AggregateSpec — AVG and COUNT are derived views, so results
/// stay bit-identical at any worker x shard count and any spec.
struct GroupRow {
  /// Value of the GROUP BY attribute (the group key), ascending unless an
  /// ORDER BY reorders the table. 0 for the degenerate zero-group row of
  /// an ungrouped query.
  std::int64_t key = 0;
  std::int64_t rows = 0;
  std::int64_t units_sold = 0;
  std::int64_t dollar_sales_cents = 0;
  /// How many of `rows` were answered from fragment prefix sums instead
  /// of fact scans. Sums to the execution-wide rows_summarized counter.
  std::int64_t rows_summarized = 0;

  friend bool operator==(const GroupRow& a, const GroupRow& b) = default;
};

/// The functional result of a star query: one row per non-empty group
/// (groups with no matching fact rows are absent, like SQL GROUP BY), in
/// ascending key order unless `order_by` re-sorted and truncated it.
/// An ungrouped query yields exactly one row with key 0 (`group_by`
/// disengaged) — the scalar AggregateResult is this degenerate case.
struct ResultTable {
  AggregateSpec spec;
  std::optional<GroupBy> group_by;
  std::optional<OrderBy> order_by;
  std::vector<GroupRow> rows;

  /// Presentation value of SELECT item `item` in row `i`: the integer sum
  /// or count for SUM/COUNT, sum/rows for AVG. Ordering never uses this —
  /// ties and AVG comparisons are decided in exact integer arithmetic.
  double Value(int i, int item) const;

  /// The exact integer measure sum item `item` reads in row `i`
  /// (row count for COUNT).
  std::int64_t MeasureSum(int i, int item) const;

  friend bool operator==(const ResultTable& a, const ResultTable& b) = default;
};

/// Assembles a ResultTable from execution's per-group partials: keeps
/// `rows` as handed in (callers pass them key-ascending), then applies
/// `order_by` if present — a deterministic partial sort on the ordered
/// item's exact value with ties broken by ascending key, truncated to
/// `limit` rows (limit 0 = keep all).
ResultTable MakeResultTable(AggregateSpec spec, std::optional<GroupBy> group_by,
                            std::optional<OrderBy> order_by,
                            std::vector<GroupRow> rows);

}  // namespace mdw

#endif  // MDW_CORE_RESULT_TABLE_H_
