#!/usr/bin/env python3
"""Compare a bench_micro_core run against the committed baseline.

Fails (exit 1) when any tracked benchmark regresses:

  - wall time (real_time) grows by more than --max-regression (default
    30%) relative to the baseline, after optional calibration (see
    below), or
  - a tracked *work counter* (rows_scanned_per_query, skew, ...) grows
    by more than --counter-slack. Work counters are deterministic and
    machine-independent, so they gate much tighter than wall time — an
    executor change that scans more rows or skews the shard split fails
    here even on a noisy runner.

Calibration: absolute nanoseconds differ between the machine that
recorded the baseline and the CI runner. --calibrate NAME scales the
current run's times by baseline(NAME)/current(NAME) — the named
benchmark acts as a machine-speed probe — so the gate compares
*relative* cost, not raw clock speed. The probe must exist in both
files.

Usage:
  tools/bench_compare.py bench/BENCH_baseline.json BENCH_micro.json \
      [--max-regression 0.30] [--counter-slack 0.02] \
      [--track BM_A,BM_B] [--counters rows_scanned_per_query,skew] \
      [--calibrate BM_BitVectorPopcount/1048576]
"""

import argparse
import json
import sys

DEFAULT_TRACKED = [
    "BM_MdhfFragmentConfined",
    "BM_MdhfCoveredAggregate",
    "BM_MdhfShardedScan",
    "BM_MdhfPagedScan",
    "BM_MultiUserServe",
    "BM_GroupByRollup",
    "BM_TopK",
]
# Deterministic quality counters; the gate fails on GROWTH, so each one is
# oriented so that bigger = worse (hence unfairness = 1 - Jain, not Jain).
DEFAULT_COUNTERS = [
    "rows_scanned_per_query",
    "rows_summarized_per_query",
    "skew",
    "pages_read_per_query",
    "p99_response_vt",
    "unfairness",
    "rejected",
    # Storage-health counters: zero in every healthy benchmark run, so ANY
    # retry or checksum failure on the paged-scan bench is a regression.
    "io_retries_per_query",
    "checksum_failures_per_query",
    # Deadline-health counters: the serving bench configures no deadline,
    # so any miss or degraded execution means the deadline machinery
    # leaked into the default path.
    "deadline_missed_per_query",
    "degraded_per_query",
]

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Returns {name: entry} for plain iteration runs of a gbench JSON."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        out[entry["name"]] = entry
    return out


def real_time_ns(entry):
    return entry["real_time"] * TIME_UNIT_NS[entry.get("time_unit", "ns")]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional wall-time growth")
    parser.add_argument("--counter-slack", type=float, default=0.02,
                        help="allowed fractional work-counter growth")
    parser.add_argument("--track", default=",".join(DEFAULT_TRACKED),
                        help="comma-separated benchmark name prefixes")
    parser.add_argument("--counters", default=",".join(DEFAULT_COUNTERS),
                        help="comma-separated counter names to gate on")
    parser.add_argument("--calibrate", default=None,
                        help="benchmark name used as machine-speed probe")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    prefixes = [p for p in args.track.split(",") if p]
    counters = [c for c in args.counters.split(",") if c]

    scale = 1.0
    if args.calibrate:
        if args.calibrate not in baseline or args.calibrate not in current:
            print(f"FAIL: calibration benchmark '{args.calibrate}' missing "
                  "from baseline or current run")
            return 1
        scale = (real_time_ns(baseline[args.calibrate]) /
                 real_time_ns(current[args.calibrate]))
        print(f"calibration: {args.calibrate} -> scaling current times "
              f"by {scale:.3f}")

    tracked = [name for name in baseline
               if any(name.startswith(p) for p in prefixes)]
    if not tracked:
        print("FAIL: no tracked benchmarks found in the baseline "
              f"(prefixes: {prefixes})")
        return 1

    failures = []
    # A tracked-prefix benchmark that exists only in the current run would
    # otherwise be silently ungated forever; force a baseline refresh.
    for name in sorted(current):
        if any(name.startswith(p) for p in prefixes) and name not in baseline:
            failures.append(
                f"{name}: present in current run but not in the baseline — "
                "refresh bench/BENCH_baseline.json to start gating it")
    print(f"{'benchmark':55} {'base':>12} {'now':>12} {'ratio':>7}  status")
    for name in sorted(tracked):
        if name not in current:
            failures.append(f"{name}: missing from current run (bench rot?)")
            print(f"{name:55} {'-':>12} {'-':>12} {'-':>7}  MISSING")
            continue
        base_ns = real_time_ns(baseline[name])
        now_ns = real_time_ns(current[name]) * scale
        ratio = now_ns / base_ns if base_ns > 0 else 1.0
        ok = ratio <= 1.0 + args.max_regression
        print(f"{name:55} {base_ns:10.0f}ns {now_ns:10.0f}ns {ratio:7.2f}  "
              f"{'ok' if ok else 'REGRESSED'}")
        if not ok:
            failures.append(
                f"{name}: real_time regressed {100 * (ratio - 1):.0f}% "
                f"(limit {100 * args.max_regression:.0f}%)")
        for counter in counters:
            if counter not in baseline[name]:
                # Not every benchmark emits every gated counter — but one
                # that appears only in the current run would be silently
                # ungated forever, so force a baseline refresh (mirrors
                # the new-benchmark check above).
                if counter in current[name]:
                    failures.append(
                        f"{name}: counter '{counter}' present in current "
                        "run but not in the baseline — refresh "
                        "bench/BENCH_baseline.json to start gating it")
                continue
            base_v = float(baseline[name][counter])
            if counter not in current[name]:
                failures.append(f"{name}: counter '{counter}' disappeared")
                continue
            now_v = float(current[name][counter])
            limit = abs(base_v) * args.counter_slack
            if now_v > base_v + limit:
                failures.append(
                    f"{name}: counter '{counter}' grew {base_v:g} -> "
                    f"{now_v:g} (slack {100 * args.counter_slack:.0f}%)")

    if failures:
        print("\nPERF GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nperf gate ok: {len(tracked)} tracked benchmarks within "
          f"{100 * args.max_regression:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
