#!/usr/bin/env bash
# Checks intra-repo markdown links: every inline [text](target) whose
# target is not an external URL or a pure #anchor must resolve to a file
# or directory, relative to the linking file or to the repo root.
# CI's docs job runs this; run it locally before touching docs.
set -u
cd "$(dirname "$0")/.." || exit 1

if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  # --others --exclude-standard: also check not-yet-committed docs.
  mapfile -t files < <(git ls-files --cached --others --exclude-standard '*.md')
else
  mapfile -t files < <(find . -name '*.md' -not -path './build/*' | sed 's|^\./||')
fi

status=0
checked=0
for file in "${files[@]}"; do
  dir=$(dirname "$file")
  # Inline-link targets, stripped of optional titles and #anchors.
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    checked=$((checked + 1))
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN LINK: $file -> $target" >&2
      status=1
    fi
  done < <(grep -oE '\[[^][]*\]\([^()]+\)' "$file" \
             | sed -E 's/^\[[^][]*\]\(//; s/\)$//; s/ +"[^"]*"$//; s/#.*$//' \
             | sort -u)
done

echo "check_links: $checked intra-repo link(s) checked across ${#files[@]} markdown file(s)"
exit $status
