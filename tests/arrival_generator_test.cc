#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "schema/apb1.h"
#include "workload/arrival_generator.h"

namespace mdw {
namespace {

constexpr std::uint64_t kSeed = 42;

class ArrivalGeneratorTest : public ::testing::Test {
 protected:
  ArrivalGeneratorTest() : schema_(MakeTinyApb1Schema()) {}

  StarSchema schema_;
};

/// Interarrival gaps of a trace, including the gap from virtual time 0 to
/// the first arrival.
std::vector<double> Gaps(const std::vector<Arrival>& arrivals) {
  std::vector<double> gaps;
  std::int64_t prev = 0;
  for (const auto& a : arrivals) {
    gaps.push_back(static_cast<double>(a.vt - prev));
    prev = a.vt;
  }
  return gaps;
}

TEST_F(ArrivalGeneratorTest, PoissonInterarrivalMoments) {
  ArrivalConfig config;
  config.mean_interarrival_vt = 200.0;
  config.seed = kSeed;
  ArrivalGenerator generator(&schema_, config);
  const auto arrivals = generator.Generate(40000);
  const auto gaps = Gaps(arrivals);

  const double mean =
      std::accumulate(gaps.begin(), gaps.end(), 0.0) / gaps.size();
  double var = 0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= gaps.size();

  // Exponential interarrivals: mean == stddev == the configured gap.
  EXPECT_NEAR(mean, 200.0, 200.0 * 0.03);
  EXPECT_NEAR(var, 200.0 * 200.0, 200.0 * 200.0 * 0.10);
  // Open loop: virtual times never go backwards.
  for (double g : gaps) EXPECT_GE(g, 0.0);
}

TEST_F(ArrivalGeneratorTest, UniformStreamsWithoutSkew) {
  ArrivalConfig config;
  config.num_streams = 64;
  config.stream_skew_theta = 0.0;
  config.mean_interarrival_vt = 10.0;
  config.seed = kSeed;
  const auto arrivals = ArrivalGenerator(&schema_, config).Generate(50000);

  std::vector<std::int64_t> counts(64, 0);
  for (const auto& a : arrivals) {
    ASSERT_GE(a.stream, 0);
    ASSERT_LT(a.stream, 64);
    ++counts[static_cast<std::size_t>(a.stream)];
  }
  const auto [min_it, max_it] =
      std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*min_it, 0);
  EXPECT_LT(static_cast<double>(*max_it) / static_cast<double>(*min_it),
            1.5);
}

TEST_F(ArrivalGeneratorTest, ZipfSkewMakesLowStreamsHot) {
  ArrivalConfig config;
  config.num_streams = 64;
  config.stream_skew_theta = 0.6;
  config.mean_interarrival_vt = 10.0;
  config.seed = kSeed;
  const auto arrivals = ArrivalGenerator(&schema_, config).Generate(50000);

  std::vector<std::int64_t> counts(64, 0);
  for (const auto& a : arrivals) {
    ++counts[static_cast<std::size_t>(a.stream)];
  }
  // Stream 0 is the hottest tenant by a wide margin...
  EXPECT_GT(counts[0], 5 * counts[63]);
  // ...the head holds most of the traffic (theta 0.6 puts ~43% of the
  // mass on the first 8 of 64 streams)...
  const std::int64_t head =
      std::accumulate(counts.begin(), counts.begin() + 8, std::int64_t{0});
  EXPECT_GT(static_cast<double>(head) / arrivals.size(), 0.35);
  // ...and the rank-frequency shape decays: each coarse rank bucket draws
  // more than the next.
  for (int b = 0; b + 1 < 4; ++b) {
    const auto bucket = [&](int k) {
      return std::accumulate(counts.begin() + k * 16,
                             counts.begin() + (k + 1) * 16, std::int64_t{0});
    };
    EXPECT_GT(bucket(b), bucket(b + 1)) << "bucket " << b;
  }
}

TEST_F(ArrivalGeneratorTest, ExactReplayForSameSeed) {
  ArrivalConfig config;
  config.num_streams = 16;
  config.stream_skew_theta = 0.3;
  config.query_skew_theta = 0.2;
  config.mean_interarrival_vt = 50.0;
  config.mix = {QueryType::k1Month, QueryType::k1Month1Group,
                QueryType::k1Group1Store};
  config.seed = kSeed;

  ArrivalGenerator a(&schema_, config);
  ArrivalGenerator b(&schema_, config);
  const auto ta = a.Generate(500);
  const auto tb = b.Generate(500);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].vt, tb[i].vt);
    EXPECT_EQ(ta[i].stream, tb[i].stream);
    EXPECT_EQ(ta[i].query.name(), tb[i].query.name());
    ASSERT_EQ(ta[i].query.predicates().size(),
              tb[i].query.predicates().size());
    for (std::size_t p = 0; p < ta[i].query.predicates().size(); ++p) {
      EXPECT_EQ(ta[i].query.predicates()[p].dim,
                tb[i].query.predicates()[p].dim);
      EXPECT_EQ(ta[i].query.predicates()[p].depth,
                tb[i].query.predicates()[p].depth);
      EXPECT_EQ(ta[i].query.predicates()[p].values,
                tb[i].query.predicates()[p].values);
    }
  }

  // A different seed diverges somewhere in the same window.
  config.seed = kSeed + 1;
  const auto tc = ArrivalGenerator(&schema_, config).Generate(500);
  bool differs = false;
  for (std::size_t i = 0; i < tc.size() && !differs; ++i) {
    differs = tc[i].vt != ta[i].vt || tc[i].stream != ta[i].stream ||
              tc[i].query.name() != ta[i].query.name();
  }
  EXPECT_TRUE(differs);
}

TEST_F(ArrivalGeneratorTest, NextAndGenerateAgree) {
  ArrivalConfig config;
  config.num_streams = 4;
  config.mean_interarrival_vt = 30.0;
  config.mix = {QueryType::k1Quarter, QueryType::k1Store};
  config.seed = kSeed;

  ArrivalGenerator batch(&schema_, config);
  ArrivalGenerator stepwise(&schema_, config);
  const auto trace = batch.Generate(100);
  for (const auto& expected : trace) {
    const Arrival got = stepwise.Next();
    EXPECT_EQ(got.vt, expected.vt);
    EXPECT_EQ(got.stream, expected.stream);
    EXPECT_EQ(got.query.name(), expected.query.name());
  }
}

TEST_F(ArrivalGeneratorTest, TraceIsSortedAndPartitionedByStream) {
  ArrivalConfig config;
  config.num_streams = 8;
  config.stream_skew_theta = 0.4;
  config.mean_interarrival_vt = 20.0;
  config.mix = {QueryType::k1Month1Group, QueryType::k1Quarter};
  config.seed = kSeed;
  const auto arrivals = ArrivalGenerator(&schema_, config).Generate(2000);

  std::int64_t prev = 0;
  std::vector<std::int64_t> per_stream(8, 0);
  for (const auto& a : arrivals) {
    EXPECT_GE(a.vt, prev);  // ready for QueryScheduler::Run as-is
    prev = a.vt;
    ASSERT_GE(a.stream, 0);
    ASSERT_LT(a.stream, 8);
    ++per_stream[static_cast<std::size_t>(a.stream)];
    // Only the configured mix is drawn.
    EXPECT_TRUE(a.query.name() == "1MONTH1GROUP" ||
                a.query.name() == "1QUARTER")
        << a.query.name();
  }
  EXPECT_EQ(std::accumulate(per_stream.begin(), per_stream.end(),
                            std::int64_t{0}),
            2000);
  // With mild skew every stream still gets traffic.
  for (std::int64_t c : per_stream) EXPECT_GT(c, 0);
}

}  // namespace
}  // namespace mdw
