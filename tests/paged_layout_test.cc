#include <gtest/gtest.h>

#include <set>

#include "core/paged_layout.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

class PagedLayoutTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    warehouse_ = new MiniWarehouse(MakeTinyApb1Schema(), /*seed=*/42);
  }
  static void TearDownTestSuite() {
    delete warehouse_;
    warehouse_ = nullptr;
  }

  static MiniWarehouse* warehouse_;
};

MiniWarehouse* PagedLayoutTest::warehouse_ = nullptr;

TEST_F(PagedLayoutTest, PositionsAreAPermutation) {
  const Fragmentation f(&warehouse_->schema(),
                        {{kApb1Time, 2}, {kApb1Product, 3}});
  const PagedLayout layout(warehouse_, LayoutOrder::kFragmentClustered, &f);
  std::set<std::int64_t> positions;
  for (std::int64_t row = 0; row < warehouse_->row_count(); ++row) {
    positions.insert(layout.PositionOfRow(row));
  }
  EXPECT_EQ(static_cast<std::int64_t>(positions.size()),
            warehouse_->row_count());
  EXPECT_EQ(*positions.begin(), 0);
  EXPECT_EQ(*positions.rbegin(), warehouse_->row_count() - 1);
}

TEST_F(PagedLayoutTest, BaselineKeepsInsertionOrder) {
  const PagedLayout layout(warehouse_, LayoutOrder::kGeneration);
  for (std::int64_t row = 0; row < warehouse_->row_count(); ++row) {
    EXPECT_EQ(layout.PositionOfRow(row), row);
  }
}

TEST_F(PagedLayoutTest, PageCount) {
  const PagedLayout layout(warehouse_, LayoutOrder::kGeneration);
  const auto tpp = warehouse_->schema().physical().TuplesPerPage();
  EXPECT_EQ(layout.page_count(),
            (warehouse_->row_count() + tpp - 1) / tpp);
}

TEST_F(PagedLayoutTest, SupportedQueryHitsFarFewerPagesUnderMdhf) {
  // The paper's Sec. 4.5 claim, measured on real rows: a supported query
  // finds its hits clustered in few pages under the MDHF layout and
  // spread across nearly all pages in insertion order.
  const Fragmentation f(&warehouse_->schema(),
                        {{kApb1Time, 2}, {kApb1Product, 3}});
  const PagedLayout mdhf(warehouse_, LayoutOrder::kFragmentClustered, &f);
  const PagedLayout heap(warehouse_, LayoutOrder::kArrival);
  const StarQuery q("1MONTH1GROUP",
                    {{kApb1Time, 2, {3}}, {kApb1Product, 3, {7}}});

  const auto clustered = mdhf.Analyze(q);
  const auto spread = heap.Analyze(q);
  EXPECT_EQ(clustered.hit_rows, spread.hit_rows);
  ASSERT_GT(clustered.hit_rows, 0);
  EXPECT_LT(clustered.pages_with_hits * 10, spread.pages_with_hits);
  EXPECT_GT(clustered.hits_per_hit_page, 5 * spread.hits_per_hit_page);
}

TEST_F(PagedLayoutTest, MdhfPagesMatchFragmentFootprint) {
  // A Q1 exact-match query's hits occupy exactly
  // ceil-ish(fragment rows / tuples-per-page) pages (+1 for the page
  // straddling the fragment boundary).
  const Fragmentation f(&warehouse_->schema(),
                        {{kApb1Time, 2}, {kApb1Product, 3}});
  const PagedLayout mdhf(warehouse_, LayoutOrder::kFragmentClustered, &f);
  const StarQuery q("1MONTH1GROUP",
                    {{kApb1Time, 2, {3}}, {kApb1Product, 3, {7}}});
  const auto stats = mdhf.Analyze(q);
  const auto tpp = warehouse_->schema().physical().TuplesPerPage();
  const std::int64_t min_pages = (stats.hit_rows + tpp - 1) / tpp;
  EXPECT_GE(stats.pages_with_hits, min_pages);
  EXPECT_LE(stats.pages_with_hits, min_pages + 1);
}

TEST_F(PagedLayoutTest, UnsupportedQueryGainsNothing) {
  // 1STORE is not supported by the month/group fragmentation: its hits
  // stay spread regardless of the layout.
  const Fragmentation f(&warehouse_->schema(),
                        {{kApb1Time, 2}, {kApb1Product, 3}});
  const PagedLayout mdhf(warehouse_, LayoutOrder::kFragmentClustered, &f);
  const PagedLayout heap(warehouse_, LayoutOrder::kArrival);
  const StarQuery q("1STORE", {{kApb1Customer, 1, {17}}});
  const auto clustered = mdhf.Analyze(q);
  const auto spread = heap.Analyze(q);
  EXPECT_NEAR(static_cast<double>(clustered.pages_with_hits),
              static_cast<double>(spread.pages_with_hits),
              0.2 * static_cast<double>(spread.pages_with_hits));
}

TEST_F(PagedLayoutTest, Q3QueryAlsoClusters) {
  // A quarter query on a month fragmentation: hits are a contiguous run
  // of fragments, still clustered.
  const Fragmentation f(&warehouse_->schema(),
                        {{kApb1Time, 2}, {kApb1Product, 3}});
  const PagedLayout mdhf(warehouse_, LayoutOrder::kFragmentClustered, &f);
  const PagedLayout heap(warehouse_, LayoutOrder::kArrival);
  const StarQuery q("1QUARTER", {{kApb1Time, 1, {2}}});
  EXPECT_LT(mdhf.Analyze(q).pages_with_hits,
            heap.Analyze(q).pages_with_hits);
}

TEST_F(PagedLayoutTest, EmptyQueryTouchesAllPages) {
  const PagedLayout heap(warehouse_, LayoutOrder::kArrival);
  const StarQuery q("ALL", {});
  const auto stats = heap.Analyze(q);
  EXPECT_EQ(stats.hit_rows, warehouse_->row_count());
  EXPECT_EQ(stats.pages_with_hits, heap.page_count());
}

}  // namespace
}  // namespace mdw
