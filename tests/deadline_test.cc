// End-to-end deadline and cancellation tests: the cooperative token
// layer (exactness: a tripped token yields a typed status and no
// aggregate, an untripped one leaves results bit-identical), the
// deadline-aware virtual-time scheduler (provable admission rejection,
// queue-timeout shedding, degradation to covered-only, SRPT), and the
// serving path under wall-clock budgets and injected storage faults.

#include <gtest/gtest.h>
#include <stdlib.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/thread_pool.h"
#include "core/mini_warehouse.h"
#include "core/warehouse.h"
#include "fragment/fragmentation.h"
#include "fragment/query_planner.h"
#include "fragment/star_query.h"
#include "schema/apb1.h"
#include "sched/query_scheduler.h"
#include "storage/io_fault.h"
#include "workload/arrival_generator.h"

namespace mdw {
namespace {

constexpr std::uint64_t kSeed = 42;

std::vector<FragAttr> MonthGroup() {
  return {{kApb1Time, 2}, {kApb1Product, 3}};
}

Warehouse TinyMaterialized(int workers, int shards = 1) {
  return Warehouse({.schema = MakeTinyApb1Schema(),
                    .fragmentation = MonthGroup(),
                    .backend = BackendKind::kMaterialized,
                    .seed = kSeed,
                    .num_workers = workers,
                    .num_shards = shards});
}

class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TEST_TMPDIR");
    std::string tmpl =
        std::string(base != nullptr ? base : "/tmp") + "/mdw_deadline_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* got = ::mkdtemp(buf.data());
    EXPECT_NE(got, nullptr);
    path_ = got != nullptr ? got : tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Token semantics

TEST(CancellationTest, TokenStatesAndStatuses) {
  const CancellationToken unarmed;
  EXPECT_FALSE(unarmed.armed());
  EXPECT_FALSE(unarmed.ShouldStop());
  EXPECT_TRUE(unarmed.CancelStatus().ok());
  unarmed.Cancel();  // no-op, must not crash
  EXPECT_FALSE(unarmed.ShouldStop());

  const CancellationToken manual = CancellationToken::Manual();
  EXPECT_TRUE(manual.armed());
  EXPECT_FALSE(manual.ShouldStop());
  manual.Cancel();
  EXPECT_TRUE(manual.ShouldStop());
  EXPECT_EQ(manual.CancelStatus().code(), StatusCode::kCancelled);
  EXPECT_EQ(manual.RemainingMicros(), 0);

  const DeadlineClock clock = DeadlineClock::Virtual();
  const CancellationToken deadline =
      CancellationToken::WithDeadlineMicros(100, clock);
  EXPECT_FALSE(deadline.ShouldStop());
  EXPECT_EQ(deadline.RemainingMicros(), 100);
  clock.AdvanceMicros(99);
  EXPECT_FALSE(deadline.ShouldStop());
  clock.AdvanceMicros(1);
  EXPECT_TRUE(deadline.ShouldStop());
  EXPECT_EQ(deadline.CancelStatus().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.RemainingMicros(), 0);

  // Explicit cancel wins over an expired deadline.
  const DeadlineClock clock2 = DeadlineClock::Virtual();
  const CancellationToken both =
      CancellationToken::WithDeadlineMicros(10, clock2);
  clock2.AdvanceMicros(20);
  both.Cancel();
  EXPECT_EQ(both.CancelStatus().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, LinkedChildTripsWithParent) {
  const CancellationToken parent = CancellationToken::Manual();
  const DeadlineClock clock = DeadlineClock::Virtual();
  const CancellationToken child =
      CancellationToken::WithDeadlineMicros(1000, clock, parent);
  EXPECT_FALSE(child.ShouldStop());
  parent.Cancel();
  EXPECT_TRUE(child.ShouldStop());
  EXPECT_EQ(child.CancelStatus().code(), StatusCode::kCancelled);
  EXPECT_EQ(child.RemainingMicros(), 0);
  // The child never propagates up.
  const CancellationToken parent2 = CancellationToken::Manual();
  const CancellationToken child2 =
      CancellationToken::WithDeadlineMicros(0, clock, parent2);
  EXPECT_TRUE(child2.ShouldStop());
  EXPECT_EQ(child2.CancelStatus().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(parent2.ShouldStop());
}

// ---------------------------------------------------------------------------
// Execution-layer exactness: tripped => typed status and no aggregate;
// untripped => bit-identical to the option-less execution. Checked across
// worker and shard counts.

std::vector<StarQuery> ExactnessSweep() {
  std::vector<StarQuery> queries;
  queries.push_back(apb1_queries::OneMonthOneGroup(3, 7));
  queries.push_back(apb1_queries::OneMonth(5));
  queries.push_back(apb1_queries::OneCodeOneMonth(30, 3));
  queries.push_back(apb1_queries::OneStore(17));
  queries.push_back(StarQuery("COVERED_PLUS_RESIDUAL",
                              {{kApb1Product, 5, {28, 29, 30, 31, 32}}}));
  return queries;
}

TEST(DeadlineExecutionTest, TrippedTokenYieldsTypedStatusNeverAnAggregate) {
  for (const int shards : {1, 4}) {
    const Warehouse wh = TinyMaterialized(1, shards);
    const MiniWarehouse* mini = wh.materialized();
    for (const int workers : {1, 2, 8}) {
      const ThreadPool pool(workers);
      for (const StarQuery& query : ExactnessSweep()) {
        const QueryPlan plan = wh.Plan(query);
        MiniWarehouse::ExecOptions options;
        options.cancel = CancellationToken::Manual();
        options.cancel.Cancel();
        const auto exec = mini->ExecuteWithPlan(query, plan, &pool,
                                                /*scratch=*/nullptr, options);
        EXPECT_EQ(exec.status.code(), StatusCode::kCancelled)
            << query.name() << " workers=" << workers
            << " shards=" << shards;
      }
    }
  }
}

TEST(DeadlineExecutionTest, UntrippedTokenLeavesResultsBitIdentical) {
  for (const int shards : {1, 4}) {
    const Warehouse wh = TinyMaterialized(1, shards);
    const MiniWarehouse* mini = wh.materialized();
    for (const StarQuery& query : ExactnessSweep()) {
      const QueryPlan plan = wh.Plan(query);
      const auto plain = mini->ExecuteWithPlan(query, plan);
      for (const int workers : {1, 2, 8}) {
        const ThreadPool pool(workers);
        // Armed with a generous deadline AND a live manual token: never
        // trips, so the record must match the plain run field for field.
        MiniWarehouse::ExecOptions options;
        options.cancel = CancellationToken::WithTimeoutMicros(
            std::int64_t{3'600'000'000}, {}, CancellationToken::Manual());
        const auto guarded = mini->ExecuteWithPlan(
            query, plan, &pool, /*scratch=*/nullptr, options);
        EXPECT_EQ(guarded, plain)
            << query.name() << " workers=" << workers << " shards=" << shards;
      }
    }
  }
}

TEST(DeadlineExecutionTest, ExpiredVirtualDeadlineIsDeadlineExceeded) {
  const Warehouse wh = TinyMaterialized(1);
  const StarQuery query = apb1_queries::OneMonth(5);
  const QueryPlan plan = wh.Plan(query);
  const DeadlineClock clock = DeadlineClock::Virtual();
  MiniWarehouse::ExecOptions options;
  options.cancel = CancellationToken::WithDeadlineMicros(50, clock);
  clock.AdvanceMicros(50);
  const auto exec = wh.materialized()->ExecuteWithPlan(
      query, plan, nullptr, nullptr, options);
  EXPECT_EQ(exec.status.code(), StatusCode::kDeadlineExceeded);
}

// Mid-scan cancellation from another thread: every outcome is either the
// exact fault-free answer (token lost the race) or a typed kCancelled
// with no usable aggregate — never a partial sum. Runs under TSan in CI.
TEST(DeadlineExecutionTest, MidScanCancellationStressNeverYieldsPartialSums) {
  const Warehouse wh = TinyMaterialized(8, 4);
  const MiniWarehouse* mini = wh.materialized();
  const StarQuery query = apb1_queries::OneMonth(5);
  const QueryPlan plan = wh.Plan(query);
  const auto truth = mini->ExecuteWithPlan(query, plan);
  ASSERT_TRUE(truth.status.ok());

  const ThreadPool pool(8);
  int cancelled = 0;
  for (int i = 0; i < 40; ++i) {
    MiniWarehouse::ExecOptions options;
    options.cancel = CancellationToken::Manual();
    // Every 5th iteration trips before execution starts (a guaranteed
    // cancellation); the rest race a canceller thread against the scan.
    if (i % 5 == 0) options.cancel.Cancel();
    std::thread canceller([&options, i] {
      std::this_thread::sleep_for(std::chrono::microseconds(i * 7));
      options.cancel.Cancel();
    });
    const auto exec =
        mini->ExecuteWithPlan(query, plan, &pool, nullptr, options);
    canceller.join();
    if (exec.status.ok()) {
      EXPECT_EQ(exec.result, truth.result) << "iteration " << i;
    } else {
      EXPECT_EQ(exec.status.code(), StatusCode::kCancelled) << "iter " << i;
      ++cancelled;
    }
  }
  // The sweep spans cancel-before-start through cancel-after-finish, so
  // at least the immediate cancellations must have tripped.
  EXPECT_GT(cancelled, 0);
}

// ---------------------------------------------------------------------------
// Degraded covered-only execution

TEST(DegradedExecutionTest, DegradedAnswerEqualsCoveredOnlyGroundTruth) {
  // COVERED_PLUS_RESIDUAL selects group 7 fully (codes 28..31) and group
  // 8 partially (code 32): its covered fragments are exactly the rows of
  // group 7, i.e. the full answer of the all-codes-of-group-7 query.
  const StarQuery mixed("COVERED_PLUS_RESIDUAL",
                        {{kApb1Product, 5, {28, 29, 30, 31, 32}}});
  const StarQuery covered_part("ALL_CODES_OF_GROUP",
                               {{kApb1Product, 5, {28, 29, 30, 31}}});
  for (const int shards : {1, 4}) {
    const Warehouse wh = TinyMaterialized(2, shards);
    const MiniWarehouse* mini = wh.materialized();
    const auto reference = mini->ExecuteFullScan(covered_part);
    for (const int workers : {1, 2, 8}) {
      const ThreadPool pool(workers);
      MiniWarehouse::ExecOptions options;
      options.covered_only = true;
      const auto degraded = mini->ExecuteWithPlan(mixed, wh.Plan(mixed),
                                                  &pool, nullptr, options);
      ASSERT_TRUE(degraded.status.ok());
      EXPECT_TRUE(degraded.degraded);
      EXPECT_EQ(degraded.result, reference)
          << "workers=" << workers << " shards=" << shards;
      EXPECT_EQ(degraded.rows_scanned, 0);
      EXPECT_EQ(degraded.result.rows, degraded.rows_summarized);
    }
  }
}

TEST(DegradedExecutionTest, FullyCoveredQueryDegradesToTheExactAnswer) {
  const Warehouse wh = TinyMaterialized(2);
  const MiniWarehouse* mini = wh.materialized();
  const StarQuery query = apb1_queries::OneMonthOneGroup(3, 7);
  const QueryPlan plan = wh.Plan(query);
  ASSERT_EQ(plan.CoveredFragmentCount(), plan.FragmentCount());
  const auto full = mini->ExecuteWithPlan(query, plan);
  MiniWarehouse::ExecOptions options;
  options.covered_only = true;
  const auto degraded =
      mini->ExecuteWithPlan(query, plan, nullptr, nullptr, options);
  ASSERT_TRUE(degraded.status.ok());
  EXPECT_EQ(degraded.result, full.result);
  EXPECT_EQ(degraded.rows_scanned, 0);
}

// ---------------------------------------------------------------------------
// Virtual-time scheduler: deadline admission, shedding, degradation, SRPT

Arrival At(std::int64_t vt, int stream) {
  return Arrival{vt, stream, StarQuery("synthetic", {})};
}

ServingConfig Config(SchedPolicy policy, int workers) {
  ServingConfig config;
  config.policy = policy;
  config.num_workers = workers;
  return config;
}

TEST(DeadlineSchedulerTest, FcfsAdmissionRejectsProvablyInfeasibleArrivals) {
  // One server, demand 100, relative deadline 150: the backlog makes
  // every same-instant arrival after the first provably late, so FCFS
  // rejects them on the spot. A later arrival at a free server is fine.
  const std::vector<Arrival> arrivals = {At(0, 0), At(0, 0), At(0, 0),
                                         At(0, 0), At(100, 0)};
  const std::vector<std::int64_t> demands(arrivals.size(), 100);
  ServingConfig config = Config(SchedPolicy::kFcfs, 1);
  config.deadline_vt = 150;
  const ServeSchedule schedule =
      QueryScheduler(config).Run(arrivals, demands);

  ASSERT_EQ(schedule.rejected.size(), 3u);
  EXPECT_EQ(schedule.rejected, (std::vector<std::int64_t>{1, 2, 3}));
  ASSERT_EQ(schedule.admitted.size(), 2u);
  EXPECT_TRUE(schedule.admitted[0].served);
  EXPECT_EQ(schedule.admitted[0].deadline_vt, 150);
  EXPECT_TRUE(schedule.admitted[1].served);
  EXPECT_EQ(schedule.admitted[1].dispatch_vt, 100);
  EXPECT_EQ(schedule.ShedExpiredCount(), 0);
  // Every dispatched query met its deadline in virtual time.
  for (const auto& q : schedule.admitted) {
    EXPECT_LE(q.completion_vt, q.deadline_vt);
  }
}

TEST(DeadlineSchedulerTest, ExpiredWaitingQueriesAreShedNotDispatched) {
  // Credit admission only rejects what can't fit even with zero wait, so
  // the backlog queues — and the queue-timeout pass sheds it once the
  // deadline becomes unreachable, before any dispatch.
  const std::vector<Arrival> arrivals = {At(0, 0), At(0, 0), At(0, 0)};
  const std::vector<std::int64_t> demands(arrivals.size(), 100);
  ServingConfig config = Config(SchedPolicy::kCredit, 1);
  config.deadline_vt = 150;
  const ServeSchedule schedule =
      QueryScheduler(config).Run(arrivals, demands);

  ASSERT_EQ(schedule.admitted.size(), 3u);
  EXPECT_TRUE(schedule.rejected.empty());
  EXPECT_EQ(schedule.ServedCount(), 1);
  EXPECT_EQ(schedule.ShedExpiredCount(), 2);
  for (const auto& q : schedule.admitted) {
    if (q.served) EXPECT_LE(q.completion_vt, q.deadline_vt);
    if (q.shed_expired) EXPECT_FALSE(q.served);
  }

  const ServeMetrics metrics =
      ComputeServeMetrics(schedule, arrivals, config);
  EXPECT_EQ(metrics.total.shed_expired, 2);
  EXPECT_EQ(metrics.total.deadline_missed, 2);
  EXPECT_EQ(metrics.total.completed, 1);
}

TEST(DeadlineSchedulerTest, DegradePolicyRescuesExpiringQueries) {
  // Same overload, but the stream opts into degradation and the covered
  // demand (10) still fits: the queued queries downgrade instead of
  // shedding and all three complete by their deadlines.
  const std::vector<Arrival> arrivals = {At(0, 0), At(0, 0), At(0, 0)};
  const std::vector<std::int64_t> demands(arrivals.size(), 100);
  const std::vector<std::int64_t> covered(arrivals.size(), 10);
  ServingConfig config = Config(SchedPolicy::kCredit, 1);
  config.deadline_vt = 150;
  config.overload = OverloadPolicy::kDegrade;
  const ServeSchedule schedule =
      QueryScheduler(config).Run(arrivals, demands, covered);

  ASSERT_EQ(schedule.admitted.size(), 3u);
  EXPECT_EQ(schedule.ServedCount(), 3);
  EXPECT_EQ(schedule.ShedExpiredCount(), 0);
  EXPECT_EQ(schedule.DegradedCount(), 2);
  EXPECT_FALSE(schedule.admitted[0].degraded);  // ran at full demand
  for (const auto& q : schedule.admitted) {
    EXPECT_LE(q.completion_vt, q.deadline_vt);
    if (q.degraded) EXPECT_EQ(q.demand, 10);
  }
  const ServeMetrics metrics =
      ComputeServeMetrics(schedule, arrivals, config);
  EXPECT_EQ(metrics.total.degraded, 2);
  EXPECT_EQ(metrics.total.deadline_missed, 0);
}

TEST(DeadlineSchedulerTest, SrptDispatchesShortestDemandFirst) {
  std::vector<Arrival> arrivals;
  std::vector<std::int64_t> demands;
  const std::vector<std::int64_t> shuffled = {70, 10, 50, 30, 90, 20};
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    arrivals.push_back(At(0, static_cast<int>(i % 2)));
    demands.push_back(shuffled[i]);
  }
  const QueryScheduler scheduler(Config(SchedPolicy::kSrpt, 1));
  const ServeSchedule schedule = scheduler.Run(arrivals, demands);
  ASSERT_EQ(schedule.ServedCount(), 6);
  // The first query grabs the free server on arrival (work conserving);
  // after that, dispatch follows ascending demand.
  std::vector<std::pair<std::int64_t, std::int64_t>> order;
  for (const auto& q : schedule.admitted) {
    order.emplace_back(q.dispatch_seq, q.demand);
  }
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order[0].second, 70);  // was already in service
  for (std::size_t i = 2; i < order.size(); ++i) {
    EXPECT_GE(order[i].second, order[i - 1].second);
  }
}

TEST(DeadlineSchedulerTest, SrptBeatsFcfsOnMeanResponseUnderSkewedDemands) {
  std::vector<Arrival> arrivals;
  std::vector<std::int64_t> demands;
  for (int i = 0; i < 40; ++i) {
    arrivals.push_back(At(0, 0));
    demands.push_back(i % 2 == 0 ? 500 : 10);  // heavy/light skew
  }
  const auto mean_response = [&](SchedPolicy policy) {
    ServingConfig config = Config(policy, 1);
    const ServeSchedule schedule =
        QueryScheduler(config).Run(arrivals, demands);
    EXPECT_EQ(schedule.ServedCount(), 40);
    const ServeMetrics m = ComputeServeMetrics(schedule, arrivals, config);
    return m.total.mean_queue_wait_vt + m.total.mean_service_vt;
  };
  const double fcfs = mean_response(SchedPolicy::kFcfs);
  const double srpt = mean_response(SchedPolicy::kSrpt);
  EXPECT_LT(srpt, fcfs * 0.7)
      << "SRPT should sharply cut mean response under skew";
}

TEST(DeadlineSchedulerTest, DeterministicReplayWithDeadlinesAndSrpt) {
  std::vector<Arrival> arrivals;
  std::vector<std::int64_t> demands;
  std::vector<std::int64_t> covered;
  std::int64_t vt = 0;
  for (int i = 0; i < 200; ++i) {
    vt += (i * 7) % 23;
    arrivals.push_back(At(vt, i % 5));
    demands.push_back(1 + (i * 13) % 97);
    covered.push_back(1 + (i * 13) % 97 / 4);
  }
  ServingConfig config = Config(SchedPolicy::kSrpt, 3);
  config.deadline_vt = 120;
  config.stream_overload = {OverloadPolicy::kShed, OverloadPolicy::kDegrade,
                            OverloadPolicy::kShed, OverloadPolicy::kDegrade,
                            OverloadPolicy::kShed};
  const QueryScheduler scheduler(config);
  const ServeSchedule a = scheduler.Run(arrivals, demands, covered);
  const ServeSchedule b = scheduler.Run(arrivals, demands, covered);
  ASSERT_EQ(a.admitted.size(), b.admitted.size());
  for (std::size_t i = 0; i < a.admitted.size(); ++i) {
    EXPECT_EQ(a.admitted[i].served, b.admitted[i].served);
    EXPECT_EQ(a.admitted[i].dispatch_seq, b.admitted[i].dispatch_seq);
    EXPECT_EQ(a.admitted[i].shed_expired, b.admitted[i].shed_expired);
    EXPECT_EQ(a.admitted[i].degraded, b.admitted[i].degraded);
    EXPECT_EQ(a.admitted[i].demand, b.admitted[i].demand);
  }
  EXPECT_EQ(a.rejected, b.rejected);
  // Sanity: the trace is overloaded enough that every deadline path ran.
  EXPECT_GT(a.ShedExpiredCount() + static_cast<std::int64_t>(
                                       a.rejected.size()),
            0);
}

// ---------------------------------------------------------------------------
// Serving end to end: deterministic outcome sets at any worker/shard
// count, wall-clock budgets, requeue-skip, serve-wide cancellation.

std::vector<Arrival> TinyTrace(const StarSchema* schema, int count) {
  ArrivalConfig config;
  config.num_streams = 6;
  config.mean_interarrival_vt = 40.0;
  config.stream_skew_theta = 0.4;
  config.mix = {QueryType::k1Month1Group, QueryType::k1Month,
                QueryType::k1Quarter, QueryType::k1Group1Store};
  config.seed = kSeed;
  return ArrivalGenerator(schema, config).Generate(count);
}

TEST(DeadlineServingTest, OutcomeSetsDeterministicAcrossWorkersAndShards) {
  // The acceptance bar: with virtual-time deadlines the partition of
  // arrivals into {completed, rejected, shed, degraded} — and every
  // aggregate — is identical no matter how many threads or shards
  // actually execute.
  ServingConfig config;
  config.policy = SchedPolicy::kSrpt;
  config.num_workers = 2;  // pinned: the schedule must not vary
  config.deadline_vt = 400;
  config.stream_overload = {OverloadPolicy::kShed, OverloadPolicy::kDegrade,
                            OverloadPolicy::kShed, OverloadPolicy::kDegrade,
                            OverloadPolicy::kShed, OverloadPolicy::kDegrade};

  struct RunSets {
    std::set<std::int64_t> completed, rejected, shed, degraded;
    std::vector<std::pair<StatusCode,
                          std::optional<MiniWarehouse::AggregateResult>>>
        outcomes;
  };
  std::vector<RunSets> runs;
  for (const int shards : {1, 4}) {
    for (const int workers : {1, 2, 8}) {
      const Warehouse wh = TinyMaterialized(workers, shards);
      const auto arrivals = TinyTrace(&wh.schema(), 96);
      ServeSchedule schedule;
      const BatchOutcome batch = wh.Serve(arrivals, config, &schedule);
      RunSets sets;
      for (const auto& q : schedule.admitted) {
        if (q.served) sets.completed.insert(q.arrival_index);
        if (q.shed_expired) sets.shed.insert(q.arrival_index);
        if (q.degraded && q.served) sets.degraded.insert(q.arrival_index);
      }
      sets.rejected.insert(schedule.rejected.begin(),
                           schedule.rejected.end());
      for (const auto& out : batch.queries) {
        sets.outcomes.emplace_back(out.status.code(), out.aggregate);
        EXPECT_TRUE(out.status.ok());
      }
      ASSERT_TRUE(batch.serving.has_value());
      EXPECT_EQ(batch.serving->total.degraded,
                static_cast<std::int64_t>(sets.degraded.size()));
      EXPECT_EQ(batch.serving->total.shed_expired,
                static_cast<std::int64_t>(sets.shed.size()));
      runs.push_back(std::move(sets));
    }
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].completed, runs[i].completed);
    EXPECT_EQ(runs[0].rejected, runs[i].rejected);
    EXPECT_EQ(runs[0].shed, runs[i].shed);
    EXPECT_EQ(runs[0].degraded, runs[i].degraded);
    ASSERT_EQ(runs[0].outcomes.size(), runs[i].outcomes.size());
    for (std::size_t k = 0; k < runs[0].outcomes.size(); ++k) {
      EXPECT_EQ(runs[0].outcomes[k], runs[i].outcomes[k]) << "outcome " << k;
    }
  }
  // The config must actually exercise the deadline machinery.
  EXPECT_FALSE(runs[0].rejected.empty() && runs[0].shed.empty() &&
               runs[0].degraded.empty())
      << "trace too light: no deadline path engaged";
}

TEST(DeadlineServingTest, DegradedServeOutcomesMatchDirectCoveredExecution) {
  ServingConfig config;
  config.policy = SchedPolicy::kCredit;
  config.num_workers = 1;
  config.deadline_vt = 300;
  config.overload = OverloadPolicy::kDegrade;

  const Warehouse wh = TinyMaterialized(2);
  const auto arrivals = TinyTrace(&wh.schema(), 96);
  ServeSchedule schedule;
  const BatchOutcome batch = wh.Serve(arrivals, config, &schedule);
  std::size_t slot = 0;
  std::int64_t degraded_seen = 0;
  for (const auto& q : schedule.admitted) {
    if (!q.served) continue;
    const auto& out = batch.queries[slot++];
    EXPECT_EQ(out.degraded, q.degraded);
    if (!q.degraded) continue;
    ++degraded_seen;
    // A degraded outcome equals a direct covered-only execution of the
    // same plan — answered purely from summaries, nothing scanned.
    const auto& arrival = arrivals[static_cast<std::size_t>(q.arrival_index)];
    MiniWarehouse::ExecOptions options;
    options.covered_only = true;
    const auto direct = wh.materialized()->ExecuteWithPlan(
        arrival.query, wh.Plan(arrival.query), nullptr, nullptr, options);
    ASSERT_TRUE(out.aggregate.has_value());
    EXPECT_EQ(*out.aggregate, direct.result);
    EXPECT_EQ(out.rows_scanned, 0);
  }
  EXPECT_GT(degraded_seen, 0) << "trace too light to trigger degradation";
}

TEST(DeadlineServingTest, ServeWideCancellationYieldsTypedOutcomes) {
  ServingConfig config;
  config.policy = SchedPolicy::kFcfs;
  config.num_workers = 2;
  config.cancel = CancellationToken::Manual();
  config.cancel.Cancel();  // tripped before anything runs

  const Warehouse wh = TinyMaterialized(2);
  const auto arrivals = TinyTrace(&wh.schema(), 24);
  const BatchOutcome batch = wh.Serve(arrivals, config);
  ASSERT_FALSE(batch.queries.empty());
  for (const auto& out : batch.queries) {
    EXPECT_EQ(out.status.code(), StatusCode::kCancelled);
    EXPECT_FALSE(out.aggregate.has_value());
  }
  ASSERT_TRUE(batch.serving.has_value());
  EXPECT_EQ(batch.serving->total.cancelled,
            static_cast<std::int64_t>(batch.queries.size()));
  EXPECT_EQ(batch.serving->total.failed, 0);
}

// ---------------------------------------------------------------------------
// Wall-clock budgets under injected storage faults (the chaos leg)

TEST(DeadlineStorageTest, DeadlineCapsRetryBackoffSleeps) {
  // Sticky EIO on every page read with a 50ms backoff, but only a 10ms
  // budget: the capped sleeps and the requeue skip turn what would be
  // ~seconds of retrying into a prompt typed kDeadlineExceeded.
  TempDir dir;
  storage::FaultPlan plan;
  plan.scripted.push_back({/*file_id=*/-1, /*page=*/-1,
                           storage::FaultKind::kEio, /*count=*/-1});
  WarehouseConfig cfg{.schema = MakeTinyApb1Schema()};
  cfg.fragmentation = MonthGroup();
  cfg.backend = BackendKind::kMaterialized;
  cfg.seed = kSeed;
  cfg.num_workers = 1;
  cfg.storage_path = dir.path();
  cfg.storage_retry = {.max_attempts = 3, .backoff_us = 50'000};
  cfg.storage_fault = std::move(plan);
  const Warehouse wh(std::move(cfg));

  ServingConfig config;
  config.policy = SchedPolicy::kFcfs;
  config.num_workers = 1;
  config.exec_deadline_us = 10'000;
  config.max_requeues = 8;

  std::vector<Arrival> arrivals;
  for (int i = 0; i < 3; ++i) {
    arrivals.push_back({i * 10, 0, apb1_queries::OneMonth(i)});
  }
  const auto start = std::chrono::steady_clock::now();
  const BatchOutcome batch = wh.Serve(arrivals, config);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  // 3 queries x 8 requeues x 2 retries x 50ms would be ~2.4s of sleeping
  // without the cap; with it each query dies within its ~10ms budget.
  EXPECT_LT(elapsed, 1500) << "deadline did not cap the retry backoff";
  ASSERT_EQ(batch.queries.size(), 3u);
  for (const auto& out : batch.queries) {
    EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_FALSE(out.aggregate.has_value());
  }
  ASSERT_TRUE(batch.serving.has_value());
  EXPECT_EQ(batch.serving->total.deadline_missed, 3);
  EXPECT_EQ(batch.serving->total.failed, 0);
}

TEST(DeadlineStorageTest, FaultySurvivorsStayExactUnderDeadlines) {
  // Chaos composition: transient faults plus a roomy wall budget — every
  // outcome is either the exact fault-free answer or a typed error;
  // never a wrong aggregate.
  TempDir clean_dir;
  WarehouseConfig clean_cfg{.schema = MakeTinyApb1Schema()};
  clean_cfg.fragmentation = MonthGroup();
  clean_cfg.backend = BackendKind::kMaterialized;
  clean_cfg.seed = kSeed;
  clean_cfg.num_workers = 1;
  clean_cfg.storage_path = clean_dir.path();
  const Warehouse clean(std::move(clean_cfg));

  TempDir dir;
  storage::FaultPlan plan;
  plan.seed = 0xC0FFEE;
  plan.eio_rate = 0.05;
  plan.corrupt_rate = 0.05;
  WarehouseConfig cfg{.schema = MakeTinyApb1Schema()};
  cfg.fragmentation = MonthGroup();
  cfg.backend = BackendKind::kMaterialized;
  cfg.seed = kSeed;
  cfg.num_workers = 2;
  cfg.storage_path = dir.path();
  cfg.storage_retry = {.max_attempts = 4, .backoff_us = 10};
  cfg.storage_fault = std::move(plan);
  const Warehouse faulty(std::move(cfg));

  ServingConfig config;
  config.policy = SchedPolicy::kCredit;
  config.num_workers = 2;
  config.exec_deadline_us = 5'000'000;
  config.max_requeues = 2;

  const auto arrivals = TinyTrace(&faulty.schema(), 48);
  ServeSchedule schedule;
  const BatchOutcome batch = faulty.Serve(arrivals, config, &schedule);
  std::size_t slot = 0;
  for (const auto& q : schedule.admitted) {
    if (!q.served) continue;
    const auto& out = batch.queries[slot++];
    const auto& arrival = arrivals[static_cast<std::size_t>(q.arrival_index)];
    if (out.status.ok()) {
      const QueryOutcome truth = clean.Execute(arrival.query);
      ASSERT_TRUE(out.aggregate.has_value());
      EXPECT_EQ(*out.aggregate, *truth.aggregate);
    } else {
      EXPECT_FALSE(out.aggregate.has_value());
    }
  }
}

}  // namespace
}  // namespace mdw
