#include <gtest/gtest.h>

#include "schema/apb1.h"
#include "workload/workload_driver.h"

namespace mdw {
namespace {

class WorkloadDriverTest : public ::testing::Test {
 protected:
  WorkloadDriverTest()
      : schema_(MakeApb1Schema()),
        frag_(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}}) {}

  SimConfig Config() {
    SimConfig config;
    config.num_disks = 20;
    config.num_nodes = 4;
    return config;
  }

  StarSchema schema_;
  Fragmentation frag_;
};

TEST_F(WorkloadDriverTest, RunsRequestedRepetitions) {
  WorkloadDriver driver(&schema_, &frag_, Config());
  const auto result = driver.RunSingleUser(QueryType::k1Month1Group, 5);
  EXPECT_EQ(result.response_ms.size(), 5u);
  EXPECT_EQ(result.subqueries, 5);  // one fragment per query instance
}

TEST_F(WorkloadDriverTest, SingleUserResponsesAreSimilar) {
  // Random parameters change the selected fragment but not the work per
  // query: single-user responses of one type vary little.
  WorkloadDriver driver(&schema_, &frag_, Config());
  const auto result = driver.RunSingleUser(QueryType::k1Month1Group, 5);
  EXPECT_LT(result.max_response_ms, 1.5 * result.min_response_ms);
  EXPECT_GE(result.max_response_ms, result.avg_response_ms);
  EXPECT_LE(result.min_response_ms, result.avg_response_ms);
}

TEST_F(WorkloadDriverTest, MixRunsAllComponents) {
  WorkloadDriver driver(&schema_, &frag_, Config());
  const auto result = driver.RunMix(
      {{QueryType::k1Month1Group, 3}, {QueryType::k1Code1Month, 2}},
      /*streams=*/2);
  EXPECT_EQ(result.response_ms.size(), 5u);
  EXPECT_GT(result.makespan_ms, 0);
}

TEST_F(WorkloadDriverTest, DeterministicAcrossInstances) {
  WorkloadDriver a(&schema_, &frag_, Config());
  WorkloadDriver b(&schema_, &frag_, Config());
  const auto ra = a.RunSingleUser(QueryType::k1Group1Store, 3);
  const auto rb = b.RunSingleUser(QueryType::k1Group1Store, 3);
  EXPECT_EQ(ra.response_ms, rb.response_ms);
}

TEST_F(WorkloadDriverTest, SeedChangesParameters) {
  SimConfig other = Config();
  other.seed = 4711;
  WorkloadDriver a(&schema_, &frag_, Config());
  WorkloadDriver b(&schema_, &frag_, other);
  const auto ra = a.RunSingleUser(QueryType::k1Code1Month, 4);
  const auto rb = b.RunSingleUser(QueryType::k1Code1Month, 4);
  // Different query parameters land on different fragments/disk positions;
  // totals stay in the same regime but traces differ.
  EXPECT_NE(ra.response_ms, rb.response_ms);
}

}  // namespace
}  // namespace mdw
