#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "schema/hierarchy.h"

namespace mdw {
namespace {

// The APB-1 PRODUCT hierarchy of paper Table 1.
Hierarchy Product() {
  return Hierarchy({{"division", 8},
                    {"line", 24},
                    {"family", 120},
                    {"group", 480},
                    {"class", 960},
                    {"code", 14'400}});
}

Hierarchy Time() {
  return Hierarchy({{"year", 2}, {"quarter", 8}, {"month", 24}});
}

TEST(HierarchyTest, LevelAccessors) {
  const auto h = Product();
  EXPECT_EQ(h.num_levels(), 6);
  EXPECT_EQ(h.leaf_depth(), 5);
  EXPECT_EQ(h.level(0).name, "division");
  EXPECT_EQ(h.level(5).name, "code");
  EXPECT_EQ(h.Cardinality(3), 480);
  EXPECT_EQ(h.LeafCardinality(), 14'400);
}

TEST(HierarchyTest, FanoutsMatchApb1Ratios) {
  const auto h = Product();
  // Paper Table 1 row "#elements within parent": 8, 3, 5, 4, 2, 15.
  EXPECT_EQ(h.Fanout(-1), 8);
  EXPECT_EQ(h.Fanout(0), 3);
  EXPECT_EQ(h.Fanout(1), 5);
  EXPECT_EQ(h.Fanout(2), 4);
  EXPECT_EQ(h.Fanout(3), 2);
  EXPECT_EQ(h.Fanout(4), 15);
}

TEST(HierarchyTest, AncestorOfLeaf) {
  const auto h = Time();
  // 24 months, 8 quarters, 2 years: month 0..2 -> quarter 0; month 23 ->
  // quarter 7, year 1.
  EXPECT_EQ(h.AncestorOfLeaf(0, 1), 0);
  EXPECT_EQ(h.AncestorOfLeaf(2, 1), 0);
  EXPECT_EQ(h.AncestorOfLeaf(3, 1), 1);
  EXPECT_EQ(h.AncestorOfLeaf(23, 1), 7);
  EXPECT_EQ(h.AncestorOfLeaf(11, 0), 0);
  EXPECT_EQ(h.AncestorOfLeaf(12, 0), 1);
  EXPECT_EQ(h.AncestorOfLeaf(23, 2), 23);  // identity at leaf depth
}

TEST(HierarchyTest, AncestorBetweenInnerLevels) {
  const auto h = Product();
  // group -> family: 4 groups per family.
  EXPECT_EQ(h.Ancestor(0, 3, 2), 0);
  EXPECT_EQ(h.Ancestor(3, 3, 2), 0);
  EXPECT_EQ(h.Ancestor(4, 3, 2), 1);
  EXPECT_EQ(h.Ancestor(479, 3, 2), 119);
}

TEST(HierarchyTest, LeafRangeRoundTrips) {
  const auto h = Product();
  // Each group covers 30 codes.
  EXPECT_EQ(h.LeavesPer(3), 30);
  const auto [first, last] = h.LeafRange(7, 3);
  EXPECT_EQ(first, 210);
  EXPECT_EQ(last, 239);
  for (std::int64_t code = first; code <= last; ++code) {
    EXPECT_EQ(h.AncestorOfLeaf(code, 3), 7);
  }
  EXPECT_EQ(h.AncestorOfLeaf(first - 1, 3), 6);
  EXPECT_EQ(h.AncestorOfLeaf(last + 1, 3), 8);
}

TEST(HierarchyTest, DescendantsPer) {
  const auto h = Product();
  EXPECT_EQ(h.DescendantsPer(0, 5), 1'800);  // codes per division
  EXPECT_EQ(h.DescendantsPer(3, 4), 2);      // classes per group
  EXPECT_EQ(h.DescendantsPer(2, 2), 1);
  const auto t = Time();
  EXPECT_EQ(t.DescendantsPer(1, 2), 3);  // months per quarter
}

TEST(HierarchyEncodingTest, BitsPerLevelMatchTable1) {
  const auto h = Product();
  // Paper Table 1 row "#bits for encoding": 3, 2, 3, 2, 1, 4 = 15.
  EXPECT_EQ(h.BitsAt(0), 3);
  EXPECT_EQ(h.BitsAt(1), 2);
  EXPECT_EQ(h.BitsAt(2), 3);
  EXPECT_EQ(h.BitsAt(3), 2);
  EXPECT_EQ(h.BitsAt(4), 1);
  EXPECT_EQ(h.BitsAt(5), 4);
  EXPECT_EQ(h.TotalBits(), 15);
}

TEST(HierarchyEncodingTest, PrefixBitsMatchTable1) {
  const auto h = Product();
  // A GROUP is identified by the 10-bit prefix "dddllfffgg" (paper 3.2).
  EXPECT_EQ(h.PrefixBits(3), 10);
  EXPECT_EQ(h.PrefixBits(0), 3);
  EXPECT_EQ(h.PrefixBits(5), 15);
}

TEST(HierarchyEncodingTest, EncodeDecodeRoundTripsAllCodes) {
  const auto h = Product();
  for (std::int64_t code = 0; code < h.LeafCardinality(); code += 7) {
    EXPECT_EQ(h.DecodeLeaf(h.EncodeLeaf(code)), code) << "code " << code;
  }
  EXPECT_EQ(h.DecodeLeaf(h.EncodeLeaf(0)), 0);
  EXPECT_EQ(h.DecodeLeaf(h.EncodeLeaf(14'399)), 14'399);
}

TEST(HierarchyEncodingTest, SameGroupSharesPrefix) {
  const auto h = Product();
  // Paper Sec. 3.2: codes of the same GROUP share the 10-bit prefix.
  const auto prefix = [&](std::int64_t code) {
    return h.EncodeLeaf(code) >> (h.TotalBits() - h.PrefixBits(3));
  };
  const auto [first, last] = h.LeafRange(123, 3);
  const auto p = prefix(first);
  for (std::int64_t code = first; code <= last; ++code) {
    EXPECT_EQ(prefix(code), p);
  }
  EXPECT_NE(prefix(last + 1), p);
}

TEST(HierarchyEncodingTest, EncodingIsInjective) {
  const auto h = Hierarchy({{"a", 3}, {"b", 15}});
  std::set<std::uint64_t> seen;
  for (std::int64_t leaf = 0; leaf < 15; ++leaf) {
    EXPECT_TRUE(seen.insert(h.EncodeLeaf(leaf)).second);
  }
}

TEST(HierarchyTest, SingleLevelHierarchy) {
  const Hierarchy h({{"channel", 15}});
  EXPECT_EQ(h.num_levels(), 1);
  EXPECT_EQ(h.TotalBits(), 4);
  EXPECT_EQ(h.AncestorOfLeaf(7, 0), 7);
  EXPECT_EQ(h.LeavesPer(0), 1);
}

TEST(HierarchyTest, DepthOfByName) {
  const auto h = Product();
  EXPECT_EQ(h.DepthOf("division"), 0);
  EXPECT_EQ(h.DepthOf("group"), 3);
  EXPECT_EQ(h.DepthOf("code"), 5);
  EXPECT_EQ(h.DepthOf("nope"), -1);
}

TEST(HierarchyTest, NonPowerOfTwoFanoutsStillRoundTrip) {
  // Customer: 144 retailers x 10 stores = 1440 stores, 8 + 4 = 12 bits.
  const Hierarchy h({{"retailer", 144}, {"store", 1'440}});
  EXPECT_EQ(h.TotalBits(), 12);
  for (std::int64_t store = 0; store < 1'440; ++store) {
    EXPECT_EQ(h.DecodeLeaf(h.EncodeLeaf(store)), store);
  }
}

using DepthParam = std::tuple<int, std::int64_t>;

class AncestorConsistency : public ::testing::TestWithParam<DepthParam> {};

// Property: Ancestor is transitive -- going leaf -> d directly equals
// leaf -> mid -> d for any mid between.
TEST_P(AncestorConsistency, TransitiveThroughIntermediateLevels) {
  const auto h = Product();
  const auto [d, leaf] = GetParam();
  for (Depth mid = d; mid <= h.leaf_depth(); ++mid) {
    const auto via_mid = h.Ancestor(h.AncestorOfLeaf(leaf, mid), mid, d);
    EXPECT_EQ(via_mid, h.AncestorOfLeaf(leaf, d));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, AncestorConsistency,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values<std::int64_t>(0, 1, 29, 30, 7'199,
                                                       14'399)));

}  // namespace
}  // namespace mdw
