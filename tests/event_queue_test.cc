#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace mdw {
namespace {

TEST(EventQueueTest, StartsAtTimeZero) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_FALSE(q.RunOne());
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  q.RunUntilEmpty();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, ScheduleAfterIsRelative) {
  EventQueue q;
  double fired_at = -1;
  q.ScheduleAt(10.0, [&] {
    q.ScheduleAfter(5.0, [&] { fired_at = q.now(); });
  });
  q.RunUntilEmpty();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) q.ScheduleAfter(1.0, chain);
  };
  q.ScheduleAt(0.0, chain);
  q.RunUntilEmpty();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(q.now(), 99.0);
  EXPECT_EQ(q.events_processed(), 100);
}

TEST(EventQueueTest, NowAdvancesMonotonically) {
  EventQueue q;
  double last = -1;
  for (int i = 0; i < 50; ++i) {
    q.ScheduleAt(static_cast<double>(50 - i), [&, i] {
      EXPECT_GE(q.now(), last);
      last = q.now();
    });
  }
  q.RunUntilEmpty();
}

TEST(EventQueueTest, ZeroDelayRunsAtCurrentTime) {
  EventQueue q;
  bool ran = false;
  q.ScheduleAt(7.0, [&] {
    q.ScheduleAfter(0.0, [&] {
      EXPECT_DOUBLE_EQ(q.now(), 7.0);
      ran = true;
    });
  });
  q.RunUntilEmpty();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace mdw
