#include <gtest/gtest.h>

#include <vector>

#include "bitmap/bitvector.h"
#include "common/rng.h"

namespace mdw {
namespace {

TEST(BitVectorTest, StartsAllZero) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130);
  EXPECT_EQ(v.Count(), 0);
  EXPECT_TRUE(v.None());
  for (std::int64_t i = 0; i < 130; ++i) EXPECT_FALSE(v.Get(i));
}

TEST(BitVectorTest, SetGetClear) {
  BitVector v(100);
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(99);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(63));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(99));
  EXPECT_FALSE(v.Get(1));
  EXPECT_EQ(v.Count(), 4);
  v.Clear(63);
  EXPECT_FALSE(v.Get(63));
  EXPECT_EQ(v.Count(), 3);
}

TEST(BitVectorTest, SetAllRespectsSize) {
  BitVector v(70);
  v.SetAll();
  EXPECT_EQ(v.Count(), 70);
  v.ClearAll();
  EXPECT_EQ(v.Count(), 0);
}

TEST(BitVectorTest, AndOrAndNot) {
  BitVector a(10), b(10);
  a.Set(1);
  a.Set(3);
  a.Set(5);
  b.Set(3);
  b.Set(5);
  b.Set(7);

  BitVector and_result = a & b;
  EXPECT_EQ(and_result.Count(), 2);
  EXPECT_TRUE(and_result.Get(3));
  EXPECT_TRUE(and_result.Get(5));

  BitVector or_result = a | b;
  EXPECT_EQ(or_result.Count(), 4);

  BitVector diff = a;
  diff.AndNot(b);
  EXPECT_EQ(diff.Count(), 1);
  EXPECT_TRUE(diff.Get(1));
}

TEST(BitVectorTest, FlipAllMasksTail) {
  BitVector v(70);
  v.Set(0);
  v.FlipAll();
  EXPECT_EQ(v.Count(), 69);
  EXPECT_FALSE(v.Get(0));
  EXPECT_TRUE(v.Get(69));
  // Flipping twice returns to the original.
  v.FlipAll();
  EXPECT_EQ(v.Count(), 1);
  EXPECT_TRUE(v.Get(0));
}

TEST(BitVectorTest, NextSetBit) {
  BitVector v(200);
  v.Set(5);
  v.Set(64);
  v.Set(199);
  EXPECT_EQ(v.NextSetBit(0), 5);
  EXPECT_EQ(v.NextSetBit(5), 5);
  EXPECT_EQ(v.NextSetBit(6), 64);
  EXPECT_EQ(v.NextSetBit(65), 199);
  EXPECT_EQ(v.NextSetBit(200), -1);
  BitVector empty(50);
  EXPECT_EQ(empty.NextSetBit(0), -1);
}

TEST(BitVectorTest, ForEachSetBitVisitsAscending) {
  BitVector v(300);
  const std::vector<std::int64_t> bits = {0, 1, 63, 64, 65, 128, 299};
  for (const auto b : bits) v.Set(b);
  std::vector<std::int64_t> seen;
  v.ForEachSetBit([&](std::int64_t b) { seen.push_back(b); });
  EXPECT_EQ(seen, bits);
}

TEST(BitVectorTest, EqualityAndCopy) {
  BitVector a(77);
  a.Set(13);
  BitVector b = a;
  EXPECT_TRUE(a == b);
  b.Set(14);
  EXPECT_FALSE(a == b);
}

TEST(BitVectorTest, SizeBytes) {
  EXPECT_EQ(BitVector(64).SizeBytes(), 8);
  EXPECT_EQ(BitVector(65).SizeBytes(), 16);
  EXPECT_EQ(BitVector(0).SizeBytes(), 0);
}

TEST(BitVectorTest, EmptyVector) {
  BitVector v(0);
  EXPECT_EQ(v.Count(), 0);
  EXPECT_TRUE(v.None());
  EXPECT_EQ(v.NextSetBit(0), -1);
  v.SetAll();
  EXPECT_EQ(v.Count(), 0);
}

class BitVectorProperty : public ::testing::TestWithParam<std::int64_t> {};

// Property: De Morgan -- ~(a & b) == ~a | ~b on random vectors.
TEST_P(BitVectorProperty, DeMorgan) {
  const std::int64_t size = GetParam();
  Rng rng(static_cast<std::uint64_t>(size) + 1);
  BitVector a(size), b(size);
  for (std::int64_t i = 0; i < size; ++i) {
    if (rng.UniformReal() < 0.3) a.Set(i);
    if (rng.UniformReal() < 0.6) b.Set(i);
  }
  BitVector lhs = a & b;
  lhs.FlipAll();
  BitVector na = a, nb = b;
  na.FlipAll();
  nb.FlipAll();
  const BitVector rhs = na | nb;
  EXPECT_TRUE(lhs == rhs);
}

// Property: Count(a) + Count(b) == Count(a|b) + Count(a&b).
TEST_P(BitVectorProperty, InclusionExclusion) {
  const std::int64_t size = GetParam();
  Rng rng(static_cast<std::uint64_t>(size) + 99);
  BitVector a(size), b(size);
  for (std::int64_t i = 0; i < size; ++i) {
    if (rng.UniformReal() < 0.4) a.Set(i);
    if (rng.UniformReal() < 0.4) b.Set(i);
  }
  EXPECT_EQ(a.Count() + b.Count(), (a | b).Count() + (a & b).Count());
}

// Property: ForEachSetBit visits exactly Count() bits, all set.
TEST_P(BitVectorProperty, IterationMatchesCount) {
  const std::int64_t size = GetParam();
  Rng rng(static_cast<std::uint64_t>(size) + 7);
  BitVector a(size);
  for (std::int64_t i = 0; i < size; ++i) {
    if (rng.UniformReal() < 0.2) a.Set(i);
  }
  std::int64_t visited = 0;
  a.ForEachSetBit([&](std::int64_t bit) {
    EXPECT_TRUE(a.Get(bit));
    ++visited;
  });
  EXPECT_EQ(visited, a.Count());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorProperty,
                         ::testing::Values<std::int64_t>(1, 63, 64, 65, 127,
                                                         128, 1000, 4096));

}  // namespace
}  // namespace mdw
