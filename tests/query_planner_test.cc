#include <gtest/gtest.h>

#include <set>

#include "fragment/query_planner.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

// All planner behaviour below is checked against the worked examples of
// paper Sections 4.2 and 4.5 for F_MonthGroup = {time::month,
// product::group} on the APB-1 configuration.
class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : schema_(MakeApb1Schema()),
        month_group_(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}}),
        planner_(&schema_, &month_group_) {}

  StarSchema schema_;
  Fragmentation month_group_;
  QueryPlanner planner_;
};

TEST_F(PlannerTest, Q1ExactMatchOnAllFragmentationAttributes) {
  // 1MONTH1GROUP: exactly 1 fragment, no bitmaps (paper Q1).
  const auto plan = planner_.Plan(apb1_queries::OneMonthOneGroup(3, 41));
  EXPECT_EQ(plan.query_class(), QueryClass::kQ1);
  EXPECT_EQ(plan.io_class(), IoClass::kIoc1Opt);
  EXPECT_EQ(plan.FragmentCount(), 1);
  EXPECT_FALSE(plan.NeedsBitmaps());
  EXPECT_EQ(plan.BitmapsPerFragment(), 0);
  EXPECT_EQ(plan.MaterializeFragments(), std::vector<FragId>{3 * 480 + 41});
}

TEST_F(PlannerTest, Q1SubsetOfFragmentationAttributes) {
  // 1GROUP over all 24 months: 24 fragments, still no bitmaps.
  const StarQuery group("1GROUP", {{kApb1Product, 3, {41}}});
  const auto plan = planner_.Plan(group);
  EXPECT_EQ(plan.query_class(), QueryClass::kQ1);
  EXPECT_EQ(plan.io_class(), IoClass::kIoc1);
  EXPECT_EQ(plan.FragmentCount(), 24);
  EXPECT_FALSE(plan.NeedsBitmaps());
}

TEST_F(PlannerTest, Q1WithForeignDimensionNeedsItsBitmapsOnly) {
  // 1GROUP1STORE: 24 fragments; bitmap access only for CUSTOMER
  // (paper: "can use a bitmap index on CUSTOMER").
  const auto plan = planner_.Plan(apb1_queries::OneGroupOneStore(41, 7));
  EXPECT_EQ(plan.query_class(), QueryClass::kQ1);
  EXPECT_EQ(plan.io_class(), IoClass::kIoc2);
  EXPECT_EQ(plan.FragmentCount(), 24);
  EXPECT_TRUE(plan.NeedsBitmaps());
  // The full 12-bit encoded customer prefix.
  EXPECT_EQ(plan.BitmapsPerFragment(), 12);
  for (const auto& a : plan.accesses()) {
    if (a.dim == kApb1Customer) {
      EXPECT_TRUE(a.needs_bitmap);
    } else {
      EXPECT_FALSE(a.needs_bitmap);
    }
  }
}

TEST_F(PlannerTest, Q2LowerLevelBothDimensions) {
  // 1CODE1MONTH: 1 fragment (paper Q2: "Ideally, only 1 fragment").
  const auto plan = planner_.Plan(apb1_queries::OneCodeOneMonth(35, 5));
  EXPECT_EQ(plan.query_class(), QueryClass::kQ2);
  EXPECT_EQ(plan.io_class(), IoClass::kIoc2);
  EXPECT_EQ(plan.FragmentCount(), 1);
  // Code 35 belongs to group 1; month 5 -> fragment 5*480+1.
  EXPECT_EQ(plan.MaterializeFragments(), std::vector<FragId>{5 * 480 + 1});
  // Suffix bitmaps below group: 15 - 10 = 5 (paper Table 1).
  EXPECT_TRUE(plan.NeedsBitmaps());
  EXPECT_EQ(plan.BitmapsPerFragment(), 5);
}

TEST_F(PlannerTest, Q2LowerLevelOneDimension) {
  // 1CODE over all months: 24 fragments (paper: "1CODE ... involves 24").
  const auto plan = planner_.Plan(apb1_queries::OneCode(35));
  EXPECT_EQ(plan.query_class(), QueryClass::kQ2);
  EXPECT_EQ(plan.FragmentCount(), 24);
  EXPECT_EQ(plan.BitmapsPerFragment(), 5);
  // The 24 fragments are every 480th id starting at group 1's offset.
  const auto frags = plan.MaterializeFragments();
  for (std::size_t m = 0; m < frags.size(); ++m) {
    EXPECT_EQ(frags[m], static_cast<FragId>(m) * 480 + 1);
  }
}

TEST_F(PlannerTest, Q3HigherLevelQuarter) {
  // 1GROUP1QUARTER: 3 fragments (paper Q3: "three fragments rather than
  // one"), no bitmap for either dimension.
  const StarQuery q("1GROUP1QUARTER",
                    {{kApb1Product, 3, {41}}, {kApb1Time, 1, {2}}});
  const auto plan = planner_.Plan(q);
  EXPECT_EQ(plan.query_class(), QueryClass::kQ3);
  EXPECT_EQ(plan.io_class(), IoClass::kIoc1);
  EXPECT_EQ(plan.FragmentCount(), 3);
  EXPECT_FALSE(plan.NeedsBitmaps());
  // Quarter 2 covers months 6, 7, 8.
  const auto frags = plan.MaterializeFragments();
  EXPECT_EQ(frags, (std::vector<FragId>{6 * 480 + 41, 7 * 480 + 41,
                                        8 * 480 + 41}));
}

TEST_F(PlannerTest, Q3QuarterAloneIsOneEighthOfFragments) {
  // Paper: one QUARTER over all groups -> 480 * 3 = 1,440 fragments
  // ("one eighth of all fragments").
  const auto plan = planner_.Plan(apb1_queries::OneQuarter(2));
  EXPECT_EQ(plan.query_class(), QueryClass::kQ3);
  EXPECT_EQ(plan.FragmentCount(), 1'440);
  EXPECT_EQ(plan.FragmentCount() * 8, month_group_.FragmentCount());
  EXPECT_FALSE(plan.NeedsBitmaps());
}

TEST_F(PlannerTest, Q4MixedCodeAndQuarter) {
  // 1CODE1QUARTER: 3 fragments (paper Q4: "restricted to 3 fragments
  // because 1 product CODE and 3 MONTHs are involved").
  const auto plan = planner_.Plan(apb1_queries::OneCodeOneQuarter(35, 2));
  EXPECT_EQ(plan.query_class(), QueryClass::kQ4);
  EXPECT_EQ(plan.io_class(), IoClass::kIoc2);
  EXPECT_EQ(plan.FragmentCount(), 3);
  EXPECT_EQ(plan.BitmapsPerFragment(), 5);
}

TEST_F(PlannerTest, UnsupportedQueryProcessesAllFragments) {
  // 1STORE: customer not in F -> all 11,520 fragments, 12 bitmaps
  // (paper Sec. 6.2/6.3).
  const auto plan = planner_.Plan(apb1_queries::OneStore(7));
  EXPECT_EQ(plan.query_class(), QueryClass::kUnsupported);
  EXPECT_EQ(plan.io_class(), IoClass::kIoc2NoSupp);
  EXPECT_EQ(plan.FragmentCount(), 11'520);
  EXPECT_TRUE(plan.NeedsBitmaps());
  EXPECT_EQ(plan.BitmapsPerFragment(), 12);
}

TEST_F(PlannerTest, MonthQueryIsOptimallySupported) {
  // 1MONTH: 480 fragments, no bitmap access (paper Sec. 6.1).
  const auto plan = planner_.Plan(apb1_queries::OneMonth(5));
  EXPECT_EQ(plan.query_class(), QueryClass::kQ1);
  EXPECT_EQ(plan.io_class(), IoClass::kIoc1);
  EXPECT_EQ(plan.FragmentCount(), 480);
  EXPECT_FALSE(plan.NeedsBitmaps());
}

TEST_F(PlannerTest, SelectivityAndHits) {
  // 1STORE selectivity 1/1440 (paper Sec. 6.3); hits per fragment 112.5.
  const auto plan = planner_.Plan(apb1_queries::OneStore(7));
  EXPECT_NEAR(plan.selectivity(), 1.0 / 1'440, 1e-12);
  EXPECT_NEAR(plan.ExpectedHits(), 1'296'000.0, 1e-6);
  EXPECT_NEAR(plan.HitsPerFragment(), 112.5, 1e-9);
  // 1CODE1QUARTER: 16,200 rows in total (paper Sec. 6.3).
  const auto p2 = planner_.Plan(apb1_queries::OneCodeOneQuarter(35, 2));
  EXPECT_NEAR(p2.ExpectedHits(), 16'200.0, 1e-6);
}

TEST_F(PlannerTest, FragmentSelectivityWithinFragments) {
  // Paper Sec. 6.3: within a group, a code selects 1/30 of the rows.
  const auto plan = planner_.Plan(apb1_queries::OneCodeOneQuarter(35, 2));
  EXPECT_NEAR(plan.FragmentSelectivity(), 1.0 / 30, 1e-12);
}

TEST_F(PlannerTest, InListExpandsSlices) {
  const StarQuery q("2GROUPS", {{kApb1Product, 3, {41, 99}}});
  const auto plan = planner_.Plan(q);
  EXPECT_EQ(plan.FragmentCount(), 48);  // 2 groups x 24 months
}

TEST_F(PlannerTest, InListOfCodesInSameGroupDeduplicates) {
  // Codes 30 and 31 both belong to group 1: one fragment per month.
  const StarQuery q("2CODES", {{kApb1Product, 5, {30, 31}}});
  const auto plan = planner_.Plan(q);
  EXPECT_EQ(plan.FragmentCount(), 24);
}

TEST_F(PlannerTest, ForEachFragmentAscendingAllocationOrder) {
  const auto plan = planner_.Plan(apb1_queries::OneQuarter(1));
  FragId previous = -1;
  plan.ForEachFragment([&](FragId id) {
    EXPECT_GT(id, previous);
    previous = id;
  });
}

TEST_F(PlannerTest, ChannelPredicateUsesSimpleIndexOneBitmap) {
  const StarQuery q("1CHANNEL", {{kApb1Channel, 0, {3}}});
  const auto plan = planner_.Plan(q);
  EXPECT_EQ(plan.io_class(), IoClass::kIoc2NoSupp);
  EXPECT_EQ(plan.FragmentCount(), 11'520);
  EXPECT_EQ(plan.BitmapsPerFragment(), 1);  // simple index: one bitmap
}

TEST_F(PlannerTest, YearQueryOnMonthFragmentation) {
  // YEAR is above MONTH: Q3, 12 months -> 12 * 480 fragments.
  const StarQuery q("1YEAR", {{kApb1Time, 0, {1}}});
  const auto plan = planner_.Plan(q);
  EXPECT_EQ(plan.query_class(), QueryClass::kQ3);
  EXPECT_EQ(plan.FragmentCount(), 12 * 480);
  EXPECT_FALSE(plan.NeedsBitmaps());
}

TEST(PlannerFoptTest, Table3OptimalFragmentation) {
  // F_opt = {customer::store} makes 1STORE an IOC1-opt single-fragment
  // query (paper Table 3).
  const auto schema = MakeApb1Schema();
  const Fragmentation fopt(&schema, {{kApb1Customer, 1}});
  const QueryPlanner planner(&schema, &fopt);
  const auto plan = planner.Plan(apb1_queries::OneStore(7));
  EXPECT_EQ(plan.query_class(), QueryClass::kQ1);
  EXPECT_EQ(plan.io_class(), IoClass::kIoc1Opt);
  EXPECT_EQ(plan.FragmentCount(), 1);
  EXPECT_FALSE(plan.NeedsBitmaps());
}

TEST(PlannerUnfragmentedTest, EverythingInOneFragment) {
  const auto schema = MakeApb1Schema();
  const Fragmentation none(&schema, {});
  const QueryPlanner planner(&schema, &none);
  const auto plan = planner.Plan(apb1_queries::OneStore(7));
  EXPECT_EQ(plan.FragmentCount(), 1);
  EXPECT_EQ(plan.io_class(), IoClass::kIoc2NoSupp);
  EXPECT_TRUE(plan.NeedsBitmaps());
}

// Parameterised sweep: for every (fragmentation depth, query depth) combo
// on the product dimension, the fragment count follows the paper's rule:
//   depth(q) <= depth(f): card(f)/card(q) fragments (per month factor 24)
//   depth(q) >  depth(f): 1 fragment slice (times 24 months)
class DepthComboTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DepthComboTest, FragmentCountFollowsHierarchyRatio) {
  const auto schema = MakeApb1Schema();
  const auto [frag_depth, query_depth] = GetParam();
  const Fragmentation f(&schema, {{kApb1Product, frag_depth}});
  const QueryPlanner planner(&schema, &f);
  const auto& h = schema.dimension(kApb1Product).hierarchy();
  const StarQuery q("probe", {{kApb1Product, query_depth, {0}}});
  const auto plan = planner.Plan(q);
  if (query_depth <= frag_depth) {
    EXPECT_EQ(plan.FragmentCount(),
              h.Cardinality(frag_depth) / h.Cardinality(query_depth));
    EXPECT_FALSE(plan.NeedsBitmaps());
  } else {
    EXPECT_EQ(plan.FragmentCount(), 1);
    EXPECT_TRUE(plan.NeedsBitmaps());
    EXPECT_EQ(plan.BitmapsPerFragment(),
              h.PrefixBits(query_depth) - h.PrefixBits(frag_depth));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDepthPairs, DepthComboTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

}  // namespace
}  // namespace mdw
