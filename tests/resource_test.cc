#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu.h"
#include "sim/network.h"
#include "sim/resource.h"

namespace mdw {
namespace {

TEST(FcfsServerTest, ServesImmediatelyWhenIdle) {
  EventQueue q;
  FcfsServer server(&q, "s");
  double done_at = -1;
  server.Request([] { return 5.0; }, [&] { done_at = q.now(); });
  q.RunUntilEmpty();
  EXPECT_DOUBLE_EQ(done_at, 5.0);
  EXPECT_DOUBLE_EQ(server.busy_ms(), 5.0);
  EXPECT_EQ(server.completed(), 1);
}

TEST(FcfsServerTest, QueuesConcurrentRequests) {
  EventQueue q;
  FcfsServer server(&q, "s");
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    server.Request([] { return 10.0; },
                   [&] { completions.push_back(q.now()); });
  }
  q.RunUntilEmpty();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 10.0);
  EXPECT_DOUBLE_EQ(completions[1], 20.0);
  EXPECT_DOUBLE_EQ(completions[2], 30.0);
  EXPECT_DOUBLE_EQ(server.busy_ms(), 30.0);
}

TEST(FcfsServerTest, DemandEvaluatedAtServiceStart) {
  EventQueue q;
  FcfsServer server(&q, "s");
  double state = 1.0;  // demand depends on mutable state (like a disk head)
  std::vector<double> completions;
  server.Request([&] { return state; },
                 [&] { completions.push_back(q.now()); });
  server.Request([&] { return state; },
                 [&] { completions.push_back(q.now()); });
  // Mutate state after enqueue but before the second service starts.
  state = 2.0;
  q.RunUntilEmpty();
  ASSERT_EQ(completions.size(), 2u);
  // Both requests see state = 2.0: the first service also starts after
  // this synchronous block? No: the first Request starts service
  // immediately (state still 1.0 at call time... demand function runs
  // inside Request -> StartNext synchronously).
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 3.0);
}

TEST(FcfsServerTest, CompletionCanRequestAgain) {
  EventQueue q;
  FcfsServer server(&q, "s");
  int count = 0;
  std::function<void()> resubmit = [&] {
    if (++count < 5) {
      server.Request([] { return 2.0; }, resubmit);
    }
  };
  server.Request([] { return 2.0; }, resubmit);
  q.RunUntilEmpty();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(FcfsServerTest, UtilizationOverHorizon) {
  EventQueue q;
  FcfsServer server(&q, "s");
  server.Request([] { return 25.0; }, [] {});
  q.RunUntilEmpty();
  EXPECT_DOUBLE_EQ(server.Utilization(100.0), 0.25);
  EXPECT_DOUBLE_EQ(server.Utilization(0.0), 0.0);
}

TEST(CpuTest, ExecutesAtMips) {
  EventQueue q;
  CpuCosts costs;  // 50 MIPS
  Cpu cpu(&q, costs, "cpu0");
  double done_at = -1;
  cpu.Execute(50'000, [&] { done_at = q.now(); });
  q.RunUntilEmpty();
  // 50,000 instructions at 50 MIPS = 1 ms.
  EXPECT_DOUBLE_EQ(done_at, 1.0);
}

TEST(CpuTest, MessageCostIncludesBytes) {
  CpuCosts costs;
  // 1,000 + 128 instructions at 50 MIPS.
  EXPECT_DOUBLE_EQ(costs.MessageInstructions(128), 1'128.0);
  EXPECT_NEAR(costs.MessageMs(128), 1'128.0 / 50'000, 1e-12);
}

TEST(CpuTest, TableFourDefaults) {
  const CpuCosts costs;
  EXPECT_EQ(costs.initiate_query, 50'000);
  EXPECT_EQ(costs.terminate_query, 10'000);
  EXPECT_EQ(costs.initiate_subquery, 10'000);
  EXPECT_EQ(costs.terminate_subquery, 10'000);
  EXPECT_EQ(costs.read_page, 3'000);
  EXPECT_EQ(costs.process_bitmap_page, 1'500);
  EXPECT_EQ(costs.extract_row, 100);
  EXPECT_EQ(costs.aggregate_row, 100);
  EXPECT_DOUBLE_EQ(costs.mips, 50.0);
}

TEST(NetworkTest, WireDelayProportionalToSize) {
  EventQueue q;
  Network net(&q, 100.0);  // 100 Mbit/s
  // 4 KB page: 4096 * 8 / 100e6 s = 0.32768 ms.
  EXPECT_NEAR(net.WireDelayMs(4'096), 0.32768, 1e-9);
  // 128 B message: 0.01024 ms.
  EXPECT_NEAR(net.WireDelayMs(128), 0.01024, 1e-9);
}

TEST(NetworkTest, TransferSchedulesCompletion) {
  EventQueue q;
  Network net(&q, 100.0);
  double done_at = -1;
  net.Transfer(4'096, [&] { done_at = q.now(); });
  q.RunUntilEmpty();
  EXPECT_NEAR(done_at, 0.32768, 1e-9);
  EXPECT_EQ(net.messages(), 1);
  EXPECT_EQ(net.bytes_sent(), 4'096);
}

TEST(NetworkTest, ContentionFreeParallelTransfers) {
  EventQueue q;
  Network net(&q, 100.0);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    net.Transfer(4'096, [&] { done.push_back(q.now()); });
  }
  q.RunUntilEmpty();
  // No queueing: all four complete at the same wire delay.
  for (const double t : done) EXPECT_NEAR(t, 0.32768, 1e-9);
}

}  // namespace
}  // namespace mdw
