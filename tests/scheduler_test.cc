#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/warehouse.h"
#include "sched/query_scheduler.h"
#include "schema/apb1.h"
#include "workload/arrival_generator.h"

namespace mdw {
namespace {

constexpr std::uint64_t kSeed = 42;

// ---------------------------------------------------------------------------
// Virtual-time engine tests: the scheduler never looks at the query beyond
// its demand, so a placeholder query keeps the traces terse.

Arrival At(std::int64_t vt, int stream) {
  return Arrival{vt, stream, StarQuery("synthetic", {})};
}

ServingConfig Config(SchedPolicy policy, int workers,
                     std::int64_t capacity = 0, std::int64_t horizon = 0) {
  ServingConfig config;
  config.policy = policy;
  config.num_workers = workers;
  config.queue_capacity = capacity;
  config.horizon_vt = horizon;
  return config;
}

/// A saturating trace: `per_stream` queries per stream, all at vt 0,
/// interleaved 0,1,2,0,1,2,... so FCFS serves the streams round-robin.
std::vector<Arrival> SaturatedTrace(int streams, int per_stream) {
  std::vector<Arrival> arrivals;
  for (int i = 0; i < per_stream; ++i) {
    for (int s = 0; s < streams; ++s) arrivals.push_back(At(0, s));
  }
  return arrivals;
}

std::vector<std::int64_t> UniformDemands(std::size_t n, std::int64_t d) {
  return std::vector<std::int64_t>(n, d);
}

/// Independent replay of the schedule's occupancy: at every event instant,
/// a query waits while arrival_vt <= t < dispatch_vt and occupies a server
/// while dispatch_vt <= t < completion_vt. Returns the virtual time during
/// which a server idled although a query waited (0 = work-conserving).
std::int64_t ReplayIdleWhileBacklogged(const ServeSchedule& schedule,
                                       int workers) {
  std::vector<std::int64_t> events;
  for (const auto& q : schedule.admitted) {
    events.push_back(q.arrival_vt);
    if (q.served) {
      events.push_back(q.dispatch_vt);
      events.push_back(q.completion_vt);
    }
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  std::int64_t idle_backlogged = 0;
  for (std::size_t e = 0; e + 1 < events.size(); ++e) {
    const std::int64_t t = events[e], dt = events[e + 1] - t;
    int busy = 0, waiting = 0;
    for (const auto& q : schedule.admitted) {
      if (q.served && q.dispatch_vt <= t && t < q.completion_vt) ++busy;
      if (q.arrival_vt <= t && (!q.served || t < q.dispatch_vt)) ++waiting;
    }
    if (waiting > 0 && busy < workers) idle_backlogged += dt;
  }
  return idle_backlogged;
}

TEST(QuerySchedulerTest, ExactlyOnceAdmissionAndDenseSequences) {
  // Overloaded single server with a tight queue: every arrival must land
  // exactly once in admitted or rejected, with dense sequence numbers.
  std::vector<Arrival> arrivals;
  Rng rng(kSeed);
  std::int64_t vt = 0;
  for (int i = 0; i < 200; ++i) {
    vt += rng.Uniform(0, 30);
    arrivals.push_back(At(vt, static_cast<int>(rng.Uniform(0, 3))));
  }
  const auto demands = UniformDemands(arrivals.size(), 50);
  const QueryScheduler scheduler(Config(SchedPolicy::kFcfs, 1, 4));
  const ServeSchedule schedule = scheduler.Run(arrivals, demands);

  EXPECT_EQ(schedule.admitted.size() + schedule.rejected.size(),
            arrivals.size());
  std::set<std::int64_t> seen;
  for (const auto& q : schedule.admitted) seen.insert(q.arrival_index);
  for (std::int64_t r : schedule.rejected) {
    EXPECT_TRUE(seen.insert(r).second) << "arrival " << r << " twice";
  }
  EXPECT_EQ(seen.size(), arrivals.size());

  // enqueue_seq dense and ascending in admission order; dispatch_seq dense
  // over the served subset.
  std::vector<std::int64_t> dispatch_seqs;
  for (std::size_t i = 0; i < schedule.admitted.size(); ++i) {
    const auto& q = schedule.admitted[i];
    EXPECT_EQ(q.enqueue_seq, static_cast<std::int64_t>(i));
    EXPECT_EQ(arrivals[static_cast<std::size_t>(q.arrival_index)].stream,
              q.stream);
    if (q.served) {
      EXPECT_GE(q.dispatch_vt, q.arrival_vt);
      EXPECT_EQ(q.completion_vt, q.dispatch_vt + q.demand);
      dispatch_seqs.push_back(q.dispatch_seq);
    } else {
      EXPECT_EQ(q.dispatch_seq, -1);
    }
  }
  std::sort(dispatch_seqs.begin(), dispatch_seqs.end());
  for (std::size_t i = 0; i < dispatch_seqs.size(); ++i) {
    EXPECT_EQ(dispatch_seqs[i], static_cast<std::int64_t>(i));
  }
  EXPECT_TRUE(std::is_sorted(schedule.rejected.begin(),
                             schedule.rejected.end()));
}

TEST(QuerySchedulerTest, FcfsDispatchesInAdmissionOrder) {
  std::vector<Arrival> arrivals;
  Rng rng(kSeed + 1);
  std::int64_t vt = 0;
  for (int i = 0; i < 100; ++i) {
    vt += rng.Uniform(0, 20);
    arrivals.push_back(At(vt, static_cast<int>(rng.Uniform(0, 7))));
  }
  std::vector<std::int64_t> demands;
  for (int i = 0; i < 100; ++i) demands.push_back(10 + rng.Uniform(0, 90));
  const QueryScheduler scheduler(Config(SchedPolicy::kFcfs, 1));
  const ServeSchedule schedule = scheduler.Run(arrivals, demands);

  ASSERT_EQ(schedule.admitted.size(), arrivals.size());
  for (const auto& q : schedule.admitted) {
    ASSERT_TRUE(q.served);
    // Single server, global FCFS: dispatch order IS admission order.
    EXPECT_EQ(q.dispatch_seq, q.enqueue_seq);
  }
}

TEST(QuerySchedulerTest, CreditConvergesToWeightedSharesWhereFcfsDoesNot) {
  // Acceptance criterion: under saturation (every stream backlogged for
  // the whole measured window), credit with weights {1,2,4} completes
  // work within 10% of the weight ratios; FCFS on the same trace does not.
  const auto arrivals = SaturatedTrace(3, 400);
  const auto demands = UniformDemands(arrivals.size(), 100);

  ServingConfig credit = Config(SchedPolicy::kCredit, 2, 0, 20000);
  credit.weights = {1.0, 2.0, 4.0};
  const ServeSchedule credit_schedule =
      QueryScheduler(credit).Run(arrivals, demands);
  const ServeMetrics credit_metrics =
      ComputeServeMetrics(credit_schedule, arrivals, credit);

  ServingConfig fcfs = Config(SchedPolicy::kFcfs, 2, 0, 20000);
  fcfs.weights = {1.0, 2.0, 4.0};  // FCFS ignores weights
  const ServeMetrics fcfs_metrics = ComputeServeMetrics(
      QueryScheduler(fcfs).Run(arrivals, demands), arrivals, fcfs);

  ASSERT_EQ(credit_metrics.streams.size(), 3u);
  const double w0 = static_cast<double>(credit_metrics.streams[0].work);
  const double w1 = static_cast<double>(credit_metrics.streams[1].work);
  const double w2 = static_cast<double>(credit_metrics.streams[2].work);
  ASSERT_GT(w0, 0);
  // Every stream must still be backlogged at the horizon, else the shares
  // measure drain, not policy.
  for (const auto& s : credit_metrics.streams) {
    EXPECT_LT(s.completed, s.submitted);
  }
  EXPECT_NEAR(w1 / w0, 2.0, 0.2);
  EXPECT_NEAR(w2 / w0, 4.0, 0.4);
  // Weight-normalized Jain index: ~1 when shares track weights.
  EXPECT_GT(credit_metrics.jain_fairness, 0.98);

  // FCFS round-robins the interleaved trace: equal work per stream, far
  // outside 10% of the 1:2:4 target, and weight-normalized Jain dips.
  const double f0 = static_cast<double>(fcfs_metrics.streams[0].work);
  const double f2 = static_cast<double>(fcfs_metrics.streams[2].work);
  EXPECT_LT(f2 / f0, 1.5);
  EXPECT_LT(fcfs_metrics.jain_fairness, 0.85);
}

TEST(QuerySchedulerTest, AdmissionControlShedsWhenQueueFull) {
  // One server, capacity 2: of five same-instant arrivals one goes
  // straight to the server, two queue, two are shed. A later arrival
  // (after a completion drained the queue) is admitted again.
  std::vector<Arrival> arrivals = {At(0, 0), At(0, 1), At(0, 2),
                                   At(0, 3), At(0, 4), At(150, 0)};
  const auto demands = UniformDemands(arrivals.size(), 100);
  const QueryScheduler scheduler(Config(SchedPolicy::kFcfs, 1, 2));
  const ServeSchedule schedule = scheduler.Run(arrivals, demands);

  ASSERT_EQ(schedule.rejected.size(), 2u);
  EXPECT_EQ(schedule.rejected[0], 3);
  EXPECT_EQ(schedule.rejected[1], 4);
  ASSERT_EQ(schedule.admitted.size(), 4u);
  EXPECT_EQ(schedule.makespan_vt, 400);
  EXPECT_EQ(schedule.queue_high_water, 2);
  // Queue at capacity over [0,100) and [150,200) of the 400-tick run.
  EXPECT_DOUBLE_EQ(schedule.backpressure_fraction, 150.0 / 400.0);
  EXPECT_DOUBLE_EQ(schedule.mean_queue_depth,
                   (2 * 100 + 1 * 50 + 2 * 50 + 1 * 100) / 400.0);
}

TEST(QuerySchedulerTest, SameInstantBurstBypassesQueueOntoFreeServers) {
  // Capacity bounds WAITING queries only: with two free servers, a burst
  // of three fits (two in service, one queued at capacity 1); the fourth
  // is shed.
  std::vector<Arrival> arrivals = {At(0, 0), At(0, 1), At(0, 2), At(0, 3)};
  const auto demands = UniformDemands(arrivals.size(), 100);
  const QueryScheduler scheduler(Config(SchedPolicy::kFcfs, 2, 1));
  const ServeSchedule schedule = scheduler.Run(arrivals, demands);

  ASSERT_EQ(schedule.rejected.size(), 1u);
  EXPECT_EQ(schedule.rejected[0], 3);
  EXPECT_EQ(schedule.ServedCount(), 3);
  // The first two dispatch immediately.
  EXPECT_EQ(schedule.admitted[0].dispatch_vt, 0);
  EXPECT_EQ(schedule.admitted[1].dispatch_vt, 0);
  EXPECT_EQ(schedule.admitted[2].dispatch_vt, 100);
}

TEST(QuerySchedulerTest, WorkConservingUnderBothPolicies) {
  std::vector<Arrival> arrivals;
  Rng rng(kSeed + 2);
  std::int64_t vt = 0;
  std::vector<std::int64_t> demands;
  for (int i = 0; i < 300; ++i) {
    vt += rng.Uniform(0, 40);
    arrivals.push_back(At(vt, static_cast<int>(rng.Uniform(0, 5))));
    demands.push_back(5 + rng.Uniform(0, 120));
  }
  for (const SchedPolicy policy : {SchedPolicy::kFcfs, SchedPolicy::kCredit}) {
    ServingConfig config = Config(policy, 3);
    config.weights = {1.0, 3.0, 1.0, 2.0, 1.0, 1.0};
    const ServeSchedule schedule =
        QueryScheduler(config).Run(arrivals, demands);
    EXPECT_EQ(schedule.idle_while_backlogged_vt, 0)
        << ToString(policy) << " left a server idle while backlogged";
    // Independent replay of the invariant from the schedule itself.
    EXPECT_EQ(ReplayIdleWhileBacklogged(schedule, 3), 0) << ToString(policy);
  }
}

TEST(QuerySchedulerTest, DeterministicReplay) {
  std::vector<Arrival> arrivals;
  Rng rng(kSeed + 3);
  std::int64_t vt = 0;
  std::vector<std::int64_t> demands;
  for (int i = 0; i < 250; ++i) {
    vt += rng.Uniform(0, 25);
    arrivals.push_back(At(vt, static_cast<int>(rng.Uniform(0, 9))));
    demands.push_back(1 + rng.Uniform(0, 200));
  }
  ServingConfig config = Config(SchedPolicy::kCredit, 4, 16, 3000);
  config.weights = {4.0, 1.0, 2.0};
  const QueryScheduler scheduler(config);
  const ServeSchedule a = scheduler.Run(arrivals, demands);
  const ServeSchedule b = scheduler.Run(arrivals, demands);

  ASSERT_EQ(a.admitted.size(), b.admitted.size());
  for (std::size_t i = 0; i < a.admitted.size(); ++i) {
    EXPECT_EQ(a.admitted[i].arrival_index, b.admitted[i].arrival_index);
    EXPECT_EQ(a.admitted[i].served, b.admitted[i].served);
    EXPECT_EQ(a.admitted[i].dispatch_seq, b.admitted[i].dispatch_seq);
    EXPECT_EQ(a.admitted[i].dispatch_vt, b.admitted[i].dispatch_vt);
    EXPECT_EQ(a.admitted[i].completion_vt, b.admitted[i].completion_vt);
  }
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.makespan_vt, b.makespan_vt);
  EXPECT_DOUBLE_EQ(a.mean_queue_depth, b.mean_queue_depth);
  EXPECT_DOUBLE_EQ(a.backpressure_fraction, b.backpressure_fraction);
}

TEST(QuerySchedulerTest, HorizonMarksWaitingQueriesUnserved) {
  const std::vector<Arrival> arrivals = {At(0, 0), At(0, 0), At(0, 0),
                                         At(0, 0), At(0, 0)};
  const auto demands = UniformDemands(arrivals.size(), 100);
  const QueryScheduler scheduler(Config(SchedPolicy::kFcfs, 1, 0, 250));
  const ServeSchedule schedule = scheduler.Run(arrivals, demands);

  // Dispatches at vt 0, 100, 200; vt 300 is past the horizon.
  ASSERT_EQ(schedule.admitted.size(), 5u);
  EXPECT_EQ(schedule.ServedCount(), 3);
  EXPECT_FALSE(schedule.admitted[3].served);
  EXPECT_FALSE(schedule.admitted[4].served);
  EXPECT_EQ(schedule.makespan_vt, 300);

  ServingConfig config = Config(SchedPolicy::kFcfs, 1, 0, 250);
  const ServeMetrics metrics =
      ComputeServeMetrics(schedule, arrivals, config);
  EXPECT_EQ(metrics.total.submitted, 5);
  EXPECT_EQ(metrics.total.admitted, 5);
  EXPECT_EQ(metrics.total.completed, 3);
}

TEST(QuerySchedulerTest, PerStreamMetricsSumToTotals) {
  std::vector<Arrival> arrivals;
  Rng rng(kSeed + 4);
  std::int64_t vt = 0;
  std::vector<std::int64_t> demands;
  for (int i = 0; i < 400; ++i) {
    vt += rng.Uniform(0, 15);
    arrivals.push_back(At(vt, static_cast<int>(rng.Uniform(0, 6))));
    demands.push_back(10 + rng.Uniform(0, 80));
  }
  ServingConfig config = Config(SchedPolicy::kCredit, 2, 8);
  config.weights = {1.0, 2.0};
  const ServeSchedule schedule =
      QueryScheduler(config).Run(arrivals, demands);
  const ServeMetrics metrics =
      ComputeServeMetrics(schedule, arrivals, config);

  ASSERT_EQ(metrics.streams.size(), 7u);
  StreamServeStats sum;
  for (const auto& s : metrics.streams) {
    sum.submitted += s.submitted;
    sum.admitted += s.admitted;
    sum.rejected += s.rejected;
    sum.completed += s.completed;
    sum.work += s.work;
  }
  EXPECT_EQ(sum.submitted, static_cast<std::int64_t>(arrivals.size()));
  EXPECT_EQ(sum.submitted, metrics.total.submitted);
  EXPECT_EQ(sum.admitted, metrics.total.admitted);
  EXPECT_EQ(sum.rejected, metrics.total.rejected);
  EXPECT_EQ(sum.rejected,
            static_cast<std::int64_t>(schedule.rejected.size()));
  EXPECT_EQ(sum.completed, metrics.total.completed);
  EXPECT_EQ(sum.completed, schedule.ServedCount());
  EXPECT_EQ(sum.work, metrics.total.work);
  EXPECT_GE(metrics.jain_fairness, 1.0 / 7.0);
  EXPECT_LE(metrics.jain_fairness, 1.0);
  EXPECT_GT(metrics.total.p50_response_vt, 0);
  EXPECT_LE(metrics.total.p50_response_vt, metrics.total.p95_response_vt);
  EXPECT_LE(metrics.total.p95_response_vt, metrics.total.p99_response_vt);
}

// ---------------------------------------------------------------------------
// Serving through the façade: virtual-time schedule + real execution.

Warehouse TinyMaterialized(int num_workers) {
  return Warehouse({.schema = MakeTinyApb1Schema(),
                    .fragmentation = {{kApb1Time, 2}, {kApb1Product, 3}},
                    .backend = BackendKind::kMaterialized,
                    .seed = kSeed,
                    .num_workers = num_workers});
}

/// A contended trace over the tiny schema: 6 streams, arrivals far faster
/// than service, so admission control and the policies all engage.
std::vector<Arrival> TinyTrace(const StarSchema* schema, int count) {
  ArrivalConfig config;
  config.num_streams = 6;
  config.mean_interarrival_vt = 40.0;
  config.stream_skew_theta = 0.4;
  config.mix = {QueryType::k1Month1Group, QueryType::k1Month,
                QueryType::k1Quarter, QueryType::k1Group1Store};
  config.seed = kSeed;
  return ArrivalGenerator(schema, config).Generate(count);
}

TEST(ServingTest, OutcomesBitIdenticalToDirectExecuteAcrossWorkerCounts) {
  // The acceptance bar: every admitted-and-served query's outcome equals
  // a direct Execute() of the same query, at every worker count, and the
  // outcomes agree across worker counts bit for bit.
  ServingConfig config;
  config.policy = SchedPolicy::kCredit;
  config.num_workers = 4;  // pinned: the schedule must not vary
  config.queue_capacity = 8;
  config.weights = {1.0, 2.0, 4.0};

  std::vector<std::vector<QueryOutcome>> outcomes_by_workers;
  for (const int workers : {1, 2, 8}) {
    const Warehouse wh = TinyMaterialized(workers);
    const auto arrivals = TinyTrace(&wh.schema(), 48);
    ServeSchedule schedule;
    const BatchOutcome batch = wh.Serve(arrivals, config, &schedule);

    ASSERT_EQ(batch.queries.size(),
              static_cast<std::size_t>(schedule.ServedCount()));
    EXPECT_FALSE(schedule.rejected.empty())
        << "trace too light to exercise admission control";
    std::size_t slot = 0;
    for (const auto& q : schedule.admitted) {
      if (!q.served) continue;
      const auto& arrival =
          arrivals[static_cast<std::size_t>(q.arrival_index)];
      const QueryOutcome direct = wh.Execute(arrival.query);
      EXPECT_EQ(batch.queries[slot], direct)
          << "served outcome " << slot << " diverged from direct Execute "
          << "with " << workers << " workers";
      ++slot;
    }
    outcomes_by_workers.push_back(batch.queries);
  }
  ASSERT_EQ(outcomes_by_workers.size(), 3u);
  EXPECT_EQ(outcomes_by_workers[0], outcomes_by_workers[1]);
  EXPECT_EQ(outcomes_by_workers[0], outcomes_by_workers[2]);
}

TEST(ServingTest, ServingMetricsIdenticalAcrossWorkerCounts) {
  // Virtual-time metrics depend only on (trace, config): pinning the
  // config's worker count makes every latency/fairness figure identical
  // no matter how many real threads execute the run.
  ServingConfig config;
  config.policy = SchedPolicy::kFcfs;
  config.num_workers = 2;
  config.queue_capacity = 12;

  std::vector<ServeMetrics> metrics;
  for (const int workers : {1, 2, 8}) {
    const Warehouse wh = TinyMaterialized(workers);
    const auto arrivals = TinyTrace(&wh.schema(), 64);
    const BatchOutcome batch = wh.Serve(arrivals, config);
    ASSERT_TRUE(batch.serving.has_value());
    metrics.push_back(*batch.serving);
  }
  for (std::size_t i = 1; i < metrics.size(); ++i) {
    EXPECT_EQ(metrics[0].makespan_vt, metrics[i].makespan_vt);
    EXPECT_EQ(metrics[0].total.completed, metrics[i].total.completed);
    EXPECT_EQ(metrics[0].total.rejected, metrics[i].total.rejected);
    EXPECT_EQ(metrics[0].total.work, metrics[i].total.work);
    EXPECT_DOUBLE_EQ(metrics[0].total.p99_response_vt,
                     metrics[i].total.p99_response_vt);
    EXPECT_DOUBLE_EQ(metrics[0].jain_fairness, metrics[i].jain_fairness);
    EXPECT_DOUBLE_EQ(metrics[0].backpressure_fraction,
                     metrics[i].backpressure_fraction);
    ASSERT_EQ(metrics[0].streams.size(), metrics[i].streams.size());
    for (std::size_t s = 0; s < metrics[0].streams.size(); ++s) {
      EXPECT_EQ(metrics[0].streams[s].completed,
                metrics[i].streams[s].completed);
      EXPECT_DOUBLE_EQ(metrics[0].streams[s].p95_response_vt,
                       metrics[i].streams[s].p95_response_vt);
    }
  }
}

TEST(ServingTest, RejectedArrivalsExecuteNothing) {
  const Warehouse wh = TinyMaterialized(2);
  const auto arrivals = TinyTrace(&wh.schema(), 64);
  ServingConfig config;
  config.policy = SchedPolicy::kFcfs;
  config.num_workers = 1;
  config.queue_capacity = 2;  // aggressive shedding

  ServeSchedule schedule;
  const BatchOutcome batch = wh.Serve(arrivals, config, &schedule);
  EXPECT_GT(schedule.rejected.size(), 0u);
  EXPECT_EQ(batch.queries.size(),
            static_cast<std::size_t>(schedule.ServedCount()));
  // The batch total is exactly the sum of the served outcomes — shed
  // queries contributed nothing.
  MiniWarehouse::AggregateResult sum;
  for (const auto& outcome : batch.queries) {
    ASSERT_TRUE(outcome.aggregate.has_value());
    sum.rows += outcome.aggregate->rows;
    sum.units_sold += outcome.aggregate->units_sold;
    sum.dollar_sales_cents += outcome.aggregate->dollar_sales_cents;
  }
  ASSERT_TRUE(batch.total_aggregate.has_value());
  EXPECT_EQ(batch.total_aggregate->rows, sum.rows);
  EXPECT_EQ(batch.total_aggregate->units_sold, sum.units_sold);
  EXPECT_EQ(batch.total_aggregate->dollar_sales_cents,
            sum.dollar_sales_cents);
  ASSERT_TRUE(batch.serving.has_value());
  EXPECT_EQ(batch.serving->total.rejected,
            static_cast<std::int64_t>(schedule.rejected.size()));
}

// ---------------------------------------------------------------------------
// Multi-threaded stress: a thousand-plus streams hammering a small pool.
// Runs under TSan in CI; the sequence accounting proves no query is lost
// or executed twice regardless of thread interleaving.

TEST(SchedulerStressTest, ThousandStreamsSmallPoolSequenceAccounting) {
  const Warehouse wh = TinyMaterialized(4);
  ArrivalConfig gen_config;
  gen_config.num_streams = 1200;
  gen_config.mean_interarrival_vt = 2.0;  // heavy overload
  gen_config.stream_skew_theta = 0.5;
  gen_config.mix = {QueryType::k1Month1Group, QueryType::k1Quarter,
                    QueryType::k1Group1Store};
  gen_config.seed = kSeed;
  const auto arrivals =
      ArrivalGenerator(&wh.schema(), gen_config).Generate(3000);

  ServingConfig config;
  config.policy = SchedPolicy::kCredit;
  config.num_workers = 4;
  config.queue_capacity = 64;

  ServeSchedule schedule;
  const BatchOutcome batch = wh.Serve(arrivals, config, &schedule);

  // Every arrival exactly once across admitted/rejected.
  ASSERT_EQ(schedule.admitted.size() + schedule.rejected.size(),
            arrivals.size());
  std::vector<char> seen(arrivals.size(), 0);
  for (const auto& q : schedule.admitted) {
    ASSERT_EQ(seen[static_cast<std::size_t>(q.arrival_index)], 0);
    seen[static_cast<std::size_t>(q.arrival_index)] = 1;
  }
  for (std::int64_t r : schedule.rejected) {
    ASSERT_EQ(seen[static_cast<std::size_t>(r)], 0);
    seen[static_cast<std::size_t>(r)] = 1;
  }
  EXPECT_GT(schedule.rejected.size(), 0u);

  // Dense dispatch sequence over the served subset; exactly one outcome
  // per served query.
  std::vector<std::int64_t> dispatch_seqs;
  for (const auto& q : schedule.admitted) {
    if (q.served) dispatch_seqs.push_back(q.dispatch_seq);
  }
  std::sort(dispatch_seqs.begin(), dispatch_seqs.end());
  for (std::size_t i = 0; i < dispatch_seqs.size(); ++i) {
    ASSERT_EQ(dispatch_seqs[i], static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(batch.queries.size(), dispatch_seqs.size());
  for (const auto& outcome : batch.queries) {
    EXPECT_TRUE(outcome.aggregate.has_value());
  }

  // Per-stream metric sums equal the batch totals (no drops, no dupes in
  // the attribution either).
  ASSERT_TRUE(batch.serving.has_value());
  const ServeMetrics& metrics = *batch.serving;
  std::int64_t submitted = 0, completed = 0, rejected = 0, work = 0;
  for (const auto& s : metrics.streams) {
    submitted += s.submitted;
    completed += s.completed;
    rejected += s.rejected;
    work += s.work;
  }
  EXPECT_EQ(submitted, static_cast<std::int64_t>(arrivals.size()));
  EXPECT_EQ(completed, metrics.total.completed);
  EXPECT_EQ(completed, static_cast<std::int64_t>(batch.queries.size()));
  EXPECT_EQ(rejected, metrics.total.rejected);
  EXPECT_EQ(work, metrics.total.work);
}

}  // namespace
}  // namespace mdw
