// CRC-32C tests: the standard check vector, seeding/continuation, and
// split-point consistency across the 8-byte fast path and its byte
// tails (whichever implementation the runtime dispatch picked).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/crc32c.h"

namespace mdw {
namespace {

TEST(Crc32cTest, StandardCheckVector) {
  // The canonical CRC-32C check value: crc("123456789") = 0xE3069283.
  const std::string msg = "123456789";
  EXPECT_EQ(Crc32c(msg.data(), msg.size()), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32cTest, ContinuationMatchesOneShot) {
  std::vector<std::uint8_t> buf(4096);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  const std::uint32_t whole = Crc32c(buf.data(), buf.size());
  // Every split point must continue to the same value — including splits
  // that land mid-way through the 8-byte blocks of the fast path.
  for (const std::size_t split : {std::size_t{1}, std::size_t{7},
                                  std::size_t{8}, std::size_t{9},
                                  std::size_t{1000}, std::size_t{4095}}) {
    const std::uint32_t part = Crc32c(buf.data(), split);
    EXPECT_EQ(Crc32c(buf.data() + split, buf.size() - split, part), whole)
        << "split at " << split;
  }
}

TEST(Crc32cTest, SensitiveToEveryBitFlip) {
  std::vector<std::uint8_t> buf(512, 0xA5);
  const std::uint32_t base = Crc32c(buf.data(), buf.size());
  for (const std::size_t at : {std::size_t{0}, std::size_t{255},
                               std::size_t{511}}) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[at] = static_cast<std::uint8_t>(0xA5 ^ (1u << bit));
      EXPECT_NE(Crc32c(buf.data(), buf.size()), base)
          << "byte " << at << " bit " << bit;
      buf[at] = 0xA5;
    }
  }
}

}  // namespace
}  // namespace mdw
