#include <gtest/gtest.h>

#include "cost/response_model.h"
#include "fragment/query_planner.h"
#include "schema/apb1.h"
#include "sim/simulator.h"

namespace mdw {
namespace {

class ResponseModelTest : public ::testing::Test {
 protected:
  ResponseModelTest()
      : schema_(MakeApb1Schema()),
        month_group_(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}}),
        planner_(&schema_, &month_group_) {}

  SimConfig Config(int d, int p, int t) {
    SimConfig c;
    c.num_disks = d;
    c.num_nodes = p;
    c.tasks_per_node = t;
    return c;
  }

  StarSchema schema_;
  Fragmentation month_group_;
  QueryPlanner planner_;
};

TEST_F(ResponseModelTest, CpuBoundQueryIdentifiedAsCpuBound) {
  const ResponseModel model(&schema_, Config(100, 20, 4));
  const auto est = model.Estimate(planner_.Plan(apb1_queries::OneMonth(3)));
  // 1MONTH with p << d is CPU-bound (paper Fig. 4).
  EXPECT_GT(est.cpu_bound_ms, est.disk_bound_ms);
}

TEST_F(ResponseModelTest, IoBoundQueryIdentifiedAsDiskBound) {
  const ResponseModel model(&schema_, Config(100, 20, 4));
  const auto est = model.Estimate(planner_.Plan(apb1_queries::OneStore(7)));
  // 1STORE is heavily disk-bound (paper Fig. 3).
  EXPECT_GT(est.disk_bound_ms, est.cpu_bound_ms);
}

TEST_F(ResponseModelTest, TracksSimulatorWithinFactorTwo) {
  // The bound-based estimate is first-order; it must land within a factor
  // of two of the detailed simulation for the paper's standard queries
  // when enough subquery slots keep the devices busy. Passing the real
  // allocation lets the model account for gcd clustering (1GROUP1STORE's
  // 24 fragments reach only 5 of the 100 disks).
  const SimConfig config = Config(100, 20, 5);
  const ResponseModel model(&schema_, config);
  AllocationConfig alloc_config;
  alloc_config.num_disks = config.num_disks;
  const DiskAllocation allocation(&month_group_, alloc_config, 32);
  Simulator sim(&schema_, &month_group_, config);
  for (const auto& q : {apb1_queries::OneMonth(3),
                        apb1_queries::OneGroupOneStore(41, 7),
                        apb1_queries::OneStore(7)}) {
    const double estimated =
        model.Estimate(planner_.Plan(q), &allocation).response_ms;
    const double simulated = sim.RunSingleUser({q}).avg_response_ms;
    EXPECT_LT(estimated, simulated * 2.0) << q.name();
    EXPECT_GT(estimated, simulated / 2.0) << q.name();
  }
}

TEST_F(ResponseModelTest, AllocationAwareEffectiveDisks) {
  const SimConfig config = Config(100, 20, 5);
  const ResponseModel model(&schema_, config);
  AllocationConfig alloc_config;
  alloc_config.num_disks = 100;
  const DiskAllocation allocation(&month_group_, alloc_config, 32);
  // 1GROUP1STORE: 24 fragments with stride 480 on 100 disks -> 5 fact
  // disks + 12 staggered bitmap disks.
  const auto est = model.Estimate(
      planner_.Plan(apb1_queries::OneGroupOneStore(41, 7)), &allocation);
  EXPECT_EQ(est.effective_disks, 5);
  // Without the allocation the model assumes min(d, fragments).
  const auto naive =
      model.Estimate(planner_.Plan(apb1_queries::OneGroupOneStore(41, 7)));
  EXPECT_EQ(naive.effective_disks, 24);
  // The clustered allocation yields a slower (more truthful) estimate.
  EXPECT_GT(est.response_ms, naive.response_ms);
}

TEST_F(ResponseModelTest, ScalesWithHardware) {
  const ResponseModel small(&schema_, Config(20, 4, 5));
  const ResponseModel big(&schema_, Config(100, 20, 5));
  const auto plan = planner_.Plan(apb1_queries::OneStore(7));
  EXPECT_GT(small.Estimate(plan).response_ms,
            2.5 * big.Estimate(plan).response_ms);
}

TEST_F(ResponseModelTest, RanksFragmentationsLikeTheSimulator) {
  // The model must reproduce the Fig. 6 ordering for 1STORE:
  // F_MonthCode >> F_MonthGroup.
  const Fragmentation code(&schema_, {{kApb1Time, 2}, {kApb1Product, 5}});
  const QueryPlanner code_planner(&schema_, &code);
  const SimConfig config = Config(100, 20, 5);
  const ResponseModel model(&schema_, config);
  const auto group_est =
      model.Estimate(planner_.Plan(apb1_queries::OneStore(7)));
  const auto code_est =
      model.Estimate(code_planner.Plan(apb1_queries::OneStore(7)));
  EXPECT_GT(code_est.response_ms, 2 * group_est.response_ms);
}

TEST_F(ResponseModelTest, PipelineLatencyDominatesSingleFragmentQueries) {
  const ResponseModel model(&schema_, Config(100, 20, 4));
  const auto est =
      model.Estimate(planner_.Plan(apb1_queries::OneMonthOneGroup(3, 41)));
  // One fragment: no parallelism; the pipeline term carries the estimate.
  EXPECT_GT(est.pipeline_ms, est.disk_bound_ms);
  EXPECT_GT(est.pipeline_ms, est.cpu_bound_ms);
}

TEST_F(ResponseModelTest, DemandsArePositiveAndConsistent) {
  const ResponseModel model(&schema_, Config(100, 20, 4));
  const auto est = model.Estimate(planner_.Plan(apb1_queries::OneQuarter(2)));
  EXPECT_GT(est.disk_ms_total, 0);
  EXPECT_GT(est.cpu_ms_total, 0);
  EXPECT_GE(est.response_ms,
            std::max(est.disk_bound_ms, est.cpu_bound_ms));
}

}  // namespace
}  // namespace mdw
