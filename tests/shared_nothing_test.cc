#include <gtest/gtest.h>

#include "schema/apb1.h"
#include "sim/simulator.h"
#include "sim/subquery.h"

namespace mdw {
namespace {

class SharedNothingTest : public ::testing::Test {
 protected:
  SharedNothingTest()
      : schema_(MakeApb1Schema()),
        month_group_(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}}) {}

  SimConfig SnConfig(int d = 100, int p = 20, int t = 4) {
    SimConfig config;
    config.architecture = Architecture::kSharedNothing;
    config.bitmap_placement = BitmapPlacement::kSameNode;
    config.num_disks = d;
    config.num_nodes = p;
    config.tasks_per_node = t;
    return config;
  }

  SimConfig SdConfig(int d = 100, int p = 20, int t = 4) {
    SimConfig config;
    config.num_disks = d;
    config.num_nodes = p;
    config.tasks_per_node = t;
    return config;
  }

  StarSchema schema_;
  Fragmentation month_group_;
};

TEST_F(SharedNothingTest, CompletesAndMatchesSubqueryCount) {
  Simulator sim(&schema_, &month_group_, SnConfig());
  const auto result = sim.RunSingleUser({apb1_queries::OneMonth(3)});
  EXPECT_EQ(result.subqueries, 480);
  EXPECT_EQ(result.response_ms.size(), 1u);
  EXPECT_GT(result.avg_response_ms, 0);
}

TEST_F(SharedNothingTest, SameNodePlacementKeepsOwner) {
  AllocationConfig config;
  config.num_disks = 100;
  config.node_count = 20;
  config.bitmap_placement = BitmapPlacement::kSameNode;
  const DiskAllocation alloc(&month_group_, config, 12);
  for (FragId id = 0; id < 500; id += 37) {
    const int owner = alloc.DiskOfFragment(id) % 20;
    for (int b = 0; b < 12; ++b) {
      EXPECT_EQ(alloc.DiskOfBitmapFragment(id, b) % 20, owner)
          << "fragment " << id << " bitmap " << b;
    }
  }
}

TEST_F(SharedNothingTest, ComparableToSharedDiskUnderUniformLoad) {
  // With uniform data and a balanced query, SN is close to SD (both keep
  // all resources busy).
  const auto q = apb1_queries::OneMonth(3);
  const auto sd = Simulator(&schema_, &month_group_, SdConfig())
                      .RunSingleUser({q});
  const auto sn = Simulator(&schema_, &month_group_, SnConfig())
                      .RunSingleUser({q});
  EXPECT_NEAR(sn.avg_response_ms / sd.avg_response_ms, 1.0, 0.35);
}

TEST_F(SharedNothingTest, SkewRaisesSharedNothingCpuImbalance) {
  // The imbalance metric quantifies the Shared Disk advantage: under
  // skew, Shared Nothing pins the hot fragments' work to their owner
  // nodes while Shared Disk keeps nodes near-equally busy.
  SimConfig sd = SdConfig(100, 20, 5);
  SimConfig sn = SnConfig(100, 20, 5);
  sd.fragment_skew_theta = 0.5;
  sn.fragment_skew_theta = 0.5;
  const auto q = apb1_queries::OneMonth(3);
  const auto r_sd =
      Simulator(&schema_, &month_group_, sd).RunSingleUser({q});
  const auto r_sn =
      Simulator(&schema_, &month_group_, sn).RunSingleUser({q});
  EXPECT_GT(r_sn.cpu_imbalance, r_sd.cpu_imbalance);
  // Shared Disk stays reasonably balanced at moderate skew; very strong
  // skew (theta ~0.9) makes single fragments indivisible hot spots that
  // no architecture can split.
  EXPECT_LT(r_sd.cpu_imbalance, 1.5);
}

TEST_F(SharedNothingTest, UniformLoadIsBalancedUnderSharedDisk) {
  const auto q = apb1_queries::OneMonth(3);
  const auto result = Simulator(&schema_, &month_group_, SdConfig())
                          .RunSingleUser({q});
  EXPECT_LT(result.cpu_imbalance, 1.3);
  EXPECT_GE(result.cpu_imbalance, 1.0);
  EXPECT_GE(result.disk_imbalance, 1.0);
}

TEST_F(SharedNothingTest, SkewHurtsSharedNothingMore) {
  // Paper Sec. 2/7: Shared Disk can rebalance around data skew; Shared
  // Nothing cannot (work is pinned to the owning node).
  SimConfig sd = SdConfig(100, 20, 5);
  SimConfig sn = SnConfig(100, 20, 5);
  sd.fragment_skew_theta = 0.8;
  sn.fragment_skew_theta = 0.8;
  const auto q = apb1_queries::OneMonth(3);
  const auto r_sd =
      Simulator(&schema_, &month_group_, sd).RunSingleUser({q});
  const auto r_sn =
      Simulator(&schema_, &month_group_, sn).RunSingleUser({q});
  EXPECT_GE(r_sn.avg_response_ms, 0.95 * r_sd.avg_response_ms);
}

TEST_F(SharedNothingTest, ValidationRejectsStaggeredPlacement) {
  SimConfig config = SnConfig();
  config.bitmap_placement = BitmapPlacement::kStaggered;
  EXPECT_DEATH(config.Validate(), "Shared Nothing");
}

TEST_F(SharedNothingTest, ValidationRejectsUnevenDisks) {
  SimConfig config = SnConfig(99, 20, 4);
  EXPECT_DEATH(config.Validate(), "evenly divided");
}

TEST(SkewTest, WeightsAverageToOne) {
  const auto schema = MakeApb1Schema();
  const Fragmentation frag(&schema, {{kApb1Time, 2}, {kApb1Product, 3}});
  const QueryPlanner planner(&schema, &frag);
  SimConfig config;
  config.fragment_skew_theta = 0.7;
  const auto work =
      MakeSubqueryWork(planner.Plan(apb1_queries::OneMonth(3)), config);
  double sum = 0;
  for (FragId id = 0; id < frag.FragmentCount(); ++id) {
    sum += work.SkewWeight(id);
  }
  EXPECT_NEAR(sum / static_cast<double>(frag.FragmentCount()), 1.0, 1e-9);
}

TEST(SkewTest, ZeroThetaIsUniform) {
  const auto schema = MakeApb1Schema();
  const Fragmentation frag(&schema, {{kApb1Time, 2}, {kApb1Product, 3}});
  const QueryPlanner planner(&schema, &frag);
  const auto work = MakeSubqueryWork(
      planner.Plan(apb1_queries::OneMonth(3)), SimConfig{});
  for (FragId id = 0; id < 100; ++id) {
    EXPECT_DOUBLE_EQ(work.SkewWeight(id), 1.0);
  }
}

TEST(SkewTest, HigherThetaMoreConcentrated) {
  const auto schema = MakeApb1Schema();
  const Fragmentation frag(&schema, {{kApb1Time, 2}, {kApb1Product, 3}});
  const QueryPlanner planner(&schema, &frag);
  SimConfig mild, strong;
  mild.fragment_skew_theta = 0.3;
  strong.fragment_skew_theta = 0.9;
  const auto plan = planner.Plan(apb1_queries::OneMonth(3));
  const auto work_mild = MakeSubqueryWork(plan, mild);
  const auto work_strong = MakeSubqueryWork(plan, strong);
  double max_mild = 0, max_strong = 0;
  for (FragId id = 0; id < frag.FragmentCount(); ++id) {
    max_mild = std::max(max_mild, work_mild.SkewWeight(id));
    max_strong = std::max(max_strong, work_strong.SkewWeight(id));
  }
  EXPECT_GT(max_strong, max_mild);
}

TEST(SkewTest, SimulatedIoStaysNearUniformTotal) {
  // The skew weights preserve total hits, so total fact I/O of a
  // bitmap-driven query remains near the uniform volume (it can only
  // shrink slightly where hot fragments saturate their pages).
  const auto schema = MakeApb1Schema();
  const Fragmentation frag(&schema, {{kApb1Time, 2}, {kApb1Product, 3}});
  SimConfig uniform;
  uniform.num_disks = 100;
  uniform.num_nodes = 20;
  SimConfig skewed = uniform;
  skewed.fragment_skew_theta = 0.6;
  const auto q = apb1_queries::OneGroupOneStore(41, 7);
  const auto r_uniform =
      Simulator(&schema, &frag, uniform).RunSingleUser({q});
  const auto r_skewed = Simulator(&schema, &frag, skewed).RunSingleUser({q});
  EXPECT_LT(static_cast<double>(r_skewed.disk_pages),
            1.05 * static_cast<double>(r_uniform.disk_pages));
  EXPECT_GT(static_cast<double>(r_skewed.disk_pages),
            0.5 * static_cast<double>(r_uniform.disk_pages));
}

}  // namespace
}  // namespace mdw
