#include <gtest/gtest.h>

#include <vector>

#include "sim/disk.h"

namespace mdw {
namespace {

DiskParams Params() {
  DiskParams p;  // paper defaults: 10 ms avg seek, 3 ms settle, 1 ms/page
  return p;
}

TEST(DiskTest, FirstReadFromTrackZeroHasNoSeek) {
  EventQueue q;
  Disk disk(&q, Params(), /*total_pages=*/100'000, "d0");
  double done_at = -1;
  disk.Read(0, 8, [&] { done_at = q.now(); });
  q.RunUntilEmpty();
  // Head starts at track 0, page 0 is track 0: settle 3 + 8 pages = 11 ms.
  EXPECT_DOUBLE_EQ(done_at, 11.0);
}

TEST(DiskTest, SequentialReadsPayNoSeek) {
  EventQueue q;
  Disk disk(&q, Params(), 100'000, "d0");
  std::vector<double> done;
  disk.Read(0, 8, [&] { done.push_back(q.now()); });
  disk.Read(8, 8, [&] { done.push_back(q.now()); });
  q.RunUntilEmpty();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 11.0);
  // Second read continues at the head position: 11 + 11 (pages 8..15 are
  // within the first tracks; track distance 0 or 1 gives at most a tiny
  // seek).
  EXPECT_NEAR(done[1], 22.0, 2.5);
}

TEST(DiskTest, LongSeeksCostMore) {
  EventQueue q;
  DiskParams p = Params();
  Disk disk(&q, p, 2'000'000, "d0");
  std::vector<double> done;
  disk.Read(0, 1, [&] { done.push_back(q.now()); });            // ~4 ms
  disk.Read(1'999'999, 1, [&] { done.push_back(q.now()); });    // far seek
  q.RunUntilEmpty();
  ASSERT_EQ(done.size(), 2u);
  const double second_service = done[1] - done[0];
  // Full-stroke seek approaches min + (max-min) = 2 + 24 = 26 ms, plus
  // settle 3 + 1 page.
  EXPECT_GT(second_service, 25.0);
  EXPECT_LT(second_service, 31.0);
}

TEST(DiskTest, AverageRandomSeekNearTenMs) {
  // Calibration check for the paper's 10 ms average seek: read random
  // positions and verify the mean service time is settle + pages + ~10.
  EventQueue q;
  Disk disk(&q, Params(), 10'000'000, "d0");
  std::uint64_t state = 12345;
  auto next_random = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  const int reads = 4'000;
  for (int i = 0; i < reads; ++i) {
    disk.Read(static_cast<std::int64_t>(next_random() % 10'000'000), 1,
              [] {});
  }
  q.RunUntilEmpty();
  const double avg_service = disk.busy_ms() / reads;
  // settle 3 + 1 page + avg seek ~ 10 => ~14 ms (random-to-random head
  // movement averages 1/3 of the stroke).
  EXPECT_NEAR(avg_service, 14.0, 1.5);
}

TEST(DiskTest, RequestsQueueFcfs) {
  EventQueue q;
  Disk disk(&q, Params(), 100'000, "d0");
  std::vector<int> order;
  disk.Read(0, 4, [&] { order.push_back(0); });
  disk.Read(4, 4, [&] { order.push_back(1); });
  disk.Read(8, 4, [&] { order.push_back(2); });
  q.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(disk.io_count(), 3);
  EXPECT_EQ(disk.pages_read(), 12);
}

TEST(DiskTest, TrackMappingCoversCapacity) {
  EventQueue q;
  DiskParams p = Params();
  p.tracks = 100;
  Disk disk(&q, p, 1'000, "d0");
  EXPECT_EQ(disk.TrackOf(0), 0);
  EXPECT_EQ(disk.TrackOf(999), 99);
  EXPECT_EQ(disk.TrackOf(10), 1);
}

TEST(DiskTest, TinyDiskStillWorks) {
  EventQueue q;
  Disk disk(&q, Params(), 1, "d0");
  double done_at = -1;
  disk.Read(0, 1, [&] { done_at = q.now(); });
  q.RunUntilEmpty();
  EXPECT_DOUBLE_EQ(done_at, 4.0);  // settle 3 + 1 page, no seek
}

TEST(DiskTest, MaxSeekCalibration) {
  EventQueue q;
  const Disk disk(&q, Params(), 1'000, "d0");
  // min 2, avg 10 -> max = 2 + 3 * (10 - 2) = 26 ms.
  EXPECT_DOUBLE_EQ(disk.MaxSeekMs(), 26.0);
}

TEST(DiskTest, UtilizationAccounting) {
  EventQueue q;
  Disk disk(&q, Params(), 100'000, "d0");
  disk.Read(0, 8, [] {});
  q.RunUntilEmpty();
  EXPECT_DOUBLE_EQ(disk.busy_ms(), 11.0);
  EXPECT_DOUBLE_EQ(disk.Utilization(22.0), 0.5);
}

}  // namespace
}  // namespace mdw
