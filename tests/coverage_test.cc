// Coverage-aware aggregation tests:
//  - property: the planner's per-fragment coverage classification agrees
//    with an independent brute force over the hierarchy value space, and
//    covered fragments' rows all satisfy every predicate (data-level
//    soundness), across seeds x the APB-1 query sweep;
//  - parity: full scan == bitmaps == MDHF(serial) == MDHF(parallel) ==
//    summaries-off at workers {1, 2, 8};
//  - counters: rows_scanned / rows_summarized / fragments_summarized
//    partition the processed rows and fragments exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "common/thread_pool.h"
#include "core/mini_warehouse.h"
#include "core/warehouse.h"
#include "fragment/query_planner.h"
#include "fragment/star_query.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

std::vector<FragAttr> MonthGroup() {
  return {{kApb1Time, 2}, {kApb1Product, 3}};
}

// The parallel_execution_test sweep plus coverage-specific shapes: IN
// lists that cover a fragmentation-level value completely (all 4 codes of
// a group; all 3 months of a quarter) and ones that straddle coverage
// (one fragment covered, its neighbour residual).
std::vector<StarQuery> QuerySweep() {
  std::vector<StarQuery> queries;
  for (std::int64_t month : {0, 3, 11}) {
    for (std::int64_t group : {0, 7, 23}) {
      queries.push_back(apb1_queries::OneMonthOneGroup(month, group));
    }
  }
  for (std::int64_t month : {1, 5}) {
    queries.push_back(apb1_queries::OneMonth(month));
  }
  for (std::int64_t code : {0, 30, 95}) {
    queries.push_back(apb1_queries::OneCode(code));
  }
  for (std::int64_t quarter : {0, 2}) {
    queries.push_back(apb1_queries::OneQuarter(quarter));
  }
  queries.push_back(apb1_queries::OneCodeOneMonth(30, 3));
  queries.push_back(apb1_queries::OneCodeOneQuarter(30, 2));
  queries.push_back(apb1_queries::OneStore(17));
  queries.push_back(apb1_queries::OneGroupOneStore(7, 17));
  queries.push_back(StarQuery("IN_LIST", {{kApb1Product, 5, {1, 2, 50}},
                                          {kApb1Time, 2, {0, 6}}}));
  // Tiny schema: 96 codes / 24 groups = 4 codes per group; group 7 is
  // codes 28..31. All four => group 7 fully covered by a CODE predicate.
  queries.push_back(
      StarQuery("ALL_CODES_OF_GROUP", {{kApb1Product, 5, {28, 29, 30, 31}}}));
  // Group 7 covered, group 8 (codes 32..35) only partially => one covered
  // and one residual fragment slice value on the same attribute.
  queries.push_back(StarQuery("COVERED_PLUS_RESIDUAL",
                              {{kApb1Product, 5, {28, 29, 30, 31, 32}}}));
  // IN-list exactly at both fragmentation levels: every selected fragment
  // covered (the aligned multi-fragment shape).
  queries.push_back(StarQuery("MONTHS_IN_LIST_ONE_GROUP",
                              {{kApb1Time, 2, {3, 4, 5}},
                               {kApb1Product, 3, {7}}}));
  // Duplicated IN-list values must not enumerate (and double-count) their
  // fragment twice — the parity checks against the full scan catch it.
  queries.push_back(StarQuery("DUP_IN_LIST", {{kApb1Time, 2, {3, 3}}}));
  queries.push_back(StarQuery("DUP_CODES", {{kApb1Product, 5, {30, 30, 31}}}));
  return queries;
}

// Independent coverage oracle: fragment coordinates `coords` (one value
// per fragmentation attribute) are fully covered iff for EVERY predicate,
// EVERY leaf value consistent with the fragment satisfies it. Leaves of a
// fragmentation dimension are confined to the coordinate's leaf range;
// any other dimension ranges over its whole leaf domain.
bool BruteForceCovered(const StarSchema& schema, const Fragmentation& frag,
                       const std::vector<std::int64_t>& coords,
                       const StarQuery& query) {
  for (const auto& pred : query.predicates()) {
    const auto& h = schema.dimension(pred.dim).hierarchy();
    std::int64_t leaf_first = 0;
    std::int64_t leaf_last = h.LeafCardinality() - 1;
    const int attr_index = frag.IndexOfDim(pred.dim);
    if (attr_index >= 0) {
      std::tie(leaf_first, leaf_last) = h.LeafRange(
          coords[static_cast<std::size_t>(attr_index)],
          frag.attr(attr_index).depth);
    }
    for (std::int64_t leaf = leaf_first; leaf <= leaf_last; ++leaf) {
      const std::int64_t value = h.AncestorOfLeaf(leaf, pred.depth);
      if (std::find(pred.values.begin(), pred.values.end(), value) ==
          pred.values.end()) {
        return false;
      }
    }
  }
  return true;
}

bool RowMatches(const MiniWarehouse& wh, std::int64_t row,
                const StarQuery& query) {
  for (const auto& pred : query.predicates()) {
    const auto& h = wh.schema().dimension(pred.dim).hierarchy();
    const std::int64_t leaf =
        wh.facts().columns[static_cast<std::size_t>(pred.dim)]
                          [static_cast<std::size_t>(row)];
    if (std::find(pred.values.begin(), pred.values.end(),
                  h.AncestorOfLeaf(leaf, pred.depth)) == pred.values.end()) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Property: planner classification == value-space brute force.

class CoverageProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoverageProperty, ClassificationMatchesBruteForce) {
  const MiniWarehouse wh(MakeTinyApb1Schema(), GetParam(), MonthGroup());
  const Fragmentation frag(&wh.schema(), MonthGroup());
  const QueryPlanner planner(&wh.schema(), &frag);
  for (const auto& query : QuerySweep()) {
    const auto plan = planner.Plan(query);
    std::int64_t covered_count = 0;
    plan.ForEachFragment([&](FragId id, bool covered) {
      EXPECT_EQ(covered,
                BruteForceCovered(wh.schema(), frag, frag.CoordsOf(id), query))
          << query.name() << " fragment " << id;
      if (covered) {
        ++covered_count;
        // Data-level soundness: every materialised row of a covered
        // fragment is a hit.
        const auto [begin, end] = wh.FragmentRows(id);
        for (std::int64_t row = begin; row < end; ++row) {
          ASSERT_TRUE(RowMatches(wh, row, query))
              << query.name() << " fragment " << id << " row " << row;
        }
      }
    });
    EXPECT_EQ(covered_count, plan.CoveredFragmentCount()) << query.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageProperty,
                         ::testing::Values<std::uint64_t>(7, 42, 123),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(CoverageProperty, PlansWithoutCoverageInfoAreAllResidual) {
  // Hand-built plans (compat constructors) default to no coverage, so
  // nothing is ever answered from summaries by accident.
  const auto schema = MakeTinyApb1Schema();
  const Fragmentation frag(&schema, MonthGroup());
  const QueryPlan plan(&frag, {{3}, {7}}, QueryClass::kQ1,
                       IoClass::kIoc1Opt, {}, 1.0 / 288);
  EXPECT_FALSE(plan.coverable());
  EXPECT_EQ(plan.CoveredFragmentCount(), 0);
  plan.ForEachFragment(
      [](FragId, bool covered) { EXPECT_FALSE(covered); });
}

// ---------------------------------------------------------------------------
// Parity: all execution paths agree with the full scan, with summaries on
// and off, serial and parallel.

class SummaryParity : public ::testing::TestWithParam<
                          std::tuple<std::uint64_t /*seed*/, int /*workers*/>> {
};

TEST_P(SummaryParity, FivePathsAgree) {
  const auto [seed, workers] = GetParam();
  const Warehouse with({.schema = MakeTinyApb1Schema(),
                        .fragmentation = MonthGroup(),
                        .backend = BackendKind::kMaterialized,
                        .seed = seed,
                        .num_workers = workers});
  const Warehouse without({.schema = MakeTinyApb1Schema(),
                           .fragmentation = MonthGroup(),
                           .backend = BackendKind::kMaterialized,
                           .seed = seed,
                           .num_workers = workers,
                           .enable_fragment_summaries = false});
  const MiniWarehouse& mini = *with.materialized();
  ASSERT_TRUE(mini.summaries_enabled());
  ASSERT_FALSE(without.materialized()->summaries_enabled());
  for (const auto& query : QuerySweep()) {
    const auto expected = mini.ExecuteFullScan(query);
    EXPECT_EQ(mini.ExecuteWithBitmaps(query), expected) << query.name();
    const auto on = with.Execute(query);
    const auto off = without.Execute(query);
    ASSERT_TRUE(on.aggregate.has_value()) << query.name();
    ASSERT_TRUE(off.aggregate.has_value()) << query.name();
    EXPECT_EQ(*on.aggregate, expected)
        << query.name() << " seed=" << seed << " workers=" << workers;
    EXPECT_EQ(*off.aggregate, expected)
        << query.name() << " seed=" << seed << " workers=" << workers;
    // Counter partition: what the summary path stops scanning it must
    // account for as summarized rows, exactly.
    EXPECT_EQ(on.rows_scanned + on.rows_summarized, off.rows_scanned)
        << query.name();
    EXPECT_EQ(off.rows_summarized, 0) << query.name();
    EXPECT_EQ(off.fragments_summarized, 0) << query.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByWorkers, SummaryParity,
    ::testing::Combine(::testing::Values<std::uint64_t>(7, 42, 123),
                       ::testing::Values(1, 2, 8)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SummaryDeterminismTest, IdenticalExecutionRecordAtAnyWorkerCount) {
  // The ENTIRE record — aggregates, rows_scanned, rows_summarized,
  // fragments_summarized — is bit-identical serial vs parallel.
  const MiniWarehouse wh(MakeTinyApb1Schema(), /*seed=*/42, MonthGroup());
  const Fragmentation frag(&wh.schema(), MonthGroup());
  const QueryPlanner planner(&wh.schema(), &frag);
  const ThreadPool pool2(2), pool8(8);
  for (const auto& query : QuerySweep()) {
    const auto plan = planner.Plan(query);
    const auto serial = wh.ExecuteWithPlan(query, plan);
    EXPECT_EQ(wh.ExecuteWithPlan(query, plan, &pool2), serial)
        << query.name();
    EXPECT_EQ(wh.ExecuteWithPlan(query, plan, &pool8), serial)
        << query.name();
  }
}

// ---------------------------------------------------------------------------
// Counter semantics on aligned and straddling queries.

TEST(SummaryCountersTest, AlignedQueryScansNothing) {
  const Warehouse wh({.schema = MakeTinyApb1Schema(),
                      .fragmentation = MonthGroup(),
                      .backend = BackendKind::kMaterialized,
                      .seed = 42});
  for (const auto& query : {apb1_queries::OneMonth(3),
                            apb1_queries::OneMonthOneGroup(3, 7),
                            apb1_queries::OneQuarter(2)}) {
    const auto outcome = wh.Execute(query);
    EXPECT_EQ(outcome.rows_scanned, 0) << query.name();
    EXPECT_EQ(outcome.fragments_summarized, outcome.fragments_processed)
        << query.name();
    EXPECT_EQ(outcome.rows_summarized, outcome.aggregate->rows)
        << query.name();
  }
}

TEST(SummaryCountersTest, StraddlingInListSplitsCoveredAndResidual) {
  const Warehouse wh({.schema = MakeTinyApb1Schema(),
                      .fragmentation = MonthGroup(),
                      .backend = BackendKind::kMaterialized,
                      .seed = 42});
  // Codes 28..31 cover group 7 entirely; code 32 selects group 8 as a
  // residual fragment (per month: 12 covered + 12 residual fragments).
  const StarQuery query("COVERED_PLUS_RESIDUAL",
                        {{kApb1Product, 5, {28, 29, 30, 31, 32}}});
  const auto outcome = wh.Execute(query);
  EXPECT_EQ(outcome.fragments_processed, 24);
  EXPECT_EQ(outcome.fragments_summarized, 12);
  EXPECT_GT(outcome.rows_scanned, 0);
  EXPECT_GT(outcome.rows_summarized, 0);
}

TEST(SummaryCountersTest, DegenerateClusteringSummarizesPredicateFreeQuery) {
  // Zero-attribute fragmentation: the single fragment is the whole table.
  // A predicate-free query is fully covered and answered entirely from
  // the prefix sums; any predicate poisons coverage (non-frag dimension)
  // and falls back to the scan.
  const MiniWarehouse wh(MakeTinyApb1Schema(), /*seed=*/42, {});
  ASSERT_TRUE(wh.summaries_enabled());
  const Fragmentation frag(&wh.schema(), {});
  const QueryPlanner planner(&wh.schema(), &frag);

  const StarQuery everything("EVERYTHING", {});
  const auto covered = wh.ExecuteWithPlan(everything, planner.Plan(everything));
  EXPECT_EQ(covered.result, wh.ExecuteFullScan(everything));
  EXPECT_EQ(covered.rows_scanned, 0);
  EXPECT_EQ(covered.rows_summarized, wh.row_count());
  EXPECT_EQ(covered.fragments_summarized, 1);

  const auto filtered = wh.ExecuteWithFragmentation(
      apb1_queries::OneMonth(3), frag);
  EXPECT_EQ(filtered.fragments_summarized, 0);
  EXPECT_GT(filtered.rows_scanned, 0);
}

TEST(SummaryCountersTest, UncoverableQuerySummarizesNothing) {
  const Warehouse wh({.schema = MakeTinyApb1Schema(),
                      .fragmentation = MonthGroup(),
                      .backend = BackendKind::kMaterialized,
                      .seed = 42});
  // The store predicate lies outside the fragmentation: every fragment
  // needs its bitmap filter even though the month predicate is aligned.
  const auto outcome = wh.Execute(apb1_queries::OneGroupOneStore(7, 17));
  EXPECT_EQ(outcome.fragments_summarized, 0);
  EXPECT_EQ(outcome.rows_summarized, 0);
  EXPECT_GT(outcome.rows_scanned, 0);
}

TEST(SummaryCountersTest, BatchReusesScratchAndMatchesSingles) {
  const auto queries = QuerySweep();
  const Warehouse serial({.schema = MakeTinyApb1Schema(),
                          .fragmentation = MonthGroup(),
                          .backend = BackendKind::kMaterialized,
                          .seed = 42,
                          .num_workers = 1});
  const auto batch = serial.ExecuteBatch(queries);
  ASSERT_EQ(batch.queries.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto single = serial.Execute(queries[i]);
    EXPECT_EQ(*batch.queries[i].aggregate, *single.aggregate)
        << queries[i].name();
    EXPECT_EQ(batch.queries[i].rows_scanned, single.rows_scanned)
        << queries[i].name();
    EXPECT_EQ(batch.queries[i].rows_summarized, single.rows_summarized)
        << queries[i].name();
    EXPECT_EQ(batch.queries[i].fragments_summarized,
              single.fragments_summarized)
        << queries[i].name();
  }
}

}  // namespace
}  // namespace mdw
