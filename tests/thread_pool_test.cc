#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace mdw {
namespace {

TEST(ThreadPoolTest, ResolveWorkersZeroMeansHardware) {
  EXPECT_GE(ThreadPool::ResolveWorkers(0), 1);
  EXPECT_EQ(ThreadPool::ResolveWorkers(1), 1);
  EXPECT_EQ(ThreadPool::ResolveWorkers(7), 7);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  const ThreadPool pool(4);
  constexpr std::int64_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](std::int64_t i) {
    visits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeCounts) {
  const ThreadPool pool(2);
  std::atomic<std::int64_t> count{0};
  pool.ParallelFor(0, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.ParallelFor(1, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
  // More indices than workers.
  pool.ParallelFor(97, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 98);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  const ThreadPool pool(2);
  std::atomic<std::int64_t> count{0};
  pool.ParallelFor(4, [&](std::int64_t) {
    pool.ParallelFor(100, [&](std::int64_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 400);
}

TEST(ThreadPoolTest, SequentialParallelForsReuseTheWorkers) {
  const ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(64, [&](std::int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 50 * (64 * 63 / 2));
}

TEST(ThreadPoolTest, ParallelForQueuesVisitsEveryItemExactlyOnce) {
  const ThreadPool pool(4);
  const std::vector<std::int64_t> sizes = {1'000, 0, 37, 2'000, 1};
  std::int64_t total = 0;
  for (const auto s : sizes) total += s;
  std::vector<std::vector<std::atomic<int>>> visits;
  for (const auto s : sizes) {
    visits.emplace_back(static_cast<std::size_t>(s));
  }
  pool.ParallelForQueues(sizes, [&](int q, std::int64_t i) {
    visits[static_cast<std::size_t>(q)][static_cast<std::size_t>(i)]
        .fetch_add(1);
  });
  for (std::size_t q = 0; q < visits.size(); ++q) {
    for (std::size_t i = 0; i < visits[q].size(); ++i) {
      ASSERT_EQ(visits[q][i].load(), 1) << "queue " << q << " item " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForQueuesHandlesEmptyAndSingleItem) {
  const ThreadPool pool(2);
  std::atomic<std::int64_t> count{0};
  pool.ParallelForQueues({}, [&](int, std::int64_t) { count.fetch_add(1); });
  pool.ParallelForQueues({0, 0, 0},
                         [&](int, std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.ParallelForQueues({0, 1, 0},
                         [&](int q, std::int64_t) { count.fetch_add(q); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForQueuesStealsAcrossSkewedQueues) {
  // One queue holds nearly all the work; every item must still execute
  // exactly once with 4 lanes draining it cooperatively.
  const ThreadPool pool(3);
  const std::vector<std::int64_t> sizes = {10'000, 1, 1, 1};
  std::atomic<std::int64_t> count{0};
  pool.ParallelForQueues(sizes,
                         [&](int, std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10'003);
}

TEST(ThreadPoolTest, NestedParallelForQueuesRunsInlineWithoutDeadlock) {
  const ThreadPool pool(2);
  std::atomic<std::int64_t> count{0};
  pool.ParallelFor(4, [&](std::int64_t) {
    pool.ParallelForQueues({50, 50},
                           [&](int, std::int64_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 400);
}

TEST(ThreadPoolTest, ConcurrentCallersShareOnePool) {
  const ThreadPool pool(4);
  std::atomic<std::int64_t> count{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      pool.ParallelFor(1'000, [&](std::int64_t) { count.fetch_add(1); });
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(count.load(), 4'000);
}

}  // namespace
}  // namespace mdw
