#include <gtest/gtest.h>

#include "fragment/bitmap_elimination.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

TEST(BitmapEliminationTest, FMonthGroupKeeps32Of76) {
  // Paper Sec. 4.2: for F_MonthGroup all TIME bitmaps disappear, 10 of the
  // 15 PRODUCT bitmaps disappear, leaving at most 32 of 76.
  const auto schema = MakeApb1Schema();
  const Fragmentation f(&schema, {{kApb1Time, 2}, {kApb1Product, 3}});
  EXPECT_EQ(RemainingBitmapCount(f), 32);

  const auto reqs = BitmapRequirements(f);
  ASSERT_EQ(reqs.size(), 4u);
  EXPECT_EQ(reqs[kApb1Product].total, 15);
  EXPECT_EQ(reqs[kApb1Product].eliminated, 10);
  EXPECT_EQ(reqs[kApb1Product].remaining, 5);
  EXPECT_EQ(reqs[kApb1Customer].total, 12);
  EXPECT_EQ(reqs[kApb1Customer].eliminated, 0);
  EXPECT_EQ(reqs[kApb1Channel].total, 15);
  EXPECT_EQ(reqs[kApb1Channel].eliminated, 0);
  EXPECT_EQ(reqs[kApb1Time].total, 34);
  EXPECT_EQ(reqs[kApb1Time].eliminated, 34);
  EXPECT_EQ(reqs[kApb1Time].remaining, 0);
}

TEST(BitmapEliminationTest, NoFragmentationKeepsAll76) {
  const auto schema = MakeApb1Schema();
  const Fragmentation none(&schema, {});
  EXPECT_EQ(RemainingBitmapCount(none), 76);
}

TEST(BitmapEliminationTest, LeafFragmentationEliminatesWholeEncodedIndex) {
  const auto schema = MakeApb1Schema();
  const Fragmentation f(&schema, {{kApb1Product, 5}});  // product::code
  const auto reqs = BitmapRequirements(f);
  EXPECT_EQ(reqs[kApb1Product].eliminated, 15);
  EXPECT_EQ(reqs[kApb1Product].remaining, 0);
  EXPECT_EQ(RemainingBitmapCount(f), 76 - 15);
}

TEST(BitmapEliminationTest, SimpleIndexEliminationIsLevelwise) {
  const auto schema = MakeApb1Schema();
  // Fragmenting TIME at quarter drops year (2) and quarter (8) bitmaps but
  // keeps the 24 month bitmaps.
  const Fragmentation f(&schema, {{kApb1Time, 1}});
  const auto reqs = BitmapRequirements(f);
  EXPECT_EQ(reqs[kApb1Time].eliminated, 10);
  EXPECT_EQ(reqs[kApb1Time].remaining, 24);
}

TEST(BitmapEliminationTest, EncodedEliminationIsPrefixwise) {
  const auto schema = MakeApb1Schema();
  // Fragmenting PRODUCT at family (depth 2) drops the 8-bit prefix.
  const Fragmentation f(&schema, {{kApb1Product, 2}});
  const auto reqs = BitmapRequirements(f);
  EXPECT_EQ(reqs[kApb1Product].eliminated, 3 + 2 + 3);
  EXPECT_EQ(reqs[kApb1Product].remaining, 15 - 8);
}

TEST(BitmapEliminationTest, FourDimensionalFragmentation) {
  const auto schema = MakeApb1Schema();
  const Fragmentation f(&schema, {{kApb1Time, 2},
                                  {kApb1Product, 5},
                                  {kApb1Customer, 1},
                                  {kApb1Channel, 0}});
  // Everything eliminated: paper Sec. 4.4 "this would eliminate all
  // bitmaps".
  EXPECT_EQ(RemainingBitmapCount(f), 0);
}

TEST(BitmapEliminationTest, MonotoneInDepth) {
  // Deeper fragmentation levels eliminate at least as many bitmaps.
  const auto schema = MakeApb1Schema();
  int previous = -1;
  for (Depth d = 0; d <= 5; ++d) {
    const Fragmentation f(&schema, {{kApb1Product, d}});
    const auto reqs = BitmapRequirements(f);
    EXPECT_GT(reqs[kApb1Product].eliminated, previous);
    previous = reqs[kApb1Product].eliminated;
  }
}

}  // namespace
}  // namespace mdw
