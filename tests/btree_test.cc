#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "index/btree.h"

namespace mdw {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.Lookup(42), nullptr);
  tree.CheckInvariants();
}

TEST(BPlusTreeTest, SingleInsertLookup) {
  BPlusTree tree;
  tree.Insert(7, 70);
  ASSERT_NE(tree.Lookup(7), nullptr);
  EXPECT_EQ(*tree.Lookup(7), 70);
  EXPECT_EQ(tree.Lookup(8), nullptr);
  EXPECT_EQ(tree.size(), 1);
}

TEST(BPlusTreeTest, UpsertOverwrites) {
  BPlusTree tree;
  tree.Insert(7, 70);
  tree.Insert(7, 71);
  EXPECT_EQ(*tree.Lookup(7), 71);
  EXPECT_EQ(tree.size(), 1);
}

TEST(BPlusTreeTest, SequentialInsertsSplitLeaves) {
  BPlusTree tree;
  for (std::int64_t i = 0; i < 10'000; ++i) tree.Insert(i, i * 2);
  EXPECT_EQ(tree.size(), 10'000);
  EXPECT_GT(tree.height(), 1);
  tree.CheckInvariants();
  for (std::int64_t i = 0; i < 10'000; ++i) {
    ASSERT_NE(tree.Lookup(i), nullptr) << i;
    EXPECT_EQ(*tree.Lookup(i), i * 2);
  }
  EXPECT_EQ(tree.Lookup(10'000), nullptr);
  EXPECT_EQ(tree.Lookup(-1), nullptr);
}

TEST(BPlusTreeTest, ReverseInsertOrder) {
  BPlusTree tree;
  for (std::int64_t i = 9'999; i >= 0; --i) tree.Insert(i, i);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 10'000);
  EXPECT_EQ(*tree.Lookup(0), 0);
  EXPECT_EQ(*tree.Lookup(9'999), 9'999);
}

TEST(BPlusTreeTest, ScanFullRange) {
  BPlusTree tree;
  for (std::int64_t i = 0; i < 1'000; ++i) tree.Insert(i * 3, i);
  std::vector<std::int64_t> keys;
  tree.Scan(std::numeric_limits<std::int64_t>::min(),
            std::numeric_limits<std::int64_t>::max(),
            [&](std::int64_t k, std::int64_t) { keys.push_back(k); });
  ASSERT_EQ(keys.size(), 1'000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.front(), 0);
  EXPECT_EQ(keys.back(), 2'997);
}

TEST(BPlusTreeTest, ScanSubRangeInclusive) {
  BPlusTree tree;
  for (std::int64_t i = 0; i < 100; ++i) tree.Insert(i, i);
  std::vector<std::int64_t> keys;
  tree.Scan(10, 20, [&](std::int64_t k, std::int64_t) { keys.push_back(k); });
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_EQ(keys.front(), 10);
  EXPECT_EQ(keys.back(), 20);
}

TEST(BPlusTreeTest, ScanEmptyAndDegenerateRanges) {
  BPlusTree tree;
  for (std::int64_t i = 0; i < 100; i += 10) tree.Insert(i, i);
  int count = 0;
  tree.Scan(11, 19, [&](std::int64_t, std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  tree.Scan(20, 10, [&](std::int64_t, std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  tree.Scan(20, 20, [&](std::int64_t, std::int64_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(BPlusTreeTest, RandomInsertsMatchReferenceMap) {
  BPlusTree tree;
  std::map<std::int64_t, std::int64_t> reference;
  Rng rng(5);
  for (int i = 0; i < 20'000; ++i) {
    const std::int64_t key = rng.Uniform(0, 5'000);
    const std::int64_t value = rng.Uniform(0, 1'000'000);
    tree.Insert(key, value);
    reference[key] = value;
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), static_cast<std::int64_t>(reference.size()));
  for (const auto& [key, value] : reference) {
    ASSERT_NE(tree.Lookup(key), nullptr);
    EXPECT_EQ(*tree.Lookup(key), value);
  }
  // Scan must enumerate exactly the reference, in order.
  auto it = reference.begin();
  tree.Scan(0, 5'000, [&](std::int64_t k, std::int64_t v) {
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  EXPECT_EQ(it, reference.end());
}

TEST(BPlusTreeTest, HeightGrowsLogarithmically) {
  BPlusTree tree;
  for (std::int64_t i = 0; i < 100'000; ++i) tree.Insert(i, i);
  // With fanout ~64, 100k keys need about 3-4 levels.
  EXPECT_LE(tree.height(), 4);
  tree.CheckInvariants();
}

TEST(BPlusTreeTest, NegativeKeys) {
  BPlusTree tree;
  for (std::int64_t i = -500; i <= 500; ++i) tree.Insert(i, i * i);
  tree.CheckInvariants();
  EXPECT_EQ(*tree.Lookup(-500), 250'000);
  std::int64_t count = 0;
  tree.Scan(-10, 10, [&](std::int64_t, std::int64_t) { ++count; });
  EXPECT_EQ(count, 21);
}

class BTreeInsertionOrder : public ::testing::TestWithParam<int> {};

// Property: the tree ends up identical in content regardless of insertion
// order, and invariants hold throughout growth.
TEST_P(BTreeInsertionOrder, ContentIndependentOfOrder) {
  const int n = 3'000;
  std::vector<std::int64_t> keys;
  for (int i = 0; i < n; ++i) keys.push_back(i);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::shuffle(keys.begin(), keys.end(), rng.engine());

  BPlusTree tree;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    tree.Insert(keys[i], keys[i] + 1);
    if (i % 500 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), n);
  std::int64_t expected = 0;
  tree.Scan(0, n, [&](std::int64_t k, std::int64_t v) {
    EXPECT_EQ(k, expected);
    EXPECT_EQ(v, k + 1);
    ++expected;
  });
  EXPECT_EQ(expected, n);
}

INSTANTIATE_TEST_SUITE_P(Shuffles, BTreeInsertionOrder,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mdw
