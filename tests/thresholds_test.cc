#include <gtest/gtest.h>

#include "fragment/enumeration.h"
#include "fragment/thresholds.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

TEST(MaxFragmentCountTest, PaperValue) {
  // Paper Sec. 4.4: n_max = N / (8 * PgSize * PrefetchGran) = 14,238 for
  // N = 1,866,240,000, PgSize = 4K, PrefetchGran = 4.
  EXPECT_EQ(MaxFragmentCount(1'866'240'000LL, 4'096, 4), 14'238);
}

TEST(MaxFragmentCountTest, ScalesInverselyWithGranule) {
  const std::int64_t n = 1'866'240'000LL;
  EXPECT_EQ(MaxFragmentCount(n, 4'096, 1), 56'953);
  EXPECT_EQ(MaxFragmentCount(n, 4'096, 8), 7'119);
}

TEST(MaxFragmentCountTest, MinimalFragmentSizeImplication) {
  // Paper: with n_max = 14,238 and 20 B tuples, the minimal fragment size
  // is about 2.5 MB.
  const double tuples_per_fragment =
      1'866'240'000.0 / 14'238;
  const double mib = tuples_per_fragment * 20 / (1024.0 * 1024.0);
  EXPECT_NEAR(mib, 2.5, 0.1);
}

TEST(EnumerationTest, Apb1Has167Fragmentations) {
  // (6+1)(2+1)(1+1)(3+1) - 1 = 167, the total of paper Table 2.
  const auto schema = MakeApb1Schema();
  const auto options = EnumerateFragmentations(schema);
  EXPECT_EQ(options.size(), 167u);
}

TEST(EnumerationTest, Table2UnconstrainedCountsByDimensionality) {
  // Paper Table 2, column "any": 12 / 47 / 72 / 36.
  const auto schema = MakeApb1Schema();
  const auto options = EnumerateFragmentations(schema);
  EXPECT_EQ(CountOptions(options, 1, 0), 12);
  EXPECT_EQ(CountOptions(options, 2, 0), 47);
  EXPECT_EQ(CountOptions(options, 3, 0), 72);
  EXPECT_EQ(CountOptions(options, 4, 0), 36);
}

// NOTE on Table 2 boundary cells: the paper's cells (>=1: 12/37/22/1,
// >=4: 12/31/13/-, >=8: 11/27/9/-) cannot all be derived from any single
// page-size/rounding convention that is also consistent with its Table 3
// (we verified this by exhaustive search over page sizes and retailer
// cardinalities; see EXPERIMENTS.md). With the 4096-byte pages that
// reproduce Table 3 exactly, our model yields the values below — equal to
// the paper in most cells and off by at most 2 near the thresholds. All
// qualitative claims hold: half to almost three quarters of the options
// are ruled out, and at most one four-dimensional option survives.

TEST(EnumerationTest, Table2OnePageColumn) {
  const auto schema = MakeApb1Schema();
  const auto options = EnumerateFragmentations(schema);
  EXPECT_EQ(CountOptions(options, 1, 1.0), 12);  // paper: 12
  EXPECT_EQ(CountOptions(options, 2, 1.0), 37);  // paper: 37
  EXPECT_EQ(CountOptions(options, 3, 1.0), 24);  // paper: 22
  EXPECT_EQ(CountOptions(options, 4, 1.0), 1);   // paper: 1
}

TEST(EnumerationTest, Table2FourPageColumn) {
  const auto schema = MakeApb1Schema();
  const auto options = EnumerateFragmentations(schema);
  EXPECT_EQ(CountOptions(options, 1, 4.0), 11);  // paper: 12
  EXPECT_EQ(CountOptions(options, 2, 4.0), 30);  // paper: 31
  EXPECT_EQ(CountOptions(options, 3, 4.0), 11);  // paper: 13
  EXPECT_EQ(CountOptions(options, 4, 4.0), 0);   // paper: -
}

TEST(EnumerationTest, Table2EightPageColumn) {
  const auto schema = MakeApb1Schema();
  const auto options = EnumerateFragmentations(schema);
  EXPECT_EQ(CountOptions(options, 1, 8.0), 11);  // paper: 11
  EXPECT_EQ(CountOptions(options, 2, 8.0), 25);  // paper: 27
  EXPECT_EQ(CountOptions(options, 3, 8.0), 9);   // paper: 9
  EXPECT_EQ(CountOptions(options, 4, 8.0), 0);   // paper: -
}

TEST(EnumerationTest, ThresholdsPruneHalfToThreeQuarters) {
  // Paper Sec. 4.4: "1/2 to almost 3/4 of these options can be ruled out".
  const auto schema = MakeApb1Schema();
  const auto options = EnumerateFragmentations(schema);
  int at_least_one = 0, at_least_eight = 0;
  for (int d = 1; d <= 4; ++d) {
    at_least_one += CountOptions(options, d, 1.0);
    at_least_eight += CountOptions(options, d, 8.0);
  }
  const double total = 167.0;
  EXPECT_LE(at_least_one / total, 0.5);    // >= half ruled out at 1 page
  EXPECT_LE(at_least_eight / total, 0.3);  // almost 3/4 ruled out at 8
}

TEST(EnumerationTest, TheSingleAdmissibleFourDimensionalOption) {
  // Paper: "of the 36 possible four-dimensional fragmentations only 1
  // results in a bitmap fragment size of at least one page" — the all-
  // coarsest {division, retailer, channel, year}.
  const auto schema = MakeApb1Schema();
  const auto options = EnumerateFragmentations(schema);
  for (const auto& f : options) {
    if (f.num_attrs() == 4 && f.BitmapFragmentPages() >= 1.0) {
      EXPECT_EQ(f.FragmentCount(), 8LL * 144 * 15 * 2);
      for (int i = 0; i < f.num_attrs(); ++i) {
        EXPECT_EQ(f.attr(i).depth, 0);
      }
    }
  }
}

TEST(CheckThresholdsTest, AdmissibleFragmentationPasses) {
  const auto schema = MakeApb1Schema();
  const Fragmentation f(&schema, {{kApb1Time, 2}, {kApb1Product, 3}});
  ThresholdPolicy policy;
  policy.min_bitmap_fragment_pages = 4.0;
  policy.max_fragments = 50'000;
  policy.max_bitmaps = 40;
  policy.min_fragments = 100;
  EXPECT_TRUE(CheckThresholds(f, policy, 32).empty());
}

TEST(CheckThresholdsTest, DetectsSmallBitmapFragments) {
  const auto schema = MakeApb1Schema();
  // F_MonthCode: bitmap fragments of 0.16 pages (paper Table 6).
  const Fragmentation f(&schema, {{kApb1Time, 2}, {kApb1Product, 5}});
  ThresholdPolicy policy;
  policy.min_bitmap_fragment_pages = 4.0;
  const auto violations = CheckThresholds(f, policy, 27);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind,
            ThresholdViolation::Kind::kBitmapFragmentTooSmall);
}

TEST(CheckThresholdsTest, DetectsTooManyFragments) {
  const auto schema = MakeApb1Schema();
  const Fragmentation f(&schema, {{kApb1Time, 1},
                                  {kApb1Product, 3},
                                  {kApb1Customer, 0},
                                  {kApb1Channel, 0}});
  ThresholdPolicy policy;
  policy.min_bitmap_fragment_pages = 0;
  policy.max_fragments = 1'000'000;  // 8.3M fragments exceed this
  const auto violations = CheckThresholds(f, policy, 0);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ThresholdViolation::Kind::kTooManyFragments);
}

TEST(CheckThresholdsTest, DetectsTooManyBitmaps) {
  const auto schema = MakeApb1Schema();
  const Fragmentation f(&schema, {{kApb1Time, 2}, {kApb1Product, 3}});
  ThresholdPolicy policy;
  policy.min_bitmap_fragment_pages = 0;
  policy.max_bitmaps = 20;
  const auto violations = CheckThresholds(f, policy, 32);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ThresholdViolation::Kind::kTooManyBitmaps);
}

TEST(CheckThresholdsTest, DetectsTooFewFragments) {
  const auto schema = MakeApb1Schema();
  const Fragmentation f(&schema, {{kApb1Channel, 0}});  // 15 fragments
  ThresholdPolicy policy;
  policy.min_bitmap_fragment_pages = 0;
  policy.min_fragments = 100;  // at least one fragment per disk
  const auto violations = CheckThresholds(f, policy, 0);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, ThresholdViolation::Kind::kTooFewFragments);
}

TEST(CheckThresholdsTest, MultipleViolationsReported) {
  const auto schema = MakeApb1Schema();
  const Fragmentation f(&schema, {{kApb1Time, 2}, {kApb1Product, 5}});
  ThresholdPolicy policy;
  policy.min_bitmap_fragment_pages = 4.0;
  policy.max_fragments = 100'000;
  const auto violations = CheckThresholds(f, policy, 27);
  EXPECT_EQ(violations.size(), 2u);
}

TEST(CheckThresholdsTest, ZeroDisablesEachThreshold) {
  const auto schema = MakeApb1Schema();
  const Fragmentation f(&schema, {{kApb1Time, 2}, {kApb1Product, 5}});
  const ThresholdPolicy policy{0.0, 0, 0, 0};
  EXPECT_TRUE(CheckThresholds(f, policy, 1'000'000).empty());
}

}  // namespace
}  // namespace mdw
