#include <gtest/gtest.h>

#include <set>

#include "core/mini_warehouse.h"
#include "fragment/range_fragmentation.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

class RangeFragTest : public ::testing::Test {
 protected:
  RangeFragTest() : schema_(MakeApb1Schema()) {}
  StarSchema schema_;
};

TEST_F(RangeFragTest, PointwiseMatchesPointFragmentation) {
  const auto ranged = RangeFragmentation::PointwiseOf(&schema_, kApb1Time, 2);
  const Fragmentation point(&schema_, {{kApb1Time, 2}});
  EXPECT_EQ(ranged.FragmentCount(), point.FragmentCount());
  for (std::int64_t month = 0; month < 24; ++month) {
    EXPECT_EQ(ranged.FragmentOfRow({0, 0, 0, month}),
              point.FragmentOfRow({0, 0, 0, month}));
  }
}

TEST_F(RangeFragTest, EqualSplitBounds) {
  const auto p = RangeFragmentation::EqualSplit(schema_, kApb1Product, 5, 4);
  ASSERT_EQ(p.upper_bounds.size(), 4u);
  EXPECT_EQ(p.upper_bounds.back(), 14'400);
  EXPECT_EQ(p.upper_bounds[0], 3'600);
}

TEST_F(RangeFragTest, RangeOfValueBinarySearch) {
  RangePartition p{kApb1Time, 2, {6, 12, 18, 24}};
  const RangeFragmentation f(&schema_, {p});
  EXPECT_EQ(f.RangeOfValue(0, 0), 0);
  EXPECT_EQ(f.RangeOfValue(0, 5), 0);
  EXPECT_EQ(f.RangeOfValue(0, 6), 1);
  EXPECT_EQ(f.RangeOfValue(0, 23), 3);
}

TEST_F(RangeFragTest, FragmentCountIsProductOfRangeCounts) {
  const RangeFragmentation f(
      &schema_, {RangePartition{kApb1Time, 2, {6, 12, 18, 24}},
                 RangeFragmentation::EqualSplit(schema_, kApb1Product, 3,
                                                10)});
  EXPECT_EQ(f.FragmentCount(), 40);
}

TEST_F(RangeFragTest, AlignedQueryNeedsNoBitmaps) {
  // Quarterly ranges on month: a query on one quarter covers its range
  // exactly -> no bitmap access (like the point case of Q1).
  RangePartition quarters{kApb1Time, 2, {3, 6, 9, 12, 15, 18, 21, 24}};
  const RangeFragmentation f(&schema_, {quarters});
  const StarQuery q("1QUARTER", {{kApb1Time, 1, {2}}});
  const auto plan = f.PlanQuery(q);
  EXPECT_EQ(plan.fragment_count, 1);
  EXPECT_FALSE(plan.NeedsBitmaps());
}

TEST_F(RangeFragTest, MisalignedQueryNeedsBitmaps) {
  // Ranges of 5 months: a single month only partially covers its range.
  RangePartition fives{kApb1Time, 2, {5, 10, 15, 20, 24}};
  const RangeFragmentation f(&schema_, {fives});
  const StarQuery q("1MONTH", {{kApb1Time, 2, {3}}});
  const auto plan = f.PlanQuery(q);
  EXPECT_EQ(plan.fragment_count, 1);
  EXPECT_TRUE(plan.NeedsBitmaps());
}

TEST_F(RangeFragTest, CoarserAlignedBlockSpansMultipleRanges) {
  // Monthly point ranges grouped into 8 ranges of 3 months = quarters;
  // a YEAR covers 4 whole ranges -> no bitmaps.
  RangePartition quarters{kApb1Time, 2, {3, 6, 9, 12, 15, 18, 21, 24}};
  const RangeFragmentation f(&schema_, {quarters});
  const StarQuery q("1YEAR", {{kApb1Time, 0, {1}}});
  const auto plan = f.PlanQuery(q);
  EXPECT_EQ(plan.fragment_count, 4);
  EXPECT_FALSE(plan.NeedsBitmaps());
}

TEST_F(RangeFragTest, FinerPredicateAlwaysNeedsBitmaps) {
  RangePartition quarters{kApb1Time, 1, {8}};  // one range over quarters
  const RangeFragmentation f(&schema_, {quarters});
  const StarQuery q("1MONTH", {{kApb1Time, 2, {7}}});
  const auto plan = f.PlanQuery(q);
  EXPECT_EQ(plan.fragment_count, 1);
  EXPECT_TRUE(plan.NeedsBitmaps());
}

TEST_F(RangeFragTest, ForeignDimensionNeedsBitmaps) {
  RangePartition quarters{kApb1Time, 2, {3, 6, 9, 12, 15, 18, 21, 24}};
  const RangeFragmentation f(&schema_, {quarters});
  const StarQuery q("1STORE", {{kApb1Customer, 1, {7}}});
  const auto plan = f.PlanQuery(q);
  EXPECT_EQ(plan.fragment_count, 8);  // all ranges
  EXPECT_TRUE(plan.NeedsBitmaps());
}

TEST_F(RangeFragTest, LabelShowsRangeCounts) {
  const RangeFragmentation f(
      &schema_, {RangePartition{kApb1Time, 2, {12, 24}}});
  EXPECT_EQ(f.Label(), "{time::month/2}");
}

// Functional correctness on materialised data: fragment membership plus
// (where required) predicate re-checking reproduces the full-scan result.
TEST(RangeFragFunctionalTest, SelectedFragmentsContainAllHits) {
  const MiniWarehouse warehouse(MakeTinyApb1Schema(), 11);
  const auto& schema = warehouse.schema();
  const RangeFragmentation f(
      &schema,
      {RangePartition{kApb1Time, 2, {5, 10, 12}},
       RangeFragmentation::EqualSplit(schema, kApb1Product, 5, 7)});

  const StarQuery q("1MONTH1GROUP",
                    {{kApb1Time, 2, {3}}, {kApb1Product, 3, {7}}});
  const auto plan = f.PlanQuery(q);

  // Materialise the selected fragment set.
  std::set<FragId> fragments;
  std::vector<std::size_t> cursor(plan.slices.size(), 0);
  bool exhausted = false;
  while (!exhausted) {
    FragId id = 0;
    for (std::size_t i = 0; i < plan.slices.size(); ++i) {
      id = id * f.partition(static_cast<int>(i)).num_ranges() +
           plan.slices[i][cursor[i]];
    }
    fragments.insert(id);
    exhausted = true;
    for (std::size_t i = plan.slices.size(); i-- > 0;) {
      if (++cursor[i] < plan.slices[i].size()) {
        exhausted = false;
        break;
      }
      cursor[i] = 0;
    }
  }

  // Every full-scan hit row must live in a selected fragment.
  const auto& facts = warehouse.facts();
  std::int64_t hits = 0, covered = 0;
  for (std::int64_t row = 0; row < warehouse.row_count(); ++row) {
    std::vector<std::int64_t> keys;
    for (DimId d = 0; d < schema.num_dimensions(); ++d) {
      keys.push_back(facts.columns[static_cast<std::size_t>(d)]
                                  [static_cast<std::size_t>(row)]);
    }
    const auto& th = schema.dimension(kApb1Time).hierarchy();
    const auto& ph = schema.dimension(kApb1Product).hierarchy();
    const bool hit = th.AncestorOfLeaf(keys[kApb1Time], 2) == 3 &&
                     ph.AncestorOfLeaf(keys[kApb1Product], 3) == 7;
    if (!hit) continue;
    ++hits;
    if (fragments.count(f.FragmentOfRow(keys)) > 0) ++covered;
  }
  EXPECT_GT(hits, 0);
  EXPECT_EQ(covered, hits);
}

TEST(RangeFragFunctionalTest, RowMappingPartitionsAllRows) {
  const MiniWarehouse warehouse(MakeTinyApb1Schema(), 13);
  const auto& schema = warehouse.schema();
  const RangeFragmentation f(
      &schema, {RangeFragmentation::EqualSplit(schema, kApb1Customer, 1, 5),
                RangePartition{kApb1Channel, 0, {1, 3}}});
  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(f.FragmentCount()), 0);
  const auto& facts = warehouse.facts();
  for (std::int64_t row = 0; row < warehouse.row_count(); ++row) {
    std::vector<std::int64_t> keys;
    for (DimId d = 0; d < schema.num_dimensions(); ++d) {
      keys.push_back(facts.columns[static_cast<std::size_t>(d)]
                                  [static_cast<std::size_t>(row)]);
    }
    const FragId id = f.FragmentOfRow(keys);
    ASSERT_GE(id, 0);
    ASSERT_LT(id, f.FragmentCount());
    ++counts[static_cast<std::size_t>(id)];
  }
  std::int64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, warehouse.row_count());
}

}  // namespace
}  // namespace mdw
