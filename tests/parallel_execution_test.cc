// Parity, determinism and confinement tests for the fragment-clustered
// storage layout and the partition-parallel MDHF executor:
//   full scan == bitmap path == MDHF(serial) == MDHF(parallel)
// across worker counts, seeds, and the APB-1 query sweep, with
// bit-identical MdhfExecution counters at any parallel degree.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "core/mini_warehouse.h"
#include "core/warehouse.h"
#include "fragment/query_planner.h"
#include "fragment/star_query.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

std::vector<FragAttr> MonthGroup() {
  return {{kApb1Time, 2}, {kApb1Product, 3}};
}

// Every APB-1 query type with values valid on the tiny schema (12 months,
// 4 quarters, 24 groups, 96 codes, 40 stores), plus IN-list and
// unsupported shapes.
std::vector<StarQuery> QuerySweep() {
  std::vector<StarQuery> queries;
  for (std::int64_t month : {0, 3, 11}) {
    for (std::int64_t group : {0, 7, 23}) {
      queries.push_back(apb1_queries::OneMonthOneGroup(month, group));
    }
  }
  for (std::int64_t month : {1, 5}) {
    queries.push_back(apb1_queries::OneMonth(month));
  }
  for (std::int64_t code : {0, 30, 95}) {
    queries.push_back(apb1_queries::OneCode(code));
  }
  for (std::int64_t quarter : {0, 2}) {
    queries.push_back(apb1_queries::OneQuarter(quarter));
  }
  queries.push_back(apb1_queries::OneCodeOneMonth(30, 3));
  queries.push_back(apb1_queries::OneCodeOneQuarter(30, 2));
  queries.push_back(apb1_queries::OneStore(17));
  queries.push_back(apb1_queries::OneGroupOneStore(7, 17));
  queries.push_back(
      StarQuery("IN_LIST", {{kApb1Product, 5, {1, 2, 50}},
                            {kApb1Time, 2, {0, 6}}}));
  return queries;
}

// ---------------------------------------------------------------------------
// Clustered layout integrity

TEST(ClusteredLayoutTest, DirectoryPartitionsAllRows) {
  const MiniWarehouse wh(MakeTinyApb1Schema(), /*seed=*/42, MonthGroup());
  ASSERT_TRUE(wh.clustered());
  const Fragmentation& f = *wh.cluster_fragmentation();
  std::int64_t covered = 0;
  for (FragId id = 0; id < f.FragmentCount(); ++id) {
    const auto [begin, end] = wh.FragmentRows(id);
    ASSERT_LE(begin, end);
    if (id > 0) {
      ASSERT_EQ(begin, wh.FragmentRows(id - 1).second);
    }
    covered += end - begin;
  }
  EXPECT_EQ(wh.FragmentRows(0).first, 0);
  EXPECT_EQ(covered, wh.row_count());
}

TEST(ClusteredLayoutTest, EveryRowLiesInItsFragmentRange) {
  const MiniWarehouse wh(MakeTinyApb1Schema(), /*seed=*/42, MonthGroup());
  const Fragmentation& f = *wh.cluster_fragmentation();
  const int dims = wh.schema().num_dimensions();
  std::vector<std::int64_t> leaf(static_cast<std::size_t>(dims));
  for (FragId id = 0; id < f.FragmentCount(); ++id) {
    const auto [begin, end] = wh.FragmentRows(id);
    for (std::int64_t row = begin; row < end; ++row) {
      for (DimId d = 0; d < dims; ++d) {
        leaf[static_cast<std::size_t>(d)] =
            wh.facts().columns[static_cast<std::size_t>(d)]
                              [static_cast<std::size_t>(row)];
      }
      ASSERT_EQ(f.FragmentOfRow(leaf), id) << "row " << row;
    }
  }
}

TEST(ClusteredLayoutTest, PermutationPreservesAggregates) {
  // Clustering permutes rows but never changes the data: full scans of the
  // clustered and generation-order warehouses (same seed) agree.
  const MiniWarehouse clustered(MakeTinyApb1Schema(), /*seed=*/42,
                                MonthGroup());
  const MiniWarehouse generation(MakeTinyApb1Schema(), /*seed=*/42);
  ASSERT_EQ(clustered.row_count(), generation.row_count());
  for (const auto& query : QuerySweep()) {
    EXPECT_EQ(clustered.ExecuteFullScan(query),
              generation.ExecuteFullScan(query))
        << query.name();
  }
}

TEST(ClusteredLayoutTest, EmptyAttributeListIsSingleFragmentClustering) {
  const MiniWarehouse wh(MakeTinyApb1Schema(), /*seed=*/42, {});
  ASSERT_TRUE(wh.clustered());
  const auto [begin, end] = wh.FragmentRows(0);
  EXPECT_EQ(begin, 0);
  EXPECT_EQ(end, wh.row_count());
}

// ---------------------------------------------------------------------------
// Parity: full scan == bitmaps == MDHF(serial) == MDHF(parallel), across
// worker counts and seeds, over the whole query sweep.

class ParitySweep : public ::testing::TestWithParam<
                        std::tuple<std::uint64_t /*seed*/, int /*workers*/>> {};

TEST_P(ParitySweep, AllFourPathsAgree) {
  const auto [seed, workers] = GetParam();
  const Warehouse warehouse({.schema = MakeTinyApb1Schema(),
                             .fragmentation = MonthGroup(),
                             .backend = BackendKind::kMaterialized,
                             .seed = seed,
                             .num_workers = workers});
  const MiniWarehouse& mini = *warehouse.materialized();
  for (const auto& query : QuerySweep()) {
    const auto expected = mini.ExecuteFullScan(query);
    EXPECT_EQ(mini.ExecuteWithBitmaps(query), expected) << query.name();
    const auto outcome = warehouse.Execute(query);
    ASSERT_TRUE(outcome.aggregate.has_value()) << query.name();
    EXPECT_EQ(*outcome.aggregate, expected)
        << query.name() << " seed=" << seed << " workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByWorkers, ParitySweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(7, 42, 123),
                       ::testing::Values(1, 2, 8)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Determinism: the ENTIRE MdhfExecution record (aggregates and counters)
// is identical at any worker count, on both the clustered fast path and
// the unclustered fallback.

TEST(ParallelDeterminismTest, IdenticalExecutionRecordAtAnyWorkerCount) {
  const MiniWarehouse wh(MakeTinyApb1Schema(), /*seed=*/42, MonthGroup());
  const Fragmentation frag(&wh.schema(), MonthGroup());
  const QueryPlanner planner(&wh.schema(), &frag);
  const ThreadPool pool2(2), pool8(8);
  for (const auto& query : QuerySweep()) {
    const auto plan = planner.Plan(query);
    const auto serial = wh.ExecuteWithPlan(query, plan);
    EXPECT_EQ(wh.ExecuteWithPlan(query, plan, &pool2), serial)
        << query.name();
    EXPECT_EQ(wh.ExecuteWithPlan(query, plan, &pool8), serial)
        << query.name();
    EXPECT_EQ(serial.result, wh.ExecuteFullScan(query)) << query.name();
  }
}

TEST(ParallelDeterminismTest, FallbackPathIsDeterministicToo) {
  // Plans derived from a fragmentation that does NOT match the clustered
  // layout take the membership-scan fallback; it must agree with the
  // serial run and the full scan at any worker count.
  const MiniWarehouse wh(MakeTinyApb1Schema(), /*seed=*/42, MonthGroup());
  const Fragmentation store_frag(&wh.schema(), {{kApb1Customer, 1}});
  const QueryPlanner planner(&wh.schema(), &store_frag);
  const ThreadPool pool8(8);
  for (const auto& query : QuerySweep()) {
    const auto plan = planner.Plan(query);
    const auto serial = wh.ExecuteWithPlan(query, plan);
    EXPECT_EQ(wh.ExecuteWithPlan(query, plan, &pool8), serial)
        << query.name();
    EXPECT_EQ(serial.result, wh.ExecuteFullScan(query)) << query.name();
  }
}

// ---------------------------------------------------------------------------
// Fragment confinement: the clustered fast path scans exactly the plan's
// fragment row ranges, not the table.

TEST(FragmentConfinementTest, ScansOnlyThePlansRowRanges) {
  const MiniWarehouse wh(MakeTinyApb1Schema(), /*seed=*/42, MonthGroup());
  const Fragmentation frag(&wh.schema(), MonthGroup());
  const QueryPlanner planner(&wh.schema(), &frag);

  const auto q1 = apb1_queries::OneMonthOneGroup(3, 7);
  const auto plan = planner.Plan(q1);
  ASSERT_EQ(plan.FragmentCount(), 1);
  const auto exec = wh.ExecuteWithPlan(q1, plan);
  std::int64_t expected_rows = 0;
  plan.ForEachFragment([&](FragId id) {
    const auto [begin, end] = wh.FragmentRows(id);
    expected_rows += end - begin;
  });
  // Hierarchy-aligned (IOC1-opt): the single fragment is fully covered,
  // so it is answered from the prefix sums without scanning a row.
  EXPECT_EQ(exec.rows_scanned, 0);
  EXPECT_EQ(exec.rows_summarized, expected_rows);
  EXPECT_EQ(exec.fragments_summarized, 1);
  EXPECT_LT(exec.rows_summarized, wh.row_count());
  // IOC1-opt: every row of the fragment is a hit.
  EXPECT_EQ(exec.rows_summarized, exec.result.rows);
}

TEST(FragmentConfinementTest, RowsAccountedShrinkWithSelectivity) {
  const MiniWarehouse wh(MakeTinyApb1Schema(), /*seed=*/42, MonthGroup());
  const Fragmentation frag(&wh.schema(), MonthGroup());
  const QueryPlanner planner(&wh.schema(), &frag);

  const auto month = apb1_queries::OneMonth(3);           // 24 fragments
  const auto month_group = apb1_queries::OneMonthOneGroup(3, 7);  // 1
  const auto unsupported = apb1_queries::OneStore(17);    // all fragments

  const auto e_month = wh.ExecuteWithPlan(month, planner.Plan(month));
  const auto e_mg = wh.ExecuteWithPlan(month_group, planner.Plan(month_group));
  const auto e_all = wh.ExecuteWithPlan(unsupported, planner.Plan(unsupported));

  // Confinement: the rows a query accounts for (scanned or summarized)
  // track its fragment set.
  const auto accounted = [](const MiniWarehouse::MdhfExecution& e) {
    return e.rows_scanned + e.rows_summarized;
  };
  EXPECT_EQ(accounted(e_all), wh.row_count());
  EXPECT_LT(accounted(e_month), accounted(e_all));
  EXPECT_LT(accounted(e_mg), accounted(e_month));
  // The store predicate is outside the fragmentation, so nothing is
  // coverable; the hierarchy-aligned queries summarize everything.
  EXPECT_EQ(e_all.rows_summarized, 0);
  EXPECT_EQ(e_month.rows_scanned, 0);
  EXPECT_EQ(e_mg.rows_scanned, 0);
}

TEST(FragmentConfinementTest, ClusteredAndFallbackReportSameCounters) {
  // rows_scanned semantics must not change with the layout: with summaries
  // off, the clustered directory walk and the fallback membership scan
  // produce identical execution records; with summaries on, the summarized
  // rows account exactly for the rows the fallback scans.
  const MiniWarehouse clustered(MakeTinyApb1Schema(), /*seed=*/42,
                                MonthGroup());
  const MiniWarehouse plain(MakeTinyApb1Schema(), /*seed=*/42, MonthGroup(),
                            /*enable_summaries=*/false);
  const MiniWarehouse generation(MakeTinyApb1Schema(), /*seed=*/42);
  const Fragmentation fc(&clustered.schema(), MonthGroup());
  const Fragmentation fp(&plain.schema(), MonthGroup());
  const Fragmentation fg(&generation.schema(), MonthGroup());
  for (const auto& query : QuerySweep()) {
    const auto a = clustered.ExecuteWithFragmentation(query, fc);
    const auto p = plain.ExecuteWithFragmentation(query, fp);
    const auto b = generation.ExecuteWithFragmentation(query, fg);
    EXPECT_EQ(p, b) << query.name();
    EXPECT_EQ(a.result, b.result) << query.name();
    EXPECT_EQ(a.rows_scanned + a.rows_summarized, b.rows_scanned)
        << query.name();
    EXPECT_EQ(b.fragments_summarized, 0) << query.name();
  }
}

// ---------------------------------------------------------------------------
// Parallel batches through the façade.

TEST(ParallelBatchTest, BatchOutcomeIndependentOfWorkerCount) {
  const auto queries = QuerySweep();
  const Warehouse serial({.schema = MakeTinyApb1Schema(),
                          .fragmentation = MonthGroup(),
                          .backend = BackendKind::kMaterialized,
                          .seed = 42,
                          .num_workers = 1});
  const Warehouse parallel({.schema = MakeTinyApb1Schema(),
                            .fragmentation = MonthGroup(),
                            .backend = BackendKind::kMaterialized,
                            .seed = 42,
                            .num_workers = 8});
  const auto a = serial.ExecuteBatch(queries);
  const auto b = parallel.ExecuteBatch(queries);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  ASSERT_TRUE(a.total_aggregate.has_value());
  ASSERT_TRUE(b.total_aggregate.has_value());
  EXPECT_EQ(*a.total_aggregate, *b.total_aggregate);
  for (std::size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(*a.queries[i].aggregate, *b.queries[i].aggregate)
        << queries[i].name();
    EXPECT_EQ(a.queries[i].rows_scanned, b.queries[i].rows_scanned)
        << queries[i].name();
  }
}

TEST(ParallelBatchTest, BatchMatchesPerQueryExecution) {
  const auto queries = QuerySweep();
  const Warehouse wh({.schema = MakeTinyApb1Schema(),
                      .fragmentation = MonthGroup(),
                      .backend = BackendKind::kMaterialized,
                      .seed = 42,
                      .num_workers = 4});
  const auto batch = wh.ExecuteBatch(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(*batch.queries[i].aggregate, *wh.Execute(queries[i]).aggregate)
        << queries[i].name();
  }
}

}  // namespace
}  // namespace mdw
