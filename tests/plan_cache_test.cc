#include "fragment/plan_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/warehouse.h"
#include "fragment/star_query.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

constexpr std::uint64_t kSeed = 42;

std::vector<FragAttr> MonthGroup() {
  return {{kApb1Time, 2}, {kApb1Product, 3}};
}

Warehouse TinyMaterialized(std::size_t plan_cache_capacity = 256) {
  return Warehouse({.schema = MakeTinyApb1Schema(),
                    .fragmentation = MonthGroup(),
                    .backend = BackendKind::kMaterialized,
                    .seed = kSeed,
                    .plan_cache_capacity = plan_cache_capacity});
}

// ---------------------------------------------------------------------------
// Canonical signature

TEST(CanonicalQuerySignatureTest, IgnoresQueryName) {
  const StarQuery a("1MONTH", {{kApb1Time, 2, {3}}});
  const StarQuery b("some other label", {{kApb1Time, 2, {3}}});
  EXPECT_EQ(CanonicalQuerySignature(a), CanonicalQuerySignature(b));
}

TEST(CanonicalQuerySignatureTest, IgnoresPredicateAndValueOrder) {
  const StarQuery a("q", {{kApb1Time, 2, {3, 1}}, {kApb1Product, 3, {7}}});
  const StarQuery b("q", {{kApb1Product, 3, {7}}, {kApb1Time, 2, {1, 3}}});
  EXPECT_EQ(CanonicalQuerySignature(a), CanonicalQuerySignature(b));
}

TEST(CanonicalQuerySignatureTest, DistinguishesDimDepthAndValues) {
  const StarQuery base("q", {{kApb1Time, 2, {3}}});
  const StarQuery other_value("q", {{kApb1Time, 2, {4}}});
  const StarQuery other_depth("q", {{kApb1Time, 1, {3}}});
  const StarQuery other_dim("q", {{kApb1Product, 2, {3}}});
  const StarQuery more_values("q", {{kApb1Time, 2, {3, 4}}});
  EXPECT_NE(CanonicalQuerySignature(base),
            CanonicalQuerySignature(other_value));
  EXPECT_NE(CanonicalQuerySignature(base),
            CanonicalQuerySignature(other_depth));
  EXPECT_NE(CanonicalQuerySignature(base),
            CanonicalQuerySignature(other_dim));
  EXPECT_NE(CanonicalQuerySignature(base),
            CanonicalQuerySignature(more_values));
}

TEST(CanonicalQuerySignatureTest, MultiDigitValuesDoNotCollide) {
  // d0@2:12; must differ from d0@2:1,2; — the separators guarantee it.
  const StarQuery a("q", {{kApb1Time, 2, {12}}});
  const StarQuery b("q", {{kApb1Time, 2, {1, 2}}});
  EXPECT_NE(CanonicalQuerySignature(a), CanonicalQuerySignature(b));
}

// ---------------------------------------------------------------------------
// PlanCache behaviour

class PlanCacheTest : public ::testing::Test {
 protected:
  PlanCacheTest()
      : schema_(std::make_shared<const StarSchema>(MakeTinyApb1Schema())),
        fragmentation_(std::make_shared<const Fragmentation>(schema_.get(),
                                                             MonthGroup())),
        planner_(schema_, fragmentation_) {}

  std::shared_ptr<const StarSchema> schema_;
  std::shared_ptr<const Fragmentation> fragmentation_;
  QueryPlanner planner_;
};

TEST_F(PlanCacheTest, HitsAndMissesAreCounted) {
  PlanCache cache(8);
  const auto q = apb1_queries::OneMonth(3);
  EXPECT_EQ(cache.Lookup(q), nullptr);

  const auto first = cache.GetOrPlan(q, planner_);
  const auto second = cache.GetOrPlan(q, planner_);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // same cached object

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);  // the Lookup and the first GetOrPlan
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.capacity, 8u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 1.0 / 3.0);
}

TEST_F(PlanCacheTest, HitDoesNotInvokeThePlanner) {
  PlanCache cache(8);
  const auto q = apb1_queries::OneQuarter(2);
  cache.GetOrPlan(q, planner_);
  const auto before = QueryPlanner::LifetimePlanCount();
  cache.GetOrPlan(q, planner_);
  EXPECT_EQ(QueryPlanner::LifetimePlanCount(), before);
}

TEST_F(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  const auto a = apb1_queries::OneMonth(1);
  const auto b = apb1_queries::OneMonth(2);
  const auto c = apb1_queries::OneMonth(3);

  cache.GetOrPlan(a, planner_);
  cache.GetOrPlan(b, planner_);
  cache.GetOrPlan(a, planner_);  // touch a, making b the LRU entry
  cache.GetOrPlan(c, planner_);  // evicts b

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.Lookup(a), nullptr);
  EXPECT_EQ(cache.Lookup(b), nullptr);
  EXPECT_NE(cache.Lookup(c), nullptr);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST_F(PlanCacheTest, EvictedPlanStaysValid) {
  std::shared_ptr<const QueryPlan> plan;
  {
    PlanCache cache(1);
    plan = cache.GetOrPlan(apb1_queries::OneMonth(1), planner_);
    cache.GetOrPlan(apb1_queries::OneMonth(2), planner_);  // evicts it
    EXPECT_EQ(cache.stats().evictions, 1u);
  }
  // The plan outlives both its eviction and the cache itself.
  EXPECT_EQ(plan->query_class(), QueryClass::kQ1);
  EXPECT_GT(plan->FragmentCount(), 0);
}

TEST_F(PlanCacheTest, ClearDropsEntriesButKeepsCounters) {
  PlanCache cache(8);
  cache.GetOrPlan(apb1_queries::OneMonth(1), planner_);
  cache.GetOrPlan(apb1_queries::OneMonth(1), planner_);
  cache.Clear();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

// ---------------------------------------------------------------------------
// Warehouse wiring: shared across copies, observable via stats

TEST(WarehousePlanCacheTest, RepeatedExecutionHitsTheCache) {
  const Warehouse wh = TinyMaterialized();
  const auto q = apb1_queries::OneMonthOneGroup(3, 7);
  wh.Execute(q);
  wh.Execute(q);
  wh.Execute(q);
  const auto stats = wh.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.capacity, 256u);
}

TEST(WarehousePlanCacheTest, CopiesShareOneCache) {
  const Warehouse original = TinyMaterialized();
  const Warehouse copy = original;
  const auto q = apb1_queries::OneQuarter(1);

  original.Execute(q);        // miss, inserts
  copy.Execute(q);            // hit through the shared cache
  EXPECT_EQ(copy.plan_cache_stats().hits, 1u);
  EXPECT_EQ(original.plan_cache_stats().hits, 1u);
  EXPECT_EQ(original.plan_cache_stats().misses, 1u);

  // PlanShared returns the very same cached object through either copy.
  EXPECT_EQ(original.PlanShared(q).get(), copy.PlanShared(q).get());
}

TEST(WarehousePlanCacheTest, ZeroCapacityDisablesCaching) {
  const Warehouse wh = TinyMaterialized(/*plan_cache_capacity=*/0);
  const auto q = apb1_queries::OneMonth(3);
  const auto before = QueryPlanner::LifetimePlanCount();
  wh.Execute(q);
  wh.Execute(q);
  EXPECT_EQ(QueryPlanner::LifetimePlanCount(), before + 2);
  const auto stats = wh.plan_cache_stats();
  EXPECT_EQ(stats.capacity, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

}  // namespace
}  // namespace mdw
