#include <gtest/gtest.h>

#include "core/mdw.h"

namespace mdw {
namespace {

// Cross-module integration tests at the paper's full APB-1 scale (the
// simulator never materialises the fact data, so these run in seconds).

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : schema_(MakeApb1Schema()),
        month_group_(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}}) {}

  StarSchema schema_;
  Fragmentation month_group_;
};

TEST_F(IntegrationTest, Figure4ShapeCpuBoundSpeedup) {
  // 1MONTH response times depend on processors, not disks (paper Fig. 4).
  const auto q = apb1_queries::OneMonth(3);
  SimConfig config;
  config.num_disks = 100;
  config.tasks_per_node = 4;

  config.num_nodes = 5;
  const auto p5 = Simulator(&schema_, &month_group_, config)
                      .RunSingleUser({q}).avg_response_ms;
  config.num_nodes = 25;
  const auto p25 = Simulator(&schema_, &month_group_, config)
                       .RunSingleUser({q}).avg_response_ms;
  // Near-linear speed-up in processors.
  EXPECT_GT(p5 / p25, 3.0);

  // Insensitive to the number of disks for fixed processors.
  config.num_nodes = 5;
  config.num_disks = 60;
  const auto d60 = Simulator(&schema_, &month_group_, config)
                       .RunSingleUser({q}).avg_response_ms;
  EXPECT_NEAR(d60 / p5, 1.0, 0.25);
}

TEST_F(IntegrationTest, Figure3ShapeDiskBoundSpeedup) {
  // 1STORE response times depend on the number of disks (paper Fig. 3).
  // Keep t*p >= d so all disks can be utilised.
  WorkloadDriver make_d20(&schema_, &month_group_, [] {
    SimConfig c;
    c.num_disks = 20;
    c.num_nodes = 4;
    c.tasks_per_node = 5;
    return c;
  }());
  WorkloadDriver make_d60(&schema_, &month_group_, [] {
    SimConfig c;
    c.num_disks = 60;
    c.num_nodes = 12;
    c.tasks_per_node = 5;
    return c;
  }());
  const auto r20 = make_d20.RunSingleUser(QueryType::k1Store, 1);
  const auto r60 = make_d60.RunSingleUser(QueryType::k1Store, 1);
  // Paper: linear (slightly superlinear) speed-up with disks.
  EXPECT_GT(r20.avg_response_ms / r60.avg_response_ms, 2.5);
}

TEST_F(IntegrationTest, Figure6ShapeFragmentationOrdering) {
  // 1CODE1QUARTER gets faster with finer product fragmentation; 1STORE
  // gets drastically worse under F_MonthCode (paper Fig. 6).
  const Fragmentation f_class(&schema_, {{kApb1Time, 2}, {kApb1Product, 4}});
  const Fragmentation f_code(&schema_, {{kApb1Time, 2}, {kApb1Product, 5}});
  SimConfig config;
  config.num_disks = 100;
  config.num_nodes = 20;
  config.tasks_per_node = 1;

  const auto q = apb1_queries::OneCodeOneQuarter(35, 2);
  const auto group_ms = Simulator(&schema_, &month_group_, config)
                            .RunSingleUser({q}).avg_response_ms;
  const auto class_ms = Simulator(&schema_, &f_class, config)
                            .RunSingleUser({q}).avg_response_ms;
  const auto code_ms = Simulator(&schema_, &f_code, config)
                           .RunSingleUser({q}).avg_response_ms;
  EXPECT_LT(class_ms, group_ms);  // halved fragment size
  EXPECT_LT(code_ms, class_ms);   // no bitmaps, only relevant tuples
}

TEST_F(IntegrationTest, CostModelPredictsSimulatorIoCounts) {
  // The simulator's physical I/O must track the analytical model: for an
  // IOC1 query the page counts agree exactly.
  const QueryPlanner planner(&schema_, &month_group_);
  const IoCostModel model(&schema_);
  const auto plan = planner.Plan(apb1_queries::OneMonth(3));
  const auto est = model.Estimate(plan);

  SimConfig config;
  config.num_disks = 100;
  config.num_nodes = 20;
  Simulator sim(&schema_, &month_group_, config);
  const auto result = sim.RunSingleUser({apb1_queries::OneMonth(3)});
  EXPECT_EQ(result.disk_pages, est.fact_pages_read);
  EXPECT_EQ(result.disk_ios, est.fact_io_ops);
}

TEST_F(IntegrationTest, CostModelTracksSimulatorForBitmapQueries) {
  // For IOC2 queries the simulator samples the expected granule count; the
  // totals must stay within a few percent of the analytical expectation.
  const QueryPlanner planner(&schema_, &month_group_);
  const IoCostModel model(&schema_);
  const auto q = apb1_queries::OneGroupOneStore(41, 7);
  const auto est = model.Estimate(planner.Plan(q));

  SimConfig config;
  config.num_disks = 100;
  config.num_nodes = 20;
  Simulator sim(&schema_, &month_group_, config);
  const auto result = sim.RunSingleUser({q});
  EXPECT_NEAR(static_cast<double>(result.disk_pages),
              static_cast<double>(est.TotalPagesRead()),
              0.10 * static_cast<double>(est.TotalPagesRead()));
}

TEST_F(IntegrationTest, EliminatedBitmapsNeverRead) {
  // Under F_MonthGroup, 1MONTH1GROUP and 1QUARTER read zero bitmap pages
  // even though the unfragmented plan would need them.
  SimConfig config;
  config.num_disks = 20;
  config.num_nodes = 4;
  Simulator sim(&schema_, &month_group_, config);
  const QueryPlanner planner(&schema_, &month_group_);
  for (const auto& q : {apb1_queries::OneMonthOneGroup(3, 41),
                        apb1_queries::OneQuarter(2),
                        apb1_queries::OneMonth(3)}) {
    EXPECT_FALSE(planner.Plan(q).NeedsBitmaps()) << q.name();
  }
}

TEST_F(IntegrationTest, AdvisorChoiceBeatsRejectedChoiceInSimulation) {
  // End-to-end: the advisor's recommendation for a 1CODE1QUARTER workload
  // must actually simulate faster than a rejected fine fragmentation would
  // for the I/O-bound 1STORE workload.
  AdvisorOptions options;
  options.thresholds.min_bitmap_fragment_pages = 4.0;
  options.thresholds.min_fragments = 100;
  options.thresholds.max_fragments = 50'000;
  const AllocationAdvisor advisor(&schema_, options);
  const auto recommended = advisor.Recommend(
      {{apb1_queries::OneStore(7), 1.0}, {apb1_queries::OneMonth(3), 1.0}});
  ASSERT_FALSE(recommended.empty());

  SimConfig config;
  config.num_disks = 100;
  config.num_nodes = 20;
  config.tasks_per_node = 5;
  const Fragmentation f_code(&schema_, {{kApb1Time, 2}, {kApb1Product, 5}});
  const auto best_ms =
      Simulator(&schema_, &recommended.front().fragmentation, config)
          .RunSingleUser({apb1_queries::OneStore(7)}).avg_response_ms;
  const auto code_ms = Simulator(&schema_, &f_code, config)
                           .RunSingleUser({apb1_queries::OneStore(7)})
                           .avg_response_ms;
  EXPECT_LT(best_ms, code_ms);
}

TEST_F(IntegrationTest, StaggeredAllocationSpreadsBitmapLoad) {
  // With staggered placement the bitmap reads of a subquery go to
  // distinct disks; with same-disk placement one disk serves them all.
  SimConfig staggered;
  staggered.num_disks = 100;
  staggered.num_nodes = 4;
  staggered.tasks_per_node = 1;
  SimConfig same = staggered;
  same.bitmap_placement = BitmapPlacement::kSameDisk;
  const auto q = apb1_queries::OneGroupOneStore(41, 7);
  const auto r_staggered = Simulator(&schema_, &month_group_, staggered)
                               .RunSingleUser({q});
  const auto r_same =
      Simulator(&schema_, &month_group_, same).RunSingleUser({q});
  EXPECT_LE(r_staggered.avg_response_ms, r_same.avg_response_ms);
}

TEST_F(IntegrationTest, TinySchemaSimulatorAgreesWithWarehouseSemantics) {
  // The same fragmentation + query on the tiny schema: the simulator's
  // subquery count equals the plan's fragment count, and the warehouse
  // confirms the plan's row semantics.
  const MiniWarehouse warehouse(MakeTinyApb1Schema(), 7);
  const Fragmentation f(&warehouse.schema(),
                        {{kApb1Time, 2}, {kApb1Product, 3}});
  const StarQuery q("1GROUP", {{kApb1Product, 3, {7}}});
  const auto exec = warehouse.ExecuteWithFragmentation(q, f);

  SimConfig config;
  config.num_disks = 4;
  config.num_nodes = 2;
  Simulator sim(&f.schema(), &f, config);
  const auto result = sim.RunSingleUser({q});
  EXPECT_EQ(result.subqueries, exec.fragments_processed);
}

}  // namespace
}  // namespace mdw
