#include <gtest/gtest.h>

#include "cost/cost_report.h"
#include "cost/io_cost_model.h"
#include "schema/apb1.h"

namespace mdw {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : schema_(MakeApb1Schema()), model_(&schema_) {}
  StarSchema schema_;
  IoCostModel model_;
};

TEST_F(CostModelTest, Table3OptimalFragmentation) {
  // Paper Table 3, F_opt = {customer::store} for 1STORE:
  // 1 fragment, 795 fact I/Os, no bitmap I/O, 25 MB total.
  const Fragmentation fopt(&schema_, {{kApb1Customer, 1}});
  const QueryPlanner planner(&schema_, &fopt);
  const auto est = model_.Estimate(planner.Plan(apb1_queries::OneStore(7)));
  EXPECT_EQ(est.fragments, 1);
  EXPECT_EQ(est.fact_io_ops, 795);  // exact paper value
  EXPECT_EQ(est.bitmap_pages_read, 0);
  EXPECT_NEAR(est.total_io_mib, 24.8, 0.2);  // paper: "25 MB"
}

TEST_F(CostModelTest, Table3UnsupportedFragmentation) {
  // Paper Table 3, F_nosupp = F_MonthGroup for 1STORE: 11,520 fragments,
  // 691,200 bitmap pages. The paper's fact-I/O figure (5,189,760 pages) is
  // not derivable from its own page math; our model produces the same
  // orders of magnitude (see EXPERIMENTS.md).
  const Fragmentation f(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  const QueryPlanner planner(&schema_, &f);
  const auto est = model_.Estimate(planner.Plan(apb1_queries::OneStore(7)));
  EXPECT_EQ(est.fragments, 11'520);
  EXPECT_EQ(est.bitmap_pages_read, 691'200);  // 12 bitmaps * 5 pages * 11,520
  EXPECT_NEAR(est.effective_bitmap_granule, 5.0, 1e-9);
  // Fact I/O blows up by ~3 orders of magnitude vs F_opt.
  EXPECT_GT(est.fact_io_ops, 500'000);
  EXPECT_GT(est.fact_pages_read, 5'000'000);
  EXPECT_GT(est.total_io_mib, 20'000.0);
}

TEST_F(CostModelTest, Table3RatioSeveralOrdersOfMagnitude) {
  const Fragmentation fopt(&schema_, {{kApb1Customer, 1}});
  const Fragmentation fnosupp(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  const QueryPlanner p1(&schema_, &fopt), p2(&schema_, &fnosupp);
  const auto opt = model_.Estimate(p1.Plan(apb1_queries::OneStore(7)));
  const auto bad = model_.Estimate(p2.Plan(apb1_queries::OneStore(7)));
  EXPECT_GT(bad.total_io_mib / opt.total_io_mib, 500.0);
  EXPECT_GT(bad.TotalPagesRead() / opt.TotalPagesRead(), 500);
}

TEST_F(CostModelTest, EffectiveBitmapGranuleAdaptsDownwards) {
  // Paper Table 6: granule 5 / 3 / 1 for bitmap fragments of
  // 4.9 / 2.5 / 0.16 pages.
  const Fragmentation group(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  const Fragmentation klass(&schema_, {{kApb1Time, 2}, {kApb1Product, 4}});
  const Fragmentation code(&schema_, {{kApb1Time, 2}, {kApb1Product, 5}});
  for (const auto* f : {&group, &klass, &code}) {
    const QueryPlanner planner(&schema_, f);
    const auto est =
        model_.Estimate(planner.Plan(apb1_queries::OneStore(7)));
    if (f == &group) {
      EXPECT_DOUBLE_EQ(est.effective_bitmap_granule, 5.0);
    }
    if (f == &klass) {
      EXPECT_DOUBLE_EQ(est.effective_bitmap_granule, 3.0);
    }
    if (f == &code) {
      EXPECT_DOUBLE_EQ(est.effective_bitmap_granule, 1.0);
    }
  }
}

TEST_F(CostModelTest, FMonthCodeBitmapIoExplodes) {
  // Paper Sec. 6.3: F_MonthCode forces "more than 4 million" bitmap pages
  // for 1STORE (12 bitmaps, 345,600 fragments, 1 page minimum each).
  const Fragmentation code(&schema_, {{kApb1Time, 2}, {kApb1Product, 5}});
  const QueryPlanner planner(&schema_, &code);
  const auto est = model_.Estimate(planner.Plan(apb1_queries::OneStore(7)));
  EXPECT_EQ(est.bitmap_pages_read, 12LL * 345'600);
  EXPECT_GT(est.bitmap_pages_read, 4'000'000);
}

TEST_F(CostModelTest, Ioc1QueriesReadWholeFragmentsWithoutBitmaps) {
  const Fragmentation f(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  const QueryPlanner planner(&schema_, &f);
  const auto est = model_.Estimate(planner.Plan(apb1_queries::OneMonth(3)));
  EXPECT_EQ(est.fragments, 480);
  EXPECT_EQ(est.bitmap_pages_read, 0);
  // 795 pages per fragment, granule 8 -> 100 ops per fragment.
  EXPECT_EQ(est.fact_io_ops, 480 * 100);
  EXPECT_EQ(est.fact_pages_read, 480 * 795);
}

TEST_F(CostModelTest, ExpectedGroupsHitProperties) {
  // No hits -> no groups; many hits -> all groups; monotone in hits.
  EXPECT_DOUBLE_EQ(IoCostModel::ExpectedGroupsHit(100, 0), 0.0);
  EXPECT_NEAR(IoCostModel::ExpectedGroupsHit(100, 100'000), 100.0, 1e-6);
  double previous = 0;
  for (double hits = 1; hits <= 512; hits *= 2) {
    const double g = IoCostModel::ExpectedGroupsHit(100, hits);
    EXPECT_GT(g, previous);
    EXPECT_LE(g, 100.0);
    previous = g;
  }
  // With a single hit, exactly one group is hit.
  EXPECT_NEAR(IoCostModel::ExpectedGroupsHit(100, 1), 1.0, 1e-9);
}

TEST_F(CostModelTest, MoreSelectiveQueryCostsNoMore) {
  const Fragmentation f(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  const QueryPlanner planner(&schema_, &f);
  const auto store =
      model_.Estimate(planner.Plan(apb1_queries::OneStore(7)));
  const auto group_store =
      model_.Estimate(planner.Plan(apb1_queries::OneGroupOneStore(41, 7)));
  // 1GROUP1STORE touches 24 fragments instead of 11,520.
  EXPECT_LT(group_store.total_io_mib, store.total_io_mib);
}

TEST_F(CostModelTest, CostComparisonTableRenders) {
  const Fragmentation fopt(&schema_, {{kApb1Customer, 1}});
  const QueryPlanner planner(&schema_, &fopt);
  const auto est = model_.Estimate(planner.Plan(apb1_queries::OneStore(7)));
  const auto table =
      MakeCostComparisonTable("1STORE", {{"F_opt", est}});
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  table.Print(f);
  std::rewind(f);
  char buf[1024] = {};
  const auto read = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const std::string out(buf, read);
  EXPECT_NE(out.find("795"), std::string::npos);
  EXPECT_NE(out.find("F_opt"), std::string::npos);
}

TEST_F(CostModelTest, TotalMixIoWeightsQueries) {
  const Fragmentation f(&schema_, {{kApb1Time, 2}, {kApb1Product, 3}});
  const std::vector<WeightedQuery> single = {
      {apb1_queries::OneMonth(3), 1.0}};
  const std::vector<WeightedQuery> doubled = {
      {apb1_queries::OneMonth(3), 2.0}};
  EXPECT_NEAR(TotalMixIoMib(schema_, f, doubled),
              2 * TotalMixIoMib(schema_, f, single), 1e-9);
}

// Parameterised: across all product-depth fragmentations, an IOC1 month
// query's fact pages are invariant (whole month is read regardless of the
// product granularity), while bitmap cost for 1STORE grows once fragments
// get small.
class ProductDepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProductDepthSweep, MonthScanInvariantAcrossProductDepths) {
  const auto schema = MakeApb1Schema();
  const Fragmentation f(&schema,
                        {{kApb1Time, 2}, {kApb1Product, GetParam()}});
  const QueryPlanner planner(&schema, &f);
  const IoCostModel model(&schema);
  const auto est = model.Estimate(planner.Plan(apb1_queries::OneMonth(3)));
  // Within +-1 page per fragment of rounding, a month is always
  // N/24 tuples of fact data.
  const double month_pages = 1'866'240'000.0 / 24 / 204;
  EXPECT_NEAR(static_cast<double>(est.fact_pages_read), month_pages,
              static_cast<double>(est.fragments) * 8);
}

INSTANTIATE_TEST_SUITE_P(Depths, ProductDepthSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

}  // namespace
}  // namespace mdw
